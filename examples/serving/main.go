// Serving: run the online prediction service in-process, stream a short
// synthetic session through it over loopback TCP, and read back the
// live confidence-level breakdown — the storage-free estimate as a
// queryable signal rather than a post-hoc table. The second half is the
// durability story: predictor state snapshot/restore, and a keyed
// session surviving the death of its node through the failover-aware
// session router.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"repro"
	"repro/internal/metrics"
)

func main() {
	// An in-process server: ephemeral loopback port, default predictor
	// 64K/probabilistic for minimal clients. Production deployments run
	// cmd/tageserved instead; the engine is the same.
	srv := repro.NewServer(repro.ServeConfig{
		Engine: repro.ServeEngineConfig{
			DefaultConfig:  repro.Medium64K(),
			DefaultOptions: repro.Options{Mode: repro.ModeProbabilistic},
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	// A client session: open, stream branch batches, read grades.
	c, err := repro.DialServer(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open("16K", repro.Options{Mode: repro.ModeProbabilistic})
	if err != nil {
		log.Fatal(err)
	}

	// Drive a short synthetic session: 50k branches of a CBP-style
	// trace, batched 1000 at a time, with round-trip latency samples.
	tr, err := repro.TraceByName("186.crafty")
	if err != nil {
		log.Fatal(err)
	}
	var lat metrics.Latency
	res, err := sess.Replay(tr, 50_000, 1000, &lat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d branches of %s over the wire (%d batches, p99 %v)\n",
		res.Branches, res.Trace, lat.N(), lat.Quantile(0.99))
	fmt.Printf("overall: %.2f misp/KI\n", res.MPKI())
	fmt.Println("confidence-level breakdown (server-side tallies, bit-identical to offline repro.Run):")
	for _, l := range repro.Levels() {
		cnt := res.Level(l)
		fmt.Printf("  %-6s  %5.1f%% of predictions, %6.1f MKP\n",
			l, 100*metrics.Pcov(cnt, res.Total), cnt.MKP())
	}

	// Sessions are heterogeneous: the same server hosts any registered
	// backend by spec. Open a gshare session next to the TAGE one and
	// compare — /metrics reports the two under separate backend labels.
	gs, err := c.OpenSpec("gshare-64K")
	if err != nil {
		log.Fatal(err)
	}
	gres, err := gs.Replay(tr, 50_000, 1000, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame stream on %s: %.2f misp/KI (TAGE: %.2f)\n",
		gres.Config, gres.MPKI(), res.MPKI())

	// Durability, layer one: any registered backend's complete state
	// serializes into a self-describing versioned blob and restores
	// bit-identically — the primitive session checkpoints are built on.
	b, err := repro.New("tage-16K?mode=adaptive")
	if err != nil {
		log.Fatal(err)
	}
	warm, err := repro.TraceByName("MM-4")
	if err != nil {
		log.Fatal(err)
	}
	rd := warm.Open()
	for i := 0; i < 50_000; i++ {
		br, err := rd.Next()
		if err != nil {
			log.Fatal(err)
		}
		b.Predict(br.PC)
		b.Update(br.PC, br.Taken)
	}
	blob, err := repro.SnapshotBackend(b)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := repro.RestoreBackend(blob)
	if err != nil {
		log.Fatal(err)
	}
	agree := true
	for i := 0; i < 10_000; i++ {
		br, err := rd.Next()
		if err != nil {
			log.Fatal(err)
		}
		p1, c1, l1 := b.Predict(br.PC)
		p2, c2, l2 := restored.Predict(br.PC)
		if p1 != p2 || c1 != c2 || l1 != l2 {
			agree = false
		}
		b.Update(br.PC, br.Taken)
		restored.Update(br.PC, br.Taken)
	}
	fmt.Printf("\nsnapshot: %d-byte blob; restored predictor agrees on the next 10k branches: %v\n",
		len(blob), agree)

	// Durability, layer two: a 2-node cluster behind the session router.
	// Keyed sessions are placed by consistent hashing; when their node
	// dies mid-stream the router fails over to the survivor, reseeds it
	// from the last fetched snapshot, rewinds the replay cursor to the
	// server's authoritative branch count, and the final tallies are
	// STILL bit-identical to an uninterrupted offline run. (Give each
	// node a ServeConfig.StateDir and sessions additionally survive node
	// restarts via on-disk checkpoints — see cmd/tageserved -state-dir.)
	srvA := repro.NewServer(repro.ServeConfig{})
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srvA.Serve(lnA)
	srvB := repro.NewServer(repro.ServeConfig{})
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srvB.Serve(lnB)
	defer srvB.Shutdown(context.Background())

	router, err := repro.NewSessionRouter(repro.RouterConfig{
		Nodes:        []string{lnA.Addr().String(), lnB.Addr().String()},
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Find a key the ring places on node A — the node we will kill.
	key := "session/demo"
	for i := 0; router.NodeFor(key) != lnA.Addr().String(); i++ {
		key = fmt.Sprintf("session/demo-%d", i)
	}
	rs, err := router.Open(key, repro.ServeOpenRequest{Spec: "tage-16K"})
	if err != nil {
		log.Fatal(err)
	}
	type outcome struct {
		res repro.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := rs.Replay(tr, 200_000, 1024, nil)
		done <- outcome{res, err}
	}()
	// Kill node A once the session has made real progress.
	for srvA.Engine().Snapshot().Branches < 20_000 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	srvA.Shutdown(ctx)
	cancel()
	o := <-done
	if o.err != nil {
		log.Fatal(o.err)
	}
	offline, err := repro.RunSpec("tage-16K", tr, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	offline.Mode = o.res.Mode
	fmt.Printf("\nrouted session %q survived its node dying mid-stream on %s\n", key, rs.Node())
	fmt.Printf("failover replay bit-identical to offline run: %v (%.2f misp/KI over %d branches)\n",
		o.res == offline, o.res.MPKI(), o.res.Branches)
	for _, ns := range router.Stats() {
		fmt.Printf("  node %-21s sessions=%d retries=%d failovers=%d\n",
			ns.Addr, ns.Sessions, ns.Retries, ns.Failovers)
	}
}
