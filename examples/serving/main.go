// Serving: run the online prediction service in-process, stream a short
// synthetic session through it over loopback TCP, and read back the
// live confidence-level breakdown — the storage-free estimate as a
// queryable signal rather than a post-hoc table.
package main

import (
	"context"
	"fmt"
	"log"
	"net"

	"repro"
	"repro/internal/metrics"
)

func main() {
	// An in-process server: ephemeral loopback port, default predictor
	// 64K/probabilistic for minimal clients. Production deployments run
	// cmd/tageserved instead; the engine is the same.
	srv := repro.NewServer(repro.ServeConfig{
		Engine: repro.ServeEngineConfig{
			DefaultConfig:  repro.Medium64K(),
			DefaultOptions: repro.Options{Mode: repro.ModeProbabilistic},
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())

	// A client session: open, stream branch batches, read grades.
	c, err := repro.DialServer(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	sess, err := c.Open("16K", repro.Options{Mode: repro.ModeProbabilistic})
	if err != nil {
		log.Fatal(err)
	}

	// Drive a short synthetic session: 50k branches of a CBP-style
	// trace, batched 1000 at a time, with round-trip latency samples.
	tr, err := repro.TraceByName("186.crafty")
	if err != nil {
		log.Fatal(err)
	}
	var lat metrics.Latency
	res, err := sess.Replay(tr, 50_000, 1000, &lat)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("served %d branches of %s over the wire (%d batches, p99 %v)\n",
		res.Branches, res.Trace, lat.N(), lat.Quantile(0.99))
	fmt.Printf("overall: %.2f misp/KI\n", res.MPKI())
	fmt.Println("confidence-level breakdown (server-side tallies, bit-identical to offline repro.Run):")
	for _, l := range repro.Levels() {
		cnt := res.Level(l)
		fmt.Printf("  %-6s  %5.1f%% of predictions, %6.1f MKP\n",
			l, 100*metrics.Pcov(cnt, res.Total), cnt.MKP())
	}

	// Sessions are heterogeneous: the same server hosts any registered
	// backend by spec. Open a gshare session next to the TAGE one and
	// compare — /metrics reports the two under separate backend labels.
	gs, err := c.OpenSpec("gshare-64K")
	if err != nil {
		log.Fatal(err)
	}
	gres, err := gs.Replay(tr, 50_000, 1000, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame stream on %s: %.2f misp/KI (TAGE: %.2f)\n",
		gres.Config, gres.MPKI(), res.MPKI())
}
