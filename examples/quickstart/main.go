// Quickstart: build the paper's 64 Kbit TAGE predictor with storage-free
// confidence estimation, run it over a synthetic trace, and read back the
// per-class behavior.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A predictor is named by a backend spec. "tage-64K?mode=probabilistic"
	// is the paper's 64 Kbit TAGE with the §6 modified automaton
	// (saturation probability 1/128), which makes the three levels
	// meaningful: high < 1%, medium ~5-10%, low > 30% misprediction.
	// (Functional options are equivalent:
	// repro.New("tage-64K", repro.WithMode(repro.ModeProbabilistic)).)
	est, err := repro.New("tage-64K?mode=probabilistic")
	if err != nil {
		log.Fatal(err)
	}

	tr, err := repro.TraceByName("186.crafty")
	if err != nil {
		log.Fatal(err)
	}

	// Drive the predictor by hand to show the per-branch API...
	reader := tr.Open()
	var preds, correct uint64
	levelCounts := map[repro.Level]uint64{}
	for i := 0; i < 100000; i++ {
		b, err := reader.Next()
		if err != nil {
			break
		}
		pred, class, level := est.Predict(b.PC)
		_ = class // the fine-grained 7-way class is also available
		if pred == b.Taken {
			correct++
		}
		preds++
		levelCounts[level]++
		est.Update(b.PC, b.Taken)
	}
	fmt.Printf("hand-driven: %d branches, %.2f%% accuracy\n", preds, 100*float64(correct)/float64(preds))
	for _, l := range repro.Levels() {
		fmt.Printf("  %-6s confidence: %5.1f%% of predictions\n",
			l, 100*float64(levelCounts[l])/float64(preds))
	}

	// ...or use the simulation driver for full per-class statistics
	// (RunSpec builds a fresh backend from the spec each run).
	res, err := repro.RunSpec("tage-64K?mode=probabilistic", tr, 100000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsim driver: %.2f misp/KI overall\n", res.MPKI())
	for _, c := range repro.Classes() {
		fmt.Printf("  %-16s Pcov=%.3f MPrate=%6.1f MKP (level %s)\n",
			c, res.Pcov(c), res.MPrate(c), c.Level())
	}
}
