// Custom workload: compose a synthetic program from branch-behavior
// archetypes, then inspect which confidence classes each kind of branch
// lands in — a direct view of the mechanism behind the paper's classes.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/tage"
	"repro/internal/workload"
)

func main() {
	// A small program with one branch of each character:
	//   - a constant guard            (never mispredicts -> high-conf-bim)
	//   - a trip-7 loop               (learned exactly -> Stag)
	//   - a period-12 pattern         (learned exactly -> Stag)
	//   - a 10%-noise pattern         (learned structure + residual -> NStag)
	//   - a 60/40 coin flip           (unlearnable -> weak tagged classes)
	//   - a phase-switching branch    (relearned at each switch -> medium/low)
	prog := workload.NewBuilder("custom", 2024).
		SetLength(400_000).
		Block(10, 40, 90,
			workload.S(workload.Const{Taken: true}),
			workload.S(workload.Loop{Trip: 7}),
		).
		Block(8, 24, 60,
			workload.S(workload.Pattern{Bits: []bool{true, true, false, true, false, true, true, true, false, true, true, false}}),
			workload.S(workload.Const{Taken: false}),
		).
		Block(6, 30, 70,
			workload.S(workload.Pattern{Bits: []bool{true, false, true, true, false, true, false}, Noise: 0.10}),
			workload.S(workload.Const{Taken: true}),
		).
		Block(3, 10, 25,
			workload.S(workload.Biased{P: 0.6}),
		).
		Block(4, 5, 15,
			workload.S(workload.Phased{
				Phases: []Behavior{workload.Biased{P: 0.95}, workload.Biased{P: 0.05}},
				Period: 6000,
			}),
			workload.S(workload.Const{Taken: true}),
		).
		MustBuild()

	est := core.NewEstimator(tage.Small16K(), core.Options{Mode: core.ModeProbabilistic})
	reader := prog.Open()

	type tally struct {
		preds, misps uint64
		byClass      [core.NumClasses]uint64
	}
	perSite := map[uint64]*tally{}
	for {
		b, err := reader.Next()
		if err != nil {
			break
		}
		pred, class, _ := est.Predict(b.PC)
		t := perSite[b.PC]
		if t == nil {
			t = &tally{}
			perSite[b.PC] = t
		}
		t.preds++
		if pred != b.Taken {
			t.misps++
		}
		t.byClass[class]++
		est.Update(b.PC, b.Taken)
	}

	fmt.Println("per-site dominant confidence class (16 Kbit TAGE, modified automaton)")
	fmt.Printf("%-4s %-10s %-10s %-9s %s\n", "site", "execs", "missrate", "dominant", "class distribution")
	for i, site := range prog.Sites {
		t := perSite[site.PC]
		if t == nil {
			continue
		}
		best := core.Class(0)
		for c := core.Class(1); c < core.NumClasses; c++ {
			if t.byClass[c] > t.byClass[best] {
				best = c
			}
		}
		dist := ""
		for _, c := range core.Classes() {
			if frac := float64(t.byClass[c]) / float64(t.preds); frac >= 0.05 {
				dist += fmt.Sprintf("%s=%.0f%% ", c, 100*frac)
			}
		}
		fmt.Printf("%-4d %-10d %-10.3f %-9s %s\n",
			i, t.preds, float64(t.misps)/float64(t.preds), best, dist)
	}
	if len(perSite) == 0 {
		log.Fatal("no sites executed")
	}
}

// Behavior re-exported for the composite literal above.
type Behavior = workload.Behavior
