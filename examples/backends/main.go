// Backends: run every registered predictor family over the same trace
// through the one backend-agnostic API and compare accuracy and
// confidence behavior — the "Branch Prediction Is Not a Solved Problem"
// exercise in five lines per predictor. Specs parameterize each family
// ("gshare-64K?hist=13", "tage-16K?mode=adaptive&mkp=4", ...); see
// repro.Backends() for the registry.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	tr, err := repro.TraceByName("186.crafty")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("registered backend families:")
	for _, f := range repro.Backends() {
		fmt.Printf("  %-11s %s\n", f.Name, f.Summary)
	}

	specs := []string{
		"bimodal-64K",
		"gshare-64K",
		"perceptron",
		"ogehl",
		"jrs-64K?enhanced=true",
		"tage-64K?mode=probabilistic",
		"ltage-64K",
	}
	fmt.Printf("\n%s, 200k branches:\n", tr.Name())
	fmt.Printf("  %-28s %9s  %23s\n", "backend", "misp/KI", "high-confidence slice")
	for _, spec := range specs {
		res, err := repro.RunSpec(spec, tr, 200_000)
		if err != nil {
			log.Fatal(err)
		}
		high := res.Level(repro.High)
		pcov := 100 * float64(high.Preds) / float64(res.Total.Preds)
		fmt.Printf("  %-28s %9.2f  %6.1f%% of preds @ %5.1f MKP\n",
			spec, res.MPKI(), pcov, high.MKP())
	}
	fmt.Println("\n(high-confidence slice: coverage and misprediction rate of the")
	fmt.Println(" predictions each backend grades high — the paper's estimator is")
	fmt.Println(" storage-free; JRS pays table bits for its grading.)")
}
