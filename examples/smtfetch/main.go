// SMT fetch policy: two hardware threads share one fetch port; the
// confidence-throttled policy (Luo et al., the paper's §2.1 SMT
// application) deprioritizes the thread whose in-flight branches are
// likely mispredicted, raising useful throughput over round-robin.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/smtpolicy"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// Thread 0 is predictable, thread 1 is branch-misprediction bound: the
	// interesting case for confidence-driven arbitration.
	names := []string{"255.vortex", "300.twolf"}
	var traces []trace.Trace
	for _, n := range names {
		tr, err := workload.ByName(n)
		if err != nil {
			log.Fatal(err)
		}
		traces = append(traces, tr)
	}

	fmt.Println("2-way SMT shared fetch port (16 Kbit TAGE per thread, modified automaton)")
	fmt.Printf("threads: %v\n\n", names)
	fmt.Printf("%-14s %-12s %-16s %s\n", "policy", "throughput", "wrong-path frac", "per-thread useful")

	opts := core.Options{Mode: core.ModeProbabilistic}
	for _, p := range []smtpolicy.Policy{
		smtpolicy.RoundRobin,
		smtpolicy.ICount,
		smtpolicy.ConfidenceThrottle,
	} {
		cfg := smtpolicy.DefaultConfig()
		cfg.Policy = p
		st, err := smtpolicy.Run(tage.Small16K(), opts, cfg, traces, 80000)
		if err != nil {
			log.Fatal(err)
		}
		var per []string
		for _, th := range st.Threads {
			per = append(per, fmt.Sprintf("%s=%d", th.Trace, th.UsefulFetched))
		}
		fmt.Printf("%-14s %-12.3f %-16.3f %v\n",
			p, st.Throughput(), st.WrongPathFraction(), per)
	}

	fmt.Println()
	fmt.Println("Confidence throttling starves the wrong-path-prone thread only while")
	fmt.Println("its in-flight branches are low confidence, converting wasted fetch")
	fmt.Println("bandwidth into useful work for the other thread.")
}
