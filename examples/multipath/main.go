// Dual-path execution: fork fetch on low-confidence branches (Klauser et
// al.'s selective eager execution, the paper's §2.1 multipath
// application). Confidence selectivity is what makes forking affordable:
// compare forking never / on low confidence / on low+medium / always.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/multipath"
	"repro/internal/tage"
	"repro/internal/workload"
)

func main() {
	fmt.Println("Selective dual-path execution (16 Kbit TAGE, modified automaton)")
	fmt.Println()

	opts := core.Options{Mode: core.ModeProbabilistic}
	for _, traceName := range []string{"300.twolf", "186.crafty", "252.eon"} {
		tr, err := workload.ByName(traceName)
		if err != nil {
			log.Fatal(err)
		}
		all, err := multipath.Compare(tage.Small16K(), opts, multipath.DefaultConfig(), tr, 120000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", traceName)
		fmt.Printf("  %-16s %-8s %-10s %-8s %-14s %s\n",
			"policy", "IPC", "wasted", "forks", "fork-accuracy", "squashes avoided")
		for _, p := range []multipath.ForkPolicy{
			multipath.ForkNever,
			multipath.ForkLowConfidence,
			multipath.ForkLowOrMedium,
			multipath.ForkAlways,
		} {
			st := all[p]
			fmt.Printf("  %-16s %-8.2f %-10s %-8d %-14s %d\n",
				p, st.IPC(),
				fmt.Sprintf("%.1f%%", 100*st.WastedFraction()),
				st.Forks,
				fmt.Sprintf("%.0f%%", 100*st.ForkAccuracy()),
				st.SavedSquashes)
		}
		fmt.Println()
	}
	fmt.Println("Forking only on the ~30%-misprediction low class avoids squashes at a")
	fmt.Println("fraction of the bandwidth fork-always burns on safe branches.")
}
