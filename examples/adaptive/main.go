// Adaptive saturation probability: watch the §6.2 controller adjust the
// probability at run time to hold the high-confidence misprediction rate
// under 10 MKP while maximizing coverage, across traces of very different
// difficulty.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/metrics"
)

func main() {
	fmt.Println("Adaptive saturation probability (16 Kbit TAGE, target < 10 MKP on high confidence)")
	fmt.Println()
	fmt.Printf("%-14s %-12s %-12s %-12s %-10s\n",
		"trace", "final prob", "high Pcov", "high MPrate", "adjustments")

	for _, name := range []string{
		"252.eon",    // very predictable: probability can stay high
		"FP-1",       //
		"186.crafty", // middling
		"SERV-4",     // capacity-stressed
		"300.twolf",  // hard: controller must throttle saturation
		"164.gzip",   //
	} {
		tr, err := repro.TraceByName(name)
		if err != nil {
			log.Fatal(err)
		}
		est := repro.NewEstimator(repro.Small16K(), repro.Options{
			Mode:           repro.ModeAdaptive,
			AdaptiveWindow: 8192, // smaller window: visible adaptation on short runs
		})
		res, err := repro.Run(est, tr, 300000)
		if err != nil {
			log.Fatal(err)
		}
		hi := res.Level(repro.High)
		fmt.Printf("%-14s 1/%-10.0f %-12.3f %-12.1f %d\n",
			name,
			1/res.FinalProbability,
			metrics.Pcov(hi, res.Total),
			hi.MKP(),
			est.Controller().Adjustments())
	}

	fmt.Println()
	fmt.Println("Predictable traces keep a high saturation probability (large coverage);")
	fmt.Println("hard traces drive it toward 1/1024 to keep the high class clean.")
}
