// Fetch gating: use the storage-free confidence levels to gate the fetch
// stage when mispredictions are likely in flight (Manne et al.'s pipeline
// gating, the paper's §2.1 energy application), and show the trade-off
// curve the three-level estimator exposes.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fetchgate"
	"repro/internal/tage"
	"repro/internal/workload"
)

func main() {
	opts := core.Options{Mode: core.ModeProbabilistic}
	cfg := tage.Small16K()

	fmt.Println("Confidence-driven pipeline gating (16 Kbit TAGE, modified automaton)")
	fmt.Println("gate policy: stall fetch while summed in-flight confidence boost >= threshold")
	fmt.Println()

	for _, traceName := range []string{"300.twolf", "SERV-2", "252.eon"} {
		tr, err := workload.ByName(traceName)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", traceName)
		fmt.Printf("  %-12s %-22s %-12s %s\n", "policy", "wrong-path reduction", "slowdown", "gated cycles")
		for _, p := range []struct {
			name string
			cfg  fetchgate.Config
		}{
			{"balanced", fetchgate.DefaultConfig()},
			{"aggressive", fetchgate.AggressiveConfig()},
		} {
			gated, baseline, err := fetchgate.Compare(cfg, opts, p.cfg, tr, 120000)
			if err != nil {
				log.Fatal(err)
			}
			s := fetchgate.Evaluate(gated, baseline)
			fmt.Printf("  %-12s %-22s %-12s %d\n",
				p.name,
				fmt.Sprintf("%.1f%%", 100*s.WrongPathReduction),
				fmt.Sprintf("%.1f%%", 100*s.Slowdown),
				gated.GatedCycles)
		}
		fmt.Println()
	}
	fmt.Println("The low/medium/high split is what makes the balanced point possible:")
	fmt.Println("low-confidence branches gate in pairs, medium-confidence in fours,")
	fmt.Println("high-confidence branches never gate.")
}
