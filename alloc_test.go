package repro

// Zero-allocation guarantees of the simulation hot paths. The predictor's
// Predict+Update pair and the trace decoder's per-record Next are executed
// hundreds of millions of times per suite run; testing.AllocsPerRun pins
// them at zero heap allocations so a regression shows up as a test
// failure, not as a mysterious slowdown.

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestPredictUpdateZeroAllocs asserts that a warmed estimator performs no
// heap allocations per predicted branch in any automaton mode.
func TestPredictUpdateZeroAllocs(t *testing.T) {
	tr, err := workload.ByName("INT-1")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := trace.Collect(trace.Limit(tr, 40_000))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []AutomatonMode{ModeStandard, ModeProbabilistic, ModeAdaptive} {
		est := NewEstimator(Small16K(), Options{Mode: mode})
		// Warm the predictor so allocation-time growth (none is expected,
		// but e.g. map-backed designs would hide behind a cold start) is
		// behind us before measuring.
		for _, br := range branches[:10_000] {
			est.Predict(br.PC)
			est.Update(br.PC, br.Taken)
		}
		i := 10_000
		allocs := testing.AllocsPerRun(20_000, func() {
			br := branches[i%len(branches)]
			i++
			est.Predict(br.PC)
			est.Update(br.PC, br.Taken)
		})
		if allocs != 0 {
			t.Fatalf("mode %v: %v allocs per predicted branch, want 0", mode, allocs)
		}
	}
}

// TestTraceDecodeZeroAllocs asserts the chunked file decoder allocates
// nothing per decoded record.
func TestTraceDecodeZeroAllocs(t *testing.T) {
	src, err := workload.ByName("FP-1")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/alloc.tbt"
	if err := trace.WriteFile(path, trace.Limit(src, 60_000)); err != nil {
		t.Fatal(err)
	}
	ft, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := ft.Open()
	allocs := testing.AllocsPerRun(30_000, func() {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per decoded file record, want 0", allocs)
	}

	// The in-memory reader must also be allocation-free per record.
	mem, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mr := mem.Open()
	allocs = testing.AllocsPerRun(30_000, func() {
		if _, err := mr.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per decoded memory record, want 0", allocs)
	}
}
