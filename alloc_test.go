package repro

// Zero-allocation guarantees of the simulation hot paths. The predictor's
// Predict+Update pair and the trace decoder's per-record Next are executed
// hundreds of millions of times per suite run; testing.AllocsPerRun pins
// them at zero heap allocations so a regression shows up as a test
// failure, not as a mysterious slowdown.

import (
	"testing"
	"time"

	"repro/internal/bimodal"
	"repro/internal/gshare"
	"repro/internal/jrs"
	"repro/internal/looppred"
	"repro/internal/obs"
	"repro/internal/ogehl"
	"repro/internal/perceptron"
	"repro/internal/serve"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestPredictUpdateZeroAllocs asserts that a warmed estimator performs no
// heap allocations per predicted branch in any automaton mode.
func TestPredictUpdateZeroAllocs(t *testing.T) {
	tr, err := workload.ByName("INT-1")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := trace.Collect(trace.Limit(tr, 40_000))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []AutomatonMode{ModeStandard, ModeProbabilistic, ModeAdaptive} {
		est := NewEstimator(Small16K(), Options{Mode: mode})
		// Warm the predictor so allocation-time growth (none is expected,
		// but e.g. map-backed designs would hide behind a cold start) is
		// behind us before measuring.
		for _, br := range branches[:10_000] {
			est.Predict(br.PC)
			est.Update(br.PC, br.Taken)
		}
		i := 10_000
		allocs := testing.AllocsPerRun(20_000, func() {
			br := branches[i%len(branches)]
			i++
			est.Predict(br.PC)
			est.Update(br.PC, br.Taken)
		})
		if allocs != 0 {
			t.Fatalf("mode %v: %v allocs per predicted branch, want 0", mode, allocs)
		}
	}
}

// TestAllPredictorHotPathsZeroAllocs pins the predict+update hot path of
// every predictor package at zero heap allocations per branch — not just
// TAGE: the baseline predictors (bimodal, gshare, ogehl, perceptron),
// the loop predictor and the JRS confidence estimator all run inside the
// estimator-comparison and extension experiments, where a stray per-
// branch allocation would quietly dominate a suite pass.
func TestAllPredictorHotPathsZeroAllocs(t *testing.T) {
	tr, err := workload.ByName("INT-1")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := trace.Collect(trace.Limit(tr, 40_000))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		step func(i int) // one predict+update pair over branches[i]
	}{
		{name: "bimodal", step: func() func(int) {
			p := bimodal.New(12)
			return func(i int) {
				br := branches[i]
				p.Predict(br.PC)
				p.Update(br.PC, br.Taken)
			}
		}()},
		{name: "bimodal-packed", step: func() func(int) {
			p := bimodal.NewPacked(12)
			return func(i int) {
				br := branches[i]
				p.Predict(br.PC)
				p.Update(br.PC, br.Taken)
			}
		}()},
		{name: "gshare", step: func() func(int) {
			p := gshare.New(14, 12)
			return func(i int) {
				br := branches[i]
				p.Predict(br.PC)
				p.Update(br.PC, br.Taken)
			}
		}()},
		{name: "ogehl", step: func() func(int) {
			p := ogehl.New(ogehl.DefaultConfig())
			return func(i int) {
				br := branches[i]
				p.Predict(br.PC)
				p.Update(br.PC, br.Taken)
			}
		}()},
		{name: "perceptron", step: func() func(int) {
			p := perceptron.New(12, 32)
			return func(i int) {
				br := branches[i]
				p.Predict(br.PC)
				p.Update(br.PC, br.Taken)
			}
		}()},
		{name: "looppred", step: func() func(int) {
			p := looppred.New(looppred.DefaultConfig())
			return func(i int) {
				br := branches[i]
				pred := p.Predict(br.PC)
				// Allocation is gated on a main-predictor miss; report a
				// miss whenever the loop predictor itself was wrong or
				// silent, so the allocation path is exercised constantly.
				tageMiss := !pred.Valid || pred.Pred != br.Taken
				p.Update(br.PC, br.Taken, tageMiss)
			}
		}()},
		{name: "jrs-over-gshare", step: func() func(int) {
			p := gshare.New(14, 12)
			e := jrs.NewDefault(10, 10).Enhanced()
			return func(i int) {
				br := branches[i]
				pred := p.Predict(br.PC)
				e.HighConfidence(br.PC, pred)
				e.Update(br.PC, pred, br.Taken)
				p.Update(br.PC, br.Taken)
			}
		}()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Warm up (table growth would be a design bug, but warming keeps
			// the measurement about the steady-state hot path).
			for i := 0; i < 10_000; i++ {
				c.step(i % len(branches))
			}
			i := 10_000
			allocs := testing.AllocsPerRun(20_000, func() {
				c.step(i % len(branches))
				i++
			})
			if allocs != 0 {
				t.Fatalf("%s: %v allocs per predicted branch, want 0", c.name, allocs)
			}
		})
	}
}

// TestServeHotPathZeroAllocs pins the per-branch serving path of the
// online prediction service at zero heap allocations: session lookup in
// the sharded registry, the Predict/Update pair with its tally, and the
// response-frame encode into a reused buffer. This is the loop a server
// connection runs per served branch, so a stray allocation here scales
// with live traffic, not with sessions.
//
// The session is keyed and the engine has a checkpoint store attached —
// the durable configuration — because the guarantee must survive it:
// dirty tracking rides on the branch counter the tally already maintains,
// and checkpoint encoding happens on the checkpoint pass (between
// batches), never on the serving path. AllocsPerRun measures global
// allocations, so the checkpoint itself runs between the measured
// windows, exactly like the background loop interleaving with traffic.
func TestServeHotPathZeroAllocs(t *testing.T) {
	tr, err := workload.ByName("INT-1")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := trace.Collect(trace.Limit(tr, 40_000))
	if err != nil {
		t.Fatal(err)
	}
	// MaxInflight is on so the measured loop includes the admission gate:
	// overload control must not cost the hot path an allocation. The
	// flight recorder and serve-time histogram are on too — the observing
	// the production handler does per batch rides inside the measured
	// window, so instrumentation that allocates fails this pin.
	eng := serve.NewEngine(serve.EngineConfig{MaxInflight: 4})
	rec := obs.NewFlightRecorder(64)
	eng.SetEvents(rec)
	var hist obs.Histogram
	cs, err := serve.OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AttachStore(cs, 0); err != nil {
		t.Fatal(err)
	}
	sess, err := eng.Open(serve.OpenRequest{
		Config:  "16K",
		Options: Options{Mode: ModeProbabilistic},
		Key:     "alloc/hot-path",
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := sess.ID()
	batch := make([]trace.Branch, 1)
	grades := make([]byte, 0, 8)
	out := make([]byte, 0, 64)
	step := func(i int) {
		s, ok := eng.Lookup(id)
		if !ok {
			t.Fatal("session lost")
		}
		if !eng.AcquireBatch() {
			t.Fatal("admission gate shed an uncontended batch")
		}
		batch[0] = branches[i%len(branches)]
		serveStart := time.Now()
		grades, ok = s.Serve(batch, grades, int64(i))
		served := time.Since(serveStart)
		eng.ReleaseBatch()
		if !ok {
			t.Fatal("session retired")
		}
		// Mirror the server's per-batch instrumentation: one histogram
		// sample and one flight-recorder event per served batch.
		hist.Observe(served)
		rec.Record(obs.Event{
			UnixNano: int64(i), Kind: obs.EvBatch, Conn: 1, Session: id,
			Key: "alloc/hot-path", Backend: "16K", Frame: 0x03, Batch: 1,
			ServeNS: served.Nanoseconds(),
		})
		out = serve.AppendPredictions(out[:0], id, grades)
	}
	for i := 0; i < 10_000; i++ {
		step(i)
	}
	i := 10_000
	measure := func() {
		allocs := testing.AllocsPerRun(20_000, func() {
			step(i)
			i++
		})
		if allocs != 0 {
			t.Fatalf("%v allocs per served branch, want 0", allocs)
		}
	}
	measure()
	// A checkpoint pass between batches must not disturb the next window
	// (and the session, having served branches, must actually be dirty).
	if n := eng.CheckpointDirty(1, false); n != 1 {
		t.Fatalf("CheckpointDirty wrote %d checkpoints, want 1", n)
	}
	measure()
}

// TestObsHotPathZeroAllocs pins each observability primitive at zero
// heap allocations per operation in isolation: atomic counter and gauge
// updates, a histogram observation (bucket index + three atomic adds),
// and a flight-recorder event (one ring-slot copy under a mutex). These
// are the operations the serve handler performs per batch, so any of
// them allocating would put a per-batch allocation on the hot path.
func TestObsHotPathZeroAllocs(t *testing.T) {
	var c obs.Counter
	var g obs.Gauge
	var h obs.Histogram
	rec := obs.NewFlightRecorder(64)
	cases := []struct {
		name string
		op   func(i int)
	}{
		{"counter", func(i int) { c.Inc(); c.Add(uint64(i)) }},
		{"gauge", func(i int) { g.Set(int64(i)); g.Add(-1) }},
		{"histogram", func(i int) { h.ObserveValue(uint64(i) * 977) }},
		{"flight-recorder", func(i int) {
			rec.Record(obs.Event{
				UnixNano: int64(i), Kind: obs.EvBatch, Conn: 7, Session: 42,
				Key: "alloc/obs", Backend: "64Kbits", Frame: 0x03, Batch: 512,
				QueueNS: 1000, ServeNS: 2000, FlushNS: 300,
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			i := 0
			allocs := testing.AllocsPerRun(20_000, func() {
				tc.op(i)
				i++
			})
			if allocs != 0 {
				t.Fatalf("%s: %v allocs per op, want 0", tc.name, allocs)
			}
		})
	}
}

// TestTraceOpenReuseZeroAllocs asserts that reopening a synthetic
// workload Program allocates nothing once its reader pool is warm: an
// exhausted reader returns itself to the Program's pool, and the next
// Open re-derives every random stream and resets (not reallocates) every
// behavior instance. This is the guarantee that cut the ~290k
// trace-open allocations a full Table 1 run used to pay (3 configs × 2
// suites × 20 traces, each Open rebuilding hundreds of per-site
// objects). The program below deliberately includes every behavior
// archetype, so a behavior whose instance loses its Resettable
// implementation shows up here as a per-Open allocation.
func TestTraceOpenReuseZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop Puts; pool-recycling alloc pins cannot hold under -race")
	}
	prog := workload.NewBuilder("alloc-probe", 0xA110C).
		SetLength(2048).
		Block(4, 2, 5,
			workload.S(workload.Const{Taken: true}),
			workload.S(workload.Loop{Trip: 7}),
			workload.S(workload.VarLoop{Min: 2, Max: 9}),
			workload.S(workload.Biased{P: 0.7}),
		).
		Block(3, 2, 4,
			workload.S(workload.Pattern{Bits: []bool{true, false, true}, Noise: 0.01}),
			workload.S(workload.Correlated{Lags: []int{2, 5}, Noise: 0.02}),
			workload.S(workload.Markov{PHot: 0.9, PCold: 0.1, Switch: 0.01}),
		).
		Block(2, 1, 3,
			workload.S(workload.Phased{
				Phases: []workload.Behavior{workload.Biased{P: 0.9}, workload.Loop{Trip: 4}},
				Period: 200,
			}),
			workload.S(workload.LocalPattern{Taps: []int{1, 3}}),
		).
		MustBuild()

	drain := func() {
		r := prog.Open()
		for {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	}
	allocs := testing.AllocsPerRun(30, drain)
	if allocs != 0 {
		t.Fatalf("%v allocs per trace reopen, want 0 (reader pool not recycling)", allocs)
	}

	// Every experiment drives traces through trace.Limit (sim.Run wraps
	// unconditionally), so the wrapped path must recycle too: the
	// truncating wrapper releases the inner reader back to the pool via
	// the exported Close hook. Only the limitReader wrapper itself may
	// allocate per Open.
	for _, limit := range []uint64{1024, 2048, 4096} { // truncated, exact, over-length
		lt := trace.Limit(prog, limit)
		drainWrapped := func() {
			r := lt.Open()
			for {
				if _, err := r.Next(); err != nil {
					return
				}
			}
		}
		allocs = testing.AllocsPerRun(30, drainWrapped)
		if allocs > 1 {
			t.Fatalf("limit %d: %v allocs per wrapped reopen, want <= 1 (inner reader not recycling through trace.Limit)", limit, allocs)
		}
	}
}

// TestTraceDecodeZeroAllocs asserts the chunked file decoder allocates
// nothing per decoded record.
func TestTraceDecodeZeroAllocs(t *testing.T) {
	src, err := workload.ByName("FP-1")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/alloc.tbt"
	if err := trace.WriteFile(path, trace.Limit(src, 60_000)); err != nil {
		t.Fatal(err)
	}
	ft, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := ft.Open()
	allocs := testing.AllocsPerRun(30_000, func() {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per decoded file record, want 0", allocs)
	}

	// The in-memory reader must also be allocation-free per record.
	mem, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mr := mem.Open()
	allocs = testing.AllocsPerRun(30_000, func() {
		if _, err := mr.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per decoded memory record, want 0", allocs)
	}
}
