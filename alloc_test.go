package repro

// Zero-allocation guarantees of the simulation hot paths. The predictor's
// Predict+Update pair and the trace decoder's per-record Next are executed
// hundreds of millions of times per suite run; testing.AllocsPerRun pins
// them at zero heap allocations so a regression shows up as a test
// failure, not as a mysterious slowdown.

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// TestPredictUpdateZeroAllocs asserts that a warmed estimator performs no
// heap allocations per predicted branch in any automaton mode.
func TestPredictUpdateZeroAllocs(t *testing.T) {
	tr, err := workload.ByName("INT-1")
	if err != nil {
		t.Fatal(err)
	}
	branches, err := trace.Collect(trace.Limit(tr, 40_000))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []AutomatonMode{ModeStandard, ModeProbabilistic, ModeAdaptive} {
		est := NewEstimator(Small16K(), Options{Mode: mode})
		// Warm the predictor so allocation-time growth (none is expected,
		// but e.g. map-backed designs would hide behind a cold start) is
		// behind us before measuring.
		for _, br := range branches[:10_000] {
			est.Predict(br.PC)
			est.Update(br.PC, br.Taken)
		}
		i := 10_000
		allocs := testing.AllocsPerRun(20_000, func() {
			br := branches[i%len(branches)]
			i++
			est.Predict(br.PC)
			est.Update(br.PC, br.Taken)
		})
		if allocs != 0 {
			t.Fatalf("mode %v: %v allocs per predicted branch, want 0", mode, allocs)
		}
	}
}

// TestTraceOpenReuseZeroAllocs asserts that reopening a synthetic
// workload Program allocates nothing once its reader pool is warm: an
// exhausted reader returns itself to the Program's pool, and the next
// Open re-derives every random stream and resets (not reallocates) every
// behavior instance. This is the guarantee that cut the ~290k
// trace-open allocations a full Table 1 run used to pay (3 configs × 2
// suites × 20 traces, each Open rebuilding hundreds of per-site
// objects). The program below deliberately includes every behavior
// archetype, so a behavior whose instance loses its Resettable
// implementation shows up here as a per-Open allocation.
func TestTraceOpenReuseZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop Puts; pool-recycling alloc pins cannot hold under -race")
	}
	prog := workload.NewBuilder("alloc-probe", 0xA110C).
		SetLength(2048).
		Block(4, 2, 5,
			workload.S(workload.Const{Taken: true}),
			workload.S(workload.Loop{Trip: 7}),
			workload.S(workload.VarLoop{Min: 2, Max: 9}),
			workload.S(workload.Biased{P: 0.7}),
		).
		Block(3, 2, 4,
			workload.S(workload.Pattern{Bits: []bool{true, false, true}, Noise: 0.01}),
			workload.S(workload.Correlated{Lags: []int{2, 5}, Noise: 0.02}),
			workload.S(workload.Markov{PHot: 0.9, PCold: 0.1, Switch: 0.01}),
		).
		Block(2, 1, 3,
			workload.S(workload.Phased{
				Phases: []workload.Behavior{workload.Biased{P: 0.9}, workload.Loop{Trip: 4}},
				Period: 200,
			}),
			workload.S(workload.LocalPattern{Taps: []int{1, 3}}),
		).
		MustBuild()

	drain := func() {
		r := prog.Open()
		for {
			if _, err := r.Next(); err != nil {
				return
			}
		}
	}
	allocs := testing.AllocsPerRun(30, drain)
	if allocs != 0 {
		t.Fatalf("%v allocs per trace reopen, want 0 (reader pool not recycling)", allocs)
	}

	// Every experiment drives traces through trace.Limit (sim.Run wraps
	// unconditionally), so the wrapped path must recycle too: the
	// truncating wrapper releases the inner reader back to the pool via
	// the exported Close hook. Only the limitReader wrapper itself may
	// allocate per Open.
	for _, limit := range []uint64{1024, 2048, 4096} { // truncated, exact, over-length
		lt := trace.Limit(prog, limit)
		drainWrapped := func() {
			r := lt.Open()
			for {
				if _, err := r.Next(); err != nil {
					return
				}
			}
		}
		allocs = testing.AllocsPerRun(30, drainWrapped)
		if allocs > 1 {
			t.Fatalf("limit %d: %v allocs per wrapped reopen, want <= 1 (inner reader not recycling through trace.Limit)", limit, allocs)
		}
	}
}

// TestTraceDecodeZeroAllocs asserts the chunked file decoder allocates
// nothing per decoded record.
func TestTraceDecodeZeroAllocs(t *testing.T) {
	src, err := workload.ByName("FP-1")
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/alloc.tbt"
	if err := trace.WriteFile(path, trace.Limit(src, 60_000)); err != nil {
		t.Fatal(err)
	}
	ft, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := ft.Open()
	allocs := testing.AllocsPerRun(30_000, func() {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per decoded file record, want 0", allocs)
	}

	// The in-memory reader must also be allocation-free per record.
	mem, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mr := mem.Open()
	allocs = testing.AllocsPerRun(30_000, func() {
		if _, err := mr.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("%v allocs per decoded memory record, want 0", allocs)
	}
}
