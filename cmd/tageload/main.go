// Command tageload is the load generator for tageserved: it replays the
// synthetic workload suites over N concurrent connections and reports
// throughput, tail latency and the per-level confidence breakdown.
// Sessions open any registered backend through the shared -backend flag.
//
// Usage:
//
//	tageload -addr localhost:7421 -suite cbp1 -conns 8
//	tageload -addr localhost:7421 -trace 300.twolf -config 16K -mode adaptive
//	tageload -addr localhost:7421 -backend gshare-64K -suite cbp2
//	tageload -addr localhost:7421 -duration 2s -conns 4
//
// In pass mode (the default) every connection replays its share of the
// suite exactly once and the per-level counts are exact: they match an
// offline sim.Run over the same traces bit for bit (the repository's
// equivalence tests pin this; -verify recomputes the comparison inline).
// In duration mode (-duration > 0) the connections loop over their
// traces until the deadline — the throughput-soak configuration the CI
// smoke job uses.
//
// With -nodes, tageload drives a cluster through the failover-aware
// router: sessions are keyed (durable), placed by consistent hashing,
// and survive node restarts and crashes — transient failures are
// retried and reported in the final cluster roll-up instead of aborting
// the run:
//
//	tageload -nodes localhost:7421,localhost:7431 -suite cbp1 -verify
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bf        = core.AddBackendFlags(flag.CommandLine, "64K", "probabilistic")
		addr      = flag.String("addr", "localhost:7421", "tageserved wire-protocol address")
		suiteName = flag.String("suite", "cbp1", "suite to replay: cbp1, cbp2 or all")
		traceName = flag.String("trace", "", "replay a single trace instead of a suite")
		conns     = flag.Int("conns", 4, "concurrent connections (one session each at a time)")
		batch     = flag.Int("batch", 1024, "branches per request batch")
		branches  = flag.Uint64("branches", 0, "branch records per trace (0 = full trace)")
		duration  = flag.Duration("duration", 0, "soak: loop replays until this deadline (0 = one exact pass)")
		nodes     = flag.String("nodes", "", "comma-separated cluster addresses; enables the failover-aware router with durable keyed sessions (overrides -addr)")
		keyPrefix = flag.String("key-prefix", "tageload", "session-key prefix in router mode")
		verify    = flag.Bool("verify", false, "pass mode: recompute every trace offline and require bit-identical tallies")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-round-trip read/write deadline (0 disables — a dead server then hangs the run forever)")
		retries   = flag.Int("retries", 0, "router mode: recovery attempts per fault; otherwise the internal busy-retry budget (0 = defaults, negative disables busy retries)")
		seed      = flag.Uint64("seed", 0, "retry/backoff jitter seed (0 = derive from clock; fix it to replay a chaos run's timing)")
		brkThresh = flag.Int("breaker-threshold", 0, "router mode: consecutive failures that open a node's circuit breaker (0 = default, negative disables)")
		brkCool   = flag.Duration("breaker-cooldown", 0, "router mode: breaker open duration before a half-open probe (0 = default)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *timeout == 0 {
		logger.Warn("tageload: -timeout 0: deadlines disabled, a stalled server will hang this run indefinitely")
	}
	clientCfg := serve.ClientConfig{
		DialTimeout:  5 * time.Second,
		ReadTimeout:  *timeout,
		WriteTimeout: *timeout,
		Seed:         *seed,
	}
	if *nodes == "" && *retries != 0 {
		clientCfg.BusyRetries = *retries
	}

	opts, err := bf.Options()
	if err != nil {
		fatal("tageload: bad backend options", "err", err)
	}
	var traces []trace.Trace
	if *traceName != "" {
		tr, err := workload.ByName(*traceName)
		if err != nil {
			fatal("tageload: unknown trace", "err", err)
		}
		traces = []trace.Trace{tr}
	} else {
		traces, err = workload.Suite(*suiteName)
		if err != nil {
			fatal("tageload: unknown suite", "err", err)
		}
	}

	var router *serve.Router
	if *nodes != "" {
		router, err = serve.NewRouter(serve.RouterConfig{
			Nodes:            strings.Split(*nodes, ","),
			Client:           clientCfg,
			MaxRetries:       *retries,
			BreakerThreshold: *brkThresh,
			BreakerCooldown:  *brkCool,
			Seed:             *seed,
			Logger:           logger,
		})
		if err != nil {
			fatal("tageload: router setup failed", "err", err)
		}
	}

	n := *conns
	if n < 1 {
		n = 1
	}
	var deadline time.Time
	if *duration > 0 {
		if *verify {
			fatal("tageload: -verify needs an exact pass; drop -duration")
		}
		deadline = time.Now().Add(*duration)
		if *branches == 0 {
			// The deadline is only checked between replays, so a full
			// 600k-branch suite trace could overshoot a short -duration
			// several times over. Cap the per-replay length to bound the
			// overshoot (~tens of ms at observed serving rates); exact
			// full-trace passes are pass mode's job, not the soak's.
			*branches = 50_000
		}
	}

	// Round-robin the traces over the connections. In pass mode each
	// trace is replayed exactly once, so the aggregate equals an offline
	// suite run.
	type workerOut struct {
		results []sim.Result
		lat     metrics.Latency
		busy    uint64
		err     error
	}
	outs := make([]workerOut, n)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out := &outs[w]
			var replay func(i int) bool
			if router != nil {
				// Router mode: keyed durable sessions, transient node
				// failures retried inside Replay (reported in the cluster
				// roll-up) instead of aborting the worker.
				replay = func(i int) bool {
					req := serve.OpenRequest{}
					if bf.Explicit() {
						req.Spec = *bf.Backend
					} else {
						req.Config, req.Options = *bf.Config, opts
					}
					key := fmt.Sprintf("%s/%d/%s", *keyPrefix, w, traces[i].Name())
					rs, err := router.Open(key, req)
					if err != nil {
						out.err = err
						return false
					}
					res, err := rs.Replay(traces[i], *branches, *batch, &out.lat)
					if err != nil {
						out.err = fmt.Errorf("%s: %w", traces[i].Name(), err)
						return false
					}
					out.results = append(out.results, res)
					return true
				}
			} else {
				c, err := serve.DialConfig(*addr, clientCfg)
				if err != nil {
					out.err = err
					return
				}
				defer c.Close()
				defer func() { out.busy = c.BusyRetries() }()
				open := func() (*serve.ClientSession, error) {
					if bf.Explicit() {
						return c.OpenSpec(*bf.Backend)
					}
					return c.Open(*bf.Config, opts)
				}
				replay = func(i int) bool {
					sess, err := open()
					if err != nil {
						out.err = err
						return false
					}
					res, err := sess.Replay(traces[i], *branches, *batch, &out.lat)
					if err != nil {
						out.err = fmt.Errorf("%s: %w", traces[i].Name(), err)
						return false
					}
					out.results = append(out.results, res)
					return true
				}
			}
			if deadline.IsZero() {
				// Pass mode: strided exact shares, each trace replayed
				// exactly once across all connections.
				for i := w; i < len(traces); i += n {
					if !replay(i) {
						return
					}
				}
				return
			}
			// Soak mode: every connection loops the whole trace list from
			// a rotated start until the deadline (several connections may
			// replay the same trace through separate sessions — that is
			// the load pattern, and it keeps every worker busy even with
			// more connections than traces).
			for i := w % len(traces); !time.Now().After(deadline); i = (i + 1) % len(traces) {
				if !replay(i) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []sim.Result
	var lat metrics.Latency
	var busy uint64
	for i := range outs {
		if outs[i].err != nil {
			if router != nil {
				// The router's flight recorder holds the retries, breaker
				// transitions and failovers leading up to the failure.
				var tail strings.Builder
				router.Events().WriteText(&tail)
				logger.Error("tageload: router events at failure", "events", tail.String())
			}
			fatal("tageload: connection failed", "conn", i, "err", outs[i].err)
		}
		all = append(all, outs[i].results...)
		lat.Merge(&outs[i].lat)
		busy += outs[i].busy
	}
	if len(all) == 0 {
		fatal("tageload: no trace replay completed within the duration")
	}

	var agg sim.Result
	for _, res := range all {
		agg.Add(res)
	}
	fmt.Printf("tageload: %d connections, %d trace replays, %s\n", n, len(all), elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput: %.0f branches/sec (%d branches)\n",
		float64(agg.Branches)/elapsed.Seconds(), agg.Branches)
	fmt.Printf("  batch latency (%d branches/batch): %v\n", *batch, &lat)
	fmt.Printf("  accuracy: %.2f misp/KI, %.2f%% mispredicted\n", agg.MPKI(), 100*agg.Total.Rate())
	fmt.Println("  per-level breakdown:")
	for _, l := range core.Levels() {
		c := agg.Level(l)
		fmt.Printf("    %-6s  Pcov=%5.1f%%  MKP=%6.1f  (%d/%d)\n",
			l, 100*metrics.Pcov(c, agg.Total), c.MKP(), c.Misps, c.Preds)
	}
	if deadline.IsZero() {
		fmt.Println("  (exact pass: per-level counts are bit-identical to offline sim.Run)")
	}
	if router != nil {
		fmt.Println("  cluster:")
		for _, ns := range router.Stats() {
			fmt.Printf("    %-24s sessions=%d retries=%d recoveries=%d failovers=%d busy_retries=%d breaker_opens=%d breaker_closes=%d\n",
				ns.Addr, ns.Sessions, ns.Retries, ns.Recoveries, ns.Failovers,
				ns.BusyRetries, ns.BreakerOpens, ns.BreakerCloses)
		}
	} else if busy > 0 {
		fmt.Printf("  busy retries (load-shed batches retried): %d\n", busy)
	}
	if *verify {
		if err := verifyOffline(all, bf, opts, *branches); err != nil {
			fatal("tageload: VERIFY FAILED", "err", err)
		}
		fmt.Printf("  verify: %d replays bit-identical to offline sim.Run\n", len(all))
	}
	if agg.Branches == 0 {
		os.Exit(1)
	}
}

// verifyOffline recomputes every served replay with the offline simulator
// and requires bit-identical tallies — the end-to-end durability check a
// soak script runs after killing and restarting nodes mid-replay.
func verifyOffline(all []sim.Result, bf *core.BackendFlags, opts core.Options, limit uint64) error {
	for _, res := range all {
		tr, err := workload.ByName(res.Trace)
		if err != nil {
			return err
		}
		var offline sim.Result
		if bf.Explicit() {
			sp, err := predictor.Parse(*bf.Backend)
			if err != nil {
				return err
			}
			if offline, err = sim.RunSpec(sp, tr, limit); err != nil {
				return err
			}
			// Spec-opened sessions label results with the request's mode;
			// the tallies are what the check is about.
			offline.Mode = res.Mode
		} else {
			cfg, err := tage.ConfigByName(*bf.Config)
			if err != nil {
				return err
			}
			if offline, err = sim.RunConfig(cfg, opts, tr, limit); err != nil {
				return err
			}
		}
		if res != offline {
			return fmt.Errorf("%s: served %+v != offline %+v", res.Trace, res, offline)
		}
	}
	return nil
}
