package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Record is the BENCH_<date>.json schema.
type Record struct {
	Date       string      `json:"date"`
	Host       Host        `json:"host"`
	Command    string      `json:"command,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Note       string      `json:"note,omitempty"`
}

// Host describes the measurement machine.
type Host struct {
	CPU        string `json:"cpu"`
	Cores      int    `json:"cores"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	Go         string `json:"go,omitempty"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
}

// Benchmark is one parsed result line. Repeated -count runs of the same
// benchmark appear as repeated entries, in input order.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// procSuffix strips the trailing "-<GOMAXPROCS>" go test appends to
// benchmark names on multiprocessor runs, so records from hosts with
// different core counts share names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// benchLine matches "BenchmarkName-4   12345   67.8 ns/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S*)\s+(\d+)\s+(.*)$`)

// Parse reads `go test -bench` output: goos/goarch/pkg/cpu header lines
// and benchmark result lines. Unrecognized lines (PASS, ok, test log
// output) are skipped.
func Parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.Host.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rec.Host.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rec.Host.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("line %q: %v", line, err)
		}
		b := Benchmark{Name: procSuffix.ReplaceAllString(m[1], ""), Iterations: iters}
		if err := b.parseMeasurements(m[3]); err != nil {
			return nil, fmt.Errorf("line %q: %v", line, err)
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return rec, nil
}

// parseMeasurements consumes the "<value> <unit>" pairs after the
// iteration count: ns/op, -benchmem's B/op and allocs/op, and any custom
// b.ReportMetric units (recorded under Metrics).
func (b *Benchmark) parseMeasurements(rest string) error {
	fields := strings.Fields(rest)
	if len(fields)%2 != 0 {
		return fmt.Errorf("odd measurement field count in %q", rest)
	}
	for i := 0; i < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return fmt.Errorf("bad measurement value %q: %v", fields[i], err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			v := int64(val)
			b.BytesPerOp = &v
		case "allocs/op":
			v := int64(val)
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return nil
}

// Write marshals the record as indented JSON.
func (r *Record) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Load reads a committed BENCH_<date>.json.
func Load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rec, nil
}

// bestNs reduces repeated runs to the per-name minimum ns/op — the
// standard way to compare on machines with background noise.
//repro:deterministic
func bestNs(benchmarks []Benchmark) map[string]float64 {
	best := make(map[string]float64)
	for _, b := range benchmarks {
		if cur, ok := best[b.Name]; !ok || b.NsPerOp < cur {
			best[b.Name] = b.NsPerOp
		}
	}
	return best
}

// Gate compares current against baseline for every benchmark name
// matching pattern and present in both records, allowing ns/op to grow
// by at most tolerance (fractional). It returns a human-readable report
// and whether the gate failed. Comparing zero matching names is an error
// rather than a pass, so a renamed benchmark cannot silently disarm the
// gate.
//
// Cross-host comparisons are only advisory by default: ns/op measured on
// different CPU models routinely differs by more than any useful
// tolerance in either direction (CI runners land on varying hardware),
// so when the two records' host CPUs differ the report flags every
// would-be regression but the gate passes unless strictHost is set.
// Same-host comparisons always enforce.
//repro:deterministic
func Gate(current, baseline *Record, pattern string, tolerance float64, strictHost bool) (report string, failed bool, err error) {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return "", false, err
	}
	cur := bestNs(current.Benchmarks)
	base := bestNs(baseline.Benchmarks)
	var names []string
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	matched := names[:0]
	for _, name := range names {
		if re.MatchString(name) {
			if _, ok := base[name]; ok {
				matched = append(matched, name)
			}
		}
	}
	names = matched
	if len(names) == 0 {
		return "", false, fmt.Errorf("no benchmark matching %q present in both current output and baseline", pattern)
	}
	crossHost := current.Host.CPU != baseline.Host.CPU
	var sb strings.Builder
	if crossHost {
		mode := "advisory only (pass); re-baseline on this host or use -strict-host to enforce"
		if strictHost {
			mode = "enforced (-strict-host)"
		}
		fmt.Fprintf(&sb, "warning: baseline measured on %q, current on %q — cross-host ns/op comparison, %s\n",
			baseline.Host.CPU, current.Host.CPU, mode)
	}
	for _, name := range names {
		c, b := cur[name], base[name]
		delta := (c - b) / b
		verdict := "ok"
		if c > b*(1+tolerance) {
			verdict = "REGRESSION"
			if !crossHost || strictHost {
				failed = true
			} else {
				verdict = "REGRESSION (advisory, cross-host)"
			}
		}
		fmt.Fprintf(&sb, "%-50s baseline %10.1f ns/op  current %10.1f ns/op  %+6.1f%%  %s\n",
			name, b, c, 100*delta, verdict)
	}
	if failed {
		fmt.Fprintf(&sb, "gate FAILED: ns/op regressed more than %.0f%% against %s baseline\n", 100*tolerance, baseline.Date)
	}
	return sb.String(), failed, nil
}
