// Command benchjson is the gobench2json converter the PERF.md
// methodology references: it parses `go test -bench` output from stdin
// (header lines plus benchmark result lines, including -benchmem's B/op
// and allocs/op columns and any custom ReportMetric units) and emits the
// BENCH_<date>.json schema used for committed benchmark records.
//
//	go test -run NONE -bench . -benchmem . | go run ./cmd/benchjson \
//	    -command "go test -run NONE -bench . -benchmem ." > BENCH_2026-07-29.json
//
// With -gate it additionally acts as a benchstat-style regression gate:
// the parsed results are compared against a committed baseline JSON and
// the process exits non-zero if any benchmark selected by -match is
// slower than the baseline by more than -tolerance (fractional). The
// best (minimum) ns/op among repeated -count runs of a name is compared,
// so a single noisy run does not fail the gate; when baseline and
// current were measured on different CPU models the comparison is
// advisory unless -strict-host is set (cross-host ns/op deltas say more
// about the hardware than the code).
//
//	go test -run NONE -bench PredictUpdate -count 3 . | \
//	    go run ./cmd/benchjson -gate BENCH_2026-07-29.json -match BenchmarkPredictUpdate
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

func main() {
	var (
		date       = flag.String("date", time.Now().Format("2006-01-02"), "date recorded in the JSON")
		command    = flag.String("command", "", "benchmark command recorded in the JSON")
		note       = flag.String("note", "", "free-form note recorded in the JSON")
		out        = flag.String("out", "", "output file (default stdout)")
		gate       = flag.String("gate", "", "baseline JSON to gate against (no JSON is emitted in gate mode)")
		match      = flag.String("match", "BenchmarkPredictUpdate", "regexp selecting the benchmarks the gate compares")
		tolerance  = flag.Float64("tolerance", 0.10, "fractional ns/op regression allowed by the gate")
		strictHost = flag.Bool("strict-host", false, "enforce the gate even when baseline and current host CPUs differ (default: cross-host regressions are advisory)")
	)
	flag.Parse()

	rec, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
	rec.Date = *date
	rec.Command = *command
	rec.Note = *note
	if rec.Host.Cores == 0 {
		rec.Host.Cores = runtime.NumCPU()
	}
	rec.Host.GoMaxProcs = runtime.GOMAXPROCS(0)
	if rec.Host.Go == "" {
		rec.Host.Go = runtime.Version()
	}

	if *gate != "" {
		baseline, err := Load(*gate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: loading baseline: %v\n", err)
			os.Exit(2)
		}
		report, failed, err := Gate(rec, baseline, *match, *tolerance, *strictHost)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: gate: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(report)
		if failed {
			os.Exit(1)
		}
		return
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if err := rec.Write(w); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}
}
