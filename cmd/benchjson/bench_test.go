package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkPredictUpdate/16Kbits-4         	10281337	       115.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkPredictUpdate/16Kbits-4         	 9474259	       118.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkPredictUpdate/64Kbits-4         	 7086292	       171.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkTable1         	       1	81559832 ns/op	         4.385 cbp1-16K-mpki
PASS
ok  	repro	14.593s
`

func parseSample(t *testing.T) *Record {
	t.Helper()
	rec, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestParseHeaderAndLines(t *testing.T) {
	rec := parseSample(t)
	if rec.Host.CPU != "Intel(R) Xeon(R) Processor @ 2.70GHz" {
		t.Fatalf("cpu = %q", rec.Host.CPU)
	}
	if rec.Host.GOOS != "linux" || rec.Host.GOARCH != "amd64" {
		t.Fatalf("goos/goarch = %q/%q", rec.Host.GOOS, rec.Host.GOARCH)
	}
	if len(rec.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rec.Benchmarks))
	}
	b := rec.Benchmarks[0]
	if b.Name != "BenchmarkPredictUpdate/16Kbits" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", b.Name)
	}
	if b.Iterations != 10281337 || b.NsPerOp != 115.9 {
		t.Fatalf("iterations/ns = %d/%v", b.Iterations, b.NsPerOp)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 0 || b.BytesPerOp == nil || *b.BytesPerOp != 0 {
		t.Fatalf("benchmem columns not parsed: %+v", b)
	}
	// Custom ReportMetric units land in Metrics.
	t1 := rec.Benchmarks[3]
	if t1.Metrics["cbp1-16K-mpki"] != 4.385 {
		t.Fatalf("custom metric not parsed: %+v", t1.Metrics)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Fatal("want error on input without benchmark lines")
	}
}

func TestGatePassAndFail(t *testing.T) {
	baseline := parseSample(t)
	baseline.Date = "2026-07-29"

	// Identical numbers pass.
	report, failed, err := Gate(parseSample(t), baseline, "BenchmarkPredictUpdate", 0.10, false)
	if err != nil || failed {
		t.Fatalf("identical gate failed: %v\n%s", err, report)
	}

	// Within tolerance (best-of-count absorbs one noisy run).
	cur := parseSample(t)
	cur.Benchmarks[1].NsPerOp = 400 // second 16K run noisy; best run unchanged
	if _, failed, _ := Gate(cur, baseline, "BenchmarkPredictUpdate", 0.10, false); failed {
		t.Fatal("gate must compare best-of-count, not any single run")
	}

	// Beyond tolerance fails.
	cur = parseSample(t)
	for i := range cur.Benchmarks {
		cur.Benchmarks[i].NsPerOp *= 1.25
	}
	report, failed, err = Gate(cur, baseline, "BenchmarkPredictUpdate", 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("25%% regression must fail the gate:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") {
		t.Fatalf("report does not flag the regression:\n%s", report)
	}

	// A pattern matching nothing is an error, not a silent pass.
	if _, _, err := Gate(parseSample(t), baseline, "BenchmarkDoesNotExist", 0.10, false); err == nil {
		t.Fatal("gate with zero matches must error")
	}
}

func TestGateCrossHostAdvisory(t *testing.T) {
	baseline := parseSample(t)
	baseline.Date = "2026-07-29"

	// Same regression magnitude, but measured on a different CPU model:
	// advisory by default (report flags it, gate passes), enforced with
	// strictHost.
	cur := parseSample(t)
	cur.Host.CPU = "AMD EPYC 7763 64-Core Processor"
	for i := range cur.Benchmarks {
		cur.Benchmarks[i].NsPerOp *= 1.25
	}
	report, failed, err := Gate(cur, baseline, "BenchmarkPredictUpdate", 0.10, false)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("cross-host regression must be advisory by default:\n%s", report)
	}
	if !strings.Contains(report, "warning: baseline measured on") || !strings.Contains(report, "advisory") {
		t.Fatalf("cross-host report missing advisory warning:\n%s", report)
	}
	if _, failed, _ = Gate(cur, baseline, "BenchmarkPredictUpdate", 0.10, true); !failed {
		t.Fatal("-strict-host must enforce the cross-host comparison")
	}

	// A cross-host run without regressions passes either way.
	ok := parseSample(t)
	ok.Host.CPU = cur.Host.CPU
	if _, failed, _ = Gate(ok, baseline, "BenchmarkPredictUpdate", 0.10, true); failed {
		t.Fatal("cross-host gate failed without a regression")
	}
}
