// Command tagesim runs a branch predictor over a synthetic trace or a
// whole suite and reports accuracy with the confidence-class breakdown.
// Any registered backend runs through the shared -backend flag; the
// legacy -config/-mode flags remain as shorthand for TAGE specs.
//
// Usage:
//
//	tagesim -config 64K -trace 300.twolf
//	tagesim -config 16K -suite cbp1 -mode probabilistic -branches 200000
//	tagesim -backend gshare-64K -suite cbp2
//	tagesim -backend "tage-16K?mode=adaptive&mkp=4" -trace 181.mcf
//	tagesim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/workload"
)

func main() {
	var (
		bf        = core.AddBackendFlags(flag.CommandLine, "64K", "standard")
		traceName = flag.String("trace", "", "single trace to simulate (see -list)")
		suiteName = flag.String("suite", "", "suite to simulate: cbp1, cbp2 or all")
		branches  = flag.Uint64("branches", 0, "branch records per trace (0 = full trace)")
		parallel  = flag.Int("parallel", 0, "simulation workers for suite runs (0 = GOMAXPROCS, 1 = serial)")
		timings   = flag.Bool("timings", false, "report per-trace wall-time quantiles for suite runs")
		list      = flag.Bool("list", false, "list available backends, configurations and traces, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("backends (-backend FAMILY[-VARIANT][?key=value&...]):")
		for _, f := range predictor.Families() {
			variants := "no variants"
			if len(f.Variants) > 0 {
				variants = "variants: " + strings.Join(f.Variants, ", ")
			}
			fmt.Printf("  %-11s %s\n              %s; params: %s\n", f.Name, f.Summary, variants, f.ParamsHelp)
		}
		fmt.Println("configurations (-config): 16K, 64K, 256K")
		fmt.Println("suites: cbp1, cbp2, all")
		fmt.Printf("traces: %s\n", strings.Join(workload.TraceNames(), ", "))
		return
	}

	spec, err := bf.Spec()
	if err != nil {
		fatal(err)
	}
	probe, sp, err := predictor.New(spec)
	if err != nil {
		fatal(err)
	}

	switch {
	case *traceName != "":
		tr, err := workload.ByName(*traceName)
		if err != nil {
			fatal(err)
		}
		res, err := sim.Run(probe, tr, *branches)
		if err != nil {
			fatal(err)
		}
		report(res)
	case *suiteName != "":
		traces, err := workload.Suite(*suiteName)
		if err != nil {
			fatal(err)
		}
		pool := sim.SuiteRunner{Workers: *parallel}
		if *timings {
			pool.JobTime = &obs.Histogram{}
		}
		sr, err := pool.RunSuiteSpec(sp, traces, *branches)
		if err != nil {
			fatal(err)
		}
		var rows [][]string
		var mpkis []float64
		for _, res := range sr.PerTrace {
			rows = append(rows, []string{res.Trace, fmt.Sprintf("%.2f", res.MPKI()),
				fmt.Sprintf("%.1f", res.Total.MKP())})
			mpkis = append(mpkis, res.MPKI())
		}
		textplot.Table(os.Stdout, fmt.Sprintf("%s on %s (%v automaton)", probe.Label(), *suiteName, predictor.ModeOf(probe)),
			[]string{"trace", "misp/KI", "MKP"}, rows)
		fmt.Printf("\nper-trace misp/KI: %s\n\n", metrics.Summarize(mpkis))
		if h := pool.JobTime; h != nil {
			fmt.Printf("per-trace wall time: n=%d p50=%v p90=%v p99=%v max=%v\n\n",
				h.Count(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Quantile(1))
		}
		report(sr.Aggregate)
	default:
		fatal(fmt.Errorf("specify -trace or -suite (or -list)"))
	}
}

func report(res sim.Result) {
	fmt.Printf("%s, %s, %v automaton: %d branches, %.2f misp/KI (%.1f MKP)\n",
		res.Trace, res.Config, res.Mode, res.Branches, res.MPKI(), res.Total.MKP())
	var rows [][]string
	for _, c := range core.Classes() {
		rows = append(rows, []string{
			c.String(), c.Level().String(),
			fmt.Sprintf("%.3f", res.Pcov(c)),
			fmt.Sprintf("%.3f", res.MPcov(c)),
			fmt.Sprintf("%.1f", res.MPrate(c)),
		})
	}
	textplot.Table(os.Stdout, "prediction classes",
		[]string{"class", "level", "Pcov", "MPcov", "MPrate (MKP)"}, rows)
	var lrows [][]string
	for _, l := range core.Levels() {
		lc := res.Level(l)
		lrows = append(lrows, []string{
			l.String(),
			fmt.Sprintf("%.3f", metrics.Pcov(lc, res.Total)),
			fmt.Sprintf("%.3f", metrics.MPcov(lc, res.Total)),
			fmt.Sprintf("%.1f", lc.MKP()),
		})
	}
	textplot.Table(os.Stdout, "confidence levels",
		[]string{"level", "Pcov", "MPcov", "MPrate (MKP)"}, lrows)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tagesim:", err)
	os.Exit(1)
}
