// Command tageserved is the online prediction server: it hosts predictor
// sessions behind the internal/serve wire protocol, so clients stream
// branch outcomes in and get (prediction, class, level) grades back
// live. Sessions are heterogeneous: each open request may name any
// registered backend spec, and /metrics reports per-backend counters.
//
// Usage:
//
//	tageserved -addr :7421 -metrics :7422
//	tageserved -config 16K -mode adaptive -shards 32 -max-sessions 10000
//	tageserved -backend gshare-64K
//
// The -backend flag (or the legacy -config/-mode pair) sets the
// predictor a session gets when its open request names no backend;
// clients may request any registered backend per session.
//
// With -state-dir, keyed sessions are durable: their state is
// checkpointed to the directory every -checkpoint-interval (and on
// shutdown), and a restarted server restores every checkpoint before
// accepting traffic — clients resume exactly where they left off, even
// across a crash:
//
//	tageserved -addr :7421 -state-dir /var/lib/tageserved
//
// The -metrics listener serves Prometheus text exposition at /metrics,
// liveness at /healthz and /livez, readiness at /readyz (503 while
// draining), and the flight-recorder event ring at /debug/events.
// -debug-addr opts into a separate pprof listener.
//
// SIGINT/SIGTERM shut the server down gracefully: readiness flips to
// draining first (so load balancers stop routing), -drain-grace elapses,
// then live connections are closed, handlers drained, and a final
// checkpoint written for every live keyed session.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/serve"
	"repro/internal/tage"
)

func main() {
	var (
		bf          = core.AddBackendFlags(flag.CommandLine, "64K", "probabilistic")
		addr        = flag.String("addr", ":7421", "wire-protocol TCP listen address")
		metricsAddr = flag.String("metrics", "", "HTTP listen address for /metrics, /healthz, /livez, /readyz and /debug/events (empty = disabled)")
		debugAddr   = flag.String("debug-addr", "", "HTTP listen address for pprof profiling endpoints (empty = disabled)")
		eventBuffer = flag.Int("event-buffer", 0, "flight-recorder ring size in events (0 = default, <0 disables the recorder)")
		shards      = flag.Int("shards", serve.DefaultShards, "session-registry lock stripes (rounded up to a power of two)")
		maxSessions = flag.Int("max-sessions", 0, "live-session cap (0 = unlimited)")
		idleTimeout = flag.Duration("idle-timeout", serve.DefaultIdleTimeout, "evict sessions idle this long (<0 disables eviction)")
		stateDir    = flag.String("state-dir", "", "checkpoint directory for durable keyed sessions (empty = sessions are in-memory only)")
		ckptEvery   = flag.Duration("checkpoint-interval", serve.DefaultCheckpointInterval, "checkpoint dirty keyed sessions this often (<0 disables the loop; eviction and shutdown still checkpoint)")
		maxInflight = flag.Int("max-inflight", 0, "admission control: batches served concurrently before load-shedding FrameBusy (0 = unlimited)")
		frameTO     = flag.Duration("frame-timeout", serve.DefaultFrameTimeout, "evict a peer that stalls mid-frame for this long (<0 disables slow-reader eviction)")
		writeTO     = flag.Duration("write-timeout", serve.DefaultWriteTimeout, "evict a peer that stops draining responses for this long (<0 disables slow-writer eviction)")
		drainGrace  = flag.Duration("drain-grace", 0, "on SIGINT/SIGTERM, fail readiness this long before closing connections (lets load balancers drain)")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "tageserved: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(logger)
	fatal := func(err error) {
		logger.Error("tageserved: fatal", "err", err)
		os.Exit(1)
	}

	if *maxInflight == 0 {
		logger.Warn("tageserved: -max-inflight 0: admission control disabled, overload will queue instead of shedding")
	}
	if *frameTO < 0 {
		logger.Warn("tageserved: -frame-timeout < 0: slow-reader eviction disabled, a stalled peer can park a handler forever")
	}
	if *writeTO < 0 {
		logger.Warn("tageserved: -write-timeout < 0: slow-writer eviction disabled, an undrained peer can park a handler forever")
	}

	cfg, err := tage.ConfigByName(*bf.Config)
	if err != nil {
		fatal(err)
	}
	opts, err := bf.Options()
	if err != nil {
		fatal(err)
	}
	// Validate an explicit -backend up front so a typo fails at startup,
	// not on the first open request; resolve its canonical label for the
	// startup log line.
	defaultLabel := cfg.Name + "/" + opts.Mode.String()
	if bf.Explicit() {
		probe, _, err := predictor.New(*bf.Backend)
		if err != nil {
			fatal(err)
		}
		defaultLabel = probe.Label()
	}

	srv := serve.NewServer(serve.Config{
		Addr:               *addr,
		MetricsAddr:        *metricsAddr,
		DebugAddr:          *debugAddr,
		EventBuffer:        *eventBuffer,
		IdleTimeout:        *idleTimeout,
		CheckpointInterval: *ckptEvery,
		FrameTimeout:       *frameTO,
		WriteTimeout:       *writeTO,
		Engine: serve.EngineConfig{
			Shards:         *shards,
			MaxSessions:    *maxSessions,
			MaxInflight:    *maxInflight,
			DefaultConfig:  cfg,
			DefaultOptions: opts,
			DefaultSpec:    *bf.Backend,
		},
	})
	if *stateDir != "" {
		// Attach the store here rather than through Config.StateDir so the
		// warm-start restore count makes the startup log (Serve skips its
		// own attach when one is already wired in).
		cs, err := serve.OpenCheckpointStore(*stateDir)
		if err != nil {
			fatal(err)
		}
		restored, err := srv.Engine().AttachStore(cs, time.Now().UnixNano())
		if err != nil {
			fatal(err)
		}
		// Keep the "restored N checkpointed sessions" phrase verbatim in
		// the message: the crash-recovery soak greps for it.
		logger.Info(fmt.Sprintf("tageserved: state dir %s (restored %d checkpointed sessions, checkpoint interval %v)",
			*stateDir, restored, *ckptEvery))
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	// Wait for the listener so the startup log line carries the bound
	// address (":0" resolves to a real port).
	for srv.Addr() == nil {
		select {
		case err := <-done:
			fatal(err)
		case <-time.After(time.Millisecond):
		}
	}
	logger.Info("tageserved: serving",
		"addr", srv.Addr().String(), "default_backend", defaultLabel,
		"shards", *shards, "max_sessions", *maxSessions, "idle_timeout", *idleTimeout)
	if ma := srv.MetricsAddr(); ma != nil {
		logger.Info("tageserved: metrics listener up", "url", "http://"+ma.String()+"/metrics")
	}
	if da := srv.DebugAddr(); da != nil {
		logger.Info("tageserved: pprof listener up", "url", "http://"+da.String()+"/debug/pprof/")
	}

	select {
	case err := <-done:
		fatal(err)
	case sig := <-sigc:
		logger.Info("tageserved: shutting down", "signal", sig.String(), "drain_grace", *drainGrace)
		if *drainGrace > 0 {
			// Fail readiness first so load balancers route around this
			// instance while existing streams finish naturally.
			srv.BeginDrain()
			time.Sleep(*drainGrace)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("tageserved: shutdown failed", "err", err)
			os.Exit(1)
		}
		snap := srv.Engine().Snapshot()
		logger.Info("tageserved: served, bye",
			"branches", snap.Branches, "sessions", snap.OpenedSessions,
			"mispredict_pct", fmt.Sprintf("%.2f", 100*snap.Total.Rate()))
		if snap.ShedBatches > 0 {
			logger.Info("tageserved: load shed under admission control", "batches", snap.ShedBatches)
		}
		if snap.CheckpointsWritten > 0 || snap.CheckpointRestores > 0 {
			logger.Info("tageserved: checkpoint totals",
				"written", snap.CheckpointsWritten, "bytes", snap.CheckpointBytes,
				"restores", snap.CheckpointRestores, "write_failures", snap.CheckpointWriteFailures)
		}
	}
}
