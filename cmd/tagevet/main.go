// Command tagevet is the repository's static-analysis suite: a
// multichecker of repo-specific analyzers (hotpath, statecodec,
// lockcheck, frames) enforcing the invariants the runtime pins only
// catch after the fact. See PERF.md "Static invariants" for the
// directive conventions.
//
// Standalone (the CI entry point):
//
//	go run ./cmd/tagevet ./...
//	go run ./cmd/tagevet -test=false ./internal/serve
//
// As a vet tool (integrates with go vet's per-package driver and build
// cache):
//
//	go build -o /tmp/tagevet ./cmd/tagevet
//	go vet -vettool=/tmp/tagevet ./...
//
// Exit status: 0 when clean, 1 on findings, 2 on internal errors.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

func main() {
	// go vet -vettool probes the tool before use: -V=full for the build
	// cache key, -flags for the flag set it may forward.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(runVetTool(os.Args[1]))
	}
	os.Exit(runStandalone())
}

// printVersion emits the "<name> version <id>" line go vet's build
// cache keys vet results by; the id hashes the tool binary so edits to
// the analyzers invalidate cached verdicts.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version tagevet-%s\n", name, id)
}

func runStandalone() int {
	fs := flag.NewFlagSet("tagevet", flag.ExitOnError)
	tests := fs.Bool("test", true, "also analyze packages' test files")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tagevet [-test=false] packages...\n\nAnalyzers:\n")
		for _, a := range suite.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	units, facts, err := load.Load(load.Config{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagevet: %v\n", err)
		return 2
	}

	var lines []string
	seen := make(map[string]bool)
	for _, u := range units {
		pass := func(a *analysis.Analyzer) *analysis.Pass {
			return &analysis.Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Types,
				TypesInfo: u.Info,
				Dirs:      u.Dirs,
				Facts:     facts,
				Report: func(d analysis.Diagnostic) {
					line := fmt.Sprintf("%s: %s [%s]", u.Fset.Position(d.Pos), d.Message, d.Analyzer)
					if !seen[line] {
						seen[line] = true
						lines = append(lines, line)
					}
				},
			}
		}
		for _, a := range suite.All() {
			if err := a.Run(pass(a)); err != nil {
				fmt.Fprintf(os.Stderr, "tagevet: %s on %s: %v\n", a.Name, u.PkgPath, err)
				return 2
			}
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, l)
	}
	if len(lines) > 0 {
		fmt.Fprintf(os.Stderr, "tagevet: %d finding(s)\n", len(lines))
		return 1
	}
	return 0
}
