// Command tagevet is the repository's static-analysis suite: a
// multichecker of repo-specific analyzers (hotpath, atomics,
// determinism, statecodec, lockcheck, frames) enforcing the invariants
// the runtime pins only catch after the fact. See PERF.md "Static
// invariants" for the directive conventions.
//
// Standalone (the CI entry point):
//
//	go run ./cmd/tagevet ./...
//	go run ./cmd/tagevet -test=false ./internal/serve
//	go run ./cmd/tagevet -json ./...   // machine-readable findings
//	go run ./cmd/tagevet -gha ./...    // GitHub Actions ::error lines
//	go run ./cmd/tagevet -facts ./...  // compiler-facts golden gate
//
// The -facts mode runs the compilerfacts gate instead of the source
// analyzers: it rebuilds the tree with diagnostic gcflags, distills
// bounds-check/escape/inline facts for every //repro:hotpath function,
// and compares them against the committed golden
// (internal/analysis/compilerfacts/testdata/compilerfacts.golden).
// UPDATE_FACTS_GOLDEN=1 refreshes the golden in place.
//
// As a vet tool (integrates with go vet's per-package driver and build
// cache):
//
//	go build -o /tmp/tagevet ./cmd/tagevet
//	go vet -vettool=/tmp/tagevet ./...
//
// Exit status: 0 when clean, 1 on findings, 2 on internal errors.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/compilerfacts"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

func main() {
	// go vet -vettool probes the tool before use: -V=full for the build
	// cache key, -flags for the flag set it may forward.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(runVetTool(os.Args[1]))
	}
	os.Exit(runStandalone())
}

// printVersion emits the "<name> version <id>" line go vet's build
// cache keys vet results by; the id hashes the tool binary so edits to
// the analyzers invalidate cached verdicts.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version tagevet-%s\n", name, id)
}

// finding is one diagnostic in machine-readable form (the -json
// schema; stable field names are part of the CI contract).
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func runStandalone() int {
	fs := flag.NewFlagSet("tagevet", flag.ExitOnError)
	tests := fs.Bool("test", true, "also analyze packages' test files")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	ghaOut := fs.Bool("gha", false, "emit findings as GitHub Actions ::error annotations")
	factsMode := fs.Bool("facts", false, "run the compiler-facts golden gate instead of the source analyzers")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tagevet [-test=false] [-json] [-gha] [-facts] packages...\n\nAnalyzers:\n")
		for _, a := range suite.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", "facts", "compiler-fact golden gate (bounds checks, heap escapes, inlining) for //repro:hotpath functions")
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	if *factsMode {
		return runFacts(patterns, *ghaOut)
	}

	units, facts, err := load.Load(load.Config{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagevet: %v\n", err)
		return 2
	}

	var findings []finding
	seen := make(map[finding]bool)
	for _, u := range units {
		pass := func(a *analysis.Analyzer) *analysis.Pass {
			return &analysis.Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Types,
				TypesInfo: u.Info,
				Dirs:      u.Dirs,
				Facts:     facts,
				Report: func(d analysis.Diagnostic) {
					pos := u.Fset.Position(d.Pos)
					f := finding{File: pos.Filename, Line: pos.Line, Col: pos.Column, Analyzer: d.Analyzer, Message: d.Message}
					if !seen[f] {
						seen[f] = true
						findings = append(findings, f)
					}
				},
			}
		}
		for _, a := range suite.All() {
			if err := a.Run(pass(a)); err != nil {
				fmt.Fprintf(os.Stderr, "tagevet: %s on %s: %v\n", a.Name, u.PkgPath, err)
				return 2
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return emit(findings, *jsonOut, *ghaOut)
}

// emit writes findings in the selected format and returns the exit
// status. JSON goes to stdout (it is the payload); text and ::error
// annotations go to stderr like go vet's own output.
func emit(findings []finding, jsonOut, ghaOut bool) int {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "tagevet: %v\n", err)
			return 2
		}
	}
	for _, f := range findings {
		if ghaOut {
			// GitHub annotation paths must be repo-relative for the finding
			// to land on the PR diff.
			file := f.File
			if wd, err := os.Getwd(); err == nil {
				if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			fmt.Fprintf(os.Stderr, "::error file=%s,line=%d,col=%d,title=tagevet/%s::%s\n",
				filepath.ToSlash(file), f.Line, f.Col, f.Analyzer, ghaEscape(f.Message))
		} else if !jsonOut {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		if !jsonOut {
			fmt.Fprintf(os.Stderr, "tagevet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// ghaEscape encodes the characters GitHub's annotation parser treats as
// message terminators.
func ghaEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// goldenRelPath locates the compilerfacts golden inside the module.
const goldenRelPath = "internal/analysis/compilerfacts/testdata/compilerfacts.golden"

// runFacts drives the compiler-facts gate: collect, then refresh or
// compare the committed golden, plus the golden-independent must-be-zero
// and waiver-hygiene checks.
func runFacts(patterns []string, ghaOut bool) int {
	root := moduleRoot(".")
	if root == "" {
		fmt.Fprintf(os.Stderr, "tagevet -facts: no go.mod above the working directory\n")
		return 2
	}
	report, err := compilerfacts.Collect(root, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagevet -facts: %v\n", err)
		return 2
	}
	rendered := report.Render()
	goldenPath := filepath.Join(root, goldenRelPath)

	failed := false
	fail := func(msg string) {
		failed = true
		if ghaOut {
			fmt.Fprintf(os.Stderr, "::error title=tagevet/facts::%s\n", ghaEscape(msg))
		} else {
			fmt.Fprintf(os.Stderr, "tagevet -facts: %s\n", msg)
		}
	}
	for _, v := range report.Violations() {
		fail(v)
	}

	if os.Getenv("UPDATE_FACTS_GOLDEN") == "1" {
		if err := compilerfacts.WriteGolden(goldenPath, rendered); err != nil {
			fmt.Fprintf(os.Stderr, "tagevet -facts: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "tagevet -facts: wrote %s (%s)\n", goldenPath, report.GoVersion)
		if failed {
			return 1
		}
		return 0
	}

	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		fail(fmt.Sprintf("missing golden %s — generate it with UPDATE_FACTS_GOLDEN=1 go run ./cmd/tagevet -facts ./...", goldenRelPath))
		return 1
	}
	if gv := compilerfacts.GoldenVersion(string(golden)); gv != report.GoVersion {
		// Compiler facts are toolchain-specific; a mismatched local
		// toolchain would produce pure-noise diffs. CI pins the version, so
		// skipping here loses nothing.
		fmt.Fprintf(os.Stderr, "tagevet -facts: warning: golden is for %s, toolchain is %s; skipping the golden gate\n", gv, report.GoVersion)
		if failed {
			return 1
		}
		return 0
	}
	if diff := compilerfacts.Diff(string(golden), rendered); len(diff) > 0 {
		fail(fmt.Sprintf("compiler facts diverge from %s (- golden, + current); inspect the diff, fix the regression or refresh with UPDATE_FACTS_GOLDEN=1:", goldenRelPath))
		for _, d := range diff {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
	}
	if failed {
		return 1
	}
	fmt.Fprintf(os.Stderr, "tagevet -facts: %d hotpath function(s) match %s (%s)\n", len(report.Funcs), goldenRelPath, report.GoVersion)
	return 0
}
