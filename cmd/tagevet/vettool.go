package main

// go vet -vettool support: the go command drives one process per
// package, handing it a JSON config describing the package's files,
// its import map, and the export-data files of every dependency — the
// unitchecker protocol. Type information comes from the supplied export
// data; module-local hot-path facts are rebuilt syntactically from the
// dependency sources (resolved through the module root), since the
// protocol's fact files are an x/tools serialization this stdlib-only
// driver does not speak.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
	"repro/internal/analysis/suite"
)

// vetConfig mirrors the go command's per-package vet configuration.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tagevet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tagevet: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The output facts file is an action output the go command caches;
	// this driver keeps no cross-package facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "tagevet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tagevet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	tpkg, info, err := load.Check(fset, pkgPath, files, load.Importer(fset, cfg.PackageFile, cfg.ImportMap))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "tagevet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	facts := vetToolFacts(&cfg, fset, pkgPath, files)

	dirs := analysis.NewDirectives(fset, files)
	var lines []string
	seen := make(map[string]bool)
	for _, a := range suite.All() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
			Dirs:      dirs,
			Facts:     facts,
			Report: func(d analysis.Diagnostic) {
				line := fmt.Sprintf("%s: %s [%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
				if !seen[line] {
					seen[line] = true
					lines = append(lines, line)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "tagevet: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 2
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(os.Stderr, l)
	}
	if len(lines) > 0 {
		return 1
	}
	return 0
}

// vetToolFacts rebuilds module-local directive facts (hotpath,
// deterministic, atomic fields) from source:
// the current package plus every module-local entry of the import map,
// located under the module root.
func vetToolFacts(cfg *vetConfig, fset *token.FileSet, pkgPath string, files []*ast.File) *analysis.ModuleFacts {
	facts := analysis.NewModuleFacts()
	facts.ModulePath = cfg.ModulePath
	if facts.ModulePath == "" {
		facts.ModulePath = modulePathFromRoot(cfg.Dir)
	}
	load.CollectFacts(facts, pkgPath, files)

	root := moduleRoot(cfg.Dir)
	if root == "" || facts.ModulePath == "" {
		return facts
	}
	seen := map[string]bool{pkgPath: true}
	for _, m := range []map[string]string{cfg.ImportMap, cfg.PackageFile} {
		for dep := range m {
			dep = strings.TrimSuffix(dep, " ["+cfg.ID+"]")
			if i := strings.Index(dep, " ["); i >= 0 {
				dep = dep[:i]
			}
			if seen[dep] || (dep != facts.ModulePath && !strings.HasPrefix(dep, facts.ModulePath+"/")) {
				continue
			}
			seen[dep] = true
			dir := filepath.Join(root, strings.TrimPrefix(dep, facts.ModulePath))
			entries, err := os.ReadDir(dir)
			if err != nil {
				continue
			}
			depFset := token.NewFileSet()
			for _, e := range entries {
				if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				f, err := parser.ParseFile(depFset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil {
					continue
				}
				load.CollectFacts(facts, dep, []*ast.File{f})
			}
		}
	}
	return facts
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// modulePathFromRoot reads the module path out of the enclosing go.mod.
func modulePathFromRoot(dir string) string {
	root := moduleRoot(dir)
	if root == "" {
		return ""
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}
