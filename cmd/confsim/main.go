// Command confsim runs the confidence-estimation comparisons: a
// confidence-graded backend in binary (high vs not-high) mode against
// the JRS storage-based baselines over the same predictions, reporting
// Grunwald et al.'s SENS/PVP/SPEC/PVN quality metrics, and the adaptive
// controller's probability trajectory.
//
// The graded row defaults to the paper's storage-free estimator on
// probabilistic TAGE; -backend swaps in any registered backend
// ("perceptron", "ogehl", "gshare-64K", ...), with the JRS baselines
// re-grading that backend's prediction stream.
//
// Usage:
//
//	confsim -config 16K -suite cbp1
//	confsim -backend perceptron -suite cbp1
//	confsim -config 64K -trace 300.twolf -adaptive
//
// -parallel sets the simulation worker count (0 = GOMAXPROCS, 1 = serial)
// for both modes: the comparison fans the (estimator × trace) matrix out
// across the pool, and the -adaptive trajectory fans its per-trace runs
// out with order-preserving output. Results are byte-identical at every
// worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/jrs"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bf        = core.AddBackendFlags(flag.CommandLine, "16K", "probabilistic")
		suiteName = flag.String("suite", "cbp1", "suite: cbp1, cbp2 or all")
		traceName = flag.String("trace", "", "single trace instead of a suite")
		branches  = flag.Uint64("branches", 0, "branch records per trace (0 = full)")
		parallel  = flag.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS, 1 = serial)")
		adaptive  = flag.Bool("adaptive", false, "show the adaptive controller trajectory instead")
	)
	flag.Parse()

	var traces []trace.Trace
	if *traceName != "" {
		tr, err := workload.ByName(*traceName)
		if err != nil {
			fatal(err)
		}
		traces = []trace.Trace{tr}
	} else {
		var err error
		traces, err = workload.Suite(*suiteName)
		if err != nil {
			fatal(err)
		}
	}

	pool := sim.SuiteRunner{Workers: *parallel}
	if *adaptive {
		// The trajectory is the §6.2 TAGE adaptive controller; there is
		// no backend-agnostic equivalent, so an explicit -backend is a
		// contradiction rather than something to silently ignore.
		if bf.Explicit() {
			fatal(fmt.Errorf("-adaptive shows the TAGE adaptive-controller trajectory and is incompatible with -backend (use -config)"))
		}
		cfg, err := tage.ConfigByName(*bf.Config)
		if err != nil {
			fatal(err)
		}
		trajectory(pool, cfg, traces, *branches)
		return
	}
	spec, err := bf.Spec()
	if err != nil {
		fatal(err)
	}
	sp, err := predictor.Parse(spec)
	if err != nil {
		fatal(err)
	}
	compare(pool, sp, bf.Explicit(), traces, *branches)
}

// backendAdapter exposes a Backend's raw predictions to the
// storage-based estimators (sim.Predictor).
type backendAdapter struct{ b predictor.Backend }

func (a backendAdapter) Predict(pc uint64) bool {
	pred, _, _ := a.b.Predict(pc)
	return pred
}
func (a backendAdapter) Update(pc uint64, taken bool) { a.b.Update(pc, taken) }

// tageAdapter lets storage-based estimators grade raw TAGE predictions
// (the legacy default: the unmodified standard-automaton predictor, as
// in the paper's related-work comparison).
type tageAdapter struct{ p *tage.Predictor }

func (a tageAdapter) Predict(pc uint64) bool       { return a.p.Predict(pc).Pred }
func (a tageAdapter) Update(pc uint64, taken bool) { a.p.Update(pc, taken) }

func compare(pool sim.SuiteRunner, sp predictor.Spec, explicitBackend bool, traces []trace.Trace, limit uint64) {
	probe, err := predictor.Build(sp)
	if err != nil {
		fatal(err)
	}
	label := probe.Label()
	// The JRS baselines grade a raw prediction stream. Without -backend
	// that stream is the paper's: the unmodified standard-automaton TAGE
	// predictor (the graded row wraps the probabilistic estimator of the
	// same configuration). With -backend both rows run over the named
	// backend.
	substrate := func() sim.Predictor {
		b, err := predictor.Build(sp)
		if err != nil {
			fatal(err)
		}
		return backendAdapter{b}
	}
	if !explicitBackend {
		cfg := probe.(*core.Estimator).Predictor().Config()
		substrate = func() sim.Predictor { return tageAdapter{tage.New(cfg)} }
	}
	type estimatorRun struct {
		name    string
		storage int
		run     func(tr trace.Trace) (metrics.Binary, error)
	}
	runs := []estimatorRun{
		{
			name: fmt.Sprintf("%s self-confidence (high vs rest)", label), storage: 0,
			run: func(tr trace.Trace) (metrics.Binary, error) {
				b, err := predictor.Build(sp)
				if err != nil {
					return metrics.Binary{}, err
				}
				res, err := sim.RunGradedBinary(b, tr, limit)
				return res.Confusion, err
			},
		},
		{
			name: "JRS 4-bit (1K entries)", storage: jrs.NewDefault(10, 10).StorageBits(),
			run: func(tr trace.Trace) (metrics.Binary, error) {
				res, err := sim.RunBinary(substrate(), jrs.NewDefault(10, 10), tr, limit)
				return res.Confusion, err
			},
		},
		{
			name: "JRS 4-bit enhanced", storage: jrs.NewDefault(10, 10).StorageBits(),
			run: func(tr trace.Trace) (metrics.Binary, error) {
				res, err := sim.RunBinary(substrate(), jrs.NewDefault(10, 10).Enhanced(), tr, limit)
				return res.Confusion, err
			},
		},
	}
	// The full (estimator × trace) matrix fans out across the pool;
	// per-cell confusions are merged in estimator-major, trace-minor
	// order, so the table is identical at any worker count.
	cells := make([]metrics.Binary, len(runs)*len(traces))
	if err := pool.ForEach(len(cells), func(i int) error {
		conf, err := runs[i/len(traces)].run(traces[i%len(traces)])
		if err != nil {
			return err
		}
		cells[i] = conf
		return nil
	}); err != nil {
		fatal(err)
	}
	var rows [][]string
	for ei, er := range runs {
		var total metrics.Binary
		for ti := range traces {
			total.Add(cells[ei*len(traces)+ti])
		}
		rows = append(rows, []string{
			er.name, fmt.Sprintf("%d bits", er.storage),
			fmt.Sprintf("%.3f", total.Sens()),
			fmt.Sprintf("%.3f", total.PVP()),
			fmt.Sprintf("%.3f", total.Spec()),
			fmt.Sprintf("%.3f", total.PVN()),
		})
	}
	textplot.Table(os.Stdout,
		fmt.Sprintf("binary confidence estimation on %s (%d traces)", label, len(traces)),
		[]string{"estimator", "extra storage", "SENS", "PVP", "SPEC", "PVN"}, rows)
}

// trajectory fans the independent per-trace adaptive runs out across the
// pool, collecting each trace's line into its own slot so output order
// (and content) is identical to a serial loop at any worker count.
func trajectory(pool sim.SuiteRunner, cfg tage.Config, traces []trace.Trace, limit uint64) {
	lines := make([]string, len(traces))
	if err := pool.ForEach(len(traces), func(i int) error {
		tr := traces[i]
		est := core.NewEstimator(cfg, core.Options{Mode: core.ModeAdaptive})
		res, err := sim.Run(est, tr, limit)
		if err != nil {
			return err
		}
		hi := res.Level(core.High)
		lines[i] = fmt.Sprintf("%-14s final probability 1/%.0f  adjustments %d  high: Pcov %.3f MPrate %.1f MKP\n",
			tr.Name(), 1/res.FinalProbability, est.Controller().Adjustments(),
			metrics.Pcov(hi, res.Total), hi.MKP())
		return nil
	}); err != nil {
		fatal(err)
	}
	for _, line := range lines {
		fmt.Print(line)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "confsim:", err)
	os.Exit(1)
}
