// Command tracegen generates, inspects and exports the synthetic branch
// traces standing in for the CBP-1/CBP-2 sets.
//
// Usage:
//
//	tracegen -list
//	tracegen -trace 181.mcf -stats
//	tracegen -trace SERV-2 -branches 100000 -out serv2.tbt
//	tracegen -in serv2.tbt -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available traces")
		traceName = flag.String("trace", "", "trace to generate")
		inFile    = flag.String("in", "", "read a serialized trace file instead of generating")
		outFile   = flag.String("out", "", "write the trace to this file (binary TBT1 format)")
		branches  = flag.Uint64("branches", 0, "branch records (0 = full trace)")
		stats     = flag.Bool("stats", false, "print stream statistics")
	)
	flag.Parse()

	if *list {
		fmt.Printf("traces: %s\n", strings.Join(workload.TraceNames(), ", "))
		return
	}

	var tr trace.Trace
	switch {
	case *inFile != "":
		// Stream the file through the chunked decoder instead of loading
		// it into memory: stats and re-export are single passes.
		t, err := trace.OpenFile(*inFile)
		if err != nil {
			fatal(err)
		}
		tr = trace.Limit(t, *branches)
	case *traceName != "":
		t, err := workload.ByName(*traceName)
		if err != nil {
			fatal(err)
		}
		tr = trace.Limit(t, *branches)
	default:
		fatal(fmt.Errorf("specify -trace or -in (or -list)"))
	}

	if *outFile != "" {
		if err := trace.WriteFile(*outFile, tr); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *outFile)
	}
	if *stats || *outFile == "" {
		s, err := trace.Measure(tr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %s\n", tr.Name(), s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
