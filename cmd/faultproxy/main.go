// Command faultproxy is a deterministic fault-injecting TCP relay for
// chaos testing the serving stack: it sits between a client (tageload)
// and a server (tageserved) and corrupts, drops, resets, stalls and
// fragments traffic on a replayable schedule keyed by -seed. The same
// seed injects the same faults at the same byte offsets run after run,
// so a failing chaos soak is reproducible from its printed seed alone.
//
// Usage:
//
//	faultproxy -listen :7471 -upstream localhost:7421 -seed 42 \
//	    -corrupt 0.002 -drop 0.002 -reset 0.002 -stall 0.0005 -stall-for 500ms
//
// Faults apply per upstream I/O operation. On SIGINT/SIGTERM the proxy
// prints its fault tally and exits; the tally also prints every
// -report interval (0 disables periodic reports).
package main

import (
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultnet"
)

func main() {
	var (
		listen   = flag.String("listen", ":7471", "TCP listen address clients connect to")
		upstream = flag.String("upstream", "localhost:7421", "server address traffic relays to")
		seed     = flag.Uint64("seed", 0, "fault-schedule seed (0 = derive from clock; the chosen seed is always printed)")
		corrupt  = flag.Float64("corrupt", 0, "per-operation probability of flipping one bit of relayed data")
		drop     = flag.Float64("drop", 0, "per-operation probability of delivering a strict prefix and killing the conn")
		reset    = flag.Float64("reset", 0, "per-operation probability of an immediate connection reset")
		stall    = flag.Float64("stall", 0, "per-operation probability of stalling for -stall-for")
		stallFor = flag.Duration("stall-for", time.Second, "stall duration (drive it past the server's -frame-timeout to exercise slow-peer eviction)")
		jitter   = flag.Duration("jitter", 0, "uniform per-operation latency in [0, jitter)")
		frag     = flag.Bool("fragment", false, "fragment all relayed traffic (short reads and chunked writes)")
		report   = flag.Duration("report", 0, "print the fault tally this often (0 = only at exit)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)

	if *seed == 0 {
		*seed = uint64(time.Now().UnixNano())
	}
	cfg := faultnet.Config{
		Seed:          *seed,
		CorruptRate:   *corrupt,
		DropRate:      *drop,
		ResetRate:     *reset,
		StallRate:     *stall,
		StallFor:      *stallFor,
		LatencyJitter: *jitter,
		ShortReads:    *frag,
		ChunkWrites:   *frag,
	}
	p, err := faultnet.NewProxy(*listen, *upstream, cfg)
	if err != nil {
		logger.Error("faultproxy: listen failed", "err", err)
		os.Exit(1)
	}
	// The seed attribute is the reproduction handle: a failing soak reruns
	// with this exact value to replay the same fault schedule.
	logger.Info("faultproxy: relaying",
		"listen", p.Addr().String(), "upstream", *upstream, "seed", *seed,
		"corrupt", *corrupt, "drop", *drop, "reset", *reset,
		"stall", *stall, "stall_for", *stallFor, "jitter", *jitter, "fragment", *frag)

	done := make(chan error, 1)
	go func() { done <- p.Serve() }()
	if *report > 0 {
		go func() {
			for range time.Tick(*report) {
				logger.Info("faultproxy: tally", "seed", *seed, "stats", p.Stats().String())
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		logger.Error("faultproxy: serve failed", "seed", *seed, "stats", p.Stats().String(), "err", err)
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("faultproxy: shutting down", "signal", sig.String())
		p.Close()
		<-done
		logger.Info("faultproxy: final tally", "seed", *seed, "stats", p.Stats().String())
	}
}
