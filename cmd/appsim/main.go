// Command appsim runs the confidence-estimation applications (§2.1 of the
// paper): pipeline gating / fetch throttling, SMT fetch policies, and
// selective dual-path execution.
//
// Usage:
//
//	appsim -app gating    -trace 300.twolf
//	appsim -app gating    -trace SERV-2 -gate aggressive
//	appsim -app throttle  -trace 300.twolf
//	appsim -app smt       -threads 255.vortex,300.twolf
//	appsim -app multipath -trace 300.twolf
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/fetchgate"
	"repro/internal/multipath"
	"repro/internal/smtpolicy"
	"repro/internal/tage"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		app        = flag.String("app", "gating", "application: gating, throttle, smt or multipath")
		configName = flag.String("config", "16K", "predictor configuration: 16K, 64K or 256K")
		traceName  = flag.String("trace", "300.twolf", "trace for gating/throttle/multipath")
		threads    = flag.String("threads", "255.vortex,300.twolf", "comma-separated traces for smt")
		gate       = flag.String("gate", "balanced", "gating point: balanced or aggressive")
		branches   = flag.Uint64("branches", 120000, "branch records per trace (0 = full)")
	)
	flag.Parse()

	cfg, err := tage.ConfigByName(*configName)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Mode: core.ModeProbabilistic}

	switch *app {
	case "gating", "throttle":
		tr := mustTrace(*traceName)
		gcfg := fetchgate.DefaultConfig()
		if *gate == "aggressive" {
			gcfg = fetchgate.AggressiveConfig()
		}
		if *app == "throttle" {
			gcfg.ThrottleWidth = 1
		}
		gated, base, err := fetchgate.Compare(cfg, opts, gcfg, tr, *branches)
		if err != nil {
			fatal(err)
		}
		s := fetchgate.Evaluate(gated, base)
		fmt.Printf("%s on %s (%s %s):\n", *app, *traceName, cfg.Name, *gate)
		fmt.Printf("  baseline: %s\n", base)
		fmt.Printf("  gated:    %s\n", gated)
		fmt.Printf("  wrong-path reduction %.1f%%, slowdown %.1f%%\n",
			100*s.WrongPathReduction, 100*s.Slowdown)

	case "smt":
		var trs []trace.Trace
		for _, n := range strings.Split(*threads, ",") {
			trs = append(trs, mustTrace(strings.TrimSpace(n)))
		}
		var rows [][]string
		for _, p := range []smtpolicy.Policy{smtpolicy.RoundRobin, smtpolicy.ICount, smtpolicy.ConfidenceThrottle} {
			sc := smtpolicy.DefaultConfig()
			sc.Policy = p
			st, err := smtpolicy.Run(cfg, opts, sc, trs, *branches)
			if err != nil {
				fatal(err)
			}
			rows = append(rows, []string{
				p.String(),
				fmt.Sprintf("%.3f", st.Throughput()),
				fmt.Sprintf("%.3f", st.WrongPathFraction()),
				fmt.Sprintf("%d", st.Cycles),
			})
		}
		textplot.Table(os.Stdout, fmt.Sprintf("SMT fetch policies on %s (%s)", *threads, cfg.Name),
			[]string{"policy", "throughput", "wrong-path", "cycles"}, rows)

	case "multipath":
		tr := mustTrace(*traceName)
		all, err := multipath.Compare(cfg, opts, multipath.DefaultConfig(), tr, *branches)
		if err != nil {
			fatal(err)
		}
		var rows [][]string
		for _, p := range []multipath.ForkPolicy{
			multipath.ForkNever, multipath.ForkLowConfidence,
			multipath.ForkLowOrMedium, multipath.ForkAlways,
		} {
			st := all[p]
			rows = append(rows, []string{
				p.String(),
				fmt.Sprintf("%.2f", st.IPC()),
				fmt.Sprintf("%.1f%%", 100*st.WastedFraction()),
				fmt.Sprintf("%d", st.Forks),
				fmt.Sprintf("%.0f%%", 100*st.ForkAccuracy()),
			})
		}
		textplot.Table(os.Stdout, fmt.Sprintf("dual-path policies on %s (%s)", *traceName, cfg.Name),
			[]string{"policy", "IPC", "wasted", "forks", "fork accuracy"}, rows)

	default:
		fatal(fmt.Errorf("unknown app %q (want gating, throttle, smt or multipath)", *app))
	}
}

func mustTrace(name string) trace.Trace {
	tr, err := workload.ByName(name)
	if err != nil {
		fatal(err)
	}
	return tr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "appsim:", err)
	os.Exit(1)
}
