// Command reprotables regenerates the tables and figures of the paper
// (Seznec, "Storage Free Confidence Estimation for the TAGE branch
// predictor", HPCA 2011) from the synthetic workload suites.
//
// Usage:
//
//	reprotables -experiment table1
//	reprotables -experiment all -branches 600000
//	reprotables -experiment all -parallel 4
//	reprotables -listnames
//
// Experiments (see DESIGN.md §5 for the index): table1, fig2, fig3, fig4,
// fig5, fig6, table2, table3, sweep, ablation-window, ablation-usealt,
// ablation-ctr, estimators, all.
//
// -parallel sets the simulation worker count (0 = GOMAXPROCS, 1 = serial).
// Both the experiment axis (sweep points, ablation arms, figure panels,
// the experiments of -experiment all) and the trace axis fan out across
// the same pool, and shared (config, options, suite) combinations are
// simulated exactly once; output is byte-identical at every worker count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		name     = flag.String("experiment", "all", "experiment to regenerate (see -listnames)")
		branches = flag.Uint64("branches", experiments.DefaultLimit, "branch records per trace (0 = full trace)")
		parallel = flag.Int("parallel", 0, "simulation workers for the experiment and trace axes (0 = GOMAXPROCS, 1 = serial)")
		list     = flag.Bool("listnames", false, "list experiment names and exit")
		asJSON   = flag.Bool("json", false, "emit machine-readable JSON instead of rendered tables")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}

	runner := experiments.NewWorkers(*branches, *parallel)
	start := time.Now()
	out, err := runner.Run(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprotables:", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		payload := map[string]any{
			"experiment":       *name,
			"branchesPerTrace": *branches,
			"results":          out,
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintln(os.Stderr, "reprotables:", err)
			os.Exit(1)
		}
	} else {
		for i, r := range out {
			if i > 0 {
				fmt.Println()
			}
			r.Render(os.Stdout)
		}
	}
	fmt.Fprintf(os.Stderr, "\n[%s in %.1fs, %d branch records per trace]\n",
		*name, time.Since(start).Seconds(), *branches)
}
