// Command promlint validates Prometheus text exposition format 0.0.4
// documents — the CI serve-smoke job pipes the live /metrics scrape
// through it so a malformed exposition (bad escaping, duplicate
// series, histogram bucket violations) fails the build instead of
// silently breaking scrapers.
//
// Usage:
//
//	promlint [file ...]
//
// With no arguments (or "-") it reads standard input. Problems print
// as file:line: message on stderr; the exit status is 1 if any input
// had problems.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: promlint [file ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"-"}
	}
	bad := 0
	for _, arg := range args {
		var (
			data []byte
			err  error
			name = arg
		)
		if arg == "-" {
			name = "<stdin>"
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(arg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			os.Exit(2)
		}
		probs := obs.Lint(data)
		for _, p := range probs {
			fmt.Fprintf(os.Stderr, "%s:%d: %s\n", name, p.Line, p.Msg)
		}
		if len(probs) > 0 {
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
	fmt.Printf("promlint: %d input(s) OK\n", len(args))
}
