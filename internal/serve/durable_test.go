package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// streamSlice pushes a branch slice through a session in fixed batches.
func streamSlice(t *testing.T, sess *ClientSession, branches []trace.Branch, batchSize int) {
	t.Helper()
	for start := 0; start < len(branches); start += batchSize {
		end := start + batchSize
		if end > len(branches) {
			end = len(branches)
		}
		if _, err := sess.Predict(branches[start:end]); err != nil {
			t.Fatalf("Predict: %v", err)
		}
	}
}

// TestSnapshotCutEquivalence is the wire-level migration pin: replaying
// the head of a trace on one server, fetching the session snapshot, and
// finishing the replay on a second (fresh) server via FrameOpenSnap
// yields final tallies bit-identical to an uninterrupted offline run —
// the snapshot cut is exact at any branch index, for every backend
// family. (The full config×mode×trace matrix is pinned at the predictor
// layer by TestSnapshotRestoreBitIdentity; this covers the session
// envelope and the wire path.)
func TestSnapshotCutEquivalence(t *testing.T) {
	srcSrv := startServer(t, Config{})
	dstSrv := startServer(t, Config{})
	tr, err := workload.ByName("INT-1")
	if err != nil {
		t.Fatal(err)
	}
	const limit = 20_000
	branches := collectBranches(t, tr, limit)
	// Arbitrary, deliberately batch-unaligned cut points.
	for _, tc := range []struct {
		spec string
		cut  int
	}{
		{"tage-16K?mode=probabilistic", 7_333},
		{"tage-64K?mkp=8&mode=adaptive", 13_001},
		{"gshare-64K?hist=13", 1},
		{"jrs-16K?enhanced=true", 19_999},
		{"perceptron", 9_876},
	} {
		sp, err := predictor.Parse(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		offline, err := sim.RunSpec(sp, tr, limit)
		if err != nil {
			t.Fatal(err)
		}
		src := dial(t, srcSrv)
		sess, err := src.OpenSession(OpenRequest{Spec: tc.spec, Key: "cut/" + tc.spec})
		if err != nil {
			t.Fatalf("OpenSession(%q): %v", tc.spec, err)
		}
		if sess.Resumed() != 0 {
			t.Fatalf("%s: fresh session resumed at %d", tc.spec, sess.Resumed())
		}
		streamSlice(t, sess, branches[:tc.cut], 777)
		blob, err := sess.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot(%q): %v", tc.spec, err)
		}
		dst := dial(t, dstSrv)
		sess2, err := dst.OpenSnapshot(blob)
		if err != nil {
			t.Fatalf("OpenSnapshot(%q): %v", tc.spec, err)
		}
		if got := sess2.Resumed(); got != uint64(tc.cut) {
			t.Fatalf("%s: migrated session resumed at %d, want %d", tc.spec, got, tc.cut)
		}
		if sess2.Key() != sess.Key() || sess2.Config() != sess.Config() {
			t.Fatalf("%s: migration changed identity: %q/%q -> %q/%q",
				tc.spec, sess.Key(), sess.Config(), sess2.Key(), sess2.Config())
		}
		streamSlice(t, sess2, branches[tc.cut:], 777)
		res, err := sess2.Close()
		if err != nil {
			t.Fatalf("Close(%q): %v", tc.spec, err)
		}
		res.Trace = tr.Name()
		if res != offline {
			t.Errorf("%s cut %d: migrated %+v != offline %+v", tc.spec, tc.cut, res, offline)
		}
		src.Close()
		dst.Close()
	}
}

// TestCheckpointWarmStart pins the WAL-free restart path end to end: a
// keyed session's state survives a graceful shutdown via the drain
// checkpoint, a second server booting on the same state directory
// restores it before accepting traffic, and the resumed replay finishes
// bit-identical to an uninterrupted offline run. It also pins that an
// explicit Close consumes the checkpoint.
func TestCheckpointWarmStart(t *testing.T) {
	dir := t.TempDir()
	tr, err := workload.ByName("SERV-2")
	if err != nil {
		t.Fatal(err)
	}
	const (
		limit = 24_000
		cut   = 9_413
		key   = "warm/SERV-2"
		spec  = "tage-16K?mkp=4&mode=adaptive"
	)
	branches := collectBranches(t, tr, limit)
	sp, err := predictor.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := sim.RunSpec(sp, tr, limit)
	if err != nil {
		t.Fatal(err)
	}

	srv1 := startServer(t, Config{StateDir: dir, CheckpointInterval: -1})
	c1 := dial(t, srv1)
	sess1, err := c1.OpenSession(OpenRequest{Spec: spec, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	label := sess1.Config()
	streamSlice(t, sess1, branches[:cut], 500)
	// Graceful shutdown: the drain must write the final checkpoint even
	// though the periodic loop is disabled.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ckpts := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Fatalf("state dir holds %d checkpoints after drain, want 1", ckpts)
	}

	srv2 := startServer(t, Config{StateDir: dir, CheckpointInterval: -1})
	snap := srv2.Engine().Snapshot()
	if snap.CheckpointRestores != 1 || snap.LiveSessions != 1 {
		t.Fatalf("warm start restored %d sessions (%d live), want 1",
			snap.CheckpointRestores, snap.LiveSessions)
	}
	c2 := dial(t, srv2)
	// The key is the identity: the resume ignores the request's predictor
	// fields entirely (a deliberately different spec proves it).
	sess2, err := c2.OpenSession(OpenRequest{Spec: "gshare-64K", Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess2.Resumed(); got != cut {
		t.Fatalf("resumed cursor %d, want %d", got, cut)
	}
	if sess2.Config() != label {
		t.Fatalf("resumed session labeled %q, want %q", sess2.Config(), label)
	}
	streamSlice(t, sess2, branches[cut:], 500)
	res, err := sess2.Close()
	if err != nil {
		t.Fatal(err)
	}
	res.Trace = tr.Name()
	// OpenSession labels results with the request's (zero) mode, like
	// OpenSpec; compare everything else bit for bit.
	offline.Mode = res.Mode
	if res != offline {
		t.Errorf("warm-started replay %+v != offline %+v", res, offline)
	}
	// The explicit close consumed the session: its checkpoint is gone and
	// the key now opens fresh.
	cs, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if keys, err := cs.Keys(); err != nil || len(keys) != 0 {
		t.Fatalf("checkpoints after close: %v (err %v), want none", keys, err)
	}
	sess3, err := c2.OpenSession(OpenRequest{Spec: spec, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if sess3.Resumed() != 0 {
		t.Fatalf("closed key resumed at %d, want fresh", sess3.Resumed())
	}
}

// TestEvictRestoreExactlyOnce pins the parked-tally accounting: a keyed
// session that bounces through idle eviction and checkpoint restore
// keeps the service-wide counters exact (every branch counted exactly
// once) and still closes with tallies bit-identical to an uninterrupted
// offline run.
func TestEvictRestoreExactlyOnce(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	cs, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := eng.AttachStore(cs, 0); err != nil || n != 0 {
		t.Fatalf("AttachStore on empty dir: n=%d err=%v", n, err)
	}
	tr, err := workload.ByName("INT-3")
	if err != nil {
		t.Fatal(err)
	}
	const limit, cut = 30_000, 20_000
	branches := collectBranches(t, tr, limit)
	cfg, err := tage.ConfigByName("16K")
	if err != nil {
		t.Fatal(err)
	}
	offline, err := sim.RunConfig(cfg, core.Options{}, tr, limit)
	if err != nil {
		t.Fatal(err)
	}

	s, err := eng.Open(OpenRequest{Config: "16K", Key: "once/INT-3"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var grades []byte
	grades, _ = s.Serve(branches[:cut], grades, 1)
	if got := eng.Snapshot().Branches; got != cut {
		t.Fatalf("live branches %d, want %d", got, cut)
	}
	if n := eng.SweepIdle(2); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	snap := eng.Snapshot()
	if snap.Branches != cut || snap.EvictedSessions != 1 || snap.CheckpointsWritten != 1 {
		t.Fatalf("post-evict snapshot %+v", snap)
	}

	s2, err := eng.Open(OpenRequest{Key: "once/INT-3"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Branches() != cut {
		t.Fatalf("restored cursor %d, want %d", s2.Branches(), cut)
	}
	// The restore must unpark the folded tallies: the total stays exactly
	// cut, not 2×cut.
	snap = eng.Snapshot()
	if snap.Branches != cut || snap.CheckpointRestores != 1 {
		t.Fatalf("post-restore snapshot counts branches=%d restores=%d, want %d/1",
			snap.Branches, snap.CheckpointRestores, cut)
	}
	if _, ok := s2.Serve(branches[cut:], grades, 3); !ok {
		t.Fatal("restored session refused to serve")
	}
	if got := eng.Snapshot().Branches; got != limit {
		t.Fatalf("final live branches %d, want %d", got, limit)
	}
	res, err := eng.Close(s2.ID())
	if err != nil {
		t.Fatal(err)
	}
	res.Trace = tr.Name()
	if res != offline {
		t.Errorf("evict/restore replay %+v != offline %+v", res, offline)
	}
	if got := eng.Snapshot().Branches; got != limit {
		t.Fatalf("post-close branches %d, want %d", got, limit)
	}
	if _, err := cs.Read("once/INT-3"); err == nil {
		t.Fatal("checkpoint survived explicit close")
	}
}

// TestCheckpointMetrics pins the /metrics roll-up of the checkpoint
// subsystem.
func TestCheckpointMetrics(t *testing.T) {
	srv := startServer(t, Config{
		StateDir:           t.TempDir(),
		CheckpointInterval: -1,
		MetricsAddr:        "127.0.0.1:0",
	})
	c := dial(t, srv)
	sess, err := c.OpenSession(OpenRequest{Config: "16K", Key: "metrics/k"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ByName("INT-1")
	if err != nil {
		t.Fatal(err)
	}
	streamSlice(t, sess, collectBranches(t, tr, 2_000), 400)
	if n := srv.Engine().CheckpointDirty(time.Now().UnixNano(), false); n != 1 {
		t.Fatalf("CheckpointDirty wrote %d, want 1", n)
	}
	resp, err := http.Get("http://" + srv.MetricsAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"tage_serve_checkpoints_written_total 1",
		"tage_serve_checkpoint_restores_total 0",
		"tage_serve_checkpoint_restore_failures_total 0",
		"tage_serve_checkpoint_write_failures_total 0",
		"tage_serve_checkpoint_last_age_seconds ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	// Bytes are config-dependent; just pin non-zero.
	if strings.Contains(text, "tage_serve_checkpoint_bytes_total 0\n") {
		t.Error("checkpoint bytes counter stayed zero")
	}
	// A clean pass leaves nothing dirty.
	if n := srv.Engine().CheckpointDirty(time.Now().UnixNano(), false); n != 0 {
		t.Fatalf("second CheckpointDirty wrote %d, want 0 (dirty tracking)", n)
	}
}

// TestSnapshotRejections pins the failure envelope of the snapshot wire
// surface: anonymous sessions cannot be snapshotted, and corrupt or
// truncated blobs are rejected with ErrCodeSnapshot — cleanly, on a
// connection that stays usable.
func TestSnapshotRejections(t *testing.T) {
	srv := startServer(t, Config{})
	c := dial(t, srv)
	sess, err := c.Open("16K", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if _, err := sess.Snapshot(); !errors.As(err, &re) || re.Code != ErrCodeSnapshot {
		t.Fatalf("anonymous snapshot: err = %v, want ErrCodeSnapshot", err)
	}
	if _, err := c.OpenSnapshot([]byte("definitely not a snapshot")); err == nil {
		t.Fatal("junk blob accepted")
	}
	// A structurally valid blob corrupted after sealing must be rejected
	// server-side too (the client-side decode is bypassed here by writing
	// the frame directly).
	keyed, err := c.OpenSession(OpenRequest{Config: "16K", Key: "rej/k"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ByName("INT-1")
	if err != nil {
		t.Fatal(err)
	}
	streamSlice(t, keyed, collectBranches(t, tr, 1_000), 250)
	blob, err := keyed.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	c.out = AppendOpenSnap(c.out[:0], blob)
	if _, err := c.roundTrip(FrameOpened); !errors.As(err, &re) || re.Code != ErrCodeSnapshot {
		t.Fatalf("corrupt blob: err = %v, want ErrCodeSnapshot", err)
	}
	// The connection survived all three rejections.
	if _, err := keyed.Predict(collectBranches(t, tr, 10)); err != nil {
		t.Fatalf("connection dead after snapshot rejections: %v", err)
	}
}
