package serve

import (
	"errors"
	"io"
	"net"
	"syscall"

	"repro/internal/predictor"
)

// IsRetryable classifies a client-side failure: true for transport-level
// errors a fresh connection may cure (dial refused/reset, timeouts,
// connections dropped mid-frame), false for errors that are properties
// of the request or the stream contents (server-reported RemoteError,
// protocol violations, unusable snapshots) where retrying the same bytes
// cannot succeed.
//
// The router and hardened clients retry only retryable failures; fatal
// ones surface immediately.
//
// A load-shed rejection (BusyError) is retryable by definition: the
// server did not apply the batch. A corrupt frame (ErrCorrupt) is NOT —
// it wraps ErrProtocol, because a corrupt response leaves the request's
// fate unknown and blindly resending could double-apply; only the
// Router's resync path (which re-reads the server's authoritative
// cursor) may recover from it.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	var be *BusyError
	if errors.As(err, &be) {
		return true
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	if errors.Is(err, ErrProtocol) || errors.Is(err, predictor.ErrSnapshot) {
		return false
	}
	if errors.Is(err, ErrIO) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	if errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}
