package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address for the wire protocol
	// (ListenAndServe; Serve takes an explicit listener).
	Addr string
	// MetricsAddr is the HTTP listen address for /metrics, the
	// liveness/readiness probes (/livez, /readyz, with /healthz kept as
	// a liveness alias) and /debug/events; empty disables the endpoint.
	MetricsAddr string
	// DebugAddr is an opt-in HTTP listen address exposing net/http/pprof
	// profiles alongside the same /metrics and /debug/events handlers;
	// empty (the default) disables it. Kept separate from MetricsAddr so
	// profiling endpoints are never reachable from the scrape network by
	// accident.
	DebugAddr string
	// EventBuffer sizes the flight-recorder ring (events retained for
	// /debug/events and eviction dumps). 0 selects
	// obs.DefaultEventBuffer; negative disables the recorder.
	EventBuffer int
	// Engine sizes the session engine (shards, max sessions, default
	// predictor configuration).
	Engine EngineConfig
	// IdleTimeout evicts sessions with no traffic for this long; 0
	// selects DefaultIdleTimeout, negative disables eviction.
	IdleTimeout time.Duration
	// StateDir, when non-empty, makes keyed sessions durable: Serve
	// opens (creating if needed) a checkpoint store there, restores
	// every stored checkpoint on boot, and checkpoints dirty sessions
	// periodically and on shutdown. Ignored when a store was already
	// attached to the engine directly.
	StateDir string
	// CheckpointInterval paces the background checkpoint loop; 0 selects
	// DefaultCheckpointInterval, negative disables the loop (checkpoints
	// are still written at eviction and shutdown).
	CheckpointInterval time.Duration
	// FrameTimeout bounds how long a peer may dawdle mid-frame: the
	// deadline arms when a frame's first header byte arrives and clears
	// when the frame is complete, so idle connections are unaffected but
	// a stalled or trickling peer is evicted as a slow reader. 0 selects
	// DefaultFrameTimeout, negative disables.
	FrameTimeout time.Duration
	// WriteTimeout bounds each response write/flush against a peer that
	// stopped draining its socket — the per-connection half of overload
	// control (a pipelining connection cannot park a handler forever).
	// 0 selects DefaultWriteTimeout, negative disables. Eviction closes
	// the connection only; keyed sessions survive and fold their tallies
	// exactly once through the usual retire/checkpoint path.
	WriteTimeout time.Duration
}

// DefaultIdleTimeout is the idle-session eviction horizon when none is
// configured.
const DefaultIdleTimeout = 5 * time.Minute

// DefaultCheckpointInterval is the checkpoint cadence when none is
// configured.
const DefaultCheckpointInterval = 10 * time.Second

// DefaultFrameTimeout is the mid-frame slow-reader deadline when none is
// configured.
const DefaultFrameTimeout = 30 * time.Second

// DefaultWriteTimeout is the per-flush slow-writer deadline when none is
// configured.
const DefaultWriteTimeout = 30 * time.Second

// Server runs the wire protocol over TCP: one goroutine per connection,
// many sessions per server (a connection may open several, and a session
// id remains addressable from any connection until closed or evicted).
type Server struct {
	cfg Config
	eng *Engine

	// Robustness counters (atomic: bumped on connection teardown paths,
	// read by scrapes).
	slowEvicted   atomic.Uint64
	corruptFrames atomic.Uint64

	// Observability: the metric registry backing /metrics, the flight
	// recorder backing /debug/events and eviction dumps, and the
	// serve/flush latency histograms fed from the batch hot path.
	reg       *obs.Registry
	rec       *obs.FlightRecorder
	serveHist *obs.Histogram
	flushHist *obs.Histogram
	logger    *slog.Logger

	// ready gates /readyz: false until Serve has restored state and is
	// accepting, false again once a drain begins, so load balancers stop
	// routing before the listener closes.
	ready   atomic.Bool
	connSeq atomic.Uint64

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	sweepEnd chan struct{}

	httpLn   net.Listener
	httpSrv  *http.Server
	debugLn  net.Listener
	debugSrv *http.Server

	// Connection handlers and sweep loops drain on wg; the HTTP
	// endpoints live on httpWg and outlive the drain, so /readyz keeps
	// answering 503 (and /metrics keeps scraping) while connections
	// finish.
	wg     sync.WaitGroup
	httpWg sync.WaitGroup
}

// NewServer builds a server. The engine is constructed from cfg.Engine.
func NewServer(cfg Config) *Server {
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = DefaultCheckpointInterval
	}
	if cfg.FrameTimeout == 0 {
		cfg.FrameTimeout = DefaultFrameTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	s := &Server{
		cfg:      cfg,
		eng:      NewEngine(cfg.Engine),
		conns:    make(map[net.Conn]struct{}),
		sweepEnd: make(chan struct{}),
		logger:   slog.Default(),
	}
	if cfg.EventBuffer >= 0 {
		s.rec = obs.NewFlightRecorder(cfg.EventBuffer)
		s.eng.SetEvents(s.rec)
	}
	s.reg = obs.NewRegistry()
	s.serveHist = s.reg.Histogram("tage_serve_batch_serve_seconds",
		"Predictor time per served batch (lookup through grade encoding).")
	s.flushHist = s.reg.Histogram("tage_serve_batch_flush_seconds",
		"Response flush time per coalesced write to the peer.")
	s.reg.Collect(s.collectEngine)
	obs.RegisterRuntimeMetrics(s.reg)
	return s
}

// Engine exposes the server's session engine (metrics scrapes, tests).
func (s *Server) Engine() *Engine { return s.eng }

// Registry exposes the server's metric registry so embedders can add
// their own families to the same /metrics exposition.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Events exposes the flight recorder (nil when disabled).
func (s *Server) Events() *obs.FlightRecorder { return s.rec }

// Ready reports whether the server is accepting and routable traffic
// should flow — the /readyz answer.
func (s *Server) Ready() bool { return s.ready.Load() }

// BeginDrain fails readiness without closing anything: /readyz starts
// answering 503 while the wire listener keeps serving, giving load
// balancers a window to stop routing before Shutdown closes the
// listener.
func (s *Server) BeginDrain() { s.ready.Store(false) }

// Addr returns the bound wire-protocol address (after Serve/ListenAndServe).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// MetricsAddr returns the bound metrics address, or nil when disabled.
func (s *Server) MetricsAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// DebugAddr returns the bound pprof/debug address, or nil when disabled.
func (s *Server) DebugAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.debugLn == nil {
		return nil
	}
	return s.debugLn.Addr()
}

// ListenAndServe binds cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown. It also binds the
// metrics endpoint (when configured) and starts the idle-eviction sweep.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("serve: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	if err := s.startMetrics(); err != nil {
		ln.Close()
		return err
	}
	if err := s.startDebug(); err != nil {
		ln.Close()
		return err
	}
	if s.cfg.StateDir != "" && !s.eng.HasStore() {
		cs, err := OpenCheckpointStore(s.cfg.StateDir)
		if err != nil {
			ln.Close()
			return err
		}
		if _, err := s.eng.AttachStore(cs, time.Now().UnixNano()); err != nil {
			ln.Close()
			return err
		}
	}
	if s.eng.HasStore() && s.cfg.CheckpointInterval > 0 {
		s.mu.Lock()
		if !s.closed {
			s.wg.Add(1)
			go s.checkpointLoop()
		}
		s.mu.Unlock()
	}
	if s.cfg.IdleTimeout > 0 {
		// Registered under the mutex so a Shutdown racing this startup
		// either sees the sweeper (closed=false here, so Shutdown's
		// close of sweepEnd happens after and stops it) or already
		// marked closed (and no sweeper starts).
		s.mu.Lock()
		if !s.closed {
			s.wg.Add(1)
			go s.sweepLoop()
		}
		s.mu.Unlock()
	}

	// State restored and loops running: the server is ready for routed
	// traffic. Shutdown/BeginDrain flip this back before the listener
	// goes away.
	s.ready.Store(true)
	defer s.ready.Store(false)

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Shutdown stops accepting, closes every connection, and waits for the
// handlers to drain (or ctx to expire). The HTTP endpoints close last —
// after the final checkpoint — so /readyz answers 503 and /metrics
// stays scrapeable throughout the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.ready.Store(false)
	s.closed = true
	close(s.sweepEnd)
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		// Graceful drain: with every handler stopped, write a final
		// checkpoint for every live keyed session, so a SIGTERM'd server
		// restarts exactly where its clients left it.
		s.eng.CheckpointDirty(time.Now().UnixNano(), true)
		s.mu.Lock()
		if s.httpSrv != nil {
			s.httpSrv.Close()
		}
		if s.debugSrv != nil {
			s.debugSrv.Close()
		}
		s.mu.Unlock()
		s.httpWg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepEnd:
			return
		case now := <-t.C:
			s.eng.CheckpointDirty(now.UnixNano(), false)
		}
	}
}

func (s *Server) sweepLoop() {
	defer s.wg.Done()
	interval := s.cfg.IdleTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepEnd:
			return
		case now := <-t.C:
			s.eng.SweepIdle(now.Add(-s.cfg.IdleTimeout).UnixNano())
		}
	}
}

// baseMux builds the observability handler set shared by the metrics
// and debug listeners: health probes, the registry exposition, and the
// flight-recorder dump.
func (s *Server) baseMux() *http.ServeMux {
	mux := http.NewServeMux()
	live := func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	}
	// /healthz stays as a liveness alias for existing probes and the CI
	// smoke's curl; /livez is the canonical spelling.
	mux.HandleFunc("/healthz", live)
	mux.HandleFunc("/livez", live)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		s.reg.WriteText(w)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.rec.WriteText(w)
	})
	return mux
}

func (s *Server) startMetrics() error {
	ln, srv, err := s.startHTTP(s.cfg.MetricsAddr, s.baseMux())
	if err == nil && ln != nil {
		s.mu.Lock()
		s.httpLn, s.httpSrv = ln, srv
		s.mu.Unlock()
	}
	return err
}

// startDebug binds the opt-in pprof listener: the full profile suite
// plus the same metrics/events handlers, on an address the operator
// chose to expose.
func (s *Server) startDebug() error {
	if s.cfg.DebugAddr == "" {
		return nil
	}
	mux := s.baseMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, srv, err := s.startHTTP(s.cfg.DebugAddr, mux)
	if err == nil && ln != nil {
		s.mu.Lock()
		s.debugLn, s.debugSrv = ln, srv
		s.mu.Unlock()
	}
	return err
}

// startHTTP binds addr and serves mux on the httpWg side of the drain
// order. Returns a nil listener when addr is empty or Shutdown already
// won the startup race.
func (s *Server) startHTTP(addr string, mux *http.ServeMux) (net.Listener, *http.Server, error) {
	if addr == "" {
		return nil, nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: mux}
	s.mu.Lock()
	if s.closed {
		// Shutdown won the race with this startup: it cannot have seen
		// the server, so close the endpoint here instead of leaking it
		// (and never wg.Add after Shutdown may already be waiting).
		s.mu.Unlock()
		ln.Close()
		return nil, nil, nil
	}
	s.httpWg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.httpWg.Done()
		srv.Serve(ln)
	}()
	return ln, srv, nil
}

// collectEngine renders the engine snapshot into the exposition:
// session gauges plus per-level, per-class and per-backend counters
// aggregated over live and retired sessions. Metric names predate the
// registry (the soak scripts and dashboards key on them), so this
// collector preserves them exactly.
//repro:deterministic
func (s *Server) collectEngine(tw *obs.TextWriter) {
	snap := s.eng.Snapshot()
	counter := func(name, help string, v uint64) {
		tw.Family(name, "counter", help)
		tw.Value(name, float64(v))
	}
	gauge := func(name, help string, v float64) {
		tw.Family(name, "gauge", help)
		tw.Value(name, v)
	}
	gauge("tage_serve_sessions_live", "Live sessions.", float64(snap.LiveSessions))
	counter("tage_serve_sessions_opened_total", "Sessions ever opened.", snap.OpenedSessions)
	counter("tage_serve_sessions_evicted_total", "Sessions evicted idle.", snap.EvictedSessions)
	counter("tage_serve_branches_total", "Branches served.", snap.Branches)
	counter("tage_serve_instructions_total", "Instructions covered by served branches.", snap.Instructions)
	counter("tage_serve_predictions_total", "Predictions served.", snap.Total.Preds)
	counter("tage_serve_mispredictions_total", "Mispredictions served.", snap.Total.Misps)

	tw.Family("tage_serve_level_predictions_total", "counter", "Predictions by provider level.")
	for _, l := range core.Levels() {
		tw.ValueL("tage_serve_level_predictions_total", float64(snap.Level(l).Preds), "level", l.String())
	}
	tw.Family("tage_serve_level_mispredictions_total", "counter", "Mispredictions by provider level.")
	for _, l := range core.Levels() {
		tw.ValueL("tage_serve_level_mispredictions_total", float64(snap.Level(l).Misps), "level", l.String())
	}
	tw.Family("tage_serve_class_predictions_total", "counter", "Predictions by confidence class.")
	for _, cl := range core.Classes() {
		tw.ValueL("tage_serve_class_predictions_total", float64(snap.Class[cl].Preds), "class", cl.String())
	}
	tw.Family("tage_serve_class_mispredictions_total", "counter", "Mispredictions by confidence class.")
	for _, cl := range core.Classes() {
		tw.ValueL("tage_serve_class_mispredictions_total", float64(snap.Class[cl].Misps), "class", cl.String())
	}
	if len(snap.Backends) > 0 {
		tw.Family("tage_serve_backend_sessions_opened_total", "counter", "Sessions opened by backend spec.")
		for _, bc := range snap.Backends {
			tw.ValueL("tage_serve_backend_sessions_opened_total", float64(bc.Opened), "backend", bc.Label)
		}
		tw.Family("tage_serve_backend_branches_total", "counter", "Branches served by backend spec.")
		for _, bc := range snap.Backends {
			tw.ValueL("tage_serve_backend_branches_total", float64(bc.Branches), "backend", bc.Label)
		}
		tw.Family("tage_serve_backend_predictions_total", "counter", "Predictions served by backend spec.")
		for _, bc := range snap.Backends {
			tw.ValueL("tage_serve_backend_predictions_total", float64(bc.Total.Preds), "backend", bc.Label)
		}
		tw.Family("tage_serve_backend_mispredictions_total", "counter", "Mispredictions served by backend spec.")
		for _, bc := range snap.Backends {
			tw.ValueL("tage_serve_backend_mispredictions_total", float64(bc.Total.Misps), "backend", bc.Label)
		}
	}
	counter("tage_serve_shed_total", "Batches shed by admission control.", snap.ShedBatches)
	gauge("tage_serve_inflight_batches", "Batches currently in flight.", float64(snap.InflightBatches))
	counter("tage_serve_slow_peer_evictions_total", "Connections evicted as slow readers or writers.", s.slowEvicted.Load())
	counter("tage_serve_corrupt_frames_total", "Frames rejected with a checksum mismatch.", s.corruptFrames.Load())
	counter("tage_serve_checkpoints_written_total", "Checkpoints written.", snap.CheckpointsWritten)
	counter("tage_serve_checkpoint_bytes_total", "Checkpoint bytes written.", snap.CheckpointBytes)
	counter("tage_serve_checkpoint_restores_total", "Sessions restored from checkpoints.", snap.CheckpointRestores)
	counter("tage_serve_checkpoint_restore_failures_total", "Checkpoint restore failures.", snap.CheckpointRestoreFailures)
	counter("tage_serve_checkpoint_write_failures_total", "Checkpoint write failures.", snap.CheckpointWriteFailures)
	if snap.LastCheckpointUnixNano != 0 {
		//repro:order-insensitive checkpoint age is a wall-clock freshness gauge by design; it feeds dashboards and alerts, never reproduced tables
		age := float64(time.Now().UnixNano()-snap.LastCheckpointUnixNano) / 1e9
		if age < 0 {
			age = 0
		}
		gauge("tage_serve_checkpoint_last_age_seconds", "Seconds since the last checkpoint write.", age)
	}
}

// connState is the per-connection scratch reused across frames, which is
// what keeps the per-branch serving path allocation-free in steady
// state.
type connState struct {
	frame   []byte         // frame read buffer
	out     []byte         // response write buffer
	records []trace.Branch // decoded batch
	grades  []byte         // encoded responses
	holding bool           // an admission slot is held until the response ships

	// Flight-recorder context. conn is this connection's sequence
	// number; sess/key/backend remember the last served batch so an
	// eviction event carries the victim's identity; ev is the pending
	// batch event, completed with the flush duration and recorded once
	// the response ships (evPend). arrived timestamps the frame read
	// for the queue-delay component. All reused, never allocated, per
	// frame.
	conn    uint64
	sess    uint64
	key     string
	backend string
	arrived time.Time
	ev      obs.Event
	evPend  bool
}

// release frees the connection's held admission slot, if any.
func (s *Server) release(st *connState) {
	if st.holding {
		s.eng.ReleaseBatch()
		st.holding = false
	}
}

// armWrite arms the slow-writer deadline before a response write or
// flush; writeFailed classifies the resulting error (deadline → slow-peer
// eviction).
func (s *Server) armWrite(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
}

func (s *Server) writeFailed(st *connState, err error) {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		s.slowEvicted.Add(1)
		s.evictSlowPeer(st, "write stall past WriteTimeout")
	}
}

// evictDumpTail bounds the context attached to an eviction log line.
const evictDumpTail = 32

// evictSlowPeer records the eviction in the flight recorder and dumps
// the recorder's tail to the structured log, so the eviction arrives
// with its last-N-events context instead of a bare counter bump.
func (s *Server) evictSlowPeer(st *connState, cause string) {
	if s.rec == nil {
		return
	}
	s.rec.Record(obs.Event{
		UnixNano: time.Now().UnixNano(),
		Kind:     obs.EvSlowPeerEvict,
		Conn:     st.conn,
		Session:  st.sess,
		Key:      st.key,
		Backend:  st.backend,
		Cause:    cause,
	})
	var b strings.Builder
	s.rec.WriteTail(&b, evictDumpTail)
	s.logger.Warn("serve: slow peer evicted",
		"conn", st.conn, "session", st.sess, "key", st.key, "cause", cause,
		"recent_events", b.String())
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64*1024)
	bw := bufio.NewWriterSize(conn, 64*1024)
	st := &connState{
		frame:   make([]byte, 4096),
		out:     make([]byte, 0, 4096),
		records: make([]trace.Branch, 0, 1024),
		grades:  make([]byte, 0, 1024),
		conn:    s.connSeq.Add(1),
	}
	// The slow-reader deadline arms once a frame has started (first
	// header byte read) and clears when it completes: a connection may
	// idle between frames indefinitely (the session sweeper governs
	// that), but mid-frame progress is owed within FrameTimeout.
	var armRead func()
	if s.cfg.FrameTimeout > 0 {
		armRead = func() { conn.SetReadDeadline(time.Now().Add(s.cfg.FrameTimeout)) }
	}
	for {
		typ, payload, frame, err := readFrame(br, st.frame, armRead)
		st.frame = frame
		st.arrived = time.Now()
		if armRead != nil {
			conn.SetReadDeadline(time.Time{})
		}
		if err != nil {
			// Clean EOF between frames is a client hanging up; a stalled
			// peer is evicted and counted; a corrupt frame is answered
			// with ErrCodeCorrupt (the stream is unrecoverable — nothing
			// after the mangled bytes can be trusted); any other framing
			// error is reported if the socket still accepts writes. All
			// of them drop the connection, never the sessions.
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.slowEvicted.Add(1)
				s.evictSlowPeer(st, "mid-frame read stall past FrameTimeout")
				return
			}
			if !errors.Is(err, ErrProtocol) {
				return
			}
			code := ErrCodeMalformed
			if errors.Is(err, ErrCorrupt) {
				s.corruptFrames.Add(1)
				s.rec.Record(obs.Event{
					UnixNano: time.Now().UnixNano(),
					Kind:     obs.EvCorrupt,
					Conn:     st.conn,
					Session:  st.sess,
					Key:      st.key,
					Cause:    err.Error(),
				})
				code = ErrCodeCorrupt
			}
			st.out = AppendError(st.out[:0], code, err.Error())
			s.armWrite(conn)
			bw.Write(st.out)
			bw.Flush()
			return
		}
		st.out = st.out[:0]
		fatal := s.handleFrame(st, typ, payload)
		if len(st.out) > 0 {
			s.armWrite(conn)
			if _, err := bw.Write(st.out); err != nil {
				s.release(st)
				s.writeFailed(st, err)
				return
			}
		}
		// Coalesce responses to pipelined requests: flush only when no
		// further request is already buffered.
		if br.Buffered() == 0 {
			s.armWrite(conn)
			flushStart := time.Now()
			if err := bw.Flush(); err != nil {
				s.release(st)
				s.writeFailed(st, err)
				return
			}
			flushed := time.Since(flushStart)
			s.flushHist.Observe(flushed)
			if st.evPend {
				st.ev.FlushNS = flushed.Nanoseconds()
			}
		}
		// The batch event is recorded only after its response shipped, so
		// the flight recorder shows completed batches in delivery order
		// with the flush cost included.
		if st.evPend {
			s.rec.Record(st.ev)
			st.evPend = false
		}
		// The batch's admission slot is freed only now: the response has
		// shipped (or at least left st.out), so MaxInflight bounds batches
		// in flight end to end, response delivery included.
		s.release(st)
		if fatal {
			bw.Flush()
			return
		}
	}
}

// handleFrame serves one request, appending response frames to st.out.
// It reports whether the connection must close (payload-level errors are
// answered in-band and keep the connection alive).
func (s *Server) handleFrame(st *connState, typ byte, payload []byte) (fatal bool) {
	now := time.Now().UnixNano()
	//repro:frames request
	switch typ {
	case FrameOpen:
		req, err := DecodeOpen(payload)
		if err != nil {
			st.out = AppendError(st.out, ErrCodeMalformed, err.Error())
			return false
		}
		sess, err := s.eng.Open(req, now)
		if err != nil {
			st.out = appendRemoteError(st.out, err)
			return false
		}
		st.out = AppendOpened(st.out, sess.ID(), sess.ConfigName(), sess.Branches())
	case FrameBatch:
		id, records, err := DecodeBatch(payload, st.records)
		st.records = records[:0]
		if err != nil {
			st.out = AppendError(st.out, ErrCodeMalformed, err.Error())
			return false
		}
		sess, ok := s.eng.Lookup(id)
		if ok {
			// Admission control sits after the session lookup (an unknown
			// session is that error regardless of load) and brackets the
			// batch from serve through response delivery — handleConn
			// releases the slot once the predictions are written and
			// flushed, so a batch whose response is still draining toward
			// a slow peer keeps counting against MaxInflight. A shed batch
			// was not applied: the client retries the same bytes after
			// backing off.
			if !s.eng.AcquireBatch() {
				s.rec.Record(obs.Event{
					UnixNano: now,
					Kind:     obs.EvShed,
					Conn:     st.conn,
					Session:  id,
					Key:      sess.Key(),
					Backend:  sess.ConfigName(),
					Frame:    typ,
					Batch:    len(records),
					Cause:    "admission: MaxInflight reached",
				})
				st.out = AppendBusy(st.out, id, 0)
				return false
			}
			st.holding = true
			serveStart := time.Now()
			st.grades, ok = sess.Serve(records, st.grades, now)
			if ok {
				served := time.Since(serveStart)
				s.serveHist.Observe(served)
				if s.rec != nil {
					st.sess, st.key, st.backend = id, sess.Key(), sess.ConfigName()
					st.ev = obs.Event{
						UnixNano: now,
						Kind:     obs.EvBatch,
						Conn:     st.conn,
						Session:  id,
						Key:      st.key,
						Backend:  st.backend,
						Frame:    typ,
						Batch:    len(records),
						QueueNS:  serveStart.Sub(st.arrived).Nanoseconds(),
						ServeNS:  served.Nanoseconds(),
					}
					st.evPend = true
				}
			}
		}
		if !ok {
			st.out = AppendError(st.out, ErrCodeUnknownSession,
				fmt.Sprintf("unknown session %d", id))
			return false
		}
		st.out = AppendPredictions(st.out, id, st.grades)
	case FrameClose:
		id, err := DecodeClose(payload)
		if err != nil {
			st.out = AppendError(st.out, ErrCodeMalformed, err.Error())
			return false
		}
		res, err := s.eng.Close(id)
		if err != nil {
			st.out = appendRemoteError(st.out, err)
			return false
		}
		st.out = AppendStats(st.out, id, res)
	case FrameSnapGet:
		id, err := DecodeSnapGet(payload)
		if err != nil {
			st.out = AppendError(st.out, ErrCodeMalformed, err.Error())
			return false
		}
		sess, ok := s.eng.Lookup(id)
		if !ok {
			st.out = AppendError(st.out, ErrCodeUnknownSession,
				fmt.Sprintf("unknown session %d", id))
			return false
		}
		blob, err := sess.Snapshot()
		if err != nil {
			st.out = AppendError(st.out, ErrCodeSnapshot, err.Error())
			return false
		}
		// A blob the frame cannot carry answers with a clean error
		// instead of a connection-fatal oversized frame.
		if len(blob)+16 > MaxFrame {
			st.out = AppendError(st.out, ErrCodeSnapshot,
				fmt.Sprintf("snapshot of %d bytes exceeds frame limit", len(blob)))
			return false
		}
		st.out = AppendSnap(st.out, id, blob)
	case FrameOpenSnap:
		blob, err := DecodeOpenSnap(payload)
		if err != nil {
			st.out = AppendError(st.out, ErrCodeMalformed, err.Error())
			return false
		}
		snap, err := DecodeSessionSnapshot(blob)
		if err != nil {
			st.out = AppendError(st.out, ErrCodeSnapshot, err.Error())
			return false
		}
		sess, err := s.eng.OpenSnapshot(snap, now)
		if err != nil {
			var re *RemoteError
			if errors.As(err, &re) {
				st.out = AppendError(st.out, re.Code, re.Message)
			} else {
				st.out = AppendError(st.out, ErrCodeSnapshot, err.Error())
			}
			return false
		}
		st.out = AppendOpened(st.out, sess.ID(), sess.ConfigName(), sess.Branches())
	default:
		// Unknown frame types are unrecoverable: a future peer speaking
		// a newer protocol would race our misinterpretation of its
		// stream.
		st.out = AppendError(st.out, ErrCodeMalformed,
			fmt.Sprintf("unknown frame type %#02x", typ))
		return true
	}
	return false
}

func appendRemoteError(dst []byte, err error) []byte {
	var re *RemoteError
	if errors.As(err, &re) {
		return AppendError(dst, re.Code, re.Message)
	}
	return AppendError(dst, ErrCodeMalformed, err.Error())
}
