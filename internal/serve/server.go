package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address for the wire protocol
	// (ListenAndServe; Serve takes an explicit listener).
	Addr string
	// MetricsAddr is the HTTP listen address for /metrics and /healthz;
	// empty disables the endpoint.
	MetricsAddr string
	// Engine sizes the session engine (shards, max sessions, default
	// predictor configuration).
	Engine EngineConfig
	// IdleTimeout evicts sessions with no traffic for this long; 0
	// selects DefaultIdleTimeout, negative disables eviction.
	IdleTimeout time.Duration
	// StateDir, when non-empty, makes keyed sessions durable: Serve
	// opens (creating if needed) a checkpoint store there, restores
	// every stored checkpoint on boot, and checkpoints dirty sessions
	// periodically and on shutdown. Ignored when a store was already
	// attached to the engine directly.
	StateDir string
	// CheckpointInterval paces the background checkpoint loop; 0 selects
	// DefaultCheckpointInterval, negative disables the loop (checkpoints
	// are still written at eviction and shutdown).
	CheckpointInterval time.Duration
	// FrameTimeout bounds how long a peer may dawdle mid-frame: the
	// deadline arms when a frame's first header byte arrives and clears
	// when the frame is complete, so idle connections are unaffected but
	// a stalled or trickling peer is evicted as a slow reader. 0 selects
	// DefaultFrameTimeout, negative disables.
	FrameTimeout time.Duration
	// WriteTimeout bounds each response write/flush against a peer that
	// stopped draining its socket — the per-connection half of overload
	// control (a pipelining connection cannot park a handler forever).
	// 0 selects DefaultWriteTimeout, negative disables. Eviction closes
	// the connection only; keyed sessions survive and fold their tallies
	// exactly once through the usual retire/checkpoint path.
	WriteTimeout time.Duration
}

// DefaultIdleTimeout is the idle-session eviction horizon when none is
// configured.
const DefaultIdleTimeout = 5 * time.Minute

// DefaultCheckpointInterval is the checkpoint cadence when none is
// configured.
const DefaultCheckpointInterval = 10 * time.Second

// DefaultFrameTimeout is the mid-frame slow-reader deadline when none is
// configured.
const DefaultFrameTimeout = 30 * time.Second

// DefaultWriteTimeout is the per-flush slow-writer deadline when none is
// configured.
const DefaultWriteTimeout = 30 * time.Second

// Server runs the wire protocol over TCP: one goroutine per connection,
// many sessions per server (a connection may open several, and a session
// id remains addressable from any connection until closed or evicted).
type Server struct {
	cfg Config
	eng *Engine

	// Robustness counters (atomic: bumped on connection teardown paths,
	// read by scrapes).
	slowEvicted   atomic.Uint64
	corruptFrames atomic.Uint64

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	sweepEnd chan struct{}

	httpLn  net.Listener
	httpSrv *http.Server

	wg sync.WaitGroup
}

// NewServer builds a server. The engine is constructed from cfg.Engine.
func NewServer(cfg Config) *Server {
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = DefaultCheckpointInterval
	}
	if cfg.FrameTimeout == 0 {
		cfg.FrameTimeout = DefaultFrameTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	return &Server{
		cfg:      cfg,
		eng:      NewEngine(cfg.Engine),
		conns:    make(map[net.Conn]struct{}),
		sweepEnd: make(chan struct{}),
	}
}

// Engine exposes the server's session engine (metrics scrapes, tests).
func (s *Server) Engine() *Engine { return s.eng }

// Addr returns the bound wire-protocol address (after Serve/ListenAndServe).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// MetricsAddr returns the bound metrics address, or nil when disabled.
func (s *Server) MetricsAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

// ListenAndServe binds cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown. It also binds the
// metrics endpoint (when configured) and starts the idle-eviction sweep.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("serve: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()

	if err := s.startMetrics(); err != nil {
		ln.Close()
		return err
	}
	if s.cfg.StateDir != "" && !s.eng.HasStore() {
		cs, err := OpenCheckpointStore(s.cfg.StateDir)
		if err != nil {
			ln.Close()
			return err
		}
		if _, err := s.eng.AttachStore(cs, time.Now().UnixNano()); err != nil {
			ln.Close()
			return err
		}
	}
	if s.eng.HasStore() && s.cfg.CheckpointInterval > 0 {
		s.mu.Lock()
		if !s.closed {
			s.wg.Add(1)
			go s.checkpointLoop()
		}
		s.mu.Unlock()
	}
	if s.cfg.IdleTimeout > 0 {
		// Registered under the mutex so a Shutdown racing this startup
		// either sees the sweeper (closed=false here, so Shutdown's
		// close of sweepEnd happens after and stops it) or already
		// marked closed (and no sweeper starts).
		s.mu.Lock()
		if !s.closed {
			s.wg.Add(1)
			go s.sweepLoop()
		}
		s.mu.Unlock()
	}

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// Shutdown stops accepting, closes every connection and endpoint, and
// waits for the handlers to drain (or ctx to expire).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.sweepEnd)
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Graceful drain: with every handler stopped, write a final
		// checkpoint for every live keyed session, so a SIGTERM'd server
		// restarts exactly where its clients left it.
		s.eng.CheckpointDirty(time.Now().UnixNano(), true)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepEnd:
			return
		case now := <-t.C:
			s.eng.CheckpointDirty(now.UnixNano(), false)
		}
	}
}

func (s *Server) sweepLoop() {
	defer s.wg.Done()
	interval := s.cfg.IdleTimeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepEnd:
			return
		case now := <-t.C:
			s.eng.SweepIdle(now.Add(-s.cfg.IdleTimeout).UnixNano())
		}
	}
}

func (s *Server) startMetrics() error {
	if s.cfg.MetricsAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", s.cfg.MetricsAddr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.writeMetrics(w)
	})
	srv := &http.Server{Handler: mux}
	s.mu.Lock()
	if s.closed {
		// Shutdown won the race with this startup: it cannot have seen
		// httpSrv, so close the endpoint here instead of leaking it
		// (and never wg.Add after Shutdown may already be waiting).
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.httpLn, s.httpSrv = ln, srv
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		srv.Serve(ln)
	}()
	return nil
}

// writeMetrics renders the Prometheus-style exposition: session gauges
// plus per-level and per-class hit/misprediction counters aggregated
// over live and retired sessions.
func (s *Server) writeMetrics(w http.ResponseWriter) {
	snap := s.eng.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "tage_serve_sessions_live %d\n", snap.LiveSessions)
	fmt.Fprintf(w, "tage_serve_sessions_opened_total %d\n", snap.OpenedSessions)
	fmt.Fprintf(w, "tage_serve_sessions_evicted_total %d\n", snap.EvictedSessions)
	fmt.Fprintf(w, "tage_serve_branches_total %d\n", snap.Branches)
	fmt.Fprintf(w, "tage_serve_instructions_total %d\n", snap.Instructions)
	fmt.Fprintf(w, "tage_serve_predictions_total %d\n", snap.Total.Preds)
	fmt.Fprintf(w, "tage_serve_mispredictions_total %d\n", snap.Total.Misps)
	for _, l := range core.Levels() {
		c := snap.Level(l)
		fmt.Fprintf(w, "tage_serve_level_predictions_total{level=%q} %d\n", l.String(), c.Preds)
		fmt.Fprintf(w, "tage_serve_level_mispredictions_total{level=%q} %d\n", l.String(), c.Misps)
	}
	for _, cl := range core.Classes() {
		c := snap.Class[cl]
		fmt.Fprintf(w, "tage_serve_class_predictions_total{class=%q} %d\n", cl.String(), c.Preds)
		fmt.Fprintf(w, "tage_serve_class_mispredictions_total{class=%q} %d\n", cl.String(), c.Misps)
	}
	for _, bc := range snap.Backends {
		fmt.Fprintf(w, "tage_serve_backend_sessions_opened_total{backend=%q} %d\n", bc.Label, bc.Opened)
		fmt.Fprintf(w, "tage_serve_backend_branches_total{backend=%q} %d\n", bc.Label, bc.Branches)
		fmt.Fprintf(w, "tage_serve_backend_predictions_total{backend=%q} %d\n", bc.Label, bc.Total.Preds)
		fmt.Fprintf(w, "tage_serve_backend_mispredictions_total{backend=%q} %d\n", bc.Label, bc.Total.Misps)
	}
	fmt.Fprintf(w, "tage_serve_shed_total %d\n", snap.ShedBatches)
	fmt.Fprintf(w, "tage_serve_inflight_batches %d\n", snap.InflightBatches)
	fmt.Fprintf(w, "tage_serve_slow_peer_evictions_total %d\n", s.slowEvicted.Load())
	fmt.Fprintf(w, "tage_serve_corrupt_frames_total %d\n", s.corruptFrames.Load())
	fmt.Fprintf(w, "tage_serve_checkpoints_written_total %d\n", snap.CheckpointsWritten)
	fmt.Fprintf(w, "tage_serve_checkpoint_bytes_total %d\n", snap.CheckpointBytes)
	fmt.Fprintf(w, "tage_serve_checkpoint_restores_total %d\n", snap.CheckpointRestores)
	fmt.Fprintf(w, "tage_serve_checkpoint_restore_failures_total %d\n", snap.CheckpointRestoreFailures)
	fmt.Fprintf(w, "tage_serve_checkpoint_write_failures_total %d\n", snap.CheckpointWriteFailures)
	if snap.LastCheckpointUnixNano != 0 {
		age := float64(time.Now().UnixNano()-snap.LastCheckpointUnixNano) / 1e9
		if age < 0 {
			age = 0
		}
		fmt.Fprintf(w, "tage_serve_checkpoint_last_age_seconds %g\n", age)
	}
}

// connState is the per-connection scratch reused across frames, which is
// what keeps the per-branch serving path allocation-free in steady
// state.
type connState struct {
	frame   []byte         // frame read buffer
	out     []byte         // response write buffer
	records []trace.Branch // decoded batch
	grades  []byte         // encoded responses
	holding bool           // an admission slot is held until the response ships
}

// release frees the connection's held admission slot, if any.
func (s *Server) release(st *connState) {
	if st.holding {
		s.eng.ReleaseBatch()
		st.holding = false
	}
}

// armWrite arms the slow-writer deadline before a response write or
// flush; writeFailed classifies the resulting error (deadline → slow-peer
// eviction).
func (s *Server) armWrite(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
}

func (s *Server) writeFailed(err error) {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		s.slowEvicted.Add(1)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 64*1024)
	bw := bufio.NewWriterSize(conn, 64*1024)
	st := &connState{
		frame:   make([]byte, 4096),
		out:     make([]byte, 0, 4096),
		records: make([]trace.Branch, 0, 1024),
		grades:  make([]byte, 0, 1024),
	}
	// The slow-reader deadline arms once a frame has started (first
	// header byte read) and clears when it completes: a connection may
	// idle between frames indefinitely (the session sweeper governs
	// that), but mid-frame progress is owed within FrameTimeout.
	var armRead func()
	if s.cfg.FrameTimeout > 0 {
		armRead = func() { conn.SetReadDeadline(time.Now().Add(s.cfg.FrameTimeout)) }
	}
	for {
		typ, payload, frame, err := readFrame(br, st.frame, armRead)
		st.frame = frame
		if armRead != nil {
			conn.SetReadDeadline(time.Time{})
		}
		if err != nil {
			// Clean EOF between frames is a client hanging up; a stalled
			// peer is evicted and counted; a corrupt frame is answered
			// with ErrCodeCorrupt (the stream is unrecoverable — nothing
			// after the mangled bytes can be trusted); any other framing
			// error is reported if the socket still accepts writes. All
			// of them drop the connection, never the sessions.
			if errors.Is(err, os.ErrDeadlineExceeded) {
				s.slowEvicted.Add(1)
				return
			}
			if !errors.Is(err, ErrProtocol) {
				return
			}
			code := ErrCodeMalformed
			if errors.Is(err, ErrCorrupt) {
				s.corruptFrames.Add(1)
				code = ErrCodeCorrupt
			}
			st.out = AppendError(st.out[:0], code, err.Error())
			s.armWrite(conn)
			bw.Write(st.out)
			bw.Flush()
			return
		}
		st.out = st.out[:0]
		fatal := s.handleFrame(st, typ, payload)
		if len(st.out) > 0 {
			s.armWrite(conn)
			if _, err := bw.Write(st.out); err != nil {
				s.release(st)
				s.writeFailed(err)
				return
			}
		}
		// Coalesce responses to pipelined requests: flush only when no
		// further request is already buffered.
		if br.Buffered() == 0 {
			s.armWrite(conn)
			if err := bw.Flush(); err != nil {
				s.release(st)
				s.writeFailed(err)
				return
			}
		}
		// The batch's admission slot is freed only now: the response has
		// shipped (or at least left st.out), so MaxInflight bounds batches
		// in flight end to end, response delivery included.
		s.release(st)
		if fatal {
			bw.Flush()
			return
		}
	}
}

// handleFrame serves one request, appending response frames to st.out.
// It reports whether the connection must close (payload-level errors are
// answered in-band and keep the connection alive).
func (s *Server) handleFrame(st *connState, typ byte, payload []byte) (fatal bool) {
	now := time.Now().UnixNano()
	//repro:frames request
	switch typ {
	case FrameOpen:
		req, err := DecodeOpen(payload)
		if err != nil {
			st.out = AppendError(st.out, ErrCodeMalformed, err.Error())
			return false
		}
		sess, err := s.eng.Open(req, now)
		if err != nil {
			st.out = appendRemoteError(st.out, err)
			return false
		}
		st.out = AppendOpened(st.out, sess.ID(), sess.ConfigName(), sess.Branches())
	case FrameBatch:
		id, records, err := DecodeBatch(payload, st.records)
		st.records = records[:0]
		if err != nil {
			st.out = AppendError(st.out, ErrCodeMalformed, err.Error())
			return false
		}
		sess, ok := s.eng.Lookup(id)
		if ok {
			// Admission control sits after the session lookup (an unknown
			// session is that error regardless of load) and brackets the
			// batch from serve through response delivery — handleConn
			// releases the slot once the predictions are written and
			// flushed, so a batch whose response is still draining toward
			// a slow peer keeps counting against MaxInflight. A shed batch
			// was not applied: the client retries the same bytes after
			// backing off.
			if !s.eng.AcquireBatch() {
				st.out = AppendBusy(st.out, id, 0)
				return false
			}
			st.holding = true
			st.grades, ok = sess.Serve(records, st.grades, now)
		}
		if !ok {
			st.out = AppendError(st.out, ErrCodeUnknownSession,
				fmt.Sprintf("unknown session %d", id))
			return false
		}
		st.out = AppendPredictions(st.out, id, st.grades)
	case FrameClose:
		id, err := DecodeClose(payload)
		if err != nil {
			st.out = AppendError(st.out, ErrCodeMalformed, err.Error())
			return false
		}
		res, err := s.eng.Close(id)
		if err != nil {
			st.out = appendRemoteError(st.out, err)
			return false
		}
		st.out = AppendStats(st.out, id, res)
	case FrameSnapGet:
		id, err := DecodeSnapGet(payload)
		if err != nil {
			st.out = AppendError(st.out, ErrCodeMalformed, err.Error())
			return false
		}
		sess, ok := s.eng.Lookup(id)
		if !ok {
			st.out = AppendError(st.out, ErrCodeUnknownSession,
				fmt.Sprintf("unknown session %d", id))
			return false
		}
		blob, err := sess.Snapshot()
		if err != nil {
			st.out = AppendError(st.out, ErrCodeSnapshot, err.Error())
			return false
		}
		// A blob the frame cannot carry answers with a clean error
		// instead of a connection-fatal oversized frame.
		if len(blob)+16 > MaxFrame {
			st.out = AppendError(st.out, ErrCodeSnapshot,
				fmt.Sprintf("snapshot of %d bytes exceeds frame limit", len(blob)))
			return false
		}
		st.out = AppendSnap(st.out, id, blob)
	case FrameOpenSnap:
		blob, err := DecodeOpenSnap(payload)
		if err != nil {
			st.out = AppendError(st.out, ErrCodeMalformed, err.Error())
			return false
		}
		snap, err := DecodeSessionSnapshot(blob)
		if err != nil {
			st.out = AppendError(st.out, ErrCodeSnapshot, err.Error())
			return false
		}
		sess, err := s.eng.OpenSnapshot(snap, now)
		if err != nil {
			var re *RemoteError
			if errors.As(err, &re) {
				st.out = AppendError(st.out, re.Code, re.Message)
			} else {
				st.out = AppendError(st.out, ErrCodeSnapshot, err.Error())
			}
			return false
		}
		st.out = AppendOpened(st.out, sess.ID(), sess.ConfigName(), sess.Branches())
	default:
		// Unknown frame types are unrecoverable: a future peer speaking
		// a newer protocol would race our misinterpretation of its
		// stream.
		st.out = AppendError(st.out, ErrCodeMalformed,
			fmt.Sprintf("unknown frame type %#02x", typ))
		return true
	}
	return false
}

func appendRemoteError(dst []byte, err error) []byte {
	var re *RemoteError
	if errors.As(err, &re) {
		return AppendError(dst, re.Code, re.Message)
	}
	return AppendError(dst, ErrCodeMalformed, err.Error())
}
