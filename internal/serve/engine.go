package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/tage"
)

// Engine hosts the session registry plus the service-wide counters. It
// is the transport-free heart of the server: the TCP layer decodes
// frames and calls Open/Lookup/Close, and tests (allocation pins, race
// tests, benchmarks) drive it directly.
type Engine struct {
	reg *registry

	// defaultConfig/defaultOptions serve FrameOpen requests with an
	// empty config name (and, for the options, an all-zero options
	// block: a minimal client gets the operator-tuned predictor).
	// defaultSpec, when set, wins over both for such requests.
	defaultConfig  tage.Config
	defaultOptions core.Options
	defaultSpec    string

	opened  atomic.Uint64
	evicted atomic.Uint64

	// Admission control: maxInflight caps concurrently-served batches
	// engine-wide (0 = unlimited, negative = admit nothing — the
	// shed-everything test configuration); inflight is the live count and
	// shed tallies rejected batches (answered with FrameBusy upstream).
	maxInflight int64
	inflight    atomic.Int64
	shed        atomic.Uint64

	// Checkpoint counters (atomic: bumped on cold paths, read by
	// scrapes).
	ckptWritten         atomic.Uint64
	ckptBytes           atomic.Uint64
	ckptRestores        atomic.Uint64
	ckptRestoreFailures atomic.Uint64
	ckptWriteFailures   atomic.Uint64
	lastCkptNano        atomic.Int64

	// events receives cold-path lifecycle events (idle evictions,
	// checkpoint failures, restores) when a recorder is attached; a nil
	// recorder records nothing, so no call site needs a guard.
	events *obs.FlightRecorder

	// keyMu guards the durable-session namespace: the key→session-id
	// index, the parked tallies of evicted keyed sessions, and the
	// checkpoint store pointer. It is held across a whole keyed open,
	// close, sweep, or checkpoint pass, so a key can never race itself
	// (e.g. an eviction writing a final checkpoint while an open adopts
	// the previous one). Lock order: keyMu → registry shard → session mu
	// → retiredMu.
	keyMu  sync.Mutex
	keys   map[string]uint64
	parked map[string]sim.Result
	store  *CheckpointStore

	// retired accumulates the tallies of closed and evicted sessions so
	// service-wide counters never lose history when a session goes away;
	// retiredBy splits the same history per backend label, and openedBy
	// counts session opens per backend label. All three share retiredMu
	// (updates happen on the open/close/evict cold paths only).
	retiredMu sync.Mutex
	retired   sim.Result
	retiredBy map[string]BackendCounts
	openedBy  map[string]uint64
}

// EngineConfig sizes an Engine.
type EngineConfig struct {
	// Shards is the registry stripe count (rounded up to a power of two;
	// 0 selects DefaultShards).
	Shards int
	// MaxSessions caps live sessions (0 = unlimited). Opens beyond the
	// cap fail with ErrCodeSessionLimit.
	MaxSessions int
	// DefaultConfig serves open requests that name no configuration.
	// A zero value selects tage.Medium64K.
	DefaultConfig tage.Config
	// DefaultOptions serves open requests that name no configuration
	// and carry all-zero options.
	DefaultOptions core.Options
	// DefaultSpec, when non-empty, serves open requests that carry
	// neither a spec nor a configuration name — it may name any
	// registered backend family, so a server can default to a non-TAGE
	// predictor. It is validated at engine construction via
	// NewServer/NewEngine callers building a probe backend on first use;
	// an invalid spec surfaces as ErrCodeBadConfig on open.
	DefaultSpec string
	// MaxInflight caps batches being served concurrently across the whole
	// engine (0 = unlimited; negative admits nothing, for tests). A batch
	// arriving with the budget exhausted is shed: the TCP layer answers
	// FrameBusy and the client retries with backoff, so overload degrades
	// into explicit, retryable rejections instead of unbounded queueing.
	MaxInflight int
}

// DefaultShards is the registry stripe count when none is configured.
const DefaultShards = 16

// NewEngine builds an engine.
func NewEngine(cfg EngineConfig) *Engine {
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	def := cfg.DefaultConfig
	if def.Name == "" {
		def = tage.Medium64K()
	}
	return &Engine{
		reg:            newRegistry(shards, cfg.MaxSessions),
		defaultConfig:  def,
		defaultOptions: cfg.DefaultOptions,
		defaultSpec:    cfg.DefaultSpec,
		maxInflight:    int64(cfg.MaxInflight),
		retiredBy:      make(map[string]BackendCounts),
		openedBy:       make(map[string]uint64),
		keys:           make(map[string]uint64),
		parked:         make(map[string]sim.Result),
	}
}

// SetEvents attaches a flight recorder for cold-path lifecycle events.
// Call before serving traffic (the field is not synchronized against
// in-flight recordings).
func (e *Engine) SetEvents(rec *obs.FlightRecorder) { e.events = rec }

// AcquireBatch claims one inflight-batch slot, reporting false — and
// counting a shed — when the engine-wide budget is exhausted. Callers
// that get true must ReleaseBatch once the batch's response has shipped
// (the server holds the slot from serve through response flush, so
// MaxInflight bounds batches in flight end to end). It is on the
// per-batch hot path and performs no allocation.
//repro:hotpath
func (e *Engine) AcquireBatch() bool {
	limit := e.maxInflight
	if limit == 0 {
		return true
	}
	if limit < 0 {
		e.shed.Add(1)
		return false
	}
	if e.inflight.Add(1) > limit {
		e.inflight.Add(-1)
		e.shed.Add(1)
		return false
	}
	return true
}

// ReleaseBatch returns the slot claimed by a successful AcquireBatch.
//repro:hotpath
func (e *Engine) ReleaseBatch() {
	if e.maxInflight > 0 {
		e.inflight.Add(-1)
	}
}

// Open creates (or, for keyed requests, resumes) a session for the
// request. Failures carry a RemoteError whose code the TCP layer
// forwards verbatim.
//
// Backend resolution order: an explicit request spec wins; then an
// explicit config name (the legacy TAGE path, with the request
// options); then the engine's default spec; then the default
// config/options pair.
//
// Keyed requests resolve in durability order: a live session holding the
// key is resumed as-is (the request's predictor fields are ignored —
// the key is the identity); else a stored checkpoint for the key is
// restored; else a fresh keyed session is created. An unreadable or
// corrupt checkpoint is counted as a restore failure and falls back to a
// fresh session rather than failing the open.
func (e *Engine) Open(req OpenRequest, now int64) (*Session, error) {
	if req.Key == "" {
		return e.openFresh(req, now)
	}
	if len(req.Key) > maxSessionKey {
		return nil, &RemoteError{Code: ErrCodeMalformed,
			Message: fmt.Sprintf("session key length %d exceeds %d", len(req.Key), maxSessionKey)}
	}
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	if id, ok := e.keys[req.Key]; ok {
		if s, ok := e.reg.get(id); ok {
			s.lastUsed.Store(now)
			return s, nil
		}
		// Unreachable today: every path that retires a keyed session
		// holds keyMu and deletes the index entry first. Self-heal
		// anyway.
		delete(e.keys, req.Key)
	}
	if e.store != nil {
		blob, err := e.store.Read(req.Key)
		switch {
		case err == nil:
			s, aerr := e.adoptLocked(req.Key, blob, now)
			if aerr == nil {
				return s, nil
			}
			var re *RemoteError
			if errors.As(aerr, &re) {
				// Resource-level failures (session cap) are the caller's
				// problem, not the checkpoint's.
				return nil, aerr
			}
			e.ckptRestoreFailures.Add(1)
			e.events.Record(obs.Event{UnixNano: now, Kind: obs.EvRestoreFail, Key: req.Key, Cause: aerr.Error()})
		case !notExist(err):
			e.ckptRestoreFailures.Add(1)
			e.events.Record(obs.Event{UnixNano: now, Kind: obs.EvRestoreFail, Key: req.Key, Cause: err.Error()})
		}
	}
	s, err := e.openFresh(req, now)
	if err != nil {
		return nil, err
	}
	e.keys[req.Key] = s.id
	return s, nil
}

// adoptLocked restores the stored checkpoint blob as a live session for
// key. Caller holds keyMu.
func (e *Engine) adoptLocked(key string, blob []byte, now int64) (*Session, error) {
	snap, err := DecodeSessionSnapshot(blob)
	if err != nil {
		return nil, err
	}
	if snap.Key != key {
		return nil, fmt.Errorf("%w: checkpoint key %q stored under %q", predictor.ErrSnapshot, snap.Key, key)
	}
	return e.resumeLocked(snap, now)
}

// resumeLocked builds a live session from a decoded snapshot and
// publishes it under its key, subtracting any tallies this engine parked
// for the key at eviction time so every branch stays counted exactly
// once across evict/restore cycles. Caller holds keyMu.
func (e *Engine) resumeLocked(snap SessionSnapshot, now int64) (*Session, error) {
	id, ok := e.reg.reserve()
	if !ok {
		return nil, &RemoteError{
			Code:    ErrCodeSessionLimit,
			Message: fmt.Sprintf("session limit %d reached", e.reg.max),
		}
	}
	bk, err := predictor.RestoreSnapshot(snap.Predictor)
	if err != nil {
		e.reg.release()
		return nil, err
	}
	s := newSession(id, bk, snap.Res.Config, snap.Res.Mode, now)
	s.key = snap.Key
	s.res = snap.Res
	s.ckptBranches = snap.Res.Branches
	if parked, ok := e.parked[snap.Key]; ok {
		e.unfold(parked)
		delete(e.parked, snap.Key)
	}
	e.keys[snap.Key] = id
	e.reg.insert(s)
	e.opened.Add(1)
	e.ckptRestores.Add(1)
	e.retiredMu.Lock()
	e.openedBy[e.labelKeyLocked(snap.Res.Config)]++
	e.retiredMu.Unlock()
	e.events.Record(obs.Event{
		UnixNano: now,
		Kind:     obs.EvRestore,
		Session:  id,
		Key:      snap.Key,
		Backend:  snap.Res.Config,
	})
	return s, nil
}

// OpenSnapshot opens (or resumes) a session from a decoded snapshot blob
// — the FrameOpenSnap migration/failover path. A live session already
// holding the snapshot's key wins: the blob a failing-over client
// carries is at most as fresh as the live state.
func (e *Engine) OpenSnapshot(snap SessionSnapshot, now int64) (*Session, error) {
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	if id, ok := e.keys[snap.Key]; ok {
		if s, ok := e.reg.get(id); ok {
			s.lastUsed.Store(now)
			return s, nil
		}
		delete(e.keys, snap.Key)
	}
	s, err := e.resumeLocked(snap, now)
	if err != nil {
		return nil, err
	}
	// Persist the adopted state immediately: a node that accepted a
	// migrated session must survive its own crash from that point on.
	e.writeCheckpointLocked(s, now)
	return s, nil
}

// openFresh creates a brand-new session (the pre-durability Open body).
func (e *Engine) openFresh(req OpenRequest, now int64) (*Session, error) {
	spec := req.Spec
	if spec == "" && req.Config == "" && req.Options == (core.Options{}) && e.defaultSpec != "" {
		// The default spec serves only fully default requests; a legacy
		// client sending explicit options still gets the default TAGE
		// configuration with those options (the pre-spec behavior).
		spec = e.defaultSpec
	}
	// Reserve the cap slot before building: a rejected open must not
	// construct (and immediately discard) a full predictor.
	id, ok := e.reg.reserve()
	if !ok {
		return nil, &RemoteError{
			Code:    ErrCodeSessionLimit,
			Message: fmt.Sprintf("session limit %d reached", e.reg.max),
		}
	}
	var (
		bk    predictor.Backend
		label string
		mode  core.AutomatonMode
	)
	switch {
	case spec != "":
		b, _, err := predictor.New(spec)
		if err != nil {
			e.reg.release()
			return nil, &RemoteError{Code: ErrCodeBadConfig, Message: err.Error()}
		}
		bk, label, mode = b, b.Label(), predictor.ModeOf(b)
	default:
		cfg := e.defaultConfig
		if req.Config != "" {
			var err error
			cfg, err = tage.ConfigByName(req.Config)
			if err != nil {
				e.reg.release()
				return nil, &RemoteError{Code: ErrCodeBadConfig, Message: err.Error()}
			}
		} else if req.Options == (core.Options{}) {
			req.Options = e.defaultOptions
		}
		bk, label, mode = core.NewEstimator(cfg, req.Options), cfg.Name, req.Options.Mode
	}
	s := newSession(id, bk, label, mode, now)
	s.key = req.Key
	e.reg.insert(s)
	e.opened.Add(1)
	e.retiredMu.Lock()
	e.openedBy[e.labelKeyLocked(label)]++
	e.retiredMu.Unlock()
	return s, nil
}

// maxBackendLabels bounds the per-backend counter cardinality: spec
// strings are client-controlled (a loop over distinct seeds could mint
// unbounded labels), so beyond the cap further labels aggregate under
// labelOverflow instead of growing server memory and /metrics output
// without bound.
const (
	maxBackendLabels = 64
	labelOverflow    = "other"
)

// labelKeyLocked maps a session label onto its counter bucket: itself
// while the label table has room (or the label is already tracked),
// labelOverflow past the cap. Caller holds retiredMu.
func (e *Engine) labelKeyLocked(label string) string {
	if _, ok := e.openedBy[label]; ok {
		return label
	}
	if len(e.openedBy) < maxBackendLabels {
		return label
	}
	return labelOverflow
}

// Lookup returns the live session with the given id. It is on the
// per-batch hot path and performs no allocation.
func (e *Engine) Lookup(id uint64) (*Session, bool) { return e.reg.get(id) }

// Close retires a session and returns its final tallies. Closing a
// keyed session consumes it: the key is released and its checkpoint
// deleted — an explicit close is the client saying the stream is
// complete, so there is nothing left to recover.
func (e *Engine) Close(id uint64) (sim.Result, error) {
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	s, ok := e.reg.remove(id)
	if !ok {
		return sim.Result{}, &RemoteError{
			Code:    ErrCodeUnknownSession,
			Message: fmt.Sprintf("unknown session %d", id),
		}
	}
	res, first := s.retire()
	if !first {
		// Defensive: retire() is only ever called by whichever side
		// exclusively removed the session from its shard (here, or the
		// evictor in SweepIdle), so the remover always retires first and
		// this branch is unreachable today. Release the cap slot anyway
		// — if a future refactor made retirement lose a race, skipping
		// release would leak one max-sessions slot per occurrence.
		e.reg.release()
		return sim.Result{}, &RemoteError{
			Code:    ErrCodeUnknownSession,
			Message: fmt.Sprintf("session %d already retired", id),
		}
	}
	if s.key != "" {
		delete(e.keys, s.key)
		delete(e.parked, s.key)
		if e.store != nil {
			e.store.Delete(s.key)
		}
	}
	e.fold(res)
	e.reg.release()
	return res, nil
}

// SweepIdle retires every session idle since before cutoff and returns
// how many it evicted. An evicted keyed session is not lost: its final
// state is checkpointed (when a store is attached) and its already-folded
// tallies parked, so a later open with the same key restores the session
// and the parked amount is subtracted — every branch counted exactly
// once whether or not the session bounced through eviction.
func (e *Engine) SweepIdle(cutoff int64) int {
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	n := 0
	now := cutoff
	for _, s := range e.reg.sweepIdle(cutoff) {
		if res, first := s.retire(); first {
			if s.key != "" {
				delete(e.keys, s.key)
				if e.store != nil {
					if blob, err := s.retiredSnapshot(); err == nil {
						e.writeBlobLocked(s.key, blob, now)
						e.parked[s.key] = res
					}
				}
			}
			e.fold(res)
			e.reg.release()
			e.evicted.Add(1)
			e.events.Record(obs.Event{
				UnixNano: now,
				Kind:     obs.EvIdleEvict,
				Session:  s.id,
				Key:      s.key,
				Backend:  res.Config,
				Cause:    "idle past IdleTimeout",
			})
			n++
		}
	}
	return n
}

// CheckpointDirty writes a checkpoint for every keyed session whose
// branch count moved since its last checkpoint (every keyed session,
// when force is set — the shutdown drain). It returns how many it
// wrote. No-op without an attached store.
func (e *Engine) CheckpointDirty(now int64, force bool) int {
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	if e.store == nil {
		return 0
	}
	n := 0
	e.reg.forEach(func(s *Session) {
		blob, ok, err := s.checkpoint(force)
		if err != nil {
			e.ckptWriteFailures.Add(1)
			return
		}
		if !ok {
			return
		}
		if e.writeBlobLocked(s.key, blob, now) {
			n++
		}
	})
	return n
}

// writeCheckpointLocked force-writes one session's checkpoint. Caller
// holds keyMu.
func (e *Engine) writeCheckpointLocked(s *Session, now int64) {
	if e.store == nil {
		return
	}
	blob, ok, err := s.checkpoint(true)
	if err != nil {
		e.ckptWriteFailures.Add(1)
		return
	}
	if ok {
		e.writeBlobLocked(s.key, blob, now)
	}
}

// writeBlobLocked persists one encoded checkpoint and bumps the
// counters. Caller holds keyMu.
func (e *Engine) writeBlobLocked(key string, blob []byte, now int64) bool {
	if err := e.store.Write(key, blob); err != nil {
		e.ckptWriteFailures.Add(1)
		e.events.Record(obs.Event{
			UnixNano: now,
			Kind:     obs.EvCheckpointFail,
			Key:      key,
			Cause:    err.Error(),
		})
		return false
	}
	e.ckptWritten.Add(1)
	e.ckptBytes.Add(uint64(len(blob)))
	e.lastCkptNano.Store(now)
	return true
}

// AttachStore wires a checkpoint store into the engine and eagerly
// restores every stored checkpoint as a live session — the WAL-free
// warm-start path: a restarted server answers keyed opens from restored
// state immediately, with no per-branch replay log. Corrupt or
// unrestorable checkpoints are counted and skipped, never fatal.
// It returns how many sessions were restored.
func (e *Engine) AttachStore(cs *CheckpointStore, now int64) (int, error) {
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	if e.store != nil {
		return 0, fmt.Errorf("serve: checkpoint store already attached")
	}
	e.store = cs
	keys, err := cs.Keys()
	if err != nil {
		return 0, err
	}
	restored := 0
	for _, key := range keys {
		if _, live := e.keys[key]; live {
			continue
		}
		blob, err := cs.Read(key)
		if err != nil {
			e.ckptRestoreFailures.Add(1)
			e.events.Record(obs.Event{UnixNano: now, Kind: obs.EvRestoreFail, Key: key, Cause: err.Error()})
			continue
		}
		if _, err := e.adoptLocked(key, blob, now); err != nil {
			e.ckptRestoreFailures.Add(1)
			e.events.Record(obs.Event{UnixNano: now, Kind: obs.EvRestoreFail, Key: key, Cause: err.Error()})
			continue
		}
		restored++
	}
	return restored, nil
}

// HasStore reports whether a checkpoint store is attached.
func (e *Engine) HasStore() bool {
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	return e.store != nil
}

func (e *Engine) fold(res sim.Result) {
	e.retiredMu.Lock()
	e.retired.Branches += res.Branches
	e.retired.Instructions += res.Instructions
	e.retired.Total.Add(res.Total)
	for i := range res.Class {
		e.retired.Class[i].Add(res.Class[i])
	}
	key := e.labelKeyLocked(res.Config)
	bc := e.retiredBy[key]
	bc.Branches += res.Branches
	bc.Total.Add(res.Total)
	e.retiredBy[key] = bc
	e.retiredMu.Unlock()
}

// unfold reverses a fold: when a keyed session parked at eviction time
// comes back to life, the tallies folded then are subtracted so the live
// session (which re-reports them) does not double-count. Clamped at
// zero, like metrics.Counts.Sub, so a logic slip can never wrap the
// service counters.
func (e *Engine) unfold(res sim.Result) {
	sub := func(a *uint64, b uint64) {
		if *a < b {
			*a = 0
			return
		}
		*a -= b
	}
	e.retiredMu.Lock()
	sub(&e.retired.Branches, res.Branches)
	sub(&e.retired.Instructions, res.Instructions)
	e.retired.Total.Sub(res.Total)
	for i := range res.Class {
		e.retired.Class[i].Sub(res.Class[i])
	}
	key := e.labelKeyLocked(res.Config)
	bc := e.retiredBy[key]
	sub(&bc.Branches, res.Branches)
	bc.Total.Sub(res.Total)
	e.retiredBy[key] = bc
	e.retiredMu.Unlock()
}

// BackendCounts are the per-backend service counters: sessions opened
// under the backend label plus its branch tallies aggregated over live
// and retired sessions.
type BackendCounts struct {
	Label    string
	Opened   uint64
	Branches uint64
	Total    metrics.Counts
}

// Snapshot is a point-in-time view of the service-wide counters:
// sessions plus branch tallies aggregated over live and retired
// sessions, broken down per backend label in Backends.
type Snapshot struct {
	LiveSessions    int64
	OpenedSessions  uint64
	EvictedSessions uint64
	Branches        uint64
	Instructions    uint64
	Total           metrics.Counts
	Class           [core.NumClasses]metrics.Counts
	// Backends carries the per-backend counters sorted by label.
	Backends []BackendCounts
	// ShedBatches counts batches rejected by admission control
	// (FrameBusy); InflightBatches is the instantaneous count being
	// served (always 0 when MaxInflight is unlimited — the budget is not
	// tracked then, to keep the hot path to a single branch).
	ShedBatches     uint64
	InflightBatches int64
	// Checkpoint counters (all zero when no store is attached).
	CheckpointsWritten        uint64
	CheckpointBytes           uint64
	CheckpointRestores        uint64
	CheckpointRestoreFailures uint64
	CheckpointWriteFailures   uint64
	// LastCheckpointUnixNano is the engine-clock time of the most recent
	// successful checkpoint write (0 = never).
	LastCheckpointUnixNano int64
}

// Level aggregates the snapshot's class counts into a confidence level,
// exactly as sim.Result.Level does.
//repro:deterministic
func (s Snapshot) Level(l core.Level) metrics.Counts {
	var c metrics.Counts
	for _, cl := range core.Classes() {
		if cl.Level() == l {
			c.Add(s.Class[cl])
		}
	}
	return c
}

// Snapshot aggregates the engine's counters. Live sessions are snapshot
// one at a time under their own lock, so a scrape never blocks the whole
// service; the view is per-session consistent, not globally atomic.
//repro:deterministic
func (e *Engine) Snapshot() Snapshot {
	e.retiredMu.Lock()
	agg := e.retired
	labels := make([]string, 0, len(e.openedBy))
	for label := range e.openedBy {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	per := make(map[string]BackendCounts, len(labels))
	for _, label := range labels {
		bc := e.retiredBy[label]
		bc.Label = label
		bc.Opened = e.openedBy[label]
		per[label] = bc
	}
	e.retiredMu.Unlock()
	e.reg.forEach(func(s *Session) {
		res, ok := s.liveStats()
		if !ok {
			// Retired between the shard snapshot and here; it is (or is
			// about to be) folded into the retired aggregate and will be
			// fully visible at the next scrape.
			return
		}
		agg.Branches += res.Branches
		agg.Instructions += res.Instructions
		agg.Total.Add(res.Total)
		for i := range res.Class {
			agg.Class[i].Add(res.Class[i])
		}
		// Bucket live sessions exactly as their open did: a label the
		// table admitted counts under itself, overflow labels under the
		// shared bucket.
		key := res.Config
		if _, tracked := per[key]; !tracked {
			key = labelOverflow
		}
		bc := per[key]
		bc.Label = key
		bc.Branches += res.Branches
		bc.Total.Add(res.Total)
		per[key] = bc
	})
	backends := make([]BackendCounts, 0, len(per))
	for _, bc := range per {
		backends = append(backends, bc)
	}
	sort.Slice(backends, func(i, j int) bool { return backends[i].Label < backends[j].Label })
	return Snapshot{
		LiveSessions:              e.reg.count(),
		OpenedSessions:            e.opened.Load(),
		EvictedSessions:           e.evicted.Load(),
		Branches:                  agg.Branches,
		Instructions:              agg.Instructions,
		Total:                     agg.Total,
		Class:                     agg.Class,
		Backends:                  backends,
		ShedBatches:               e.shed.Load(),
		InflightBatches:           e.inflight.Load(),
		CheckpointsWritten:        e.ckptWritten.Load(),
		CheckpointBytes:           e.ckptBytes.Load(),
		CheckpointRestores:        e.ckptRestores.Load(),
		CheckpointRestoreFailures: e.ckptRestoreFailures.Load(),
		CheckpointWriteFailures:   e.ckptWriteFailures.Load(),
		LastCheckpointUnixNano:    e.lastCkptNano.Load(),
	}
}
