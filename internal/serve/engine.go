package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/tage"
)

// Engine hosts the session registry plus the service-wide counters. It
// is the transport-free heart of the server: the TCP layer decodes
// frames and calls Open/Lookup/Close, and tests (allocation pins, race
// tests, benchmarks) drive it directly.
type Engine struct {
	reg *registry

	// defaultConfig/defaultOptions serve FrameOpen requests with an
	// empty config name (and, for the options, an all-zero options
	// block: a minimal client gets the operator-tuned predictor).
	// defaultSpec, when set, wins over both for such requests.
	defaultConfig  tage.Config
	defaultOptions core.Options
	defaultSpec    string

	opened  atomic.Uint64
	evicted atomic.Uint64

	// retired accumulates the tallies of closed and evicted sessions so
	// service-wide counters never lose history when a session goes away;
	// retiredBy splits the same history per backend label, and openedBy
	// counts session opens per backend label. All three share retiredMu
	// (updates happen on the open/close/evict cold paths only).
	retiredMu sync.Mutex
	retired   sim.Result
	retiredBy map[string]BackendCounts
	openedBy  map[string]uint64
}

// EngineConfig sizes an Engine.
type EngineConfig struct {
	// Shards is the registry stripe count (rounded up to a power of two;
	// 0 selects DefaultShards).
	Shards int
	// MaxSessions caps live sessions (0 = unlimited). Opens beyond the
	// cap fail with ErrCodeSessionLimit.
	MaxSessions int
	// DefaultConfig serves open requests that name no configuration.
	// A zero value selects tage.Medium64K.
	DefaultConfig tage.Config
	// DefaultOptions serves open requests that name no configuration
	// and carry all-zero options.
	DefaultOptions core.Options
	// DefaultSpec, when non-empty, serves open requests that carry
	// neither a spec nor a configuration name — it may name any
	// registered backend family, so a server can default to a non-TAGE
	// predictor. It is validated at engine construction via
	// NewServer/NewEngine callers building a probe backend on first use;
	// an invalid spec surfaces as ErrCodeBadConfig on open.
	DefaultSpec string
}

// DefaultShards is the registry stripe count when none is configured.
const DefaultShards = 16

// NewEngine builds an engine.
func NewEngine(cfg EngineConfig) *Engine {
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	def := cfg.DefaultConfig
	if def.Name == "" {
		def = tage.Medium64K()
	}
	return &Engine{
		reg:            newRegistry(shards, cfg.MaxSessions),
		defaultConfig:  def,
		defaultOptions: cfg.DefaultOptions,
		defaultSpec:    cfg.DefaultSpec,
		retiredBy:      make(map[string]BackendCounts),
		openedBy:       make(map[string]uint64),
	}
}

// Open creates a session for the request. Failures carry a RemoteError
// whose code the TCP layer forwards verbatim.
//
// Backend resolution order: an explicit request spec wins; then an
// explicit config name (the legacy TAGE path, with the request
// options); then the engine's default spec; then the default
// config/options pair.
func (e *Engine) Open(req OpenRequest, now int64) (*Session, error) {
	spec := req.Spec
	if spec == "" && req.Config == "" && req.Options == (core.Options{}) && e.defaultSpec != "" {
		// The default spec serves only fully default requests; a legacy
		// client sending explicit options still gets the default TAGE
		// configuration with those options (the pre-spec behavior).
		spec = e.defaultSpec
	}
	// Reserve the cap slot before building: a rejected open must not
	// construct (and immediately discard) a full predictor.
	id, ok := e.reg.reserve()
	if !ok {
		return nil, &RemoteError{
			Code:    ErrCodeSessionLimit,
			Message: fmt.Sprintf("session limit %d reached", e.reg.max),
		}
	}
	var (
		bk    predictor.Backend
		label string
		mode  core.AutomatonMode
	)
	switch {
	case spec != "":
		b, _, err := predictor.New(spec)
		if err != nil {
			e.reg.release()
			return nil, &RemoteError{Code: ErrCodeBadConfig, Message: err.Error()}
		}
		bk, label, mode = b, b.Label(), predictor.ModeOf(b)
	default:
		cfg := e.defaultConfig
		if req.Config != "" {
			var err error
			cfg, err = tage.ConfigByName(req.Config)
			if err != nil {
				e.reg.release()
				return nil, &RemoteError{Code: ErrCodeBadConfig, Message: err.Error()}
			}
		} else if req.Options == (core.Options{}) {
			req.Options = e.defaultOptions
		}
		bk, label, mode = core.NewEstimator(cfg, req.Options), cfg.Name, req.Options.Mode
	}
	s := newSession(id, bk, label, mode, now)
	e.reg.insert(s)
	e.opened.Add(1)
	e.retiredMu.Lock()
	e.openedBy[e.labelKeyLocked(label)]++
	e.retiredMu.Unlock()
	return s, nil
}

// maxBackendLabels bounds the per-backend counter cardinality: spec
// strings are client-controlled (a loop over distinct seeds could mint
// unbounded labels), so beyond the cap further labels aggregate under
// labelOverflow instead of growing server memory and /metrics output
// without bound.
const (
	maxBackendLabels = 64
	labelOverflow    = "other"
)

// labelKeyLocked maps a session label onto its counter bucket: itself
// while the label table has room (or the label is already tracked),
// labelOverflow past the cap. Caller holds retiredMu.
func (e *Engine) labelKeyLocked(label string) string {
	if _, ok := e.openedBy[label]; ok {
		return label
	}
	if len(e.openedBy) < maxBackendLabels {
		return label
	}
	return labelOverflow
}

// Lookup returns the live session with the given id. It is on the
// per-batch hot path and performs no allocation.
func (e *Engine) Lookup(id uint64) (*Session, bool) { return e.reg.get(id) }

// Close retires a session and returns its final tallies.
func (e *Engine) Close(id uint64) (sim.Result, error) {
	s, ok := e.reg.remove(id)
	if !ok {
		return sim.Result{}, &RemoteError{
			Code:    ErrCodeUnknownSession,
			Message: fmt.Sprintf("unknown session %d", id),
		}
	}
	res, first := s.retire()
	if !first {
		// Defensive: retire() is only ever called by whichever side
		// exclusively removed the session from its shard (here, or the
		// evictor in SweepIdle), so the remover always retires first and
		// this branch is unreachable today. Release the cap slot anyway
		// — if a future refactor made retirement lose a race, skipping
		// release would leak one max-sessions slot per occurrence.
		e.reg.release()
		return sim.Result{}, &RemoteError{
			Code:    ErrCodeUnknownSession,
			Message: fmt.Sprintf("session %d already retired", id),
		}
	}
	e.fold(res)
	e.reg.release()
	return res, nil
}

// SweepIdle retires every session idle since before cutoff and returns
// how many it evicted.
func (e *Engine) SweepIdle(cutoff int64) int {
	n := 0
	for _, s := range e.reg.sweepIdle(cutoff) {
		if res, first := s.retire(); first {
			e.fold(res)
			e.reg.release()
			e.evicted.Add(1)
			n++
		}
	}
	return n
}

func (e *Engine) fold(res sim.Result) {
	e.retiredMu.Lock()
	e.retired.Branches += res.Branches
	e.retired.Instructions += res.Instructions
	e.retired.Total.Add(res.Total)
	for i := range res.Class {
		e.retired.Class[i].Add(res.Class[i])
	}
	key := e.labelKeyLocked(res.Config)
	bc := e.retiredBy[key]
	bc.Branches += res.Branches
	bc.Total.Add(res.Total)
	e.retiredBy[key] = bc
	e.retiredMu.Unlock()
}

// BackendCounts are the per-backend service counters: sessions opened
// under the backend label plus its branch tallies aggregated over live
// and retired sessions.
type BackendCounts struct {
	Label    string
	Opened   uint64
	Branches uint64
	Total    metrics.Counts
}

// Snapshot is a point-in-time view of the service-wide counters:
// sessions plus branch tallies aggregated over live and retired
// sessions, broken down per backend label in Backends.
type Snapshot struct {
	LiveSessions    int64
	OpenedSessions  uint64
	EvictedSessions uint64
	Branches        uint64
	Instructions    uint64
	Total           metrics.Counts
	Class           [core.NumClasses]metrics.Counts
	// Backends carries the per-backend counters sorted by label.
	Backends []BackendCounts
}

// Level aggregates the snapshot's class counts into a confidence level,
// exactly as sim.Result.Level does.
func (s Snapshot) Level(l core.Level) metrics.Counts {
	var c metrics.Counts
	for _, cl := range core.Classes() {
		if cl.Level() == l {
			c.Add(s.Class[cl])
		}
	}
	return c
}

// Snapshot aggregates the engine's counters. Live sessions are snapshot
// one at a time under their own lock, so a scrape never blocks the whole
// service; the view is per-session consistent, not globally atomic.
func (e *Engine) Snapshot() Snapshot {
	e.retiredMu.Lock()
	agg := e.retired
	per := make(map[string]BackendCounts, len(e.openedBy))
	for label, opened := range e.openedBy {
		bc := e.retiredBy[label]
		bc.Label = label
		bc.Opened = opened
		per[label] = bc
	}
	e.retiredMu.Unlock()
	e.reg.forEach(func(s *Session) {
		res, ok := s.liveStats()
		if !ok {
			// Retired between the shard snapshot and here; it is (or is
			// about to be) folded into the retired aggregate and will be
			// fully visible at the next scrape.
			return
		}
		agg.Branches += res.Branches
		agg.Instructions += res.Instructions
		agg.Total.Add(res.Total)
		for i := range res.Class {
			agg.Class[i].Add(res.Class[i])
		}
		// Bucket live sessions exactly as their open did: a label the
		// table admitted counts under itself, overflow labels under the
		// shared bucket.
		key := res.Config
		if _, tracked := per[key]; !tracked {
			key = labelOverflow
		}
		bc := per[key]
		bc.Label = key
		bc.Branches += res.Branches
		bc.Total.Add(res.Total)
		per[key] = bc
	})
	backends := make([]BackendCounts, 0, len(per))
	for _, bc := range per {
		backends = append(backends, bc)
	}
	sort.Slice(backends, func(i, j int) bool { return backends[i].Label < backends[j].Label })
	return Snapshot{
		LiveSessions:    e.reg.count(),
		OpenedSessions:  e.opened.Load(),
		EvictedSessions: e.evicted.Load(),
		Branches:        agg.Branches,
		Instructions:    agg.Instructions,
		Total:           agg.Total,
		Class:           agg.Class,
		Backends:        backends,
	}
}
