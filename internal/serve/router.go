// Failover-aware session routing: a Router spreads durable (keyed)
// sessions across a cluster of serve nodes with a consistent-hash ring,
// and a RouterSession survives node crashes — it reconnects to the same
// node with capped exponential backoff, resynchronizes its replay cursor
// from the node's restored state, and when the node stays dead fails
// over to the next ring node carrying the last snapshot blob it fetched.
// Tally exactness is preserved across every recovery: the client rewinds
// its trace reader to the server's cursor and re-replays, so the final
// Result still matches an uninterrupted offline run bit for bit.
package serve

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Router defaults.
const (
	DefaultReplicas         = 64
	DefaultMaxRetries       = 6
	DefaultRetryBackoff     = 50 * time.Millisecond
	DefaultSnapshotEvery    = 8
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = time.Second
	maxRetryBackoff         = 2 * time.Second
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Nodes are the wire-protocol addresses of the cluster.
	Nodes []string
	// Replicas is the virtual-node count per node on the hash ring
	// (0 selects DefaultReplicas). More replicas smooth the key
	// distribution at the cost of a larger ring.
	Replicas int
	// Client configures the per-node connections (deadlines).
	Client ClientConfig
	// MaxRetries bounds the consecutive recovery attempts (each attempt
	// tries every node once) before an operation gives up; 0 selects
	// DefaultMaxRetries.
	MaxRetries int
	// RetryBackoff is the initial backoff between recovery attempts; it
	// doubles per attempt, capped at 2s. 0 selects DefaultRetryBackoff.
	RetryBackoff time.Duration
	// SnapshotEvery is the batch cadence at which a replaying session
	// refreshes its client-held snapshot blob — the failover token; 0
	// selects DefaultSnapshotEvery, negative disables refreshing (the
	// session can then only fail over to a node that shares state).
	SnapshotEvery int
	// BreakerThreshold opens a node's circuit breaker after this many
	// consecutive failed attempts, so the ring routes around a flapping
	// node instead of burning its retry budget hammering it. 0 selects
	// DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects a node before
	// one half-open probe is allowed through (success closes it, failure
	// re-opens it for another cooldown). 0 selects
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Seed keys the per-session backoff-jitter streams (0 derives one
	// from the clock). Fixing it makes a chaos run's recovery timing
	// replayable.
	Seed uint64
	// Events receives the router's flight-recorder stream (retries,
	// breaker transitions, failovers, recoveries). Nil selects a private
	// DefaultEventBuffer-sized recorder, reachable via Router.Events.
	Events *obs.FlightRecorder
	// Logger receives breaker-transition warnings (with a recorder tail
	// attached on breaker-open). Nil selects slog.Default.
	Logger *slog.Logger
}

// NodeStats is one node's roll-up of router activity.
type NodeStats struct {
	Addr          string
	Sessions      uint64 // sessions currently placed on the node
	Retries       uint64 // failed connection/open attempts against the node
	Recoveries    uint64 // successful mid-stream recover-and-resync passes onto the node
	Failovers     uint64 // sessions that failed over onto the node
	BusyRetries   uint64 // load-shed (FrameBusy) retries against the node
	BreakerOpens  uint64 // closed→open breaker transitions
	BreakerCloses uint64 // open→closed breaker transitions (probe succeeded)
}

type vnode struct {
	hash uint64
	node int
}

// Router places session keys on cluster nodes with a consistent-hash
// ring. It is safe for concurrent use; each RouterSession owns its own
// connection.
type Router struct {
	cfg    RouterConfig
	ring   []vnode
	rec    *obs.FlightRecorder
	logger *slog.Logger

	mu       sync.Mutex
	stats    map[string]*NodeStats
	breakers map[string]*breakerState //repro:guardedby mu
}

// breakerState is one node's circuit breaker. Both the map and the
// pointed-to state are guarded by Router.mu (state is only ever touched
// through the nodeAvailable/nodeFailed/nodeOK accessors, which hold it).
type breakerState struct {
	fails     int       // consecutive failures since the last success
	open      bool      // breaker tripped
	openUntil time.Time // half-open probe allowed from here on
}

// NewRouter builds a router over the configured nodes.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("serve: router requires at least one node")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	r := &Router{
		cfg:      cfg,
		rec:      cfg.Events,
		logger:   cfg.Logger,
		stats:    make(map[string]*NodeStats),
		breakers: make(map[string]*breakerState),
	}
	if r.rec == nil {
		r.rec = obs.NewFlightRecorder(0)
	}
	if r.logger == nil {
		r.logger = slog.Default()
	}
	r.mu.Lock()
	for i, node := range cfg.Nodes {
		r.stats[node] = &NodeStats{Addr: node}
		r.breakers[node] = &breakerState{}
		for rep := 0; rep < cfg.Replicas; rep++ {
			r.ring = append(r.ring, vnode{hash: ringHash(fmt.Sprintf("%s#%d", node, rep)), node: i})
		}
	}
	r.mu.Unlock()
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].hash < r.ring[j].hash })
	return r, nil
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NodeFor returns the primary node for a session key.
func (r *Router) NodeFor(key string) string { return r.nodesFor(key)[0] }

// nodesFor returns every distinct node in ring order starting at the
// key's position — the session's failover order.
func (r *Router) nodesFor(key string) []string {
	h := ringHash(key)
	start := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	seen := make(map[int]bool, len(r.cfg.Nodes))
	order := make([]string, 0, len(r.cfg.Nodes))
	for i := 0; i < len(r.ring) && len(order) < len(r.cfg.Nodes); i++ {
		v := r.ring[(start+i)%len(r.ring)]
		if !seen[v.node] {
			seen[v.node] = true
			order = append(order, r.cfg.Nodes[v.node])
		}
	}
	return order
}

// Events returns the router's flight recorder (never nil).
func (r *Router) Events() *obs.FlightRecorder { return r.rec }

// Stats returns the per-node roll-up sorted by address.
func (r *Router) Stats() []NodeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeStats, 0, len(r.stats))
	for _, ns := range r.stats {
		out = append(out, *ns)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func (r *Router) bump(node string, f func(*NodeStats)) {
	r.mu.Lock()
	if ns, ok := r.stats[node]; ok {
		f(ns)
	}
	r.mu.Unlock()
}

// nodeAvailable reports whether the node's breaker admits an attempt:
// closed, or open with the cooldown expired (the half-open probe — the
// next failure re-opens it, a success closes it).
func (r *Router) nodeAvailable(node string) bool {
	if r.cfg.BreakerThreshold < 0 {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[node]
	if !ok || !b.open {
		return true
	}
	return !time.Now().Before(b.openUntil)
}

// nodeFailed records a failed attempt against the node, opening (or
// re-opening, after a failed half-open probe) its breaker at the
// threshold.
func (r *Router) nodeFailed(node string) {
	if r.cfg.BreakerThreshold < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[node]
	if !ok {
		return
	}
	b.fails++
	if b.fails < r.cfg.BreakerThreshold {
		return
	}
	if !b.open {
		b.open = true
		if ns, ok := r.stats[node]; ok {
			ns.BreakerOpens++
		}
		r.rec.Record(obs.Event{
			UnixNano: time.Now().UnixNano(), Kind: obs.EvBreakerOpen, Backend: node,
			Cause: fmt.Sprintf("%d consecutive failures", b.fails),
		})
		// Dump the recorder tail with the warning: the events leading up
		// to a breaker trip are exactly what the ring exists to explain.
		var tail strings.Builder
		r.rec.WriteTail(&tail, evictDumpTail)
		r.logger.Warn("serve: router breaker opened",
			"node", node, "consecutive_failures", b.fails,
			"cooldown", r.cfg.BreakerCooldown, "recent_events", tail.String())
	}
	b.openUntil = time.Now().Add(r.cfg.BreakerCooldown)
}

// nodeOK records a successful attempt, closing the node's breaker.
func (r *Router) nodeOK(node string) {
	if r.cfg.BreakerThreshold < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[node]
	if !ok {
		return
	}
	if b.open {
		b.open = false
		if ns, ok := r.stats[node]; ok {
			ns.BreakerCloses++
		}
		r.rec.Record(obs.Event{
			UnixNano: time.Now().UnixNano(), Kind: obs.EvBreakerClose, Backend: node,
			Cause: "half-open probe succeeded",
		})
		r.logger.Info("serve: router breaker closed", "node", node)
	}
	b.fails = 0
}

// sessionRand derives the per-session jitter stream: decorrelated across
// keys, replayable when RouterConfig.Seed is fixed.
func (r *Router) sessionRand(key string) *xrand.Rand {
	seed := r.cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano())
	}
	return xrand.New(seed ^ ringHash(key))
}

// RouterSession is one durable session driven through the router. It is
// not safe for concurrent use.
type RouterSession struct {
	r   *Router
	key string
	req OpenRequest

	nodes   []string // failover order for the key, primary first
	nodeIdx int      // current node (index into nodes)

	c      *Client
	sess   *ClientSession
	snap   []byte      // last fetched snapshot blob — the failover token
	placed bool        // session counted in a node's Sessions roll-up
	rng    *xrand.Rand // backoff jitter (seeded per key: replayable, decorrelated)
}

// Open places (or resumes) the keyed session on its ring node. The key
// is required: anonymous sessions have no identity to recover.
func (r *Router) Open(key string, req OpenRequest) (*RouterSession, error) {
	if key == "" {
		return nil, fmt.Errorf("serve: router sessions require a key")
	}
	req.Key = key
	rs := &RouterSession{r: r, key: key, req: req, nodes: r.nodesFor(key), rng: r.sessionRand(key)}
	if err := rs.establish(); err != nil {
		return nil, err
	}
	r.bump(rs.Node(), func(ns *NodeStats) { ns.Sessions++ })
	rs.placed = true
	return rs, nil
}

// Node returns the node currently hosting the session.
func (rs *RouterSession) Node() string { return rs.nodes[rs.nodeIdx] }

// Session returns the underlying client session (nil between a failed
// operation and its recovery).
func (rs *RouterSession) Session() *ClientSession { return rs.sess }

// recoverable classifies an error for the router: transport-level
// failures retry, and so does an unknown-session rejection — after a
// node restart or idle eviction the keyed re-open restores the session
// from its checkpoint.
//
// A corrupt frame (ErrCorrupt locally, ErrCodeCorrupt from the peer) is
// fatal for a plain client — the mangled exchange's fate is unknown, so
// resending the same bytes could double-apply — but recoverable here:
// the router drops the connection and resyncs its cursor and tallies
// from the server's authoritative snapshot instead of retrying bytes,
// preserving exactly-once.
func recoverable(err error) bool {
	if IsRetryable(err) {
		return true
	}
	if errors.Is(err, ErrCorrupt) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && (re.Code == ErrCodeUnknownSession || re.Code == ErrCodeCorrupt)
}

// harvestBusy folds the current connection's busy-retry count into the
// hosting node's roll-up. Called exactly once per connection, at the
// point the connection is dropped or retired.
func (rs *RouterSession) harvestBusy() {
	if rs.c == nil {
		return
	}
	if n := rs.c.BusyRetries(); n > 0 {
		rs.r.bump(rs.Node(), func(ns *NodeStats) { ns.BusyRetries += n })
	}
}

// dropConn tears down the session's connection (after harvesting its
// roll-ups); safe when no connection is held.
func (rs *RouterSession) dropConn() {
	if rs.c == nil {
		return
	}
	rs.harvestBusy()
	rs.c.Close()
	rs.c, rs.sess = nil, nil
}

// reconnect makes one pass over the nodes (current first, then the ring
// failover order): dial, then open the session — by key on the current
// node, from the held snapshot blob on a failover node. It reports the
// last failure when every node refused.
//
// The pass consults the per-node circuit breakers: nodes whose breaker
// is open (recent consecutive failures, cooldown not yet expired) are
// skipped, so a flapping node is routed around instead of hammered. If
// every node is skipped the pass fails open and retries them all anyway
// — with a single-node cluster (or a full outage) the breaker must
// degrade to plain capped-backoff retrying, never to giving up without
// trying.
func (rs *RouterSession) reconnect() error {
	err, attempted := rs.reconnectPass(true)
	if !attempted {
		// Every node was breaker-skipped without an attempt: fail open
		// and try them all.
		err, _ = rs.reconnectPass(false)
	}
	return err
}

// reconnectPass is one failover sweep. respectBreakers skips
// breaker-open nodes; attempted=false (always with err=nil) means every
// node was skipped.
func (rs *RouterSession) reconnectPass(respectBreakers bool) (err error, attempted bool) {
	var lastErr error
	for try := 0; try < len(rs.nodes); try++ {
		idx := (rs.nodeIdx + try) % len(rs.nodes)
		node := rs.nodes[idx]
		if respectBreakers && !rs.r.nodeAvailable(node) {
			continue
		}
		attempted = true
		c, err := DialConfig(node, rs.r.cfg.Client)
		if err != nil {
			lastErr = err
			rs.r.nodeFailed(node)
			rs.r.bump(node, func(ns *NodeStats) { ns.Retries++ })
			rs.r.rec.Record(obs.Event{
				UnixNano: time.Now().UnixNano(), Kind: obs.EvRetry,
				Key: rs.key, Backend: node, Cause: err.Error(),
			})
			continue
		}
		sess, err := rs.openOn(c, idx)
		if err != nil {
			c.Close()
			lastErr = err
			if !recoverable(err) {
				return err, true
			}
			rs.r.nodeFailed(node)
			rs.r.bump(node, func(ns *NodeStats) { ns.Retries++ })
			rs.r.rec.Record(obs.Event{
				UnixNano: time.Now().UnixNano(), Kind: obs.EvRetry,
				Key: rs.key, Backend: node, Cause: err.Error(),
			})
			continue
		}
		rs.r.nodeOK(node)
		if idx != rs.nodeIdx {
			rs.r.bump(node, func(ns *NodeStats) { ns.Failovers++ })
			rs.r.rec.Record(obs.Event{
				UnixNano: time.Now().UnixNano(), Kind: obs.EvFailover,
				Key: rs.key, Backend: node,
				Cause: "failed over from " + rs.nodes[rs.nodeIdx],
			})
			if rs.placed {
				// Move the placement roll-up with the session. A session
				// failing over during its initial Open is not counted yet
				// (Open bumps after establish succeeds) — transferring it
				// here would double-count it on the failover node.
				rs.r.bump(node, func(ns *NodeStats) { ns.Sessions++ })
				rs.r.bump(rs.nodes[rs.nodeIdx], func(ns *NodeStats) {
					if ns.Sessions > 0 {
						ns.Sessions--
					}
				})
			}
			rs.nodeIdx = idx
		}
		rs.c, rs.sess = c, sess
		return nil, true
	}
	return lastErr, attempted
}

func (rs *RouterSession) openOn(c *Client, idx int) (*ClientSession, error) {
	if idx != rs.nodeIdx && rs.snap != nil {
		// Failover: seed the replacement node with the last snapshot. If
		// the node already holds a live session for the key, the live
		// state wins server-side; either way the sync that follows reads
		// back the authoritative cursor.
		return c.OpenSnapshot(rs.snap)
	}
	return c.OpenSession(rs.req)
}

// sleepBackoff sleeps a jittered backoff (uniform over [d/2, 3d/2),
// from the session's seeded stream) so many sessions recovering from
// the same fault spread out instead of stampeding in lockstep.
func (rs *RouterSession) sleepBackoff(d time.Duration) {
	if d <= 0 {
		return
	}
	time.Sleep(d/2 + time.Duration(rs.rng.Uint64()%uint64(d)))
}

// establish runs reconnect under the retry policy: jittered capped
// exponential backoff between attempts, fatal errors surfacing
// immediately.
func (rs *RouterSession) establish() error {
	cfg := rs.r.cfg
	backoff := cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			rs.sleepBackoff(backoff)
			backoff *= 2
			if backoff > maxRetryBackoff {
				backoff = maxRetryBackoff
			}
		}
		err := rs.reconnect()
		if err == nil {
			return nil
		}
		lastErr = err
		if !recoverable(err) {
			return err
		}
	}
	return fmt.Errorf("serve: no node reachable for session %q after %d attempts: %w",
		rs.key, cfg.MaxRetries+1, lastErr)
}

// sync reads the server's authoritative state for the session and
// rewinds the client to it: local tallies are overwritten with the
// server's, the replay cursor moves to the server's branch count, and
// the snapshot blob becomes the new failover token.
func (rs *RouterSession) sync(local *sim.Result, pos *uint64) error {
	blob, err := rs.sess.Snapshot()
	if err != nil {
		return err
	}
	snap, err := DecodeSessionSnapshot(blob)
	if err != nil {
		return err
	}
	rs.snap = blob
	next := snap.Res
	next.Trace = local.Trace
	// Label like the client session labels its Close result (OpenSession
	// carries the request's mode, OpenSnapshot the snapshot's), so the
	// final local-vs-server cross-check compares like with like.
	next.Mode = rs.sess.opts.Mode
	*local = next
	*pos = snap.Res.Branches
	return nil
}

// recoverAndSync is the full client-side recovery path: drop the broken
// connection, re-establish (same node, else failover), and resync the
// replay cursor — all under the retry policy.
//
// cause, the error that triggered the recovery, counts as a health
// strike against the hosting node's circuit breaker: a node whose
// connections keep dying mid-stream gets routed around like one that
// refuses dials. Overload (BusyError) is exempt — a shedding node is
// protecting itself, and opening its breaker would amplify load
// shedding into unavailability.
func (rs *RouterSession) recoverAndSync(cause error, local *sim.Result, pos *uint64) error {
	var be *BusyError
	if cause != nil && !errors.As(cause, &be) {
		rs.r.nodeFailed(rs.Node())
	}
	cfg := rs.r.cfg
	backoff := cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			rs.sleepBackoff(backoff)
			backoff *= 2
			if backoff > maxRetryBackoff {
				backoff = maxRetryBackoff
			}
		}
		rs.dropConn()
		if err := rs.reconnect(); err != nil {
			lastErr = err
			if !recoverable(err) {
				return err
			}
			continue
		}
		if err := rs.sync(local, pos); err != nil {
			lastErr = err
			if !recoverable(err) {
				return err
			}
			continue
		}
		rs.r.bump(rs.Node(), func(ns *NodeStats) { ns.Recoveries++ })
		causeMsg := ""
		if cause != nil {
			causeMsg = cause.Error()
		}
		rs.r.rec.Record(obs.Event{
			UnixNano: time.Now().UnixNano(), Kind: obs.EvRecovery,
			Key: rs.key, Backend: rs.Node(), Cause: causeMsg,
		})
		return nil
	}
	return fmt.Errorf("serve: session %q unrecoverable after %d attempts: %w",
		rs.key, cfg.MaxRetries+1, lastErr)
}

// Replay streams tr (truncated to limit records; 0 = full trace) through
// the routed session in batches of batchSize branches, surviving node
// crashes and failovers, and returns the final tallies labeled with the
// trace name — still bit-identical to an uninterrupted offline sim.Run
// over the same stream, because every recovery rewinds the reader to the
// server's cursor before continuing.
//
// Per-branch grades during a recovery window are re-served from the
// restored state (the tallies stay exact; a caller consuming grades live
// sees the affected batches again). When lat is non-nil one round-trip
// latency sample is recorded per served batch.
func (rs *RouterSession) Replay(tr trace.Trace, limit uint64, batchSize int, lat BatchObserver) (sim.Result, error) {
	if batchSize <= 0 || batchSize > MaxBatch {
		batchSize = 1024
	}
	local := sim.Result{Trace: tr.Name(), Config: rs.sess.Config(), Mode: rs.sess.opts.Mode}
	pos := uint64(0)
	if rs.sess.Resumed() > 0 {
		// The open resumed server-side state: adopt its tallies and
		// cursor before streaming.
		if err := rs.sync(&local, &pos); err != nil {
			if !recoverable(err) {
				return sim.Result{}, err
			}
			if err := rs.recoverAndSync(err, &local, &pos); err != nil {
				return sim.Result{}, err
			}
		}
	}
	batch := make([]trace.Branch, 0, batchSize)
	batches := 0
	for {
		rd, err := openReaderAt(tr, limit, pos)
		if err != nil {
			return sim.Result{}, err
		}
		res, done, drained, err := rs.replayFrom(rd, &local, &pos, batch[:0], batchSize, &batches, lat)
		if !drained {
			// A drained (or self-closed) reader must not be touched
			// again; anything else still owns resources.
			closeReader(rd)
		}
		if err != nil {
			return sim.Result{}, err
		}
		if done {
			res.Trace = tr.Name()
			local.FinalProbability = res.FinalProbability
			if local != res {
				return sim.Result{}, fmt.Errorf("serve: routed replay disagrees with server stats for %s: client %+v server %+v",
					tr.Name(), local, res)
			}
			return res, nil
		}
		// A recovery rewound the cursor; reopen the reader at pos and
		// continue.
	}
}

// replayFrom streams the open reader through the session. It returns
// done=false (with a rewound cursor already synced) when a recovery
// interrupted the stream, and done=true with the server's final stats
// once the trace drained and the session closed. drained reports whether
// the reader reached io.EOF (or closed itself on a decode error) — a
// drained reader must not be closed again by the caller.
func (rs *RouterSession) replayFrom(rd trace.Reader, local *sim.Result, pos *uint64,
	batch []trace.Branch, batchSize int, batches *int, lat BatchObserver) (res sim.Result, done, drained bool, err error) {
	cfg := rs.r.cfg
	for eof := false; !eof; {
		batch = batch[:0]
		for len(batch) < batchSize {
			b, err := rd.Next()
			if errors.Is(err, io.EOF) {
				eof = true
				drained = true
				break
			}
			if err != nil {
				// Readers close themselves on decode errors.
				return sim.Result{}, false, true, err
			}
			batch = append(batch, b)
		}
		if len(batch) == 0 {
			break
		}
		start := time.Now()
		grades, err := rs.sess.Predict(batch)
		if err != nil {
			if !recoverable(err) {
				return sim.Result{}, false, drained, err
			}
			if err := rs.recoverAndSync(err, local, pos); err != nil {
				return sim.Result{}, false, drained, err
			}
			return sim.Result{}, false, drained, nil
		}
		if lat != nil {
			lat.Observe(time.Since(start))
		}
		for i, g := range grades {
			miss := g.Pred != batch[i].Taken
			local.Total.Record(miss)
			local.Class[g.Class].Record(miss)
			local.Branches++
			// Mirror the wire codec's clamp (Instr 0 travels as 1).
			instr := batch[i].Instr
			if instr == 0 {
				instr = 1
			}
			local.Instructions += uint64(instr)
		}
		*pos += uint64(len(grades))
		*batches++
		if cfg.SnapshotEvery > 0 && *batches%cfg.SnapshotEvery == 0 {
			// Refresh the failover token. Best-effort: a failure here
			// means the connection is likely broken and the next Predict
			// runs the real recovery.
			if blob, serr := rs.sess.Snapshot(); serr == nil {
				rs.snap = blob
			}
		}
	}
	res, err = rs.sess.Close()
	if err != nil {
		if !recoverable(err) {
			return sim.Result{}, false, drained, err
		}
		if err := rs.recoverAndSync(err, local, pos); err != nil {
			return sim.Result{}, false, drained, err
		}
		return sim.Result{}, false, drained, nil
	}
	rs.dropConn()
	rs.r.bump(rs.Node(), func(ns *NodeStats) {
		if ns.Sessions > 0 {
			ns.Sessions--
		}
	})
	rs.placed = false
	return res, true, drained, nil
}

// Close abandons the routed session client-side without retiring it on
// the server (Replay retires it on success). Safe to call after Replay.
func (rs *RouterSession) Close() error {
	if rs.c != nil {
		rs.harvestBusy()
		err := rs.c.Close()
		rs.c, rs.sess = nil, nil
		return err
	}
	return nil
}

// openReaderAt opens the trace reader and skips to the replay cursor.
func openReaderAt(tr trace.Trace, limit, skip uint64) (trace.Reader, error) {
	rd := trace.Limit(tr, limit).Open()
	for i := uint64(0); i < skip; i++ {
		if _, err := rd.Next(); err != nil {
			closeReader(rd)
			return nil, fmt.Errorf("serve: rewinding %s to branch %d: %w", tr.Name(), skip, err)
		}
	}
	return rd, nil
}

// closeReader releases a reader's resources when it was not drained to
// io.EOF (a drained reader must not be touched again).
func closeReader(rd trace.Reader) {
	if c, ok := rd.(interface{ Close() }); ok {
		c.Close()
	}
}
