package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Session is one live predictor instance: a predictor.Backend (a TAGE
// core.Estimator by default, any registry family via an Open spec) plus
// the running per-class tallies, updated branch by branch exactly as the
// offline driver (sim.Run) updates them — which is what makes the
// server-side stats bit-identical to an offline run over the same
// stream.
//
// A session is exclusive while serving: Serve and Stats take the session
// lock, so concurrent batches for the same session serialize (and
// batches for different sessions don't contend).
type Session struct {
	id uint64
	// key is the session's durable identity; empty for anonymous
	// sessions, which are never checkpointed. Immutable after
	// construction.
	key string

	mu      sync.Mutex
	bk      predictor.Backend //repro:guardedby mu
	res     sim.Result        //repro:guardedby mu
	retired bool              //repro:guardedby mu
	// ckptBranches is the branch count at the last written checkpoint —
	// the dirty bit: the checkpoint loop skips sessions whose count has
	// not moved since.
	ckptBranches uint64 //repro:guardedby mu

	// lastUsed is the engine-clock nanosecond of the last Open/Serve,
	// read by the idle evictor without taking the session lock.
	lastUsed atomic.Int64
}

// newSession builds a session around a freshly built backend. label is
// the backend's result/metrics key (the configuration name for TAGE
// estimators, the canonical spec string otherwise) and mode the
// automaton mode the backend reports.
func newSession(id uint64, bk predictor.Backend, label string, mode core.AutomatonMode, now int64) *Session {
	s := &Session{
		id:  id,
		bk:  bk,
		res: sim.Result{Config: label, Mode: mode},
	}
	s.lastUsed.Store(now)
	return s
}

// ID returns the registry-assigned session id.
func (s *Session) ID() uint64 { return s.id }

// Key returns the session's durable key ("" for anonymous sessions).
func (s *Session) Key() string { return s.key }

// Branches returns the session's served branch count — the replay cursor
// a resumed client continues from.
func (s *Session) Branches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res.Branches
}

// ConfigName returns the session's backend label (the resolved predictor
// configuration name, or the canonical backend spec). It is immutable
// after construction, so reading it takes no lock.
//repro:locked res.Config is immutable after construction; audited lock-free read
func (s *Session) ConfigName() string { return s.res.Config }

// step serves one branch: predict, tally, train — the exact per-branch
// sequence of sim.Run — and returns the encoded grade byte. Caller holds
// s.mu.
//repro:hotpath
//repro:locked caller holds s.mu (Serve/batch loop)
func (s *Session) step(b trace.Branch) byte {
	pred, class, level := s.bk.Predict(b.PC)
	miss := pred != b.Taken
	s.res.Total.Record(miss)
	s.res.Class[class].Record(miss) //repro:allow-bce class comes from the backend's classifier, always < NumClasses; clamping would silently misattribute tallies
	s.res.Branches++
	s.res.Instructions += uint64(b.Instr)
	s.bk.Update(b.PC, b.Taken)
	return EncodeGrade(pred, class, level)
}

// Serve runs one branch batch through the session, appending one grade
// byte per branch into grades[:0] (pass a reused buffer: the per-branch
// path allocates nothing). It reports ok=false when the session has
// already been retired by Close or the idle evictor — the tallies of a
// retired session are frozen, so no branch is ever half-counted.
//repro:hotpath
func (s *Session) Serve(records []trace.Branch, grades []byte, now int64) (out []byte, ok bool) {
	s.lastUsed.Store(now)
	s.mu.Lock()
	if s.retired {
		s.mu.Unlock()
		return grades[:0], false
	}
	out = grades[:0]
	for _, b := range records {
		out = append(out, s.step(b))
	}
	s.mu.Unlock()
	return out, true
}

// Stats snapshots the session's tallies (with the backend's current
// saturation probability filled in, as sim.Run does at end of run).
func (s *Session) Stats() sim.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

//repro:deterministic
func (s *Session) statsLocked() sim.Result {
	s.res.FinalProbability = predictor.SaturationProbabilityOf(s.bk)
	return s.res
}

// liveStats snapshots the tallies unless the session has been retired.
// Scrapes use it so a session racing with Close/eviction is counted
// either in the live pass or in the retired aggregate, never in both.
//repro:deterministic
func (s *Session) liveStats() (sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired {
		return sim.Result{}, false
	}
	return s.statsLocked(), true
}

// snapshotLocked encodes the session's durable snapshot. Caller holds
// s.mu, which is what makes the cut exact: Serve holds the lock for the
// whole batch, so a snapshot always lands on a batch boundary where the
// backend is between a resolved Update and the next Predict and every
// served branch is tallied exactly once.
func (s *Session) snapshotLocked() ([]byte, error) {
	pb, err := predictor.AppendSnapshot(nil, s.bk)
	if err != nil {
		return nil, err
	}
	res := s.res
	res.Trace = ""
	res.FinalProbability = 0
	return AppendSessionSnapshot(nil, SessionSnapshot{Key: s.key, Res: res, Predictor: pb}), nil
}

// Snapshot encodes the session's durable snapshot (FrameSnapGet, tests).
// It fails once the session has been retired — the engine owns a retired
// session's final checkpoint.
func (s *Session) Snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.key == "" {
		// An anonymous blob would fail the decoder's key check anyway;
		// reject it here so the client gets a meaningful error.
		return nil, fmt.Errorf("serve: session %d is anonymous (no durable key)", s.id)
	}
	if s.retired {
		return nil, fmt.Errorf("serve: session %d retired", s.id)
	}
	return s.snapshotLocked()
}

// checkpoint encodes the session snapshot for the background checkpoint
// loop, reporting ok=false when there is nothing to write: the session
// is anonymous, already retired (its final checkpoint is the evictor's
// job), or — unless force — clean since the last checkpoint.
func (s *Session) checkpoint(force bool) (blob []byte, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.key == "" || s.retired {
		return nil, false, nil
	}
	if !force && s.res.Branches == s.ckptBranches {
		return nil, false, nil
	}
	blob, err = s.snapshotLocked()
	if err != nil {
		return nil, false, err
	}
	s.ckptBranches = s.res.Branches
	return blob, true, nil
}

// retiredSnapshot encodes the snapshot of an already-retired session —
// the evictor's final checkpoint. Safe because retirement froze the
// tallies and no Serve can touch the backend again.
func (s *Session) retiredSnapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// retire freezes the session and returns its final tallies. The second
// return reports whether this call was the one that retired it.
func (s *Session) retire() (sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired {
		return sim.Result{}, false
	}
	s.retired = true
	return s.statsLocked(), true
}
