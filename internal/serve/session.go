package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Session is one live predictor instance: a predictor.Backend (a TAGE
// core.Estimator by default, any registry family via an Open spec) plus
// the running per-class tallies, updated branch by branch exactly as the
// offline driver (sim.Run) updates them — which is what makes the
// server-side stats bit-identical to an offline run over the same
// stream.
//
// A session is exclusive while serving: Serve and Stats take the session
// lock, so concurrent batches for the same session serialize (and
// batches for different sessions don't contend).
type Session struct {
	id uint64

	mu      sync.Mutex
	bk      predictor.Backend
	res     sim.Result
	retired bool

	// lastUsed is the engine-clock nanosecond of the last Open/Serve,
	// read by the idle evictor without taking the session lock.
	lastUsed atomic.Int64
}

// newSession builds a session around a freshly built backend. label is
// the backend's result/metrics key (the configuration name for TAGE
// estimators, the canonical spec string otherwise) and mode the
// automaton mode the backend reports.
func newSession(id uint64, bk predictor.Backend, label string, mode core.AutomatonMode, now int64) *Session {
	s := &Session{
		id:  id,
		bk:  bk,
		res: sim.Result{Config: label, Mode: mode},
	}
	s.lastUsed.Store(now)
	return s
}

// ID returns the registry-assigned session id.
func (s *Session) ID() uint64 { return s.id }

// ConfigName returns the session's backend label (the resolved predictor
// configuration name, or the canonical backend spec). It is immutable
// after construction, so reading it takes no lock.
func (s *Session) ConfigName() string { return s.res.Config }

// step serves one branch: predict, tally, train — the exact per-branch
// sequence of sim.Run — and returns the encoded grade byte. Caller holds
// s.mu.
func (s *Session) step(b trace.Branch) byte {
	pred, class, level := s.bk.Predict(b.PC)
	miss := pred != b.Taken
	s.res.Total.Record(miss)
	s.res.Class[class].Record(miss)
	s.res.Branches++
	s.res.Instructions += uint64(b.Instr)
	s.bk.Update(b.PC, b.Taken)
	return EncodeGrade(pred, class, level)
}

// Serve runs one branch batch through the session, appending one grade
// byte per branch into grades[:0] (pass a reused buffer: the per-branch
// path allocates nothing). It reports ok=false when the session has
// already been retired by Close or the idle evictor — the tallies of a
// retired session are frozen, so no branch is ever half-counted.
func (s *Session) Serve(records []trace.Branch, grades []byte, now int64) (out []byte, ok bool) {
	s.lastUsed.Store(now)
	s.mu.Lock()
	if s.retired {
		s.mu.Unlock()
		return grades[:0], false
	}
	out = grades[:0]
	for _, b := range records {
		out = append(out, s.step(b))
	}
	s.mu.Unlock()
	return out, true
}

// Stats snapshots the session's tallies (with the backend's current
// saturation probability filled in, as sim.Run does at end of run).
func (s *Session) Stats() sim.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Session) statsLocked() sim.Result {
	s.res.FinalProbability = predictor.SaturationProbabilityOf(s.bk)
	return s.res
}

// liveStats snapshots the tallies unless the session has been retired.
// Scrapes use it so a session racing with Close/eviction is counted
// either in the live pass or in the retired aggregate, never in both.
func (s *Session) liveStats() (sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired {
		return sim.Result{}, false
	}
	return s.statsLocked(), true
}

// retire freezes the session and returns its final tallies. The second
// return reports whether this call was the one that retired it.
func (s *Session) retire() (sim.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired {
		return sim.Result{}, false
	}
	s.retired = true
	return s.statsLocked(), true
}
