package serve

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestRouterRing pins the consistent-hash placement properties the
// cluster depends on: determinism, full coverage, distinct failover
// order, and placement stability when a node leaves the ring.
func TestRouterRing(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Fatal("router with no nodes accepted")
	}
	nodes := []string{"10.0.0.1:7", "10.0.0.2:7", "10.0.0.3:7"}
	r1, err := NewRouter(RouterConfig{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRouter(RouterConfig{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	placed := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("session/%d", i)
		if r1.NodeFor(key) != r2.NodeFor(key) {
			t.Fatalf("placement of %q not deterministic", key)
		}
		order := r1.nodesFor(key)
		if len(order) != len(nodes) {
			t.Fatalf("failover order for %q covers %d nodes, want %d", key, len(order), len(nodes))
		}
		seen := map[string]bool{}
		for _, n := range order {
			if seen[n] {
				t.Fatalf("failover order for %q repeats %q", key, n)
			}
			seen[n] = true
		}
		placed[order[0]]++
	}
	for _, n := range nodes {
		if placed[n] == 0 {
			t.Errorf("node %s received no sessions out of 1000", n)
		}
	}
	// Consistent-hashing stability: removing one node must not move keys
	// placed on the surviving nodes.
	r3, err := NewRouter(RouterConfig{Nodes: nodes[:2]})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("session/%d", i)
		if primary := r1.NodeFor(key); primary != nodes[2] {
			if got := r3.NodeFor(key); got != primary {
				t.Fatalf("key %q moved %s -> %s when %s left", key, primary, got, nodes[2])
			}
		}
	}
}

// keyOn finds a session key whose primary placement is the given node.
func keyOn(t *testing.T, r *Router, node string) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("failover/key-%d", i)
		if r.NodeFor(key) == node {
			return key
		}
	}
	t.Fatal("no key maps to node")
	return ""
}

// TestRouterFailover is the cluster acceptance pin: a routed replay
// survives its primary node dying mid-stream — the session fails over to
// the next ring node carrying the client-held snapshot, the cursor
// resyncs, and the final tallies still match an uninterrupted offline
// run bit for bit. Node roll-ups record the failover.
func TestRouterFailover(t *testing.T) {
	srv1 := startServer(t, Config{})
	srv2 := startServer(t, Config{})
	addr1, addr2 := srv1.Addr().String(), srv2.Addr().String()
	r, err := NewRouter(RouterConfig{
		Nodes:        []string{addr1, addr2},
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := keyOn(t, r, addr1)

	const (
		limit     = 400_000
		batchSize = 512
		spec      = "tage-16K?mode=probabilistic"
	)
	tr, err := workload.ByName("MM-1")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Open(key, OpenRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Node() != addr1 {
		t.Fatalf("session placed on %s, want primary %s", rs.Node(), addr1)
	}
	type outcome struct {
		res sim.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := rs.Replay(tr, limit, batchSize, nil)
		done <- outcome{res, err}
	}()

	// Kill the primary once the replay is far enough in to have refreshed
	// its failover snapshot at least once (SnapshotEvery defaults to 8
	// batches), but nowhere near done.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if srv1.Engine().Snapshot().Branches >= 16*batchSize {
			break
		}
		select {
		case o := <-done:
			t.Fatalf("replay finished before the induced failure (err=%v)", o.err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("replay never progressed on the primary")
		}
		time.Sleep(200 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown primary: %v", err)
	}
	cancel()

	var o outcome
	select {
	case o = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("routed replay did not finish after failover")
	}
	if o.err != nil {
		t.Fatalf("routed replay: %v", o.err)
	}
	sp, err := predictor.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := sim.RunSpec(sp, tr, limit)
	if err != nil {
		t.Fatal(err)
	}
	// Router sessions label results with the request's (zero) mode.
	offline.Mode = o.res.Mode
	if o.res != offline {
		t.Errorf("failover replay %+v != offline %+v", o.res, offline)
	}
	stats := r.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats cover %d nodes, want 2", len(stats))
	}
	byAddr := map[string]NodeStats{}
	for _, ns := range stats {
		byAddr[ns.Addr] = ns
	}
	if byAddr[addr2].Failovers != 1 {
		t.Errorf("node %s records %d failovers, want 1", addr2, byAddr[addr2].Failovers)
	}
	if byAddr[addr1].Retries == 0 {
		t.Errorf("node %s records no retries despite dying mid-replay", addr1)
	}
	if byAddr[addr1].Sessions != 0 || byAddr[addr2].Sessions != 0 {
		t.Errorf("sessions still placed after completed replay: %+v", stats)
	}
}

// TestRouterResumeAfterRestart pins the same-node recovery path: when
// the session's node comes back (same address, state restored from its
// checkpoint directory), the router reconnects to it rather than failing
// over, resumes from the checkpoint cursor, and the replay still matches
// offline bit for bit. This is the in-process twin of the kill-9 test in
// crash_test.go.
func TestRouterResumeAfterRestart(t *testing.T) {
	dir := t.TempDir()
	srvA := startServer(t, Config{StateDir: dir, CheckpointInterval: 5 * time.Millisecond})
	addr := srvA.Addr().String()
	r, err := NewRouter(RouterConfig{
		Nodes:        []string{addr},
		MaxRetries:   10,
		RetryBackoff: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		limit     = 300_000
		batchSize = 512
		spec      = "gshare-64K"
		key       = "restart/FP-2"
	)
	tr, err := workload.ByName("FP-2")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Open(key, OpenRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res sim.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := rs.Replay(tr, limit, batchSize, nil)
		done <- outcome{res, err}
	}()

	// Let it run past a few checkpoints, then take the node down and bring
	// a replacement up on the same address and state directory — the
	// in-process twin of a node restart.
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap := srvA.Engine().Snapshot()
		if snap.CheckpointsWritten >= 2 && snap.Branches >= 16*batchSize {
			break
		}
		select {
		case o := <-done:
			t.Fatalf("replay finished before the induced restart (err=%v)", o.err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint written in time")
		}
		time.Sleep(200 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srvA.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()
	srvB := NewServer(Config{StateDir: dir, CheckpointInterval: 5 * time.Millisecond})
	lnB, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srvB.Serve(lnB) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srvB.Shutdown(ctx); err != nil {
			t.Errorf("shutdown replacement: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("replacement serve returned: %v", err)
		}
	})

	var o outcome
	select {
	case o = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("replay did not finish after restart")
	}
	if o.err != nil {
		t.Fatalf("replay: %v", o.err)
	}
	if got := srvB.Engine().Snapshot().CheckpointRestores; got != 1 {
		t.Errorf("restarted node restored %d sessions, want 1", got)
	}
	sp, err := predictor.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := sim.RunSpec(sp, tr, limit)
	if err != nil {
		t.Fatal(err)
	}
	offline.Mode = o.res.Mode
	if o.res != offline {
		t.Errorf("restart replay %+v != offline %+v", o.res, offline)
	}
}
