// Crash recovery proven with real processes: the parent test spawns its
// own test binary as a checkpointing server, replays a trace against it
// through a Router, kills the server with SIGKILL mid-replay, restarts
// it on the same address and state directory, and requires the resumed
// replay to finish with tallies bit-identical to an uninterrupted
// offline run — the durability acceptance pin of the serve layer.
package serve

import (
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	crashChildEnv = "TAGE_SERVE_CRASH_CHILD"
	crashAddrEnv  = "TAGE_SERVE_CRASH_ADDR"
	crashStateEnv = "TAGE_SERVE_CRASH_STATE"
)

// TestCrashRecoveryChild is not a test of its own: it is the server
// process body the kill-9 test re-executes. Without the env gate it
// skips immediately.
func TestCrashRecoveryChild(t *testing.T) {
	if os.Getenv(crashChildEnv) == "" {
		t.Skip("crash-recovery child process body; driven by TestCrashRecovery")
	}
	srv := NewServer(Config{
		StateDir:           os.Getenv(crashStateEnv),
		CheckpointInterval: 20 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", os.Getenv(crashAddrEnv))
	if err != nil {
		t.Fatalf("child listen: %v", err)
	}
	// Serves until the parent kills the process.
	if err := srv.Serve(ln); err != nil {
		t.Fatalf("child serve: %v", err)
	}
}

// startCrashChild re-executes the test binary as a server process.
func startCrashChild(t *testing.T, addr, stateDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashRecoveryChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		crashAddrEnv+"="+addr,
		crashStateEnv+"="+stateDir,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawning server process: %v", err)
	}
	return cmd
}

// waitServing polls until a TCP dial to addr succeeds.
func waitServing(t *testing.T, addr string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server at %s never came up: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCrashRecovery(t *testing.T) {
	if os.Getenv(crashChildEnv) != "" {
		t.Skip("inside child process")
	}
	if testing.Short() {
		t.Skip("spawns and kills real server processes")
	}
	stateDir := t.TempDir()
	// Reserve an ephemeral port, then release it for the child. The tiny
	// window between Close and the child's Listen is racy in principle;
	// in practice nothing else grabs a just-released ephemeral port.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	child := startCrashChild(t, addr, stateDir)
	childDone := false
	defer func() {
		if !childDone {
			child.Process.Kill()
			child.Wait()
		}
	}()
	waitServing(t, addr, 15*time.Second)

	const (
		limit     = 600_000
		batchSize = 256
		spec      = "tage-16K?mode=probabilistic"
		key       = "crash/INT-2"
	)
	tr, err := workload.ByName("INT-2")
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(RouterConfig{
		Nodes:        []string{addr},
		MaxRetries:   12,
		RetryBackoff: 25 * time.Millisecond,
		Client:       ClientConfig{DialTimeout: time.Second, ReadTimeout: 10 * time.Second, WriteTimeout: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := r.Open(key, OpenRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		res sim.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := rs.Replay(tr, limit, batchSize, nil)
		done <- outcome{res, err}
	}()

	// SIGKILL the server as soon as its checkpoint loop has written the
	// session at least once.
	deadline := time.Now().Add(30 * time.Second)
	for {
		entries, err := os.ReadDir(stateDir)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".ckpt") {
				found = true
			}
		}
		if found {
			break
		}
		select {
		case o := <-done:
			t.Fatalf("replay finished before any checkpoint landed (err=%v)", o.err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared in %s", stateDir)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := child.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	child.Wait() // reap; exit status of a SIGKILLed process is expected noise
	childDone = true

	// Restart on the same address and state directory. The router session
	// reconnects on its own, resumes from the restored checkpoint, rewinds
	// its trace cursor, and replays the tail the crash swallowed.
	child2 := startCrashChild(t, addr, stateDir)
	defer func() {
		child2.Process.Kill()
		child2.Wait()
	}()
	waitServing(t, addr, 15*time.Second)

	var o outcome
	select {
	case o = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("replay did not finish after crash recovery")
	}
	if o.err != nil {
		t.Fatalf("replay across crash: %v", o.err)
	}
	sp, err := predictor.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := sim.RunSpec(sp, tr, limit)
	if err != nil {
		t.Fatal(err)
	}
	offline.Mode = o.res.Mode // router sessions label with the request's (zero) mode
	if o.res != offline {
		t.Errorf("crash-recovered replay %+v != offline %+v", o.res, offline)
	}
	stats := r.Stats()
	if len(stats) != 1 || stats[0].Retries == 0 {
		t.Errorf("router recorded no retries across a kill -9: %+v", stats)
	}
	// The state directory still holds the (consumed-on-close) bookkeeping:
	// a successful Replay closed the session, deleting its checkpoint.
	if entries, err := os.ReadDir(stateDir); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".ckpt") {
				t.Errorf("checkpoint %s survived the session close", filepath.Join(stateDir, e.Name()))
			}
		}
	}
}
