package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// ClientConfig hardens a client against slow or failing peers with
// per-operation deadlines. Zero values disable the corresponding
// deadline (the pre-hardening behavior — prefer explicit timeouts; the
// CLIs default them and log when they are disabled).
type ClientConfig struct {
	// DialTimeout bounds connection establishment.
	DialTimeout time.Duration
	// ReadTimeout bounds each response read (set per round trip).
	ReadTimeout time.Duration
	// WriteTimeout bounds each request write (set per round trip).
	WriteTimeout time.Duration
	// BusyRetries caps how many times a load-shed batch (FrameBusy) is
	// retried internally — with jittered, capped, doubling backoff —
	// before the BusyError surfaces to the caller. 0 selects
	// DefaultBusyRetries; negative disables internal busy retries.
	BusyRetries int
	// BusyBackoff is the initial busy-retry backoff, doubled per attempt
	// and capped at 250ms. 0 selects DefaultBusyBackoff.
	BusyBackoff time.Duration
	// Seed keys the backoff-jitter stream (0 derives one from the
	// clock). Fixing it makes a chaos run's retry timing replayable.
	Seed uint64
}

// DefaultBusyRetries is the internal busy-retry budget when none is
// configured.
const DefaultBusyRetries = 8

// DefaultBusyBackoff is the initial busy-retry backoff when none is
// configured.
const DefaultBusyBackoff = 2 * time.Millisecond

// maxBusyBackoff caps the doubling busy-retry backoff.
const maxBusyBackoff = 250 * time.Millisecond

// BatchObserver receives one round-trip latency sample per served
// batch. Both *metrics.Latency (exact, unbounded-percentile reporting)
// and *obs.Histogram (fixed-footprint, hot-path safe) satisfy it; a nil
// interface disables sampling.
type BatchObserver interface {
	Observe(d time.Duration)
}

// Client speaks the wire protocol over one connection. It is not safe
// for concurrent use; a load generator opens one Client per goroutine.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	cfg  ClientConfig

	frame  []byte
	out    []byte
	grades []Grade

	rng         *xrand.Rand // backoff jitter, lazily seeded from cfg.Seed
	busyRetries uint64
}

// Dial connects a client to a server's wire-protocol address.
func Dial(addr string) (*Client, error) {
	return DialConfig(addr, ClientConfig{})
}

// DialConfig connects a client with deadlines.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := NewClient(conn)
	c.cfg = cfg
	return c, nil
}

// NewClient wraps an established connection (tests use net.Pipe-like
// transports; Dial is the common path).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn:  conn,
		br:    bufio.NewReaderSize(conn, 64*1024),
		bw:    bufio.NewWriterSize(conn, 64*1024),
		frame: make([]byte, 4096),
	}
}

// Close closes the underlying connection. Open sessions it served are
// not closed — they remain addressable until FrameClose or idle
// eviction.
func (c *Client) Close() error { return c.conn.Close() }

// BusyRetries reports how many internal busy (load-shed) retries this
// client has performed — the load generators roll it up per node.
func (c *Client) BusyRetries() uint64 { return c.busyRetries }

// jitter spreads a backoff duration uniformly over [d/2, 3d/2) using the
// client's seeded stream, so synchronized clients retrying a shed server
// do not re-stampede it in lockstep.
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	if c.rng == nil {
		seed := c.cfg.Seed
		if seed == 0 {
			seed = uint64(time.Now().UnixNano())
		}
		c.rng = xrand.New(seed)
	}
	return d/2 + time.Duration(c.rng.Uint64()%uint64(d))
}

// roundTrip writes the frame already assembled in c.out and reads one
// response frame, translating FrameError into *RemoteError.
func (c *Client) roundTrip(want byte) ([]byte, error) {
	if c.cfg.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
	}
	if _, err := c.bw.Write(c.out); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	if c.cfg.ReadTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
	}
	typ, payload, frame, err := ReadFrame(c.br, c.frame)
	c.frame = frame
	if err != nil {
		return nil, err
	}
	// Not a frame dispatch: the client matches the one response type the
	// request contracts for; FrameError and FrameBusy are the two
	// out-of-band rejection legs every round trip may take instead.
	//repro:frames ignore single-expected-response match, not a dispatch over the response direction
	switch typ {
	case want:
		return payload, nil
	case FrameError:
		re, err := DecodeError(payload)
		if err != nil {
			return nil, err
		}
		return nil, re
	case FrameBusy:
		be, err := DecodeBusy(payload)
		if err != nil {
			return nil, err
		}
		return nil, be
	default:
		return nil, fmt.Errorf("%w: unexpected frame type %#02x (want %#02x)", ErrProtocol, typ, want)
	}
}

// ClientSession is one open session on a server, driven through a
// Client.
type ClientSession struct {
	c       *Client
	id      uint64
	key     string
	config  string
	opts    core.Options
	resumed uint64
}

// Open creates a session with the named predictor configuration (empty
// = server default) and options.
func (c *Client) Open(config string, opts core.Options) (*ClientSession, error) {
	return c.open(OpenRequest{Config: config, Options: opts}, opts)
}

// OpenSpec creates a session for any registered backend spec
// ("tage-64K?mode=adaptive", "gshare-64K", "perceptron", ...; empty =
// server default). Results are labeled with the server-resolved backend
// label and, like offline sim.Run over a registry-built backend,
// ModeStandard for non-TAGE families; TAGE sessions that need a mode
// label on the client side should use Open.
func (c *Client) OpenSpec(spec string) (*ClientSession, error) {
	return c.open(OpenRequest{Spec: spec}, core.Options{})
}

// OpenSession creates a session from a full OpenRequest — the keyed
// (durable) path: a request with a Key resumes the live or checkpointed
// session holding it, and Resumed reports how many branches the session
// had already served.
func (c *Client) OpenSession(req OpenRequest) (*ClientSession, error) {
	return c.open(req, req.Options)
}

// OpenSnapshot opens (or resumes) a session from a snapshot blob — the
// migration/failover path. The blob must decode locally so the session
// can carry its key and labels client-side.
func (c *Client) OpenSnapshot(blob []byte) (*ClientSession, error) {
	snap, err := DecodeSessionSnapshot(blob)
	if err != nil {
		return nil, err
	}
	c.out = AppendOpenSnap(c.out[:0], blob)
	payload, err := c.roundTrip(FrameOpened)
	if err != nil {
		return nil, err
	}
	id, resolved, branches, err := DecodeOpened(payload)
	if err != nil {
		return nil, err
	}
	return &ClientSession{
		c: c, id: id, key: snap.Key, config: resolved,
		opts:    core.Options{Mode: snap.Res.Mode},
		resumed: branches,
	}, nil
}

func (c *Client) open(req OpenRequest, opts core.Options) (*ClientSession, error) {
	c.out = AppendOpen(c.out[:0], req)
	payload, err := c.roundTrip(FrameOpened)
	if err != nil {
		return nil, err
	}
	id, resolved, branches, err := DecodeOpened(payload)
	if err != nil {
		return nil, err
	}
	return &ClientSession{c: c, id: id, key: req.Key, config: resolved, opts: opts, resumed: branches}, nil
}

// ID returns the server-assigned session id.
func (s *ClientSession) ID() uint64 { return s.id }

// Key returns the session's durable key ("" for anonymous sessions).
func (s *ClientSession) Key() string { return s.key }

// Resumed returns how many branches the session had already served when
// this client opened it — non-zero when a keyed open resumed a live or
// checkpointed session. It is the replay cursor: a client streaming a
// known trace skips this many branches.
func (s *ClientSession) Resumed() uint64 { return s.resumed }

// Snapshot fetches the session's durable snapshot blob from the server.
// The blob is copied out of the frame buffer, so it stays valid across
// further client calls — the failover token a router holds on to.
func (s *ClientSession) Snapshot() ([]byte, error) {
	c := s.c
	c.out = AppendSnapGet(c.out[:0], s.id)
	payload, err := c.roundTrip(FrameSnap)
	if err != nil {
		return nil, err
	}
	id, blob, err := DecodeSnap(payload)
	if err != nil {
		return nil, err
	}
	if id != s.id {
		return nil, fmt.Errorf("%w: snapshot for session %d, want %d", ErrProtocol, id, s.id)
	}
	return append([]byte(nil), blob...), nil
}

// Config returns the server-resolved backend label of the session: the
// canonical configuration name for TAGE sessions ("64Kbits"), the
// canonical spec string for spec-opened backends ("gshare-64K").
func (s *ClientSession) Config() string { return s.config }

// Predict streams one branch batch through the session and returns the
// served grades (valid until the next call on the same client). Batches
// are capped at MaxBatch branches — enforced here so an oversized
// request fails before burning a round trip (or, past MaxFrame, the
// whole connection).
//
// A load-shed rejection (FrameBusy — the server did not apply the
// batch) is retried internally with jittered doubling backoff up to the
// client's BusyRetries budget; the server's retry-after hint, when
// given, overrides the computed backoff for that attempt. A budget
// exhausted surfaces the *BusyError, which IsRetryable classifies as
// retryable — the caller may keep backing off on its own schedule.
func (s *ClientSession) Predict(records []trace.Branch) ([]Grade, error) {
	c := s.c
	budget := c.cfg.BusyRetries
	if budget == 0 {
		budget = DefaultBusyRetries
	}
	backoff := c.cfg.BusyBackoff
	if backoff <= 0 {
		backoff = DefaultBusyBackoff
	}
	for attempt := 0; ; attempt++ {
		grades, err := s.predictOnce(records)
		var be *BusyError
		if err == nil || !errors.As(err, &be) || attempt >= budget {
			return grades, err
		}
		c.busyRetries++
		wait := backoff
		if be.RetryAfterMillis > 0 {
			wait = time.Duration(be.RetryAfterMillis) * time.Millisecond
		}
		time.Sleep(c.jitter(wait))
		if backoff < maxBusyBackoff {
			backoff *= 2
		}
	}
}

func (s *ClientSession) predictOnce(records []trace.Branch) ([]Grade, error) {
	if len(records) > MaxBatch {
		return nil, fmt.Errorf("%w: batch of %d records exceeds limit %d", ErrProtocol, len(records), MaxBatch)
	}
	c := s.c
	c.out = AppendBatch(c.out[:0], s.id, records)
	payload, err := c.roundTrip(FramePredictions)
	if err != nil {
		return nil, err
	}
	id, grades, err := DecodePredictions(payload, c.grades)
	c.grades = grades[:0]
	if err != nil {
		return nil, err
	}
	if id != s.id {
		return nil, fmt.Errorf("%w: response for session %d, want %d", ErrProtocol, id, s.id)
	}
	if len(grades) != len(records) {
		return nil, fmt.Errorf("%w: %d grades for %d branches", ErrProtocol, len(grades), len(records))
	}
	return grades, nil
}

// Close retires the session and returns the server's final tallies,
// labeled with the session's config and mode.
func (s *ClientSession) Close() (sim.Result, error) {
	c := s.c
	c.out = AppendClose(c.out[:0], s.id)
	payload, err := c.roundTrip(FrameStats)
	if err != nil {
		return sim.Result{}, err
	}
	id, res, err := DecodeStats(payload)
	if err != nil {
		return sim.Result{}, err
	}
	if id != s.id {
		return sim.Result{}, fmt.Errorf("%w: stats for session %d, want %d", ErrProtocol, id, s.id)
	}
	res.Config = s.config
	res.Mode = s.opts.Mode
	return res, nil
}

// Replay streams tr (truncated to limit records; 0 = full trace) through
// the session in batches of batchSize branches, cross-checks the served
// grades against the known outcomes, closes the session, and returns the
// server's final tallies labeled with the trace name.
//
// The returned Result is bit-identical to sim.Run over the same (config,
// options, trace, limit) — the equivalence the tests pin — because the
// session applies the exact per-branch sequence of the offline driver to
// an identically-seeded estimator. Replay verifies this end to end: the
// client-side tally derived from the wire grades must equal the
// server-side stats, or an error is returned.
//
// When lat is non-nil, one round-trip latency sample is recorded per
// batch.
func (s *ClientSession) Replay(tr trace.Trace, limit uint64, batchSize int, lat BatchObserver) (sim.Result, error) {
	if batchSize <= 0 || batchSize > MaxBatch {
		batchSize = 1024
	}
	local := sim.Result{Trace: tr.Name(), Config: s.config, Mode: s.opts.Mode}
	r := trace.Limit(tr, limit).Open()
	// Release the reader's resources (open file, pooled decode or
	// generator state) if the replay aborts mid-trace — a server or
	// network error must not leak a file descriptor per failed replay.
	// Once the reader returns io.EOF it must not be touched again (its
	// state may already be recycled into another Open), so the release
	// only fires on the not-yet-drained paths.
	drained := false
	defer func() {
		if drained {
			return
		}
		if c, ok := r.(interface{ Close() }); ok {
			c.Close()
		}
	}()
	batch := make([]trace.Branch, 0, batchSize)
	for eof := false; !eof; {
		batch = batch[:0]
		for len(batch) < batchSize {
			b, err := r.Next()
			if errors.Is(err, io.EOF) {
				eof = true
				drained = true
				break
			}
			if err != nil {
				drained = true // reader closes itself on decode errors
				return sim.Result{}, err
			}
			batch = append(batch, b)
		}
		if len(batch) == 0 {
			break
		}
		start := time.Now()
		grades, err := s.Predict(batch)
		if err != nil {
			return sim.Result{}, err
		}
		if lat != nil {
			lat.Observe(time.Since(start))
		}
		for i, g := range grades {
			miss := g.Pred != batch[i].Taken
			local.Total.Record(miss)
			local.Class[g.Class].Record(miss)
			local.Branches++
			// Mirror the wire codec's clamp (Instr 0 is not representable
			// and travels as 1) so the cross-check below compares what the
			// server actually saw.
			instr := batch[i].Instr
			if instr == 0 {
				instr = 1
			}
			local.Instructions += uint64(instr)
		}
	}
	res, err := s.Close()
	if err != nil {
		return sim.Result{}, err
	}
	res.Trace = tr.Name()
	local.FinalProbability = res.FinalProbability
	if local != res {
		return sim.Result{}, fmt.Errorf("serve: wire grades disagree with server stats for %s: client %+v server %+v",
			tr.Name(), local, res)
	}
	return res, nil
}
