package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// startServer binds a server on an ephemeral loopback port and tears it
// down with the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv := NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned: %v", err)
		}
	})
	// Serve publishes the listener under the server mutex; wait for it
	// so tests can Dial(srv.Addr()) race-free.
	for deadline := time.Now().Add(5 * time.Second); srv.Addr() == nil; {
		if time.Now().After(deadline) {
			t.Fatal("server never published its address")
		}
		time.Sleep(time.Millisecond)
	}
	return srv
}

func dial(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestOnlineOfflineEquivalence is the acceptance pin: replaying a trace
// through a live server yields a sim.Result bit-identical to the offline
// driver for the same (config, options, trace, limit) — every count,
// every class, the final saturation probability. Replay additionally
// cross-checks the client-side tally derived from the wire grades
// against the server-side stats, so the equivalence holds at both ends
// of the wire.
func TestOnlineOfflineEquivalence(t *testing.T) {
	srv := startServer(t, Config{})
	const limit = 25_000
	traces := []string{"INT-1", "SERV-2"}
	modes := []core.Options{
		{Mode: core.ModeStandard},
		{Mode: core.ModeProbabilistic},
		{Mode: core.ModeAdaptive, TargetMKP: 8, AdaptiveWindow: 4096},
	}
	for _, cfgName := range []string{"16K", "64K"} {
		for _, opts := range modes {
			for _, trName := range traces {
				tr, err := workload.ByName(trName)
				if err != nil {
					t.Fatal(err)
				}
				cfg, err := tage.ConfigByName(cfgName)
				if err != nil {
					t.Fatal(err)
				}
				offline, err := sim.RunConfig(cfg, opts, tr, limit)
				if err != nil {
					t.Fatal(err)
				}
				c := dial(t, srv)
				sess, err := c.Open(cfgName, opts)
				if err != nil {
					t.Fatal(err)
				}
				online, err := sess.Replay(tr, limit, 777, nil)
				if err != nil {
					t.Fatal(err)
				}
				if online != offline {
					t.Errorf("%s/%s/%s: online %+v != offline %+v",
						cfgName, opts.Mode, trName, online, offline)
				}
				c.Close()
			}
		}
	}
}

// TestServerDefaults pins the default-predictor rule: an open request
// with no config name and all-zero options gets the operator-configured
// predictor and options.
func TestServerDefaults(t *testing.T) {
	eng := NewEngine(EngineConfig{
		DefaultConfig:  tage.Small16K(),
		DefaultOptions: core.Options{Mode: core.ModeProbabilistic},
	})
	s, err := eng.Open(OpenRequest{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.ConfigName() != "16Kbits" {
		t.Fatalf("default config %q, want 16Kbits", s.ConfigName())
	}
	if got := s.Stats().Mode; got != core.ModeProbabilistic {
		t.Fatalf("default mode %v, want probabilistic", got)
	}
	// Explicit options suppress the default options even with the
	// default config.
	s, err = eng.Open(OpenRequest{Options: core.Options{Mode: core.ModeAdaptive}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Mode; got != core.ModeAdaptive {
		t.Fatalf("explicit mode %v, want adaptive", got)
	}
	// A named config never inherits default options.
	s, err = eng.Open(OpenRequest{Config: "64K"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Mode; got != core.ModeStandard {
		t.Fatalf("named-config mode %v, want standard", got)
	}
}

// TestReplayBatchSizeInvariance pins that the batch size is a transport
// detail: any chunking yields the identical result.
func TestReplayBatchSizeInvariance(t *testing.T) {
	srv := startServer(t, Config{})
	tr, err := workload.ByName("FP-2")
	if err != nil {
		t.Fatal(err)
	}
	const limit = 10_000
	var want sim.Result
	for i, batch := range []int{1, 63, 1024, limit + 1} {
		c := dial(t, srv)
		sess, err := c.Open("16K", core.Options{Mode: core.ModeProbabilistic})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Replay(tr, limit, batch, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
		} else if got != want {
			t.Errorf("batch size %d changed the result", batch)
		}
		c.Close()
	}
}

// TestServerErrors exercises the in-band error paths: unknown config,
// unknown session, and the session cap. The connection survives payload
// errors.
func TestServerErrors(t *testing.T) {
	srv := startServer(t, Config{Engine: EngineConfig{MaxSessions: 2}})
	c := dial(t, srv)

	if _, err := c.Open("1024K", core.Options{}); err == nil {
		t.Fatal("unknown config accepted")
	} else if re, ok := err.(*RemoteError); !ok || re.Code != ErrCodeBadConfig {
		t.Fatalf("unknown config: %v", err)
	}

	// The connection remains usable after an in-band error.
	sess, err := c.Open("16K", core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Batch for a session id that never existed.
	c.out = AppendBatch(c.out[:0], sess.ID()+100, sampleBranches(4, 1))
	if _, err := c.roundTrip(FramePredictions); err == nil {
		t.Fatal("unknown session accepted")
	} else if re, ok := err.(*RemoteError); !ok || re.Code != ErrCodeUnknownSession {
		t.Fatalf("unknown session: %v", err)
	}

	// Session cap: the engine holds 1 live session; open 1 more, then
	// the third must be refused.
	if _, err := c.Open("16K", core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("16K", core.Options{}); err == nil {
		t.Fatal("session above cap accepted")
	} else if re, ok := err.(*RemoteError); !ok || re.Code != ErrCodeSessionLimit {
		t.Fatalf("session cap: %v", err)
	}

	// Oversized batches fail client-side, before any round trip, and
	// leave the connection usable.
	if _, err := sess.Predict(make([]trace.Branch, MaxBatch+1)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized batch: err = %v, want ErrProtocol", err)
	}
	if _, err := sess.Predict(sampleBranches(4, 2)); err != nil {
		t.Fatalf("predict after oversized batch: %v", err)
	}

	// Closing frees a slot.
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("16K", core.Options{}); err != nil {
		t.Fatalf("open after close: %v", err)
	}
	// Double close reports unknown session.
	if _, err := sess.Close(); err == nil {
		t.Fatal("double close accepted")
	}
}

// TestIdleEviction pins the evictor: idle sessions are retired, their
// tallies fold into the service aggregate, and later batches for them
// answer unknown-session.
func TestIdleEviction(t *testing.T) {
	srv := startServer(t, Config{IdleTimeout: 20 * time.Millisecond})
	c := dial(t, srv)
	sess, err := c.Open("16K", core.Options{Mode: core.ModeProbabilistic})
	if err != nil {
		t.Fatal(err)
	}
	branches := sampleBranches(1000, 3)
	if _, err := sess.Predict(branches); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Engine().Snapshot().EvictedSessions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	snap := srv.Engine().Snapshot()
	if snap.LiveSessions != 0 || snap.Branches != 1000 {
		t.Fatalf("post-eviction snapshot: %+v", snap)
	}
	if _, err := sess.Predict(branches); err == nil {
		t.Fatal("batch for evicted session accepted")
	} else if re, ok := err.(*RemoteError); !ok || re.Code != ErrCodeUnknownSession {
		t.Fatalf("evicted session batch: %v", err)
	}
}

// TestEngineSweepVsCloseRace drives Close and SweepIdle concurrently:
// every session's tallies must fold exactly once (no double counting, no
// loss), whichever side wins.
func TestEngineSweepVsCloseRace(t *testing.T) {
	eng := NewEngine(EngineConfig{Shards: 4})
	const sessions = 64
	branches := sampleBranches(100, 9)
	ids := make([]uint64, sessions)
	for i := range ids {
		s, err := eng.Open(OpenRequest{Config: "16K", Options: core.Options{Mode: core.ModeProbabilistic}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		s.Serve(branches, nil, 0)
		ids[i] = s.ID()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, id := range ids {
			eng.Close(id) // losing the race to the evictor is fine
		}
	}()
	go func() {
		defer wg.Done()
		eng.SweepIdle(1) // everything is idle before cutoff 1
	}()
	wg.Wait()
	snap := eng.Snapshot()
	if want := uint64(sessions * len(branches)); snap.Branches != want {
		t.Fatalf("folded %d branches, want %d (lost or double-counted a session)", snap.Branches, want)
	}
	if snap.LiveSessions != 0 {
		t.Fatalf("%d live sessions after close+sweep", snap.LiveSessions)
	}
}

// TestConcurrentSessions runs 12 concurrent connections, each with its
// own session over its own trace, and checks every served result against
// the offline driver. Under -race this is the acceptance criterion's
// concurrency check.
func TestConcurrentSessions(t *testing.T) {
	srv := startServer(t, Config{Engine: EngineConfig{Shards: 4}})
	const (
		conns = 12
		limit = 8_000
	)
	traces := workload.All()
	opts := core.Options{Mode: core.ModeProbabilistic}
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := traces[i%len(traces)]
			c, err := Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			sess, err := c.Open("16K", opts)
			if err != nil {
				errs <- err
				return
			}
			got, err := sess.Replay(tr, limit, 512, nil)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", tr.Name(), err)
				return
			}
			want, err := sim.RunConfig(tage.Small16K(), opts, tr, limit)
			if err != nil {
				errs <- err
				return
			}
			if got != want {
				errs <- fmt.Errorf("%s: online != offline under concurrency", tr.Name())
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := srv.Engine().Snapshot()
	if snap.OpenedSessions != conns || snap.Branches != conns*limit {
		t.Fatalf("snapshot after %d sessions: %+v", conns, snap)
	}
}

// TestSharedSessionAcrossConnections pins that a session id is
// addressable from any connection (sessions belong to the server, not
// the socket) and that concurrent batches for one session serialize
// without losing counts.
func TestSharedSessionAcrossConnections(t *testing.T) {
	srv := startServer(t, Config{})
	c1 := dial(t, srv)
	sess, err := c1.Open("16K", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2 := dial(t, srv)
	shared := &ClientSession{c: c2, id: sess.ID(), config: sess.config, opts: sess.opts}

	const per = 2000
	var wg sync.WaitGroup
	for _, s := range []*ClientSession{sess, shared} {
		wg.Add(1)
		go func(s *ClientSession, seed uint64) {
			defer wg.Done()
			branches := sampleBranches(per, seed)
			for i := 0; i < per; i += 100 {
				if _, err := s.Predict(branches[i : i+100]); err != nil {
					t.Errorf("predict: %v", err)
					return
				}
			}
		}(s, uint64(len(s.config)))
		// distinct seeds irrelevant; interleaving is the point
	}
	wg.Wait()
	res, err := sess.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.Branches != 2*per {
		t.Fatalf("interleaved session counted %d branches, want %d", res.Branches, 2*per)
	}
}

// TestMetricsEndpoint scrapes /healthz and /metrics and checks the
// counters reflect served traffic, including the per-level breakdown.
func TestMetricsEndpoint(t *testing.T) {
	srv := startServer(t, Config{MetricsAddr: "127.0.0.1:0"})
	c := dial(t, srv)
	sess, err := c.Open("64K", core.Options{Mode: core.ModeProbabilistic})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ByName("FP-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Replay(tr, 5000, 500, nil); err != nil {
		t.Fatal(err)
	}

	base := "http://" + srv.MetricsAddr().String()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"tage_serve_sessions_opened_total 1",
		"tage_serve_branches_total 5000",
		`tage_serve_level_predictions_total{level="high"}`,
		`tage_serve_level_mispredictions_total{level="low"}`,
		`tage_serve_class_predictions_total{class="Stag"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	// The level counters must equal the engine snapshot's aggregation.
	snap := srv.Engine().Snapshot()
	var levelPreds uint64
	for _, l := range core.Levels() {
		levelPreds += snap.Level(l).Preds
	}
	if levelPreds != snap.Total.Preds {
		t.Fatalf("levels sum to %d preds, want %d", levelPreds, snap.Total.Preds)
	}
}

// TestLatencyRecording pins that Replay feeds the latency recorder one
// sample per batch.
func TestLatencyRecording(t *testing.T) {
	srv := startServer(t, Config{})
	c := dial(t, srv)
	sess, err := c.Open("16K", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ByName("MM-1")
	if err != nil {
		t.Fatal(err)
	}
	var lat metrics.Latency
	if _, err := sess.Replay(tr, 4000, 1000, &lat); err != nil {
		t.Fatal(err)
	}
	if lat.N() != 4 {
		t.Fatalf("recorded %d latency samples, want 4", lat.N())
	}
	if lat.Quantile(0.99) <= 0 {
		t.Fatal("p99 latency not positive")
	}
}

// TestRegistrySharding covers the registry directly: shard rounding,
// id→shard spread, and cap accounting under churn.
func TestRegistrySharding(t *testing.T) {
	r := newRegistry(3, 0) // rounds up to 4
	if len(r.shards) != 4 {
		t.Fatalf("3 shards rounded to %d, want 4", len(r.shards))
	}
	var ids []uint64
	for i := 0; i < 100; i++ {
		id, ok := r.reserve()
		if !ok {
			t.Fatal("unlimited registry refused a session")
		}
		s := &Session{id: id}
		r.insert(s)
		ids = append(ids, id)
	}
	if r.count() != 100 {
		t.Fatalf("count %d, want 100", r.count())
	}
	perShard := map[uint64]int{}
	for _, id := range ids {
		perShard[id&r.mask]++
		if _, ok := r.get(id); !ok {
			t.Fatalf("session %d not found", id)
		}
	}
	if len(perShard) != 4 {
		t.Fatalf("sequential ids landed on %d/4 shards", len(perShard))
	}
	for _, id := range ids {
		if _, ok := r.remove(id); !ok {
			t.Fatalf("session %d not removed", id)
		}
		r.release()
	}
	if r.count() != 0 {
		t.Fatalf("count %d after removing all, want 0", r.count())
	}
}

// TestShutdownClosesConnections pins that Shutdown unblocks handlers on
// live connections.
func TestShutdownClosesConnections(t *testing.T) {
	srv := NewServer(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("16K", core.Options{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with live connection: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve returned: %v", err)
	}
	c.Close()
	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestOnlineOfflineEquivalenceBackends is the non-TAGE acceptance pin:
// sessions opened by backend spec — gshare, perceptron, jrs, ogehl and a
// parameterized TAGE spec — replay to results bit-identical to the
// offline driver over the identical spec-built backend, on one shared
// server hosting all of them (the heterogeneous path).
func TestOnlineOfflineEquivalenceBackends(t *testing.T) {
	srv := startServer(t, Config{})
	const limit = 20_000
	specs := []string{
		"gshare-64K",
		"gshare-16K?hist=10",
		"perceptron",
		"jrs-16K?enhanced=true",
		"ogehl",
		"bimodal-16K",
		"tage-16K?mode=probabilistic",
	}
	tr, err := workload.ByName("INT-1")
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, srv)
	for _, spec := range specs {
		sp, err := predictor.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		offline, err := sim.RunSpec(sp, tr, limit)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := c.OpenSpec(spec)
		if err != nil {
			t.Fatalf("OpenSpec(%q): %v", spec, err)
		}
		online, err := sess.Replay(tr, limit, 999, nil)
		if err != nil {
			t.Fatalf("Replay(%q): %v", spec, err)
		}
		// OpenSpec labels client-side results ModeStandard (the client
		// does not parse the spec); compare everything else bit for bit.
		offline.Mode = online.Mode
		if online != offline {
			t.Errorf("%s: online %+v != offline %+v", spec, online, offline)
		}
	}
	// A bad spec answers ErrCodeBadConfig and names the valid families.
	var re *RemoteError
	if _, err := c.OpenSpec("nosuch-64K"); !errors.As(err, &re) || re.Code != ErrCodeBadConfig ||
		!strings.Contains(re.Message, "gshare") {
		t.Fatalf("bad spec error = %v", err)
	}
}

// TestEngineDefaultSpec pins EngineConfig.DefaultSpec: an open request
// naming neither spec nor config gets the default-spec backend; explicit
// requests still win.
func TestEngineDefaultSpec(t *testing.T) {
	srv := startServer(t, Config{Engine: EngineConfig{DefaultSpec: "gshare-16K"}})
	c := dial(t, srv)
	sess, err := c.Open("", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Config(); got != "gshare-16K" {
		t.Fatalf("default-spec session labeled %q, want gshare-16K", got)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	sess, err = c.Open("64K", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Config(); got != "64Kbits" {
		t.Fatalf("explicit config session labeled %q, want 64Kbits", got)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// A legacy client that sends explicit options (but no config) still
	// gets the default TAGE configuration with those options — the
	// default spec serves only fully default requests, it never
	// silently swallows a client's options.
	sess, err = c.Open("", core.Options{Mode: core.ModeProbabilistic})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Config(); got != "64Kbits" {
		t.Fatalf("options-only session labeled %q, want 64Kbits (default TAGE config)", got)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackendLabelCardinalityCap pins the bound on per-backend counter
// cardinality: spec strings are client-controlled, so distinct labels
// beyond the cap must aggregate under the overflow bucket instead of
// growing the maps and /metrics output without bound.
func TestBackendLabelCardinalityCap(t *testing.T) {
	eng := NewEngine(EngineConfig{})
	const distinct = maxBackendLabels + 10
	for i := 0; i < distinct; i++ {
		spec := fmt.Sprintf("jrs-16K?threshold=%d", i+1)
		s, err := eng.Open(OpenRequest{Spec: spec}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Close(s.ID()); err != nil {
			t.Fatal(err)
		}
	}
	snap := eng.Snapshot()
	if len(snap.Backends) > maxBackendLabels+1 {
		t.Fatalf("%d distinct specs produced %d backend buckets, cap is %d+overflow",
			distinct, len(snap.Backends), maxBackendLabels)
	}
	var overflow *BackendCounts
	var opened uint64
	for i := range snap.Backends {
		opened += snap.Backends[i].Opened
		if snap.Backends[i].Label == labelOverflow {
			overflow = &snap.Backends[i]
		}
	}
	if overflow == nil || overflow.Opened == 0 {
		t.Fatalf("no overflow bucket after %d distinct labels: %+v", distinct, snap.Backends)
	}
	if opened != distinct {
		t.Fatalf("buckets account for %d opens, want %d", opened, distinct)
	}
}

// TestPerBackendMetrics drives one TAGE and one gshare session through a
// shared server and asserts the /metrics per-backend counters split the
// traffic by backend label.
func TestPerBackendMetrics(t *testing.T) {
	srv := startServer(t, Config{MetricsAddr: "127.0.0.1:0"})
	c := dial(t, srv)
	tr, err := workload.ByName("FP-2")
	if err != nil {
		t.Fatal(err)
	}
	tage1, err := c.Open("64K", core.Options{Mode: core.ModeProbabilistic})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tage1.Replay(tr, 4000, 512, nil); err != nil {
		t.Fatal(err)
	}
	gs, err := c.OpenSpec("gshare-64K")
	if err != nil {
		t.Fatal(err)
	}
	// Leave the gshare session live: per-backend counters must span live
	// and retired sessions exactly like the service totals.
	if _, err := gs.Predict(collectBranches(t, tr, 3000)); err != nil {
		t.Fatal(err)
	}

	snap := srv.Engine().Snapshot()
	byLabel := make(map[string]BackendCounts)
	var sumBranches uint64
	for _, bc := range snap.Backends {
		byLabel[bc.Label] = bc
		sumBranches += bc.Branches
	}
	if sumBranches != snap.Branches {
		t.Fatalf("per-backend branches sum to %d, service total %d", sumBranches, snap.Branches)
	}
	if bc := byLabel["64Kbits"]; bc.Opened != 1 || bc.Branches != 4000 {
		t.Fatalf("TAGE backend counters = %+v", bc)
	}
	if bc := byLabel["gshare-64K"]; bc.Opened != 1 || bc.Branches != 3000 {
		t.Fatalf("gshare backend counters = %+v", bc)
	}

	resp, err := http.Get("http://" + srv.MetricsAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`tage_serve_backend_sessions_opened_total{backend="64Kbits"} 1`,
		`tage_serve_backend_branches_total{backend="64Kbits"} 4000`,
		`tage_serve_backend_sessions_opened_total{backend="gshare-64K"} 1`,
		`tage_serve_backend_branches_total{backend="gshare-64K"} 3000`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// collectBranches reads n branches of tr into a slice.
func collectBranches(t *testing.T, tr trace.Trace, n uint64) []trace.Branch {
	t.Helper()
	branches, err := trace.Collect(trace.Limit(tr, n))
	if err != nil {
		t.Fatal(err)
	}
	return branches
}
