// Session snapshot codec: the durable form of one serve session — its
// key, labels, running tallies and the full predictor snapshot — sealed
// with a version byte and a CRC32 like the predictor envelope it wraps.
// A blob is self-contained: any node (or a freshly restarted one) can
// resume the session from it, and a resumed session continues
// bit-identically to the snapshotted one, which is what makes crash
// recovery and cross-node migration exact rather than approximate.
package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/statecodec"
)

// SessionSnapshotVersion is the current session snapshot format version.
const SessionSnapshotVersion = 1

// SessionSnapshot is the decoded durable form of one session.
type SessionSnapshot struct {
	// Key is the session's durable identity (never empty in a valid
	// snapshot — anonymous sessions are not checkpointed).
	Key string
	// Res carries the session's tallies and labels at the cut point.
	// Trace is always empty and FinalProbability zero: both are
	// recomputed from the live backend, not persisted.
	Res sim.Result
	// Predictor is the predictor.AppendSnapshot envelope of the backend.
	Predictor []byte
}

// AppendSessionSnapshot appends a versioned, checksummed session snapshot
// to dst:
//
//	version byte | key | label | mode byte | branches | instructions |
//	NumClasses × (preds, misps)            | predictor blob | CRC32 LE32
//
// where strings and the predictor blob are uvarint length-prefixed and
// counters are uvarints. Only per-class tallies travel; Total is their
// exact sum and is reconstructed on decode.
func AppendSessionSnapshot(dst []byte, snap SessionSnapshot) []byte {
	start := len(dst)
	dst = append(dst, SessionSnapshotVersion)
	dst = statecodec.AppendBytes(dst, []byte(snap.Key))
	dst = statecodec.AppendBytes(dst, []byte(snap.Res.Config))
	dst = append(dst, byte(snap.Res.Mode))
	dst = binary.AppendUvarint(dst, snap.Res.Branches)
	dst = binary.AppendUvarint(dst, snap.Res.Instructions)
	for _, c := range snap.Res.Class {
		dst = binary.AppendUvarint(dst, c.Preds)
		dst = binary.AppendUvarint(dst, c.Misps)
	}
	dst = statecodec.AppendBytes(dst, snap.Predictor)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// DecodeSessionSnapshot verifies and decodes a session snapshot blob.
// The predictor blob is cloned out of the input, so the snapshot stays
// valid after the caller's buffer is reused. Failures wrap
// predictor.ErrSnapshot — they are fatal, not retryable.
func DecodeSessionSnapshot(blob []byte) (SessionSnapshot, error) {
	var snap SessionSnapshot
	if len(blob) < 5 {
		return snap, fmt.Errorf("%w: session snapshot %d bytes", predictor.ErrSnapshot, len(blob))
	}
	body, sum := blob[:len(blob)-4], blob[len(blob)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(sum); got != want {
		return snap, fmt.Errorf("%w: session snapshot checksum %08x, want %08x", predictor.ErrSnapshot, got, want)
	}
	r := statecodec.NewReader(body)
	if v := r.Byte(); r.Err() == nil && v != SessionSnapshotVersion {
		return snap, fmt.Errorf("%w: session snapshot version %d, want %d", predictor.ErrSnapshot, v, SessionSnapshotVersion)
	}
	key := r.Blob()
	label := r.Blob()
	mode := r.Byte()
	branches := r.Uvarint()
	instructions := r.Uvarint()
	var class [core.NumClasses]metrics.Counts
	for i := range class {
		class[i] = metrics.Counts{Preds: r.Uvarint(), Misps: r.Uvarint()}
	}
	pb := r.Blob()
	if err := r.Finish(); err != nil {
		return snap, fmt.Errorf("%w: session snapshot: %v", predictor.ErrSnapshot, err)
	}
	if len(key) == 0 || len(key) > maxSessionKey {
		return snap, fmt.Errorf("%w: session snapshot key length %d", predictor.ErrSnapshot, len(key))
	}
	if len(label) > maxConfigName {
		return snap, fmt.Errorf("%w: session snapshot label length %d", predictor.ErrSnapshot, len(label))
	}
	if core.AutomatonMode(mode) > core.ModeAdaptive {
		return snap, fmt.Errorf("%w: session snapshot mode %d", predictor.ErrSnapshot, mode)
	}
	snap.Key = string(key)
	snap.Res.Config = string(label)
	snap.Res.Mode = core.AutomatonMode(mode)
	snap.Res.Branches = branches
	snap.Res.Instructions = instructions
	for i := range class {
		if class[i].Misps > class[i].Preds {
			return snap, fmt.Errorf("%w: session snapshot class %d misps %d exceed preds %d",
				predictor.ErrSnapshot, i, class[i].Misps, class[i].Preds)
		}
		snap.Res.Class[i] = class[i]
		snap.Res.Total.Add(class[i])
	}
	if snap.Res.Total.Preds != branches {
		return snap, fmt.Errorf("%w: session snapshot class sum %d does not match branches %d",
			predictor.ErrSnapshot, snap.Res.Total.Preds, branches)
	}
	snap.Predictor = append([]byte(nil), pb...)
	return snap, nil
}
