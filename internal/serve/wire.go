// Package serve is the online prediction service: it hosts many
// concurrent predictor sessions — each owning one core.Estimator — behind
// a compact length-prefixed binary wire protocol, so the storage-free
// confidence estimate is available as a live, queryable signal instead of
// a post-hoc table.
//
// The protocol is request/response over one TCP connection:
//
//	frame  := length uint32 LE | type byte | payload | crc uint32 LE
//
// where length counts the type byte, the payload and the 4-byte CRC
// trailer. The trailer is CRC-32C (Castagnoli) over type byte + payload:
// CRC32 detects every single-bit and every sub-32-bit burst error, so a
// corrupted-in-flight frame is always rejected (ErrCorrupt, a protocol
// error) instead of silently decoding into wrong-but-valid varints. A
// client opens a session (FrameOpen → FrameOpened), streams branch
// batches (FrameBatch → FramePredictions) — the batch payload reuses the
// TBT1 per-record varint codec of internal/trace — and closes the
// session (FrameClose → FrameStats), receiving the server's per-class
// tallies, which are bit-identical to an offline sim.Run over the same
// stream. Protocol violations answer with FrameError.
//
// Batching and backpressure are structural: a connection handler decodes
// and serves one frame at a time, responses to pipelined requests are
// coalesced into one write, and a client that stops reading eventually
// blocks the handler's write — the TCP window is the queue, so a slow
// consumer cannot make the server buffer unboundedly.
//
// # Overload and misbehaving peers
//
// On top of the structural backpressure the server sheds load
// explicitly: when the engine's global inflight-batch budget
// (EngineConfig.MaxInflight) is exhausted, FrameBatch answers with
// FrameBusy instead of serving — a retryable rejection the client backs
// off from with seeded jitter (ClientConfig.BusyRetries) — and a
// per-connection cap on buffered responses bounds what one pipelining
// connection can queue. Slow or stalled peers are evicted by deadline:
// Config.FrameTimeout bounds how long a peer may dawdle mid-frame once
// its first header byte arrives, Config.WriteTimeout bounds a flush
// against a reader that stopped draining. Eviction closes the
// connection only — keyed sessions survive and fold their tallies
// exactly once through the usual retire/checkpoint path.
//
// # Durability
//
// Sessions opened with a key are durable. Attach a CheckpointStore
// (Config.StateDir, or Engine.AttachStore directly) and the engine
// checkpoints dirty keyed sessions periodically, on eviction and on
// graceful shutdown; a restarted server restores every checkpoint before
// accepting traffic, and a keyed re-open resumes exactly at the
// checkpointed branch cursor (FrameOpened carries it). The checkpoint
// blob is the versioned session snapshot — spec line, predictor state
// image, per-class tallies, CRC — also fetchable live over the wire
// (FrameSnapGet → FrameSnap) and installable on another server
// (FrameOpenSnap), which is how sessions migrate.
//
// Router places keyed sessions on a multi-node cluster by consistent
// hashing and recovers them client-side: transport failures and
// unknown-session rejections retry with capped exponential backoff —
// reconnecting to the same node (which restores from its checkpoint) or
// failing over to the next ring node seeded with the last fetched
// snapshot — and RouterSession.Replay rewinds its trace cursor to the
// server's authoritative branch count after every recovery, so the final
// tallies stay bit-identical to an uninterrupted offline sim.Run even
// across a kill -9 (crash_test.go proves exactly that).
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Frame types. Client→server types are odd, server→client even.
const (
	// FrameOpen opens a session: config name (uvarint length + bytes,
	// empty selects the server default — and, when the options block is
	// all zero too, the server's default options) followed by the
	// serialized options (mode byte, denomLog uvarint, bimWindow
	// svarint, targetMKP float64 LE bits, adaptiveWindow uvarint),
	// followed by a backend spec (uvarint length + bytes; zero length
	// means no spec), followed by a session key (uvarint length + bytes;
	// zero length means anonymous). A non-empty spec selects any
	// registered backend family and overrides the config/options fields;
	// a non-empty key makes the session durable (see OpenRequest.Key).
	//repro:frame request
	FrameOpen byte = 0x01
	// FrameOpened acknowledges FrameOpen with the session id (uvarint),
	// the branches the session has already served (uvarint; non-zero when
	// a keyed open resumed a live or checkpointed session — the client's
	// replay cursor), and the resolved configuration name (uvarint length
	// + bytes) — canonical even when the request named an alias or relied
	// on the server default.
	//repro:frame response
	FrameOpened byte = 0x02
	// FrameBatch streams branches into a session: session id uvarint,
	// record count uvarint, then count records in the TBT1 per-record
	// codec (trace.AppendRecord), PC deltas restarting from 0 each batch.
	//repro:frame request
	FrameBatch byte = 0x03
	// FramePredictions answers FrameBatch: session id uvarint, count
	// uvarint, then one grade byte per branch (see EncodeGrade).
	//repro:frame response
	FramePredictions byte = 0x04
	// FrameClose retires a session: session id uvarint.
	//repro:frame request
	FrameClose byte = 0x05
	// FrameStats answers FrameClose with the session's final tallies:
	// session id uvarint, branches uvarint, instructions uvarint, then
	// per class (NumClasses of them, in class order) preds and misps
	// uvarints, then the final saturation probability (float64 LE bits).
	//repro:frame response
	FrameStats byte = 0x06
	// FrameError reports a request failure: code uvarint, message
	// (uvarint length + bytes). The connection stays usable unless the
	// failure was a framing error. Breaks the odd/even convention (odd
	// but server→client), hence the explicit direction taxonomy.
	//repro:frame response
	FrameError byte = 0x07
	// FrameSnapGet requests a durable snapshot of a live session: session
	// id uvarint. Answered with FrameSnap.
	//repro:frame request
	FrameSnapGet byte = 0x09
	// FrameSnap answers FrameSnapGet: session id uvarint, snapshot blob
	// (uvarint length + bytes). The blob is a self-contained session
	// snapshot (AppendSessionSnapshot) any node can resume from.
	//repro:frame response
	FrameSnap byte = 0x0A
	// FrameOpenSnap opens (or resumes) a session from a snapshot blob
	// (uvarint length + bytes): the migration/failover path. Answered with
	// FrameOpened; if a live session already holds the snapshot's key it
	// wins and the blob is ignored.
	//repro:frame request
	FrameOpenSnap byte = 0x0B
	// FrameBusy rejects a FrameBatch under overload: session id uvarint,
	// retry-after hint in milliseconds uvarint (0 = client's choice). The
	// batch was NOT applied — the session cursor did not move — so the
	// client must retry the same batch after backing off; the connection
	// stays usable.
	//repro:frame response
	FrameBusy byte = 0x0C
)

// Protocol limits. Frames above MaxFrame or batches above MaxBatch are
// rejected as malformed — they bound what a corrupt or hostile length
// prefix can make either side allocate.
const (
	MaxFrame      = 1 << 20
	MaxBatch      = 1 << 16
	maxConfigName = 256
	maxSpecLen    = predictor.MaxSpecLen
	maxErrMsg     = 1 << 12
	maxSessionKey = 128
)

// Error codes carried by FrameError.
const (
	ErrCodeMalformed      uint64 = 1 // undecodable request payload
	ErrCodeUnknownSession uint64 = 2 // session id not live
	ErrCodeSessionLimit   uint64 = 3 // max-sessions cap reached
	ErrCodeBadConfig      uint64 = 4 // unknown predictor config/options
	ErrCodeSnapshot       uint64 = 5 // unusable snapshot blob or state
	ErrCodeCorrupt        uint64 = 6 // frame failed its CRC — bytes mangled in flight
)

// ErrProtocol reports a malformed frame or payload: the stream's contents
// violate the protocol, so retrying the same bytes cannot succeed.
var ErrProtocol = fmt.Errorf("serve: protocol error")

// ErrCorrupt reports a frame whose CRC trailer does not match its
// contents: the bytes were mangled in flight. It wraps ErrProtocol —
// fatal for the connection, and NOT blindly retryable (a corrupt
// *response* means the server may already have applied the request;
// resending would double-apply). The Router recovers from it anyway,
// because its resync path re-reads the server's authoritative cursor
// instead of retrying bytes.
var ErrCorrupt = fmt.Errorf("%w: frame checksum mismatch", ErrProtocol)

// ErrIO reports a transport-level failure (truncated read mid-frame, a
// reset connection). Unlike ErrProtocol it says nothing about the peer's
// correctness — a client may retry on a fresh connection (IsRetryable).
var ErrIO = fmt.Errorf("serve: io error")

// RemoteError is a server-reported request failure (FrameError).
type RemoteError struct {
	Code    uint64
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("serve: remote error %d: %s", e.Code, e.Message)
}

// BusyError is a server load-shed rejection (FrameBusy): the batch was
// not applied and should be retried after backing off. IsRetryable
// reports true for it; Client.Predict retries it internally up to its
// busy-retry budget.
type BusyError struct {
	// Session is the session id the rejection names.
	Session uint64
	// RetryAfterMillis is the server's backoff hint (0 = client's choice).
	RetryAfterMillis uint64
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("serve: server busy (session %d, retry-after %dms)", e.Session, e.RetryAfterMillis)
}

// crcTable is the Castagnoli polynomial table for the frame CRC trailer
// (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// BeginFrame appends a frame header (length placeholder + type byte) for
// an in-construction frame and returns the extended buffer. The caller
// appends the payload and finishes with EndFrame(dst, start) where start
// was len(dst) before BeginFrame.
//repro:hotpath
func BeginFrame(dst []byte, typ byte) []byte {
	return append(dst, 0, 0, 0, 0, typ)
}

// EndFrame seals the frame whose header was appended at start: it
// appends the CRC-32C trailer over type byte + payload and patches the
// length prefix (which counts type + payload + trailer).
//repro:hotpath
func EndFrame(dst []byte, start int) []byte {
	sum := crc32.Checksum(dst[start+4:], crcTable)
	dst = binary.LittleEndian.AppendUint32(dst, sum)
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// ReadFrame reads one frame from br into buf (grown as needed), returning
// the type, the payload (a sub-slice of the returned buffer, valid until
// the next ReadFrame with the same buffer) and the possibly-grown buffer.
// io.EOF is returned unwrapped when the stream ends cleanly between
// frames. The length prefix is bounds-checked (5..MaxFrame — a frame is
// at least type byte + CRC trailer) BEFORE the payload buffer is sized,
// so a corrupt or hostile prefix cannot force a huge allocation, and the
// CRC trailer is verified before any payload byte is interpreted
// (ErrCorrupt on mismatch).
func ReadFrame(br *bufio.Reader, buf []byte) (typ byte, payload, bufOut []byte, err error) {
	return readFrame(br, buf, nil)
}

// readFrame is ReadFrame plus an optional hook invoked after the first
// header byte arrives. The server uses the hook to arm its mid-frame
// read deadline: a peer may idle indefinitely *between* frames, but once
// it has started one it must finish within Config.FrameTimeout or be
// evicted as a slow reader.
func readFrame(br *bufio.Reader, buf []byte, started func()) (typ byte, payload, bufOut []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:1]); err != nil {
		if err == io.EOF {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, fmt.Errorf("%w: header: %w", ErrIO, err)
	}
	if started != nil {
		started()
	}
	if _, err := io.ReadFull(br, hdr[1:]); err != nil {
		return 0, nil, buf, fmt.Errorf("%w: header: %w", ErrIO, err)
	}
	length := binary.LittleEndian.Uint32(hdr[:])
	if length < 5 || length > MaxFrame {
		return 0, nil, buf, fmt.Errorf("%w: frame length %d", ErrProtocol, length)
	}
	n := int(length)
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, nil, buf, fmt.Errorf("%w: body: %w", ErrIO, err)
	}
	want := binary.LittleEndian.Uint32(buf[n-4:])
	if crc32.Checksum(buf[:n-4], crcTable) != want {
		return 0, nil, buf, ErrCorrupt
	}
	return buf[0], buf[1 : n-4], buf, nil
}

// uvarint decodes one uvarint with bounds checking.
//repro:hotpath
func uvarint(src []byte) (uint64, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: truncated uvarint", ErrProtocol) //repro:allow-alloc cold path: malformed input tears the exchange down, allocation is fine
	}
	return v, n, nil
}

// OpenRequest is the decoded FrameOpen payload.
type OpenRequest struct {
	// Config names the predictor configuration (tage.ConfigByName); empty
	// selects the server's default.
	Config string
	// Options configures the estimator exactly as core.NewEstimator.
	Options core.Options
	// Spec, when non-empty, selects any registered backend family
	// (predictor.New) and takes precedence over Config/Options — the
	// spec's own parameters carry the estimator configuration, so
	// heterogeneous sessions (gshare next to TAGE next to perceptron)
	// share one server.
	Spec string
	// Key, when non-empty, names a durable session: an open with a key
	// held by a live session resumes that session (the request's
	// config/options/spec are ignored), an open whose key has a
	// checkpoint on the server's state dir restores it, and only keyed
	// sessions are checkpointed. At most maxSessionKey bytes.
	Key string
}

// AppendOpen appends a complete FrameOpen to dst.
func AppendOpen(dst []byte, req OpenRequest) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameOpen)
	dst = binary.AppendUvarint(dst, uint64(len(req.Config)))
	dst = append(dst, req.Config...)
	dst = append(dst, byte(req.Options.Mode))
	dst = binary.AppendUvarint(dst, uint64(req.Options.DenomLog))
	dst = binary.AppendVarint(dst, int64(req.Options.BimWindow))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(req.Options.TargetMKP))
	dst = binary.AppendUvarint(dst, req.Options.AdaptiveWindow)
	dst = binary.AppendUvarint(dst, uint64(len(req.Spec)))
	dst = append(dst, req.Spec...)
	dst = binary.AppendUvarint(dst, uint64(len(req.Key)))
	dst = append(dst, req.Key...)
	return EndFrame(dst, start)
}

// DecodeOpen decodes a FrameOpen payload.
func DecodeOpen(payload []byte) (OpenRequest, error) {
	var req OpenRequest
	nameLen, n, err := uvarint(payload)
	if err != nil {
		return req, fmt.Errorf("config name length: %w", err)
	}
	payload = payload[n:]
	if nameLen > maxConfigName || nameLen > uint64(len(payload)) {
		return req, fmt.Errorf("%w: config name length %d", ErrProtocol, nameLen)
	}
	req.Config = string(payload[:nameLen])
	payload = payload[nameLen:]
	if len(payload) < 1 {
		return req, fmt.Errorf("%w: missing mode", ErrProtocol)
	}
	mode := core.AutomatonMode(payload[0])
	payload = payload[1:]
	if mode > core.ModeAdaptive {
		return req, fmt.Errorf("%w: invalid mode %d", ErrProtocol, mode)
	}
	req.Options.Mode = mode
	denomLog, n, err := uvarint(payload)
	if err != nil {
		return req, fmt.Errorf("denomLog: %w", err)
	}
	payload = payload[n:]
	if denomLog > 62 {
		return req, fmt.Errorf("%w: denomLog %d out of range", ErrProtocol, denomLog)
	}
	req.Options.DenomLog = uint(denomLog)
	window, n := binary.Varint(payload)
	if n <= 0 {
		return req, fmt.Errorf("%w: bimWindow: truncated varint", ErrProtocol)
	}
	payload = payload[n:]
	if window > math.MaxInt32 || window < math.MinInt32 {
		return req, fmt.Errorf("%w: bimWindow %d out of range", ErrProtocol, window)
	}
	req.Options.BimWindow = int(window)
	if len(payload) < 8 {
		return req, fmt.Errorf("%w: missing targetMKP", ErrProtocol)
	}
	req.Options.TargetMKP = math.Float64frombits(binary.LittleEndian.Uint64(payload))
	payload = payload[8:]
	adaptiveWindow, n, err := uvarint(payload)
	if err != nil {
		return req, fmt.Errorf("adaptiveWindow: %w", err)
	}
	payload = payload[n:]
	req.Options.AdaptiveWindow = adaptiveWindow
	specLen, n, err := uvarint(payload)
	if err != nil {
		return req, fmt.Errorf("spec length: %w", err)
	}
	payload = payload[n:]
	if specLen > maxSpecLen || specLen > uint64(len(payload)) {
		return req, fmt.Errorf("%w: spec length %d", ErrProtocol, specLen)
	}
	req.Spec = string(payload[:specLen])
	payload = payload[specLen:]
	keyLen, n, err := uvarint(payload)
	if err != nil {
		return req, fmt.Errorf("key length: %w", err)
	}
	payload = payload[n:]
	if keyLen > maxSessionKey || keyLen > uint64(len(payload)) {
		return req, fmt.Errorf("%w: session key length %d", ErrProtocol, keyLen)
	}
	req.Key = string(payload[:keyLen])
	payload = payload[keyLen:]
	if len(payload) != 0 {
		return req, fmt.Errorf("%w: %d trailing bytes after open request", ErrProtocol, len(payload))
	}
	if f := req.Options.TargetMKP; math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
		return req, fmt.Errorf("%w: targetMKP %v not a finite non-negative value", ErrProtocol, f)
	}
	return req, nil
}

// AppendOpened appends a complete FrameOpened to dst. branches is the
// session's already-served branch count (0 for a fresh session).
func AppendOpened(dst []byte, sessionID uint64, config string, branches uint64) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameOpened)
	dst = binary.AppendUvarint(dst, sessionID)
	dst = binary.AppendUvarint(dst, branches)
	dst = binary.AppendUvarint(dst, uint64(len(config)))
	dst = append(dst, config...)
	return EndFrame(dst, start)
}

// DecodeOpened decodes a FrameOpened payload into the session id, the
// server-resolved configuration name, and the session's already-served
// branch count.
func DecodeOpened(payload []byte) (id uint64, config string, branches uint64, err error) {
	id, n, err := uvarint(payload)
	if err != nil {
		return 0, "", 0, fmt.Errorf("opened session id: %w", err)
	}
	payload = payload[n:]
	branches, n, err = uvarint(payload)
	if err != nil {
		return 0, "", 0, fmt.Errorf("opened branches: %w", err)
	}
	payload = payload[n:]
	nameLen, n, err := uvarint(payload)
	if err != nil {
		return 0, "", 0, fmt.Errorf("opened config length: %w", err)
	}
	payload = payload[n:]
	if nameLen > maxConfigName || nameLen != uint64(len(payload)) {
		return 0, "", 0, fmt.Errorf("%w: opened config length %d", ErrProtocol, nameLen)
	}
	return id, string(payload), branches, nil
}

// AppendSnapGet appends a complete FrameSnapGet to dst.
func AppendSnapGet(dst []byte, sessionID uint64) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameSnapGet)
	dst = binary.AppendUvarint(dst, sessionID)
	return EndFrame(dst, start)
}

// DecodeSnapGet decodes a FrameSnapGet payload.
func DecodeSnapGet(payload []byte) (uint64, error) {
	id, n, err := uvarint(payload)
	if err != nil || n != len(payload) {
		return 0, fmt.Errorf("%w: snapget payload", ErrProtocol)
	}
	return id, nil
}

// AppendSnap appends a complete FrameSnap to dst.
func AppendSnap(dst []byte, sessionID uint64, blob []byte) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameSnap)
	dst = binary.AppendUvarint(dst, sessionID)
	dst = binary.AppendUvarint(dst, uint64(len(blob)))
	dst = append(dst, blob...)
	return EndFrame(dst, start)
}

// DecodeSnap decodes a FrameSnap payload. The returned blob is a
// sub-slice of payload, valid until the frame buffer is reused.
func DecodeSnap(payload []byte) (uint64, []byte, error) {
	id, n, err := uvarint(payload)
	if err != nil {
		return 0, nil, fmt.Errorf("snap session id: %w", err)
	}
	payload = payload[n:]
	blobLen, n, err := uvarint(payload)
	if err != nil {
		return 0, nil, fmt.Errorf("snap blob length: %w", err)
	}
	payload = payload[n:]
	if blobLen > MaxFrame || blobLen != uint64(len(payload)) {
		return 0, nil, fmt.Errorf("%w: snap blob length %d", ErrProtocol, blobLen)
	}
	return id, payload, nil
}

// AppendOpenSnap appends a complete FrameOpenSnap to dst.
func AppendOpenSnap(dst []byte, blob []byte) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameOpenSnap)
	dst = binary.AppendUvarint(dst, uint64(len(blob)))
	dst = append(dst, blob...)
	return EndFrame(dst, start)
}

// DecodeOpenSnap decodes a FrameOpenSnap payload. The returned blob is a
// sub-slice of payload.
func DecodeOpenSnap(payload []byte) ([]byte, error) {
	blobLen, n, err := uvarint(payload)
	if err != nil {
		return nil, fmt.Errorf("opensnap blob length: %w", err)
	}
	payload = payload[n:]
	if blobLen > MaxFrame || blobLen != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: opensnap blob length %d", ErrProtocol, blobLen)
	}
	return payload, nil
}

// AppendBatch appends a complete FrameBatch to dst. PC deltas restart
// from 0 at the head of every batch, so batches are self-contained.
//repro:hotpath
func AppendBatch(dst []byte, sessionID uint64, records []trace.Branch) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameBatch)
	dst = binary.AppendUvarint(dst, sessionID)
	dst = binary.AppendUvarint(dst, uint64(len(records)))
	prevPC := uint64(0)
	for _, b := range records {
		dst, prevPC = trace.AppendRecord(dst, prevPC, b)
	}
	return EndFrame(dst, start)
}

// DecodeBatch decodes a FrameBatch payload, appending the records into
// records[:0] (pass a reused slice to avoid allocation).
//repro:hotpath
func DecodeBatch(payload []byte, records []trace.Branch) (sessionID uint64, out []trace.Branch, err error) {
	sessionID, n, err := uvarint(payload)
	if err != nil {
		return 0, records, fmt.Errorf("session id: %w", err) //repro:allow-alloc cold path: malformed input tears the exchange down, allocation is fine
	}
	payload = payload[n:]
	count, n, err := uvarint(payload)
	if err != nil {
		return 0, records, fmt.Errorf("record count: %w", err) //repro:allow-alloc cold path: malformed input tears the exchange down, allocation is fine
	}
	payload = payload[n:]
	if count > MaxBatch {
		return 0, records, fmt.Errorf("%w: batch of %d records exceeds limit %d", ErrProtocol, count, MaxBatch) //repro:allow-alloc cold path: malformed input tears the exchange down, allocation is fine
	}
	out = records[:0]
	prevPC := uint64(0)
	for i := uint64(0); i < count; i++ {
		var b trace.Branch
		b, n, prevPC, err = trace.DecodeRecord(payload, prevPC)
		if err != nil {
			return 0, out, fmt.Errorf("%w: record %d: %v", ErrProtocol, i, err) //repro:allow-alloc cold path: malformed input tears the exchange down, allocation is fine
		}
		payload = payload[n:]
		out = append(out, b)
	}
	if len(payload) != 0 {
		return 0, out, fmt.Errorf("%w: %d trailing bytes after batch", ErrProtocol, len(payload)) //repro:allow-alloc cold path: malformed input tears the exchange down, allocation is fine
	}
	return sessionID, out, nil
}

// Grade is one served prediction: the predicted direction plus the
// storage-free confidence class and its aggregate level.
type Grade struct {
	Pred  bool
	Class core.Class
	Level core.Level
}

// EncodeGrade packs a served prediction into one response byte: bit 0 is
// the predicted direction, bits 1-3 the class, bits 4-5 the level.
//repro:hotpath
func EncodeGrade(pred bool, class core.Class, level core.Level) byte {
	g := byte(class)<<1 | byte(level)<<4
	if pred {
		g |= 1
	}
	return g
}

// DecodeGrade unpacks a response byte, validating every field (including
// the class→level aggregation, which the wire cannot legally disagree
// with).
//repro:hotpath
func DecodeGrade(g byte) (Grade, error) {
	class := core.Class(g >> 1 & 0x7)
	level := core.Level(g >> 4 & 0x3)
	if g&0xC0 != 0 || class >= core.NumClasses || level >= core.NumLevels || class.Level() != level {
		return Grade{}, fmt.Errorf("%w: invalid grade byte %#02x", ErrProtocol, g) //repro:allow-alloc cold path: malformed input tears the exchange down, allocation is fine
	}
	return Grade{Pred: g&1 == 1, Class: class, Level: level}, nil
}

// AppendPredictions appends a complete FramePredictions to dst.
//repro:hotpath
func AppendPredictions(dst []byte, sessionID uint64, grades []byte) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FramePredictions)
	dst = binary.AppendUvarint(dst, sessionID)
	dst = binary.AppendUvarint(dst, uint64(len(grades)))
	dst = append(dst, grades...)
	return EndFrame(dst, start)
}

// DecodePredictions decodes a FramePredictions payload, appending the
// validated grades into grades[:0].
//repro:hotpath
func DecodePredictions(payload []byte, grades []Grade) (sessionID uint64, out []Grade, err error) {
	sessionID, n, err := uvarint(payload)
	if err != nil {
		return 0, grades, fmt.Errorf("session id: %w", err) //repro:allow-alloc cold path: malformed input tears the exchange down, allocation is fine
	}
	payload = payload[n:]
	count, n, err := uvarint(payload)
	if err != nil {
		return 0, grades, fmt.Errorf("grade count: %w", err) //repro:allow-alloc cold path: malformed input tears the exchange down, allocation is fine
	}
	payload = payload[n:]
	if count > MaxBatch || count != uint64(len(payload)) {
		return 0, grades, fmt.Errorf("%w: grade count %d does not match payload %d", ErrProtocol, count, len(payload)) //repro:allow-alloc cold path: malformed input tears the exchange down, allocation is fine
	}
	out = grades[:0]
	for _, g := range payload {
		grade, err := DecodeGrade(g)
		if err != nil {
			return 0, out, err
		}
		out = append(out, grade)
	}
	return sessionID, out, nil
}

// AppendClose appends a complete FrameClose to dst.
func AppendClose(dst []byte, sessionID uint64) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameClose)
	dst = binary.AppendUvarint(dst, sessionID)
	return EndFrame(dst, start)
}

// DecodeClose decodes a FrameClose payload.
func DecodeClose(payload []byte) (uint64, error) {
	id, n, err := uvarint(payload)
	if err != nil || n != len(payload) {
		return 0, fmt.Errorf("%w: close payload", ErrProtocol)
	}
	return id, nil
}

// AppendStats appends a complete FrameStats to dst. Only the per-class
// tallies travel; Total is their sum and is reconstructed on decode
// (every prediction belongs to exactly one class, so the sum is exact).
func AppendStats(dst []byte, sessionID uint64, res sim.Result) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameStats)
	dst = binary.AppendUvarint(dst, sessionID)
	dst = binary.AppendUvarint(dst, res.Branches)
	dst = binary.AppendUvarint(dst, res.Instructions)
	for _, c := range res.Class {
		dst = binary.AppendUvarint(dst, c.Preds)
		dst = binary.AppendUvarint(dst, c.Misps)
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(res.FinalProbability))
	return EndFrame(dst, start)
}

// DecodeStats decodes a FrameStats payload. The returned Result carries
// counts and FinalProbability only; Trace/Config/Mode labels are the
// caller's (the client knows what it opened).
func DecodeStats(payload []byte) (sessionID uint64, res sim.Result, err error) {
	read := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		var n int
		v, n, err = uvarint(payload)
		payload = payload[n:]
		return v
	}
	sessionID = read()
	res.Branches = read()
	res.Instructions = read()
	for i := range res.Class {
		res.Class[i] = metrics.Counts{Preds: read(), Misps: read()}
		res.Total.Add(res.Class[i])
	}
	if err != nil {
		return 0, sim.Result{}, fmt.Errorf("stats: %w", err)
	}
	if len(payload) != 8 {
		return 0, sim.Result{}, fmt.Errorf("%w: stats payload tail %d bytes, want 8", ErrProtocol, len(payload))
	}
	res.FinalProbability = math.Float64frombits(binary.LittleEndian.Uint64(payload))
	if p := res.FinalProbability; math.IsNaN(p) || p < 0 || p > 1 {
		return 0, sim.Result{}, fmt.Errorf("%w: stats saturation probability %v outside [0,1]", ErrProtocol, p)
	}
	if res.Total.Preds != res.Branches {
		return 0, sim.Result{}, fmt.Errorf("%w: stats class sum %d does not match branches %d", ErrProtocol, res.Total.Preds, res.Branches)
	}
	return sessionID, res, nil
}

// AppendBusy appends a complete FrameBusy to dst. retryAfterMillis is
// the server's backoff hint (0 = client's choice).
//repro:hotpath
func AppendBusy(dst []byte, sessionID, retryAfterMillis uint64) []byte {
	start := len(dst)
	dst = BeginFrame(dst, FrameBusy)
	dst = binary.AppendUvarint(dst, sessionID)
	dst = binary.AppendUvarint(dst, retryAfterMillis)
	return EndFrame(dst, start)
}

// DecodeBusy decodes a FrameBusy payload.
func DecodeBusy(payload []byte) (*BusyError, error) {
	id, n, err := uvarint(payload)
	if err != nil {
		return nil, fmt.Errorf("busy session id: %w", err)
	}
	payload = payload[n:]
	millis, n, err := uvarint(payload)
	if err != nil || n != len(payload) {
		return nil, fmt.Errorf("%w: busy payload", ErrProtocol)
	}
	return &BusyError{Session: id, RetryAfterMillis: millis}, nil
}

// AppendError appends a complete FrameError to dst.
func AppendError(dst []byte, code uint64, msg string) []byte {
	if len(msg) > maxErrMsg {
		msg = msg[:maxErrMsg]
	}
	start := len(dst)
	dst = BeginFrame(dst, FrameError)
	dst = binary.AppendUvarint(dst, code)
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	dst = append(dst, msg...)
	return EndFrame(dst, start)
}

// DecodeError decodes a FrameError payload.
func DecodeError(payload []byte) (*RemoteError, error) {
	code, n, err := uvarint(payload)
	if err != nil {
		return nil, fmt.Errorf("error code: %w", err)
	}
	payload = payload[n:]
	msgLen, n, err := uvarint(payload)
	if err != nil {
		return nil, fmt.Errorf("error message length: %w", err)
	}
	payload = payload[n:]
	if msgLen > maxErrMsg || msgLen != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: error message length %d", ErrProtocol, msgLen)
	}
	return &RemoteError{Code: code, Message: string(payload)}, nil
}
