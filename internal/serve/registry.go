package serve

import (
	"sort"
	"sync"
	"sync/atomic"
)

// registry is the lock-striped session table: sessions are spread over
// power-of-two shards by id, so concurrent connections serving different
// sessions contend only on their shard's RWMutex (and the common case —
// looking up an existing session — takes it in read mode).
type registry struct {
	shards []regShard
	mask   uint64

	nextID atomic.Uint64
	live   atomic.Int64
	max    int64 // 0 = unlimited
}

type regShard struct {
	mu sync.RWMutex
	m  map[uint64]*Session //repro:guardedby mu
}

// newRegistry builds a registry with the given shard count (rounded up
// to a power of two, minimum 1) and live-session cap (0 = unlimited).
//repro:locked construction: the registry is not yet shared, no locking needed
func newRegistry(shards, maxSessions int) *registry {
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &registry{shards: make([]regShard, n), mask: uint64(n - 1), max: int64(maxSessions)}
	for i := range r.shards {
		r.shards[i].m = make(map[uint64]*Session)
	}
	return r
}

func (r *registry) shard(id uint64) *regShard { return &r.shards[id&r.mask] }

// reserve claims a session slot against the cap, returning the new
// session id, or false when the cap is reached. A reservation must be
// followed by insert or release.
func (r *registry) reserve() (uint64, bool) {
	if r.max > 0 && r.live.Add(1) > r.max {
		r.live.Add(-1)
		return 0, false
	}
	if r.max <= 0 {
		r.live.Add(1)
	}
	return r.nextID.Add(1), true
}

// release returns a reserved or removed slot to the cap.
func (r *registry) release() { r.live.Add(-1) }

// insert publishes a session under its id.
func (r *registry) insert(s *Session) {
	sh := r.shard(s.id)
	sh.mu.Lock()
	sh.m[s.id] = s
	sh.mu.Unlock()
}

// get looks a live session up by id.
func (r *registry) get(id uint64) (*Session, bool) {
	sh := r.shard(id)
	sh.mu.RLock()
	s, ok := sh.m[id]
	sh.mu.RUnlock()
	return s, ok
}

// remove unpublishes a session, returning it if it was live. The caller
// must release() the slot after retiring the session.
func (r *registry) remove(id uint64) (*Session, bool) {
	sh := r.shard(id)
	sh.mu.Lock()
	s, ok := sh.m[id]
	if ok {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	return s, ok
}

// count returns the number of live sessions.
//repro:deterministic
func (r *registry) count() int64 { return r.live.Load() }

// forEach visits every live session in ascending id order. The visit
// runs outside the shard locks (the snapshot is per shard), so it may
// observe sessions being concurrently retired — callers handle that via
// the session lock. The id ordering makes scrape aggregation and
// checkpoint-write order deterministic for a given session population.
//repro:deterministic
func (r *registry) forEach(fn func(*Session)) {
	var snap []*Session
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		snap = snap[:0]
		for _, s := range sh.m {
			snap = append(snap, s)
		}
		sh.mu.RUnlock()
		sort.Slice(snap, func(i, j int) bool { return snap[i].id < snap[j].id })
		for _, s := range snap {
			fn(s)
		}
	}
}

// sweepIdle removes and returns every session whose lastUsed is strictly
// before cutoff (engine-clock nanoseconds).
func (r *registry) sweepIdle(cutoff int64) []*Session {
	var idle []*Session
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for id, s := range sh.m {
			if s.lastUsed.Load() < cutoff {
				delete(sh.m, id)
				idle = append(idle, s)
			}
		}
		sh.mu.Unlock()
	}
	return idle
}
