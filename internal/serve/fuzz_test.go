package serve

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// framePayload strips a complete frame down to its payload: the 5-byte
// header (length + type) and the 4-byte CRC trailer.
func framePayload(t *testing.T, frame []byte) []byte {
	t.Helper()
	if len(frame) < 9 {
		t.Fatalf("frame of %d bytes cannot carry header and CRC trailer", len(frame))
	}
	return frame[5 : len(frame)-4]
}

// FuzzFrame mirrors internal/trace's FuzzRead for the wire protocol:
// arbitrary bytes through the frame reader and every payload decoder
// must either parse or error — never panic, never accept garbage
// silently — and whatever parses must re-encode to a payload that parses
// back identically (round-trip identity).
func FuzzFrame(f *testing.F) {
	// Seed with one valid frame of every type, a truncation, and junk.
	res := sim.Result{FinalProbability: 0.0078125}
	for i := range res.Class {
		res.Class[i] = metrics.Counts{Preds: uint64(i) * 10, Misps: uint64(i)}
		res.Total.Add(res.Class[i])
	}
	res.Branches = res.Total.Preds
	var grades []byte
	for _, cl := range core.Classes() {
		grades = append(grades, EncodeGrade(true, cl, cl.Level()))
	}
	seeds := [][]byte{
		AppendOpen(nil, OpenRequest{Config: "64K", Options: core.Options{Mode: core.ModeAdaptive, TargetMKP: 10}}),
		AppendOpen(nil, OpenRequest{Spec: "gshare-64K?hist=13"}),
		AppendOpen(nil, OpenRequest{Spec: "tage-16K?mkp=4&mode=adaptive"}),
		AppendOpen(nil, OpenRequest{Spec: "tage-16K", Key: "trace/INT-1#0"}),
		AppendOpened(nil, 7, "64Kbits", 0),
		AppendOpened(nil, 7, "64Kbits", 123456),
		AppendBatch(nil, 7, sampleBranches(20, 5)),
		AppendPredictions(nil, 7, grades),
		AppendClose(nil, 7),
		AppendStats(nil, 7, res),
		AppendError(nil, ErrCodeMalformed, "bad"),
		AppendSnapGet(nil, 7),
		AppendSnap(nil, 7, []byte("not a real snapshot blob")),
		AppendOpenSnap(nil, []byte("not a real snapshot blob")),
		AppendBusy(nil, 7, 25),
		// Hostile length prefixes: all-ones, just past MaxFrame, and the
		// maximum uint32 — each must be rejected by the bounds check
		// before any payload allocation happens.
		{0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		{0x01, 0x00, 0x10, 0x00, 0x03}, // length = MaxFrame+1
		{0xFE, 0xFF, 0xFF, 0xFF, 0x03},
		[]byte("garbage data, not a frame"),
		{},
	}
	seeds = append(seeds, seeds[2][:8])
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		typ, payload, _, err := ReadFrame(br, nil)
		if err != nil {
			// Truncated inputs surface as ErrIO (the stream died
			// mid-frame), illegal lengths as ErrProtocol, and a clean end
			// as bare io.EOF.
			if !errors.Is(err, ErrProtocol) && !errors.Is(err, ErrIO) && err != io.EOF {
				t.Fatalf("ReadFrame error is neither ErrProtocol, ErrIO nor io.EOF: %v", err)
			}
			return
		}
		//repro:frames all
		switch typ {
		case FrameOpen:
			req, err := DecodeOpen(payload)
			if err != nil {
				return
			}
			reenc := AppendOpen(nil, req)
			got, err := DecodeOpen(framePayload(t, reenc))
			if err != nil || got != req {
				t.Fatalf("open round trip: %+v -> %+v (%v)", req, got, err)
			}
		case FrameOpened:
			id, config, branches, err := DecodeOpened(payload)
			if err != nil {
				return
			}
			reenc := AppendOpened(nil, id, config, branches)
			id2, config2, branches2, err := DecodeOpened(framePayload(t, reenc))
			if err != nil || id2 != id || config2 != config || branches2 != branches {
				t.Fatalf("opened round trip: %d/%q/%d -> %d/%q/%d (%v)", id, config, branches, id2, config2, branches2, err)
			}
		case FrameBatch:
			id, records, err := DecodeBatch(payload, nil)
			if err != nil {
				return
			}
			for _, r := range records {
				if r.Instr == 0 {
					t.Fatal("decoded batch record with zero instruction count")
				}
			}
			reenc := AppendBatch(nil, id, records)
			id2, records2, err := DecodeBatch(framePayload(t, reenc), nil)
			if err != nil || id2 != id || len(records2) != len(records) {
				t.Fatalf("batch round trip failed: %v", err)
			}
			for i := range records {
				if records[i] != records2[i] {
					t.Fatalf("batch round trip changed record %d", i)
				}
			}
		case FramePredictions:
			id, decoded, err := DecodePredictions(payload, nil)
			if err != nil {
				return
			}
			raw := make([]byte, len(decoded))
			for i, g := range decoded {
				raw[i] = EncodeGrade(g.Pred, g.Class, g.Level)
			}
			reenc := AppendPredictions(nil, id, raw)
			id2, decoded2, err := DecodePredictions(framePayload(t, reenc), nil)
			if err != nil || id2 != id || len(decoded2) != len(decoded) {
				t.Fatalf("predictions round trip failed: %v", err)
			}
			for i := range decoded {
				if decoded[i] != decoded2[i] {
					t.Fatalf("predictions round trip changed grade %d", i)
				}
			}
		case FrameClose:
			id, err := DecodeClose(payload)
			if err != nil {
				return
			}
			reenc := AppendClose(nil, id)
			if id2, err := DecodeClose(framePayload(t, reenc)); err != nil || id2 != id {
				t.Fatalf("close round trip: %d -> %d (%v)", id, id2, err)
			}
		case FrameStats:
			id, stats, err := DecodeStats(payload)
			if err != nil {
				return
			}
			if stats.Total.Preds != stats.Branches {
				t.Fatal("accepted stats whose classes do not sum to branches")
			}
			reenc := AppendStats(nil, id, stats)
			id2, stats2, err := DecodeStats(framePayload(t, reenc))
			if err != nil || id2 != id || stats2 != stats {
				t.Fatalf("stats round trip: %+v -> %+v (%v)", stats, stats2, err)
			}
		case FrameError:
			re, err := DecodeError(payload)
			if err != nil {
				return
			}
			reenc := AppendError(nil, re.Code, re.Message)
			re2, err := DecodeError(framePayload(t, reenc))
			if err != nil || re2.Code != re.Code || re2.Message != re.Message {
				t.Fatalf("error round trip: %+v -> %+v (%v)", re, re2, err)
			}
		case FrameSnapGet:
			id, err := DecodeSnapGet(payload)
			if err != nil {
				return
			}
			reenc := AppendSnapGet(nil, id)
			if id2, err := DecodeSnapGet(framePayload(t, reenc)); err != nil || id2 != id {
				t.Fatalf("snapget round trip: %d -> %d (%v)", id, id2, err)
			}
		case FrameSnap:
			id, blob, err := DecodeSnap(payload)
			if err != nil {
				return
			}
			reenc := AppendSnap(nil, id, blob)
			id2, blob2, err := DecodeSnap(framePayload(t, reenc))
			if err != nil || id2 != id || !bytes.Equal(blob, blob2) {
				t.Fatalf("snap round trip failed: %v", err)
			}
			// A blob that decodes as a session snapshot must re-encode to
			// the same sealed bytes.
			if snap, err := DecodeSessionSnapshot(blob); err == nil {
				if !bytes.Equal(AppendSessionSnapshot(nil, snap), blob) {
					t.Fatal("session snapshot is not a re-encoding fixed point")
				}
			}
		case FrameOpenSnap:
			blob, err := DecodeOpenSnap(payload)
			if err != nil {
				return
			}
			reenc := AppendOpenSnap(nil, blob)
			blob2, err := DecodeOpenSnap(framePayload(t, reenc))
			if err != nil || !bytes.Equal(blob, blob2) {
				t.Fatalf("opensnap round trip failed: %v", err)
			}
		case FrameBusy:
			be, err := DecodeBusy(payload)
			if err != nil {
				return
			}
			reenc := AppendBusy(nil, be.Session, be.RetryAfterMillis)
			be2, err := DecodeBusy(framePayload(t, reenc))
			if err != nil || be2.Session != be.Session || be2.RetryAfterMillis != be.RetryAfterMillis {
				t.Fatalf("busy round trip: %+v -> %+v (%v)", be, be2, err)
			}
		}
	})
}
