package serve

import (
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// CheckpointStore persists session snapshots as one file per session key
// under a directory. File names are the hex encoding of the key plus a
// ".ckpt" suffix — hex, not the raw key, so a hostile key ("../../etc")
// can never escape the directory — and writes go through a temp file and
// rename, so a crash mid-write leaves either the previous checkpoint or
// none, never a torn one (torn blobs are also caught by the snapshot
// checksum, making the store safe even on filesystems without atomic
// rename).
type CheckpointStore struct {
	dir string
}

// ckptExt is the checkpoint file suffix.
const ckptExt = ".ckpt"

// OpenCheckpointStore opens (creating if needed) a checkpoint directory.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	return &CheckpointStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (cs *CheckpointStore) Dir() string { return cs.dir }

func (cs *CheckpointStore) path(key string) string {
	return filepath.Join(cs.dir, hex.EncodeToString([]byte(key))+ckptExt)
}

// Write atomically persists the checkpoint blob for key, replacing any
// previous one.
func (cs *CheckpointStore) Write(key string, blob []byte) error {
	path := cs.path(key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Read returns the checkpoint blob for key, or an fs.ErrNotExist error
// when none is stored.
func (cs *CheckpointStore) Read(key string) ([]byte, error) {
	return os.ReadFile(cs.path(key))
}

// Delete removes the checkpoint for key (no error when absent — a
// session closed before its first checkpoint has nothing to delete).
func (cs *CheckpointStore) Delete(key string) error {
	err := os.Remove(cs.path(key))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Keys lists every session key with a stored checkpoint. Files that do
// not look like checkpoints (foreign files, leftover temp files,
// undecodable names) are skipped, not errors — the boot path must come
// up on a best-effort directory.
func (cs *CheckpointStore) Keys() ([]string, error) {
	entries, err := os.ReadDir(cs.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ckptExt) {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimSuffix(name, ckptExt))
		if err != nil || len(raw) == 0 || len(raw) > maxSessionKey {
			continue
		}
		keys = append(keys, string(raw))
	}
	return keys, nil
}

// notExist reports whether err is the store's missing-checkpoint error.
func notExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
