package serve

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func sampleBranches(n int, seed uint64) []trace.Branch {
	r := xrand.New(seed)
	out := make([]trace.Branch, n)
	pc := uint64(0x400000)
	for i := range out {
		pc += uint64(r.Intn(64)) * 4
		if r.OneIn(8) {
			pc -= uint64(r.Intn(32)) * 4
		}
		out[i] = trace.Branch{PC: pc, Taken: r.Bool(), Instr: uint32(r.Intn(12)) + 1}
	}
	return out
}

// readOne parses exactly one frame out of raw.
func readOne(t *testing.T, raw []byte) (byte, []byte) {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(raw))
	typ, payload, _, err := ReadFrame(br, nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return typ, payload
}

func TestOpenRoundTrip(t *testing.T) {
	for _, req := range []OpenRequest{
		{},
		{Config: "64K"},
		{Config: "16K", Options: core.Options{Mode: core.ModeProbabilistic, DenomLog: 9}},
		{Config: "256K", Options: core.Options{
			Mode: core.ModeAdaptive, DenomLog: 7, BimWindow: -1,
			TargetMKP: 12.5, AdaptiveWindow: 8192,
		}},
	} {
		frame := AppendOpen(nil, req)
		typ, payload := readOne(t, frame)
		if typ != FrameOpen {
			t.Fatalf("type %#02x", typ)
		}
		got, err := DecodeOpen(payload)
		if err != nil {
			t.Fatalf("DecodeOpen(%+v): %v", req, err)
		}
		if got != req {
			t.Fatalf("round trip: got %+v want %+v", got, req)
		}
	}
}

func TestOpenedRoundTrip(t *testing.T) {
	frame := AppendOpened(nil, 1234567, "64Kbits", 987654)
	typ, payload := readOne(t, frame)
	if typ != FrameOpened {
		t.Fatalf("type %#02x", typ)
	}
	id, config, branches, err := DecodeOpened(payload)
	if err != nil || id != 1234567 || config != "64Kbits" || branches != 987654 {
		t.Fatalf("got id=%d config=%q branches=%d err=%v", id, config, branches, err)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	records := sampleBranches(1000, 42)
	frame := AppendBatch(nil, 99, records)
	typ, payload := readOne(t, frame)
	if typ != FrameBatch {
		t.Fatalf("type %#02x", typ)
	}
	id, got, err := DecodeBatch(payload, nil)
	if err != nil || id != 99 {
		t.Fatalf("id=%d err=%v", id, err)
	}
	if len(got) != len(records) {
		t.Fatalf("%d records, want %d", len(got), len(records))
	}
	for i := range records {
		if got[i] != records[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], records[i])
		}
	}
}

func TestGradeRoundTrip(t *testing.T) {
	for _, pred := range []bool{false, true} {
		for _, class := range core.Classes() {
			g, err := DecodeGrade(EncodeGrade(pred, class, class.Level()))
			if err != nil {
				t.Fatalf("%v/%v: %v", pred, class, err)
			}
			if g.Pred != pred || g.Class != class || g.Level != class.Level() {
				t.Fatalf("round trip: got %+v", g)
			}
		}
	}
	// Every inconsistent or out-of-range byte must be rejected.
	valid := map[byte]bool{}
	for _, pred := range []bool{false, true} {
		for _, class := range core.Classes() {
			valid[EncodeGrade(pred, class, class.Level())] = true
		}
	}
	for b := 0; b < 256; b++ {
		_, err := DecodeGrade(byte(b))
		if valid[byte(b)] != (err == nil) {
			t.Fatalf("byte %#02x: valid=%v err=%v", b, valid[byte(b)], err)
		}
	}
}

func TestPredictionsRoundTrip(t *testing.T) {
	var grades []byte
	for _, class := range core.Classes() {
		grades = append(grades, EncodeGrade(true, class, class.Level()))
		grades = append(grades, EncodeGrade(false, class, class.Level()))
	}
	frame := AppendPredictions(nil, 7, grades)
	typ, payload := readOne(t, frame)
	if typ != FramePredictions {
		t.Fatalf("type %#02x", typ)
	}
	id, got, err := DecodePredictions(payload, nil)
	if err != nil || id != 7 || len(got) != len(grades) {
		t.Fatalf("id=%d n=%d err=%v", id, len(got), err)
	}
	for i, g := range got {
		want, _ := DecodeGrade(grades[i])
		if g != want {
			t.Fatalf("grade %d: got %+v want %+v", i, g, want)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	res := sim.Result{Branches: 12345, Instructions: 67890, FinalProbability: 1.0 / 128}
	for i := range res.Class {
		res.Class[i] = metrics.Counts{Preds: uint64(1000 * (i + 1)), Misps: uint64(13 * i)}
		res.Total.Add(res.Class[i])
	}
	res.Branches = res.Total.Preds // stats invariant: classes sum to branches
	frame := AppendStats(nil, 3, res)
	typ, payload := readOne(t, frame)
	if typ != FrameStats {
		t.Fatalf("type %#02x", typ)
	}
	id, got, err := DecodeStats(payload)
	if err != nil || id != 3 {
		t.Fatalf("id=%d err=%v", id, err)
	}
	if got != res {
		t.Fatalf("round trip: got %+v want %+v", got, res)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	frame := AppendError(nil, ErrCodeUnknownSession, "no such session")
	typ, payload := readOne(t, frame)
	if typ != FrameError {
		t.Fatalf("type %#02x", typ)
	}
	re, err := DecodeError(payload)
	if err != nil || re.Code != ErrCodeUnknownSession || re.Message != "no such session" {
		t.Fatalf("got %+v err=%v", re, err)
	}
}

func TestReadFrameLimits(t *testing.T) {
	// Zero-length frame.
	br := bufio.NewReader(bytes.NewReader([]byte{0, 0, 0, 0}))
	if _, _, _, err := ReadFrame(br, nil); !errors.Is(err, ErrProtocol) {
		t.Fatalf("zero-length frame: err = %v", err)
	}
	// Oversized length prefix must be rejected before any allocation of
	// that size.
	br = bufio.NewReader(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1}))
	if _, _, _, err := ReadFrame(br, nil); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized frame: err = %v", err)
	}
	// Clean EOF between frames is io.EOF, not a protocol error.
	br = bufio.NewReader(bytes.NewReader(nil))
	if _, _, _, err := ReadFrame(br, nil); err != io.EOF {
		t.Fatalf("clean EOF: err = %v", err)
	}
	// EOF inside a frame is a transport failure — retryable on a fresh
	// connection, unlike a protocol violation.
	frame := AppendClose(nil, 1)
	br = bufio.NewReader(bytes.NewReader(frame[:len(frame)-1]))
	if _, _, _, err := ReadFrame(br, nil); !errors.Is(err, ErrIO) {
		t.Fatalf("mid-frame EOF: err = %v", err)
	}
	// And the two classes never overlap.
	if _, _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame[:3])), nil); !errors.Is(err, ErrIO) || errors.Is(err, ErrProtocol) {
		t.Fatalf("truncated header: err = %v", err)
	}
}

// TestDecodeTruncations cuts every valid payload at every byte offset:
// decoders must error (never panic, never accept).
func TestDecodeTruncations(t *testing.T) {
	records := sampleBranches(10, 7)
	var grades []byte
	for _, class := range core.Classes() {
		grades = append(grades, EncodeGrade(true, class, class.Level()))
	}
	res := sim.Result{}
	for i := range res.Class {
		res.Class[i] = metrics.Counts{Preds: 100, Misps: 3}
		res.Total.Add(res.Class[i])
	}
	res.Branches = res.Total.Preds

	payloadOf := func(frame []byte) []byte { return frame[5 : len(frame)-4] }
	cases := []struct {
		name    string
		payload []byte
		decode  func([]byte) error
	}{
		{"open", payloadOf(AppendOpen(nil, OpenRequest{Config: "64K", Options: core.Options{Mode: core.ModeAdaptive, TargetMKP: 5}})),
			func(p []byte) error { _, err := DecodeOpen(p); return err }},
		{"open-keyed", payloadOf(AppendOpen(nil, OpenRequest{Spec: "tage-16K", Key: "trace/INT-1#0"})),
			func(p []byte) error { _, err := DecodeOpen(p); return err }},
		{"opened", payloadOf(AppendOpened(nil, 42, "64Kbits", 77)),
			func(p []byte) error { _, _, _, err := DecodeOpened(p); return err }},
		{"snapget", payloadOf(AppendSnapGet(nil, 42)),
			func(p []byte) error { _, err := DecodeSnapGet(p); return err }},
		{"snap", payloadOf(AppendSnap(nil, 42, []byte("blobby"))),
			func(p []byte) error { _, _, err := DecodeSnap(p); return err }},
		{"opensnap", payloadOf(AppendOpenSnap(nil, []byte("blobby"))),
			func(p []byte) error { _, err := DecodeOpenSnap(p); return err }},
		{"batch", payloadOf(AppendBatch(nil, 42, records)),
			func(p []byte) error { _, _, err := DecodeBatch(p, nil); return err }},
		{"predictions", payloadOf(AppendPredictions(nil, 42, grades)),
			func(p []byte) error { _, _, err := DecodePredictions(p, nil); return err }},
		{"close", payloadOf(AppendClose(nil, 421)),
			func(p []byte) error { _, err := DecodeClose(p); return err }},
		{"stats", payloadOf(AppendStats(nil, 42, res)),
			func(p []byte) error { _, _, err := DecodeStats(p); return err }},
		{"error", payloadOf(AppendError(nil, 2, "boom")),
			func(p []byte) error { _, err := DecodeError(p); return err }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.decode(c.payload); err != nil {
				t.Fatalf("full payload rejected: %v", err)
			}
			for cut := 0; cut < len(c.payload); cut++ {
				if err := c.decode(c.payload[:cut]); err == nil {
					t.Fatalf("truncation at %d accepted", cut)
				}
			}
		})
	}
}

// TestDecodeBatchLimit pins the corrupt-length defenses: a batch whose
// count field exceeds MaxBatch is rejected without allocating for it.
func TestDecodeBatchLimit(t *testing.T) {
	full := AppendBatch(nil, 1, nil)
	payload := full[5 : len(full)-4]
	// Rewrite count (second uvarint: session id 1 is one byte) to 2^20.
	big := append(payload[:1:1], 0x80, 0x80, 0x40)
	if _, _, err := DecodeBatch(big, nil); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized count: err = %v", err)
	}
}
