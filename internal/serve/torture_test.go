package serve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/workload"
)

// memConn is a deterministic in-memory net.Conn: reads drain a fixed
// byte pattern, writes are discarded. It gives faultnet determinism
// tests an underlying transport with no scheduling noise of its own.
type memConn struct {
	pos    int
	closed bool
}

func (m *memConn) Read(p []byte) (int, error) {
	if m.closed {
		return 0, io.EOF
	}
	for i := range p {
		p[i] = byte(m.pos + i)
	}
	m.pos += len(p)
	return len(p), nil
}

func (m *memConn) Write(p []byte) (int, error) {
	if m.closed {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

func (m *memConn) Close() error                       { m.closed = true; return nil }
func (m *memConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (m *memConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (m *memConn) SetDeadline(time.Time) error        { return nil }
func (m *memConn) SetReadDeadline(time.Time) error    { return nil }
func (m *memConn) SetWriteDeadline(time.Time) error   { return nil }

// faultTrace runs a fixed read/write schedule through a wrapped conn
// and records every outcome — the replayable fingerprint of the fault
// stream.
func faultTrace(cfg faultnet.Config, id uint64) string {
	c := faultnet.Wrap(&memConn{}, cfg, id, nil)
	var sb bytes.Buffer
	buf := make([]byte, 48)
	for op := 0; op < 200; op++ {
		var n int
		var err error
		if op%3 == 2 {
			n, err = c.Write(buf[:32])
			fmt.Fprintf(&sb, "w%d/%v;", n, err)
		} else {
			n, err = c.Read(buf)
			fmt.Fprintf(&sb, "r%d/%v/%x;", n, err, buf[:n])
		}
		if err != nil {
			break
		}
	}
	return sb.String()
}

// TestFaultnetDeterminism pins the property the chaos soak leans on: a
// fault schedule is a pure function of (seed, connection id). The same
// pair replays the same faults at the same operations; a different id
// draws a decorrelated stream.
func TestFaultnetDeterminism(t *testing.T) {
	cfg := faultnet.Config{
		Seed:        42,
		CorruptRate: 0.2,
		DropRate:    0.05,
		ResetRate:   0.05,
		ShortReads:  true,
		ChunkWrites: true,
	}
	a, b := faultTrace(cfg, 3), faultTrace(cfg, 3)
	if a != b {
		t.Fatalf("same (seed, id) diverged:\n%s\nvs\n%s", a, b)
	}
	if c := faultTrace(cfg, 4); c == a {
		t.Fatal("distinct connection ids drew identical fault streams")
	}
	other := cfg
	other.Seed = 43
	if c := faultTrace(other, 3); c == a {
		t.Fatal("distinct seeds drew identical fault streams")
	}
}

// tortureFrames builds one valid frame of every type.
func tortureFrames(t *testing.T) [][]byte {
	t.Helper()
	res := sim.Result{FinalProbability: 0.0078125}
	for i := range res.Class {
		res.Class[i].Preds = uint64(i) * 10
		res.Class[i].Misps = uint64(i)
		res.Total.Add(res.Class[i])
	}
	res.Branches = res.Total.Preds
	var grades []byte
	for _, cl := range core.Classes() {
		grades = append(grades, EncodeGrade(true, cl, cl.Level()))
	}
	return [][]byte{
		AppendOpen(nil, OpenRequest{Spec: "tage-16K?mkp=4&mode=adaptive", Key: "torture/1"}),
		AppendOpened(nil, 7, "64Kbits", 123456),
		AppendBatch(nil, 7, sampleBranches(100, 5)),
		AppendPredictions(nil, 7, grades),
		AppendClose(nil, 7),
		AppendStats(nil, 7, res),
		AppendError(nil, ErrCodeMalformed, "bad"),
		AppendSnapGet(nil, 7),
		AppendSnap(nil, 7, []byte("not a real snapshot blob")),
		AppendOpenSnap(nil, []byte("also not a real snapshot blob")),
		AppendBusy(nil, 7, 25),
	}
}

// TestWireTortureFragmentation streams every frame type through a
// faultnet transport that fragments pathologically in both directions —
// chunked writes on the sender, short reads on the receiver — and
// requires every frame to arrive intact. Framing must never depend on
// read/write boundaries.
func TestWireTortureFragmentation(t *testing.T) {
	frames := tortureFrames(t)
	cw, sr := net.Pipe()
	writer := faultnet.Wrap(cw, faultnet.Config{Seed: 7, ChunkWrites: true}, 0, nil)
	reader := faultnet.Wrap(sr, faultnet.Config{Seed: 11, ShortReads: true}, 1, nil)
	go func() {
		for _, f := range frames {
			if _, err := writer.Write(f); err != nil {
				return
			}
		}
		writer.Close()
	}()
	br := bufio.NewReader(reader)
	var buf []byte
	for i, f := range frames {
		typ, payload, b, err := ReadFrame(br, buf)
		buf = b
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != f[4] {
			t.Fatalf("frame %d: type %#02x, want %#02x", i, typ, f[4])
		}
		if want := f[5 : len(f)-4]; !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: payload %x, want %x", i, payload, want)
		}
	}
	if _, _, _, err := ReadFrame(br, buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestWireTortureBitFlips is the corruption acceptance pin: for every
// frame type, every single-bit flip anywhere in the frame must surface
// as an error — a flip that preserves the length prefix must be caught
// by the CRC as ErrCorrupt specifically. CRC-32 detects all single-bit
// errors, so there is no flip the reader may silently accept.
func TestWireTortureBitFlips(t *testing.T) {
	for _, frame := range tortureFrames(t) {
		for byteIdx := range frame {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), frame...)
				mut[byteIdx] ^= 1 << bit
				br := bufio.NewReader(bytes.NewReader(mut))
				_, _, _, err := ReadFrame(br, nil)
				if err == nil {
					t.Fatalf("type %#02x: flip of byte %d bit %d accepted", frame[4], byteIdx, bit)
				}
				if byteIdx >= 4 && !errors.Is(err, ErrCorrupt) {
					// Length prefix intact: the frame body arrives whole and
					// only the checksum can (and must) convict it.
					t.Fatalf("type %#02x: flip of byte %d bit %d: err = %v, want ErrCorrupt", frame[4], byteIdx, bit, err)
				}
				if !errors.Is(err, ErrProtocol) && !errors.Is(err, ErrIO) {
					t.Fatalf("type %#02x: flip of byte %d bit %d: unclassified err %v", frame[4], byteIdx, bit, err)
				}
			}
		}
	}
}

// TestEngineAdmission pins the admission-control contract: a full
// server sheds rather than queues, sheds are counted, and release
// restores capacity.
func TestEngineAdmission(t *testing.T) {
	eng := NewEngine(EngineConfig{MaxInflight: 2})
	if !eng.AcquireBatch() || !eng.AcquireBatch() {
		t.Fatal("admission rejected batches under the limit")
	}
	if eng.AcquireBatch() {
		t.Fatal("admission exceeded MaxInflight")
	}
	if got := eng.Snapshot().ShedBatches; got != 1 {
		t.Fatalf("ShedBatches = %d, want 1", got)
	}
	eng.ReleaseBatch()
	if !eng.AcquireBatch() {
		t.Fatal("released capacity not reusable")
	}
	eng.ReleaseBatch()
	eng.ReleaseBatch()

	// Negative limit admits nothing — the drain-for-tests configuration.
	closed := NewEngine(EngineConfig{MaxInflight: -1})
	if closed.AcquireBatch() {
		t.Fatal("negative MaxInflight admitted a batch")
	}
	// Zero is unlimited and keeps no inflight tally.
	open := NewEngine(EngineConfig{})
	for i := 0; i < 100; i++ {
		if !open.AcquireBatch() {
			t.Fatal("unlimited engine shed a batch")
		}
	}
	if snap := open.Snapshot(); snap.ShedBatches != 0 || snap.InflightBatches != 0 {
		t.Fatalf("unlimited engine tallied %+v", snap)
	}
}

// TestClientBusyRetry drives a client against a scripted server that
// sheds a few times before serving: the retry loop must absorb the
// sheds (honoring the server's retry-after hint), count them, and stop
// burning budget the moment the server accepts.
func TestClientBusyRetry(t *testing.T) {
	cc, sc := net.Pipe()
	defer cc.Close()
	const sheds = 3
	go func() {
		defer sc.Close()
		br := bufio.NewReader(sc)
		var out []byte
		// Open.
		if _, _, _, err := ReadFrame(br, nil); err != nil {
			return
		}
		out = AppendOpened(out[:0], 9, "16K", 0)
		sc.Write(out)
		// Shed the first batches, then serve.
		for i := 0; ; i++ {
			_, payload, _, err := ReadFrame(br, nil)
			if err != nil {
				return
			}
			if i < sheds {
				out = AppendBusy(out[:0], 9, 1)
				sc.Write(out)
				continue
			}
			_, records, err := DecodeBatch(payload, nil)
			if err != nil {
				return
			}
			cls := core.Classes()[0]
			grades := make([]byte, len(records))
			for j := range grades {
				grades[j] = EncodeGrade(true, cls, cls.Level())
			}
			out = AppendPredictions(out[:0], 9, grades)
			sc.Write(out)
			return
		}
	}()
	c := NewClient(cc)
	c.cfg = ClientConfig{BusyRetries: 8, BusyBackoff: time.Millisecond, Seed: 1}
	sess, err := c.OpenSpec("tage-16K")
	if err != nil {
		t.Fatal(err)
	}
	grades, err := sess.Predict(sampleBranches(4, 1))
	if err != nil {
		t.Fatalf("Predict after %d sheds: %v", sheds, err)
	}
	if len(grades) != 4 {
		t.Fatalf("%d grades, want 4", len(grades))
	}
	if got := c.BusyRetries(); got != sheds {
		t.Fatalf("BusyRetries = %d, want %d", got, sheds)
	}
}

// TestClientBusyBudgetExhausted pins the give-up leg: a server that
// never stops shedding must surface *BusyError (retryable) to the
// caller once the internal budget is spent — not loop forever.
func TestClientBusyBudgetExhausted(t *testing.T) {
	cc, sc := net.Pipe()
	defer cc.Close()
	go func() {
		defer sc.Close()
		br := bufio.NewReader(sc)
		var out []byte
		if _, _, _, err := ReadFrame(br, nil); err != nil {
			return
		}
		out = AppendOpened(out[:0], 9, "16K", 0)
		sc.Write(out)
		for {
			if _, _, _, err := ReadFrame(br, nil); err != nil {
				return
			}
			out = AppendBusy(out[:0], 9, 0)
			sc.Write(out)
		}
	}()
	c := NewClient(cc)
	c.cfg = ClientConfig{BusyRetries: 2, BusyBackoff: time.Microsecond, Seed: 1}
	sess, err := c.OpenSpec("tage-16K")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Predict(sampleBranches(4, 1))
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BusyError", err)
	}
	if !IsRetryable(err) {
		t.Fatal("exhausted busy budget must stay caller-retryable")
	}
	if got := c.BusyRetries(); got != 2 {
		t.Fatalf("BusyRetries = %d, want the budget of 2", got)
	}
}

// TestServerShedsUnderOverload saturates a MaxInflight=0-equivalent
// choke point: with admission closed (negative limit) every batch must
// come back FrameBusy without moving the session cursor, and reopening
// admission lets the same batch through.
func TestServerShedsUnderOverload(t *testing.T) {
	srv := startServer(t, Config{Engine: EngineConfig{MaxInflight: -1}})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.cfg.BusyRetries = -1 // surface the first shed, no internal retry
	sess, err := c.OpenSpec("tage-16K")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Predict(sampleBranches(8, 3))
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BusyError", err)
	}
	if be.Session != sess.ID() {
		t.Fatalf("busy for session %d, want %d", be.Session, sess.ID())
	}
	snap := srv.Engine().Snapshot()
	if snap.ShedBatches == 0 {
		t.Fatal("server shed nothing")
	}
	if snap.Branches != 0 {
		t.Fatalf("shed batch moved the cursor: %d branches served", snap.Branches)
	}
}

// TestServerEvictsSlowReader pins the mid-frame deadline: a peer that
// sends half a frame and stalls is evicted (connection closed, eviction
// counted) instead of parking a server goroutine forever. An idle
// connection with no partial frame in flight survives the same window.
func TestServerEvictsSlowReader(t *testing.T) {
	srv := startServer(t, Config{FrameTimeout: 50 * time.Millisecond})
	// Idle conn: no bytes at all — must NOT be evicted by FrameTimeout.
	idle, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	// Slow conn: half a frame, then silence.
	slow, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	frame := AppendClose(nil, 1)
	if _, err := slow.Write(frame[:len(frame)-2]); err != nil {
		t.Fatal(err)
	}
	// The server must hang up on the slow conn: the next read returns EOF
	// (or a reset) within a few deadline windows.
	slow.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := slow.Read(make([]byte, 1)); err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("slow peer not evicted: read err = %v", err)
	}
	if got := srv.slowEvicted.Load(); got != 1 {
		t.Fatalf("slowEvicted = %d, want 1", got)
	}
	// The idle conn is still serviceable.
	ic := NewClient(idle)
	if _, err := ic.OpenSpec("tage-16K"); err != nil {
		t.Fatalf("idle connection died with the slow one: %v", err)
	}
}

// TestChaosEndToEnd is the in-process twin of scripts/chaos_soak.sh: a
// real server behind a fault-injecting listener (corruption, drops,
// resets on every server-side conn), routed sessions replaying real
// workloads — and the tallies must still match an offline sim.Run bit
// for bit, because every fault either resyncs from the authoritative
// cursor or retries a batch the server never applied.
func TestChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak in -short mode")
	}
	srv := NewServer(Config{
		Engine:       EngineConfig{MaxInflight: 8},
		FrameTimeout: 2 * time.Second,
	})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fcfg := faultnet.Config{
		Seed:        1337,
		CorruptRate: 0.002,
		DropRate:    0.002,
		ResetRate:   0.002,
	}
	ln := faultnet.WrapListener(raw, fcfg, nil)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned: %v", err)
		}
	})
	for deadline := time.Now().Add(5 * time.Second); srv.Addr() == nil; {
		if time.Now().After(deadline) {
			t.Fatal("server never published its address")
		}
		time.Sleep(time.Millisecond)
	}

	r, err := NewRouter(RouterConfig{
		Nodes:            []string{srv.Addr().String()},
		MaxRetries:       100,
		RetryBackoff:     time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Millisecond,
		Seed:             1337,
	})
	if err != nil {
		t.Fatal(err)
	}

	specs := []struct {
		trace string
		spec  string
	}{
		{"INT-1", "tage-16K?mode=probabilistic"},
		{"MM-1", "gshare-64K"},
	}
	const (
		limit     = 150_000
		batchSize = 256
	)
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, sc := range specs {
		wg.Add(1)
		go func(i int, traceName, spec string) {
			defer wg.Done()
			tr, err := workload.ByName(traceName)
			if err != nil {
				errs[i] = err
				return
			}
			rs, err := r.Open(fmt.Sprintf("chaos/%s", traceName), OpenRequest{Spec: spec})
			if err != nil {
				errs[i] = fmt.Errorf("open %s: %w", traceName, err)
				return
			}
			res, err := rs.Replay(tr, limit, batchSize, nil)
			if err != nil {
				errs[i] = fmt.Errorf("replay %s: %w", traceName, err)
				return
			}
			sp, err := predictor.Parse(spec)
			if err != nil {
				errs[i] = err
				return
			}
			offline, err := sim.RunSpec(sp, tr, limit)
			if err != nil {
				errs[i] = err
				return
			}
			offline.Mode = res.Mode
			if res != offline {
				errs[i] = fmt.Errorf("%s: chaos replay %+v != offline %+v", traceName, res, offline)
			}
		}(i, sc.trace, sc.spec)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if total := ln.Stats().Total(); total == 0 {
		t.Fatal("fault injector injected nothing — the soak proved nothing")
	} else {
		t.Logf("survived %d injected faults (%s)", total, ln.Stats())
	}
	var recovered uint64
	for _, ns := range r.Stats() {
		recovered += ns.Retries + ns.Recoveries
	}
	if recovered == 0 {
		t.Fatal("router roll-up recorded no retries or recoveries despite injected faults")
	}
}
