package predictor_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/workload"
)

func TestRegistryListsFamilies(t *testing.T) {
	want := []string{"bimodal", "gshare", "jrs", "ltage", "ogehl", "perceptron", "tage"}
	got := predictor.FamilyNames()
	if len(got) != len(want) {
		t.Fatalf("FamilyNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FamilyNames() = %v, want %v", got, want)
		}
	}
	for _, f := range predictor.Families() {
		if f.Summary == "" || f.Paper == "" {
			t.Errorf("family %q missing summary/paper metadata", f.Name)
		}
	}
}

func TestBuildErrorsListValidChoices(t *testing.T) {
	if _, _, err := predictor.New("nosuch"); err == nil ||
		!strings.Contains(err.Error(), "tage") || !strings.Contains(err.Error(), "gshare") {
		t.Errorf("unknown family error should list registered families, got %v", err)
	}
	if _, _, err := predictor.New("tage-99K"); err == nil || !strings.Contains(err.Error(), "64K") {
		t.Errorf("unknown variant error should list variants, got %v", err)
	}
	if _, _, err := predictor.New("gshare-64K?bogus=1"); err == nil ||
		!strings.Contains(err.Error(), "log") {
		t.Errorf("unknown parameter error should list accepted keys, got %v", err)
	}
	if _, _, err := predictor.New("tage-64K?ctr=99"); err == nil {
		t.Error("out-of-range parameter accepted")
	}
	if _, _, err := predictor.New("tage-64K?seed=99999999999999999999999999"); err == nil {
		t.Error("overflowing parameter accepted")
	}
	if _, _, err := predictor.New("tage-custom"); err == nil {
		t.Error("custom variant without structure accepted")
	}
}

// TestEveryFamilyRunsEndToEnd builds every registered family from its
// bare default spec and drives it through the generic simulation driver:
// grades must be internally consistent (class.Level() == level), every
// branch predicted, and Reset must reproduce the identical cold-start
// run.
func TestEveryFamilyRunsEndToEnd(t *testing.T) {
	tr, err := workload.ByName("INT-2")
	if err != nil {
		t.Fatal(err)
	}
	const limit = 8_000
	for _, name := range predictor.FamilyNames() {
		t.Run(name, func(t *testing.T) {
			b, sp, err := predictor.New(name)
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			if b.Label() == "" {
				t.Fatal("empty label")
			}
			first, err := sim.Run(b, tr, limit)
			if err != nil {
				t.Fatal(err)
			}
			if first.Branches != limit || first.Total.Preds != limit {
				t.Fatalf("ran %d branches, tallied %d preds, want %d", first.Branches, first.Total.Preds, limit)
			}
			if first.Config != b.Label() {
				t.Fatalf("result labeled %q, backend label %q", first.Config, b.Label())
			}
			// Reset restores the cold state: a second run over the same
			// trace is bit-identical to the first.
			b.Reset()
			second, err := sim.Run(b, tr, limit)
			if err != nil {
				t.Fatal(err)
			}
			if first != second {
				t.Fatalf("Reset did not restore cold state:\nfirst  %+v\nsecond %+v", first, second)
			}
			_ = sp
		})
	}
}

// TestGradeConsistency drives every family and asserts the contract
// that the wire protocol relies on: the returned class always aggregates
// to the returned level.
func TestGradeConsistency(t *testing.T) {
	tr, err := workload.ByName("MM-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range predictor.FamilyNames() {
		b, _, err := predictor.New(name)
		if err != nil {
			t.Fatal(err)
		}
		r := tr.Open()
		for i := 0; i < 4_000; i++ {
			br, err := r.Next()
			if err != nil {
				break
			}
			_, class, level := b.Predict(br.PC)
			if class >= core.NumClasses || level >= core.NumLevels || class.Level() != level {
				t.Fatalf("%s: inconsistent grade class=%v level=%v", name, class, level)
			}
			b.Update(br.PC, br.Taken)
		}
	}
}

// TestTAGESpecRoundTrip pins the property the whole spec redesign leans
// on: Build(TAGESpec(cfg, opts)) constructs an estimator bit-identical
// to core.NewEstimator(cfg, opts) — for the paper configurations, for
// ablation-style structural mutations under an unchanged name, and for
// every option field.
func TestTAGESpecRoundTrip(t *testing.T) {
	tr, err := workload.ByName("SERV-1")
	if err != nil {
		t.Fatal(err)
	}
	const limit = 6_000
	type pair struct {
		name string
		cfg  tage.Config
		opts core.Options
	}
	cases := []pair{
		{"16K-standard", tage.Small16K(), core.Options{}},
		{"64K-prob", tage.Medium64K(), core.Options{Mode: core.ModeProbabilistic}},
		{"256K-adaptive", tage.Large256K(), core.Options{Mode: core.ModeAdaptive, TargetMKP: 10.12, AdaptiveWindow: 4096}},
		{"ctr4", func() pair { p := pair{cfg: tage.Small16K()}; p.cfg.CtrBits = 4; return p }().cfg, core.Options{}},
		{"noalt", func() pair { p := pair{cfg: tage.Small16K()}; p.cfg.DisableUseAltOnNA = true; return p }().cfg, core.Options{}},
		{"seed", func() pair { p := pair{cfg: tage.Small16K()}; p.cfg.Seed = 0xDEADBEEF; return p }().cfg, core.Options{}},
		{"window-disabled", tage.Small16K(), core.Options{Mode: core.ModeProbabilistic, BimWindow: -1}},
		{"denomlog", tage.Small16K(), core.Options{Mode: core.ModeProbabilistic, DenomLog: 5}},
		{"custom", tage.Config{
			Name: "probe", BimodalLog: 8, TaggedLog: 6, TagBits: 8,
			HistLengths: []int{4, 9, 20}, Seed: 42,
		}, core.Options{Mode: core.ModeProbabilistic}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp := predictor.TAGESpec(c.cfg, c.opts)
			// The spec is canonical: it reparses to itself.
			again, err := predictor.Parse(sp.String())
			if err != nil {
				t.Fatalf("TAGESpec %q does not reparse: %v", sp.String(), err)
			}
			if again != sp {
				t.Fatalf("TAGESpec not canonical: %q", sp.String())
			}
			direct, err := sim.RunConfig(c.cfg, c.opts, tr, limit)
			if err != nil {
				t.Fatal(err)
			}
			viaSpec, err := sim.RunSpec(sp, tr, limit)
			if err != nil {
				t.Fatal(err)
			}
			if direct != viaSpec {
				t.Fatalf("spec-built estimator diverged for %q:\ndirect %+v\nspec   %+v", sp.String(), direct, viaSpec)
			}
		})
	}
}

// TestTAGESpecInjective pins collision-proofness on the exact pairs
// that once collided in the experiments cache (PR 2) plus structural
// mutations under an unchanged name.
func TestTAGESpecInjective(t *testing.T) {
	base := tage.Small16K()
	adaptive := core.Options{Mode: core.ModeAdaptive, TargetMKP: 10, AdaptiveWindow: 4096}
	mutations := []struct {
		name string
		cfg  tage.Config
		opts core.Options
	}{
		{"base", base, adaptive},
		{"awindow", base, core.Options{Mode: core.ModeAdaptive, TargetMKP: 10, AdaptiveWindow: 16384}},
		{"mkp-10.12", base, core.Options{Mode: core.ModeAdaptive, TargetMKP: 10.12, AdaptiveWindow: 4096}},
		{"mkp-10.14", base, core.Options{Mode: core.ModeAdaptive, TargetMKP: 10.14, AdaptiveWindow: 4096}},
		{"ctr", func() tage.Config { c := base; c.CtrBits = 4; return c }(), adaptive},
		{"u", func() tage.Config { c := base; c.UBits = 3; return c }(), adaptive},
		{"seed", func() tage.Config { c := base; c.Seed = 1; return c }(), adaptive},
		{"noalt", func() tage.Config { c := base; c.DisableUseAltOnNA = true; return c }(), adaptive},
		{"hist", func() tage.Config { c := base; c.HistLengths = []int{3, 8, 21, 81}; return c }(), adaptive},
		{"window", base, func() core.Options { o := adaptive; o.BimWindow = 4; return o }()},
		{"denomlog", base, func() core.Options { o := adaptive; o.DenomLog = 6; return o }()},
	}
	seen := make(map[predictor.Spec]string)
	for _, m := range mutations {
		sp := predictor.TAGESpec(m.cfg, m.opts)
		if prev, dup := seen[sp]; dup {
			t.Fatalf("mutations %q and %q collide on spec %q", prev, m.name, sp.String())
		}
		seen[sp] = m.name
	}
}
