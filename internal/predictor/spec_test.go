package predictor

import (
	"strings"
	"testing"
)

func TestParseCanonicalRoundTrip(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
	}{
		{"tage", "tage"},
		{"tage-64K", "tage-64K"},
		{"tage-64K?mode=adaptive", "tage-64K?mode=adaptive"},
		{"tage-16K?mode=adaptive&mkp=4", "tage-16K?mkp=4&mode=adaptive"},
		{"tage-64K?window=-1", "tage-64K?window=-1"},
		{"gshare-64K", "gshare-64K"},
		{"gshare-64K?hist=13&log=15", "gshare-64K?hist=13&log=15"},
		{"perceptron?log=10&hist=31", "perceptron?hist=31&log=10"},
		{"ogehl", "ogehl"},
		{"jrs-16K?enhanced=true", "jrs-16K?enhanced=true"},
		{"tage-custom?hist=3,8,21,80&name=probe", "tage-custom?hist=3,8,21,80&name=probe"},
		{"x9-v1.2_a?k=v", "x9-v1.2_a?k=v"},
	}
	for _, c := range cases {
		sp, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := sp.String(); got != c.canonical {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.canonical)
		}
		again, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", sp.String(), err)
		}
		if again != sp {
			t.Errorf("parse -> canonical -> parse not identity for %q: %+v vs %+v", c.in, again, sp)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"-64K",
		"Tage",
		"9tage",
		"tage_",
		"tage-",
		"tage-64K?",
		"tage?",
		"tage?mode",
		"tage?=adaptive",
		"tage?mode=",
		"tage?mode=adaptive&mode=standard",
		"tage?mode=adaptive&&mkp=4",
		"tage?mode=adaptive&",
		"tage?MODE=adaptive",
		"tage?mode=ad aptive",
		"tage?mode=a=b",
		"tage?mode=%zz",
		"tage?mode=%2",
		strings.Repeat("a", MaxSpecLen+1),
	}
	for _, in := range bad {
		if sp, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted as %+v, want error", in, sp)
		}
	}
}

func TestSpecParamAccessors(t *testing.T) {
	sp := MustParse("tage-64K?mode=adaptive&mkp=4")
	if v, ok := sp.Param("mode"); !ok || v != "adaptive" {
		t.Fatalf("Param(mode) = %q, %v", v, ok)
	}
	if _, ok := sp.Param("window"); ok {
		t.Fatal("Param(window) should be unset")
	}
	up := sp.WithParam("mkp", "8")
	if up.String() != "tage-64K?mkp=8&mode=adaptive" {
		t.Fatalf("WithParam replace: %q", up.String())
	}
	del := sp.WithParam("mkp", "")
	if del.String() != "tage-64K?mode=adaptive" {
		t.Fatalf("WithParam delete: %q", del.String())
	}
	addFirst := MustParse("gshare").WithParam("log", "14")
	if addFirst.String() != "gshare?log=14" {
		t.Fatalf("WithParam add: %q", addFirst.String())
	}
	// The original is unchanged (Spec is a value).
	if sp.String() != "tage-64K?mkp=4&mode=adaptive" {
		t.Fatalf("WithParam mutated the receiver: %q", sp.String())
	}
}

func TestSpecValueEscaping(t *testing.T) {
	// Arbitrary values — structural grammar characters, spaces, control
	// and non-ASCII bytes — must all round-trip through String/Parse:
	// the canonical invariant holds for every Spec MakeSpec/WithParam
	// can produce, not just well-behaved values.
	for _, value := range []string{
		"a&b=c?d%e",
		"a b",
		"tab\there",
		"ctl\x01\x7f",
		"utf8-\xc3\xa9",
		"%zz-literal",
	} {
		sp, err := MakeSpec("tage", "custom", []Param{{Key: "name", Value: value}})
		if err != nil {
			t.Fatalf("MakeSpec(%q): %v", value, err)
		}
		again, err := Parse(sp.String())
		if err != nil {
			t.Fatalf("reparse %q (value %q): %v", sp.String(), value, err)
		}
		if again != sp {
			t.Fatalf("escaped roundtrip: %q vs %q", again.String(), sp.String())
		}
		if v, _ := again.Param("name"); v != value {
			t.Fatalf("unescaped value = %q, want %q", v, value)
		}
		viaWith := MustParse("tage-custom").WithParam("name", value)
		if got, _ := viaWith.Param("name"); got != value {
			t.Fatalf("WithParam roundtrip = %q, want %q", got, value)
		}
		if _, err := Parse(viaWith.String()); err != nil {
			t.Fatalf("WithParam spec %q does not reparse: %v", viaWith.String(), err)
		}
	}
}

func TestMakeSpecValidation(t *testing.T) {
	if _, err := MakeSpec("", "", nil); err == nil {
		t.Error("empty family accepted")
	}
	if _, err := MakeSpec("tage", "6 4K", nil); err == nil {
		t.Error("bad variant accepted")
	}
	if _, err := MakeSpec("tage", "", []Param{{Key: "k", Value: ""}}); err == nil {
		t.Error("empty value accepted")
	}
	if _, err := MakeSpec("tage", "", []Param{{Key: "k", Value: "1"}, {Key: "k", Value: "2"}}); err == nil {
		t.Error("duplicate key accepted")
	}
}
