package predictor

import "testing"

// FuzzParseSpec mirrors the wire-protocol FuzzFrame for the spec
// grammar: arbitrary strings through Parse must either error or produce
// a canonical Spec whose string form reparses to the identical value —
// never panic, never drift. Malformed parameter segments, huge numbers
// (the builders reject them later with errors, not panics), empty
// segments and embedded escapes are all covered by the seeds.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"tage",
		"tage-64K",
		"tage-64K?mode=adaptive&mkp=4",
		"tage-16K?mkp=10.125&mode=adaptive&awindow=16384",
		"tage-custom?hist=3,8,21,80&name=probe&seed=0xDEAD",
		"gshare-64K?hist=13",
		"perceptron?log=10&hist=31",
		"ogehl?tables=8",
		"jrs-16K?enhanced=true&threshold=15",
		"ltage-64K?llog=6",
		"tage?mode=",
		"tage?=x",
		"tage-64K?",
		"tage?a=1&a=2",
		"tage?a=1&&b=2",
		"tage?seed=99999999999999999999999999999",
		"tage?name=%26%3D%3F%25",
		"tage?name=%zz",
		"-64K",
		"?a=b",
		"a-b-c?d=e-f",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := Parse(in)
		if err != nil {
			return
		}
		canon := sp.String()
		if len(canon) > 2*MaxSpecLen {
			t.Fatalf("canonical form of %q blew up to %d bytes", in, len(canon))
		}
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical %q (from %q) does not reparse: %v", canon, in, err)
		}
		if again != sp {
			t.Fatalf("parse -> canonical -> parse not identity: %q -> %+v vs %+v", in, again, sp)
		}
		// Params must decode without panicking and re-encode canonically.
		if rebuilt, err := MakeSpec(sp.Family, sp.Variant, sp.Params()); err == nil && rebuilt != sp {
			t.Fatalf("params decode/re-encode drifted: %q vs %q", rebuilt.String(), canon)
		}
	})
}
