package predictor

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/tage"
)

// TAGESpec encodes a (tage.Config, core.Options) pair as a canonical
// tage-family Spec: the named paper configurations become their variant
// ("16K", "64K", "256K"), every field that deviates from the variant's
// value becomes its own losslessly formatted parameter, and
// configurations with an unknown name use the "custom" variant with
// every non-zero field spelled out.
//
// The encoding is injective — distinct (config, options) pairs always
// produce distinct Specs — which is what makes a Spec-keyed cache
// collision-proof by construction (the property the experiments runner
// relies on, replacing its hand-maintained key field list). It also
// round-trips: Build(TAGESpec(cfg, opts)) constructs the identical
// estimator core.NewEstimator(cfg, opts) does.
func TAGESpec(cfg tage.Config, opts core.Options) Spec {
	variant, base := tageVariantFor(cfg.Name)
	var params []Param
	add := func(key, value string) { params = append(params, Param{Key: key, Value: value}) }
	if cfg.Name != base.Name {
		add("name", cfg.Name)
	}
	if cfg.BimodalLog != base.BimodalLog {
		add("bl", strconv.FormatUint(uint64(cfg.BimodalLog), 10))
	}
	if cfg.TaggedLog != base.TaggedLog {
		add("tl", strconv.FormatUint(uint64(cfg.TaggedLog), 10))
	}
	if cfg.TagBits != base.TagBits {
		add("tag", strconv.FormatUint(uint64(cfg.TagBits), 10))
	}
	if !intsEqual(cfg.HistLengths, base.HistLengths) {
		add("hist", formatInts(cfg.HistLengths))
	}
	if cfg.CtrBits != base.CtrBits {
		add("ctr", strconv.FormatUint(uint64(cfg.CtrBits), 10))
	}
	if cfg.UBits != base.UBits {
		add("u", strconv.FormatUint(uint64(cfg.UBits), 10))
	}
	if cfg.PathBits != base.PathBits {
		add("path", strconv.FormatUint(uint64(cfg.PathBits), 10))
	}
	if cfg.UResetPeriod != base.UResetPeriod {
		add("urp", strconv.FormatUint(cfg.UResetPeriod, 10))
	}
	if cfg.Seed != base.Seed {
		add("seed", strconv.FormatUint(cfg.Seed, 10))
	}
	if cfg.DisableUseAltOnNA != base.DisableUseAltOnNA {
		add("noalt", strconv.FormatBool(cfg.DisableUseAltOnNA))
	}
	if opts.Mode != core.ModeStandard {
		add("mode", opts.Mode.String())
	}
	if opts.DenomLog != 0 {
		add("denomlog", strconv.FormatUint(uint64(opts.DenomLog), 10))
	}
	if opts.BimWindow != 0 {
		add("window", strconv.FormatInt(int64(opts.BimWindow), 10))
	}
	if opts.TargetMKP != 0 {
		add("mkp", strconv.FormatFloat(opts.TargetMKP, 'g', -1, 64))
	}
	if opts.AdaptiveWindow != 0 {
		add("awindow", strconv.FormatUint(opts.AdaptiveWindow, 10))
	}
	// Constructed directly rather than through MakeSpec: the encoding
	// above emits unique keys and a cache key must never fail. Sorting
	// matches the canonical order Parse produces.
	sp := Spec{Family: "tage", Variant: variant}
	sort.SliceStable(params, func(i, j int) bool { return params[i].Key < params[j].Key })
	sp.params = encodeParams(params)
	return sp
}

// tageVariantFor maps a configuration name onto its canonical variant
// and the variant's base configuration (zero Config for "custom").
func tageVariantFor(name string) (string, tage.Config) {
	switch name {
	case "16Kbits":
		return "16K", tage.Small16K()
	case "64Kbits":
		return "64K", tage.Medium64K()
	case "256Kbits":
		return "256K", tage.Large256K()
	default:
		return "custom", tage.Config{}
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func formatInts(v []int) string {
	var b strings.Builder
	for i, n := range v {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(n))
	}
	return b.String()
}
