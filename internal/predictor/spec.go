// Package predictor is the backend-agnostic estimator layer: a small
// Backend contract every predictor family in this repository satisfies
// (predict, train, reset, self-description), a string spec grammar that
// names a backend instance ("tage-64K?mode=adaptive&mkp=4",
// "gshare-64K", "perceptron"), and a registry that builds a Backend from
// a parsed Spec.
//
// The spec grammar is
//
//	spec    := family [ "-" variant ] [ "?" params ]
//	family  := lowercase letters and digits, starting with a letter
//	variant := letters, digits, '.', '_' and '-' (e.g. "64K")
//	params  := key "=" value { "&" key "=" value }
//
// A parsed Spec is canonical — parameters are sorted by key and
// duplicate keys are rejected — and comparable: two Specs are equal
// exactly when their canonical strings are equal, which is what lets
// callers key caches by Spec without hand-maintaining field lists.
// Parse(sp.String()) returns sp unchanged for every valid spec.
//
// Families, their variants and their parameters are documented by the
// registry (Families); unknown families, variants and parameter keys are
// build-time errors that list the valid choices.
package predictor

import (
	"fmt"
	"sort"
	"strings"
)

// MaxSpecLen bounds a spec string; longer inputs are rejected before any
// further parsing (the serve wire protocol carries specs verbatim, so
// the parser is exposed to remote input).
const MaxSpecLen = 256

// Param is one key=value spec parameter.
type Param struct {
	Key   string
	Value string
}

// Spec is the parsed, canonical form of a backend spec string. The zero
// Spec is invalid. Specs are comparable (usable as map keys) and two
// Specs compare equal exactly when they denote the same canonical spec
// string.
type Spec struct {
	// Family is the backend family name ("tage", "gshare", ...).
	Family string
	// Variant is the optional family-defined variant ("64K", ...).
	Variant string

	// params holds the canonically encoded parameters: sorted by key,
	// joined with '&', values escaped. Kept encoded so Spec stays
	// comparable.
	params string
}

// valueNeedsEscape reports whether a byte cannot travel verbatim in a
// parameter value: the grammar's structural characters, '%' itself, and
// anything outside printable ASCII (matching validRawValue, so every
// escaped value is a valid raw value and Parse(sp.String()) == sp holds
// for arbitrary values, not just well-behaved ones).
func valueNeedsEscape(c byte) bool {
	return c <= ' ' || c > '~' || c == '%' || c == '&' || c == '=' || c == '?'
}

const hexDigits = "0123456789ABCDEF"

// escapeValue makes a parameter value safe to embed in a spec string by
// %XX-escaping every byte valueNeedsEscape flags.
func escapeValue(v string) string {
	needs := false
	for i := 0; i < len(v); i++ {
		if valueNeedsEscape(v[i]) {
			needs = true
			break
		}
	}
	if !needs {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		c := v[i]
		if valueNeedsEscape(c) {
			b.WriteByte('%')
			b.WriteByte(hexDigits[c>>4])
			b.WriteByte(hexDigits[c&0xF])
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}

func unescapeValue(v string) (string, error) {
	if !strings.Contains(v, "%") {
		return v, nil
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] != '%' {
			b.WriteByte(v[i])
			continue
		}
		if i+2 >= len(v) {
			return "", fmt.Errorf("truncated %%-escape in value %q", v)
		}
		hi, ok1 := unhex(v[i+1])
		lo, ok2 := unhex(v[i+2])
		if !ok1 || !ok2 {
			return "", fmt.Errorf("bad %%-escape %q in value %q", v[i:i+3], v)
		}
		b.WriteByte(hi<<4 | lo)
		i += 2
	}
	return b.String(), nil
}

func validFamily(s string) bool {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validVariant(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return s != ""
}

func validParamKey(s string) bool { return validFamily(s) }

// validRawValue checks an escaped parameter value as it appears in the
// spec string: printable ASCII excluding the grammar's structural
// characters (which must travel escaped).
func validRawValue(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c > '~' || c == '&' || c == '=' || c == '?' {
			return false
		}
	}
	return true
}

// Parse parses a spec string into its canonical Spec. Malformed specs —
// empty or oversized input, bad family/variant/key syntax, empty
// segments, duplicate keys — return an error; Parse never panics.
// Family, variant and parameter keys are validated syntactically only:
// whether they exist is the registry's job (Build).
func Parse(spec string) (Spec, error) {
	if spec == "" {
		return Spec{}, fmt.Errorf("predictor: empty spec")
	}
	if len(spec) > MaxSpecLen {
		return Spec{}, fmt.Errorf("predictor: spec longer than %d bytes", MaxSpecLen)
	}
	head, rawParams, hasParams := strings.Cut(spec, "?")
	family, variant, hasVariant := strings.Cut(head, "-")
	if !validFamily(family) {
		return Spec{}, fmt.Errorf("predictor: invalid spec %q: family must be lowercase letters/digits starting with a letter", spec)
	}
	if hasVariant && !validVariant(variant) {
		return Spec{}, fmt.Errorf("predictor: invalid spec %q: bad variant %q", spec, variant)
	}
	sp := Spec{Family: family, Variant: variant}
	if !hasParams {
		return sp, nil
	}
	if rawParams == "" {
		return Spec{}, fmt.Errorf("predictor: invalid spec %q: empty parameter list after '?'", spec)
	}
	var params []Param
	for _, seg := range strings.Split(rawParams, "&") {
		key, val, ok := strings.Cut(seg, "=")
		if !ok || !validParamKey(key) || !validRawValue(val) {
			return Spec{}, fmt.Errorf("predictor: invalid spec %q: bad parameter %q (want key=value)", spec, seg)
		}
		unesc, err := unescapeValue(val)
		if err != nil {
			return Spec{}, fmt.Errorf("predictor: invalid spec %q: %v", spec, err)
		}
		params = append(params, Param{Key: key, Value: unesc})
	}
	sort.SliceStable(params, func(i, j int) bool { return params[i].Key < params[j].Key })
	for i := 1; i < len(params); i++ {
		if params[i].Key == params[i-1].Key {
			return Spec{}, fmt.Errorf("predictor: invalid spec %q: duplicate parameter %q", spec, params[i].Key)
		}
	}
	sp.params = encodeParams(params)
	return sp, nil
}

// MustParse is Parse for known-good literals (tests, tables); it panics
// on error.
func MustParse(spec string) Spec {
	sp, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return sp
}

func encodeParams(params []Param) string {
	var b strings.Builder
	for i, p := range params {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(p.Key)
		b.WriteByte('=')
		b.WriteString(escapeValue(p.Value))
	}
	return b.String()
}

// String returns the canonical spec string. Parse(sp.String()) == sp for
// every Spec produced by Parse or the Spec constructors.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Family)
	if s.Variant != "" {
		b.WriteByte('-')
		b.WriteString(s.Variant)
	}
	if s.params != "" {
		b.WriteByte('?')
		b.WriteString(s.params)
	}
	return b.String()
}

// Params returns the decoded parameters in canonical (key-sorted) order.
func (s Spec) Params() []Param {
	if s.params == "" {
		return nil
	}
	segs := strings.Split(s.params, "&")
	out := make([]Param, 0, len(segs))
	for _, seg := range segs {
		key, val, _ := strings.Cut(seg, "=")
		unesc, err := unescapeValue(val)
		if err != nil {
			// The encoded form is produced by this package; an undecodable
			// segment is a programming error, not an input error.
			panic(fmt.Sprintf("predictor: corrupt canonical params %q: %v", s.params, err))
		}
		out = append(out, Param{Key: key, Value: unesc})
	}
	return out
}

// Param returns the value of the named parameter and whether it is set.
func (s Spec) Param(key string) (string, bool) {
	for _, p := range s.Params() {
		if p.Key == key {
			return p.Value, true
		}
	}
	return "", false
}

// WithParam returns a copy of s with the parameter set (replacing any
// existing value); an empty value deletes the parameter. The result
// stays canonical.
func (s Spec) WithParam(key, value string) Spec {
	params := s.Params()
	out := params[:0]
	for _, p := range params {
		if p.Key != key {
			out = append(out, p)
		}
	}
	if value != "" {
		out = append(out, Param{Key: key, Value: value})
		sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	}
	s.params = encodeParams(out)
	return s
}

// MakeSpec builds a canonical Spec from parts, validating syntax exactly
// as Parse does.
func MakeSpec(family, variant string, params []Param) (Spec, error) {
	if !validFamily(family) {
		return Spec{}, fmt.Errorf("predictor: bad family %q", family)
	}
	if variant != "" && !validVariant(variant) {
		return Spec{}, fmt.Errorf("predictor: bad variant %q", variant)
	}
	sp := Spec{Family: family, Variant: variant}
	sorted := append([]Param(nil), params...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for i, p := range sorted {
		if !validParamKey(p.Key) {
			return Spec{}, fmt.Errorf("predictor: bad parameter key %q", p.Key)
		}
		if p.Value == "" {
			return Spec{}, fmt.Errorf("predictor: empty value for parameter %q", p.Key)
		}
		if i > 0 && p.Key == sorted[i-1].Key {
			return Spec{}, fmt.Errorf("predictor: duplicate parameter %q", p.Key)
		}
	}
	sp.params = encodeParams(sorted)
	if len(sp.String()) > MaxSpecLen {
		return Spec{}, fmt.Errorf("predictor: spec longer than %d bytes", MaxSpecLen)
	}
	return sp, nil
}
