package predictor

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/bimodal"
	"repro/internal/core"
	"repro/internal/gshare"
	"repro/internal/jrs"
	"repro/internal/looppred"
	"repro/internal/ogehl"
	"repro/internal/perceptron"
	"repro/internal/statecodec"
	"repro/internal/tage"
)

// The registered families. multipath and fetchgate are deliberately
// absent: they are front-end timing models consuming a Backend's grades,
// not predictors.
func init() {
	RegisterFamily(Family{
		Name:       "tage",
		Summary:    "TAGE + the paper's storage-free seven-class confidence estimator",
		Paper:      "Seznec & Michaud JILP 2006; confidence §5-§6 of the reproduced paper",
		Variants:   []string{"16K", "64K", "256K", "custom"},
		ParamsHelp: tageParamsHelp,
		Build:      buildTAGE,
	})
	RegisterFamily(Family{
		Name:       "gshare",
		Summary:    "McFarling gshare; counter-strength confidence (weak=low, saturated=high)",
		Paper:      "McFarling, DEC WRL TN-36 1993",
		Variants:   []string{"16K", "64K", "256K"},
		ParamsHelp: "log, hist",
		Build:      buildGshare,
	})
	RegisterFamily(Family{
		Name:       "bimodal",
		Summary:    "Smith 2-bit counters; the original storage-free confidence estimate",
		Paper:      "Smith, ISCA 1981 (confidence: §2.2 of the reproduced paper)",
		Variants:   []string{"16K", "64K", "256K"},
		ParamsHelp: "log",
		Build:      buildBimodal,
	})
	RegisterFamily(Family{
		Name:       "perceptron",
		Summary:    "global-history perceptron; |sum| vs θ self-confidence",
		Paper:      "Jiménez & Lin, HPCA 2001 (confidence: TR 02-14)",
		ParamsHelp: "log, hist",
		Build:      buildPerceptron,
	})
	RegisterFamily(Family{
		Name:       "ogehl",
		Summary:    "O-GEHL; |sum| vs update-threshold self-confidence",
		Paper:      "Seznec, ISCA 2005 (confidence: §2.2 of the reproduced paper)",
		ParamsHelp: "tables, log, ctr, minhist, maxhist",
		Build:      buildOGEHL,
	})
	RegisterFamily(Family{
		Name:       "jrs",
		Summary:    "gshare graded by JRS miss-distance counters (the storage-based baseline)",
		Paper:      "Jacobsen, Rotenberg & Smith, MICRO 1996; Grunwald et al., ISCA 1998",
		Variants:   []string{"16K", "64K", "256K"},
		ParamsHelp: "log, bits, threshold, hist, enhanced",
		Build:      buildJRS,
	})
	RegisterFamily(Family{
		Name:       "ltage",
		Summary:    "TAGE + L-TAGE loop predictor; TAGE classes, loop hits graded Stag",
		Paper:      "Seznec, JILP 2007",
		Variants:   []string{"16K", "64K", "256K"},
		ParamsHelp: "window, llog, ltag, maxtrip, lconf",
		Build:      buildLTAGE,
	})
}

func parseUint(s string) (uint64, error) { return strconv.ParseUint(s, 0, 64) }
func parseInt(s string) (int64, error)   { return strconv.ParseInt(s, 0, 64) }
func parseFloat(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
		return 0, fmt.Errorf("not a finite non-negative number")
	}
	return f, nil
}

func badVariant(family, variant string, valid []string) error {
	return fmt.Errorf("predictor: unknown %s variant %q (want one of %v, or none)", family, variant, valid)
}

// sizeLog maps the shared 16K/64K/256K storage-class variants onto a
// log2 table size for the 2-bit-counter families (2 bits per entry:
// 2^13 × 2 b = 16 Kbit and so on).
func sizeLog(variant string) (uint, error) {
	switch variant {
	case "16K":
		return 13, nil
	case "64K", "":
		return 15, nil
	case "256K":
		return 17, nil
	default:
		return 0, fmt.Errorf("unknown size variant %q (want 16K, 64K or 256K)", variant)
	}
}

const tageParamsHelp = "mode, mkp, denomlog, window, awindow, seed, name, bl, tl, tag, hist, ctr, u, path, urp, noalt"

// tageVariants maps the paper configuration names onto canonical spec
// variants (and back, in TAGESpec).
func tageBase(variant string) (tage.Config, error) {
	switch variant {
	case "":
		return tage.Medium64K(), nil
	case "custom":
		return tage.Config{}, nil
	default:
		cfg, err := tage.ConfigByName(variant)
		if err != nil {
			return tage.Config{}, badVariant("tage", variant, []string{"16K", "64K", "256K", "custom"})
		}
		return cfg, nil
	}
}

func buildTAGE(sp Spec) (Backend, error) {
	cfg, opts, err := tageConfig(sp)
	if err != nil {
		return nil, err
	}
	return core.NewEstimator(cfg, opts), nil
}

// tageConfig resolves a tage-family spec into the (Config, Options) pair
// core.NewEstimator takes — the single translation the builder, the
// CLIs' legacy flags and the experiments cache key all share.
func tageConfig(sp Spec) (tage.Config, core.Options, error) {
	cfg, err := tageBase(sp.Variant)
	if err != nil {
		return tage.Config{}, core.Options{}, err
	}
	p := newParams(sp)
	cfg.Name = p.stringP("name", cfg.Name)
	cfg.BimodalLog = uint(p.uintP("bl", uint64(cfg.BimodalLog), 24))
	cfg.TaggedLog = uint(p.uintP("tl", uint64(cfg.TaggedLog), 24))
	cfg.TagBits = uint(p.uintP("tag", uint64(cfg.TagBits), 16))
	cfg.HistLengths = p.intsP("hist", cfg.HistLengths)
	cfg.CtrBits = uint(p.uintP("ctr", uint64(cfg.CtrBits), 6))
	cfg.UBits = uint(p.uintP("u", uint64(cfg.UBits), 4))
	cfg.PathBits = uint(p.uintP("path", uint64(cfg.PathBits), 64))
	cfg.UResetPeriod = p.uintP("urp", cfg.UResetPeriod, 1<<40)
	cfg.Seed = p.uintP("seed", cfg.Seed, math.MaxUint64)
	cfg.DisableUseAltOnNA = p.boolP("noalt", cfg.DisableUseAltOnNA)

	var opts core.Options
	if m, ok := p.raw("mode"); ok {
		opts.Mode, err = core.ParseMode(m)
		if err != nil {
			p.fail("mode", m, "standard, probabilistic or adaptive")
		}
	}
	opts.DenomLog = uint(p.uintP("denomlog", 0, 62))
	opts.BimWindow = int(p.intP("window", 0, math.MinInt32, math.MaxInt32))
	opts.TargetMKP = p.floatP("mkp", 0)
	opts.AdaptiveWindow = p.uintP("awindow", 0, math.MaxUint64)
	if err := p.finish("tage", tageParamsHelp); err != nil {
		return tage.Config{}, core.Options{}, err
	}
	if err := cfg.Validate(); err != nil {
		return tage.Config{}, core.Options{}, fmt.Errorf("predictor: spec %q: %w", sp.String(), err)
	}
	return cfg, opts, nil
}

func buildGshare(sp Spec) (Backend, error) {
	defLog, err := sizeLog(sp.Variant)
	if err != nil {
		return nil, badVariant("gshare", sp.Variant, []string{"16K", "64K", "256K"})
	}
	p := newParams(sp)
	logSize := uint(p.uintP("log", uint64(defLog), 24))
	hist := uint(p.uintP("hist", uint64(logSize), 64))
	if err := p.finish("gshare", "log, hist"); err != nil {
		return nil, err
	}
	if logSize == 0 {
		return nil, fmt.Errorf("predictor: spec %q: log must be >= 1", sp.String())
	}
	label := sp.String()
	g := &graded{label: label, spec: sp}
	var pr *gshare.Predictor
	g.rebuild = func() { pr = gshare.New(logSize, hist) }
	g.rebuild()
	g.predict = func(pc uint64) (bool, core.Class, core.Level) {
		c := pr.Counter(pc)
		class, level := gradeSaturating(c.Weak())
		return c.Taken(), class, level
	}
	g.update = func(pc uint64, taken bool) { pr.Update(pc, taken) }
	g.save = func(dst []byte) []byte { return pr.AppendState(dst) }
	g.load = func(r *statecodec.Reader) error { return pr.RestoreState(r) }
	return g, nil
}

func buildBimodal(sp Spec) (Backend, error) {
	defLog, err := sizeLog(sp.Variant)
	if err != nil {
		return nil, badVariant("bimodal", sp.Variant, []string{"16K", "64K", "256K"})
	}
	p := newParams(sp)
	logSize := uint(p.uintP("log", uint64(defLog), 24))
	if err := p.finish("bimodal", "log"); err != nil {
		return nil, err
	}
	if logSize == 0 {
		return nil, fmt.Errorf("predictor: spec %q: log must be >= 1", sp.String())
	}
	g := &graded{label: sp.String(), spec: sp}
	var pr *bimodal.Predictor
	g.rebuild = func() { pr = bimodal.New(logSize) }
	g.rebuild()
	g.predict = func(pc uint64) (bool, core.Class, core.Level) {
		c := pr.Counter(pc)
		class, level := gradeSaturating(c.Weak())
		return c.Taken(), class, level
	}
	g.update = func(pc uint64, taken bool) { pr.Update(pc, taken) }
	g.save = func(dst []byte) []byte { return pr.AppendState(dst) }
	g.load = func(r *statecodec.Reader) error { return pr.RestoreState(r) }
	return g, nil
}

// gradeSaturating grades a 2-bit-counter prediction: Smith's original
// storage-free estimate — a weak counter is low confidence, a saturated
// one high.
func gradeSaturating(weak bool) (core.Class, core.Level) {
	if weak {
		return core.LowConfBim, core.Low
	}
	return core.HighConfBim, core.High
}

// gradeBinary grades a binary high/not-high self-confidence estimate.
func gradeBinary(high bool) (core.Class, core.Level) {
	if high {
		return core.HighConfBim, core.High
	}
	return core.LowConfBim, core.Low
}

func buildPerceptron(sp Spec) (Backend, error) {
	if sp.Variant != "" {
		return nil, badVariant("perceptron", sp.Variant, nil)
	}
	p := newParams(sp)
	logSize := uint(p.uintP("log", 10, 20))
	hist := int(p.intP("hist", 31, 1, 256))
	if err := p.finish("perceptron", "log, hist"); err != nil {
		return nil, err
	}
	if logSize == 0 {
		return nil, fmt.Errorf("predictor: spec %q: log must be >= 1", sp.String())
	}
	g := &graded{label: sp.String(), spec: sp}
	var pr *perceptron.Predictor
	g.rebuild = func() { pr = perceptron.New(logSize, hist) }
	g.rebuild()
	g.predict = func(pc uint64) (bool, core.Class, core.Level) {
		pred := pr.Predict(pc)
		class, level := gradeBinary(pr.HighConfidence())
		return pred, class, level
	}
	g.update = func(pc uint64, taken bool) { pr.Update(pc, taken) }
	g.save = func(dst []byte) []byte { return pr.AppendState(dst) }
	g.load = func(r *statecodec.Reader) error { return pr.RestoreState(r) }
	return g, nil
}

func buildOGEHL(sp Spec) (Backend, error) {
	if sp.Variant != "" {
		return nil, badVariant("ogehl", sp.Variant, nil)
	}
	cfg := ogehl.DefaultConfig()
	p := newParams(sp)
	cfg.NumTables = int(p.intP("tables", int64(cfg.NumTables), 2, 16))
	cfg.LogSize = uint(p.uintP("log", uint64(cfg.LogSize), 24))
	cfg.CtrBits = uint(p.uintP("ctr", uint64(cfg.CtrBits), 6))
	cfg.MinHist = int(p.intP("minhist", int64(cfg.MinHist), 1, 1<<20))
	cfg.MaxHist = int(p.intP("maxhist", int64(cfg.MaxHist), 1, 1<<20))
	if err := p.finish("ogehl", "tables, log, ctr, minhist, maxhist"); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("predictor: spec %q: %w", sp.String(), err)
	}
	g := &graded{label: sp.String(), spec: sp}
	var pr *ogehl.Predictor
	g.rebuild = func() { pr = ogehl.New(cfg) }
	g.rebuild()
	g.predict = func(pc uint64) (bool, core.Class, core.Level) {
		pred := pr.Predict(pc)
		class, level := gradeBinary(pr.HighConfidence())
		return pred, class, level
	}
	g.update = func(pc uint64, taken bool) { pr.Update(pc, taken) }
	g.save = func(dst []byte) []byte { return pr.AppendState(dst) }
	g.load = func(r *statecodec.Reader) error { return pr.RestoreState(r) }
	return g, nil
}

func buildJRS(sp Spec) (Backend, error) {
	defLog, err := sizeLog(sp.Variant)
	if err != nil {
		return nil, badVariant("jrs", sp.Variant, []string{"16K", "64K", "256K"})
	}
	p := newParams(sp)
	estLog := uint(p.uintP("log", 10, 24))
	bits := uint(p.uintP("bits", jrs.DefaultCounterBits, 8))
	threshold := uint8(p.uintP("threshold", jrs.DefaultThreshold, 255))
	hist := uint(p.uintP("hist", uint64(estLog), 64))
	enhanced := p.boolP("enhanced", false)
	if err := p.finish("jrs", "log, bits, threshold, hist, enhanced"); err != nil {
		return nil, err
	}
	if estLog == 0 || bits == 0 {
		return nil, fmt.Errorf("predictor: spec %q: log and bits must be >= 1", sp.String())
	}
	g := &graded{label: sp.String(), spec: sp}
	var (
		pr       *gshare.Predictor
		est      *jrs.Estimator
		lastPred bool
	)
	g.rebuild = func() {
		pr = gshare.New(defLog, defLog)
		est = jrs.New(estLog, bits, threshold, hist)
		if enhanced {
			est = est.Enhanced()
		}
	}
	g.rebuild()
	g.predict = func(pc uint64) (bool, core.Class, core.Level) {
		lastPred = pr.Predict(pc)
		class, level := gradeBinary(est.HighConfidence(pc, lastPred))
		return lastPred, class, level
	}
	g.update = func(pc uint64, taken bool) {
		est.Update(pc, lastPred, taken)
		pr.Update(pc, taken)
	}
	g.save = func(dst []byte) []byte {
		dst = pr.AppendState(dst)
		return est.AppendState(dst)
	}
	g.load = func(r *statecodec.Reader) error {
		if err := pr.RestoreState(r); err != nil {
			return err
		}
		return est.RestoreState(r)
	}
	return g, nil
}

func buildLTAGE(sp Spec) (Backend, error) {
	cfg, err := tageBase(sp.Variant)
	if err != nil || sp.Variant == "custom" {
		return nil, badVariant("ltage", sp.Variant, []string{"16K", "64K", "256K"})
	}
	loopCfg := looppred.DefaultConfig()
	p := newParams(sp)
	window := int(p.intP("window", 0, math.MinInt32, math.MaxInt32))
	loopCfg.LogSize = uint(p.uintP("llog", uint64(loopCfg.LogSize), 16))
	loopCfg.TagBits = uint(p.uintP("ltag", uint64(loopCfg.TagBits), 16))
	loopCfg.MaxTrip = uint16(p.uintP("maxtrip", uint64(loopCfg.MaxTrip), math.MaxUint16))
	loopCfg.ConfMax = uint8(p.uintP("lconf", uint64(loopCfg.ConfMax), 7))
	if err := p.finish("ltage", "window, llog, ltag, maxtrip, lconf"); err != nil {
		return nil, err
	}
	switch {
	case window < 0:
		window = 0
	case window == 0:
		window = core.DefaultBimWindow
	}
	g := &graded{label: sp.String(), spec: sp}
	var (
		lt  *looppred.LTAGE
		cls *core.Classifier
	)
	g.rebuild = func() {
		lt = looppred.NewLTAGE(cfg, loopCfg)
		cls = core.NewClassifierWindow(cfg, window)
	}
	g.rebuild()
	g.predict = func(pc uint64) (bool, core.Class, core.Level) {
		pred := lt.Predict(pc)
		if lt.UsedLoop() {
			// The loop predictor only predicts after ConfMax identical
			// trips under a non-negative WITHLOOP — the loop-predictor
			// analogue of a saturated provider.
			return pred, core.Stag, core.High
		}
		class := cls.Classify(lt.Observation())
		return pred, class, class.Level()
	}
	g.update = func(pc uint64, taken bool) {
		cls.Resolve(lt.Observation(), taken)
		lt.Update(pc, taken)
	}
	g.save = func(dst []byte) []byte {
		dst = lt.AppendState(dst)
		return cls.AppendState(dst)
	}
	g.load = func(r *statecodec.Reader) error {
		if err := lt.RestoreState(r); err != nil {
			return err
		}
		return cls.RestoreState(r)
	}
	return g, nil
}
