package predictor

import (
	"fmt"
	"sort"
	"strings"
)

// Family describes one registered backend family.
type Family struct {
	// Name is the family's spec name ("tage", "gshare", ...).
	Name string
	// Summary is a one-line description for listings and docs.
	Summary string
	// Paper cites the predictor's origin (reference or paper section),
	// rendered in the PERF.md backend table and `-list` output.
	Paper string
	// Variants lists the named variants the family accepts (empty when
	// the family takes no variant).
	Variants []string
	// ParamsHelp is a short human-readable list of accepted parameter
	// keys for error messages and listings.
	ParamsHelp string
	// Build constructs a backend from a parsed spec of this family.
	Build func(Spec) (Backend, error)
}

var registry = map[string]Family{}

// RegisterFamily adds a family to the registry. It panics on duplicate
// or syntactically invalid names — registration happens at package init,
// where a bad entry is a programming error.
func RegisterFamily(f Family) {
	if !validFamily(f.Name) {
		panic(fmt.Sprintf("predictor: invalid family name %q", f.Name))
	}
	if _, dup := registry[f.Name]; dup {
		panic(fmt.Sprintf("predictor: duplicate family %q", f.Name))
	}
	if f.Build == nil {
		panic(fmt.Sprintf("predictor: family %q has no builder", f.Name))
	}
	registry[f.Name] = f
}

// Families returns every registered family, sorted by name.
func Families() []Family {
	out := make([]Family, 0, len(registry))
	for _, f := range registry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyNames returns the sorted registered family names.
func FamilyNames() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupFamily returns the named family's registration.
func LookupFamily(name string) (Family, bool) {
	f, ok := registry[name]
	return f, ok
}

// Build constructs a backend from a parsed spec. Unknown families error
// with the list of registered names; unknown variants and parameters are
// reported by the family builder with its valid choices.
func Build(sp Spec) (Backend, error) {
	f, ok := registry[sp.Family]
	if !ok {
		return nil, fmt.Errorf("predictor: unknown backend family %q (registered: %s)",
			sp.Family, strings.Join(FamilyNames(), ", "))
	}
	return f.Build(sp)
}

// New parses a spec string and builds its backend, returning the
// canonical Spec alongside.
func New(spec string) (Backend, Spec, error) {
	sp, err := Parse(spec)
	if err != nil {
		return nil, Spec{}, err
	}
	b, err := Build(sp)
	if err != nil {
		return nil, Spec{}, err
	}
	return b, sp, nil
}

// params is the builder-side parameter reader: typed accessors consume
// keys, and finish() rejects any key the family did not consume — a typo
// in a spec is an error, never a silent default.
type params struct {
	sp   Spec
	used map[string]bool
	errs []string
}

func newParams(sp Spec) *params {
	return &params{sp: sp, used: make(map[string]bool)}
}

func (p *params) raw(key string) (string, bool) {
	v, ok := p.sp.Param(key)
	if ok {
		p.used[key] = true
	}
	return v, ok
}

func (p *params) fail(key, val, want string) {
	p.errs = append(p.errs, fmt.Sprintf("parameter %s=%q: want %s", key, val, want))
}

// uintP reads an unsigned integer parameter (base 10, or 0x-prefixed
// hex) bounded by max.
func (p *params) uintP(key string, def, max uint64) uint64 {
	v, ok := p.raw(key)
	if !ok {
		return def
	}
	n, err := parseUint(v)
	if err != nil || n > max {
		p.fail(key, v, fmt.Sprintf("an integer in [0, %d]", max))
		return def
	}
	return n
}

// intP reads a signed integer parameter in [min, max].
func (p *params) intP(key string, def, min, max int64) int64 {
	v, ok := p.raw(key)
	if !ok {
		return def
	}
	n, err := parseInt(v)
	if err != nil || n < min || n > max {
		p.fail(key, v, fmt.Sprintf("an integer in [%d, %d]", min, max))
		return def
	}
	return n
}

// floatP reads a finite non-negative float parameter.
func (p *params) floatP(key string, def float64) float64 {
	v, ok := p.raw(key)
	if !ok {
		return def
	}
	f, err := parseFloat(v)
	if err != nil {
		p.fail(key, v, "a finite non-negative number")
		return def
	}
	return f
}

// boolP reads a boolean parameter (true/false/1/0).
func (p *params) boolP(key string, def bool) bool {
	v, ok := p.raw(key)
	if !ok {
		return def
	}
	switch v {
	case "true", "1":
		return true
	case "false", "0":
		return false
	default:
		p.fail(key, v, "true or false")
		return def
	}
}

// stringP reads a free-form string parameter.
func (p *params) stringP(key, def string) string {
	v, ok := p.raw(key)
	if !ok {
		return def
	}
	return v
}

// intsP reads a comma-separated integer list parameter.
func (p *params) intsP(key string, def []int) []int {
	v, ok := p.raw(key)
	if !ok {
		return def
	}
	segs := strings.Split(v, ",")
	out := make([]int, 0, len(segs))
	for _, seg := range segs {
		n, err := parseInt(seg)
		if err != nil || n < -1<<30 || n > 1<<30 {
			p.fail(key, v, "a comma-separated integer list")
			return def
		}
		out = append(out, int(n))
	}
	return out
}

// finish validates that every parameter was consumed and returns the
// accumulated errors, listing the accepted keys on an unknown one.
func (p *params) finish(family string, accepted string) error {
	for _, param := range p.sp.Params() {
		if !p.used[param.Key] {
			p.errs = append(p.errs, fmt.Sprintf("unknown parameter %q (accepted: %s)", param.Key, accepted))
		}
	}
	if len(p.errs) == 0 {
		return nil
	}
	return fmt.Errorf("predictor: spec %q: %s", p.sp.String(), strings.Join(p.errs, "; "))
}
