package predictor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/core"
	"repro/internal/statecodec"
)

// SnapshotVersion is the current snapshot envelope format version. A
// restore rejects any other value: the codec makes no cross-version
// promises, it promises bit-identity within a version.
const SnapshotVersion = 1

// ErrSnapshot reports an unusable snapshot blob — truncated, corrupt,
// checksum-mismatched, or written by a different format version. It is
// a fatal (non-retryable) condition: retrying the same blob cannot
// succeed.
var ErrSnapshot = errors.New("predictor: invalid snapshot")

// Snapshotter extends Backend with state serialization. Every backend
// the registry builds implements it; AppendSnapshot refuses backends
// that do not.
//
// AppendState appends the backend's mutable state; RestoreState reads
// it back into a backend built from the same spec, after which the
// restored backend continues bit-identically to the snapshotted one.
// Both must only be called between a resolved Update and the next
// Predict — the cut points at which per-prediction scratch is dead.
type Snapshotter interface {
	Backend
	AppendState(dst []byte) []byte
	RestoreState(r *statecodec.Reader) error
}

// SnapshotSpec returns the canonical spec that rebuilds b — the recipe
// recorded in its snapshot envelope. Registry-built non-TAGE backends
// carry their spec; a *core.Estimator (registry-built or constructed
// directly) is reverse-mapped through TAGESpec.
func SnapshotSpec(b Backend) (Spec, error) {
	switch v := b.(type) {
	case interface{ SnapshotSpec() Spec }:
		return v.SnapshotSpec(), nil
	case *core.Estimator:
		return TAGESpec(v.Config(), v.Options()), nil
	}
	return Spec{}, fmt.Errorf("%w: backend %q has no spec", ErrSnapshot, b.Label())
}

// AppendSnapshot appends a versioned, checksummed snapshot of b to dst:
//
//	version byte | spec (uvarint length + string) |
//	state (uvarint length + bytes)               | CRC32-IEEE (LE32)
//
// The checksum covers everything before it. The spec is the canonical
// rebuild recipe, so the blob is self-contained: RestoreSnapshot needs
// nothing but the registry.
func AppendSnapshot(dst []byte, b Backend) ([]byte, error) {
	sn, ok := b.(Snapshotter)
	if !ok {
		return dst, fmt.Errorf("%w: backend %q does not support snapshots", ErrSnapshot, b.Label())
	}
	sp, err := SnapshotSpec(b)
	if err != nil {
		return dst, err
	}
	start := len(dst)
	dst = append(dst, SnapshotVersion)
	dst = statecodec.AppendBytes(dst, []byte(sp.String()))
	dst = statecodec.AppendBytes(dst, sn.AppendState(nil))
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc), nil
}

// DecodeSnapshot verifies blob's version and checksum and returns the
// recorded spec string and state payload (sub-slices of blob).
func DecodeSnapshot(blob []byte) (spec string, state []byte, err error) {
	if len(blob) < 5 {
		return "", nil, fmt.Errorf("%w: %d bytes", ErrSnapshot, len(blob))
	}
	body, sum := blob[:len(blob)-4], blob[len(blob)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(sum); got != want {
		return "", nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrSnapshot, got, want)
	}
	r := statecodec.NewReader(body)
	if v := r.Byte(); r.Err() == nil && v != SnapshotVersion {
		return "", nil, fmt.Errorf("%w: version %d, want %d", ErrSnapshot, v, SnapshotVersion)
	}
	specBytes := r.Blob()
	state = r.Blob()
	if err := r.Finish(); err != nil {
		return "", nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if len(specBytes) > MaxSpecLen {
		return "", nil, fmt.Errorf("%w: spec length %d", ErrSnapshot, len(specBytes))
	}
	return string(specBytes), state, nil
}

// RestoreSnapshot rebuilds a backend from a blob written by
// AppendSnapshot: parse the recorded spec, build a fresh instance
// through the registry, then restore the serialized state into it.
func RestoreSnapshot(blob []byte) (Backend, error) {
	spec, state, err := DecodeSnapshot(blob)
	if err != nil {
		return nil, err
	}
	sp, err := Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	b, err := Build(sp)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	sn, ok := b.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("%w: backend %q does not support snapshots", ErrSnapshot, b.Label())
	}
	r := statecodec.NewReader(state)
	if err := sn.RestoreState(r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshot, err)
	}
	return b, nil
}
