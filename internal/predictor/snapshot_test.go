package predictor_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/statecodec"
	"repro/internal/trace"
	"repro/internal/workload"
)

// appendCRC seals an envelope body with the trailing CRC32-IEEE word.
func appendCRC(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
}

// buildEnvelope assembles a snapshot blob from parts, bypassing
// AppendSnapshot so tests can construct inconsistent-but-sealed blobs.
func buildEnvelope(t *testing.T, spec string, state []byte) []byte {
	t.Helper()
	body := []byte{predictor.SnapshotVersion}
	body = statecodec.AppendBytes(body, []byte(spec))
	body = statecodec.AppendBytes(body, state)
	return appendCRC(body)
}

// snapshotFamilySpecs is one representative spec per registry family
// (the non-TAGE half of the bit-identity matrix, and the fuzz corpus).
var snapshotFamilySpecs = []string{
	"gshare-16K?hist=10",
	"bimodal-16K",
	"perceptron?log=8&hist=24",
	"ogehl?tables=4&log=8&maxhist=60",
	"jrs-16K?enhanced=true",
	"ltage-16K",
}

func collectBranches(tb testing.TB, name string, limit uint64) []trace.Branch {
	tb.Helper()
	tr, err := workload.ByName(name)
	if err != nil {
		tb.Fatal(err)
	}
	r := trace.Limit(tr, limit).Open()
	out := make([]trace.Branch, 0, limit)
	for {
		br, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, br)
	}
	return out
}

// runRange replicates sim.Run's per-branch tally sequence over a branch
// slice, so a run interrupted by a snapshot/restore cut can be compared
// field-for-field against the uninterrupted sim.Run result.
func runRange(b predictor.Backend, res *sim.Result, branches []trace.Branch) {
	for _, br := range branches {
		pred, class, _ := b.Predict(br.PC)
		miss := pred != br.Taken
		res.Total.Record(miss)
		res.Class[class].Record(miss)
		res.Branches++
		res.Instructions += uint64(br.Instr)
		b.Update(br.PC, br.Taken)
	}
}

// runWithCuts drives a fresh backend for spec over the branches,
// snapshotting and restoring at every cut index, and returns the final
// result tallied exactly as sim.Run tallies.
func runWithCuts(t *testing.T, spec, trName string, branches []trace.Branch, cuts []int) sim.Result {
	t.Helper()
	b, _, err := predictor.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Result{Trace: trName, Config: b.Label(), Mode: predictor.ModeOf(b)}
	prev := 0
	for _, cut := range cuts {
		runRange(b, &res, branches[prev:cut])
		prev = cut
		blob, err := predictor.AppendSnapshot(nil, b)
		if err != nil {
			t.Fatalf("AppendSnapshot at %d: %v", cut, err)
		}
		restored, err := predictor.RestoreSnapshot(blob)
		if err != nil {
			t.Fatalf("RestoreSnapshot at %d: %v", cut, err)
		}
		if restored.Label() != b.Label() {
			t.Fatalf("restored label %q, want %q", restored.Label(), b.Label())
		}
		b = restored
	}
	runRange(b, &res, branches[prev:])
	res.FinalProbability = predictor.SaturationProbabilityOf(b)
	return res
}

// TestSnapshotRestoreBitIdentity proves the tentpole contract: a backend
// snapshotted and restored at arbitrary branch indices finishes with a
// sim.Result equal to the uninterrupted run — for the full TAGE matrix
// (2 configs × 3 modes × 2 traces) and one configuration of every other
// registry family.
func TestSnapshotRestoreBitIdentity(t *testing.T) {
	const limit = 12_000
	traces := []string{"INT-1", "SERV-2"}
	branchesOf := map[string][]trace.Branch{}
	for _, tr := range traces {
		branchesOf[tr] = collectBranches(t, tr, limit)
	}

	type case_ struct {
		spec   string
		traces []string
	}
	var cases []case_
	for _, cfg := range []string{"16K", "64K"} {
		for _, mode := range []string{"standard", "probabilistic", "adaptive"} {
			cases = append(cases, case_{spec: "tage-" + cfg + "?mode=" + mode, traces: traces})
		}
	}
	for _, spec := range snapshotFamilySpecs {
		cases = append(cases, case_{spec: spec, traces: traces[:1]})
	}

	for i, c := range cases {
		for _, trName := range c.traces {
			branches := branchesOf[trName]
			tr, err := workload.ByName(trName)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := predictor.Parse(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			offline, err := sim.RunSpec(sp, trace.Limit(tr, limit), 0)
			if err != nil {
				t.Fatal(err)
			}
			// One mid-run cut at a case-dependent arbitrary index; the
			// first case also exercises the cold cut and back-to-back cuts.
			cuts := []int{1000 + (i*2711)%(len(branches)-2000)}
			if i == 0 {
				cuts = []int{0, cuts[0], cuts[0], len(branches) - 1}
			}
			got := runWithCuts(t, c.spec, trName, branches, cuts)
			if got != offline {
				t.Errorf("%s on %s: snapshot-cut result diverges\n got: %+v\nwant: %+v", c.spec, trName, got, offline)
			}
		}
	}
}

// TestSnapshotErrors checks that broken blobs fail cleanly and loudly.
func TestSnapshotErrors(t *testing.T) {
	b, _, err := predictor.New("gshare-16K")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := predictor.AppendSnapshot(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, broken []byte) {
		t.Helper()
		if _, err := predictor.RestoreSnapshot(broken); !errors.Is(err, predictor.ErrSnapshot) {
			t.Errorf("%s: error %v, want ErrSnapshot", name, err)
		}
	}
	check("empty", nil)
	check("truncated", blob[:len(blob)-5])
	flipped := bytes.Clone(blob)
	flipped[len(flipped)/2] ^= 0x40
	check("bitflip", flipped)

	// Version skew with a recomputed checksum must still be rejected.
	skewed := bytes.Clone(blob)
	skewed[0] = predictor.SnapshotVersion + 1
	skewed = reseal(skewed)
	check("version-skew", skewed)

	// A structurally valid envelope whose state belongs to a different
	// configuration must be rejected by the family codec.
	other, _, err := predictor.New("gshare-64K")
	if err != nil {
		t.Fatal(err)
	}
	otherBlob, err := predictor.AppendSnapshot(nil, other)
	if err != nil {
		t.Fatal(err)
	}
	// Swap in the larger predictor's state under the smaller spec by
	// decoding both and cross-wiring.
	spec, _, err := predictor.DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	_, otherState, err := predictor.DecodeSnapshot(otherBlob)
	if err != nil {
		t.Fatal(err)
	}
	crossed := buildEnvelope(t, spec, otherState)
	check("state-mismatch", crossed)
}

// reseal recomputes the trailing CRC32 so tests can tamper with the body
// and still reach the field decoders.
func reseal(blob []byte) []byte {
	body := blob[:len(blob)-4]
	out := bytes.Clone(body)
	return appendCRC(out)
}

func TestFuzzSnapshotSeedsRoundTrip(t *testing.T) {
	for _, spec := range append([]string{"tage-16K?mode=probabilistic"}, snapshotFamilySpecs...) {
		b, _, err := predictor.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := predictor.AppendSnapshot(nil, b)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := predictor.RestoreSnapshot(blob)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		again, err := predictor.AppendSnapshot(nil, restored)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, again) {
			t.Errorf("%s: snapshot not stable across restore", spec)
		}
	}
}

// FuzzSnapshot fuzzes the snapshot decoder: corrupt, truncated or
// version-skewed blobs must error cleanly (never panic), and any blob
// that restores must re-encode to a stable fixed point.
func FuzzSnapshot(f *testing.F) {
	for _, spec := range append([]string{"tage-16K?mode=probabilistic", "tage-16K?mode=adaptive"}, snapshotFamilySpecs...) {
		b, _, err := predictor.New(spec)
		if err != nil {
			f.Fatal(err)
		}
		// Seed both cold and lightly trained snapshots of every family.
		blob, err := predictor.AppendSnapshot(nil, b)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		for pc := uint64(0); pc < 64; pc++ {
			b.Predict(pc << 2)
			b.Update(pc<<2, pc%3 == 0)
		}
		trained, err := predictor.AppendSnapshot(nil, b)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(trained)
		f.Add(trained[:len(trained)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{predictor.SnapshotVersion})

	f.Fuzz(func(t *testing.T, blob []byte) {
		b, err := predictor.RestoreSnapshot(blob)
		if err != nil {
			if !errors.Is(err, predictor.ErrSnapshot) {
				t.Fatalf("non-ErrSnapshot failure: %v", err)
			}
			return
		}
		again, err := predictor.AppendSnapshot(nil, b)
		if err != nil {
			t.Fatalf("re-snapshot of restored backend: %v", err)
		}
		b2, err := predictor.RestoreSnapshot(again)
		if err != nil {
			t.Fatalf("restore of re-snapshot: %v", err)
		}
		final, err := predictor.AppendSnapshot(nil, b2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again, final) {
			t.Fatal("snapshot encoding is not a fixed point after restore")
		}
	})
}
