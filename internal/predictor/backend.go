package predictor

import (
	"repro/internal/core"
	"repro/internal/statecodec"
)

// Backend is the backend-agnostic estimator contract: one predictor
// instance that predicts, trains, and grades its own predictions with
// the repository's confidence taxonomy. Every predictor family in
// internal/ is available behind this interface through the registry, and
// every driver (sim, serve, the CLIs) accepts any Backend.
//
// Protocol: each Predict must be followed by exactly one Update for the
// same pc before the next Predict, exactly as the underlying predictors
// require. Backends are not safe for concurrent use; drive one branch
// stream per instance.
//
// Confidence grading: backends return one of the seven core.Class values
// plus its aggregate core.Level, and class.Level() always equals the
// returned level. The TAGE estimator grades with the paper's full
// seven-class taxonomy. Families with a binary self-confidence estimate
// (gshare, bimodal, perceptron, ogehl, jrs) grade through the
// bimodal-provider classes, which map one-to-one onto the levels:
// LowConfBim for low, MediumConfBim for medium, HighConfBim for high.
type Backend interface {
	// Predict returns the prediction for pc with its confidence grade.
	Predict(pc uint64) (pred bool, class core.Class, level core.Level)
	// Update trains the backend with the resolved direction of the most
	// recent Predict (same pc).
	Update(pc uint64, taken bool)
	// Reset restores the backend to its initial (cold) state, as if
	// freshly built from its spec.
	Reset()
	// Label returns the canonical description of the instance: the
	// canonical spec string for registry-built backends, the
	// configuration name for directly constructed TAGE estimators.
	// Results and metrics are keyed by this label.
	Label() string
}

// ModeOf returns the automaton mode a backend reports, or
// core.ModeStandard for backends without a mode (every non-TAGE family).
func ModeOf(b Backend) core.AutomatonMode {
	if m, ok := b.(interface{ Mode() core.AutomatonMode }); ok {
		return m.Mode()
	}
	return core.ModeStandard
}

// SaturationProbabilityOf returns the backend's current saturation
// probability, or 1 for backends without a probabilistic automaton —
// the same value a ModeStandard TAGE estimator reports.
//repro:deterministic
func SaturationProbabilityOf(b Backend) float64 {
	if p, ok := b.(interface{ SaturationProbability() float64 }); ok {
		return p.SaturationProbability()
	}
	return 1
}

// graded is the generic Backend adapter for families with a binary (or
// three-way) self-confidence estimate: predict and grade are supplied by
// closures over the underlying predictor, and Reset rebuilds the
// predictor from its spec through the registry.
type graded struct {
	label   string                                         //repro:derived rebuild recipe, fixed at registration
	spec    Spec                                           //repro:derived rebuild recipe, fixed at registration
	predict func(pc uint64) (bool, core.Class, core.Level) //repro:derived closure over the predictor; state lives behind save/load
	update  func(pc uint64, taken bool)                    //repro:derived closure over the predictor; state lives behind save/load
	rebuild func()                                         //repro:derived closure over the predictor; state lives behind save/load
	save    func(dst []byte) []byte
	load    func(r *statecodec.Reader) error
}

func (g *graded) Predict(pc uint64) (bool, core.Class, core.Level) { return g.predict(pc) }
func (g *graded) Update(pc uint64, taken bool)                     { g.update(pc, taken) }
func (g *graded) Reset()                                           { g.rebuild() }
func (g *graded) Label() string                                    { return g.label }

// SnapshotSpec returns the canonical spec the backend was built from —
// the rebuild recipe a snapshot envelope records.
func (g *graded) SnapshotSpec() Spec { return g.spec }

// AppendState implements Snapshotter through the family's save closure.
func (g *graded) AppendState(dst []byte) []byte { return g.save(dst) }

// RestoreState implements Snapshotter through the family's load closure.
func (g *graded) RestoreState(r *statecodec.Reader) error { return g.load(r) }

// levelClass maps a confidence level onto its bimodal-provider class,
// the generic grading buckets (see the Backend doc).
func levelClass(l core.Level) core.Class {
	switch l {
	case core.Low:
		return core.LowConfBim
	case core.Medium:
		return core.MediumConfBim
	default:
		return core.HighConfBim
	}
}
