package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: HdrHistogram-style log-linear. Values below
// histSubs nanoseconds get exact unit buckets; above that, each power
// of two splits into histSubs sub-buckets, so a bucket [lo, hi] always
// has (hi+1)/lo = (9+sub)/(8+sub) <= 9/8 — reading any quantile as the
// bucket's upper bound overestimates by at most 12.5% of the true
// value, with a fixed 4KB footprint regardless of sample count.
const (
	histSubBits = 3
	histSubs    = 1 << histSubBits

	// NumBuckets covers the full uint64 nanosecond range: histSubs
	// exact buckets plus histSubs sub-buckets for each of the 61
	// octaves from bits.Len64 = 4 through 64.
	NumBuckets = (64 - histSubBits + 1) * histSubs
)

// Histogram is a fixed-bucket log-scale duration histogram. Observe is
// wait-free (three atomic adds, no allocation, no locks) and safe for
// any number of concurrent writers; readers (Quantile, Count, the
// registry's exposition) see a possibly-torn but monotonically catching
// up view, which is the usual Prometheus scrape contract. The zero
// value is ready to use.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // nanoseconds
}

// bucketIndex maps a nanosecond value to its bucket.
//
//repro:hotpath
func bucketIndex(v uint64) int {
	if v < histSubs {
		return int(v)
	}
	n := bits.Len64(v) // >= histSubBits+1
	sub := int((v >> uint(n-1-histSubBits)) & (histSubs - 1))
	return (n-histSubBits)*histSubs + sub
}

// BucketBound returns the largest value mapping to bucket i — the
// inclusive upper bound, which is also what Quantile reports so the
// estimate always errs high (a latency SLO read from the histogram is
// conservative).
//repro:deterministic
func BucketBound(i int) uint64 {
	if i < histSubs {
		return uint64(i)
	}
	shift := uint(i/histSubs - 1)
	return (uint64(histSubs+i%histSubs+1) << shift) - 1
}

// Observe records one duration. Negative durations clamp to zero.
//
//repro:hotpath
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.ObserveValue(uint64(d))
}

// ObserveValue records one raw nanosecond value.
//
//repro:hotpath
func (h *Histogram) ObserveValue(v uint64) {
	// bucketIndex's maximum is exactly NumBuckets-1 (v = MaxUint64 hits
	// the last sub-bucket of the top octave), so the clamp never fires;
	// it exists to hand the compiler a provable bound and drop the bounds
	// check from the hot atomic add.
	i := min(uint(bucketIndex(v)), NumBuckets-1)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Merge adds every bucket of other into h. Safe against concurrent
// Observe on either side; the merged view is a snapshot-free sum, so
// observations racing with the merge land in exactly one of the two.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range other.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// snapshot copies the bucket counts and returns their total. Summing
// the copied buckets (rather than loading h.count) keeps the quantile
// walk internally consistent under concurrent writers.
//repro:deterministic
func (h *Histogram) snapshot(buckets *[NumBuckets]uint64) (total uint64) {
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		total += buckets[i]
	}
	return total
}

// Quantile returns the upper bound of the bucket containing the p-th
// quantile (p in [0, 1]), or 0 for an empty histogram. The estimate is
// at most 12.5% above the true value (exact below 8ns).
func (h *Histogram) Quantile(p float64) time.Duration {
	var buckets [NumBuckets]uint64
	total := h.snapshot(&buckets)
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	} else if rank > total {
		rank = total
	}
	var cum uint64
	for i := range buckets {
		cum += buckets[i]
		if cum >= rank {
			return time.Duration(BucketBound(i))
		}
	}
	return time.Duration(BucketBound(NumBuckets - 1))
}
