package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Problem is one exposition-format violation found by Lint.
type Problem struct {
	Line int // 1-based; 0 for whole-document problems
	Msg  string
}

func (p Problem) String() string {
	return fmt.Sprintf("line %d: %s", p.Line, p.Msg)
}

// histSample is one _bucket/_sum/_count sample attributed to a
// histogram family, grouped by its labels minus le.
type histSeries struct {
	line    int
	buckets []histBucket
	sum     *float64
	count   *float64
}

type histBucket struct {
	le   float64
	cum  float64
	line int
}

// Lint validates Prometheus text exposition format 0.0.4: line syntax,
// name and label grammar, value parsing, TYPE placement and uniqueness,
// duplicate series, and histogram-family invariants (cumulative
// non-decreasing buckets, strictly increasing le, a closing +Inf bucket
// that equals _count, a _sum). It returns every problem found, nil for
// a clean document.
func Lint(data []byte) []Problem {
	var probs []Problem
	add := func(line int, format string, args ...any) {
		probs = append(probs, Problem{Line: line, Msg: fmt.Sprintf(format, args...)})
	}

	if len(data) > 0 && data[len(data)-1] != '\n' {
		add(0, "document does not end in a newline")
	}

	types := map[string]string{}                 // family -> TYPE
	helps := map[string]bool{}                   // family -> HELP seen
	sampled := map[string]int{}                  // family (base-resolved) -> first sample line
	series := map[string]int{}                   // name+labels -> first line
	hists := map[string]map[string]*histSeries{} // family -> labelKey -> series

	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimLeft(rest, " ")
			switch {
			case strings.HasPrefix(rest, "HELP "):
				fields := strings.SplitN(rest[len("HELP "):], " ", 2)
				name := fields[0]
				if !validName(name) {
					add(ln, "HELP for invalid metric name %q", name)
					continue
				}
				if helps[name] {
					add(ln, "second HELP line for %q", name)
				}
				helps[name] = true
				if l, ok := sampled[name]; ok {
					add(ln, "HELP for %q after its first sample (line %d)", name, l)
				}
			case strings.HasPrefix(rest, "TYPE "):
				fields := strings.Fields(rest[len("TYPE "):])
				if len(fields) != 2 {
					add(ln, "malformed TYPE line")
					continue
				}
				name, typ := fields[0], fields[1]
				if !validName(name) {
					add(ln, "TYPE for invalid metric name %q", name)
					continue
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					add(ln, "unknown metric type %q for %q", typ, name)
					continue
				}
				if _, ok := types[name]; ok {
					add(ln, "second TYPE line for %q", name)
					continue
				}
				if l, ok := sampled[name]; ok {
					add(ln, "TYPE for %q after its first sample (line %d)", name, l)
				}
				types[name] = typ
				if typ == "histogram" {
					hists[name] = map[string]*histSeries{}
				}
			}
			// Other comments are free-form.
			continue
		}

		name, labels, labelKey, value, perr := parseSample(line)
		if perr != "" {
			add(ln, "%s", perr)
			continue
		}
		family := baseFamily(name, types)
		if _, ok := sampled[family]; !ok {
			sampled[family] = ln
		}
		key := name + "{" + labelKey + "}"
		if prev, ok := series[key]; ok {
			add(ln, "duplicate sample %s (first at line %d)", key, prev)
			continue
		}
		series[key] = ln

		if hs, ok := hists[family]; ok && family != name {
			le, hasLe := labels["le"]
			group := labelKeyWithout(labels, "le")
			s := hs[group]
			if s == nil {
				s = &histSeries{line: ln}
				hs[group] = s
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !hasLe {
					add(ln, "histogram bucket %s has no le label", name)
					continue
				}
				lev, err := strconv.ParseFloat(le, 64)
				if err != nil {
					add(ln, "histogram bucket le=%q is not a float", le)
					continue
				}
				s.buckets = append(s.buckets, histBucket{le: lev, cum: value, line: ln})
			case strings.HasSuffix(name, "_sum"):
				v := value
				s.sum = &v
			case strings.HasSuffix(name, "_count"):
				v := value
				s.count = &v
			}
		}
	}

	// Histogram-family invariants.
	var fams []string
	for fam := range hists {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		groups := hists[fam]
		if len(groups) == 0 {
			add(0, "histogram %q has a TYPE line but no samples", fam)
			continue
		}
		for _, s := range groups {
			if len(s.buckets) == 0 {
				add(s.line, "histogram %q series has no _bucket samples", fam)
				continue
			}
			for i := 1; i < len(s.buckets); i++ {
				if s.buckets[i].le <= s.buckets[i-1].le {
					add(s.buckets[i].line, "histogram %q buckets not in increasing le order", fam)
				}
				if s.buckets[i].cum < s.buckets[i-1].cum {
					add(s.buckets[i].line, "histogram %q cumulative bucket counts decrease", fam)
				}
			}
			last := s.buckets[len(s.buckets)-1]
			if !math.IsInf(last.le, 1) {
				add(last.line, "histogram %q is missing the le=\"+Inf\" bucket", fam)
			} else if s.count != nil && last.cum != *s.count {
				add(last.line, "histogram %q +Inf bucket %v != _count %v", fam, last.cum, *s.count)
			}
			if s.count == nil {
				add(s.line, "histogram %q series has no _count sample", fam)
			}
			if s.sum == nil {
				add(s.line, "histogram %q series has no _sum sample", fam)
			}
		}
	}

	sort.Slice(probs, func(i, j int) bool { return probs[i].Line < probs[j].Line })
	return probs
}

// baseFamily strips a recognized histogram/summary suffix when the
// stripped name has a matching TYPE declaration.
func baseFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
// It returns the parsed labels, a canonical sorted labelKey for
// duplicate detection, and a non-empty error description on failure.
func parseSample(line string) (name string, labels map[string]string, labelKey string, value float64, errMsg string) {
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name = rest[:i]
	if !validName(name) {
		return "", nil, "", 0, fmt.Sprintf("invalid metric name %q", name)
	}
	rest = rest[i:]
	labels = map[string]string{}
	if strings.HasPrefix(rest, "{") {
		body, tail, msg := splitLabels(rest[1:])
		if msg != "" {
			return "", nil, "", 0, msg
		}
		labels = body
		rest = tail
	}
	rest = strings.TrimLeft(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil, "", 0, "sample has no value"
	}
	if len(fields) > 2 {
		return "", nil, "", 0, "trailing garbage after value and timestamp"
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, "", 0, fmt.Sprintf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, "", 0, fmt.Sprintf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, labelKeyWithout(labels, ""), v, ""
}

// splitLabels parses `name="value",...}` (the body after the opening
// brace) and returns the remainder after the closing brace.
func splitLabels(s string) (labels map[string]string, rest string, errMsg string) {
	labels = map[string]string{}
	for {
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], ""
		}
		i := 0
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i == len(s) {
			return nil, "", "unterminated label set"
		}
		lname := strings.TrimSpace(s[:i])
		if !validLabelName(lname) {
			return nil, "", fmt.Sprintf("invalid label name %q", lname)
		}
		s = s[i+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Sprintf("label %q value is not quoted", lname)
		}
		s = s[1:]
		var val strings.Builder
		for {
			if len(s) == 0 {
				return nil, "", fmt.Sprintf("unterminated value for label %q", lname)
			}
			c := s[0]
			if c == '"' {
				s = s[1:]
				break
			}
			if c == '\\' {
				if len(s) < 2 {
					return nil, "", fmt.Sprintf("dangling escape in label %q", lname)
				}
				switch s[1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Sprintf("bad escape \\%c in label %q", s[1], lname)
				}
				s = s[2:]
				continue
			}
			val.WriteByte(c)
			s = s[1:]
		}
		if _, dup := labels[lname]; dup {
			return nil, "", fmt.Sprintf("duplicate label %q", lname)
		}
		labels[lname] = val.String()
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], ""
		}
		return nil, "", "labels not separated by a comma"
	}
}

// validLabelName is the Prometheus label-name grammar (no colons).
func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// labelKeyWithout renders labels (minus the named one) as a canonical
// sorted key for grouping and duplicate detection.
func labelKeyWithout(labels map[string]string, drop string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == drop {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(labels[k]))
	}
	return b.String()
}
