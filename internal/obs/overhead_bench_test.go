package obs

import (
	"testing"
	"time"
)

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.ObserveValue(uint64(i) * 977)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkFlightRecorderRecord(b *testing.B) {
	r := NewFlightRecorder(256)
	ev := Event{UnixNano: 1, Kind: EvBatch, Conn: 1, Session: 2, Key: "k", Backend: "b", Frame: 3, Batch: 512, QueueNS: 1, ServeNS: 2, FlushNS: 3}
	for i := 0; i < b.N; i++ {
		r.Record(ev)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := 0; i < 100000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}
