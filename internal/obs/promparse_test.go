package obs

import (
	"strings"
	"testing"
)

func lintProblems(t *testing.T, doc string) []Problem {
	t.Helper()
	return Lint([]byte(doc))
}

func wantProblem(t *testing.T, doc, substr string) {
	t.Helper()
	probs := lintProblems(t, doc)
	for _, p := range probs {
		if strings.Contains(p.Msg, substr) {
			return
		}
	}
	t.Errorf("no problem containing %q in %v for:\n%s", substr, probs, doc)
}

// TestLintClean accepts a well-formed document exercising every shape
// the registry emits.
func TestLintClean(t *testing.T) {
	doc := `# HELP x_total Requests.
# TYPE x_total counter
x_total 12
# TYPE x_gauge gauge
x_gauge -3.5
# a free-form comment
x_untyped{a="1",b="two \"quoted\" \\ thing\n"} 4.5e-3 1700000000000
# HELP h_seconds Latency.
# TYPE h_seconds histogram
h_seconds_bucket{le="0.001"} 1
h_seconds_bucket{le="0.01"} 3
h_seconds_bucket{le="+Inf"} 4
h_seconds_sum 0.25
h_seconds_count 4
`
	if probs := lintProblems(t, doc); len(probs) != 0 {
		t.Fatalf("clean document flagged: %v", probs)
	}
}

// TestLintViolations pins one problem per rule.
func TestLintViolations(t *testing.T) {
	wantProblem(t, "x_total 1", "does not end in a newline")
	wantProblem(t, "9bad 1\n", "invalid metric name")
	wantProblem(t, "x{9l=\"v\"} 1\n", "invalid label name")
	wantProblem(t, "x{l=\"v} 1\n", "unterminated value")
	wantProblem(t, "x{l=\"\\q\"} 1\n", "bad escape")
	wantProblem(t, "x{l=\"a\" m=\"b\"} 1\n", "not separated by a comma")
	wantProblem(t, "x{l=\"a\",l=\"b\"} 1\n", "duplicate label")
	wantProblem(t, "x nope\n", "bad sample value")
	wantProblem(t, "x 1 2 3\n", "trailing garbage")
	wantProblem(t, "x 1 t\n", "bad timestamp")
	wantProblem(t, "x 1\nx 1\n", "duplicate sample")
	wantProblem(t, "# TYPE x counter\n# TYPE x counter\nx 1\n", "second TYPE")
	wantProblem(t, "# HELP x a\n# HELP x b\nx 1\n", "second HELP")
	wantProblem(t, "# TYPE x wat\nx 1\n", "unknown metric type")
	wantProblem(t, "x 1\n# TYPE x counter\n", "after its first sample")
	wantProblem(t, "# TYPE h histogram\n", "no samples")
	wantProblem(t, "# TYPE h histogram\nh_sum 1\nh_count 1\n", "no _bucket samples")
	wantProblem(t,
		"# TYPE h histogram\nh_bucket{le=\"0.5\"} 1\nh_sum 1\nh_count 1\n",
		`missing the le="+Inf"`)
	wantProblem(t,
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"0.5\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"not in increasing le order")
	wantProblem(t,
		"# TYPE h histogram\nh_bucket{le=\"0.5\"} 3\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"cumulative bucket counts decrease")
	wantProblem(t,
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"!= _count")
	wantProblem(t,
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"no _sum")
	wantProblem(t,
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"no _count")
	wantProblem(t, "x{le 1\n", "unterminated label set")
	wantProblem(t, "x{le=\"oops\"\n", "not separated by a comma")
}

// TestLintDuplicateDistinguishesLabels makes sure distinct label sets
// are not flagged as duplicates, regardless of label order.
func TestLintDuplicateDistinguishesLabels(t *testing.T) {
	doc := "x{a=\"1\",b=\"2\"} 1\nx{a=\"2\",b=\"1\"} 1\n"
	if probs := lintProblems(t, doc); len(probs) != 0 {
		t.Fatalf("distinct series flagged: %v", probs)
	}
	// Same set, different order: duplicate.
	wantProblem(t, "x{a=\"1\",b=\"2\"} 1\nx{b=\"2\",a=\"1\"} 1\n", "duplicate sample")
}
