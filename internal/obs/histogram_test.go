package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestBucketBoundaryRoundTrip pins the bucket scheme: every bucket's
// upper bound maps back to that bucket, and the next nanosecond maps to
// the next bucket — no gaps, no overlaps, across the whole uint64
// range.
func TestBucketBoundaryRoundTrip(t *testing.T) {
	for i := 0; i < NumBuckets; i++ {
		hi := BucketBound(i)
		if got := bucketIndex(hi); got != i {
			t.Fatalf("bucketIndex(BucketBound(%d)=%d) = %d", i, hi, got)
		}
		if i+1 < NumBuckets {
			if got := bucketIndex(hi + 1); got != i+1 {
				t.Fatalf("bucketIndex(%d+1) = %d, want %d", hi, got, i+1)
			}
			if next := BucketBound(i + 1); next <= hi {
				t.Fatalf("BucketBound(%d)=%d not above BucketBound(%d)=%d", i+1, next, i, hi)
			}
		}
	}
	// The top bucket's bound is the largest representable value.
	if got := BucketBound(NumBuckets - 1); got != ^uint64(0) {
		t.Fatalf("top bucket bound = %d, want MaxUint64", got)
	}
	// Small values are exact.
	for v := uint64(0); v < histSubs; v++ {
		if BucketBound(bucketIndex(v)) != v {
			t.Fatalf("value %d not exact", v)
		}
	}
}

// TestHistogramQuantileError checks the documented estimator bound on
// known distributions: the bucketed quantile is the bucket upper bound
// of the exact nearest-rank order statistic — at least the true value
// and at most 12.5% above it — and stays consistent with the exact
// interpolating metrics.Summary estimator at the median.
func TestHistogramQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	distributions := map[string]func() time.Duration{
		"uniform": func() time.Duration { return time.Duration(rng.Int63n(int64(10 * time.Millisecond))) },
		"bimodal": func() time.Duration {
			if rng.Intn(10) == 0 {
				return 5*time.Millisecond + time.Duration(rng.Int63n(int64(time.Millisecond)))
			}
			return 50*time.Microsecond + time.Duration(rng.Int63n(int64(10*time.Microsecond)))
		},
		"heavy-tail": func() time.Duration {
			d := 1 + time.Duration(rng.Int63n(int64(100*time.Microsecond)))
			for rng.Intn(4) == 0 {
				d *= 8
			}
			return d
		},
	}
	// 10k samples keeps metrics.Latency below its reservoir cap, so its
	// Summary is truly exact here.
	const n = 10_000
	for name, gen := range distributions {
		var h Histogram
		var exact metrics.Latency
		durs := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			d := gen()
			h.Observe(d)
			exact.Observe(d)
			durs = append(durs, d)
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		for _, p := range []float64{0.5, 0.9, 0.99, 1} {
			got := h.Quantile(p)
			rank := int(math.Ceil(p * n))
			if rank < 1 {
				rank = 1
			}
			want := durs[rank-1]
			hi := time.Duration(float64(want)*1.125) + 1
			if got < want || got > hi {
				t.Errorf("%s p%g: histogram %v outside [%v, %v] (nearest-rank bound)", name, p*100, got, want, hi)
			}
		}
		// Cross-check against the exact estimator: the bucketed median
		// may only exceed the interpolated one by the bucket width.
		med := time.Duration(exact.Summary().Median * 1e9)
		if got := h.Quantile(0.5); got < time.Duration(float64(med)*0.98) || got > time.Duration(float64(med)*1.15)+1 {
			t.Errorf("%s: bucketed median %v vs exact %v", name, got, med)
		}
	}
}

// TestHistogramMerge pins that Merge is bucket-exact: merging two
// histograms gives identical counts and quantiles to observing the
// union stream into one.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, union Histogram
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(time.Second)))
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		union.Observe(d)
	}
	a.Merge(&b)
	if a.Count() != union.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), union.Count())
	}
	if a.Sum() != union.Sum() {
		t.Fatalf("merged sum %v, want %v", a.Sum(), union.Sum())
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		if got, want := a.Quantile(p), union.Quantile(p); got != want {
			t.Fatalf("merged p%g = %v, want %v", p*100, got, want)
		}
	}
	// Merging nil is a no-op.
	before := a.Count()
	a.Merge(nil)
	if a.Count() != before {
		t.Fatal("Merge(nil) changed the histogram")
	}
}

// TestHistogramConcurrent hammers one histogram from concurrent
// observers and a merger while a reader walks quantiles — the -race CI
// job is the real assertion; the count check here pins that no sample
// was lost.
func TestHistogramConcurrent(t *testing.T) {
	var h, src Histogram
	const (
		workers = 8
		perW    = 10_000
	)
	for i := 0; i < 1000; i++ {
		src.Observe(time.Duration(i) * time.Microsecond)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(time.Duration(w*perW+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.Merge(&src)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			h.Quantile(0.99)
			h.Count()
		}
	}()
	wg.Wait()
	if got, want := h.Count(), uint64(workers*perW+1000); got != want {
		t.Fatalf("count %d, want %d", got, want)
	}
}

// TestHistogramEmpty pins zero-value behavior.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("zero value not empty")
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	h.Observe(-time.Second) // clamps to 0
	if h.Count() != 1 || h.Quantile(1) != 0 {
		t.Fatalf("negative observation: count=%d p100=%v", h.Count(), h.Quantile(1))
	}
}
