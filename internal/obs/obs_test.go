package obs

import (
	"strings"
	"testing"
	"time"
)

// TestRegistryExposition renders a registry with every metric kind and
// requires the output to pass the package's own linter and contain the
// expected families with integral formatting (the smoke scripts compare
// counter values with shell arithmetic).
func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.")
	g := r.Gauge("test_inflight", "Batches in flight.")
	r.GaugeFunc("test_temperature", "A computed gauge.", func() float64 { return 3.5 })
	h := r.Histogram("test_latency_seconds", "Serve latency.")
	r.Collect(func(tw *TextWriter) {
		tw.Family("test_by_label_total", "counter", "Labeled counter.")
		tw.ValueL("test_by_label_total", 7, "backend", `we"ird\label`+"\n")
	})
	RegisterRuntimeMetrics(r)

	c.Add(3_400_000) // would print as 3.4e+06 under %g
	g.Set(-2)
	h.Observe(1500 * time.Nanosecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(2 * time.Millisecond)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	if probs := Lint([]byte(text)); len(probs) != 0 {
		t.Fatalf("exposition does not lint:\n%v\nin:\n%s", probs, text)
	}
	for _, want := range []string{
		"# TYPE test_requests_total counter\n",
		"test_requests_total 3400000\n",
		"test_inflight -2\n",
		"test_temperature 3.5\n",
		"# TYPE test_latency_seconds histogram\n",
		"test_latency_seconds_count 3\n",
		`le="+Inf"} 3`,
		"tage_process_goroutines ",
		"tage_process_gc_cycles_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Histogram buckets are cumulative: the 2ms bucket line must report
	// all three observations' running total ending at 3.
	if !strings.Contains(text, "test_latency_seconds_bucket{le=\"0.0000015") {
		t.Errorf("missing 1.5us bucket in:\n%s", text)
	}
}

// TestRegistryPanics pins registration misuse.
func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	for name, fn := range map[string]func(){
		"duplicate":    func() { r.Counter("ok_total", "") },
		"invalid-name": func() { r.Gauge("bad name", "") },
		"digit-start":  func() { r.Counter("9lives", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestFlightRecorderRing pins ring semantics: retention, overwrite
// order, Tail, and the nil no-op contract.
func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 1; i <= 6; i++ {
		r.Record(Event{Kind: EvBatch, Session: uint64(i)})
	}
	if r.Total() != 6 || r.Len() != 4 {
		t.Fatalf("total=%d len=%d, want 6, 4", r.Total(), r.Len())
	}
	snap := r.Snapshot()
	for i, want := range []uint64{3, 4, 5, 6} {
		if snap[i].Session != want {
			t.Fatalf("snapshot[%d].Session = %d, want %d (oldest first)", i, snap[i].Session, want)
		}
	}
	tail := r.Tail(2)
	if len(tail) != 2 || tail[0].Session != 5 || tail[1].Session != 6 {
		t.Fatalf("Tail(2) = %+v", tail)
	}

	var nilRec *FlightRecorder
	nilRec.Record(Event{Kind: EvShed}) // must not panic
	if nilRec.Len() != 0 || nilRec.Total() != 0 || nilRec.Tail(3) != nil {
		t.Fatal("nil recorder not inert")
	}
	var sb strings.Builder
	if err := nilRec.WriteText(&sb); err != nil || !strings.Contains(sb.String(), "disabled") {
		t.Fatalf("nil WriteText: %v %q", err, sb.String())
	}
}

// TestFlightRecorderText pins the dump format the chaos soak greps:
// kind=, conn=, sess=, key=, cause= fields with zero fields omitted.
func TestFlightRecorderText(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Record(Event{
		UnixNano: time.Date(2026, 8, 7, 12, 0, 0, 500, time.UTC).UnixNano(),
		Kind:     EvBatch,
		Conn:     3,
		Session:  17,
		Key:      "cbp/trace-1",
		Backend:  "64Kbits",
		Frame:    0x03,
		Batch:    512,
		QueueNS:  1500,
		ServeNS:  250_000,
		FlushNS:  90_000,
	})
	r.Record(Event{Kind: EvSlowPeerEvict, Conn: 3, Session: 17, Cause: "mid-frame stall"})
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# flight recorder: 2 events recorded, showing last 2 (oldest first)",
		"2026-08-07T12:00:00.000000500Z kind=batch conn=3 sess=17 key=\"cbp/trace-1\" backend=\"64Kbits\" frame=0x03 n=512 queue=1.5µs serve=250µs flush=90µs",
		"kind=slow-peer-evict conn=3 sess=17 cause=\"mid-frame stall\"",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q in:\n%s", want, text)
		}
	}
	// A zero event renders only timestamp and kind.
	line := Event{Kind: EvShed}.appendText(nil)
	if got := string(line); strings.ContainsAny(got, "{}") || strings.Contains(got, "conn=") {
		t.Fatalf("zero fields leaked into %q", got)
	}
}

// TestEventKindNames keeps every kind printable.
func TestEventKindNames(t *testing.T) {
	for k := EvNone; k <= EvRecovery; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Fatal("out-of-range kind not handled")
	}
}
