// Package obs is the repo's stdlib-only observability layer: a metrics
// registry of atomic counters, gauges and fixed-bucket log-scale
// histograms rendered in Prometheus text exposition format 0.0.4, plus
// a fixed-size flight recorder of structured serve events for post-hoc
// "why was this batch slow/shed/evicted" forensics.
//
// Everything on the observation side is hot-path safe: Counter.Inc,
// Gauge.Set, Histogram.Observe and FlightRecorder.Record are 0 allocs/op
// (pinned in the root alloc_test.go) and pass the tagevet
// //repro:hotpath analyzer — the paper's storage-free-confidence idea
// applied to the serving layer's own telemetry: measurement must not
// perturb the measured path.
//
// The zero value of Counter, Gauge and Histogram is ready to use.
package obs

import "sync/atomic"

// Counter is a monotonically increasing uint64 metric. The zero value
// is a valid counter at 0.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//repro:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//repro:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
//repro:deterministic
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 metric. The zero value is a valid gauge
// at 0.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
//
//repro:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (negative to decrease).
//
//repro:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
//repro:deterministic
func (g *Gauge) Value() int64 { return g.v.Load() }
