package obs

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// EventKind classifies a flight-recorder event.
type EventKind uint8

// Event kinds. EvBatch is the steady-state record (one per served
// batch); the rest mark the anomalies the ring exists to explain.
const (
	EvNone EventKind = iota
	EvBatch
	EvShed
	EvCorrupt
	EvSlowPeerEvict
	EvIdleEvict
	EvCheckpointFail
	EvRestore
	EvRestoreFail
	EvBreakerOpen
	EvBreakerClose
	EvFailover
	EvRetry
	EvRecovery
)

var kindNames = [...]string{
	EvNone:           "none",
	EvBatch:          "batch",
	EvShed:           "shed",
	EvCorrupt:        "corrupt",
	EvSlowPeerEvict:  "slow-peer-evict",
	EvIdleEvict:      "idle-evict",
	EvCheckpointFail: "checkpoint-fail",
	EvRestore:        "restore",
	EvRestoreFail:    "restore-fail",
	EvBreakerOpen:    "breaker-open",
	EvBreakerClose:   "breaker-close",
	EvFailover:       "failover",
	EvRetry:          "retry",
	EvRecovery:       "recovery",
}

// String returns the dash-separated kind name used in dumps.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one structured flight-recorder entry. It is a flat value
// type — recording one copies a few words and three string headers,
// never allocating — and zero fields are omitted from the text dump.
type Event struct {
	UnixNano int64
	Kind     EventKind
	Conn     uint64 // server-side connection sequence number
	Session  uint64 // session id
	Frame    byte   // wire frame type that produced the event
	Batch    int    // records in the batch
	Key      string // durable session key, if keyed
	Backend  string // backend spec label
	Cause    string // shed/retry/eviction/failure cause
	QueueNS  int64  // read-to-serve-start (head-of-line wait)
	ServeNS  int64  // predictor serve time
	FlushNS  int64  // response flush time
}

// appendText renders the event as one line of space-separated
// key=value fields.
func (e Event) appendText(dst []byte) []byte {
	dst = time.Unix(0, e.UnixNano).UTC().AppendFormat(dst, "2006-01-02T15:04:05.000000000Z")
	dst = append(dst, " kind="...)
	dst = append(dst, e.Kind.String()...)
	if e.Conn != 0 {
		dst = append(dst, " conn="...)
		dst = strconv.AppendUint(dst, e.Conn, 10)
	}
	if e.Session != 0 {
		dst = append(dst, " sess="...)
		dst = strconv.AppendUint(dst, e.Session, 10)
	}
	if e.Key != "" {
		dst = append(dst, " key="...)
		dst = strconv.AppendQuote(dst, e.Key)
	}
	if e.Backend != "" {
		dst = append(dst, " backend="...)
		dst = strconv.AppendQuote(dst, e.Backend)
	}
	if e.Frame != 0 {
		dst = append(dst, " frame=0x"...)
		if e.Frame < 0x10 {
			dst = append(dst, '0')
		}
		dst = strconv.AppendUint(dst, uint64(e.Frame), 16)
	}
	if e.Batch != 0 {
		dst = append(dst, " n="...)
		dst = strconv.AppendInt(dst, int64(e.Batch), 10)
	}
	if e.QueueNS != 0 {
		dst = append(dst, " queue="...)
		dst = append(dst, time.Duration(e.QueueNS).String()...)
	}
	if e.ServeNS != 0 {
		dst = append(dst, " serve="...)
		dst = append(dst, time.Duration(e.ServeNS).String()...)
	}
	if e.FlushNS != 0 {
		dst = append(dst, " flush="...)
		dst = append(dst, time.Duration(e.FlushNS).String()...)
	}
	if e.Cause != "" {
		dst = append(dst, " cause="...)
		dst = strconv.AppendQuote(dst, e.Cause)
	}
	return dst
}

// DefaultEventBuffer is the flight-recorder ring size when the caller
// does not choose one.
const DefaultEventBuffer = 256

// FlightRecorder is a fixed-size ring of Events. Record is hot-path
// safe (one short mutex section, no allocation); dumping is cold. A
// nil *FlightRecorder is valid and records nothing, so instrumented
// code never needs a nil check.
type FlightRecorder struct {
	mu  sync.Mutex
	buf []Event
	n   uint64 // total events ever recorded
}

// NewFlightRecorder returns a recorder holding the last size events
// (DefaultEventBuffer if size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultEventBuffer
	}
	return &FlightRecorder{buf: make([]Event, size)}
}

// Record stores ev, overwriting the oldest entry once the ring is full.
//
//repro:hotpath
func (r *FlightRecorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = ev
	r.n++
	r.mu.Unlock()
}

// Total returns the number of events ever recorded (recorded, not
// retained: the ring keeps the last len(buf)).
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Len returns the number of events currently retained.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lenLocked()
}

func (r *FlightRecorder) lenLocked() int {
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Snapshot returns the retained events oldest-first.
func (r *FlightRecorder) Snapshot() []Event {
	return r.Tail(-1)
}

// Tail returns the most recent k retained events oldest-first (all of
// them if k < 0 or k exceeds the retained count).
func (r *FlightRecorder) Tail(k int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	held := r.lenLocked()
	if k < 0 || k > held {
		k = held
	}
	out := make([]Event, k)
	for i := 0; i < k; i++ {
		out[i] = r.buf[(r.n-uint64(k)+uint64(i))%uint64(len(r.buf))]
	}
	return out
}

// WriteText dumps the retained events oldest-first, one line each,
// preceded by a summary comment.
func (r *FlightRecorder) WriteText(w io.Writer) error {
	return r.writeTail(w, -1)
}

// WriteTail dumps only the most recent k events.
func (r *FlightRecorder) WriteTail(w io.Writer, k int) error {
	return r.writeTail(w, k)
}

func (r *FlightRecorder) writeTail(w io.Writer, k int) error {
	if r == nil {
		_, err := io.WriteString(w, "# flight recorder disabled\n")
		return err
	}
	events := r.Tail(k)
	total := r.Total()
	buf := make([]byte, 0, 128)
	buf = append(buf, "# flight recorder: "...)
	buf = strconv.AppendUint(buf, total, 10)
	buf = append(buf, " events recorded, showing last "...)
	buf = strconv.AppendInt(buf, int64(len(events)), 10)
	buf = append(buf, " (oldest first)\n"...)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, ev := range events {
		buf = ev.appendText(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
