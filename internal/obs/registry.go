package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strconv"
)

// metricKind discriminates the entries a Registry holds.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type metric struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry holds named metrics and renders them as Prometheus text
// exposition format 0.0.4. Registration is not hot-path code (do it at
// construction time); the registered metrics themselves are.
//
// Families render in registration order, then collectors in
// registration order — a stable exposition that diffs cleanly between
// scrapes.
type Registry struct {
	metrics    []metric
	names      map[string]bool
	collectors []func(*TextWriter)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// validName is the Prometheus metric-name grammar.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) claim(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = true
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.claim(name)
	c := &Counter{}
	r.metrics = append(r.metrics, metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.claim(name)
	g := &Gauge{}
	r.metrics = append(r.metrics, metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.claim(name)
	r.metrics = append(r.metrics, metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers and returns a new histogram. The exposition emits
// cumulative le buckets in seconds plus _sum and _count, per the
// Prometheus histogram convention.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.claim(name)
	h := &Histogram{}
	r.metrics = append(r.metrics, metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// Collect registers a scrape-time callback for composite metric sources
// (an engine snapshot, runtime.MemStats) that produce whole families at
// once through the TextWriter.
func (r *Registry) Collect(fn func(*TextWriter)) {
	r.collectors = append(r.collectors, fn)
}

// WriteText renders the full exposition to w and reports the first
// write error.
//repro:deterministic
func (r *Registry) WriteText(w io.Writer) error {
	tw := NewTextWriter(w)
	for i := range r.metrics {
		m := &r.metrics[i]
		switch m.kind {
		case kindCounter:
			tw.Family(m.name, "counter", m.help)
			tw.Value(m.name, float64(m.counter.Value()))
		case kindGauge:
			tw.Family(m.name, "gauge", m.help)
			tw.Value(m.name, float64(m.gauge.Value()))
		case kindGaugeFunc:
			tw.Family(m.name, "gauge", m.help)
			tw.Value(m.name, m.fn())
		case kindHistogram:
			tw.Family(m.name, "histogram", m.help)
			writeHistogram(tw, m.name, m.hist)
		}
	}
	for _, fn := range r.collectors {
		fn(tw)
	}
	return tw.Err()
}

// writeHistogram emits the cumulative bucket series in seconds. Only
// occupied buckets get a line (the cumulative encoding makes skipped
// empties implicit); +Inf always closes the series.
//repro:deterministic
func writeHistogram(tw *TextWriter, name string, h *Histogram) {
	var buckets [NumBuckets]uint64
	total := h.snapshot(&buckets)
	sum := h.sum.Load()
	var cum uint64
	lastLe := math.Inf(-1)
	for i := range buckets {
		if buckets[i] == 0 {
			continue
		}
		cum += buckets[i]
		// Inclusive integer bound -> exclusive-style le in seconds.
		le := float64(BucketBound(i)) / 1e9
		if le <= lastLe {
			// Two huge adjacent bounds collapsed to one float64; the
			// cumulative count of the later bucket subsumes this one.
			continue
		}
		lastLe = le
		tw.ValueL(name+"_bucket", float64(cum), "le", formatValue(le))
	}
	tw.ValueL(name+"_bucket", float64(total), "le", "+Inf")
	tw.Value(name+"_sum", float64(sum)/1e9)
	tw.Value(name+"_count", float64(total))
}

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// TextWriter emits exposition lines with proper escaping. Errors stick:
// after the first write failure every call is a no-op and Err reports
// it.
type TextWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewTextWriter wraps w.
//repro:deterministic
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: w, buf: make([]byte, 0, 256)}
}

// Err returns the first write error, if any.
//repro:deterministic
func (t *TextWriter) Err() error { return t.err }

//repro:deterministic
func (t *TextWriter) flush() {
	if t.err == nil {
		_, t.err = t.w.Write(t.buf)
	}
	t.buf = t.buf[:0]
}

// Family emits the # HELP and # TYPE header for a metric family. typ is
// one of counter, gauge, histogram, summary or untyped.
//repro:deterministic
func (t *TextWriter) Family(name, typ, help string) {
	t.buf = append(t.buf, "# HELP "...)
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, ' ')
	t.buf = appendEscapedHelp(t.buf, help)
	t.buf = append(t.buf, "\n# TYPE "...)
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, ' ')
	t.buf = append(t.buf, typ...)
	t.buf = append(t.buf, '\n')
	t.flush()
}

// Value emits an unlabeled sample.
//repro:deterministic
func (t *TextWriter) Value(name string, v float64) {
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, ' ')
	t.buf = append(t.buf, formatValue(v)...)
	t.buf = append(t.buf, '\n')
	t.flush()
}

// ValueL emits a sample with labels given as alternating key, value
// pairs.
//repro:deterministic
func (t *TextWriter) ValueL(name string, v float64, kv ...string) {
	if len(kv)%2 != 0 {
		panic("obs: ValueL needs alternating key, value pairs")
	}
	t.buf = append(t.buf, name...)
	t.buf = append(t.buf, '{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			t.buf = append(t.buf, ',')
		}
		t.buf = append(t.buf, kv[i]...)
		t.buf = append(t.buf, '=', '"')
		t.buf = appendEscapedLabel(t.buf, kv[i+1])
		t.buf = append(t.buf, '"')
	}
	t.buf = append(t.buf, "} "...)
	t.buf = append(t.buf, formatValue(v)...)
	t.buf = append(t.buf, '\n')
	t.flush()
}

// formatValue renders a sample value. Integral values print without an
// exponent or decimal point so shell-side awk comparisons in the smoke
// scripts ('test "$v" -gt 0') keep working on large counters.
//repro:deterministic
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// appendEscapedHelp escapes a HELP docstring (backslash and newline).
//repro:deterministic
func appendEscapedHelp(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

// appendEscapedLabel escapes a label value (backslash, quote, newline).
//repro:deterministic
func appendEscapedLabel(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			dst = append(dst, '\\', '\\')
		case '"':
			dst = append(dst, '\\', '"')
		case '\n':
			dst = append(dst, '\\', 'n')
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

// RegisterRuntimeMetrics adds process-level gauges (goroutines, heap,
// GC) to r as a single collector so one scrape pays one ReadMemStats.
func RegisterRuntimeMetrics(r *Registry) {
	r.Collect(func(tw *TextWriter) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		tw.Family("tage_process_goroutines", "gauge", "Live goroutine count.")
		tw.Value("tage_process_goroutines", float64(runtime.NumGoroutine()))
		tw.Family("tage_process_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.")
		tw.Value("tage_process_heap_alloc_bytes", float64(ms.HeapAlloc))
		tw.Family("tage_process_heap_objects", "gauge", "Live heap objects.")
		tw.Value("tage_process_heap_objects", float64(ms.HeapObjects))
		tw.Family("tage_process_gc_cycles_total", "counter", "Completed GC cycles.")
		tw.Value("tage_process_gc_cycles_total", float64(ms.NumGC))
		tw.Family("tage_process_gc_pause_seconds_total", "counter", "Cumulative stop-the-world GC pause.")
		tw.Value("tage_process_gc_pause_seconds_total", float64(ms.PauseTotalNs)/1e9)
	})
}
