package smtpolicy

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

func twoThreads(t *testing.T) []trace.Trace {
	t.Helper()
	a, err := workload.ByName("252.eon") // predictable
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByName("300.twolf") // unpredictable
	if err != nil {
		t.Fatal(err)
	}
	return []trace.Trace{a, b}
}

func opts() core.Options { return core.Options{Mode: core.ModeProbabilistic} }

func runPolicy(t *testing.T, p Policy, traces []trace.Trace, limit uint64) Stats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Policy = p
	st, err := Run(tage.Small16K(), opts(), cfg, traces, limit)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPolicyNames(t *testing.T) {
	if RoundRobin.String() != "round-robin" || ICount.String() != "icount" ||
		ConfidenceThrottle.String() != "confidence" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "invalid-policy" {
		t.Fatal("invalid policy should stringify as invalid")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(tage.Small16K(), opts(), Config{}, twoThreads(t), 100); err == nil {
		t.Fatal("zero config must be rejected")
	}
	cfg := DefaultConfig()
	if _, err := Run(tage.Small16K(), opts(), cfg, nil, 100); err == nil {
		t.Fatal("no threads must be rejected")
	}
	cfg.Policy = Policy(42)
	if _, err := Run(tage.Small16K(), opts(), cfg, twoThreads(t), 100); err == nil {
		t.Fatal("unknown policy must be rejected")
	}
}

func TestRunMeasuresCoRunWindow(t *testing.T) {
	st := runPolicy(t, RoundRobin, twoThreads(t), 10000)
	if len(st.Threads) != 2 {
		t.Fatalf("thread stats count = %d", len(st.Threads))
	}
	var maxBranches uint64
	for _, th := range st.Threads {
		if th.Branches > 10000 {
			t.Fatalf("thread %s resolved %d branches, beyond its trace", th.Trace, th.Branches)
		}
		if th.UsefulFetched == 0 {
			t.Fatalf("thread %s fetched nothing useful", th.Trace)
		}
		if th.Branches > maxBranches {
			maxBranches = th.Branches
		}
	}
	// The run ends when the first thread exhausts its trace: that thread
	// must have made it (nearly) through.
	if maxBranches < 9000 {
		t.Fatalf("co-run window ended early: max %d branches", maxBranches)
	}
	if st.Cycles == 0 || st.TotalUseful() == 0 {
		t.Fatal("degenerate run")
	}
}

func TestConfidenceThrottleBeatsRoundRobinOnWrongPath(t *testing.T) {
	traces := twoThreads(t)
	rr := runPolicy(t, RoundRobin, traces, 30000)
	ct := runPolicy(t, ConfidenceThrottle, traces, 30000)
	if ct.WrongPathFraction() >= rr.WrongPathFraction() {
		t.Errorf("confidence throttling wrong-path %.3f should beat round-robin %.3f",
			ct.WrongPathFraction(), rr.WrongPathFraction())
	}
}

func TestICountRuns(t *testing.T) {
	st := runPolicy(t, ICount, twoThreads(t), 15000)
	if st.TotalUseful() == 0 {
		t.Fatal("icount degenerate")
	}
}

func TestThroughputAccessorsZeroSafe(t *testing.T) {
	var st Stats
	if st.Throughput() != 0 || st.WrongPathFraction() != 0 {
		t.Fatal("zero stats accessors must be 0")
	}
	if st.String() == "" {
		t.Fatal("String empty")
	}
}

func TestDeterministic(t *testing.T) {
	traces := twoThreads(t)
	a := runPolicy(t, ConfidenceThrottle, traces, 10000)
	b := runPolicy(t, ConfidenceThrottle, traces, 10000)
	if a.Cycles != b.Cycles || a.TotalUseful() != b.TotalUseful() || a.TotalWrongPath() != b.TotalWrongPath() {
		t.Fatal("nondeterministic SMT run")
	}
}

func TestFourThreads(t *testing.T) {
	var traces []trace.Trace
	for _, n := range []string{"FP-1", "INT-3", "MM-2", "SERV-1"} {
		tr, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, tr)
	}
	st := runPolicy(t, ConfidenceThrottle, traces, 8000)
	if len(st.Threads) != 4 {
		t.Fatalf("threads = %d", len(st.Threads))
	}
	for _, th := range st.Threads {
		if th.Branches == 0 {
			t.Fatalf("thread %s made no progress", th.Trace)
		}
		if th.Branches > 8000 {
			t.Fatalf("thread %s overran its trace: %d branches", th.Trace, th.Branches)
		}
	}
}
