// Package smtpolicy models confidence-driven SMT fetch policies (Luo,
// Franklin, Mukherjee & Seznec, IPDPS 2001), the resource-allocation
// application of branch confidence estimation cited by the paper (§2.1).
//
// Several hardware threads share one fetch port. Each cycle the policy
// picks the thread to fetch for. Wrong-path instructions fetched for a
// thread whose in-flight branch will mispredict waste the shared port, so
// a policy that deprioritizes threads with low-confidence in-flight
// branches ("confidence throttling") raises total useful throughput over
// round-robin or instruction-count-based policies.
package smtpolicy

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/tage"
	"repro/internal/trace"
)

// Policy selects the thread to fetch for each cycle.
type Policy uint8

const (
	// RoundRobin alternates threads regardless of state.
	RoundRobin Policy = iota
	// ICount fetches for the thread with the fewest in-flight
	// instructions (classic SMT fetch heuristic).
	ICount
	// ConfidenceThrottle fetches for the thread with the least in-flight
	// confidence boost (low-confidence branches weigh most), skipping
	// threads whose boost is at or above the gate threshold.
	ConfidenceThrottle
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case ICount:
		return "icount"
	case ConfidenceThrottle:
		return "confidence"
	default:
		return "invalid-policy"
	}
}

// Config parameterizes the shared front end.
type Config struct {
	// FetchWidth is instructions fetched per cycle for the chosen thread.
	FetchWidth int
	// ResolveDelay is the fetch-to-resolve latency in cycles.
	ResolveDelay int
	// LowBoost/MediumBoost/HighBoost weigh in-flight branches for
	// ConfidenceThrottle.
	LowBoost, MediumBoost, HighBoost int
	// GateThreshold: a thread at or above this boost is not fetched at all
	// this cycle (0 disables the hard gate; relative ordering still
	// applies).
	GateThreshold int
	// Policy selects the arbitration heuristic.
	Policy Policy
}

// DefaultConfig returns a representative 2-way SMT front end
// configuration using confidence throttling.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    4,
		ResolveDelay:  12,
		LowBoost:      4,
		MediumBoost:   2,
		HighBoost:     0,
		GateThreshold: 8,
		Policy:        ConfidenceThrottle,
	}
}

func (c Config) validate() error {
	if c.FetchWidth < 1 || c.ResolveDelay < 1 {
		return errors.New("smtpolicy: FetchWidth and ResolveDelay must be >= 1")
	}
	return nil
}

// ThreadStats reports one thread's outcome.
type ThreadStats struct {
	Trace            string
	UsefulFetched    uint64
	WrongPathFetched uint64
	Branches         uint64
	Mispredictions   uint64
	FetchCycles      uint64 // cycles this thread owned the port
}

// Stats reports a whole SMT run.
type Stats struct {
	Policy  Policy
	Cycles  uint64
	Threads []ThreadStats
}

// TotalUseful sums useful instructions over threads.
func (s Stats) TotalUseful() uint64 {
	var t uint64
	for _, th := range s.Threads {
		t += th.UsefulFetched
	}
	return t
}

// TotalWrongPath sums wrong-path instructions over threads.
func (s Stats) TotalWrongPath() uint64 {
	var t uint64
	for _, th := range s.Threads {
		t += th.WrongPathFetched
	}
	return t
}

// Throughput is total useful instructions per cycle.
func (s Stats) Throughput() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.TotalUseful()) / float64(s.Cycles)
}

// WrongPathFraction is the wrong-path share of all fetched instructions.
func (s Stats) WrongPathFraction() float64 {
	total := s.TotalUseful() + s.TotalWrongPath()
	if total == 0 {
		return 0
	}
	return float64(s.TotalWrongPath()) / float64(total)
}

func (s Stats) String() string {
	return fmt.Sprintf("%v: cycles=%d throughput=%.2f wrongPath=%.1f%%",
		s.Policy, s.Cycles, s.Throughput(), 100*s.WrongPathFraction())
}

type inflight struct {
	resolveAt    uint64
	level        core.Level
	mispredicted bool
}

type thread struct {
	est        *core.Estimator
	reader     trace.Reader
	stats      ThreadStats
	pending    []inflight
	wrongPath  bool
	cur        trace.Branch
	recordLeft int
	haveRecord bool
	done       bool
}

func (t *thread) active() bool { return !t.done || len(t.pending) > 0 }

func (t *thread) inflightInstr() int {
	// Proxy: each unresolved branch holds a record's worth of instructions.
	return len(t.pending)
}

func (t *thread) boost(cfg Config) int {
	b := 0
	for _, f := range t.pending {
		switch f.level {
		case core.Low:
			b += cfg.LowBoost
		case core.Medium:
			b += cfg.MediumBoost
		default:
			b += cfg.HighBoost
		}
	}
	return b
}

func (t *thread) resolve(cycle uint64) {
	for len(t.pending) > 0 && t.pending[0].resolveAt <= cycle {
		f := t.pending[0]
		t.pending = t.pending[1:]
		t.stats.Branches++
		if f.mispredicted {
			t.stats.Mispredictions++
			t.wrongPath = false
		}
	}
}

// fetch consumes up to width instructions for the thread at cycle.
func (t *thread) fetch(cycle uint64, cfg Config) error {
	t.stats.FetchCycles++
	budget := cfg.FetchWidth
	for budget > 0 {
		if t.wrongPath {
			t.stats.WrongPathFetched += uint64(budget)
			return nil
		}
		if !t.haveRecord {
			if t.done {
				return nil
			}
			b, err := t.reader.Next()
			if errors.Is(err, io.EOF) {
				t.done = true
				return nil
			}
			if err != nil {
				return err
			}
			t.cur = b
			t.recordLeft = int(b.Instr)
			t.haveRecord = true
		}
		n := t.recordLeft
		if n > budget {
			n = budget
		}
		t.stats.UsefulFetched += uint64(n)
		t.recordLeft -= n
		budget -= n
		if t.recordLeft == 0 {
			t.haveRecord = false
			pred, _, level := t.est.Predict(t.cur.PC)
			miss := pred != t.cur.Taken
			t.est.Update(t.cur.PC, t.cur.Taken)
			t.pending = append(t.pending, inflight{
				resolveAt:    cycle + uint64(cfg.ResolveDelay),
				level:        level,
				mispredicted: miss,
			})
			if miss {
				t.wrongPath = true
				return nil
			}
		}
	}
	return nil
}

// Run simulates the SMT front end over one trace per thread, building a
// fresh estimator per thread from (cfg, opts).
func Run(cfg tage.Config, opts core.Options, smt Config, traces []trace.Trace, limit uint64) (Stats, error) {
	if err := smt.validate(); err != nil {
		return Stats{}, err
	}
	if len(traces) == 0 {
		return Stats{}, errors.New("smtpolicy: no threads")
	}
	threads := make([]*thread, len(traces))
	for i, tr := range traces {
		threads[i] = &thread{
			est:    core.NewEstimator(cfg, opts),
			reader: trace.Limit(tr, limit).Open(),
		}
		threads[i].stats.Trace = tr.Name()
	}
	st := Stats{Policy: smt.Policy}
	rr := 0
	for {
		// Standard SMT methodology: measure the co-run window only, ending
		// when the first thread exhausts its trace (continuing would tail
		// into single-threaded execution and bias the policy comparison).
		coRunning := true
		for _, t := range threads {
			if t.done {
				coRunning = false
				break
			}
		}
		if !coRunning {
			break
		}
		st.Cycles++
		cycle := st.Cycles
		for _, t := range threads {
			t.resolve(cycle)
		}

		pick := -1
		switch smt.Policy {
		case RoundRobin:
			for i := 0; i < len(threads); i++ {
				cand := (rr + i) % len(threads)
				if threads[cand].active() {
					pick = cand
					break
				}
			}
			rr = (pick + 1) % len(threads)
		case ICount:
			best := 1 << 30
			for i, t := range threads {
				if t.active() && t.inflightInstr() < best {
					best = t.inflightInstr()
					pick = i
				}
			}
		case ConfidenceThrottle:
			best := 1 << 30
			for i, t := range threads {
				if !t.active() {
					continue
				}
				b := t.boost(smt)
				if smt.GateThreshold > 0 && b >= smt.GateThreshold {
					continue
				}
				// Tie-break by in-flight count for fairness.
				score := b*1024 + t.inflightInstr()
				if score < best {
					best = score
					pick = i
				}
			}
			if pick < 0 {
				// Every thread is gated: stay work-conserving and fetch
				// for the least-boost active thread rather than idle the
				// shared port.
				for i, t := range threads {
					if !t.active() {
						continue
					}
					if score := t.boost(smt)*1024 + t.inflightInstr(); score < best {
						best = score
						pick = i
					}
				}
			}
		default:
			return st, fmt.Errorf("smtpolicy: unknown policy %d", smt.Policy)
		}
		if pick < 0 {
			continue
		}
		if err := threads[pick].fetch(cycle, smt); err != nil {
			return st, err
		}
	}
	for _, t := range threads {
		st.Threads = append(st.Threads, t.stats)
	}
	return st, nil
}
