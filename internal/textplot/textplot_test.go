package textplot

import (
	"strings"
	"testing"
)

func TestStackedBarsNormalized(t *testing.T) {
	var sb strings.Builder
	StackedBars(&sb, "dist", []string{"a", "b"}, []StackRow{
		{Label: "row1", Parts: []float64{0.5, 0.5}},
		{Label: "r2", Parts: []float64{1, 0}},
	}, 20, true)
	out := sb.String()
	if !strings.Contains(out, "dist") || !strings.Contains(out, "legend") {
		t.Fatalf("missing title/legend:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	// row1: 10 '#' then 10 '='.
	if !strings.Contains(lines[2], strings.Repeat("#", 10)+strings.Repeat("=", 10)) {
		t.Fatalf("row1 bar wrong: %q", lines[2])
	}
	// r2: 20 '#'.
	if !strings.Contains(lines[3], strings.Repeat("#", 20)) {
		t.Fatalf("r2 bar wrong: %q", lines[3])
	}
	// Labels aligned to same column.
	if strings.Index(lines[2], "|") != strings.Index(lines[3], "|") {
		t.Fatal("bars not aligned")
	}
}

func TestStackedBarsMagnitude(t *testing.T) {
	var sb strings.Builder
	StackedBars(&sb, "mpki", []string{"x"}, []StackRow{
		{Label: "big", Parts: []float64{4}},
		{Label: "sml", Parts: []float64{1}},
	}, 40, false)
	out := sb.String()
	// Magnitude mode annotates totals and scales to the max row.
	if !strings.Contains(out, "4.00") || !strings.Contains(out, "1.00") {
		t.Fatalf("totals missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	bigBar := strings.Count(lines[2], "#")
	smlBar := strings.Count(lines[3], "#")
	if bigBar != 40 || smlBar != 10 {
		t.Fatalf("scaling wrong: big=%d sml=%d", bigBar, smlBar)
	}
}

func TestStackedBarsZeroRows(t *testing.T) {
	var sb strings.Builder
	StackedBars(&sb, "z", []string{"a"}, []StackRow{{Label: "empty", Parts: []float64{0}}}, 20, true)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("zero row should still render its label")
	}
}

func TestStackedBarsTinyWidthClamped(t *testing.T) {
	var sb strings.Builder
	StackedBars(&sb, "t", []string{"a"}, []StackRow{{Label: "r", Parts: []float64{1}}}, 1, true)
	if !strings.Contains(sb.String(), strings.Repeat("#", 10)) {
		t.Fatal("width should clamp to 10")
	}
}

func TestManySegmentsCycleRunes(t *testing.T) {
	var sb strings.Builder
	segs := make([]string, 12)
	parts := make([]float64, 12)
	for i := range segs {
		segs[i] = "s"
		parts[i] = 1
	}
	StackedBars(&sb, "cycle", segs, []StackRow{{Label: "r", Parts: parts}}, 36, true)
	// Should not panic and should reuse runes beyond 10 segments.
	if !strings.Contains(sb.String(), "#") {
		t.Fatal("render failed")
	}
}

func TestBars(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "rates", []Bar{{"aaa", 100}, {"b", 50}, {"c", 0}}, 30)
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines:\n%s", out)
	}
	if strings.Count(lines[1], "#") != 30 {
		t.Fatalf("max bar should fill width: %q", lines[1])
	}
	if strings.Count(lines[2], "#") != 15 {
		t.Fatalf("half bar: %q", lines[2])
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Fatalf("zero bar: %q", lines[3])
	}
	if !strings.Contains(lines[1], "100.0") {
		t.Fatal("value annotation missing")
	}
}

func TestBarsAllZero(t *testing.T) {
	var sb strings.Builder
	Bars(&sb, "z", []Bar{{"a", 0}}, 20)
	if !strings.Contains(sb.String(), "a") {
		t.Fatal("zero chart should render labels")
	}
}

func TestGroupedBars(t *testing.T) {
	var sb strings.Builder
	GroupedBars(&sb, "fig4", []Group{
		{Label: "gzip", Bars: []Bar{{"Wtag", 300}, {"Stag", 30}}},
		{Label: "vpr", Bars: []Bar{{"Wtag", 150}}},
	}, 30)
	out := sb.String()
	if !strings.Contains(out, "gzip") || !strings.Contains(out, "vpr") {
		t.Fatal("group labels missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Max (300) fills width, 150 gets half, 30 gets 3.
	var w300, w150, w30 int
	for _, l := range lines {
		n := strings.Count(l, "#")
		switch {
		case strings.Contains(l, "300.0"):
			w300 = n
		case strings.Contains(l, "150.0"):
			w150 = n
		case strings.Contains(l, "30.0"):
			w30 = n
		}
	}
	if w300 != 30 || w150 != 15 || w30 != 3 {
		t.Fatalf("grouped scaling wrong: %d/%d/%d\n%s", w300, w150, w30, out)
	}
}

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	Table(&sb, "tbl", []string{"col", "x"}, [][]string{
		{"aaaa", "1"},
		{"b", "22"},
	})
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines (title+header+sep+2 rows):\n%s", out)
	}
	if !strings.Contains(lines[2], "----") {
		t.Fatalf("separator missing: %q", lines[2])
	}
	// The second column should start at the same offset in every row.
	off := strings.Index(lines[1], "x")
	if strings.Index(lines[3], "1") != off || strings.Index(lines[4], "22") != off {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}
