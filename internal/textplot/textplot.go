// Package textplot renders the paper's figures as ASCII charts: stacked
// horizontal bars for the prediction/misprediction distribution panels
// (Figures 2, 3 and 5) and grouped bars for the per-class misprediction
// rate charts (Figures 4 and 6).
package textplot

import (
	"fmt"
	"io"
	"strings"
)

// segmentRunes are the fill characters assigned to stacked-bar segments in
// order; they stand in for the paper's bar colors.
var segmentRunes = []rune{'#', '=', '.', 'o', 'x', '%', '+', '*', '@', '~'}

// StackRow is one bar of a stacked chart.
type StackRow struct {
	Label string
	// Parts are the segment magnitudes, in the same order for every row.
	Parts []float64
}

// StackedBars renders rows as horizontal stacked bars of the given width.
// Each row is scaled independently when normalize is true (distribution
// panels, where parts sum to ~1) or against the global maximum row total
// otherwise (magnitude panels such as MPKI breakdowns).
//repro:deterministic
func StackedBars(w io.Writer, title string, segments []string, rows []StackRow, width int, normalize bool) {
	if width < 10 {
		width = 10
	}
	fmt.Fprintf(w, "%s\n", title)
	legend := make([]string, 0, len(segments))
	for i, s := range segments {
		legend = append(legend, fmt.Sprintf("%c %s", segRune(i), s))
	}
	fmt.Fprintf(w, "  legend: %s\n", strings.Join(legend, " | "))

	labelWidth := 0
	for _, r := range rows {
		if len(r.Label) > labelWidth {
			labelWidth = len(r.Label)
		}
	}
	globalMax := 0.0
	for _, r := range rows {
		if t := rowTotal(r); t > globalMax {
			globalMax = t
		}
	}
	for _, r := range rows {
		total := rowTotal(r)
		scale := 0.0
		switch {
		case normalize && total > 0:
			scale = float64(width) / total
		case !normalize && globalMax > 0:
			scale = float64(width) / globalMax
		}
		var bar strings.Builder
		for i, p := range r.Parts {
			n := int(p*scale + 0.5)
			for j := 0; j < n; j++ {
				bar.WriteRune(segRune(i))
			}
		}
		line := bar.String()
		if normalize && len(line) > width {
			line = line[:width]
		}
		suffix := ""
		if !normalize {
			suffix = fmt.Sprintf("  %.2f", total)
		}
		fmt.Fprintf(w, "  %-*s |%s%s\n", labelWidth, r.Label, line, suffix)
	}
}

//repro:deterministic
func rowTotal(r StackRow) float64 {
	t := 0.0
	for _, p := range r.Parts {
		t += p
	}
	return t
}

//repro:deterministic
func segRune(i int) rune {
	return segmentRunes[i%len(segmentRunes)]
}

// Bar is one bar of a plain bar chart.
type Bar struct {
	Label string
	Value float64
}

// Bars renders labeled horizontal bars scaled to the maximum value, with
// the numeric value printed after each bar.
//repro:deterministic
func Bars(w io.Writer, title string, bars []Bar, width int) {
	if width < 10 {
		width = 10
	}
	fmt.Fprintf(w, "%s\n", title)
	labelWidth := 0
	max := 0.0
	for _, b := range bars {
		if len(b.Label) > labelWidth {
			labelWidth = len(b.Label)
		}
		if b.Value > max {
			max = b.Value
		}
	}
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(b.Value/max*float64(width) + 0.5)
		}
		fmt.Fprintf(w, "  %-*s |%s %.1f\n", labelWidth, b.Label, strings.Repeat("#", n), b.Value)
	}
}

// GroupedBars renders one group of bars per row label (e.g. one group per
// trace with one bar per prediction class), as in Figures 4 and 6.
//repro:deterministic
func GroupedBars(w io.Writer, title string, groups []Group, width int) {
	fmt.Fprintf(w, "%s\n", title)
	max := 0.0
	inner := 0
	for _, g := range groups {
		for _, b := range g.Bars {
			if b.Value > max {
				max = b.Value
			}
			if len(b.Label) > inner {
				inner = len(b.Label)
			}
		}
	}
	for _, g := range groups {
		fmt.Fprintf(w, "  %s\n", g.Label)
		for _, b := range g.Bars {
			n := 0
			if max > 0 {
				n = int(b.Value/max*float64(width) + 0.5)
			}
			fmt.Fprintf(w, "    %-*s |%s %.1f\n", inner, b.Label, strings.Repeat("#", n), b.Value)
		}
	}
}

// Group is one labeled group of bars.
type Group struct {
	Label string
	Bars  []Bar
}

// Table renders a simple aligned text table.
//repro:deterministic
func Table(w io.Writer, title string, header []string, rows [][]string) {
	fmt.Fprintf(w, "%s\n", title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			cw := 0
			if i < len(widths) {
				cw = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", cw, c)
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}
