package fetchgate

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tage"
	"repro/internal/workload"
)

func opts() core.Options {
	return core.Options{Mode: core.ModeProbabilistic}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{FetchWidth: 0, ResolveDelay: 10},
		{FetchWidth: 4, ResolveDelay: 0},
		{FetchWidth: 4, ResolveDelay: 10, LowBoost: -1},
	}
	tr, _ := workload.ByName("FP-1")
	for i, cfg := range bad {
		if _, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, cfg, 100); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestUngatedFetchesEverything(t *testing.T) {
	tr, _ := workload.ByName("FP-1")
	st, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, DefaultConfig().Ungated(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if st.GatedCycles != 0 {
		t.Fatalf("ungated run gated %d cycles", st.GatedCycles)
	}
	if st.Branches != 20000 {
		t.Fatalf("resolved %d branches, want 20000", st.Branches)
	}
	if st.UsefulFetched == 0 || st.Cycles == 0 {
		t.Fatal("degenerate run")
	}
	if st.Mispredictions == 0 {
		t.Fatal("expected some mispredictions on FP-1")
	}
	if st.WrongPathFetched == 0 {
		t.Fatal("mispredictions must cause wrong-path fetch")
	}
	if st.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAggressiveGatingReducesWrongPathFetch(t *testing.T) {
	tr, _ := workload.ByName("300.twolf") // high misprediction rate
	gated, baseline, err := Compare(tage.Small16K(), opts(), AggressiveConfig(), tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(gated, baseline)
	if s.WrongPathReduction < 0.35 {
		t.Errorf("wrong-path reduction %.3f, want >= 0.35", s.WrongPathReduction)
	}
	if s.Slowdown > 0.40 {
		t.Errorf("slowdown %.3f unreasonably high", s.Slowdown)
	}
	if gated.GatedCycles == 0 {
		t.Error("gate never engaged on a hard trace")
	}
}

func TestDefaultGatingIsBalanced(t *testing.T) {
	tr, _ := workload.ByName("300.twolf")
	gated, baseline, err := Compare(tage.Small16K(), opts(), DefaultConfig(), tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(gated, baseline)
	if s.WrongPathReduction <= 0 {
		t.Errorf("default gating should save wrong-path fetch, got %.3f", s.WrongPathReduction)
	}
	if s.Slowdown > 0.10 {
		t.Errorf("default gating slowdown %.3f, want <= 0.10", s.Slowdown)
	}
}

func TestGatingCheapOnPredictableTrace(t *testing.T) {
	// A low-confidence-only gate barely fires on a predictable trace: the
	// cost side of the trade-off collapses when the estimator sees few
	// low-confidence predictions.
	tr, _ := workload.ByName("252.eon")
	lowOnly := Config{
		FetchWidth: 4, ResolveDelay: 12,
		LowBoost: 1, MediumBoost: 0, HighBoost: 0,
		GateThreshold: 2,
	}
	gated, baseline, err := Compare(tage.Medium64K(), opts(), lowOnly, tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(gated, baseline)
	if s.Slowdown > 0.04 {
		t.Errorf("slowdown %.4f on predictable trace, want ~0", s.Slowdown)
	}
	_ = gated
}

func TestConfidenceBeatsBlindGating(t *testing.T) {
	// Gating on confidence must beat gating on raw branch count (every
	// branch weighted equally) at comparable slowdown: compare wrong-path
	// reduction per unit slowdown.
	tr, _ := workload.ByName("INT-5")
	conf := DefaultConfig()
	gatedC, baseC, err := Compare(tage.Small16K(), opts(), conf, tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	blind := conf
	blind.LowBoost, blind.MediumBoost, blind.HighBoost = 1, 1, 1
	blind.GateThreshold = 4 // gate on >= 4 in-flight branches of any kind
	gatedB, baseB, err := Compare(tage.Small16K(), opts(), blind, tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	sc := Evaluate(gatedC, baseC)
	sb := Evaluate(gatedB, baseB)
	// Efficiency: reduction achieved per slowdown paid.
	effC := sc.WrongPathReduction / (sc.Slowdown + 0.01)
	effB := sb.WrongPathReduction / (sb.Slowdown + 0.01)
	if effC <= effB {
		t.Errorf("confidence gating efficiency %.2f should beat blind gating %.2f", effC, effB)
	}
}

func TestThrottleConfigValidates(t *testing.T) {
	tr, _ := workload.ByName("FP-1")
	bad := DefaultConfig()
	bad.ThrottleWidth = bad.FetchWidth // must be strictly narrower
	if _, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, bad, 100); err == nil {
		t.Fatal("ThrottleWidth == FetchWidth must be rejected")
	}
	bad.ThrottleWidth = -1
	if _, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, bad, 100); err == nil {
		t.Fatal("negative ThrottleWidth must be rejected")
	}
}

func TestThrottlingIsGentlerThanGating(t *testing.T) {
	// Aragón et al.: throttling trades some wrong-path savings for a much
	// smaller slowdown than a full gate at the same trigger.
	tr, _ := workload.ByName("300.twolf")
	gateCfg := AggressiveConfig()
	gated, gateBase, err := Compare(tage.Small16K(), opts(), gateCfg, tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	throttleCfg := gateCfg
	throttleCfg.ThrottleWidth = 1
	throttled, thrBase, err := Compare(tage.Small16K(), opts(), throttleCfg, tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	sg := Evaluate(gated, gateBase)
	st := Evaluate(throttled, thrBase)
	if st.Slowdown >= sg.Slowdown {
		t.Errorf("throttle slowdown %.3f should undercut gate slowdown %.3f", st.Slowdown, sg.Slowdown)
	}
	if st.WrongPathReduction <= 0 {
		t.Errorf("throttling should still save wrong-path fetch, got %.3f", st.WrongPathReduction)
	}
	if st.WrongPathReduction >= sg.WrongPathReduction {
		t.Errorf("full gating should save more than throttling (%.3f vs %.3f)",
			sg.WrongPathReduction, st.WrongPathReduction)
	}
}

func TestEvaluateZeroBaseline(t *testing.T) {
	s := Evaluate(Stats{}, Stats{})
	if s.WrongPathReduction != 0 || s.Slowdown != 0 {
		t.Fatal("zero baselines must produce zero savings")
	}
}

func TestStatsAccessorsZeroSafe(t *testing.T) {
	var st Stats
	if st.WrongPathFraction() != 0 || st.IPC() != 0 {
		t.Fatal("zero stats accessors must be 0")
	}
}

func TestDeterministic(t *testing.T) {
	tr, _ := workload.ByName("MM-2")
	a, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, DefaultConfig(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, DefaultConfig(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestUngatedNeverCountsGatedCycles(t *testing.T) {
	// Threshold 0 disables the gate entirely, even with nonzero boosts.
	tr, _ := workload.ByName("INT-1")
	cfg := Config{FetchWidth: 4, ResolveDelay: 12, LowBoost: 4, MediumBoost: 2}
	st, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, cfg, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if st.GatedCycles != 0 {
		t.Fatalf("disabled gate counted %d gated cycles", st.GatedCycles)
	}
}

func TestThrottleConfigShape(t *testing.T) {
	c := ThrottleConfig()
	if c.ThrottleWidth != 1 || c.GateThreshold != DefaultConfig().GateThreshold {
		t.Fatalf("ThrottleConfig = %+v", c)
	}
}

func TestThrottleCountsGatedCycles(t *testing.T) {
	// Throttled cycles still count as gated (they ran at reduced width).
	tr, _ := workload.ByName("300.twolf")
	cfg := AggressiveConfig()
	cfg.ThrottleWidth = 1
	st, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, cfg, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if st.GatedCycles == 0 {
		t.Fatal("throttle never engaged on a hard trace")
	}
}
