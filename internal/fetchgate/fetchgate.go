// Package fetchgate models confidence-driven pipeline gating (Manne,
// Klauser & Grunwald, PACT 1999; Aragón et al., HPCA 2003), the
// energy-saving application that motivates the paper's confidence
// estimator (§2.1).
//
// A simple front-end fetches instructions at a fixed width; conditional
// branches resolve a fixed number of cycles after fetch. When a
// mispredicted branch is in flight, everything fetched behind it is
// wrong-path work that will be squashed — wasted fetch energy. The gating
// policy assigns each in-flight branch a "boost" weight by confidence
// level (low-confidence branches are likely mispredictions) and stalls
// fetch while the total boost meets a threshold.
//
// A good confidence estimator lets the gate kill wrong-path fetch with
// little slowdown; the paper's three-level estimator supplies exactly the
// graded weights this policy needs.
package fetchgate

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/tage"
	"repro/internal/trace"
)

// Config parameterizes the front-end model and the gating policy.
type Config struct {
	// FetchWidth is the number of instructions fetched per unstalled cycle.
	FetchWidth int
	// ResolveDelay is the number of cycles between fetching a branch and
	// resolving it (pipeline depth from fetch to execute).
	ResolveDelay int
	// LowBoost, MediumBoost and HighBoost weigh one in-flight branch of
	// each confidence level.
	LowBoost, MediumBoost, HighBoost int
	// GateThreshold stalls fetch while the summed boost of in-flight
	// branches is at or above it. A non-positive threshold disables gating
	// (the baseline front end).
	GateThreshold int
	// ThrottleWidth, when positive, turns the gate into a throttle
	// (Aragón et al., HPCA 2003): instead of stalling completely, fetch
	// continues at this reduced width while the boost is at or above the
	// threshold. Fetch-rate reduction wastes less performance than a full
	// stall when the confidence estimate is wrong.
	ThrottleWidth int
}

// DefaultConfig is a representative deep front end with a balanced gating
// point: two in-flight low-confidence branches gate, as do one low plus
// two mediums. Lower thresholds trade slowdown for larger wrong-path
// savings (see AggressiveConfig); the confidence classes are what make the
// whole trade-off curve accessible.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    4,
		ResolveDelay:  12,
		LowBoost:      2,
		MediumBoost:   1,
		HighBoost:     0,
		GateThreshold: 4,
	}
}

// AggressiveConfig gates on any single in-flight low-confidence branch:
// the maximum-savings end of the gating trade-off (roughly half the
// wrong-path fetch eliminated at a ~25% fetch slowdown on hard traces).
func AggressiveConfig() Config {
	return Config{
		FetchWidth:    4,
		ResolveDelay:  12,
		LowBoost:      1,
		MediumBoost:   0,
		HighBoost:     0,
		GateThreshold: 1,
	}
}

// Ungated returns cfg with gating disabled (the baseline).
func (c Config) Ungated() Config {
	c.GateThreshold = 0
	return c
}

func (c Config) validate() error {
	if c.FetchWidth < 1 {
		return errors.New("fetchgate: FetchWidth must be >= 1")
	}
	if c.ResolveDelay < 1 {
		return errors.New("fetchgate: ResolveDelay must be >= 1")
	}
	if c.LowBoost < 0 || c.MediumBoost < 0 || c.HighBoost < 0 {
		return errors.New("fetchgate: negative boost")
	}
	if c.ThrottleWidth < 0 || c.ThrottleWidth >= c.FetchWidth {
		if c.ThrottleWidth != 0 {
			return errors.New("fetchgate: ThrottleWidth must be in (0, FetchWidth)")
		}
	}
	return nil
}

// ThrottleConfig is the fetch-throttling operating point: while the boost
// is high, fetch narrows to 1 instruction/cycle instead of stalling.
func ThrottleConfig() Config {
	c := DefaultConfig()
	c.ThrottleWidth = 1
	return c
}

// Stats reports one front-end run.
type Stats struct {
	// Cycles is the total cycle count to consume the trace.
	Cycles uint64
	// UsefulFetched counts correct-path instructions fetched.
	UsefulFetched uint64
	// WrongPathFetched counts wrong-path instructions fetched (squashed
	// work; the energy-waste proxy).
	WrongPathFetched uint64
	// GatedCycles counts cycles fetch was stalled by the gate.
	GatedCycles uint64
	// Branches and Mispredictions count resolved conditional branches.
	Branches       uint64
	Mispredictions uint64
}

// WrongPathFraction is the fraction of all fetched instructions that were
// wrong-path.
func (s Stats) WrongPathFraction() float64 {
	total := s.UsefulFetched + s.WrongPathFetched
	if total == 0 {
		return 0
	}
	return float64(s.WrongPathFetched) / float64(total)
}

// IPC is useful instructions per cycle (the performance proxy).
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.UsefulFetched) / float64(s.Cycles)
}

func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d useful=%d wrongPath=%d (%.1f%%) gated=%d IPC=%.2f",
		s.Cycles, s.UsefulFetched, s.WrongPathFetched, 100*s.WrongPathFraction(),
		s.GatedCycles, s.IPC())
}

type inflight struct {
	resolveAt    uint64
	level        core.Level
	mispredicted bool
}

// Run drives the front-end model over a trace using the given estimator
// for prediction and confidence. A fresh estimator should be used per run.
func Run(est *core.Estimator, tr trace.Trace, cfg Config, limit uint64) (Stats, error) {
	if err := cfg.validate(); err != nil {
		return Stats{}, err
	}
	var st Stats
	r := trace.Limit(tr, limit).Open()

	var pending []inflight // FIFO of in-flight branches
	wrongPath := false     // a mispredicted branch is in flight
	recordLeft := 0        // instructions left in the current record
	var cur trace.Branch
	haveRecord := false
	done := false

	for !done || len(pending) > 0 {
		st.Cycles++
		cycle := st.Cycles

		// Resolve branches due this cycle.
		for len(pending) > 0 && pending[0].resolveAt <= cycle {
			b := pending[0]
			pending = pending[1:]
			st.Branches++
			if b.mispredicted {
				st.Mispredictions++
				// The squash redirects fetch to the correct path.
				wrongPath = false
			}
		}

		// Gating/throttling decision on the in-flight confidence boost.
		width := cfg.FetchWidth
		if cfg.GateThreshold > 0 {
			boost := 0
			for _, b := range pending {
				switch b.level {
				case core.Low:
					boost += cfg.LowBoost
				case core.Medium:
					boost += cfg.MediumBoost
				default:
					boost += cfg.HighBoost
				}
			}
			if boost >= cfg.GateThreshold {
				st.GatedCycles++
				if cfg.ThrottleWidth <= 0 {
					continue
				}
				width = cfg.ThrottleWidth
			}
		}

		// Fetch up to width instructions.
		budget := width
		for budget > 0 {
			if wrongPath {
				// Fetching down the wrong path: squashed work.
				st.WrongPathFetched += uint64(budget)
				break
			}
			if !haveRecord {
				if done {
					break
				}
				b, err := r.Next()
				if errors.Is(err, io.EOF) {
					done = true
					break
				}
				if err != nil {
					return st, err
				}
				cur = b
				recordLeft = int(b.Instr)
				haveRecord = true
			}
			n := recordLeft
			if n > budget {
				n = budget
			}
			st.UsefulFetched += uint64(n)
			recordLeft -= n
			budget -= n
			if recordLeft == 0 {
				// The record's branch is fetched: predict it.
				haveRecord = false
				pred, _, level := est.Predict(cur.PC)
				miss := pred != cur.Taken
				est.Update(cur.PC, cur.Taken)
				pending = append(pending, inflight{
					resolveAt:    cycle + uint64(cfg.ResolveDelay),
					level:        level,
					mispredicted: miss,
				})
				if miss {
					wrongPath = true
					// Redirect-limited front ends stop the cycle's fetch at
					// a (mis)predicted-taken redirect; keep the model simple
					// and end the cycle at every branch record boundary
					// when entering the wrong path.
					break
				}
			}
		}
	}
	return st, nil
}

// Compare runs the gated and ungated front ends with fresh estimators and
// returns both. It is the harness behind the fetch-gating example and the
// application bench.
func Compare(cfg tage.Config, opts core.Options, gate Config, tr trace.Trace, limit uint64) (gated, baseline Stats, err error) {
	gated, err = Run(core.NewEstimator(cfg, opts), tr, gate, limit)
	if err != nil {
		return
	}
	baseline, err = Run(core.NewEstimator(cfg, opts), tr, gate.Ungated(), limit)
	return
}

// Savings summarizes a gated-vs-baseline pair: the wrong-path fetch
// reduction and the slowdown paid for it.
type Savings struct {
	WrongPathReduction float64 // 1 - gated/baseline wrong-path instructions
	Slowdown           float64 // gated cycles / baseline cycles - 1
}

// Evaluate computes Savings from a Compare result pair.
func Evaluate(gated, baseline Stats) Savings {
	var s Savings
	if baseline.WrongPathFetched > 0 {
		s.WrongPathReduction = 1 - float64(gated.WrongPathFetched)/float64(baseline.WrongPathFetched)
	}
	if baseline.Cycles > 0 {
		s.Slowdown = float64(gated.Cycles)/float64(baseline.Cycles) - 1
	}
	return s
}
