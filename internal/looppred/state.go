// Snapshot codecs for the loop predictor and the LTAGE combiner. The
// loop table is serialized entry by entry (the fields are narrow, so
// the varint encoding is compact for the mostly-empty table); LTAGE
// nests the TAGE and loop codecs under its WITHLOOP counter. All
// per-prediction scratch is dead at snapshot cut points.
package looppred

import (
	"encoding/binary"
	"fmt"

	"repro/internal/statecodec"
)

// AppendState appends the loop table to dst.
func (p *Predictor) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.entries)))
	for i := range p.entries {
		e := &p.entries[i]
		var flags byte
		if e.valid {
			flags |= 1
		}
		if e.dir {
			flags |= 2
		}
		dst = append(dst, flags)
		dst = binary.AppendUvarint(dst, uint64(e.tag))
		dst = binary.AppendUvarint(dst, uint64(e.currentIter))
		dst = binary.AppendUvarint(dst, uint64(e.trip))
		dst = append(dst, e.conf, e.age)
	}
	return dst
}

// RestoreState reads state written by AppendState into p, validating
// the table length and field ranges against p's configuration.
func (p *Predictor) RestoreState(r *statecodec.Reader) error {
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(p.entries)) {
		return fmt.Errorf("%w: loop table %d entries, want %d", statecodec.ErrCorrupt, n, len(p.entries))
	}
	decoded := make([]entry, len(p.entries))
	for i := range decoded {
		flags := r.Byte()
		tag := r.Uvarint()
		cur := r.Uvarint()
		trip := r.Uvarint()
		conf := r.Byte()
		age := r.Byte()
		if err := r.Err(); err != nil {
			return err
		}
		if flags > 3 || tag >= 1<<p.cfg.TagBits ||
			cur > uint64(p.cfg.MaxTrip) || trip > uint64(p.cfg.MaxTrip) ||
			conf > p.cfg.ConfMax {
			return fmt.Errorf("%w: loop entry %d out of range", statecodec.ErrCorrupt, i)
		}
		decoded[i] = entry{
			tag:         uint16(tag),
			currentIter: uint16(cur),
			trip:        uint16(trip),
			conf:        conf,
			age:         age,
			dir:         flags&2 != 0,
			valid:       flags&1 != 0,
		}
	}
	copy(p.entries, decoded)
	return nil
}

// AppendState appends the combined LTAGE state: the TAGE component, the
// loop table, and the WITHLOOP counter.
func (l *LTAGE) AppendState(dst []byte) []byte {
	dst = l.tage.AppendState(dst)
	dst = l.loop.AppendState(dst)
	return binary.AppendVarint(dst, int64(l.withLoop))
}

// RestoreState reads state written by AppendState into l.
func (l *LTAGE) RestoreState(r *statecodec.Reader) error {
	if err := l.tage.RestoreState(r); err != nil {
		return err
	}
	if err := l.loop.RestoreState(r); err != nil {
		return err
	}
	wl := r.Varint()
	if err := r.Err(); err != nil {
		return err
	}
	if wl < -64 || wl > 63 {
		return fmt.Errorf("%w: ltage withLoop %d out of range", statecodec.ErrCorrupt, wl)
	}
	l.withLoop = int8(wl)
	l.havePred = false
	return nil
}
