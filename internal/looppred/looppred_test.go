package looppred

import (
	"testing"

	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{LogSize: 0, TagBits: 14, MaxTrip: 100, ConfMax: 3},
		{LogSize: 6, TagBits: 0, MaxTrip: 100, ConfMax: 3},
		{LogSize: 6, TagBits: 14, MaxTrip: 1, ConfMax: 3},
		{LogSize: 6, TagBits: 14, MaxTrip: 100, ConfMax: 0},
	}
	for i, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d accepted", i)
				}
			}()
			New(c)
		}()
	}
	New(DefaultConfig()) // must not panic
}

func TestStorageBits(t *testing.T) {
	// 64 entries × (14 tag + 2×14 iter + 2 conf + 8 age + 1 dir) = 64×53.
	if got := DefaultConfig().StorageBits(); got != 64*53 {
		t.Fatalf("storage = %d, want %d", got, 64*53)
	}
}

func TestLearnsConstantTripLoop(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400100)
	// Drive a trip-7 loop: 6 taken then 1 not-taken, repeatedly. The
	// predictor should become valid after ConfMax confirmed trips and then
	// predict perfectly — including the exits, which is the whole point.
	iter := 0
	misses := 0
	checked := 0
	checkedExits := 0
	for i := 0; i < 7*40; i++ {
		taken := iter < 6
		pr := p.Predict(pc)
		if pr.Valid {
			checked++
			if !taken {
				checkedExits++
			}
			if pr.Pred != taken {
				misses++
			}
		}
		// Allocation requires a "TAGE mispredicted" signal; say TAGE
		// mispredicts the exits only.
		p.Update(pc, taken, !taken)
		iter++
		if iter == 7 {
			iter = 0
		}
	}
	if checked == 0 {
		t.Fatal("loop predictor never became confident")
	}
	if checkedExits < 20 {
		t.Fatalf("confident predictions must cover exits, saw %d", checkedExits)
	}
	if misses != 0 {
		t.Fatalf("confident loop predictions missed %d of %d", misses, checked)
	}
}

func TestRelearnsChangedTrip(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400200)
	drive := func(trip, instances int) (validPreds, misses int) {
		iter := 0
		for i := 0; i < trip*instances; i++ {
			taken := iter < trip-1
			pr := p.Predict(pc)
			if pr.Valid {
				validPreds++
				if pr.Pred != taken {
					misses++
				}
			}
			p.Update(pc, taken, !taken)
			iter++
			if iter == trip {
				iter = 0
			}
		}
		return
	}
	drive(5, 20)
	// Change the trip: predictor must lose confidence, then relearn.
	v, m := drive(9, 30)
	if v == 0 {
		t.Fatal("never regained confidence after trip change")
	}
	// Early mispredictions during relearning are expected; the tail must
	// be clean, so the overall miss fraction stays small.
	if float64(m)/float64(v) > 0.25 {
		t.Fatalf("relearning too lossy: %d/%d", m, v)
	}
}

func TestNoAllocationWithoutMisprediction(t *testing.T) {
	p := New(DefaultConfig())
	pc := uint64(0x400300)
	for i := 0; i < 100; i++ {
		p.Predict(pc)
		p.Update(pc, i%5 != 4, false) // TAGE always right: no allocation
	}
	if p.entries[p.index(pc)].valid {
		t.Fatal("entry allocated without a misprediction")
	}
}

func TestAgingProtectsUsefulEntries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LogSize = 1 // two entries: force collisions
	p := New(cfg)
	a := uint64(0x1000)
	b := a + (1<<(1+2))*16 // same index, different tag
	// Establish a confident loop at a.
	iter := 0
	for i := 0; i < 5*30; i++ {
		taken := iter < 4
		p.Predict(a)
		p.Update(a, taken, !taken)
		iter++
		if iter == 5 {
			iter = 0
		}
	}
	eBefore := p.entries[p.index(a)]
	if !eBefore.valid || eBefore.conf < cfg.ConfMax {
		t.Fatal("setup: entry for a not confident")
	}
	// One allocation attempt from b must age, not evict.
	p.Predict(b)
	p.Update(b, true, true)
	eAfter := p.entries[p.index(a)]
	if !eAfter.valid || eAfter.tag != eBefore.tag {
		t.Fatal("useful entry evicted by a single allocation attempt")
	}
}

func TestLTAGEBeatsTAGEOnLongLoops(t *testing.T) {
	// A trip-300 loop is beyond even the 256K TAGE's history reach on the
	// 16K predictor (max history 80), but trivial for the loop predictor.
	prog := workload.NewBuilder("longloop", 44).SetLength(120000).
		Block(1, 1, 1,
			workload.S(workload.Loop{Trip: 300}),
			workload.S(workload.Const{Taken: true}),
		).
		MustBuild()

	run := func(predict func(pc uint64) bool, update func(pc uint64, taken bool)) float64 {
		r := trace.Limit(prog, 0).Open()
		miss, n := 0, 0
		for {
			b, err := r.Next()
			if err != nil {
				break
			}
			if n > 30000 && predict(b.PC) != b.Taken {
				miss++
			} else if n <= 30000 {
				predict(b.PC)
			}
			update(b.PC, b.Taken)
			n++
		}
		return float64(miss) / float64(n-30000)
	}

	tg := tage.New(tage.Small16K())
	tageRate := run(func(pc uint64) bool { return tg.Predict(pc).Pred }, tg.Update)

	lt := NewLTAGE(tage.Small16K(), DefaultConfig())
	ltageRate := run(lt.Predict, lt.Update)

	if ltageRate >= tageRate/2 {
		t.Fatalf("L-TAGE %.5f should halve TAGE %.5f on a trip-300 loop", ltageRate, tageRate)
	}
	if ltageRate > 0.0015 {
		t.Fatalf("L-TAGE rate %.5f on pure loop, want ~0", ltageRate)
	}
}

func TestLTAGENeverMuchWorse(t *testing.T) {
	// On general traces the WITHLOOP counter must keep L-TAGE within a
	// whisker of TAGE.
	for _, name := range []string{"INT-2", "300.twolf"} {
		tr, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func(predict func(pc uint64) bool, update func(pc uint64, taken bool)) float64 {
			r := trace.Limit(tr, 80000).Open()
			miss, n := 0, 0
			for {
				b, err := r.Next()
				if err != nil {
					break
				}
				if predict(b.PC) != b.Taken {
					miss++
				}
				update(b.PC, b.Taken)
				n++
			}
			return float64(miss) / float64(n)
		}
		tg := tage.New(tage.Small16K())
		tageRate := run(func(pc uint64) bool { return tg.Predict(pc).Pred }, tg.Update)
		lt := NewLTAGE(tage.Small16K(), DefaultConfig())
		ltageRate := run(lt.Predict, lt.Update)
		if ltageRate > tageRate*1.03 {
			t.Errorf("%s: L-TAGE %.4f much worse than TAGE %.4f", name, ltageRate, tageRate)
		}
	}
}

func TestLTAGEUpdateWithoutPredictPanics(t *testing.T) {
	lt := NewLTAGE(tage.Small16K(), DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	lt.Update(0x100, true)
}

func TestLTAGEStorageAccounting(t *testing.T) {
	lt := NewLTAGE(tage.Small16K(), DefaultConfig())
	want := 16384 + 64*53 + 7
	if lt.StorageBits() != want {
		t.Fatalf("storage = %d, want %d", lt.StorageBits(), want)
	}
}

func TestLTAGEObservationAvailable(t *testing.T) {
	lt := NewLTAGE(tage.Small16K(), DefaultConfig())
	lt.Predict(0x400100)
	if lt.Observation().PC != 0x400100 {
		t.Fatal("TAGE observation not exposed")
	}
	lt.Update(0x400100, false)
	if lt.UsedLoop() {
		t.Fatal("cold loop predictor cannot have provided")
	}
}
