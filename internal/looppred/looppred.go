// Package looppred implements the loop predictor of the L-TAGE predictor
// (Seznec, "The L-TAGE branch predictor", JILP 2007) — the component that
// won CBP-2 on top of TAGE, which the paper cites as the state of the art.
//
// The loop predictor captures branches that behave as loops with a
// constant trip count: after observing the same iteration count a few
// consecutive times, it predicts the body direction for trip-1 executions
// and the exit direction on the trip-th, with essentially perfect accuracy
// on regular loops regardless of how long the trip is (where TAGE needs a
// history window covering the whole loop body).
//
// LTAGE combines a TAGE predictor with the loop predictor under the
// original's WITHLOOP confidence counter: the loop prediction is used only
// while it has proven itself.
package looppred

import (
	"fmt"

	"repro/internal/tage"
)

// Config parameterizes the loop predictor table.
type Config struct {
	// LogSize is log2 of the number of entries.
	LogSize uint
	// TagBits is the partial tag width.
	TagBits uint
	// MaxTrip bounds the learnable trip count (iteration counters
	// saturate there).
	MaxTrip uint16
	// ConfMax is the confidence saturation (number of identical trips
	// before the entry predicts).
	ConfMax uint8
}

// DefaultConfig mirrors the L-TAGE dimensioning: 64 entries, 14-bit tags,
// trips up to 16K, confidence 3.
func DefaultConfig() Config {
	return Config{LogSize: 6, TagBits: 14, MaxTrip: 16383, ConfMax: 3}
}

func (c Config) validate() error {
	if c.LogSize == 0 || c.LogSize > 16 {
		return fmt.Errorf("looppred: bad LogSize %d", c.LogSize)
	}
	if c.TagBits == 0 || c.TagBits > 16 {
		return fmt.Errorf("looppred: bad TagBits %d", c.TagBits)
	}
	if c.MaxTrip < 3 {
		return fmt.Errorf("looppred: bad MaxTrip %d", c.MaxTrip)
	}
	if c.ConfMax == 0 || c.ConfMax > 7 {
		return fmt.Errorf("looppred: bad ConfMax %d", c.ConfMax)
	}
	return nil
}

// StorageBits returns the table cost in bits per the L-TAGE accounting:
// tag + two iteration counters (14 bits each at the default MaxTrip) +
// confidence (2) + age (8) + direction (1).
func (c Config) StorageBits() int {
	iterBits := 0
	for v := c.MaxTrip; v > 0; v >>= 1 {
		iterBits++
	}
	perEntry := int(c.TagBits) + 2*iterBits + 2 + 8 + 1
	return (1 << c.LogSize) * perEntry
}

type entry struct {
	tag         uint16
	currentIter uint16
	trip        uint16 // learned trip count (0 = not yet learned)
	conf        uint8
	age         uint8
	dir         bool // loop body direction
	valid       bool
}

// Predictor is the standalone loop predictor. Drive it with Predict/Update
// per branch (Update must follow Predict for the same pc).
type Predictor struct {
	cfg     Config
	entries []entry
	mask    uint64 //repro:derived from cfg.LogSize at construction
}

// New builds a loop predictor.
func New(cfg Config) *Predictor {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Predictor{
		cfg:     cfg,
		entries: make([]entry, 1<<cfg.LogSize),
		mask:    uint64(1<<cfg.LogSize) - 1,
	}
}

//repro:hotpath
func (p *Predictor) index(pc uint64) uint64 { return (pc >> 2) & p.mask }

//repro:hotpath
func (p *Predictor) tag(pc uint64) uint16 {
	return uint16((pc >> (2 + p.cfg.LogSize)) & ((1 << p.cfg.TagBits) - 1))
}

// Prediction is the loop predictor's output for one branch.
type Prediction struct {
	// Pred is the predicted direction (meaningful only when Valid).
	Pred bool
	// Valid reports a confident hit: the entry's trip count has been
	// confirmed ConfMax times.
	Valid bool
}

// Predict looks up pc.
//repro:hotpath
func (p *Predictor) Predict(pc uint64) Prediction {
	e := &p.entries[p.index(pc)]
	if !e.valid || e.tag != p.tag(pc) || e.conf < p.cfg.ConfMax || e.trip == 0 {
		return Prediction{}
	}
	if e.currentIter+1 >= e.trip {
		return Prediction{Pred: !e.dir, Valid: true}
	}
	return Prediction{Pred: e.dir, Valid: true}
}

// Update trains the entry for pc with the resolved direction;
// tageMispredicted gates allocation (entries are allocated only when the
// main predictor failed, as in L-TAGE).
//repro:hotpath
func (p *Predictor) Update(pc uint64, taken bool, tageMispredicted bool) {
	e := &p.entries[p.index(pc)]
	tg := p.tag(pc)
	if e.valid && e.tag == tg {
		p.train(e, pc, taken)
		return
	}
	if !tageMispredicted {
		return
	}
	// Allocation with anti-thrash aging. The mispredicted outcome is
	// typically the loop exit, so the body direction is its opposite.
	if e.valid && e.age > 0 {
		e.age--
		return
	}
	*e = entry{
		tag:   tg,
		dir:   !taken,
		age:   255,
		valid: true,
	}
}

//repro:hotpath
func (p *Predictor) train(e *entry, pc uint64, taken bool) {
	if taken == e.dir {
		// Another body iteration.
		if e.currentIter < p.cfg.MaxTrip {
			e.currentIter++
		} else {
			// Trip beyond the counter range: the entry cannot represent
			// this loop.
			*e = entry{}
			return
		}
		if e.trip > 0 && e.currentIter >= e.trip {
			if e.trip == 1 {
				// A "trip-1 loop" means every outcome opposed dir — the
				// allocation guessed the body direction wrong (it fired on
				// a body misprediction rather than an exit). Flip and
				// relearn.
				*e = entry{tag: e.tag, dir: !e.dir, age: e.age, valid: true, currentIter: 1}
				return
			}
			// The loop ran past its learned trip: wrong shape, relearn.
			e.trip = 0
			e.conf = 0
		}
		return
	}
	// Exit observed.
	iter := e.currentIter + 1 // iterations including the exit
	e.currentIter = 0
	switch {
	case e.trip == 0:
		e.trip = iter
		e.conf = 1
	case e.trip == iter:
		if e.conf < p.cfg.ConfMax {
			e.conf++
		}
		if e.age < 255 {
			e.age++
		}
	default:
		// Different trip: relearn from this observation.
		e.trip = iter
		e.conf = 1
		if e.age > 0 {
			e.age--
		}
	}
}

// StorageBits returns the table cost in bits.
func (p *Predictor) StorageBits() int { return p.cfg.StorageBits() }

// Invalidate frees the entry for pc (used by the combiner when a
// confident loop prediction turns out wrong, as in the original L-TAGE).
//repro:hotpath
func (p *Predictor) Invalidate(pc uint64) {
	e := &p.entries[p.index(pc)]
	if e.valid && e.tag == p.tag(pc) {
		*e = entry{}
	}
}

// LTAGE combines a TAGE predictor with the loop predictor under a
// WITHLOOP usefulness counter, as in the original L-TAGE.
type LTAGE struct {
	tage *tage.Predictor
	loop *Predictor

	// withLoop is the 7-bit signed WITHLOOP counter: non-negative means
	// the loop prediction is trusted when valid.
	withLoop int8

	lastLoop  Prediction        //repro:derived per-prediction scratch; havePred is cleared on restore
	lastTage  tage.Observation  //repro:derived per-prediction scratch; havePred is cleared on restore
	lastPred  bool              //repro:derived per-prediction scratch; havePred is cleared on restore
	usedLoop  bool              //repro:derived per-prediction scratch; havePred is cleared on restore
	havePred  bool
	predictPC uint64 //repro:derived per-prediction scratch; havePred is cleared on restore
}

// NewLTAGE builds the combined predictor.
func NewLTAGE(tageCfg tage.Config, loopCfg Config) *LTAGE {
	return &LTAGE{
		tage: tage.New(tageCfg),
		loop: New(loopCfg),
	}
}

// Predict returns the combined prediction. The underlying TAGE observation
// remains available through Observation.
//repro:hotpath
func (l *LTAGE) Predict(pc uint64) bool {
	l.lastTage = l.tage.Predict(pc)
	l.lastLoop = l.loop.Predict(pc)
	l.usedLoop = l.lastLoop.Valid && l.withLoop >= 0
	if l.usedLoop {
		l.lastPred = l.lastLoop.Pred
	} else {
		l.lastPred = l.lastTage.Pred
	}
	l.havePred = true
	l.predictPC = pc
	return l.lastPred
}

// Observation returns the TAGE component observation of the last Predict.
//repro:hotpath
func (l *LTAGE) Observation() tage.Observation { return l.lastTage }

// UsedLoop reports whether the last prediction came from the loop
// predictor.
//repro:hotpath
func (l *LTAGE) UsedLoop() bool { return l.usedLoop }

// Update resolves the branch and trains both components.
//repro:hotpath
func (l *LTAGE) Update(pc uint64, taken bool) {
	if !l.havePred || l.predictPC != pc {
		panic(fmt.Sprintf("looppred: Update(%#x) without matching Predict", pc)) //repro:allow-alloc guard path: protocol violation aborts the run, allocation cost is irrelevant
	}
	l.havePred = false
	// WITHLOOP monitors the loop predictor only when it disagrees with
	// TAGE (the cases where trusting it changes the outcome).
	if l.lastLoop.Valid && l.lastLoop.Pred != l.lastTage.Pred {
		if l.lastLoop.Pred == taken {
			if l.withLoop < 63 {
				l.withLoop++
			}
		} else if l.withLoop > -64 {
			l.withLoop--
		}
	}
	if l.lastLoop.Valid && l.lastLoop.Pred != taken {
		// A confident loop prediction that mispredicts frees its entry
		// (the original L-TAGE rule): the branch is not the regular loop
		// the entry believed it to be.
		l.loop.Invalidate(pc)
	} else {
		l.loop.Update(pc, taken, l.lastTage.Pred != taken)
	}
	l.tage.Update(pc, taken)
}

// StorageBits returns the combined storage cost.
func (l *LTAGE) StorageBits() int {
	return l.tage.Config().StorageBits() + l.loop.StorageBits() + 7
}
