// Package faultnet is a deterministic fault-injection layer for
// net.Conn: it wraps a transport with seed-scheduled network misbehavior
// — injected latency, short reads, chunked writes, byte corruption,
// mid-stream connection drops, resets and stalls — so the serve stack
// can be soaked against the messy failure tail real networks produce,
// reproducibly.
//
// Determinism is the point. Every wrapped connection draws its fault
// decisions from its own xrand stream, derived from (Config.Seed,
// connection ordinal): the i-th connection accepted through a wrapped
// listener (or opened through a Proxy) sees the same fault sequence for
// the same seed, operation by operation, on every run. A chaos soak that
// fails therefore prints its seed and is replayable exactly.
//
// The fault taxonomy mirrors what a TCP peer can actually observe:
//
//   - Latency / Stall: an operation completes late (Stall is the
//     pathological version, long enough to trip peer deadlines).
//   - Short read / chunked write: data arrives, but fragmented — the
//     reassembly torture test for any length-prefixed codec.
//   - Corruption: a delivered byte is flipped. The bytes keep flowing;
//     only integrity checking (the wire CRC) can notice.
//   - Drop: the connection dies mid-stream, possibly mid-frame, after
//     delivering a prefix of the data.
//   - Reset: the operation fails immediately with a reset-flavored
//     error, without delivering anything.
//
// Wrap a single conn with Wrap, a listener with WrapListener, or put a
// whole unmodified server behind a fault-injecting TCP Proxy (the
// cmd/faultproxy binary drives that from the command line).
package faultnet

import (
	"fmt"
	"net"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/xrand"
)

// Config schedules the faults. All rates are per-operation probabilities
// in [0, 1]; a zero Config injects nothing and is transparent.
type Config struct {
	// Seed keys every derived fault stream. Two runs with the same seed
	// and the same per-connection operation sequence inject the same
	// faults at the same points.
	Seed uint64

	// CorruptRate flips one byte of the data delivered by a read (or
	// submitted by a write), per operation.
	CorruptRate float64
	// DropRate kills the connection mid-operation: a read or write
	// delivers a strict prefix of its data and then the conn is closed.
	DropRate float64
	// ResetRate fails the operation immediately with a reset-flavored
	// retryable error, closing the conn without delivering anything.
	ResetRate float64
	// StallRate stalls the operation mid-delivery: a prefix of the data
	// moves, then nothing for StallFor, so the peer holds a partial
	// frame going quiet — long stalls are what slow-peer frame deadlines
	// exist to evict.
	StallRate float64
	// StallFor is the stall duration (default 1s when StallRate > 0).
	StallFor time.Duration
	// LatencyJitter, when non-zero, sleeps a uniform duration in
	// [0, LatencyJitter) before every operation — background network
	// weather, below deadline thresholds.
	LatencyJitter time.Duration
	// ShortReads delivers every read in small fragments: a Read returns
	// between 1 and 16 bytes regardless of buffer size.
	ShortReads bool
	// ChunkWrites splits every write into several small underlying
	// writes, so the peer's reads observe arbitrary fragmentation.
	ChunkWrites bool
}

// Stats tallies injected faults across every connection sharing it
// (atomic: connections are concurrent).
type Stats struct {
	Conns      atomic.Uint64
	Corrupted  atomic.Uint64
	Drops      atomic.Uint64
	Resets     atomic.Uint64
	Stalls     atomic.Uint64
	Delays     atomic.Uint64
	ShortReads atomic.Uint64
	ChunkedWrites atomic.Uint64
}

// String renders the tally in a fixed order.
func (s *Stats) String() string {
	return fmt.Sprintf("conns=%d corrupted=%d drops=%d resets=%d stalls=%d delays=%d short_reads=%d chunked_writes=%d",
		s.Conns.Load(), s.Corrupted.Load(), s.Drops.Load(), s.Resets.Load(),
		s.Stalls.Load(), s.Delays.Load(), s.ShortReads.Load(), s.ChunkedWrites.Load())
}

// Total returns the number of destructive faults injected (corruption,
// drops, resets, stalls) — the ones a hardened peer must survive.
func (s *Stats) Total() uint64 {
	return s.Corrupted.Load() + s.Drops.Load() + s.Resets.Load() + s.Stalls.Load()
}

// ErrInjected is the reset-flavored error injected connections fail
// with. It wraps syscall.ECONNRESET so transport-level retry classifiers
// (serve.IsRetryable) treat it exactly like a real peer reset.
var ErrInjected = fmt.Errorf("faultnet: injected fault: %w", syscall.ECONNRESET)

// Conn wraps a net.Conn with scheduled faults. It implements net.Conn.
type Conn struct {
	net.Conn
	cfg   Config
	rng   xrand.Rand
	stats *Stats
	// stallPending marks that the previous read cut its delivery short
	// and the next read must go quiet for StallFor before progressing.
	stallPending bool
}

// Wrap returns conn with the fault schedule derived from (cfg.Seed, id)
// applied to it. Connections with distinct ids draw decorrelated fault
// streams; the same (seed, id) pair reproduces the same stream. stats
// may be nil.
func Wrap(conn net.Conn, cfg Config, id uint64, stats *Stats) *Conn {
	if cfg.StallFor <= 0 {
		cfg.StallFor = time.Second
	}
	if stats == nil {
		stats = &Stats{}
	}
	c := &Conn{Conn: conn, cfg: cfg, stats: stats}
	xrand.New(cfg.Seed).DeriveInto(id, &c.rng)
	stats.Conns.Add(1)
	return c
}

// delay applies the latency schedule for one operation.
func (c *Conn) delay() {
	if c.cfg.LatencyJitter > 0 {
		d := time.Duration(c.rng.Uint64() % uint64(c.cfg.LatencyJitter))
		c.stats.Delays.Add(1)
		time.Sleep(d)
	}
}

// stalled decides whether this operation stalls. The stall is applied
// mid-operation (a prefix of the data moves, then nothing for StallFor)
// so the peer observes a partial frame going quiet — the shape
// slow-peer frame deadlines exist to evict. A stall before the
// operation would usually land on a frame boundary and look like mere
// idleness.
func (c *Conn) stalled() bool {
	if c.cfg.StallRate > 0 && c.rng.WithProbability(c.cfg.StallRate) {
		c.stats.Stalls.Add(1)
		return true
	}
	return false
}

// abort decides reset-vs-continue for one operation. It reports true
// after closing the conn when the schedule injects a reset.
func (c *Conn) abort() bool {
	if c.cfg.ResetRate > 0 && c.rng.WithProbability(c.cfg.ResetRate) {
		c.stats.Resets.Add(1)
		c.Conn.Close()
		return true
	}
	return false
}

func (c *Conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return c.Conn.Read(p)
	}
	c.delay()
	if c.stallPending {
		// The previous read delivered a truncated prefix; go quiet now, so
		// the downstream peer sees a partial frame stop making progress.
		c.stallPending = false
		time.Sleep(c.cfg.StallFor)
	}
	if c.abort() {
		return 0, ErrInjected
	}
	limit := len(p)
	drop := c.cfg.DropRate > 0 && c.rng.WithProbability(c.cfg.DropRate)
	if c.cfg.ShortReads && limit > 1 {
		c.stats.ShortReads.Add(1)
		limit = 1 + c.rng.Intn(min(16, limit))
	}
	if c.stalled() && limit > 1 {
		limit = 1 + c.rng.Intn(limit-1)
		c.stallPending = true
	}
	if drop && limit > 1 {
		// Deliver a strict prefix, then die: the peer sees a connection
		// cut mid-frame.
		limit = 1 + c.rng.Intn(limit-1)
	}
	n, err := c.Conn.Read(p[:limit])
	if n > 0 && c.cfg.CorruptRate > 0 && c.rng.WithProbability(c.cfg.CorruptRate) {
		c.stats.Corrupted.Add(1)
		i := c.rng.Intn(n)
		p[i] ^= 1 << uint(c.rng.Intn(8))
	}
	if drop {
		c.stats.Drops.Add(1)
		c.Conn.Close()
		if err == nil && n > 0 {
			return n, nil // the prefix was delivered; the next op fails
		}
		return n, ErrInjected
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return c.Conn.Write(p)
	}
	c.delay()
	if c.abort() {
		return 0, ErrInjected
	}
	if c.cfg.DropRate > 0 && c.rng.WithProbability(c.cfg.DropRate) {
		// Write a strict prefix, then die mid-frame.
		c.stats.Drops.Add(1)
		cut := c.rng.Intn(len(p))
		if cut > 0 {
			c.Conn.Write(p[:cut])
		}
		c.Conn.Close()
		return cut, ErrInjected
	}
	if c.cfg.CorruptRate > 0 && c.rng.WithProbability(c.cfg.CorruptRate) {
		// Corrupt a copy: a Write must not scribble on the caller's
		// buffer (the serve client reuses and re-sends it on retry).
		c.stats.Corrupted.Add(1)
		dup := append([]byte(nil), p...)
		dup[c.rng.Intn(len(dup))] ^= 1 << uint(c.rng.Intn(8))
		p = dup
	}
	if c.stalled() && len(p) > 1 {
		// Mid-operation stall: a prefix moves, then nothing for StallFor —
		// the receiving server holds a partial frame past its FrameTimeout
		// and must evict this conn as a slow reader.
		cut := 1 + c.rng.Intn(len(p)-1)
		n, err := c.Conn.Write(p[:cut])
		if err != nil {
			return n, err
		}
		time.Sleep(c.cfg.StallFor)
		m, err := c.Conn.Write(p[cut:])
		return n + m, err
	}
	if !c.cfg.ChunkWrites {
		return c.Conn.Write(p)
	}
	c.stats.ChunkedWrites.Add(1)
	written := 0
	for written < len(p) {
		chunk := 1 + c.rng.Intn(min(16, len(p)-written))
		n, err := c.Conn.Write(p[written : written+chunk])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Listener wraps a net.Listener so every accepted connection is fault
// injected, each with its own derived stream (accept ordinal = stream
// id).
type Listener struct {
	net.Listener
	cfg   Config
	next  atomic.Uint64
	stats *Stats
}

// WrapListener wraps ln. stats may be nil (a fresh tally is created);
// Stats() returns whichever is in use.
func WrapListener(ln net.Listener, cfg Config, stats *Stats) *Listener {
	if stats == nil {
		stats = &Stats{}
	}
	return &Listener{Listener: ln, cfg: cfg, stats: stats}
}

// Stats returns the shared fault tally.
func (l *Listener) Stats() *Stats { return l.stats }

func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(conn, l.cfg, l.next.Add(1)-1, l.stats), nil
}
