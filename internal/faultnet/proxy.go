package faultnet

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Proxy is a fault-injecting TCP relay: it accepts client connections,
// dials the upstream for each, and pumps bytes both ways through a
// fault-wrapped upstream conn. The server behind it needs no changes —
// this is how scripts/chaos_soak.sh tortures a stock tageserved.
//
// Faults are applied on the upstream side of the relay: corruption or a
// drop on the upstream Write mangles client→server traffic, on the
// upstream Read server→client traffic, and either direction's failure
// tears down the whole relay pair (as a real middlebox reset would).
type Proxy struct {
	cfg      Config
	upstream string
	ln       net.Listener
	stats    *Stats
	next     atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewProxy listens on listen and relays every accepted connection to
// upstream with cfg's fault schedule applied. It returns with the
// listener bound; call Serve to start accepting.
func NewProxy(listen, upstream string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	return &Proxy{
		cfg:      cfg,
		upstream: upstream,
		ln:       ln,
		stats:    &Stats{},
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// Stats returns the shared fault tally.
func (p *Proxy) Stats() *Stats { return p.stats }

// Serve accepts and relays until Close. It returns the listener's
// accept error (net.ErrClosed after Close).
func (p *Proxy) Serve() error {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return err
		}
		go p.relay(client)
	}
}

// Close stops the listener and tears down every live relay pair.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.conns = nil
	p.mu.Unlock()
	return p.ln.Close()
}

// track registers a live conn for Close teardown. It reports false —
// and closes the conn — when the proxy is already shut down.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	if p.conns != nil {
		delete(p.conns, c)
	}
	p.mu.Unlock()
}

// relay pumps client⇄upstream through a fault-wrapped upstream conn
// until either direction fails, then closes both sides.
func (p *Proxy) relay(client net.Conn) {
	defer client.Close()
	if !p.track(client) {
		return
	}
	defer p.untrack(client)
	raw, err := net.Dial("tcp", p.upstream)
	if err != nil {
		return
	}
	up := Wrap(raw, p.cfg, p.next.Add(1)-1, p.stats)
	defer up.Close()
	if !p.track(up) {
		return
	}
	defer p.untrack(up)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		io.Copy(up, client) //nolint:errcheck // a failed pump tears the pair down below
		// Client went quiet (or a fault killed the upstream write):
		// unblock the other pump.
		up.Close()
		client.Close()
	}()
	go func() {
		defer wg.Done()
		io.Copy(client, up) //nolint:errcheck // a failed pump tears the pair down below
		client.Close()
		up.Close()
	}()
	wg.Wait()
}
