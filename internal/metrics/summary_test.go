package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{4, 2, 8, 6})
	if s.N != 4 || s.Min != 2 || s.Max != 8 {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Mean, 5) {
		t.Fatalf("mean = %v", s.Mean)
	}
	if !almost(s.Median, 5) {
		t.Fatalf("median = %v", s.Median)
	}
	if math.Abs(s.StdDev-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("sd = %v, want sqrt(5)", s.StdDev)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.P90 != 7 || s.StdDev != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 0}, {1, 40}, {0.5, 20}, {0.25, 10}, {0.125, 5}, {0.9, 36},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); !almost(got, c.want) {
			t.Errorf("P%.3f = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("should panic")
		}
	}()
	Percentile(nil, 0.5)
}

func TestCountBelow(t *testing.T) {
	vals := []float64{0.5, 1, 1.5, 2}
	if got := CountBelow(vals, 1); got != 1 {
		t.Fatalf("CountBelow(1) = %d", got)
	}
	if got := CountBelow(vals, 10); got != 4 {
		t.Fatalf("CountBelow(10) = %d", got)
	}
	if got := CountBelow(nil, 1); got != 0 {
		t.Fatalf("CountBelow(nil) = %d", got)
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			// Restrict to the magnitudes the metric domain produces (rates
			// and MKP values); astronomically large inputs overflow the
			// mean/variance sums and are out of scope.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		if s.Min > s.Median || s.Median > s.Max || s.P90 > s.Max || s.Min > s.Mean || s.Mean > s.Max {
			return false
		}
		if s.StdDev < 0 {
			return false
		}
		// Percentiles are monotone in p.
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := Percentile(sorted, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
