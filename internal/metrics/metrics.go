// Package metrics defines the measurement vocabulary of the paper:
//
//   - MKP, mispredictions per kilo-prediction, the per-class rate unit
//     (§4, "Confidence metrics");
//   - misp/KI, mispredictions per kilo-instruction, the whole-trace
//     accuracy unit (Table 1);
//   - Pcov / MPcov / MPrate, the coverage and rate triple reported for
//     every prediction class (§4);
//   - SENS / PVP / SPEC / PVN, Grunwald et al.'s quality metrics for
//     binary (high/low) confidence estimators (§2.2), used to compare the
//     storage-free estimator against the JRS baseline.
package metrics

import "fmt"

// Counts is a (predictions, mispredictions) pair.
type Counts struct {
	Preds uint64
	Misps uint64
}

// Add accumulates other into c.
//repro:deterministic
func (c *Counts) Add(other Counts) {
	c.Preds += other.Preds
	c.Misps += other.Misps
}

// Sub removes other from c, clamping at zero. The serve engine uses it
// to un-fold the tallies of an evicted session that is re-adopted from
// its checkpoint, so its branches are counted exactly once.
//repro:deterministic
func (c *Counts) Sub(other Counts) {
	if other.Preds > c.Preds {
		c.Preds = 0
	} else {
		c.Preds -= other.Preds
	}
	if other.Misps > c.Misps {
		c.Misps = 0
	} else {
		c.Misps -= other.Misps
	}
}

// Record tallies one resolved prediction.
//repro:hotpath
func (c *Counts) Record(mispredicted bool) {
	c.Preds++
	if mispredicted {
		c.Misps++
	}
}

// MKP returns the misprediction rate in mispredictions per
// kilo-prediction; 0 when there are no predictions.
//repro:deterministic
func (c Counts) MKP() float64 {
	if c.Preds == 0 {
		return 0
	}
	return 1000 * float64(c.Misps) / float64(c.Preds)
}

// Rate returns the misprediction rate as a fraction in [0, 1].
//repro:deterministic
func (c Counts) Rate() float64 { return c.MKP() / 1000 }

//repro:deterministic
func (c Counts) String() string {
	return fmt.Sprintf("%d/%d (%.1f MKP)", c.Misps, c.Preds, c.MKP())
}

// MPKI converts a misprediction count and instruction count to
// mispredictions per kilo-instruction.
//repro:deterministic
func MPKI(misps, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return 1000 * float64(misps) / float64(instructions)
}

// Pcov is the prediction coverage of a class: the fraction of all
// predictions that belong to it.
//repro:deterministic
func Pcov(class, total Counts) float64 {
	if total.Preds == 0 {
		return 0
	}
	return float64(class.Preds) / float64(total.Preds)
}

// MPcov is the misprediction coverage of a class: the fraction of all
// mispredictions that belong to it.
//repro:deterministic
func MPcov(class, total Counts) float64 {
	if total.Misps == 0 {
		return 0
	}
	return float64(class.Misps) / float64(total.Misps)
}

// MPrate is the misprediction rate of the class in MKP (an alias of
// Counts.MKP named as in the paper).
//repro:deterministic
func MPrate(class Counts) float64 { return class.MKP() }

// Binary is the confusion tally of a two-way (high/low confidence)
// estimator, in the axes of Grunwald et al.
type Binary struct {
	HighCorrect uint64 // high confidence, correctly predicted
	HighWrong   uint64 // high confidence, mispredicted
	LowCorrect  uint64 // low confidence, correctly predicted
	LowWrong    uint64 // low confidence, mispredicted
}

// Record tallies one resolved prediction.
//repro:hotpath
func (b *Binary) Record(highConfidence, mispredicted bool) {
	switch {
	case highConfidence && !mispredicted:
		b.HighCorrect++
	case highConfidence && mispredicted:
		b.HighWrong++
	case !highConfidence && !mispredicted:
		b.LowCorrect++
	default:
		b.LowWrong++
	}
}

// Add accumulates other into b.
//repro:deterministic
func (b *Binary) Add(other Binary) {
	b.HighCorrect += other.HighCorrect
	b.HighWrong += other.HighWrong
	b.LowCorrect += other.LowCorrect
	b.LowWrong += other.LowWrong
}

// Total returns the number of recorded predictions.
//repro:deterministic
func (b Binary) Total() uint64 {
	return b.HighCorrect + b.HighWrong + b.LowCorrect + b.LowWrong
}

//repro:deterministic
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Sens (sensitivity) is the fraction of correct predictions classified
// high confidence.
//repro:deterministic
func (b Binary) Sens() float64 { return ratio(b.HighCorrect, b.HighCorrect+b.LowCorrect) }

// PVP (predictive value of a positive test) is the probability that a
// high-confidence prediction is correct.
//repro:deterministic
func (b Binary) PVP() float64 { return ratio(b.HighCorrect, b.HighCorrect+b.HighWrong) }

// Spec (specificity) is the fraction of mispredictions correctly
// identified as low confidence.
//repro:deterministic
func (b Binary) Spec() float64 { return ratio(b.LowWrong, b.LowWrong+b.HighWrong) }

// PVN (predictive value of a negative test) is the fraction of
// low-confidence predictions that are effectively mispredicted.
//repro:deterministic
func (b Binary) PVN() float64 { return ratio(b.LowWrong, b.LowWrong+b.LowCorrect) }

//repro:deterministic
func (b Binary) String() string {
	return fmt.Sprintf("SENS=%.3f PVP=%.3f SPEC=%.3f PVN=%.3f", b.Sens(), b.PVP(), b.Spec(), b.PVN())
}
