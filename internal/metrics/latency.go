package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Latency accumulates duration samples for tail-latency reporting (the
// serving load generator records one sample per request batch). It is
// not safe for concurrent use; concurrent recorders keep one Latency
// each and Merge them afterwards.
type Latency struct {
	samples []float64 // seconds
	sorted  bool
}

// Observe records one duration sample.
func (l *Latency) Observe(d time.Duration) {
	l.samples = append(l.samples, d.Seconds())
	l.sorted = false
}

// Merge folds another recorder's samples into l.
func (l *Latency) Merge(other *Latency) {
	l.samples = append(l.samples, other.samples...)
	l.sorted = false
}

// N returns the number of recorded samples.
func (l *Latency) N() int { return len(l.samples) }

// Quantile returns the p-quantile (p in [0,1]) of the recorded samples
// as a duration; 0 when no samples were recorded.
func (l *Latency) Quantile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	return time.Duration(Percentile(l.samples, p) * float64(time.Second))
}

// Summary computes the distribution statistics of the recorded samples
// in seconds.
func (l *Latency) Summary() Summary { return Summarize(l.samples) }

// String reports the conventional latency quartet.
func (l *Latency) String() string {
	return fmt.Sprintf("p50=%v p90=%v p99=%v max=%v",
		l.Quantile(0.5), l.Quantile(0.9), l.Quantile(0.99), l.Quantile(1))
}
