package metrics

import (
	"fmt"
	"sort"
	"time"
)

// DefaultLatencyCap bounds the retained samples of a Latency recorder.
// Beyond the cap the recorder switches to reservoir sampling
// (Vitter's algorithm R), keeping a uniform random subset: memory stays
// O(cap) no matter how long a load run streams.
//
// Quantile estimates from a k-sample uniform reservoir carry a rank
// standard error of about sqrt(p*(1-p)/k) — at the default cap of
// 16384 the p99 rank is off by at most ~0.08 percentile points (one
// standard error), and the median by ~0.4. Below the cap the recorder
// is exact.
const DefaultLatencyCap = 16384

// Latency accumulates duration samples for tail-latency reporting (the
// serving load generator records one sample per request batch). It is
// not safe for concurrent use; concurrent recorders keep one Latency
// each and Merge them afterwards.
//
// The recorder retains at most its cap samples (DefaultLatencyCap
// unless SetCap chose another), reservoir-downsampling past it; N still
// counts every observation.
type Latency struct {
	samples []float64 // seconds; uniform reservoir once seen > cap
	seen    uint64    // total observations (not just retained)
	limit   int       // retention cap; 0 means DefaultLatencyCap
	rng     uint64    // splitmix64 state for reservoir replacement
	sorted  bool
}

// SetCap sets the retention cap (<= 0 restores DefaultLatencyCap).
// Call before the first Observe; lowering the cap later does not shrink
// an already-full reservoir.
//repro:deterministic
func (l *Latency) SetCap(n int) {
	if n <= 0 {
		n = DefaultLatencyCap
	}
	l.limit = n
}

//repro:deterministic
func (l *Latency) cap() int {
	if l.limit <= 0 {
		return DefaultLatencyCap
	}
	return l.limit
}

// next steps the inline splitmix64 PRNG. Seeding from the sample count
// keeps the recorder zero-value-ready and deterministic for tests.
func (l *Latency) next() uint64 {
	if l.rng == 0 {
		l.rng = l.seen*0x9e3779b97f4a7c15 + 0x1a2b3c4d5e6f7081
	}
	l.rng += 0x9e3779b97f4a7c15
	z := l.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Observe records one duration sample.
//repro:deterministic
func (l *Latency) Observe(d time.Duration) {
	l.observe(d.Seconds())
}

// observe runs one step of Vitter's algorithm R: fill the reservoir to
// cap, then replace a uniformly chosen slot with probability cap/seen.
//repro:deterministic
func (l *Latency) observe(v float64) {
	l.seen++
	if max := l.cap(); len(l.samples) >= max {
		// The PRNG step is pure, but which samples survive still depends
		// on observation arrival order across goroutines/merges.
		//repro:order-insensitive the reservoir is a deliberately lossy statistical summary; quantile estimates are exchangeable and never feed bit-reproduced output
		if j := l.next() % l.seen; j < uint64(max) {
			l.samples[j] = v
			l.sorted = false
		}
		return
	}
	l.samples = append(l.samples, v)
	l.sorted = false
}

// Merge folds another recorder's samples into l. The retained samples
// of other stream through l's reservoir; other's downsampled-away
// observations still count toward l.seen, so N stays the true total.
//repro:deterministic
func (l *Latency) Merge(other *Latency) {
	for _, v := range other.samples {
		l.observe(v)
	}
	l.seen += other.seen - uint64(len(other.samples))
}

// N returns the number of observed samples (including any the reservoir
// downsampled away).
//repro:deterministic
func (l *Latency) N() int { return int(l.seen) }

// Retained returns the number of samples currently held.
//repro:deterministic
func (l *Latency) Retained() int { return len(l.samples) }

// Quantile returns the p-quantile (p in [0,1]) of the retained samples
// as a duration; 0 when no samples were recorded. Exact while N is
// within the cap, a sqrt(p*(1-p)/cap)-rank-error estimate beyond it.
//repro:deterministic
func (l *Latency) Quantile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	return time.Duration(Percentile(l.samples, p) * float64(time.Second))
}

// Summary computes the distribution statistics of the retained samples
// in seconds.
//repro:deterministic
func (l *Latency) Summary() Summary { return Summarize(l.samples) }

// String reports the conventional latency quartet.
//repro:deterministic
func (l *Latency) String() string {
	return fmt.Sprintf("p50=%v p90=%v p99=%v max=%v",
		l.Quantile(0.5), l.Quantile(0.9), l.Quantile(0.99), l.Quantile(1))
}
