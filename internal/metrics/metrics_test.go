package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestCountsMKP(t *testing.T) {
	c := Counts{Preds: 1000, Misps: 40}
	if !almost(c.MKP(), 40) {
		t.Fatalf("MKP = %v, want 40", c.MKP())
	}
	if !almost(c.Rate(), 0.04) {
		t.Fatalf("Rate = %v, want 0.04", c.Rate())
	}
	var zero Counts
	if zero.MKP() != 0 {
		t.Fatal("zero counts must have MKP 0")
	}
}

func TestCountsRecordAdd(t *testing.T) {
	var c Counts
	c.Record(true)
	c.Record(false)
	c.Record(true)
	if c.Preds != 3 || c.Misps != 2 {
		t.Fatalf("counts = %+v", c)
	}
	var d Counts
	d.Add(c)
	d.Add(c)
	if d.Preds != 6 || d.Misps != 4 {
		t.Fatalf("after Add: %+v", d)
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}

func TestMPKI(t *testing.T) {
	if !almost(MPKI(42, 10000), 4.2) {
		t.Fatalf("MPKI = %v", MPKI(42, 10000))
	}
	if MPKI(42, 0) != 0 {
		t.Fatal("zero instructions must yield 0")
	}
}

func TestCoverages(t *testing.T) {
	total := Counts{Preds: 1000, Misps: 100}
	class := Counts{Preds: 250, Misps: 80}
	if !almost(Pcov(class, total), 0.25) {
		t.Fatalf("Pcov = %v", Pcov(class, total))
	}
	if !almost(MPcov(class, total), 0.8) {
		t.Fatalf("MPcov = %v", MPcov(class, total))
	}
	if !almost(MPrate(class), 320) {
		t.Fatalf("MPrate = %v", MPrate(class))
	}
	if Pcov(class, Counts{}) != 0 || MPcov(class, Counts{}) != 0 {
		t.Fatal("empty totals must yield 0 coverages")
	}
}

func TestBinaryMetricsKnownValues(t *testing.T) {
	// 90 high-correct, 10 high-wrong, 30 low-correct, 70 low-wrong.
	b := Binary{HighCorrect: 90, HighWrong: 10, LowCorrect: 30, LowWrong: 70}
	if !almost(b.Sens(), 90.0/120) {
		t.Errorf("Sens = %v", b.Sens())
	}
	if !almost(b.PVP(), 0.9) {
		t.Errorf("PVP = %v", b.PVP())
	}
	if !almost(b.Spec(), 70.0/80) {
		t.Errorf("Spec = %v", b.Spec())
	}
	if !almost(b.PVN(), 0.7) {
		t.Errorf("PVN = %v", b.PVN())
	}
	if b.Total() != 200 {
		t.Errorf("Total = %d", b.Total())
	}
	if b.String() == "" {
		t.Error("String empty")
	}
}

func TestBinaryRecord(t *testing.T) {
	var b Binary
	b.Record(true, false)
	b.Record(true, true)
	b.Record(false, false)
	b.Record(false, true)
	if b.HighCorrect != 1 || b.HighWrong != 1 || b.LowCorrect != 1 || b.LowWrong != 1 {
		t.Fatalf("confusion = %+v", b)
	}
	var c Binary
	c.Add(b)
	c.Add(b)
	if c.Total() != 8 {
		t.Fatalf("Total after Add = %d", c.Total())
	}
}

func TestBinaryZeroSafe(t *testing.T) {
	var b Binary
	for _, v := range []float64{b.Sens(), b.PVP(), b.Spec(), b.PVN()} {
		if v != 0 {
			t.Fatal("empty confusion must yield 0 metrics")
		}
	}
}

func TestQuickMetricsInRange(t *testing.T) {
	f := func(hc, hw, lc, lw uint16) bool {
		b := Binary{uint64(hc), uint64(hw), uint64(lc), uint64(lw)}
		for _, v := range []float64{b.Sens(), b.PVP(), b.Spec(), b.PVN()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoverageIdentities(t *testing.T) {
	// Splitting totals into two classes: coverages sum to 1 when both
	// classes are non-degenerate.
	f := func(aPreds, aMisps, bPreds, bMisps uint16) bool {
		a := Counts{uint64(aPreds) + 1, uint64(aMisps % (aPreds + 1))}
		b := Counts{uint64(bPreds) + 1, uint64(bMisps % (bPreds + 1))}
		var total Counts
		total.Add(a)
		total.Add(b)
		pc := Pcov(a, total) + Pcov(b, total)
		if math.Abs(pc-1) > 1e-9 {
			return false
		}
		if total.Misps > 0 {
			mc := MPcov(a, total) + MPcov(b, total)
			if math.Abs(mc-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
