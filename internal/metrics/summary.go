package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes the distribution of a quantity across traces — the
// paper quotes results in this form ("9 MKP with a maximum of 21 MKP",
// "24 out of 40 traces below 1 MKP").
type Summary struct {
	N        int
	Min, Max float64
	Mean     float64
	Median   float64
	P90      float64
	StdDev   float64
}

// Summarize computes distribution statistics over the given values. An
// empty input yields a zero Summary.
//repro:deterministic
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Percentile(sorted, 0.5),
		P90:    Percentile(sorted, 0.9),
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	varSum := 0.0
	for _, v := range sorted {
		d := v - s.Mean
		varSum += d * d
	}
	s.StdDev = math.Sqrt(varSum / float64(len(sorted)))
	return s
}

// Percentile returns the p-quantile (p in [0,1]) of an ascending-sorted
// slice using linear interpolation between closest ranks. It panics if
// the slice is empty.
//repro:deterministic
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("metrics: Percentile of empty slice")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// CountBelow reports how many values are strictly below the threshold —
// the paper's "24 out of 40 traces exhibit less than 1 MKP" phrasing.
func CountBelow(values []float64, threshold float64) int {
	n := 0
	for _, v := range values {
		if v < threshold {
			n++
		}
	}
	return n
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f median=%.2f p90=%.2f min=%.2f max=%.2f sd=%.2f",
		s.N, s.Mean, s.Median, s.P90, s.Min, s.Max, s.StdDev)
}
