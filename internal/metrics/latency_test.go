package metrics

import (
	"testing"
	"time"
)

func TestLatencyQuantiles(t *testing.T) {
	var l Latency
	if got := l.Quantile(0.5); got != 0 {
		t.Fatalf("empty recorder quantile = %v, want 0", got)
	}
	// 1ms..100ms in shuffled order; quantiles must sort internally.
	for _, ms := range []int{37, 1, 100, 50, 99, 2, 75, 25, 60, 10} {
		l.Observe(time.Duration(ms) * time.Millisecond)
	}
	if l.N() != 10 {
		t.Fatalf("N = %d, want 10", l.N())
	}
	if got := l.Quantile(0); got != 1*time.Millisecond {
		t.Fatalf("p0 = %v, want 1ms", got)
	}
	if got := l.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
	p50 := l.Quantile(0.5)
	if p50 < 37*time.Millisecond || p50 > 50*time.Millisecond {
		t.Fatalf("p50 = %v, want within [37ms, 50ms]", p50)
	}
	// Observing after a quantile read must re-sort.
	l.Observe(200 * time.Millisecond)
	if got := l.Quantile(1); got != 200*time.Millisecond {
		t.Fatalf("p100 after new sample = %v, want 200ms", got)
	}
}

// TestLatencyReservoirCap pins the bounded-memory behavior: past the
// cap the recorder keeps exactly cap samples, N still counts every
// observation, and the retained set remains a plausible uniform sample
// (quantiles stay near the true distribution).
func TestLatencyReservoirCap(t *testing.T) {
	var l Latency
	l.SetCap(1000)
	const total = 50_000
	// Uniform 1..total microseconds, ascending (a worst case for naive
	// retain-the-prefix downsampling).
	for i := 1; i <= total; i++ {
		l.Observe(time.Duration(i) * time.Microsecond)
	}
	if l.N() != total {
		t.Fatalf("N = %d, want %d", l.N(), total)
	}
	if l.Retained() != 1000 {
		t.Fatalf("Retained = %d, want 1000", l.Retained())
	}
	// Rank SE at k=1000, p=0.5 is ~1.6 percentile points; 5 SE bounds.
	p50 := l.Quantile(0.5)
	lo, hi := time.Duration(0.42*total)*time.Microsecond, time.Duration(0.58*total)*time.Microsecond
	if p50 < lo || p50 > hi {
		t.Fatalf("reservoir p50 = %v, want within [%v, %v]", p50, lo, hi)
	}
	if max := l.Quantile(1); max < time.Duration(0.9*total)*time.Microsecond {
		t.Fatalf("reservoir max = %v suspiciously low; prefix bias?", max)
	}
}

// TestLatencyMergeCapped checks Merge keeps the true observation count
// when donors were themselves downsampled.
func TestLatencyMergeCapped(t *testing.T) {
	var a, b Latency
	a.SetCap(100)
	b.SetCap(100)
	for i := 0; i < 500; i++ {
		a.Observe(time.Millisecond)
		b.Observe(2 * time.Millisecond)
	}
	a.Merge(&b)
	if a.N() != 1000 {
		t.Fatalf("merged N = %d, want 1000", a.N())
	}
	if a.Retained() != 100 {
		t.Fatalf("merged Retained = %d, want 100", a.Retained())
	}
	if got := a.Quantile(1); got != 2*time.Millisecond {
		t.Fatalf("merged p100 = %v, want 2ms", got)
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b Latency
	a.Observe(1 * time.Millisecond)
	b.Observe(3 * time.Millisecond)
	b.Observe(5 * time.Millisecond)
	a.Merge(&b)
	if a.N() != 3 {
		t.Fatalf("merged N = %d, want 3", a.N())
	}
	if got := a.Quantile(1); got != 5*time.Millisecond {
		t.Fatalf("merged p100 = %v, want 5ms", got)
	}
	s := a.Summary()
	if s.N != 3 || s.Min != 0.001 || s.Max != 0.005 {
		t.Fatalf("merged summary = %+v", s)
	}
}
