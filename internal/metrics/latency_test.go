package metrics

import (
	"testing"
	"time"
)

func TestLatencyQuantiles(t *testing.T) {
	var l Latency
	if got := l.Quantile(0.5); got != 0 {
		t.Fatalf("empty recorder quantile = %v, want 0", got)
	}
	// 1ms..100ms in shuffled order; quantiles must sort internally.
	for _, ms := range []int{37, 1, 100, 50, 99, 2, 75, 25, 60, 10} {
		l.Observe(time.Duration(ms) * time.Millisecond)
	}
	if l.N() != 10 {
		t.Fatalf("N = %d, want 10", l.N())
	}
	if got := l.Quantile(0); got != 1*time.Millisecond {
		t.Fatalf("p0 = %v, want 1ms", got)
	}
	if got := l.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
	p50 := l.Quantile(0.5)
	if p50 < 37*time.Millisecond || p50 > 50*time.Millisecond {
		t.Fatalf("p50 = %v, want within [37ms, 50ms]", p50)
	}
	// Observing after a quantile read must re-sort.
	l.Observe(200 * time.Millisecond)
	if got := l.Quantile(1); got != 200*time.Millisecond {
		t.Fatalf("p100 after new sample = %v, want 200ms", got)
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b Latency
	a.Observe(1 * time.Millisecond)
	b.Observe(3 * time.Millisecond)
	b.Observe(5 * time.Millisecond)
	a.Merge(&b)
	if a.N() != 3 {
		t.Fatalf("merged N = %d, want 3", a.N())
	}
	if got := a.Quantile(1); got != 5*time.Millisecond {
		t.Fatalf("merged p100 = %v, want 5ms", got)
	}
	s := a.Summary()
	if s.N != 3 || s.Min != 0.001 || s.Max != 0.005 {
		t.Fatalf("merged summary = %+v", s)
	}
}
