// Package multipath models selective dual-path execution (Klauser,
// Paithankar & Grunwald, ISCA 1998), the third confidence application the
// paper cites (§2.1): on a low-confidence branch, fetch both paths so
// that a misprediction costs no squash — at the price of splitting fetch
// bandwidth while both paths are alive.
//
// Dual-path only pays when forking is reserved for branches that are
// genuinely likely to mispredict; forking on every branch wastes half the
// front end. A confidence estimator with a high-PVN low class — like the
// paper's — is what makes the policy selective enough to win.
package multipath

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/tage"
	"repro/internal/trace"
)

// ForkPolicy decides which predictions fork a second path.
type ForkPolicy uint8

const (
	// ForkNever is the baseline single-path front end.
	ForkNever ForkPolicy = iota
	// ForkLowConfidence forks on low-confidence predictions only.
	ForkLowConfidence
	// ForkLowOrMedium forks on low- and medium-confidence predictions.
	ForkLowOrMedium
	// ForkAlways forks on every conditional branch (the straw man that
	// shows why confidence selectivity matters).
	ForkAlways
)

// String names the policy.
func (p ForkPolicy) String() string {
	switch p {
	case ForkNever:
		return "never"
	case ForkLowConfidence:
		return "fork-low"
	case ForkLowOrMedium:
		return "fork-low+medium"
	case ForkAlways:
		return "fork-always"
	default:
		return "invalid-policy"
	}
}

// Config parameterizes the front end.
type Config struct {
	// FetchWidth is instructions per cycle on a single path.
	FetchWidth int
	// ResolveDelay is the fetch-to-resolve latency in cycles.
	ResolveDelay int
	// Policy selects the forking rule.
	Policy ForkPolicy
}

// DefaultConfig matches the fetchgate front end dimensions.
func DefaultConfig() Config {
	return Config{FetchWidth: 4, ResolveDelay: 12, Policy: ForkLowConfidence}
}

func (c Config) validate() error {
	if c.FetchWidth < 1 || c.ResolveDelay < 1 {
		return errors.New("multipath: FetchWidth and ResolveDelay must be >= 1")
	}
	return nil
}

// Stats reports one run.
type Stats struct {
	Policy ForkPolicy
	Cycles uint64
	// UsefulFetched counts correct-path instructions.
	UsefulFetched uint64
	// WrongPathFetched counts single-path wrong-path instructions
	// (squashed work after an unforked misprediction).
	WrongPathFetched uint64
	// DualPathFetched counts instructions fetched for the discarded
	// second path of forks (the bandwidth price of forking).
	DualPathFetched uint64
	// Forks counts forked branches; SavedSquashes counts forks that
	// turned out mispredicted (the squash they avoided).
	Forks         uint64
	SavedSquashes uint64
	Branches      uint64
	Mispredicted  uint64
}

// WastedFraction is the share of all fetched instructions that were
// thrown away (wrong-path plus discarded dual-path work).
func (s Stats) WastedFraction() float64 {
	total := s.UsefulFetched + s.WrongPathFetched + s.DualPathFetched
	if total == 0 {
		return 0
	}
	return float64(s.WrongPathFetched+s.DualPathFetched) / float64(total)
}

// IPC is useful instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.UsefulFetched) / float64(s.Cycles)
}

// ForkAccuracy is the fraction of forks that avoided a squash.
func (s Stats) ForkAccuracy() float64 {
	if s.Forks == 0 {
		return 0
	}
	return float64(s.SavedSquashes) / float64(s.Forks)
}

func (s Stats) String() string {
	return fmt.Sprintf("%v: IPC=%.2f wasted=%.1f%% forks=%d (%.0f%% useful)",
		s.Policy, s.IPC(), 100*s.WastedFraction(), s.Forks, 100*s.ForkAccuracy())
}

type inflight struct {
	resolveAt    uint64
	mispredicted bool
	forked       bool
}

// Run drives the dual-path front end over a trace with a fresh estimator.
func Run(est *core.Estimator, tr trace.Trace, cfg Config, limit uint64) (Stats, error) {
	if err := cfg.validate(); err != nil {
		return Stats{}, err
	}
	st := Stats{Policy: cfg.Policy}
	r := trace.Limit(tr, limit).Open()

	var pending []inflight
	dualActive := 0 // forked branches in flight (each halves fetch width)
	wrongPath := false
	recordLeft := 0
	var cur trace.Branch
	haveRecord := false
	done := false

	for !done || len(pending) > 0 {
		st.Cycles++
		cycle := st.Cycles
		for len(pending) > 0 && pending[0].resolveAt <= cycle {
			b := pending[0]
			pending = pending[1:]
			st.Branches++
			if b.forked {
				dualActive--
				if b.mispredicted {
					// The second path was the right one: no squash window.
					st.SavedSquashes++
				}
			} else if b.mispredicted {
				wrongPath = false
			}
			if b.mispredicted {
				st.Mispredicted++
			}
		}

		width := cfg.FetchWidth
		if dualActive > 0 {
			// Bandwidth split between the live paths; the off-path half is
			// fetched-and-discarded work.
			width = cfg.FetchWidth / 2
			if width < 1 {
				width = 1
			}
			st.DualPathFetched += uint64(cfg.FetchWidth - width)
		}

		budget := width
		for budget > 0 {
			if wrongPath {
				st.WrongPathFetched += uint64(budget)
				break
			}
			if !haveRecord {
				if done {
					break
				}
				b, err := r.Next()
				if errors.Is(err, io.EOF) {
					done = true
					break
				}
				if err != nil {
					return st, err
				}
				cur = b
				recordLeft = int(b.Instr)
				haveRecord = true
			}
			n := recordLeft
			if n > budget {
				n = budget
			}
			st.UsefulFetched += uint64(n)
			recordLeft -= n
			budget -= n
			if recordLeft == 0 {
				haveRecord = false
				pred, _, level := est.Predict(cur.PC)
				miss := pred != cur.Taken
				est.Update(cur.PC, cur.Taken)
				fork := false
				switch cfg.Policy {
				case ForkLowConfidence:
					fork = level == core.Low
				case ForkLowOrMedium:
					fork = level != core.High
				case ForkAlways:
					fork = true
				}
				// Hardware forks are a limited resource: model one live
				// fork at a time, as the original selective eager design.
				if fork && dualActive > 0 {
					fork = false
				}
				if fork {
					st.Forks++
					dualActive++
				}
				pending = append(pending, inflight{
					resolveAt:    cycle + uint64(cfg.ResolveDelay),
					mispredicted: miss,
					forked:       fork,
				})
				if miss && !fork {
					wrongPath = true
					break
				}
			}
		}
	}
	return st, nil
}

// Compare runs all four policies with fresh estimators over the same
// trace.
func Compare(cfg tage.Config, opts core.Options, front Config, tr trace.Trace, limit uint64) (map[ForkPolicy]Stats, error) {
	out := make(map[ForkPolicy]Stats, 4)
	for _, p := range []ForkPolicy{ForkNever, ForkLowConfidence, ForkLowOrMedium, ForkAlways} {
		c := front
		c.Policy = p
		st, err := Run(core.NewEstimator(cfg, opts), tr, c, limit)
		if err != nil {
			return nil, err
		}
		out[p] = st
	}
	return out, nil
}
