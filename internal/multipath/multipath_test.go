package multipath

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tage"
	"repro/internal/workload"
)

func opts() core.Options { return core.Options{Mode: core.ModeProbabilistic} }

func TestPolicyNames(t *testing.T) {
	want := map[ForkPolicy]string{
		ForkNever:         "never",
		ForkLowConfidence: "fork-low",
		ForkLowOrMedium:   "fork-low+medium",
		ForkAlways:        "fork-always",
	}
	for p, n := range want {
		if p.String() != n {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), n)
		}
	}
	if ForkPolicy(9).String() != "invalid-policy" {
		t.Error("invalid policy should stringify as invalid")
	}
}

func TestValidation(t *testing.T) {
	tr, _ := workload.ByName("FP-1")
	if _, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, Config{}, 100); err == nil {
		t.Fatal("zero config must be rejected")
	}
}

func TestBaselineHasNoForks(t *testing.T) {
	tr, _ := workload.ByName("INT-3")
	cfg := DefaultConfig()
	cfg.Policy = ForkNever
	st, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Forks != 0 || st.DualPathFetched != 0 || st.SavedSquashes != 0 {
		t.Fatalf("baseline forked: %+v", st)
	}
	if st.Branches != 20000 || st.Mispredicted == 0 {
		t.Fatalf("degenerate baseline: %+v", st)
	}
}

func TestForkingAvoidsSquashes(t *testing.T) {
	tr, _ := workload.ByName("300.twolf")
	st, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, DefaultConfig(), 60000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Forks == 0 {
		t.Fatal("fork-low never forked on a hard trace")
	}
	if st.SavedSquashes == 0 {
		t.Fatal("no squash ever avoided")
	}
	// The paper's low class mispredicts ~30%: fork accuracy should be in
	// that region (far above the base misprediction rate).
	base := float64(st.Mispredicted) / float64(st.Branches)
	if st.ForkAccuracy() < 2*base {
		t.Errorf("fork accuracy %.3f should be well above base rate %.3f",
			st.ForkAccuracy(), base)
	}
}

func TestConfidenceSelectivityBeatsForkAlways(t *testing.T) {
	tr, _ := workload.ByName("INT-5")
	all, err := Compare(tage.Small16K(), opts(), DefaultConfig(), tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	low, always := all[ForkLowConfidence], all[ForkAlways]
	// Forking everything burns bandwidth on high-confidence branches whose
	// second path is almost always discarded waste.
	if low.WastedFraction() >= always.WastedFraction() {
		t.Errorf("fork-low waste %.3f should undercut fork-always %.3f",
			low.WastedFraction(), always.WastedFraction())
	}
	if low.ForkAccuracy() <= always.ForkAccuracy() {
		t.Errorf("fork-low accuracy %.3f should beat fork-always %.3f",
			low.ForkAccuracy(), always.ForkAccuracy())
	}
	if low.IPC() <= always.IPC() {
		t.Errorf("fork-low IPC %.3f should beat fork-always %.3f", low.IPC(), always.IPC())
	}
}

func TestForkLowBeatsBaselineOnHardTrace(t *testing.T) {
	tr, _ := workload.ByName("300.twolf")
	all, err := Compare(tage.Small16K(), opts(), DefaultConfig(), tr, 60000)
	if err != nil {
		t.Fatal(err)
	}
	never, low := all[ForkNever], all[ForkLowConfidence]
	// Avoided squashes must buy cycles: the forked run finishes no slower
	// (and usually faster) on a misprediction-bound trace.
	if low.Cycles > never.Cycles {
		t.Errorf("fork-low %d cycles, baseline %d: dual-path should not lose", low.Cycles, never.Cycles)
	}
}

func TestDeterministic(t *testing.T) {
	tr, _ := workload.ByName("MM-4")
	a, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, DefaultConfig(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(core.NewEstimator(tage.Small16K(), opts()), tr, DefaultConfig(), 20000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestStatsZeroSafe(t *testing.T) {
	var st Stats
	if st.WastedFraction() != 0 || st.IPC() != 0 || st.ForkAccuracy() != 0 {
		t.Fatal("zero stats accessors must be 0")
	}
	if st.String() == "" {
		t.Fatal("String empty")
	}
}
