// Package analysis is the repository's static-analysis framework: a
// stdlib-only analogue of golang.org/x/tools/go/analysis sized to this
// module's needs. It exists because the repo's core guarantees — zero
// allocations per branch on every predictor and serve hot path,
// bit-identical snapshot/restore for every backend family, exactly-once
// tally folding under the session lock, exhaustive wire-frame dispatch —
// were previously enforced only dynamically, by runtime pins that fire
// after a regression ships. The analyzers under internal/analysis/...
// prove those invariants at vet time instead.
//
// An Analyzer inspects one type-checked package (a Pass) and reports
// Diagnostics. Analyzers communicate with the code under analysis via
// //repro: directive comments (see Directives); the conventions are
// documented in PERF.md ("Static invariants") and on each analyzer.
//
// Drivers: cmd/tagevet runs the whole suite over package patterns
// (go run ./cmd/tagevet ./...) or as a go vet -vettool.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check: a name, a doc string, and a Run function
// applied to each package under analysis.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects the package and reports findings via pass.Report. A
	// non-nil error aborts the whole analysis run (reserved for internal
	// failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo has Types, Defs, Uses and Selections filled in.
	TypesInfo *types.Info
	// Dirs indexes every //repro: directive in Files.
	Dirs *Directives
	// Facts carries module-wide directive knowledge (hot-path function
	// sets across packages). May be empty, never nil in driver runs.
	Facts *ModuleFacts
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// ModuleFacts is directive knowledge spanning the whole module, built by
// the driver from syntax alone (no type checking) so analyzers can
// reason about calls into sibling packages.
type ModuleFacts struct {
	// ModulePath is the module under analysis ("repro"); packages whose
	// import path is outside it are treated as stdlib/external.
	ModulePath string
	// Hotpath holds the keys (FuncKey) of every function in the module
	// annotated //repro:hotpath.
	Hotpath map[string]bool
	// Deterministic holds the keys (FuncKey) of every function in the
	// module annotated //repro:deterministic.
	Deterministic map[string]bool
	// AtomicFields holds FieldKey entries for struct fields that demand
	// atomic access discipline everywhere in the module: fields of a
	// sync/atomic type, and plain fields whose address is handed to an
	// atomic.* call inside their home package.
	AtomicFields map[string]bool
}

// NewModuleFacts returns empty facts.
func NewModuleFacts() *ModuleFacts {
	return &ModuleFacts{
		Hotpath:       make(map[string]bool),
		Deterministic: make(map[string]bool),
		AtomicFields:  make(map[string]bool),
	}
}

// FieldKey names a struct field uniquely across the module:
// "pkgpath.Type.Field".
func FieldKey(pkgPath, typeName, fieldName string) string {
	return pkgPath + "." + typeName + "." + fieldName
}

// FuncKey names a function or method uniquely across the module:
// "pkgpath.Func" for package functions, "pkgpath.Type.Method" for
// methods (pointer receivers are not distinguished from value
// receivers).
func FuncKey(pkgPath, recv, name string) string {
	if recv == "" {
		return pkgPath + "." + name
	}
	return pkgPath + "." + recv + "." + name
}

// TypeFuncKey is FuncKey for a resolved *types.Func.
func TypeFuncKey(f *types.Func) string {
	pkg := f.Pkg()
	if pkg == nil {
		return f.Name()
	}
	recv := ""
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv = recvTypeName(sig.Recv().Type())
	}
	return FuncKey(pkg.Path(), recv, f.Name())
}

// recvTypeName returns the base named-type name of a receiver type.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	}
	return ""
}

// DeclFuncKey is FuncKey for a function declaration in the given
// package, derived from syntax alone.
func DeclFuncKey(pkgPath string, fn *ast.FuncDecl) string {
	return FuncKey(pkgPath, RecvBaseName(fn), fn.Name.Name)
}

// RecvBaseName returns the receiver's base type name ("" for package
// functions), derived from syntax alone.
func RecvBaseName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver [T]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
