// Package hot is the hotpath analyzer fixture: annotated functions with
// deliberate allocations (each carrying a // want expectation), plus
// negative cases proving the escape hatches and the dynamic-dispatch
// boundary stay silent.
package hot

import (
	"fmt"
	"sync"
	"sync/atomic"
)

type ring struct {
	mu    sync.Mutex
	n     atomic.Int64
	buf   []int
	items map[int]int
}

//repro:hotpath
func double(x int) int { return x + x }

// cold is deliberately unannotated: hot callers must not call it, and
// its own allocations are not the analyzer's business.
func cold(n int) []int { return make([]int, n) }

// clean is the golden hot path: locks, atomics, annotated callees and
// append into reused storage, all alloc-free.
//repro:hotpath
func clean(r *ring, xs []int) int {
	r.mu.Lock()
	s := 0
	for _, x := range xs {
		s += double(x)
	}
	r.buf = append(r.buf[:0], s)
	r.n.Add(1)
	r.mu.Unlock()
	return s
}

//repro:hotpath
func allocating(r *ring, n int) {
	s := make([]int, n) // want "make allocates in hot path"
	_ = s
	var fresh []int
	fresh = append(fresh, n) // want "append to fresh grows a fresh slice"
	_ = fresh
	v := r.items[n] // want "map access in hot path"
	fmt.Println(v)  // want "call to fmt.Println: package fmt is not on the hot-path stdlib allow-list" "implicit conversion of int to interface boxes"
	_ = cold(n)     // want "call to hot.cold: callee is not //repro:hotpath"
	p := &ring{}    // want "&composite literal may escape"
	_ = p
	f := func() int { return n } // want "closure in hot path"
	_ = f
}

//repro:hotpath
func boxes(n int) any {
	return n // want "implicit conversion of int to interface boxes"
}

//repro:hotpath
func strings2(a, b string) []byte {
	c := a + b       // want "string concatenation allocates in hot path"
	return []byte(c) // want "conversion allocates in hot path"
}

//repro:hotpath
func deferLoop(ms []*sync.Mutex) {
	for _, m := range ms {
		m.Lock()
		defer m.Unlock() // want "defer inside a loop"
	}
}

//repro:hotpath
func spawns(f func()) {
	go f() // want "go statement in hot path"
}

//repro:hotpath
func sends(ch chan int, v int) {
	ch <- v // want "channel send in hot path"
}

type sink interface{ put(int) }

// viaInterface calls through an interface: the dynamic boundary the
// runtime alloc pins cover, accepted without annotation on the callee.
//repro:hotpath
func viaInterface(s sink, n int) { s.put(n) }

// justified shows the escape hatch: the finding is suppressed and the
// directive counts as used.
//repro:hotpath
func justified(n int) {
	_ = make([]byte, n) //repro:allow-alloc warmup scratch, measured off the steady-state path
}

// unjustified escapes without saying why: the directive itself is the
// finding.
//repro:hotpath
func unjustified(n int) {
	_ = make([]byte, n) //repro:allow-alloc // want "requires a justification"
}

// stale carries an escape that suppresses nothing.
//repro:hotpath
func stale(n int) int {
	return n + n //repro:allow-alloc nothing allocates here // want "unused //repro:allow-alloc"
}
