// Observability-instrumentation fixtures: the obs primitives (atomic
// counters/gauges, the fixed-bucket histogram, the flight-recorder
// ring) are allow-listed for hot paths, while a naive map-backed
// metric — the thing the allow-list exists to steer people away from —
// still fails the vet.
package hot

import (
	"time"

	"repro/internal/obs"
)

type instrumented struct {
	served  obs.Counter
	depth   obs.Gauge
	latency obs.Histogram
	rec     *obs.FlightRecorder
}

// observe is the golden instrumented hot path: counter bump, gauge set,
// histogram observe and one flight-recorder event, all alloc-free and
// all silent under the analyzer.
//
//repro:hotpath
func observe(m *instrumented, d time.Duration, sess uint64) {
	m.served.Inc()
	m.served.Add(2)
	m.depth.Set(1)
	m.depth.Add(-1)
	m.latency.Observe(d)
	m.latency.ObserveValue(uint64(d))
	m.rec.Record(obs.Event{Kind: obs.EvBatch, Session: sess, ServeNS: int64(d)})
}

type naiveMetrics struct {
	counts map[string]uint64
}

// naive is the anti-pattern the obs package replaces: per-label map
// lookups hash and may grow on every observation.
//
//repro:hotpath
func naive(m *naiveMetrics, label string) {
	m.counts[label]++ // want "map access in hot path"
}

// offList: obs functions outside the curated primitive set (quantiles,
// text rendering — the cold query side) stay rejected on hot paths.
//
//repro:hotpath
func offList(m *instrumented) time.Duration {
	return m.latency.Quantile(0.99) // want "call to obs.Histogram.Quantile: not on the hot-path stdlib allow-list"
}
