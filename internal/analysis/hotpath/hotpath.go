// Package hotpath implements the hotpath analyzer: functions annotated
// //repro:hotpath must be statically allocation-free.
//
// The repo's per-branch paths — every predictor's Predict/Update, the
// history folds, the wire codec, the serve session step — are pinned at
// 0 allocs/op by runtime benchmarks, but those fire only after a
// regression ships. This analyzer rejects the allocation at vet time:
// inside a //repro:hotpath function it reports
//
//   - make, new, slice/map composite literals, &T{...} literals
//   - append to a slice that is provably fresh in this function (declared
//     empty, so the append must grow); append into caller-provided or
//     reused storage is the repo's amortized-zero idiom and is allowed
//   - map reads, writes, deletes and iteration; channel operations, go
//     statements, select; defer inside a loop
//   - closures (func literals capture and escape)
//   - string concatenation and string<->[]byte/[]rune conversions
//   - implicit interface conversions (boxing) at call arguments,
//     assignments and returns
//   - calls whose callee is statically known and is neither another
//     //repro:hotpath function nor on the small stdlib allow-list of
//     alloc-free primitives (sync lock/unlock, sync/atomic, math,
//     math/bits, encoding/binary varint and byte-order helpers). Calls
//     through interfaces and func values are the dynamic boundary and
//     are accepted — the runtime alloc pins still cover them.
//
// A finding is suppressed by //repro:allow-alloc <justification> on the
// offending line (or the comment block immediately above); the
// justification is mandatory, and an allow-alloc that suppresses nothing
// is itself reported so stale escapes cannot linger.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the hotpath analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "reject statically-visible allocations in //repro:hotpath functions",
	Run:  run,
}

// stdlibAllow lists stdlib callees accepted inside hot paths. A nil set
// allows every function of the package; otherwise the function (or
// Type.Method) key must be present.
var stdlibAllow = map[string]map[string]bool{
	"sync": {
		"Mutex.Lock": true, "Mutex.Unlock": true, "Mutex.TryLock": true,
		"RWMutex.Lock": true, "RWMutex.Unlock": true,
		"RWMutex.RLock": true, "RWMutex.RUnlock": true,
		"RWMutex.TryLock": true, "RWMutex.TryRLock": true,
	},
	"sync/atomic": nil,
	"math":        nil,
	"math/bits":   nil,
	// Table-driven CRC over an existing buffer: no allocation, and on
	// amd64/arm64 it dispatches to a hardware-accelerated kernel.
	// MakeTable is deliberately absent — build tables at init, not on
	// the hot path.
	"hash/crc32": {"Checksum": true, "Update": true},
	// The observability primitives are designed for hot paths (atomic
	// counters, fixed-bucket histograms, a preallocated event ring); in
	// the module itself they are vetted as //repro:hotpath functions, and
	// this entry admits them when the analyzed code is outside the module
	// (fixtures, vendored copies).
	"repro/internal/obs": {
		"Counter.Inc": true, "Counter.Add": true,
		"Gauge.Set": true, "Gauge.Add": true,
		"Histogram.Observe": true, "Histogram.ObserveValue": true,
		"FlightRecorder.Record": true,
	},
	"encoding/binary": {
		"Uvarint": true, "Varint": true,
		"PutUvarint": true, "PutVarint": true,
		"AppendUvarint": true, "AppendVarint": true,
		"littleEndian.Uint16": true, "littleEndian.Uint32": true, "littleEndian.Uint64": true,
		"littleEndian.PutUint16": true, "littleEndian.PutUint32": true, "littleEndian.PutUint64": true,
		"littleEndian.AppendUint16": true, "littleEndian.AppendUint32": true, "littleEndian.AppendUint64": true,
		"bigEndian.Uint16": true, "bigEndian.Uint32": true, "bigEndian.Uint64": true,
		"bigEndian.PutUint16": true, "bigEndian.PutUint32": true, "bigEndian.PutUint64": true,
		"bigEndian.AppendUint16": true, "bigEndian.AppendUint32": true, "bigEndian.AppendUint64": true,
	},
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, justified: make(map[token.Pos]bool)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := analysis.FuncDirective(fn, "hotpath"); !ok {
				continue
			}
			c.checkFunc(fn)
		}
	}
	for _, dir := range pass.Dirs.Unused("allow-alloc") {
		pass.Reportf(dir.Pos, "unused //repro:allow-alloc (no hot-path finding on this line; remove the stale escape)")
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// fresh holds local slice vars of the current function declared with
	// no backing storage: any append to one must grow.
	fresh map[*types.Var]bool
	// enclosingSig is the signature of the hot function being checked
	// (for boxing checks at return statements).
	enclosingSig *types.Signature
	// justified dedupes missing-justification reports per directive.
	justified map[token.Pos]bool
}

// report emits a finding unless the line carries a justified
// //repro:allow-alloc escape.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if dir, ok := c.pass.Dirs.Get(pos, "allow-alloc"); ok {
		if dir.Args == "" && !c.justified[dir.Pos] {
			c.justified[dir.Pos] = true
			c.pass.Reportf(dir.Pos, "//repro:allow-alloc requires a justification (why is this allocation acceptable on a hot path?)")
		}
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	c.fresh = make(map[*types.Var]bool)
	c.enclosingSig = nil
	if o, ok := c.pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
		c.enclosingSig, _ = o.Type().(*types.Signature)
	}
	c.collectFresh(fn.Body)
	c.walk(fn.Body, 0)
}

// collectFresh records local slice variables declared empty — var s []T,
// s := []T(nil) — whose appends must therefore allocate. Variables
// initialized from parameters, fields or slicings keep their backing
// storage and stay appendable.
func (c *checker) collectFresh(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok && isSlice(v.Type()) {
						c.fresh[v] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := c.pass.TypesInfo.Defs[id].(*types.Var)
				if !ok || !isSlice(v.Type()) {
					continue
				}
				if tv, ok := c.pass.TypesInfo.Types[n.Rhs[i]]; ok && tv.IsNil() {
					c.fresh[v] = true
				}
			}
		}
		return true
	})
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// rootVar resolves an append destination to the variable it names, or
// nil for field/index/call-rooted destinations.
func (c *checker) rootVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// walk checks one statement tree; loopDepth counts enclosing loops (for
// the defer rule).
func (c *checker) walk(n ast.Node, loopDepth int) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			c.walkLoop(n.Init, n.Cond, n.Post, nil, n.Body, loopDepth)
			return false
		case *ast.RangeStmt:
			if tv, ok := c.pass.TypesInfo.Types[n.X]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					c.report(n.Pos(), "range over map in hot path (map iteration; hot paths use flat storage)")
				case *types.Chan:
					c.report(n.Pos(), "range over channel in hot path")
				}
			}
			c.walkLoop(nil, nil, nil, n, n.Body, loopDepth)
			return false
		case *ast.DeferStmt:
			if loopDepth > 0 {
				c.report(n.Pos(), "defer inside a loop allocates per iteration; unlock/clean up explicitly")
			}
			c.checkCall(n.Call)
			c.walkChildren(n.Call, loopDepth)
			return false
		case *ast.GoStmt:
			c.report(n.Pos(), "go statement in hot path (spawning allocates and breaks the serial per-branch contract)")
		case *ast.SelectStmt:
			c.report(n.Pos(), "select in hot path (channel operations)")
		case *ast.SendStmt:
			c.report(n.Pos(), "channel send in hot path")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.report(n.Pos(), "channel receive in hot path")
			}
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(n.Pos(), "&composite literal may escape and allocate in hot path")
				}
			}
		case *ast.FuncLit:
			c.report(n.Pos(), "closure in hot path (func literals capture and allocate)")
			return false // the literal's body is not part of the annotated path
		case *ast.CompositeLit:
			if tv, ok := c.pass.TypesInfo.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					c.report(n.Pos(), "slice literal allocates in hot path")
				case *types.Map:
					c.report(n.Pos(), "map literal allocates in hot path")
				}
			}
		case *ast.IndexExpr:
			if tv, ok := c.pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					c.report(n.Pos(), "map access in hot path (hashing and possible growth; hot paths use flat storage)")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := c.pass.TypesInfo.Types[n]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						c.report(n.Pos(), "string concatenation allocates in hot path")
					}
				}
			}
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
					if tv, ok := c.pass.TypesInfo.Types[n.Lhs[i]]; ok {
						c.checkBoxing(n.Rhs[i], tv.Type)
					}
				}
			}
		case *ast.ReturnStmt:
			c.checkReturn(n)
		}
		return true
	})
}

// walkChildren inspects the children of a node already handled.
func (c *checker) walkChildren(n ast.Node, loopDepth int) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		c.walk(child, loopDepth)
		return false
	})
}

func (c *checker) walkLoop(init, cond, post ast.Node, rng *ast.RangeStmt, body *ast.BlockStmt, loopDepth int) {
	for _, h := range []ast.Node{init, cond, post} {
		if h != nil {
			c.walk(h, loopDepth)
		}
	}
	if rng != nil {
		if rng.Key != nil {
			c.walk(rng.Key, loopDepth)
		}
		if rng.Value != nil {
			c.walk(rng.Value, loopDepth)
		}
		c.walk(rng.X, loopDepth)
	}
	c.walk(body, loopDepth+1)
}

// checkCall classifies one call: builtin, conversion, or function call.
func (c *checker) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Conversion T(x).
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}

	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[f.Sel]
	default:
		// Call of a call result or other dynamic callee: the call itself
		// does not allocate.
		c.checkCallArgs(call)
		return
	}

	switch o := obj.(type) {
	case *types.Builtin:
		c.checkBuiltin(call, o.Name())
		return
	case *types.Func:
		c.checkCallee(call, o)
	case *types.Var:
		// func-valued variable or field: the indirect call is alloc-free.
	}
	c.checkCallArgs(call)
}

func (c *checker) checkBuiltin(call *ast.CallExpr, name string) {
	switch name {
	case "make":
		c.report(call.Pos(), "make allocates in hot path; preallocate at construction")
	case "new":
		c.report(call.Pos(), "new allocates in hot path; preallocate at construction")
	case "append":
		if len(call.Args) > 0 {
			if v := c.rootVar(call.Args[0]); v != nil && c.fresh[v] {
				c.report(call.Pos(), "append to %s grows a fresh slice in hot path; append into reused or caller-provided storage", v.Name())
			}
		}
	case "delete":
		c.report(call.Pos(), "map delete in hot path")
	case "close":
		c.report(call.Pos(), "channel close in hot path")
	case "print", "println":
		c.report(call.Pos(), "%s allocates in hot path", name)
	case "panic":
		// The crash path may allocate; reaching it means the invariant is
		// already lost, so panic itself is accepted (its argument
		// expression is still checked).
	}
}

// checkCallee validates a statically-resolved callee: it must be another
// hot-path function, a stdlib allow-list entry, or dynamic.
func (c *checker) checkCallee(call *ast.CallExpr, f *types.Func) {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
		return // dynamic dispatch: the boundary the runtime pins cover
	}
	pkg := f.Pkg()
	if pkg == nil {
		return // error.Error, unsafe builtins
	}
	path := pkg.Path()
	if c.pass.Facts != nil && c.moduleLocal(path) {
		if !c.pass.Facts.Hotpath[analysis.TypeFuncKey(f)] {
			c.report(call.Pos(), "call to %s: callee is not //repro:hotpath (annotate it or justify with //repro:allow-alloc)", calleeName(f))
		}
		return
	}
	allowed, ok := stdlibAllow[path]
	if !ok {
		c.report(call.Pos(), "call to %s: package %s is not on the hot-path stdlib allow-list", calleeName(f), path)
		return
	}
	if allowed == nil {
		return
	}
	key := f.Name()
	if recv := sig.Recv(); recv != nil {
		if base := recvName(recv.Type()); base != "" {
			key = base + "." + key
		}
	}
	if !allowed[key] {
		c.report(call.Pos(), "call to %s: not on the hot-path stdlib allow-list", calleeName(f))
	}
}

// moduleLocal reports whether path belongs to the module under analysis.
func (c *checker) moduleLocal(path string) bool {
	mod := c.pass.Facts.ModulePath
	if mod == "" {
		return path == c.pass.Pkg.Path()
	}
	return path == mod || strings.HasPrefix(path, mod+"/")
}

func calleeName(f *types.Func) string {
	name := f.Name()
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if base := recvName(sig.Recv().Type()); base != "" {
			name = base + "." + name
		}
	}
	if f.Pkg() != nil {
		name = f.Pkg().Name() + "." + name
	}
	return name
}

func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	}
	return ""
}

// checkConversion flags converting between string and byte/rune slices.
func (c *checker) checkConversion(call *ast.CallExpr, dst types.Type) {
	if len(call.Args) != 1 {
		return
	}
	srcTV, ok := c.pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	src := srcTV.Type
	if isString(dst) && isByteOrRuneSlice(src) {
		c.report(call.Pos(), "[]byte/[]rune to string conversion allocates in hot path")
	}
	if isByteOrRuneSlice(dst) && isString(src) {
		c.report(call.Pos(), "string to %s conversion allocates in hot path", dst.String())
	}
	if types.IsInterface(dst) && !types.IsInterface(src) && !isPointerLike(src) && !srcTV.IsNil() {
		c.report(call.Pos(), "conversion to interface boxes %s in hot path", src.String())
	}
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isPointerLike reports whether values of t fit an interface word
// without boxing.
func isPointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UnsafePointer
	}
	return false
}

// checkCallArgs flags implicit interface conversions at call arguments.
func (c *checker) checkCallArgs(call *ast.CallExpr) {
	tv, ok := c.pass.TypesInfo.Types[ast.Unparen(call.Fun)]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= n-1 && call.Ellipsis == token.NoPos {
			if s, ok := params.At(n - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < n {
			pt = params.At(i).Type()
		}
		if pt != nil {
			c.checkBoxing(arg, pt)
		}
	}
}

// checkBoxing flags an expression of concrete non-pointer type used
// where an interface is expected.
func (c *checker) checkBoxing(expr ast.Expr, dst types.Type) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.IsNil() {
		return
	}
	src := tv.Type
	if types.IsInterface(src) || isPointerLike(src) {
		return
	}
	c.report(expr.Pos(), "implicit conversion of %s to interface boxes (allocates) in hot path", src.String())
}

// checkReturn flags boxing at return statements.
func (c *checker) checkReturn(ret *ast.ReturnStmt) {
	if len(ret.Results) == 0 {
		return
	}
	// Func literals are reported and not entered, so the enclosing
	// function is always the annotated declaration.
	sig := c.enclosingSig
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		c.checkBoxing(r, sig.Results().At(i).Type())
	}
}
