package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text       string
		ok         bool
		name, args string
	}{
		{"// repro:hotpath", false, "", ""}, // space after slashes: ordinary comment
		{"//repro:hotpath", true, "hotpath", ""},
		{"//repro:allow-alloc cold error path", true, "allow-alloc", "cold error path"},
		{"//repro:guardedby mu", true, "guardedby", "mu"},
		{"//repro:frames ignore why not // want \"x\"", true, "frames", "ignore why not"},
		{"//repro:allow-alloc // want \"y\"", true, "allow-alloc", ""},
		{"//not-a-directive", false, "", ""},
	}
	for _, c := range cases {
		dir, ok := ParseDirective(c.text)
		if ok != c.ok {
			t.Errorf("ParseDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if dir.Name != c.name || dir.Args != c.args {
			t.Errorf("ParseDirective(%q) = (%q, %q), want (%q, %q)", c.text, dir.Name, dir.Args, c.name, c.args)
		}
	}
}

const directivesSrc = `package p

//repro:hotpath
func hot() {
	x := 1 //repro:allow-alloc trailing escape
	_ = x
}
`

func TestDirectivesLineApplication(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directivesSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDirectives(fset, []*ast.File{f})

	// Line 4 is the func declaration: the leading block on line 3 applies.
	fn := f.Decls[0].(*ast.FuncDecl)
	if !d.Has(fn.Pos(), "hotpath") {
		t.Errorf("hotpath directive does not apply to the declaration below it")
	}

	// The trailing allow-alloc applies to its own line and is consumed by Get.
	body := fn.Body.List[0].(*ast.AssignStmt)
	dir, ok := d.Get(body.Pos(), "allow-alloc")
	if !ok {
		t.Fatalf("trailing allow-alloc does not apply to its own line")
	}
	if dir.Args != "trailing escape" {
		t.Errorf("allow-alloc args = %q, want %q", dir.Args, "trailing escape")
	}
	if unused := d.Unused("allow-alloc"); len(unused) != 0 {
		t.Errorf("consumed directive still reported unused: %v", unused)
	}
	if unused := d.Unused("hotpath"); len(unused) != 0 {
		t.Errorf("Has did not mark the hotpath directive used: %v", unused)
	}
}
