package compilerfacts

import (
	"os"
	"strings"
	"testing"
)

// TestParseSample pins the parser against a checked-in excerpt of real
// `go build -gcflags='-m=1 -d=ssa/check_bce/debug=1'` output. If a
// future Go release changes the diagnostic spelling, this test fails
// loudly instead of the facts gate going silently empty.
func TestParseSample(t *testing.T) {
	f, err := os.Open("testdata/sample_diag.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	diags, err := ParseDiagnostics(f)
	if err != nil {
		t.Fatal(err)
	}

	counts := make(map[DiagKind]int)
	for _, d := range diags {
		counts[d.Kind]++
	}
	if got, want := counts[BoundsCheck], 5; got != want {
		t.Errorf("IsInBounds: got %d, want %d", got, want)
	}
	if got, want := counts[SliceBoundsCheck], 1; got != want {
		t.Errorf("IsSliceInBounds: got %d, want %d", got, want)
	}
	if got, want := counts[CanInline], 6; got != want {
		t.Errorf("can-inline: got %d, want %d", got, want)
	}
	if got, want := counts[MovedToHeap], 2; got != want {
		t.Errorf("moved-to-heap: got %d, want %d", got, want)
	}

	// Package attribution from "# pkg" headers, with test-variant
	// suffixes collapsed.
	var sawUpdateBits, sawTestVariant bool
	for _, d := range diags {
		if d.Kind == CanInline && d.Name == "(*Folded).UpdateBits" {
			sawUpdateBits = true
			if d.Pkg != "repro/internal/history" {
				t.Errorf("UpdateBits attributed to %q", d.Pkg)
			}
		}
		if d.File == "internal/tage/tage_test.go" {
			sawTestVariant = true
			if d.Pkg != "repro/internal/tage" {
				t.Errorf("test-variant diag attributed to %q, want plain package path", d.Pkg)
			}
		}
	}
	if !sawUpdateBits {
		t.Error("no can-inline fact for (*Folded).UpdateBits parsed")
	}
	if !sawTestVariant {
		t.Error("test-variant package header not exercised")
	}

	// Positions survive parsing.
	first := diags[0]
	if first.File != "internal/history/history.go" || first.Line != 28 || first.Col != 6 {
		t.Errorf("first diag position: %+v", first)
	}

	// moved-to-heap names.
	var heapNames []string
	for _, d := range diags {
		if d.Kind == MovedToHeap {
			heapNames = append(heapNames, d.Name)
		}
	}
	if strings.Join(heapNames, ",") != "f,cfg" {
		t.Errorf("heap names: %v", heapNames)
	}
}

// TestParseEmpty: no recognizable diagnostics parse to an empty slice —
// the Collect caller turns that into a loud format-drift error.
func TestParseEmpty(t *testing.T) {
	diags, err := ParseDiagnostics(strings.NewReader("gibberish\nnot a diagnostic\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("parsed %d diags from garbage", len(diags))
	}
}

// TestDiff pins the golden-diff rendering.
func TestDiff(t *testing.T) {
	golden := "# comment\ngo go1.24.0\nbce a.B 0\nbce a.C 2\ninline a.f yes\n"
	got := "go go1.24.0\nbce a.B 1\nbce a.C 2\ninline a.f yes\n"
	d := Diff(golden, got)
	want := []string{"- bce a.B 0", "+ bce a.B 1"}
	if len(d) != len(want) {
		t.Fatalf("diff: got %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("diff[%d]: got %q, want %q", i, d[i], want[i])
		}
	}
	if GoldenVersion(golden) != "go1.24.0" {
		t.Errorf("GoldenVersion: %q", GoldenVersion(golden))
	}
}
