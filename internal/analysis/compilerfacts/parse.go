package compilerfacts

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DiagKind classifies one compiler diagnostic the gate consumes.
type DiagKind int

const (
	// BoundsCheck is a check_bce "Found IsInBounds" site.
	BoundsCheck DiagKind = iota
	// SliceBoundsCheck is a check_bce "Found IsSliceInBounds" site.
	SliceBoundsCheck
	// CanInline is an escape-analysis "can inline F" fact; Name holds the
	// compiler's spelling of the function ("packEntry",
	// "(*Folded).UpdateBits", "Kind.String").
	CanInline
	// MovedToHeap is a "moved to heap: x" escape; Name holds the variable.
	MovedToHeap
)

func (k DiagKind) String() string {
	switch k {
	case BoundsCheck:
		return "IsInBounds"
	case SliceBoundsCheck:
		return "IsSliceInBounds"
	case CanInline:
		return "can-inline"
	case MovedToHeap:
		return "moved-to-heap"
	}
	return "unknown"
}

// Diag is one parsed compiler diagnostic.
type Diag struct {
	// Pkg is the import path from the preceding "# pkg" header line.
	Pkg string
	// File is the source path as the compiler printed it (module-relative
	// when the build ran at the module root).
	File string
	Line int
	Col  int
	Kind DiagKind
	// Name is the function (CanInline) or variable (MovedToHeap) name.
	Name string
}

// ParseDiagnostics reads `go build -gcflags='-m=1
// -d=ssa/check_bce/debug=1'` output and extracts the diagnostics the
// facts gate consumes: bounds-check sites, inlinability facts, and
// moved-to-heap escapes. Unrecognized diagnostic lines are skipped
// (escape analysis emits many shapes the gate does not use), but lines
// that are not "# pkg" headers and do not carry a file:line:col prefix
// are counted as noise — a build error or a wholesale format change in
// a future Go release surfaces as an error from the caller's
// zero-diagnostics check, not as a silently-empty report.
func ParseDiagnostics(r io.Reader) ([]Diag, error) {
	var diags []Diag
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			// "# pkg [pkg.test]" variants collapse to the plain path.
			if i := strings.Index(rest, " ["); i >= 0 {
				rest = rest[:i]
			}
			pkg = rest
			continue
		}
		file, ln, col, msg, ok := splitPosLine(line)
		if !ok {
			continue
		}
		d := Diag{Pkg: pkg, File: file, Line: ln, Col: col}
		switch {
		case msg == "Found IsInBounds":
			d.Kind = BoundsCheck
		case msg == "Found IsSliceInBounds":
			d.Kind = SliceBoundsCheck
		case strings.HasPrefix(msg, "can inline "):
			d.Kind = CanInline
			d.Name = normalizeFuncName(strings.TrimPrefix(msg, "can inline "))
		case strings.HasPrefix(msg, "moved to heap: "):
			d.Kind = MovedToHeap
			d.Name = strings.TrimPrefix(msg, "moved to heap: ")
		default:
			continue
		}
		diags = append(diags, d)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading compiler output: %v", err)
	}
	return diags, nil
}

// splitPosLine splits "file.go:12:34: message".
func splitPosLine(line string) (file string, ln, col int, msg string, ok bool) {
	// The message follows the third colon; Windows-style drive letters do
	// not occur (the build runs at the module root with relative paths).
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return "", 0, 0, "", false
	}
	ln, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return parts[0], ln, col, strings.TrimSpace(parts[3]), true
}

// normalizeFuncName strips the "with cost N as: ..." tail -m=1 appends
// under some debug settings, keeping just the function spelling.
func normalizeFuncName(s string) string {
	if i := strings.Index(s, " with cost "); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}
