// Package compilerfacts gates the hot path on facts extracted from the
// compiler itself: bounds-check elimination, escape analysis, and
// inlinability.
//
// The repo's performance contract ("as fast as the hardware allows",
// 0 allocs per branch) ultimately rests on compiler behavior that no
// source-level analyzer can see: whether the TAGE probe loop keeps a
// bounds check, whether a receiver is moved to the heap, whether the
// entry accessors still inline. Benchmarks catch regressions of those
// facts only as a >10% latency drift several PRs later. This gate makes
// them explicit: `tagevet -facts` shells out to
//
//	go build -gcflags='-m=1 -d=ssa/check_bce/debug=1' <patterns>
//
// (cheap: Go's build cache replays compiler diagnostics on cached
// builds), parses the diagnostics, attributes them to //repro:hotpath
// functions, and compares the result against a committed golden
// (testdata/compilerfacts.golden). A named must-be-zero set — the TAGE
// probe/update loops, the serve batch loop, the obs Observe/Record
// paths — additionally fails the gate on any unwaived bounds check or
// heap escape regardless of what the golden says, so a refresh cannot
// legitimize a regression there. Individual sites are waived with
// //repro:allow-bce <why> (justification mandatory, stale waivers
// reported). The golden is keyed to the Go toolchain version: on a
// mismatched toolchain the gate skips with a warning instead of
// producing noise diffs.
package compilerfacts

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
)

// GCFlags is the compiler flag set the gate builds with.
const GCFlags = "-m=1 -d=ssa/check_bce/debug=1"

// mustBeZero lists hotpath functions that may carry no unwaived bounds
// check and no heap escape, golden or not: the per-branch TAGE loops,
// the serve batch loop, and the observability record paths.
var mustBeZero = []string{
	"repro/internal/tage.Predictor.Predict",
	"repro/internal/tage.Predictor.Update",
	"repro/internal/tage.Predictor.allocate",
	"repro/internal/tage.Predictor.pathHash",
	"repro/internal/tage.Predictor.tableIndex",
	"repro/internal/tage.Predictor.tableTag",
	"repro/internal/serve.Session.step",
	"repro/internal/serve.Session.Serve",
	"repro/internal/obs.Histogram.Observe",
	"repro/internal/obs.Histogram.ObserveValue",
	"repro/internal/obs.FlightRecorder.Record",
}

// inlineAllowList names the leaf helpers whose inlinability the golden
// tracks, in the compiler's own spelling: losing "can inline" on any of
// these adds a call per branch.
var inlineAllowList = []struct {
	Pkg  string
	Name string
}{
	{"repro/internal/tage", "packEntry"},
	{"repro/internal/tage", "entryTag"},
	{"repro/internal/tage", "entryCtr"},
	{"repro/internal/tage", "entryU"},
	{"repro/internal/tage", "entrySetCtr"},
	{"repro/internal/tage", "entrySetU"},
	{"repro/internal/tage", "entryAgeU"},
	{"repro/internal/history", "(*Folded).UpdateBits"},
	{"repro/internal/history", "(*Folded).Value"},
	{"repro/internal/bimodal", "(*Packed).index"},
	{"repro/internal/bimodal", "(*Packed).Counter"},
	{"repro/internal/bimodal", "(*Packed).Predict"},
	{"repro/internal/bimodal", "(*Packed).Weak"},
}

// FuncFacts is the gate's verdict on one hotpath function.
type FuncFacts struct {
	Key string
	// BCE is the number of unwaived bounds-check sites in the function.
	BCE int
	// Waived is the number of sites excused by //repro:allow-bce.
	Waived int
	// Heap lists locals/args moved to the heap, sorted.
	Heap []string
}

// Report is the full fact set for one Collect run.
type Report struct {
	// GoVersion is the toolchain that produced the diagnostics
	// ("go1.24.5"); the golden is only comparable under the same version.
	GoVersion string
	Funcs     []FuncFacts
	// InlineOK maps allow-list indices to inlinability.
	InlineOK []bool
	// Stale and Unjustified are allow-bce directive misuses (gate
	// errors, not golden content).
	Stale       []string
	Unjustified []string
}

// Collect builds the module with diagnostic gcflags and distills the
// compiler facts for every //repro:hotpath function.
func Collect(dir string, patterns []string) (*Report, error) {
	inv, err := CollectInventory(dir, patterns)
	if err != nil {
		return nil, err
	}
	goVersion, err := toolchainVersion(dir)
	if err != nil {
		return nil, err
	}

	args := append([]string{"build", "-gcflags=" + GCFlags}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build %s: %v\n%s", GCFlags, err, truncate(out.String(), 4000))
	}
	diags, err := ParseDiagnostics(&out)
	if err != nil {
		return nil, err
	}
	if len(diags) == 0 {
		return nil, fmt.Errorf("go build -gcflags='%s' produced zero recognizable diagnostics; the diagnostic format has drifted (Go %s) — update compilerfacts.ParseDiagnostics", GCFlags, goVersion)
	}

	byKey := make(map[string]*FuncFacts)
	keys := make([]string, 0, len(inv.Funcs))
	for _, fs := range inv.Funcs {
		if byKey[fs.Key] == nil {
			byKey[fs.Key] = &FuncFacts{Key: fs.Key}
			keys = append(keys, fs.Key)
		}
	}
	canInline := make(map[string]bool) // "pkg\x00name"
	for _, d := range diags {
		switch d.Kind {
		case BoundsCheck, SliceBoundsCheck:
			fs, ok := inv.spanOf(d.File, d.Line)
			if !ok {
				continue
			}
			if _, waived := inv.waiverAt(d.File, d.Line); waived {
				byKey[fs.Key].Waived++
			} else {
				byKey[fs.Key].BCE++
			}
		case MovedToHeap:
			fs, ok := inv.spanOf(d.File, d.Line)
			if !ok {
				continue
			}
			byKey[fs.Key].Heap = append(byKey[fs.Key].Heap, d.Name)
		case CanInline:
			canInline[d.Pkg+"\x00"+d.Name] = true
		}
	}

	sort.Strings(keys)
	r := &Report{GoVersion: goVersion}
	for _, k := range keys {
		ff := byKey[k]
		sort.Strings(ff.Heap)
		r.Funcs = append(r.Funcs, *ff)
	}
	for _, e := range inlineAllowList {
		r.InlineOK = append(r.InlineOK, canInline[e.Pkg+"\x00"+e.Name])
	}
	r.Stale, r.Unjustified = inv.staleWaivers()
	sort.Strings(r.Stale)
	sort.Strings(r.Unjustified)
	return r, nil
}

// toolchainVersion returns the active `go env GOVERSION`.
func toolchainVersion(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOVERSION")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOVERSION: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// Render serializes the report in golden-file form: stable, line-based,
// and free of source positions (line numbers churn on unrelated edits;
// counts and names are what the gate protects).
func (r *Report) Render() string {
	var b strings.Builder
	b.WriteString("# Compiler-derived facts for //repro:hotpath functions.\n")
	b.WriteString("# Regenerate: UPDATE_FACTS_GOLDEN=1 go run ./cmd/tagevet -facts ./...\n")
	fmt.Fprintf(&b, "go %s\n", r.GoVersion)
	for _, ff := range r.Funcs {
		fmt.Fprintf(&b, "bce %s %d", ff.Key, ff.BCE)
		if ff.Waived > 0 {
			fmt.Fprintf(&b, " waived %d", ff.Waived)
		}
		b.WriteByte('\n')
	}
	for _, ff := range r.Funcs {
		if len(ff.Heap) > 0 {
			fmt.Fprintf(&b, "heap %s %s\n", ff.Key, strings.Join(ff.Heap, ","))
		}
	}
	for i, e := range inlineAllowList {
		verdict := "no"
		if r.InlineOK[i] {
			verdict = "yes"
		}
		fmt.Fprintf(&b, "inline %s.%s %s\n", e.Pkg, e.Name, verdict)
	}
	return b.String()
}

// Violations returns the must-be-zero and directive-hygiene failures
// that hold regardless of golden content.
func (r *Report) Violations() []string {
	byKey := make(map[string]FuncFacts, len(r.Funcs))
	for _, ff := range r.Funcs {
		byKey[ff.Key] = ff
	}
	var out []string
	for _, k := range mustBeZero {
		ff, ok := byKey[k]
		if !ok {
			out = append(out, fmt.Sprintf("%s: must-be-zero function not found (not //repro:hotpath, renamed, or outside the analyzed patterns)", k))
			continue
		}
		if ff.BCE > 0 {
			out = append(out, fmt.Sprintf("%s: %d unwaived bounds check(s); eliminate them (uint compare, clamp, re-slice hints) or waive each site with //repro:allow-bce <why>", k, ff.BCE))
		}
		if len(ff.Heap) > 0 {
			out = append(out, fmt.Sprintf("%s: moved to heap: %s", k, strings.Join(ff.Heap, ",")))
		}
	}
	for i, ok := range r.InlineOK {
		if !ok {
			e := inlineAllowList[i]
			out = append(out, fmt.Sprintf("inline %s.%s: no longer inlinable (adds a call per branch); simplify it or shrink its cost", e.Pkg, e.Name))
		}
	}
	for _, w := range r.Stale {
		out = append(out, fmt.Sprintf("%s: unused //repro:allow-bce (no bounds check on this line; remove the stale waiver)", w))
	}
	for _, w := range r.Unjustified {
		out = append(out, fmt.Sprintf("%s: //repro:allow-bce requires a justification (why is this bounds check acceptable?)", w))
	}
	return out
}

// GoldenVersion extracts the "go goX.Y.Z" line of a golden file.
func GoldenVersion(golden string) string {
	for _, line := range strings.Split(golden, "\n") {
		if v, ok := strings.CutPrefix(line, "go "); ok {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// Diff compares a golden rendering with the current one, ignoring
// comment lines, and returns readable diff lines (empty when equal).
func Diff(golden, got string) []string {
	want := factLines(golden)
	have := factLines(got)
	wantSet := make(map[string]bool, len(want))
	for _, l := range want {
		wantSet[l] = true
	}
	haveSet := make(map[string]bool, len(have))
	for _, l := range have {
		haveSet[l] = true
	}
	var out []string
	for _, l := range want {
		if !haveSet[l] {
			out = append(out, "- "+l)
		}
	}
	for _, l := range have {
		if !wantSet[l] {
			out = append(out, "+ "+l)
		}
	}
	return out
}

func factLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "\n... (truncated)"
}

// WriteGolden writes the rendered report to path.
func WriteGolden(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
