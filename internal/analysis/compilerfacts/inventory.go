package compilerfacts

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// FuncSpan is one //repro:hotpath function's source extent.
type FuncSpan struct {
	// Key is the module-wide function key (analysis.FuncKey).
	Key string
	// File is the module-relative source path, matching the compiler's
	// diagnostic spelling when the build runs at the module root.
	File string
	// Start and End are the declaration's line range, inclusive.
	Start, End int
}

// waiver is one //repro:allow-bce directive occurrence.
type waiver struct {
	// where is "file:line" of the directive itself, for reporting.
	where string
	args  string
	used  bool
}

// Inventory is the syntax-level view of the module the facts gate needs:
// hotpath function spans and allow-bce waivers, keyed by file and line.
type Inventory struct {
	Funcs []FuncSpan
	// waivers maps module-relative file → line → directive. A directive
	// registers on its own line and on the line below its comment block,
	// mirroring the analysis.Directives placement rules.
	waivers map[string]map[int]*waiver
}

// listEntry is the subset of `go list -json` the inventory needs.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Module     *struct {
		Path string
		Main bool
		Dir  string
	}
}

// CollectInventory parses the module packages matching patterns (syntax
// only) and records every //repro:hotpath function span and every
// //repro:allow-bce waiver. dir is the module root the build runs from.
func CollectInventory(dir string, patterns []string) (*Inventory, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	inv := &Inventory{waivers: make(map[string]map[int]*waiver)}
	fset := token.NewFileSet()
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listEntry
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Module == nil || !p.Module.Main {
			continue
		}
		for _, name := range p.GoFiles {
			abs := filepath.Join(p.Dir, name)
			rel, err := filepath.Rel(dir, abs)
			if err != nil {
				rel = abs
			}
			rel = filepath.ToSlash(rel)
			f, err := parser.ParseFile(fset, abs, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", rel, err)
			}
			inv.addFile(fset, p.ImportPath, rel, f)
		}
	}
	return inv, nil
}

func (inv *Inventory) addFile(fset *token.FileSet, pkgPath, rel string, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if _, ok := analysis.FuncDirective(fn, "hotpath"); !ok {
			continue
		}
		inv.Funcs = append(inv.Funcs, FuncSpan{
			Key:   analysis.DeclFuncKey(pkgPath, fn),
			File:  rel,
			Start: fset.Position(fn.Pos()).Line,
			End:   fset.Position(fn.End()).Line,
		})
	}
	for _, group := range f.Comments {
		last := fset.Position(group.End()).Line
		for _, c := range group.List {
			dir, ok := analysis.ParseDirective(c.Text)
			if !ok || dir.Name != "allow-bce" {
				continue
			}
			pos := fset.Position(c.Pos())
			w := &waiver{where: fmt.Sprintf("%s:%d", rel, pos.Line), args: dir.Args}
			m := inv.waivers[rel]
			if m == nil {
				m = make(map[int]*waiver)
				inv.waivers[rel] = m
			}
			m[pos.Line] = w
			if last+1 != pos.Line {
				if _, taken := m[last+1]; !taken {
					m[last+1] = w
				}
			}
		}
	}
}

// spanOf returns the hotpath function containing file:line, if any.
func (inv *Inventory) spanOf(file string, line int) (FuncSpan, bool) {
	for _, fs := range inv.Funcs {
		if fs.File == file && line >= fs.Start && line <= fs.End {
			return fs, true
		}
	}
	return FuncSpan{}, false
}

// waiverAt returns the allow-bce waiver applying to file:line, marking
// it used.
func (inv *Inventory) waiverAt(file string, line int) (*waiver, bool) {
	w, ok := inv.waivers[file][line]
	if ok {
		w.used = true
	}
	return w, ok
}

// staleWaivers returns every allow-bce directive that waived nothing,
// and every one lacking the mandatory justification, as report strings.
func (inv *Inventory) staleWaivers() (stale, unjustified []string) {
	seen := make(map[*waiver]bool)
	for _, lines := range inv.waivers {
		for _, w := range lines {
			if seen[w] {
				continue
			}
			seen[w] = true
			if !w.used {
				stale = append(stale, w.where)
			} else if strings.TrimSpace(w.args) == "" {
				unjustified = append(unjustified, w.where)
			}
		}
	}
	return stale, unjustified
}
