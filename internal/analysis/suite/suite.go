// Package suite enumerates the repository's analyzers — the set
// cmd/tagevet runs and CI requires.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomics"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/frames"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/statecheck"
)

// All returns every analyzer in the tagevet suite, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		hotpath.Analyzer,
		atomics.Analyzer,
		determinism.Analyzer,
		statecheck.Analyzer,
		lockcheck.Analyzer,
		frames.Analyzer,
	}
}
