// Package lockcheck implements the lockcheck analyzer: struct fields
// annotated //repro:guardedby <mutexField> may only be touched with the
// lock demonstrably held.
//
// The serve layer's exactly-once guarantees (tallies fold once across
// close/evict/checkpoint races, snapshot cuts land on batch boundaries)
// all reduce to "these fields are only touched under this mutex". The
// annotation makes that machine-checked: an access to a guarded field
// is legal when
//
//   - the same function acquires the guarding lock on the same receiver
//     before the access (s.mu.Lock() or s.mu.RLock() textually precedes
//     s.field), or
//   - the function is an audited lock-held accessor: its name ends in
//     "Locked", or it carries //repro:locked <why the caller holds it>.
//
// The check is per-function and flow-insensitive by design — it cannot
// prove you didn't unlock first, but it catches the real drift: a new
// code path reading tallies or backend state without entering the
// session lock at all. Func literals are checked as part of their
// enclosing function.
package lockcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "//repro:guardedby fields are only accessed with their mutex held",
	Run:  run,
}

// guard describes one annotated field.
type guard struct {
	lockName string // sibling mutex field name
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, guards, fn)
		}
	}
	return nil
}

// collectGuards finds //repro:guardedby annotations and validates them.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	guards := make(map[*types.Var]guard)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				dir, ok := analysis.FieldDirective(f, "guardedby")
				if !ok {
					continue
				}
				if dir.Args == "" {
					pass.Reportf(dir.Pos, "//repro:guardedby needs the guarding mutex field name")
					continue
				}
				lockName := dir.Args
				if !lockFieldExists(pass, st, lockName) {
					pass.Reportf(dir.Pos, "//repro:guardedby %s: no sync.Mutex/sync.RWMutex field %q in this struct", lockName, lockName)
					continue
				}
				if len(f.Names) == 0 {
					pass.Reportf(dir.Pos, "//repro:guardedby on an embedded field is not supported; name the field")
					continue
				}
				for _, name := range f.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = guard{lockName: lockName}
					}
				}
			}
			return true
		})
	}
	return guards
}

// lockFieldExists reports whether the struct syntactically declares a
// mutex-typed field with the given name.
func lockFieldExists(pass *analysis.Pass, st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name != name {
				continue
			}
			v, ok := pass.TypesInfo.Defs[n].(*types.Var)
			if !ok {
				return false
			}
			return isMutex(v.Type())
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockAcquisition is one x.mu.Lock()/RLock() call site.
type lockAcquisition struct {
	root     types.Object // the object x the lock hangs off
	lockName string
	pos      int // file offset for textual ordering
}

func checkFunc(pass *analysis.Pass, guards map[*types.Var]guard, fn *ast.FuncDecl) {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return
	}
	if _, ok := analysis.FuncDirective(fn, "locked"); ok {
		return
	}

	// Pass 1: collect lock acquisitions.
	var acquired []lockAcquisition
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		lockExpr, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		root := rootObject(pass, lockExpr.X)
		if root == nil {
			return true
		}
		acquired = append(acquired, lockAcquisition{
			root:     root,
			lockName: lockExpr.Sel.Name,
			pos:      int(call.Pos()),
		})
		return true
	})

	// Pass 2: check guarded-field accesses.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, guarded := guards[field]
		if !guarded {
			return true
		}
		root := rootObject(pass, sel.X)
		held := false
		for _, a := range acquired {
			if a.lockName == g.lockName && a.root == root && root != nil && a.pos < int(sel.Pos()) {
				held = true
				break
			}
		}
		if !held {
			pass.Reportf(sel.Sel.Pos(), "field %s (guarded by %s) accessed without %s held: lock it in this function, or audit the caller contract with //repro:locked / a ...Locked name", field.Name(), g.lockName, g.lockName)
		}
		return true
	})
}

// rootObject resolves the innermost identifier of a selector/index
// chain to its object (s in s.res.Class[i], sh in sh.m).
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := pass.TypesInfo.Uses[x]; o != nil {
				return o
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			return nil // lock state of a call result is unknowable here
		default:
			return nil
		}
	}
}
