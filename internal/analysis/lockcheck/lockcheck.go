// Package lockcheck implements the lockcheck analyzer: struct fields
// annotated //repro:guardedby <mutexField> may only be touched with the
// lock demonstrably held.
//
// The serve layer's exactly-once guarantees (tallies fold once across
// close/evict/checkpoint races, snapshot cuts land on batch boundaries)
// all reduce to "these fields are only touched under this mutex". The
// annotation makes that machine-checked: an access to a guarded field
// is legal when
//
//   - the same function acquires the guarding lock on the same receiver
//     before the access (s.mu.Lock() or s.mu.RLock() textually precedes
//     s.field), or
//   - the function is an audited lock-held accessor: its name ends in
//     "Locked", or it carries //repro:locked <why the caller holds it>.
//
// The check is per-function and flow-insensitive by design — it cannot
// prove you didn't unlock first, but it catches the real drift: a new
// code path reading tallies or backend state without entering the
// session lock at all. Func literals are checked as part of their
// enclosing function.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "//repro:guardedby fields are only accessed with their mutex held",
	Run:  run,
}

// guard describes one annotated field.
type guard struct {
	lockName string // sibling mutex field name
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, guards, fn)
		}
	}
	return nil
}

// collectGuards finds //repro:guardedby annotations and validates them.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	return collectGuardsImpl(pass, true)
}

// collectGuardsQuiet is collectGuards without the malformed-annotation
// diagnostics, for reuse by sibling analyzers that must not duplicate
// lockcheck's own reports.
func collectGuardsQuiet(pass *analysis.Pass) map[*types.Var]guard {
	return collectGuardsImpl(pass, false)
}

func collectGuardsImpl(pass *analysis.Pass, report bool) map[*types.Var]guard {
	reportf := func(pos token.Pos, format string, args ...any) {
		if report {
			pass.Reportf(pos, format, args...)
		}
	}
	guards := make(map[*types.Var]guard)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				dir, ok := analysis.FieldDirective(f, "guardedby")
				if !ok {
					continue
				}
				if dir.Args == "" {
					reportf(dir.Pos, "//repro:guardedby needs the guarding mutex field name")
					continue
				}
				lockName := dir.Args
				if !lockFieldExists(pass, st, lockName) {
					reportf(dir.Pos, "//repro:guardedby %s: no sync.Mutex/sync.RWMutex field %q in this struct", lockName, lockName)
					continue
				}
				if len(f.Names) == 0 {
					reportf(dir.Pos, "//repro:guardedby on an embedded field is not supported; name the field")
					continue
				}
				for _, name := range f.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = guard{lockName: lockName}
					}
				}
			}
			return true
		})
	}
	return guards
}

// lockFieldExists reports whether the struct syntactically declares a
// mutex-typed field with the given name.
func lockFieldExists(pass *analysis.Pass, st *ast.StructType, name string) bool {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name != name {
				continue
			}
			v, ok := pass.TypesInfo.Defs[n].(*types.Var)
			if !ok {
				return false
			}
			return isMutex(v.Type())
		}
	}
	return false
}

func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// Acquisition is one x.mu.Lock()/RLock() call site. Exported so sibling
// analyzers (atomics) can reuse the same "is the guarding mutex
// demonstrably held here" reasoning.
type Acquisition struct {
	// Root is the object the lock hangs off (x in x.mu.Lock()).
	Root types.Object
	// LockName is the mutex field's name.
	LockName string
	// Pos is the acquisition's position, for textual ordering.
	Pos token.Pos
}

// IsExempt reports whether fn opted out of per-function lock checking as
// an audited lock-held accessor: a ...Locked name suffix or a
// //repro:locked caller-contract annotation.
func IsExempt(fn *ast.FuncDecl) bool {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return true
	}
	_, ok := analysis.FuncDirective(fn, "locked")
	return ok
}

// LockAcquisitions collects every mutex acquisition in fn's body.
func LockAcquisitions(pass *analysis.Pass, fn *ast.FuncDecl) []Acquisition {
	var acquired []Acquisition
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		lockExpr, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		root := RootObject(pass, lockExpr.X)
		if root == nil {
			return true
		}
		acquired = append(acquired, Acquisition{
			Root:     root,
			LockName: lockExpr.Sel.Name,
			Pos:      call.Pos(),
		})
		return true
	})
	return acquired
}

// Held reports whether some acquisition of lockName on root textually
// precedes pos.
func Held(acquired []Acquisition, lockName string, root types.Object, pos token.Pos) bool {
	if root == nil {
		return false
	}
	for _, a := range acquired {
		if a.LockName == lockName && a.Root == root && a.Pos < pos {
			return true
		}
	}
	return false
}

// GuardedBy returns the //repro:guardedby annotations of the package's
// struct fields without reporting malformed ones (the lockcheck run
// itself does that): field object → guarding mutex field name.
func GuardedBy(pass *analysis.Pass) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for v, g := range collectGuardsQuiet(pass) {
		out[v] = g.lockName
	}
	return out
}

func checkFunc(pass *analysis.Pass, guards map[*types.Var]guard, fn *ast.FuncDecl) {
	if IsExempt(fn) {
		return
	}

	// Pass 1: collect lock acquisitions.
	acquired := LockAcquisitions(pass, fn)

	// Pass 2: check guarded-field accesses.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		g, guarded := guards[field]
		if !guarded {
			return true
		}
		root := RootObject(pass, sel.X)
		if !Held(acquired, g.lockName, root, sel.Pos()) {
			pass.Reportf(sel.Sel.Pos(), "field %s (guarded by %s) accessed without %s held: lock it in this function, or audit the caller contract with //repro:locked / a ...Locked name", field.Name(), g.lockName, g.lockName)
		}
		return true
	})
}

// RootObject resolves the innermost identifier of a selector/index
// chain to its object (s in s.res.Class[i], sh in sh.m).
func RootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if o := pass.TypesInfo.Uses[x]; o != nil {
				return o
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			return nil // lock state of a call result is unknowable here
		default:
			return nil
		}
	}
}
