// Package locks is the lockcheck analyzer fixture: guarded fields
// accessed with and without their mutex, the two audited-accessor
// escape hatches, and the malformed-annotation diagnostics.
package locks

import "sync"

type box struct {
	mu   sync.Mutex
	val  int //repro:guardedby mu
	gone int //repro:guardedby missing // want "no sync.Mutex/sync.RWMutex field"
	bare int //repro:guardedby // want "needs the guarding mutex field name"
}

type tagged struct {
	mu             sync.Mutex
	sync.WaitGroup //repro:guardedby mu // want "embedded field is not supported"
}

func locked(b *box) int {
	b.mu.Lock()
	v := b.val
	b.mu.Unlock()
	return v
}

func unlocked(b *box) int {
	return b.val // want "accessed without mu held"
}

// drainLocked is audited by naming convention: the caller holds b.mu.
func drainLocked(b *box) int { return b.val }

//repro:locked caller holds b.mu across the whole fold
func audited(b *box) int { return b.val }

// mixed locks a but not b: the roots are discriminated per object.
func mixed(a, b *box) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.val + b.val // want "accessed without mu held"
}

type shard struct {
	mu sync.RWMutex
	m  map[uint64]int //repro:guardedby mu
}

func get(s *shard, k uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[k]
}

func peek(s *shard, k uint64) int {
	return s.m[k] // want "accessed without mu held"
}

// viaClosure leaks an unguarded access through a func literal, which is
// checked as part of the enclosing function.
func viaClosure(b *box) func() int {
	return func() int {
		return b.val // want "accessed without mu held"
	}
}

func lockedClosure(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := func() int { return b.val }
	return f()
}
