// Package statecheck implements the statecodec analyzer: every struct
// participating in an AppendState/RestoreState snapshot pair must
// account for all of its fields.
//
// The durable-session layer (PR 6) snapshots every backend family
// through per-type AppendState([]byte) []byte / RestoreState(*Reader)
// error codecs. The classic drift bug is adding a field to predictor
// state and forgetting the codec: snapshots still round-trip, restore
// still succeeds, and results silently diverge after a failover. This
// analyzer makes that a vet error: for each type declaring both an
// AppendState and a RestoreState method (matched by name, so helper
// types in other packages qualify too), every struct field must either
//
//   - be referenced by AppendState or RestoreState (directly or through
//     same-package helpers they call), or
//   - carry a //repro:derived comment declaring it deliberately
//     unserialized (configuration rebuilt by the constructor,
//     per-prediction scratch dead at snapshot points, ...).
//
// A field marked //repro:derived that AppendState nevertheless encodes
// is reported as a contradiction — the marker would be lying.
package statecheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the statecodec analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "statecodec",
	Doc:  "every field of an AppendState/RestoreState type is encoded or //repro:derived",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Index method declarations by receiver base type name, and all
	// function declarations by their defined object (for call closure).
	methods := make(map[string]map[string]*ast.FuncDecl) // type → method name → decl
	declOf := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
				declOf[obj] = fn
			}
			recv := analysis.RecvBaseName(fn)
			if recv == "" {
				continue
			}
			m := methods[recv]
			if m == nil {
				m = make(map[string]*ast.FuncDecl)
				methods[recv] = m
			}
			m[fn.Name.Name] = fn
		}
	}

	// Locate each struct type's field syntax for directive lookup.
	fieldSyntax := make(map[*types.Var]*ast.Field)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						fieldSyntax[v] = f
					}
				}
				if len(f.Names) == 0 { // embedded field
					if v, ok := pass.TypesInfo.Implicits[f].(*types.Var); ok {
						fieldSyntax[v] = f
					}
				}
			}
			return true
		})
	}

	for typeName, m := range methods {
		appendDecl, hasAppend := m["AppendState"]
		restoreDecl, hasRestore := m["RestoreState"]
		if !hasAppend || !hasRestore {
			if hasAppend != hasRestore {
				one, name := appendDecl, "RestoreState"
				if !hasAppend {
					one, name = restoreDecl, "AppendState"
				}
				pass.Reportf(one.Pos(), "type %s has %s but no %s: the snapshot codec must be a pair", typeName, one.Name.Name, name)
			}
			continue
		}
		obj := pass.Pkg.Scope().Lookup(typeName)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue // codec over a non-struct (e.g. a named slice) has no fields to drift
		}

		encoded := fieldsReferenced(pass, tn, st, declOf, appendDecl)
		restored := fieldsReferenced(pass, tn, st, declOf, restoreDecl)

		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			syntax := fieldSyntax[field]
			var derived bool
			var derivedPos = field.Pos()
			if syntax != nil {
				if dir, ok := analysis.FieldDirective(syntax, "derived"); ok {
					derived = true
					derivedPos = dir.Pos
				}
			}
			switch {
			case derived && encoded[i]:
				pass.Reportf(derivedPos, "field %s of %s is marked //repro:derived but AppendState encodes it; drop the marker", field.Name(), typeName)
			case !derived && !encoded[i] && !restored[i]:
				pass.Reportf(field.Pos(), "field %s of %s is neither encoded by AppendState/RestoreState nor marked //repro:derived: snapshots will silently drop it", field.Name(), typeName)
			}
		}
	}
	return nil
}

// fieldsReferenced returns, by field index, whether the struct's fields
// are selected anywhere in entry's body or in the bodies of
// same-package functions it (transitively) calls.
func fieldsReferenced(pass *analysis.Pass, tn *types.TypeName, st *types.Struct, declOf map[types.Object]*ast.FuncDecl, entry *ast.FuncDecl) map[int]bool {
	referenced := make(map[int]bool)
	visited := make(map[*ast.FuncDecl]bool)
	var visit func(fn *ast.FuncDecl)
	visit = func(fn *ast.FuncDecl) {
		if fn == nil || fn.Body == nil || visited[fn] {
			return
		}
		visited[fn] = true
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.TypesInfo.Selections[n]
				if !ok || sel.Kind() != types.FieldVal {
					return true
				}
				if baseNamed(sel.Recv()) == tn {
					referenced[sel.Index()[0]] = true
				}
			case *ast.Ident:
				// Calls resolve through Uses; follow same-package helpers.
				if obj := pass.TypesInfo.Uses[n]; obj != nil {
					if callee, ok := declOf[obj]; ok {
						visit(callee)
					}
				}
			}
			return true
		})
	}
	visit(entry)
	return referenced
}

// baseNamed strips pointers and returns the named type's object.
func baseNamed(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj()
	case *types.Alias:
		return t.Obj()
	}
	return nil
}
