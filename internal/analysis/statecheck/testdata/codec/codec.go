// Package codec is the statecodec analyzer fixture: one snapshot pair
// with every field shape the analyzer distinguishes, and a half-pair.
package codec

import "encoding/binary"

// reader is a minimal restore cursor (its own methods are not a codec
// pair and must not be reported).
type reader struct{ buf []byte }

func (r *reader) u64() uint64 {
	v, n := binary.Uvarint(r.buf)
	r.buf = r.buf[n:]
	return v
}

func (r *reader) bytes(n int) []byte {
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

type snap struct {
	table []uint8
	mask  uint64 //repro:derived recomputed from len(table) on restore
	tick  uint64
	stray int  // want "field stray of snap is neither encoded by AppendState/RestoreState nor marked"
	lying bool //repro:derived scratch // want "field lying of snap is marked //repro:derived but AppendState encodes it"
}

func (s *snap) AppendState(dst []byte) []byte {
	dst = append(dst, s.table...)
	if s.lying {
		dst = append(dst, 1)
	}
	return s.encodeTail(dst)
}

// encodeTail is a same-package helper: fields it touches count as
// encoded through the call closure.
func (s *snap) encodeTail(dst []byte) []byte {
	return binary.AppendUvarint(dst, s.tick)
}

func (s *snap) RestoreState(r *reader) error {
	copy(s.table, r.bytes(len(s.table)))
	s.tick = r.u64()
	s.mask = uint64(len(s.table) - 1)
	return nil
}

// halfOnly declares AppendState with no RestoreState.
type halfOnly struct{ n uint64 }

func (h *halfOnly) AppendState(dst []byte) []byte { // want "type halfOnly has AppendState but no RestoreState: the snapshot codec must be a pair"
	return binary.AppendUvarint(dst, h.n)
}
