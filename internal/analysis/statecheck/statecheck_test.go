package statecheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/statecheck"
)

func TestStatecodec(t *testing.T) {
	analysistest.Run(t, "testdata/codec", statecheck.Analyzer)
}
