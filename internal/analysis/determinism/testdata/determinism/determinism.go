// Fixture for the determinism analyzer: map iteration (sorted,
// aggregated, collected, arbitrary), wall-clock reads, non-xrand
// randomness, selects, transitive callees, and the order-insensitive
// escape (valid, missing justification, stale).
package determfix

import (
	"math/rand"
	"sort"
	"time"
)

type pair struct {
	k string
	v int
}

//repro:deterministic
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

//repro:deterministic
func sortedStructs(m map[string]int) []pair {
	out := make([]pair, 0, len(m))
	for k, v := range m {
		out = append(out, pair{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

//repro:deterministic
func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want "collects into keys but no sort"
		keys = append(keys, k)
	}
	return keys
}

//repro:deterministic
func aggregate(m map[string]int) int {
	sum, n := 0, 0
	for _, v := range m {
		sum += v
		n++
	}
	return sum + n
}

//repro:deterministic
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

//repro:deterministic
func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

//repro:deterministic
func hashFold(m map[string]int) int {
	h := 0
	for _, v := range m { // want "unordered map iteration"
		h = h*31 + v
	}
	return h
}

//repro:deterministic
func escaped(m map[string]int) int {
	h := 0
	for _, v := range m { //repro:order-insensitive fixture: pretend the fold commutes
		h = h*31 + v
	}
	return h
}

//repro:deterministic
func missingWhy(m map[string]int) int {
	h := 0
	for _, v := range m { //repro:order-insensitive // want "requires a justification"
		h = h*31 + v
	}
	return h
}

//repro:deterministic
func stale(xs []int) int {
	s := 0
	for _, v := range xs { //repro:order-insensitive slice order is fixed // want "unused //repro:order-insensitive"
		s += v
	}
	return s
}

//repro:deterministic
func clock() int64 {
	return time.Now().UnixNano() // want "time.Now in deterministic function"
}

//repro:deterministic
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since in deterministic function"
}

//repro:deterministic
func noise() int {
	return rand.Int() // want "rand.Int in deterministic function"
}

//repro:deterministic
func race(a, b chan int) int {
	select { // want "select over multiple channels"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

//repro:deterministic
func tryRecv(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

//repro:deterministic
func helperOK(x int) int { return x + 1 }

//repro:deterministic
func callsOK(x int) int { return helperOK(x) }

func helper(x int) int { return x * 2 }

//repro:deterministic
func callsBad(x int) int {
	return helper(x) // want "callee is not //repro:deterministic"
}

// unannotated functions are not checked at all.
func freeAgent(m map[string]int) int64 {
	for range m {
		break
	}
	return time.Now().UnixNano()
}
