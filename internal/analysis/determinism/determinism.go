// Package determinism implements the determinism analyzer: functions
// annotated //repro:deterministic must produce output that depends only
// on their inputs.
//
// The repo's standing promise is bit-identical reproduction of the
// paper's tables at any worker count; every rendered number flows
// through a handful of merge/render functions, and a single unordered
// map iteration or wall-clock read there breaks the promise silently —
// the output is still plausible, just different across runs. Inside a
// //repro:deterministic function the analyzer reports
//
//   - range over a map, unless the loop body only aggregates
//     order-insensitively (commutative op-assignments, counters, map
//     stores, deletes) or collects into slices that a post-dominating
//     sort./slices.Sort* call orders before use — the repo's
//     sorted-keys idiom;
//   - time.Now, time.Since, time.Until (wall-clock reads are
//     result-affecting until proven otherwise);
//   - randomness outside internal/xrand (math/rand, math/rand/v2,
//     crypto/rand) — xrand is the repo's seeded, reproducible source;
//   - select over multiple channels (scheduler-ordered choice);
//   - calls to module-local functions that are not themselves
//     //repro:deterministic — the obligation is transitive, like
//     hotpath's. Interface and func-value calls are the dynamic
//     boundary and are accepted.
//
// A finding is suppressed by //repro:order-insensitive <why> on the
// offending line (or the block above): the justification — why this
// nondeterminism cannot affect the result — is mandatory, and an
// annotation that suppresses nothing is itself reported.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "//repro:deterministic functions depend only on their inputs: no unordered map iteration, wall-clock reads, non-xrand randomness, or multi-channel selects",
	Run:  run,
}

// XrandPath is the module's deterministic randomness package; calls
// into it are exempt from the randomness rule by construction.
const XrandPath = "repro/internal/xrand"

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, justified: make(map[token.Pos]bool)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := analysis.FuncDirective(fn, "deterministic"); !ok {
				continue
			}
			c.checkFunc(fn)
		}
	}
	for _, dir := range pass.Dirs.Unused("order-insensitive") {
		pass.Reportf(dir.Pos, "unused //repro:order-insensitive (no determinism finding on this line; remove the stale escape)")
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// body is the function body under analysis, for post-dominating-sort
	// scans.
	body *ast.BlockStmt
	// justified dedupes missing-justification reports per directive.
	justified map[token.Pos]bool
}

// report emits a finding unless the line carries a justified
// //repro:order-insensitive escape.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if dir, ok := c.pass.Dirs.Get(pos, "order-insensitive"); ok {
		if dir.Args == "" && !c.justified[dir.Pos] {
			c.justified[dir.Pos] = true
			c.pass.Reportf(dir.Pos, "//repro:order-insensitive requires a justification (why can this nondeterminism not affect the result?)")
		}
		return
	}
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	c.body = fn.Body
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := c.pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					c.checkMapRange(n)
				}
			}
		case *ast.SelectStmt:
			comms := 0
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms > 1 {
				c.report(n.Pos(), "select over multiple channels: the scheduler picks the ready case, so completion order leaks into the result")
			}
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

// checkCall vets one call inside a deterministic function.
func (c *checker) checkCall(call *ast.CallExpr) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}
	f, ok := c.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return // builtins, conversions, func-valued variables
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
		return // dynamic dispatch: the boundary runtime differential tests cover
	}
	pkg := f.Pkg()
	if pkg == nil {
		return
	}
	switch pkg.Path() {
	case "time":
		switch f.Name() {
		case "Now", "Since", "Until":
			c.report(call.Pos(), "time.%s in deterministic function: wall-clock reads are result-affecting (take the timestamp as input, or justify with //repro:order-insensitive)", f.Name())
		}
		return
	case "math/rand", "math/rand/v2", "crypto/rand":
		c.report(call.Pos(), "%s.%s in deterministic function: use the seeded internal/xrand source", pkg.Name(), f.Name())
		return
	}
	if c.pass.Facts != nil && c.moduleLocal(pkg.Path()) && pkg.Path() != XrandPath {
		if !c.pass.Facts.Deterministic[analysis.TypeFuncKey(f)] {
			c.report(call.Pos(), "call to %s.%s: callee is not //repro:deterministic (the obligation is transitive; annotate it or justify with //repro:order-insensitive)", pkg.Name(), calleeName(f))
		}
	}
}

// moduleLocal reports whether path belongs to the module under analysis.
func (c *checker) moduleLocal(path string) bool {
	mod := c.pass.Facts.ModulePath
	if mod == "" {
		return path == c.pass.Pkg.Path()
	}
	return path == mod || strings.HasPrefix(path, mod+"/")
}

func calleeName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

// checkMapRange decides whether one map-range loop is order-safe.
func (c *checker) checkMapRange(rng *ast.RangeStmt) {
	// collected gathers the slice vars the body appends into; they must
	// all be sorted after the loop.
	var collected []*types.Var
	insensitive := true
	for _, stmt := range rng.Body.List {
		targets, ok := c.orderInsensitiveStmt(stmt)
		if !ok {
			insensitive = false
			break
		}
		collected = append(collected, targets...)
	}
	if insensitive {
		unsorted := ""
		for _, v := range collected {
			if !c.sortedAfter(v, rng.End()) {
				unsorted = v.Name()
				break
			}
		}
		if unsorted == "" {
			return
		}
		c.report(rng.Pos(), "map iteration collects into %s but no sort.*/slices.Sort* call follows the loop: iteration order leaks into the result", unsorted)
		return
	}
	c.report(rng.Pos(), "unordered map iteration in deterministic function: sort the keys first, aggregate order-insensitively, or justify with //repro:order-insensitive")
}

// orderInsensitiveStmt classifies one loop-body statement. It returns
// the slice variables the statement appends into (which then require a
// post-dominating sort), and whether the statement is order-insensitive
// at all.
func (c *checker) orderInsensitiveStmt(stmt ast.Stmt) ([]*types.Var, bool) {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return nil, true // counters commute
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			return nil, true // commutative fold
		case token.ASSIGN, token.DEFINE:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return nil, false
			}
			// Map store: m2[k] = v — insertion order is unobservable.
			if ix, ok := ast.Unparen(s.Lhs[0]).(*ast.IndexExpr); ok {
				if tv, ok := c.pass.TypesInfo.Types[ix.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						return nil, true
					}
				}
			}
			// Collect: x = append(x, ...) — fine if x is sorted later.
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" {
					if lv := c.rootVar(s.Lhs[0]); lv != nil && len(call.Args) > 0 && c.rootVar(call.Args[0]) == lv {
						return []*types.Var{lv}, true
					}
				}
			}
			return nil, false
		}
		return nil, false
	case *ast.ExprStmt:
		// delete(m, k) commutes.
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "delete" {
				if _, isBuiltin := c.pass.TypesInfo.Uses[fid].(*types.Builtin); isBuiltin {
					return nil, true
				}
			}
		}
		return nil, false
	}
	return nil, false
}

// rootVar resolves an expression to the variable it names, or nil.
func (c *checker) rootVar(e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// sortedAfter reports whether a sort.*/slices.Sort* call on v appears
// after pos in the function body — the post-dominating sort idiom. The
// check is positional, not control-flow-aware: a sort in a sibling
// branch after the loop counts, which is exactly how the repo writes
// the collect-then-sort pattern.
func (c *checker) sortedAfter(v *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(c.body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		f, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || f.Pkg() == nil {
			return true
		}
		switch f.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		if !strings.Contains(f.Name(), "Sort") && !isSortShorthand(f.Pkg().Path(), f.Name()) {
			return true
		}
		if c.rootVar(call.Args[0]) == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSortShorthand matches sort's typed shorthands (sort.Strings,
// sort.Ints, sort.Float64s) that don't carry "Sort" in the name.
func isSortShorthand(pkgPath, name string) bool {
	if pkgPath != "sort" {
		return false
	}
	switch name {
	case "Strings", "Ints", "Float64s", "Stable", "Slice", "SliceStable":
		return true
	}
	return false
}
