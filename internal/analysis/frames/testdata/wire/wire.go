// Package wire is the frames analyzer fixture: classified and rogue
// frame constants, exhaustive and partial dispatch switches, and the
// ignore escape hatch.
package wire

const (
	//repro:frame request
	FrameOpen byte = 0x01
	//repro:frame response
	FrameOpened byte = 0x02
	//repro:frame request
	FrameClose byte = 0x03
	//repro:frame response
	FrameClosed byte = 0x04
	FrameRogue  byte = 0x05 // want "frame constant FrameRogue must be classified"
	//repro:frame sideways // want "wants direction request or response"
	FrameOdd byte = 0x06
	// FrameSize is not byte-typed and is no frame constant at all.
	FrameSize int = 12
)

// demux handles every request frame.
func demux(typ byte) int {
	//repro:frames request
	switch typ {
	case FrameOpen:
		return 1
	case FrameClose:
		return 2
	}
	return 0
}

// partial claims the response direction but misses FrameClosed.
func partial(typ byte) int {
	//repro:frames response
	switch typ { // want "does not handle FrameClosed"
	case FrameOpened:
		return 1
	}
	return 0
}

// sniff dispatches on two frame constants without any annotation.
func sniff(typ byte) bool {
	switch typ { // want "switch dispatches on 2 frame constants"
	case FrameOpen, FrameOpened:
		return true
	}
	return false
}

// tap is a deliberate partial demux.
func tap(typ byte) bool {
	//repro:frames ignore metrics-only tap, deliberately partial
	switch typ {
	case FrameOpen, FrameClose:
		return true
	}
	return false
}

// tagless covers every classified frame through == comparisons.
func tagless(typ byte) int {
	//repro:frames all
	switch {
	case typ == FrameOpen, typ == FrameOpened:
		return 1
	case typ == FrameClose:
		return 2
	case typ == FrameClosed:
		return 3
	}
	return 0
}

// askew names a direction the taxonomy does not have.
func askew(typ byte) int {
	//repro:frames sideways // want "wants request, response, all or ignore"
	switch typ {
	case FrameOpen, FrameClose:
		return 1
	}
	return 0
}
