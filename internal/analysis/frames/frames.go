// Package frames implements the frame-exhaustive analyzer: every wire
// frame constant is classified, and every frame-dispatch switch handles
// its whole direction.
//
// The serve protocol grows by adding Frame* constants (FrameSnapGet,
// FrameOpenSnap, ... in PR 6); each addition must reach every dispatch
// switch — the server's request demux, the client's response demux, the
// fuzzer's corpus walker — or the new frame is silently treated as a
// protocol error on one side only. The analyzer enforces, within any
// package declaring byte constants named Frame*:
//
//   - every Frame* constant carries //repro:frame request or
//     //repro:frame response (the wire's direction taxonomy);
//   - every switch whose cases mention two or more Frame* constants is a
//     dispatch switch and must be annotated //repro:frames request,
//     //repro:frames response, //repro:frames all, or //repro:frames
//     ignore <why> (for deliberate partial demuxes);
//   - an annotated switch lists every constant of its direction — adding
//     a frame without extending each dispatch switch fails vet.
package frames

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the frame-exhaustive analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "frames",
	Doc:  "every Frame* constant is classified and handled in each //repro:frames dispatch switch",
	Run:  run,
}

// frameConst is one classified wire-frame constant.
type frameConst struct {
	obj       *types.Const
	direction string // "request" or "response"; "" when unclassified
}

func run(pass *analysis.Pass) error {
	frames := collectFrames(pass)
	if len(frames) == 0 {
		return nil
	}
	byDirection := map[string][]*frameConst{}
	for _, fc := range frames {
		if fc.direction != "" {
			byDirection[fc.direction] = append(byDirection[fc.direction], fc)
			byDirection["all"] = append(byDirection["all"], fc)
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			checkSwitch(pass, frames, byDirection, sw)
			return true
		})
	}
	return nil
}

// collectFrames gathers the package's Frame* byte constants and their
// //repro:frame classification.
func collectFrames(pass *analysis.Pass) map[*types.Const]*frameConst {
	frames := make(map[*types.Const]*frameConst)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !isFrameName(name.Name) {
						continue
					}
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || !isByte(obj.Type()) {
						continue
					}
					fc := &frameConst{obj: obj}
					if dir, ok := specDirective(vs, "frame"); ok {
						switch dir.Args {
						case "request", "response":
							fc.direction = dir.Args
						default:
							pass.Reportf(dir.Pos, "//repro:frame wants direction request or response, got %q", dir.Args)
						}
					} else {
						pass.Reportf(name.Pos(), "frame constant %s must be classified //repro:frame request|response so dispatch switches can be checked", name.Name)
					}
					frames[obj] = fc
				}
			}
		}
	}
	return frames
}

// isFrameName matches exported and unexported frame constant names
// (FrameOpen, frameOpen) without tripping on e.g. FrameSize bounds —
// the byte-typed requirement does that filtering.
func isFrameName(name string) bool {
	rest, ok := strings.CutPrefix(name, "Frame")
	if !ok {
		rest, ok = strings.CutPrefix(name, "frame")
	}
	return ok && rest != "" && rest[0] >= 'A' && rest[0] <= 'Z'
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

func specDirective(vs *ast.ValueSpec, name string) (analysis.Directive, bool) {
	for _, g := range []*ast.CommentGroup{vs.Doc, vs.Comment} {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if dir, ok := analysis.ParseDirective(c.Text); ok && dir.Name == name {
				dir.Pos = c.Pos()
				return dir, true
			}
		}
	}
	return analysis.Directive{}, false
}

func checkSwitch(pass *analysis.Pass, frames map[*types.Const]*frameConst, byDirection map[string][]*frameConst, sw *ast.SwitchStmt) {
	handled := make(map[*types.Const]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			var id *ast.Ident
			switch e := ast.Unparen(e).(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			case *ast.BinaryExpr:
				// Tagless dispatch: case typ == FrameOpen.
				for _, op := range []ast.Expr{e.X, e.Y} {
					if opID, ok := ast.Unparen(op).(*ast.Ident); ok {
						if c, ok := pass.TypesInfo.Uses[opID].(*types.Const); ok && frames[c] != nil {
							handled[c] = true
						}
					}
				}
				continue
			default:
				continue
			}
			if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok && frames[c] != nil {
				handled[c] = true
			}
		}
	}

	dir, annotated := pass.Dirs.Get(sw.Pos(), "frames")
	if !annotated {
		if len(handled) >= 2 {
			pass.Reportf(sw.Pos(), "switch dispatches on %d frame constants; annotate //repro:frames request|response|all, or //repro:frames ignore <why> for a deliberate partial demux", len(handled))
		}
		return
	}
	verb, _, _ := strings.Cut(dir.Args, " ")
	switch verb {
	case "ignore":
		return
	case "request", "response", "all":
	default:
		pass.Reportf(dir.Pos, "//repro:frames wants request, response, all or ignore, got %q", dir.Args)
		return
	}
	var missing []string
	for _, fc := range byDirection[verb] {
		if !handled[fc.obj] {
			missing = append(missing, fc.obj.Name())
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(sw.Pos(), "frame dispatch switch (//repro:frames %s) does not handle %s", verb, name)
	}
}
