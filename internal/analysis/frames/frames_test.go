package frames_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/frames"
)

func TestFrames(t *testing.T) {
	analysistest.Run(t, "testdata/wire", frames.Analyzer)
}
