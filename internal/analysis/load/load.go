// Package load turns package patterns into type-checked analysis units
// using only the standard library: `go list -export -json` supplies the
// file lists and compiled export data (offline, straight from the build
// cache), go/parser the syntax, and go/importer's gc importer the
// dependency types. It also builds the module-wide directive facts the
// hotpath analyzer needs to reason about cross-package calls.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Package is one type-checked unit ready for analysis.
type Package struct {
	// PkgPath is the import path (test variants collapse to the path of
	// the package under test, external test packages to path + "_test").
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Dirs    *analysis.Directives
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Module     *struct {
		Path string
		Main bool
		Dir  string
	}
}

// Config controls a Load.
type Config struct {
	// Dir is the working directory for go list ("" = current).
	Dir string
	// Tests includes each package's test variant (the package compiled
	// with its _test.go files, plus external _test packages).
	Tests bool
}

// Load lists, parses and type-checks the packages matching patterns,
// and builds module-wide facts from every module-local package in the
// dependency graph.
func Load(cfg Config, patterns ...string) ([]*Package, *analysis.ModuleFacts, error) {
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Dir,Name,Export,GoFiles,ImportMap,Standard,DepOnly,ForTest,Module"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}

	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// When tests are included, a package under test appears twice: plain
	// and as the "pkg [pkg.test]" variant whose file set is a superset.
	// Analyzing both would double every diagnostic, so the plain package
	// yields to its variant.
	hasVariant := make(map[string]bool)
	for _, p := range pkgs {
		if p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" [") {
			hasVariant[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File) // ImportPath → syntax
	parseAll := func(p *listPackage) ([]*ast.File, error) {
		if files, ok := parsed[p.ImportPath]; ok {
			return files, nil
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		parsed[p.ImportPath] = files
		return files, nil
	}

	// Module facts: scan every module-local package in the graph for
	// //repro:hotpath and //repro:deterministic functions and
	// atomically-disciplined fields, syntax only.
	facts := analysis.NewModuleFacts()
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || !p.Module.Main || p.Name == "" {
			continue
		}
		if facts.ModulePath == "" {
			facts.ModulePath = p.Module.Path
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		files, err := parseAll(p)
		if err != nil {
			return nil, nil, fmt.Errorf("parse %s: %v", p.ImportPath, err)
		}
		CollectFacts(facts, canonicalPath(p), files)
	}

	var units []*Package
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.ForTest == "" && hasVariant[p.ImportPath] {
			continue
		}
		files, err := parseAll(p)
		if err != nil {
			return nil, nil, fmt.Errorf("parse %s: %v", p.ImportPath, err)
		}
		if len(files) == 0 {
			continue
		}
		tpkg, info, err := Check(fset, canonicalPath(p), files, Importer(fset, exports, p.ImportMap))
		if err != nil {
			return nil, nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		units = append(units, &Package{
			PkgPath: canonicalPath(p),
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			Dirs:    analysis.NewDirectives(fset, files),
		})
	}
	return units, facts, nil
}

// canonicalPath strips the " [pkg.test]" variant suffix so analysis
// paths (and hotpath fact keys) match the plain import path.
func canonicalPath(p *listPackage) string {
	if i := strings.Index(p.ImportPath, " ["); i >= 0 {
		return p.ImportPath[:i]
	}
	return p.ImportPath
}

// CollectFacts records the directive facts of the given files under
// pkgPath: //repro:hotpath and //repro:deterministic functions, plus
// atomically-disciplined struct fields (typed sync/atomic fields, and
// plain fields whose address feeds an atomic.* call in a method or
// function of this package). Syntax only — resolution is by name, which
// is exactly as much as the cross-package consumers need.
func CollectFacts(facts *analysis.ModuleFacts, pkgPath string, files []*ast.File) {
	for _, f := range files {
		atomicName := importLocalName(f, "sync/atomic", "atomic")
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if _, ok := analysis.FuncDirective(decl, "hotpath"); ok {
					facts.Hotpath[analysis.DeclFuncKey(pkgPath, decl)] = true
				}
				if _, ok := analysis.FuncDirective(decl, "deterministic"); ok {
					facts.Deterministic[analysis.DeclFuncKey(pkgPath, decl)] = true
				}
				if atomicName != "" {
					collectAtomicCallFacts(facts, pkgPath, decl, atomicName)
				}
			case *ast.GenDecl:
				if decl.Tok != token.TYPE || atomicName == "" {
					continue
				}
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !isAtomicTypeExpr(field.Type, atomicName) {
							continue
						}
						for _, name := range field.Names {
							facts.AtomicFields[analysis.FieldKey(pkgPath, ts.Name.Name, name.Name)] = true
						}
					}
				}
			}
		}
	}
}

// importLocalName returns the local name the file imports path under
// ("" when the file does not import it; defName when imported without a
// rename).
func importLocalName(f *ast.File, path, defName string) string {
	for _, imp := range f.Imports {
		if imp.Path.Value != `"`+path+`"` {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return defName
	}
	return ""
}

// isAtomicTypeExpr matches atomic.X and atomic.Pointer[T] type syntax.
func isAtomicTypeExpr(t ast.Expr, atomicName string) bool {
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == atomicName
}

// collectAtomicCallFacts records fields of this package's own struct
// types whose address is passed to an atomic.* call inside fn — the
// legacy pre-typed-atomic idiom (atomic.AddUint64(&s.n, 1)). The base
// variable must be the receiver or a parameter whose type names a local
// struct, so the field's owning type resolves without type checking.
func collectAtomicCallFacts(facts *analysis.ModuleFacts, pkgPath string, fn *ast.FuncDecl, atomicName string) {
	if fn.Body == nil {
		return
	}
	// varType maps receiver/parameter names to their local base type name.
	varType := make(map[string]string)
	addFields := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			t := f.Type
			if st, ok := t.(*ast.StarExpr); ok {
				t = st.X
			}
			id, ok := t.(*ast.Ident)
			if !ok {
				continue
			}
			for _, name := range f.Names {
				varType[name.Name] = id.Name
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	if len(varType) == 0 {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != atomicName {
			return true
		}
		addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return true
		}
		fieldSel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(fieldSel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if tn, ok := varType[base.Name]; ok {
			facts.AtomicFields[analysis.FieldKey(pkgPath, tn, fieldSel.Sel.Name)] = true
		}
		return true
	})
}

// Importer returns a types.Importer resolving imports through compiled
// export data: importMap (may be nil) maps source import paths to
// resolved package paths (test variants), exports maps resolved paths
// to export data files.
func Importer(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Check type-checks one package's files, returning the package and a
// fully populated types.Info.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}
