// Package load turns package patterns into type-checked analysis units
// using only the standard library: `go list -export -json` supplies the
// file lists and compiled export data (offline, straight from the build
// cache), go/parser the syntax, and go/importer's gc importer the
// dependency types. It also builds the module-wide directive facts the
// hotpath analyzer needs to reason about cross-package calls.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Package is one type-checked unit ready for analysis.
type Package struct {
	// PkgPath is the import path (test variants collapse to the path of
	// the package under test, external test packages to path + "_test").
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Dirs    *analysis.Directives
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Module     *struct {
		Path string
		Main bool
		Dir  string
	}
}

// Config controls a Load.
type Config struct {
	// Dir is the working directory for go list ("" = current).
	Dir string
	// Tests includes each package's test variant (the package compiled
	// with its _test.go files, plus external _test packages).
	Tests bool
}

// Load lists, parses and type-checks the packages matching patterns,
// and builds module-wide facts from every module-local package in the
// dependency graph.
func Load(cfg Config, patterns ...string) ([]*Package, *analysis.ModuleFacts, error) {
	args := []string{"list", "-export", "-deps", "-json=ImportPath,Dir,Name,Export,GoFiles,ImportMap,Standard,DepOnly,ForTest,Module"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}

	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// When tests are included, a package under test appears twice: plain
	// and as the "pkg [pkg.test]" variant whose file set is a superset.
	// Analyzing both would double every diagnostic, so the plain package
	// yields to its variant.
	hasVariant := make(map[string]bool)
	for _, p := range pkgs {
		if p.ForTest != "" && strings.HasPrefix(p.ImportPath, p.ForTest+" [") {
			hasVariant[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File) // ImportPath → syntax
	parseAll := func(p *listPackage) ([]*ast.File, error) {
		if files, ok := parsed[p.ImportPath]; ok {
			return files, nil
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(p.Dir, name)
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		parsed[p.ImportPath] = files
		return files, nil
	}

	// Module facts: scan every module-local package in the graph for
	// //repro:hotpath functions, syntax only.
	facts := analysis.NewModuleFacts()
	for _, p := range pkgs {
		if p.Standard || p.Module == nil || !p.Module.Main || p.Name == "" {
			continue
		}
		if facts.ModulePath == "" {
			facts.ModulePath = p.Module.Path
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		files, err := parseAll(p)
		if err != nil {
			return nil, nil, fmt.Errorf("parse %s: %v", p.ImportPath, err)
		}
		CollectHotpathFacts(facts, canonicalPath(p), files)
	}

	var units []*Package
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.ForTest == "" && hasVariant[p.ImportPath] {
			continue
		}
		files, err := parseAll(p)
		if err != nil {
			return nil, nil, fmt.Errorf("parse %s: %v", p.ImportPath, err)
		}
		if len(files) == 0 {
			continue
		}
		tpkg, info, err := Check(fset, canonicalPath(p), files, Importer(fset, exports, p.ImportMap))
		if err != nil {
			return nil, nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
		}
		units = append(units, &Package{
			PkgPath: canonicalPath(p),
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			Dirs:    analysis.NewDirectives(fset, files),
		})
	}
	return units, facts, nil
}

// canonicalPath strips the " [pkg.test]" variant suffix so analysis
// paths (and hotpath fact keys) match the plain import path.
func canonicalPath(p *listPackage) string {
	if i := strings.Index(p.ImportPath, " ["); i >= 0 {
		return p.ImportPath[:i]
	}
	return p.ImportPath
}

// CollectHotpathFacts records every //repro:hotpath function of the
// given files under pkgPath.
func CollectHotpathFacts(facts *analysis.ModuleFacts, pkgPath string, files []*ast.File) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := analysis.FuncDirective(fn, "hotpath"); ok {
				facts.Hotpath[analysis.DeclFuncKey(pkgPath, fn)] = true
			}
		}
	}
}

// Importer returns a types.Importer resolving imports through compiled
// export data: importMap (may be nil) maps source import paths to
// resolved package paths (test variants), exports maps resolved paths
// to export data files.
func Importer(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Check type-checks one package's files, returning the package and a
// fully populated types.Info.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}
