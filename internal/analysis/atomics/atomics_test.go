package atomics_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomics"
)

func TestAtomics(t *testing.T) {
	analysistest.Run(t, "testdata/atomics", atomics.Analyzer)
}

func TestAtomicsCrossPackage(t *testing.T) {
	analysistest.Run(t, "testdata/crosspkg", atomics.Analyzer)
}
