// Package atomics implements the atomics analyzer: field-level atomic
// access discipline.
//
// The serve layer's shared counters and the observability primitives
// mix lock-free atomics with mutex-guarded state; the failure mode
// -race only catches when the schedule cooperates is a *mixed* field —
// one site updates it through sync/atomic while another reads it
// plainly. The analyzer makes the discipline a static property:
//
//   - A struct field is atomically disciplined when its type comes from
//     sync/atomic (atomic.Int64, atomic.Uint64, atomic.Bool, ...), or
//     when any code in the module passes its address to an atomic.*
//     call (the legacy idiom: atomic.AddUint64(&s.n, 1)).
//   - Every access to a plainly-typed disciplined field must itself be
//     atomic (an atomic.* call on its address), or demonstrably under a
//     //repro:guardedby mutex shared with the atomic sites (the
//     lockcheck machinery decides "held"), or annotated
//     //repro:plainread <why the race is benign or excluded>.
//   - The address of a typed-atomic field must not escape: &s.ctr
//     handed to an arbitrary callee defeats the type's copy protection
//     and hides the access from this analysis. (Method calls like
//     s.ctr.Add(1) take the address implicitly and are fine.)
//   - A by-value copy of any struct (transitively) containing atomics
//     or mutexes is reported: value receivers, assignments, call
//     arguments, returns, derefs and range values — a copy tears the
//     atomic state and decouples it from its lock.
//
// Cross-package accesses are checked through module facts: a field
// atomically disciplined in its home package keeps the obligation
// everywhere in the module. //repro:plainread requires a justification,
// and an annotation that suppresses nothing is itself a finding.
package atomics

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/lockcheck"
)

// Analyzer is the atomics analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomics",
	Doc:  "fields touched through sync/atomic are accessed atomically at every site; no copies or escaping addresses of atomic state",
	Run:  run,
}

type checker struct {
	pass *analysis.Pass
	// plainDisciplined maps plainly-typed fields that some atomic.* call
	// targets (by address) to one such call position, package-local.
	plainDisciplined map[*types.Var]token.Pos
	// atomicArgs is the set of &field selector expressions that appear as
	// arguments of atomic.* calls — the legal access sites.
	atomicArgs map[*ast.SelectorExpr]bool
	// guards maps guarded fields to their mutex name (lockcheck's
	// //repro:guardedby machinery, silent variant).
	guards map[*types.Var]string
	// justified dedupes missing-justification reports per directive.
	justified map[token.Pos]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:             pass,
		plainDisciplined: make(map[*types.Var]token.Pos),
		atomicArgs:       make(map[*ast.SelectorExpr]bool),
		guards:           lockcheck.GuardedBy(pass),
		justified:        make(map[token.Pos]bool),
	}
	c.collectAtomicCalls()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkFunc(fn)
		}
		c.checkCopies(file)
	}
	for _, dir := range pass.Dirs.Unused("plainread") {
		pass.Reportf(dir.Pos, "unused //repro:plainread (no atomics finding on this line; remove the stale escape)")
	}
	return nil
}

// report emits a finding unless the line carries a justified
// //repro:plainread escape.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if dir, ok := c.pass.Dirs.Get(pos, "plainread"); ok {
		if dir.Args == "" && !c.justified[dir.Pos] {
			c.justified[dir.Pos] = true
			c.pass.Reportf(dir.Pos, "//repro:plainread requires a justification (why is this non-atomic access safe?)")
		}
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// collectAtomicCalls finds every atomic.*(&x.field, ...) call in the
// package, recording the targeted fields as disciplined and the selector
// expressions as legal access sites.
func (c *checker) collectAtomicCalls() {
	for _, file := range c.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := c.calleeFunc(call)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				addr, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				c.atomicArgs[sel] = true
				if field := c.fieldOf(sel); field != nil && !isAtomicType(field.Type()) {
					if _, seen := c.plainDisciplined[field]; !seen {
						c.plainDisciplined[field] = call.Pos()
					}
				}
			}
			return true
		})
	}
}

// calleeFunc resolves a call's statically-known callee.
func (c *checker) calleeFunc(call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn, ok
}

// fieldOf returns the struct field a selector expression selects, or nil.
func (c *checker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, _ := selection.Obj().(*types.Var)
	return v
}

// fieldKeyOf returns the module-facts key of a selected field
// ("pkgpath.Type.Field"), or "" when the owner is not a named type.
func (c *checker) fieldKeyOf(sel *ast.SelectorExpr) string {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return ""
	}
	t := selection.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		// The field may be promoted through embedding; fall back to the
		// field's own declaring struct, which facts cannot name either.
		return ""
	}
	return analysis.FieldKey(field.Pkg().Path(), named.Obj().Name(), field.Name())
}

// disciplined reports whether the selected field demands atomic access,
// with a short provenance string for the diagnostic.
func (c *checker) disciplined(sel *ast.SelectorExpr, field *types.Var) (string, bool) {
	if _, ok := c.plainDisciplined[field]; ok {
		return "atomic.* on its address in this package", true
	}
	if field.Pkg() != nil && field.Pkg() != c.pass.Pkg && c.pass.Facts != nil {
		if key := c.fieldKeyOf(sel); key != "" && c.pass.Facts.AtomicFields[key] && !isAtomicType(field.Type()) {
			return "atomic.* on its address in its home package", true
		}
	}
	return "", false
}

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	exempt := lockcheck.IsExempt(fn)
	acquired := lockcheck.LockAcquisitions(c.pass, fn)

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		// Address-escape of typed atomic fields: &s.ctr outside an
		// atomic.* argument position.
		if addr, ok := n.(*ast.UnaryExpr); ok && addr.Op == token.AND {
			if sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr); ok && !c.atomicArgs[sel] {
				if field := c.fieldOf(sel); field != nil && isAtomicType(field.Type()) {
					c.report(addr.Pos(), "address of atomic field %s escapes; pass the enclosing struct pointer so accesses stay visible (or //repro:plainread <why>)", field.Name())
				}
			}
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field := c.fieldOf(sel)
		if field == nil {
			return true
		}
		why, ok := c.disciplined(sel, field)
		if !ok {
			return true
		}
		if c.atomicArgs[sel] {
			return true // the atomic access itself
		}
		// Guarded plain access: legal when the guarding mutex is
		// demonstrably held (or the function is an audited ...Locked /
		// //repro:locked accessor).
		if lockName, guarded := c.guards[field]; guarded {
			if exempt || lockcheck.Held(acquired, lockName, lockcheck.RootObject(c.pass, sel.X), sel.Pos()) {
				return true
			}
		}
		c.report(sel.Sel.Pos(), "plain access to field %s, which is accessed atomically elsewhere (%s): use sync/atomic here, guard every site with its //repro:guardedby mutex, or justify with //repro:plainread <why>", field.Name(), why)
		return true
	})
}
