package atomics

import (
	"go/ast"
	"go/types"
)

// isAtomicType reports whether t is a sync/atomic type (atomic.Int64,
// atomic.Uint64, atomic.Bool, atomic.Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isNoCopyType reports whether copying a value of type t by value tears
// synchronization state: sync/atomic types, sync.Mutex/RWMutex/etc.,
// and any struct transitively containing one. seen breaks type cycles.
func isNoCopyType(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync/atomic":
				return true
			case "sync":
				// sync.Once and friends embed noCopy/Mutex; every sync
				// type except map-free helpers is copy-hostile. Be blunt:
				// copying anything from package sync is wrong.
				return obj.Name() != "" // all named sync types
			}
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isNoCopyType(st.Field(i).Type(), seen) {
			return true
		}
	}
	return false
}

// noCopy reports whether t must not be copied by value, with the name
// of the offending type for the diagnostic.
func noCopy(t types.Type) (string, bool) {
	if !isNoCopyType(t, make(map[types.Type]bool)) {
		return "", false
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() }), true
}

// checkCopies flags by-value copies of structs containing atomics or
// mutexes anywhere in the file: value receivers and parameters/results
// of such types, dereference-copies (x := *p), and range values.
// Composite literals and call results initialize rather than copy, so
// assignment of those is fine; what we catch is an existing value being
// duplicated.
func (c *checker) checkCopies(file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		c.checkSignatureCopies(fn)
		if fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					c.checkValueCopy(rhs)
				}
			case *ast.RangeStmt:
				// ranging over []T copies each element into the value var.
				if n.Value != nil {
					if t := c.pass.TypesInfo.TypeOf(n.Value); t != nil {
						if name, bad := noCopy(t); bad {
							c.report(n.Value.Pos(), "range value copies %s, which contains atomic/mutex state; range over indices or pointers", name)
						}
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					c.checkValueCopy(arg)
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					c.checkValueCopy(res)
				}
			}
			return true
		})
	}
}

// checkSignatureCopies flags value receivers and by-value params/results
// whose type contains synchronization state.
func (c *checker) checkSignatureCopies(fn *ast.FuncDecl) {
	check := func(fields *ast.FieldList, what string) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			t := c.pass.TypesInfo.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if name, bad := noCopy(t); bad {
				c.report(f.Type.Pos(), "%s of %s copies atomic/mutex state; use a pointer", what, name)
			}
		}
	}
	check(fn.Recv, "value receiver")
	check(fn.Type.Params, "by-value parameter")
	check(fn.Type.Results, "by-value result")
}

// checkValueCopy reports e when evaluating it copies an existing
// no-copy value: a plain identifier/selector/index of such a type, or a
// dereference. Composite literals, calls, and &-expressions construct
// or alias rather than copy.
func (c *checker) checkValueCopy(e ast.Expr) {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if name, bad := noCopy(t); bad {
		c.report(e.Pos(), "copies %s by value, which contains atomic/mutex state; use a pointer", name)
	}
}
