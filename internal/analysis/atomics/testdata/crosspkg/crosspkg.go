// Fixture for cross-package atomics discipline: counters.Stats.N is
// disciplined in its home package (fixture/counters); plain reads here
// must be flagged through module facts.
package crosspkg

import "fixture/counters"

func bad(s *counters.Stats) uint64 {
	return s.N // want "plain access to field N, which is accessed atomically elsewhere .*home package"
}

func ok(s *counters.Stats) uint64 {
	return s.N //repro:plainread stats endpoint tolerates a torn read
}
