// Dependency package: exports the atomics-discipline fact for Stats.N
// (its address feeds atomic.AddUint64 here, its home package).
package counters

import "sync/atomic"

// Stats is a shared counter block updated lock-free.
type Stats struct {
	N uint64
}

// Inc bumps the counter.
func (s *Stats) Inc() {
	atomic.AddUint64(&s.N, 1)
}
