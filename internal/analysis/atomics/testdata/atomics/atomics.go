// Fixture for the atomics analyzer: mixed atomic/plain field access,
// guarded reads, escape hatches (valid, missing justification, stale),
// typed-atomic address escapes, and by-value copies of no-copy structs.
package atomicsfix

import (
	"sync"
	"sync/atomic"
)

type counters struct {
	mu sync.Mutex
	// n is disciplined by the atomic.AddUint64 in inc.
	n uint64
	// guarded is touched both atomically and under mu.
	guarded uint64 //repro:guardedby mu
	typed   atomic.Int64
	plain   int
}

func (c *counters) inc() {
	atomic.AddUint64(&c.n, 1)
}

func (c *counters) okAtomic() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *counters) bad() uint64 {
	return c.n // want "plain access to field n, which is accessed atomically elsewhere"
}

func (c *counters) okGuarded() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	atomic.AddUint64(&c.guarded, 0)
	return c.guarded
}

func (c *counters) badGuarded() uint64 {
	return c.guarded // want "plain access to field guarded"
}

func (c *counters) okPlainread() uint64 {
	return c.n //repro:plainread monotonic stats counter, torn read acceptable
}

func (c *counters) missingWhy() uint64 {
	return c.n //repro:plainread // want "requires a justification"
}

func (c *counters) stale() int {
	return c.plain //repro:plainread not needed here // want "unused //repro:plainread"
}

func (c *counters) escape() *atomic.Int64 {
	return &c.typed // want "address of atomic field typed escapes"
}

func (c *counters) okTyped() int64 {
	return c.typed.Load()
}

func sink(c counters) int { // want "by-value parameter of .*counters"
	return c.plain
}

func (c counters) snapshot() int { // want "value receiver of .*counters"
	return c.plain
}

func deref(p *counters) {
	v := *p // want "copies .*counters by value"
	_ = v.plain
}

func passByValue(p *counters) int {
	return sink(*p) // want "copies .*counters by value"
}

func rangeCopy(list []counters) {
	for _, v := range list { // want "range value copies .*counters"
		_ = v.plain
	}
}

func okPointers(list []*counters) {
	for _, v := range list {
		v.inc()
	}
}
