// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against // want "regex" expectations embedded
// in the fixture source — the x/tools analysistest idea rebuilt on the
// repo's stdlib-only analysis framework.
//
// Fixtures live under a testdata directory (invisible to ./... package
// patterns, so deliberately-broken invariants never fail the real
// tagevet run) and are plain Go packages: parsed, type-checked against
// the live build cache (stdlib imports resolve through `go list
// -export`), then analyzed. A comment
//
//	// want "regex"
//	// want "first" "second"
//
// on a line declares that the analyzer must report on that line with
// messages matching the regexes, in any order. Every diagnostic must be
// wanted and every want must be matched; anything else fails the test.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// FixtureModulePath is the synthetic module path fixture packages are
// type-checked under. The hotpath analyzer treats the fixture package as
// module-local (its own functions must carry annotations to be callable
// from hot code), exactly like real repo packages.
const FixtureModulePath = "fixture"

// Run analyzes the fixture package in dir with a and reports every
// mismatch between diagnostics and // want expectations as test errors.
//
// Subdirectories of dir holding .go files are dependency packages,
// importable from the fixture as "fixture/<subdir>". They are
// type-checked first and contribute module facts (so cross-package
// fact-driven diagnostics — atomics fields, hotpath callees — can be
// exercised), but only the root package is analyzed and only its files
// carry // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	parseDir := func(d string) []*ast.File {
		sub, err := os.ReadDir(d)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		var files []*ast.File
		for _, e := range sub {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(d, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("analysistest: %v", err)
			}
			files = append(files, f)
		}
		return files
	}

	files := parseDir(dir)
	if len(files) == 0 {
		t.Fatalf("analysistest: no .go files in %s", dir)
	}
	deps := make(map[string][]*ast.File) // import path → syntax
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if depFiles := parseDir(filepath.Join(dir, e.Name())); len(depFiles) > 0 {
			deps[FixtureModulePath+"/"+e.Name()] = depFiles
		}
	}

	pkgPath := FixtureModulePath + "/" + files[0].Name.Name
	var allFiles []*ast.File
	allFiles = append(allFiles, files...)
	for _, depFiles := range deps {
		allFiles = append(allFiles, depFiles...)
	}
	exports, importMap, err := stdlibExports(allFiles)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	facts := analysis.NewModuleFacts()
	facts.ModulePath = FixtureModulePath
	load.CollectFacts(facts, pkgPath, files)
	for depPath, depFiles := range deps {
		load.CollectFacts(facts, depPath, depFiles)
	}

	// Type-check dependency packages first (iterating until the ones
	// whose fixture-local imports are all resolved run out), then the
	// root package against them.
	imp := &fixtureImporter{
		local:    make(map[string]*types.Package),
		fallback: load.Importer(fset, exports, importMap),
	}
	for len(imp.local) < len(deps) {
		progress := false
		for depPath, depFiles := range deps {
			if imp.local[depPath] != nil || !imp.ready(depFiles) {
				continue
			}
			depPkg, _, err := load.Check(fset, depPath, depFiles, imp)
			if err != nil {
				t.Fatalf("analysistest: typecheck %s: %v", depPath, err)
			}
			imp.local[depPath] = depPkg
			progress = true
		}
		if !progress {
			t.Fatalf("analysistest: import cycle among fixture dependency packages in %s", dir)
		}
	}
	tpkg, info, err := load.Check(fset, pkgPath, files, imp)
	if err != nil {
		t.Fatalf("analysistest: typecheck %s: %v", dir, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       tpkg,
		TypesInfo: info,
		Dirs:      analysis.NewDirectives(fset, files),
		Facts:     facts,
		Report:    func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range got {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		ws := wants[key]
		matched := false
		for i, w := range ws {
			if w != nil && w.MatchString(d.Message) {
				ws[i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if w != nil {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w)
			}
		}
	}
}

// fixtureImporter resolves fixture-local packages from memory and
// everything else through compiled export data.
type fixtureImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.local[path]; ok {
		return p, nil
	}
	return fi.fallback.Import(path)
}

// ready reports whether every fixture-local import of files is already
// type-checked.
func (fi *fixtureImporter) ready(files []*ast.File) bool {
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if strings.HasPrefix(p, FixtureModulePath+"/") && fi.local[p] == nil {
				return false
			}
		}
	}
	return true
}

// wantRe matches a // want comment: one or more quoted regexes.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRe matches one Go-quoted string.
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants gathers the // want expectations of every fixture file,
// keyed by "filename:line".
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, s, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// stdlibExports resolves the fixture files' imports to compiled export
// data through `go list -export` (offline, straight from the build
// cache, compiling on demand if needed).
func stdlibExports(files []*ast.File) (exports, importMap map[string]string, err error) {
	seen := make(map[string]bool)
	var paths []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] || strings.HasPrefix(p, FixtureModulePath+"/") {
				continue
			}
			seen[p] = true
			paths = append(paths, p)
		}
	}
	exports = make(map[string]string)
	importMap = make(map[string]string)
	if len(paths) == 0 {
		return exports, importMap, nil
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export,ImportMap"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Export     string
			ImportMap  map[string]string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
	}
	return exports, importMap, nil
}
