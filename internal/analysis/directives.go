package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix is the comment prefix every analyzer directive shares.
// Directives are machine-readable comments in the Go toolchain style
// (//go:noinline): no space after the slashes, a namespace, a colon, a
// verb and optional arguments:
//
//	//repro:hotpath
//	//repro:allow-alloc cold error path, never taken per well-formed input
//	//repro:derived rebuilt by RestoreState from cfg
//	//repro:guardedby mu
//	//repro:locked caller holds s.mu (see Serve)
//	//repro:frame request
//	//repro:frames response
//
// A directive applies to the source line it trails, or — when it stands
// in a comment block of its own — to the declaration or statement
// immediately below the block.
const DirectivePrefix = "//repro:"

// Directive is one parsed //repro: comment.
type Directive struct {
	// Name is the verb after the colon ("hotpath", "derived", ...).
	Name string
	// Args is the remainder of the line, space-trimmed.
	Args string
	// Pos is the position of the comment.
	Pos token.Pos
}

// lineDirective is a directive plus the lines it applies to.
type lineDirective struct {
	d Directive
	// ownLine is the line the comment sits on (trailing-comment match).
	ownLine int
	// belowLine is the line a leading comment block annotates: the line
	// after the block's last line. 0 when the directive's group does not
	// immediately precede code (tracked conservatively: it is simply
	// lastGroupLine+1).
	belowLine int
}

// Directives indexes every //repro: directive of a set of files by
// position, so analyzers can ask "is this node annotated?" in O(1).
type Directives struct {
	fset *token.FileSet
	// byFileLine maps filename → line → directives applying to that line.
	byFileLine map[string]map[int][]*lineDirective
	// used records directives consumed by some analyzer decision, letting
	// the hotpath analyzer flag stale //repro:allow-alloc escapes.
	used map[*lineDirective]bool
}

// NewDirectives indexes the //repro: directives of files.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fset:       fset,
		byFileLine: make(map[string]map[int][]*lineDirective),
		used:       make(map[*lineDirective]bool),
	}
	for _, f := range files {
		for _, group := range f.Comments {
			last := fset.Position(group.End()).Line
			for _, c := range group.List {
				dir, ok := ParseDirective(c.Text)
				if !ok {
					continue
				}
				dir.Pos = c.Pos()
				pos := fset.Position(c.Pos())
				ld := &lineDirective{d: dir, ownLine: pos.Line, belowLine: last + 1}
				m := d.byFileLine[pos.Filename]
				if m == nil {
					m = make(map[int][]*lineDirective)
					d.byFileLine[pos.Filename] = m
				}
				m[ld.ownLine] = append(m[ld.ownLine], ld)
				if ld.belowLine != ld.ownLine {
					m[ld.belowLine] = append(m[ld.belowLine], ld)
				}
			}
		}
	}
	return d
}

// ParseDirective parses one comment text, reporting whether it is a
// //repro: directive.
func ParseDirective(text string) (Directive, bool) {
	rest, ok := strings.CutPrefix(text, DirectivePrefix)
	if !ok {
		return Directive{}, false
	}
	// An embedded "//" ends the directive, so an ordinary comment can
	// follow on the same line (analysistest fixtures put their // want
	// expectations there).
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	name, args, _ := strings.Cut(rest, " ")
	return Directive{Name: name, Args: strings.TrimSpace(args)}, true
}

// at returns the directives applying to pos's line.
func (d *Directives) at(pos token.Pos) []*lineDirective {
	p := d.fset.Position(pos)
	return d.byFileLine[p.Filename][p.Line]
}

// Get returns the directive named name applying to pos's line (either
// trailing on the same line, or in the comment block immediately above)
// and marks it used.
func (d *Directives) Get(pos token.Pos, name string) (Directive, bool) {
	for _, ld := range d.at(pos) {
		if ld.d.Name == name {
			d.used[ld] = true
			return ld.d, true
		}
	}
	return Directive{}, false
}

// Has reports whether a directive named name applies to pos's line, and
// marks it used.
func (d *Directives) Has(pos token.Pos, name string) bool {
	_, ok := d.Get(pos, name)
	return ok
}

// FuncDirective scans a function declaration's doc comment for a
// directive (doc blocks can be long, so the line-adjacency rule of Get
// is not enough).
func FuncDirective(fn *ast.FuncDecl, name string) (Directive, bool) {
	return commentGroupDirective(fn.Doc, name)
}

// FieldDirective scans a struct field's doc and trailing comments.
func FieldDirective(field *ast.Field, name string) (Directive, bool) {
	if dir, ok := commentGroupDirective(field.Doc, name); ok {
		return dir, true
	}
	return commentGroupDirective(field.Comment, name)
}

func commentGroupDirective(g *ast.CommentGroup, name string) (Directive, bool) {
	if g == nil {
		return Directive{}, false
	}
	for _, c := range g.List {
		if dir, ok := ParseDirective(c.Text); ok && dir.Name == name {
			dir.Pos = c.Pos()
			return dir, true
		}
	}
	return Directive{}, false
}

// Unused returns every indexed directive with the given name that no
// analyzer consumed via Get/Has, in file order. The hotpath analyzer
// uses it to reject stale //repro:allow-alloc escapes.
func (d *Directives) Unused(name string) []Directive {
	seen := make(map[*lineDirective]bool)
	var out []Directive
	for _, lines := range d.byFileLine {
		for _, lds := range lines {
			for _, ld := range lds {
				if ld.d.Name == name && !d.used[ld] && !seen[ld] {
					seen[ld] = true
					out = append(out, ld.d)
				}
			}
		}
	}
	sortDirectives(out, d.fset)
	return out
}

func sortDirectives(ds []Directive, fset *token.FileSet) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0; j-- {
			a, b := fset.Position(ds[j-1].Pos), fset.Position(ds[j].Pos)
			if a.Filename < b.Filename || (a.Filename == b.Filename && a.Offset <= b.Offset) {
				break
			}
			ds[j-1], ds[j] = ds[j], ds[j-1]
		}
	}
}
