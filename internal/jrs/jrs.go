// Package jrs implements the JRS confidence estimator (Jacobsen, Rotenberg
// & Smith, MICRO 1996) and its enhancement by Grunwald et al. (ISCA 1998),
// the storage-based baselines of the paper's related-work section.
//
// The JRS estimator is a gshare-indexed table of resetting counters ("miss
// distance counters"): a correct prediction increments the indexed counter
// (saturating), a misprediction resets it to zero, and a prediction is
// classified high confidence when the counter is at or above a threshold.
// The paper cites 4-bit counters with threshold 15 as the interesting
// trade-off: high confidence means at least 15 consecutive correct
// predictions for this (branch, history) slot.
//
// The Grunwald et al. enhancement folds the predicted direction into the
// table index, so that "taken" and "not-taken" predictions for the same
// (branch, history) pair are graded independently.
//
// Unlike the paper's storage-free estimator, JRS costs real storage:
// 2^logSize × bits table bits on top of the predictor.
package jrs

import (
	"fmt"

	"repro/internal/counter"
)

// Estimator is a JRS confidence estimator. It implements the
// sim.BinaryEstimator interface.
type Estimator struct {
	table     []uint8
	mask      uint64 //repro:derived from logSize at construction
	bits      uint
	threshold uint8 //repro:derived construction parameter, fixed for the estimator's lifetime
	histBits  uint  //repro:derived construction parameter, fixed for the estimator's lifetime
	ghist     uint64
	usePred   bool //repro:derived construction parameter, fixed for the estimator's lifetime
}

// DefaultCounterBits is the counter width shown as a good trade-off in the
// original JRS study.
const DefaultCounterBits = 4

// DefaultThreshold is the matching high-confidence threshold (saturated
// 4-bit counter).
const DefaultThreshold = 15

// New returns a JRS estimator with 2^logSize counters of the given width,
// classifying predictions with counter >= threshold as high confidence.
func New(logSize uint, bits uint, threshold uint8, histBits uint) *Estimator {
	if logSize == 0 || logSize > 24 {
		panic(fmt.Sprintf("jrs: unreasonable logSize %d", logSize))
	}
	if bits == 0 || bits > 8 {
		panic(fmt.Sprintf("jrs: unreasonable counter width %d", bits))
	}
	if histBits > logSize {
		histBits = logSize
	}
	return &Estimator{
		table:     make([]uint8, 1<<logSize),
		mask:      uint64(1<<logSize) - 1,
		bits:      bits,
		threshold: threshold,
		histBits:  histBits,
	}
}

// NewDefault returns the classic configuration: 4-bit counters, threshold
// 15.
func NewDefault(logSize uint, histBits uint) *Estimator {
	return New(logSize, DefaultCounterBits, DefaultThreshold, histBits)
}

// Enhanced switches on the Grunwald et al. refinement (prediction folded
// into the index) and returns the estimator.
func (e *Estimator) Enhanced() *Estimator {
	e.usePred = true
	return e
}

//repro:hotpath
func (e *Estimator) index(pc uint64, pred bool) uint64 {
	idx := (pc >> 2) ^ (e.ghist & ((1 << e.histBits) - 1))
	if e.usePred && pred {
		// Fold the predicted direction in as the top index bit.
		idx ^= (e.mask + 1) >> 1
	}
	return idx & e.mask
}

// HighConfidence implements sim.BinaryEstimator.
//repro:hotpath
func (e *Estimator) HighConfidence(pc uint64, pred bool) bool {
	return e.table[e.index(pc, pred)] >= e.threshold
}

// Update implements sim.BinaryEstimator: increment on a correct
// prediction, reset on a misprediction, then advance the local history
// copy.
//repro:hotpath
func (e *Estimator) Update(pc uint64, pred, taken bool) {
	i := e.index(pc, pred)
	if pred == taken {
		e.table[i] = counter.IncUnsigned(e.table[i], e.bits)
	} else {
		e.table[i] = 0
	}
	e.ghist <<= 1
	if taken {
		e.ghist |= 1
	}
}

// StorageBits returns the estimator's table cost in bits — the storage the
// paper's estimator avoids.
func (e *Estimator) StorageBits() int { return len(e.table) * int(e.bits) }

// Threshold returns the high-confidence threshold.
func (e *Estimator) Threshold() uint8 { return e.threshold }
