// Snapshot codec for the JRS confidence estimator: the miss-distance
// counter table plus its local global-history copy.
package jrs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/statecodec"
)

// AppendState appends the counter table and history register to dst.
func (e *Estimator) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(e.table)))
	dst = append(dst, e.table...)
	dst = binary.LittleEndian.AppendUint64(dst, e.ghist)
	return dst
}

// RestoreState reads state written by AppendState into e, validating
// the table length and counter ranges against e's configuration.
func (e *Estimator) RestoreState(r *statecodec.Reader) error {
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(e.table)) {
		return fmt.Errorf("%w: jrs table %d entries, want %d", statecodec.ErrCorrupt, n, len(e.table))
	}
	raw := r.Bytes(len(e.table))
	ghist := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	max := uint8(1<<e.bits) - 1
	for _, b := range raw {
		if b > max {
			return fmt.Errorf("%w: jrs counter value %d", statecodec.ErrCorrupt, b)
		}
	}
	copy(e.table, raw)
	e.ghist = ghist
	return nil
}
