package jrs

import (
	"testing"

	"repro/internal/gshare"
	"repro/internal/workload"
)

func TestColdIsLowConfidence(t *testing.T) {
	e := NewDefault(10, 8)
	if e.HighConfidence(0x100, true) {
		t.Fatal("cold estimator must be low confidence")
	}
}

func TestThresholdReached(t *testing.T) {
	e := NewDefault(10, 0) // no history bits: single slot per pc
	pc := uint64(0x100)
	for i := 0; i < 15; i++ {
		if e.HighConfidence(pc, true) {
			t.Fatalf("high confidence after only %d correct predictions", i)
		}
		e.Update(pc, true, true)
	}
	if !e.HighConfidence(pc, true) {
		t.Fatal("15 consecutive correct predictions must reach high confidence")
	}
}

func TestResetOnMisprediction(t *testing.T) {
	e := NewDefault(10, 0)
	pc := uint64(0x100)
	for i := 0; i < 20; i++ {
		e.Update(pc, true, true)
	}
	e.Update(pc, true, false) // mispredict
	if e.HighConfidence(pc, true) {
		t.Fatal("misprediction must reset the counter to low confidence")
	}
}

func TestCounterSaturates(t *testing.T) {
	e := New(8, 4, 15, 0)
	pc := uint64(0x40)
	for i := 0; i < 100; i++ {
		e.Update(pc, true, true)
	}
	if e.table[e.index(pc, true)] != 15 {
		t.Fatalf("counter = %d, want saturated 15", e.table[e.index(pc, true)])
	}
}

func TestHistoryIndexing(t *testing.T) {
	e := NewDefault(10, 8)
	pc := uint64(0x100)
	i1 := e.index(pc, true)
	e.Update(pc, true, true) // shifts history
	i2 := e.index(pc, true)
	if i1 == i2 {
		t.Fatal("index should change with history")
	}
}

func TestEnhancedSeparatesDirections(t *testing.T) {
	e := NewDefault(10, 0).Enhanced()
	pc := uint64(0x100)
	if e.index(pc, true) == e.index(pc, false) {
		t.Fatal("enhanced estimator must index taken/not-taken separately")
	}
	// Train the taken slot only; history must stay fixed for the check, so
	// use outcomes that keep ghist irrelevant (histBits 0).
	for i := 0; i < 20; i++ {
		e.Update(pc, true, true)
	}
	if !e.HighConfidence(pc, true) {
		t.Fatal("taken slot should be high confidence")
	}
	if e.HighConfidence(pc, false) {
		t.Fatal("not-taken slot must be independent")
	}
}

func TestPlainIgnoresDirection(t *testing.T) {
	e := NewDefault(10, 0)
	pc := uint64(0x100)
	if e.index(pc, true) != e.index(pc, false) {
		t.Fatal("plain JRS must ignore the predicted direction")
	}
}

func TestStorageBits(t *testing.T) {
	if got := NewDefault(12, 10).StorageBits(); got != 4096*4 {
		t.Fatalf("storage = %d, want 16384", got)
	}
	if NewDefault(12, 10).Threshold() != 15 {
		t.Fatal("default threshold wrong")
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 4, 15, 0) },
		func() { New(25, 4, 15, 0) },
		func() { New(10, 0, 15, 0) },
		func() { New(10, 9, 15, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad args should panic")
				}
			}()
			f()
		}()
	}
}

func TestSeparatesConfidenceOnRealWorkload(t *testing.T) {
	// Paired with a gshare predictor on a mixed workload, JRS
	// high-confidence predictions must mispredict far less often than
	// low-confidence ones.
	prog := workload.NewBuilder("mix", 31).SetLength(80000).
		Block(4, 5, 10,
			workload.S(workload.Pattern{Bits: []bool{true, true, false, true}}),
			workload.S(workload.Const{Taken: true}),
		).
		Block(2, 3, 6,
			workload.S(workload.Biased{P: 0.6}),
		).
		MustBuild()
	p := gshare.New(12, 10)
	e := NewDefault(12, 10)
	var hiMiss, hiTot, loMiss, loTot int
	r := prog.Open()
	n := 0
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		pred := p.Predict(b.PC)
		hi := e.HighConfidence(b.PC, pred)
		if n > 10000 {
			if hi {
				hiTot++
				if pred != b.Taken {
					hiMiss++
				}
			} else {
				loTot++
				if pred != b.Taken {
					loMiss++
				}
			}
		}
		e.Update(b.PC, pred, b.Taken)
		p.Update(b.PC, b.Taken)
		n++
	}
	if hiTot < 1000 || loTot < 100 {
		t.Fatalf("degenerate split hi=%d lo=%d", hiTot, loTot)
	}
	hiRate := float64(hiMiss) / float64(hiTot)
	loRate := float64(loMiss) / float64(loTot)
	if loRate < 4*hiRate {
		t.Fatalf("low-confidence rate %.4f should dwarf high-confidence rate %.4f", loRate, hiRate)
	}
}

func BenchmarkUpdate(b *testing.B) {
	e := NewDefault(14, 12)
	for i := 0; i < b.N; i++ {
		pc := uint64(i*17) & 0xFFFF
		pred := e.HighConfidence(pc, true)
		e.Update(pc, pred, i&3 != 0)
	}
}
