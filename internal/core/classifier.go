package core

import (
	"repro/internal/counter"
	"repro/internal/tage"
)

// DefaultBimWindow is the length, in bimodal-provided predictions, of the
// medium-conf-bim window after a bimodal-provided misprediction ("up to 8
// branches in the illustrated experiments", §5.1.2).
const DefaultBimWindow = 8

// Classifier grades TAGE predictions into the seven classes of §5 by pure
// observation of the predictor outputs. Its only state is the
// medium-conf-bim window counter — storage-free in the paper's sense (no
// tables, a handful of bits).
//
// Protocol per branch: call Classify with the Observation returned by the
// predictor's Predict, then call Resolve with the same observation and the
// branch outcome (before predicting the next branch).
type Classifier struct {
	ctrBits   uint //repro:derived construction parameter, fixed for the classifier's lifetime
	window    int
	remaining int
}

// NewClassifier returns a classifier for predictors with cfg's counter
// width, using the default medium-conf-bim window.
func NewClassifier(cfg tage.Config) *Classifier {
	return NewClassifierWindow(cfg, DefaultBimWindow)
}

// NewClassifierWindow returns a classifier with an explicit
// medium-conf-bim window length. A window of 0 disables the
// medium-conf-bim class entirely (strong-counter bimodal predictions all
// classify high-conf-bim) — the configuration of §5.1.1 before the
// discrimination was introduced.
func NewClassifierWindow(cfg tage.Config, window int) *Classifier {
	ctrBits := cfg.CtrBits
	if ctrBits == 0 {
		ctrBits = tage.DefaultCtrBits
	}
	if window < 0 {
		window = 0
	}
	return &Classifier{ctrBits: ctrBits, window: window}
}

// Window returns the configured medium-conf-bim window length.
func (c *Classifier) Window() int { return c.window }

// Classify grades one prediction. It reads only the observation and the
// window counter; it does not modify any state.
//repro:hotpath
func (c *Classifier) Classify(obs tage.Observation) Class {
	if obs.Tagged() {
		return taggedClass(obs.ProviderCtr, c.ctrBits)
	}
	if obs.BimCtr.Weak() {
		return LowConfBim
	}
	if c.remaining > 0 {
		return MediumConfBim
	}
	return HighConfBim
}

// taggedClass maps a provider counter value to its class by |2·ctr+1|:
// weak (1) → Wtag, nearly weak (3) → NWtag, saturated → Stag, anything in
// between → NStag. For the paper's 3-bit counters the in-between value is
// exactly 5; the rule extends to the §6 4-bit widening experiment.
//repro:hotpath
func taggedClass(ctr int8, bits uint) Class {
	switch s := counter.Strength(ctr); {
	case s == 1:
		return Wtag
	case s == 3:
		return NWtag
	case s == counter.Strength(counter.SignedMax(bits)):
		return Stag
	default:
		return NStag
	}
}

// Resolve advances the medium-conf-bim window state with the branch
// outcome. It must be called once per prediction, after Classify, with the
// same observation.
//repro:hotpath
func (c *Classifier) Resolve(obs tage.Observation, taken bool) {
	if obs.Tagged() {
		return
	}
	if obs.Pred != taken {
		c.remaining = c.window
	} else if c.remaining > 0 {
		c.remaining--
	}
}

// Reset clears the window state (for reusing a classifier across traces).
func (c *Classifier) Reset() { c.remaining = 0 }
