package core

import (
	"testing"

	"repro/internal/counter"
	"repro/internal/tage"
)

func bimObs(pc uint64, ctr counter.Bimodal) tage.Observation {
	return tage.Observation{
		PC:          pc,
		Pred:        ctr.Taken(),
		AltPred:     ctr.Taken(),
		Provider:    tage.ProviderBimodal,
		AltProvider: tage.ProviderBimodal,
		BimCtr:      ctr,
	}
}

func tagObs(pc uint64, ctr int8) tage.Observation {
	return tage.Observation{
		PC:          pc,
		Pred:        counter.TakenSigned(ctr),
		Provider:    1,
		ProviderCtr: ctr,
		AltProvider: tage.ProviderBimodal,
		BimCtr:      counter.BimodalWeakNotTaken,
	}
}

func TestTaggedClasses3Bit(t *testing.T) {
	cls := NewClassifier(tage.Small16K())
	want := map[int8]Class{
		0: Wtag, -1: Wtag,
		1: NWtag, -2: NWtag,
		2: NStag, -3: NStag,
		3: Stag, -4: Stag,
	}
	for ctr, wc := range want {
		if got := cls.Classify(tagObs(0x100, ctr)); got != wc {
			t.Errorf("ctr %d -> %v, want %v", ctr, got, wc)
		}
	}
}

func TestTaggedClasses4Bit(t *testing.T) {
	cfg := tage.Small16K()
	cfg.CtrBits = 4
	cls := NewClassifier(cfg)
	// 4-bit: weak = {0,-1} -> Wtag; {1,-2} -> NWtag; saturated {7,-8} ->
	// Stag; everything else NStag.
	cases := map[int8]Class{
		0: Wtag, -1: Wtag,
		1: NWtag, -2: NWtag,
		7: Stag, -8: Stag,
		2: NStag, 5: NStag, -5: NStag, 6: NStag, -7: NStag,
	}
	for ctr, wc := range cases {
		if got := cls.Classify(tagObs(0x100, ctr)); got != wc {
			t.Errorf("4-bit ctr %d -> %v, want %v", ctr, got, wc)
		}
	}
}

func TestBimodalWeakIsLowConf(t *testing.T) {
	cls := NewClassifier(tage.Small16K())
	for _, c := range []counter.Bimodal{counter.BimodalWeakNotTaken, counter.BimodalWeakTaken} {
		if got := cls.Classify(bimObs(0x10, c)); got != LowConfBim {
			t.Errorf("weak bimodal %d -> %v, want LowConfBim", c, got)
		}
	}
	for _, c := range []counter.Bimodal{counter.BimodalStrongNotTaken, counter.BimodalStrongTaken} {
		if got := cls.Classify(bimObs(0x10, c)); got != HighConfBim {
			t.Errorf("strong bimodal %d -> %v, want HighConfBim", c, got)
		}
	}
}

func TestMediumWindowOpensOnBimMiss(t *testing.T) {
	cls := NewClassifier(tage.Small16K())
	strong := bimObs(0x20, counter.BimodalStrongTaken)

	// A mispredicted BIM branch opens the window.
	cls.Resolve(strong, false) // predicted taken, was not-taken
	for i := 0; i < DefaultBimWindow; i++ {
		if got := cls.Classify(strong); got != MediumConfBim {
			t.Fatalf("BIM prediction %d after miss -> %v, want MediumConfBim", i, got)
		}
		cls.Resolve(strong, true) // correct; window shrinks
	}
	// Window exhausted: back to high confidence.
	if got := cls.Classify(strong); got != HighConfBim {
		t.Fatalf("after window -> %v, want HighConfBim", got)
	}
}

func TestWindowResetsOnNewMiss(t *testing.T) {
	cls := NewClassifier(tage.Small16K())
	strong := bimObs(0x20, counter.BimodalStrongTaken)
	cls.Resolve(strong, false)
	cls.Resolve(strong, true)
	cls.Resolve(strong, true)
	// Another miss resets to the full window.
	cls.Resolve(strong, false)
	for i := 0; i < DefaultBimWindow; i++ {
		if cls.Classify(strong) != MediumConfBim {
			t.Fatalf("window should be fully re-opened at step %d", i)
		}
		cls.Resolve(strong, true)
	}
	if cls.Classify(strong) != HighConfBim {
		t.Fatal("window should be exhausted")
	}
}

func TestWeakCounterDominatesWindow(t *testing.T) {
	// Inside the window, a weak bimodal counter still classifies
	// low-conf-bim (low dominates medium).
	cls := NewClassifier(tage.Small16K())
	strong := bimObs(0x20, counter.BimodalStrongTaken)
	weak := bimObs(0x24, counter.BimodalWeakTaken)
	cls.Resolve(strong, false) // open window
	if got := cls.Classify(weak); got != LowConfBim {
		t.Fatalf("weak counter in window -> %v, want LowConfBim", got)
	}
}

func TestTaggedPredictionsDoNotTouchWindow(t *testing.T) {
	cls := NewClassifier(tage.Small16K())
	strong := bimObs(0x20, counter.BimodalStrongTaken)
	cls.Resolve(strong, false) // open window
	// Tagged mispredictions and corrections must not affect the BIM window.
	for i := 0; i < 20; i++ {
		cls.Resolve(tagObs(0x40, 3), i%2 == 0)
	}
	if got := cls.Classify(strong); got != MediumConfBim {
		t.Fatalf("window must survive tagged resolutions, got %v", got)
	}
}

func TestZeroWindowDisablesMediumBim(t *testing.T) {
	cls := NewClassifierWindow(tage.Small16K(), 0)
	strong := bimObs(0x20, counter.BimodalStrongTaken)
	cls.Resolve(strong, false)
	if got := cls.Classify(strong); got != HighConfBim {
		t.Fatalf("window 0 should disable medium-conf-bim, got %v", got)
	}
	if cls.Window() != 0 {
		t.Fatalf("Window() = %d", cls.Window())
	}
}

func TestNegativeWindowClamped(t *testing.T) {
	cls := NewClassifierWindow(tage.Small16K(), -5)
	if cls.Window() != 0 {
		t.Fatalf("negative window should clamp to 0, got %d", cls.Window())
	}
}

func TestReset(t *testing.T) {
	cls := NewClassifier(tage.Small16K())
	strong := bimObs(0x20, counter.BimodalStrongTaken)
	cls.Resolve(strong, false)
	cls.Reset()
	if got := cls.Classify(strong); got != HighConfBim {
		t.Fatalf("Reset should close the window, got %v", got)
	}
}

func TestClassifyIsPure(t *testing.T) {
	cls := NewClassifier(tage.Small16K())
	strong := bimObs(0x20, counter.BimodalStrongTaken)
	cls.Resolve(strong, false)
	a := cls.Classify(strong)
	b := cls.Classify(strong)
	if a != b {
		t.Fatal("Classify must not mutate state")
	}
}
