package core

import (
	"testing"

	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

func drive(t *testing.T, est *Estimator, tr trace.Trace, limit uint64) (classCounts [NumClasses]struct{ preds, misps uint64 }) {
	t.Helper()
	r := trace.Limit(tr, limit).Open()
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		pred, class, level := est.Predict(b.PC)
		if class.Level() != level {
			t.Fatal("returned level disagrees with class mapping")
		}
		classCounts[class].preds++
		if pred != b.Taken {
			classCounts[class].misps++
		}
		est.Update(b.PC, b.Taken)
	}
	return
}

func TestEstimatorModes(t *testing.T) {
	for _, mode := range []AutomatonMode{ModeStandard, ModeProbabilistic, ModeAdaptive} {
		est := NewEstimator(tage.Small16K(), Options{Mode: mode})
		if est.Mode() != mode {
			t.Fatalf("mode = %v, want %v", est.Mode(), mode)
		}
		if mode == ModeStandard {
			if est.SaturationProbability() != 1 {
				t.Fatal("standard mode must report probability 1")
			}
			if est.Controller() != nil {
				t.Fatal("standard mode must have no controller")
			}
		} else {
			if est.SaturationProbability() != 1.0/128 {
				t.Fatalf("probability = %v, want 1/128", est.SaturationProbability())
			}
		}
		if mode == ModeAdaptive && est.Controller() == nil {
			t.Fatal("adaptive mode must have a controller")
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeStandard.String() != "standard" ||
		ModeProbabilistic.String() != "probabilistic" ||
		ModeAdaptive.String() != "adaptive" {
		t.Fatal("mode names wrong")
	}
	if AutomatonMode(9).String() != "invalid-mode" {
		t.Fatal("invalid mode should stringify as invalid")
	}
}

func TestEstimatorPanicsOnMismatchedUpdate(t *testing.T) {
	est := NewEstimator(tage.Small16K(), Options{})
	est.Predict(0x100)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Update must panic")
		}
	}()
	est.Update(0x999, true)
}

func TestAllSevenClassesAppear(t *testing.T) {
	est := NewEstimator(tage.Small16K(), Options{Mode: ModeProbabilistic})
	tr, err := workload.ByName("INT-3")
	if err != nil {
		t.Fatal(err)
	}
	counts := drive(t, est, tr, 120000)
	for _, c := range Classes() {
		if counts[c].preds == 0 {
			t.Errorf("class %v never observed", c)
		}
	}
}

func TestClassConfidenceOrderingStandard(t *testing.T) {
	// §5: with the standard automaton the class misprediction rates order
	// as Wtag ≥ NWtag ≥ NStag ≥ Stag, and low-conf-bim is far worse than
	// high-conf-bim.
	est := NewEstimator(tage.Small16K(), Options{Mode: ModeStandard})
	tr, err := workload.ByName("INT-3")
	if err != nil {
		t.Fatal(err)
	}
	counts := drive(t, est, tr, 200000)
	rate := func(c Class) float64 {
		if counts[c].preds == 0 {
			return 0
		}
		return float64(counts[c].misps) / float64(counts[c].preds)
	}
	if rate(Wtag) < rate(NStag) {
		t.Errorf("Wtag (%.3f) should be worse than NStag (%.3f)", rate(Wtag), rate(NStag))
	}
	if rate(NWtag) < rate(NStag) {
		t.Errorf("NWtag (%.3f) should be worse than NStag (%.3f)", rate(NWtag), rate(NStag))
	}
	if rate(NStag) < rate(Stag) {
		t.Errorf("NStag (%.3f) should be worse than Stag (%.3f)", rate(NStag), rate(Stag))
	}
	if rate(LowConfBim) < 4*rate(HighConfBim) {
		t.Errorf("low-conf-bim (%.3f) should dwarf high-conf-bim (%.3f)",
			rate(LowConfBim), rate(HighConfBim))
	}
	if rate(Wtag) < 0.15 {
		t.Errorf("Wtag rate %.3f suspiciously low (paper: 30%%+)", rate(Wtag))
	}
}

func TestModifiedAutomatonCleansStag(t *testing.T) {
	// §6: with probability 1/128, the Stag class misprediction rate falls
	// to the low single-digit MKP range, far below the standard automaton.
	tr, err := workload.ByName("INT-3")
	if err != nil {
		t.Fatal(err)
	}
	std := NewEstimator(tage.Small16K(), Options{Mode: ModeStandard})
	stdCounts := drive(t, std, tr, 200000)
	mod := NewEstimator(tage.Small16K(), Options{Mode: ModeProbabilistic})
	modCounts := drive(t, mod, tr, 200000)

	stdStag := 1000 * float64(stdCounts[Stag].misps) / float64(stdCounts[Stag].preds)
	modStag := 1000 * float64(modCounts[Stag].misps) / float64(modCounts[Stag].preds)
	if modStag > stdStag/2 {
		t.Errorf("modified Stag = %.1f MKP vs standard %.1f MKP: want a large drop", modStag, stdStag)
	}
	if modStag > 12 {
		t.Errorf("modified Stag = %.1f MKP, want low-MKP range on this trace", modStag)
	}
}

func TestAdaptiveControllerEngages(t *testing.T) {
	tr, err := workload.ByName("300.twolf") // hard trace: controller must react
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(tage.Small16K(), Options{
		Mode:           ModeAdaptive,
		AdaptiveWindow: 4096,
	})
	drive(t, est, tr, 200000)
	if est.Controller().Adjustments() == 0 {
		t.Error("adaptive controller never adjusted the probability on a hard trace")
	}
}

func TestOptionsDenomLog(t *testing.T) {
	est := NewEstimator(tage.Small16K(), Options{Mode: ModeProbabilistic, DenomLog: 4})
	if est.SaturationProbability() != 1.0/16 {
		t.Fatalf("probability = %v, want 1/16", est.SaturationProbability())
	}
}

func TestOptionsBimWindow(t *testing.T) {
	est := NewEstimator(tage.Small16K(), Options{BimWindow: 16})
	if est.Classifier().Window() != 16 {
		t.Fatalf("window = %d, want 16", est.Classifier().Window())
	}
	est = NewEstimator(tage.Small16K(), Options{BimWindow: -1})
	if est.Classifier().Window() != 0 {
		t.Fatalf("window = %d, want 0 (disabled)", est.Classifier().Window())
	}
	est = NewEstimator(tage.Small16K(), Options{})
	if est.Classifier().Window() != DefaultBimWindow {
		t.Fatalf("window = %d, want default %d", est.Classifier().Window(), DefaultBimWindow)
	}
}

func TestObservationAccess(t *testing.T) {
	est := NewEstimator(tage.Small16K(), Options{})
	pred, _, _ := est.Predict(0x4000)
	obs := est.Observation()
	if obs.PC != 0x4000 || obs.Pred != pred {
		t.Fatal("Observation does not reflect the last Predict")
	}
	est.Update(0x4000, true)
}
