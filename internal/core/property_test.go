package core

import (
	"testing"
	"testing/quick"

	"repro/internal/counter"
	"repro/internal/tage"
	"repro/internal/xrand"
)

// TestQuickLevelsPartitionClasses: every class maps to exactly one level
// and each level is non-empty.
func TestQuickLevelsPartitionClasses(t *testing.T) {
	counts := map[Level]int{}
	for _, c := range Classes() {
		counts[c.Level()]++
	}
	if counts[Low] != 3 || counts[Medium] != 2 || counts[High] != 2 {
		t.Fatalf("level partition %v, want 3/2/2", counts)
	}
}

// TestQuickWindowNeverNegative: under arbitrary interleavings of BIM and
// tagged resolutions the window counter stays within [0, window].
func TestQuickWindowNeverNegative(t *testing.T) {
	f := func(seed uint64, winRaw uint8) bool {
		window := int(winRaw % 20)
		cls := NewClassifierWindow(tage.Small16K(), window)
		r := xrand.New(seed)
		for i := 0; i < 500; i++ {
			var obs tage.Observation
			if r.Bool() {
				obs = bimObs(0x100, counter.Bimodal(r.Intn(4)))
			} else {
				obs = tagObs(0x200, int8(r.Intn(8)-4))
			}
			cls.Classify(obs)
			cls.Resolve(obs, r.Bool())
			if cls.remaining < 0 || cls.remaining > window {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickClassifyTotal: Classify returns a valid class for every
// reachable observation.
func TestQuickClassifyTotal(t *testing.T) {
	cls := NewClassifier(tage.Small16K())
	f := func(tagged bool, ctrRaw int8, bimRaw uint8, windowOpen bool) bool {
		var obs tage.Observation
		if tagged {
			ctr := ctrRaw % 4
			if ctrRaw < 0 {
				ctr = -((-ctrRaw) % 5)
			}
			obs = tagObs(0x40, ctr)
		} else {
			obs = bimObs(0x40, counter.Bimodal(bimRaw%4))
		}
		if windowOpen {
			cls.Resolve(bimObs(0x80, counter.BimodalStrongTaken), false)
		} else {
			cls.Reset()
		}
		c := cls.Classify(obs)
		if c >= NumClasses {
			return false
		}
		if tagged != c.Tagged() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveConvergesFromBothEnds: wherever the probability starts, the
// controller walks toward an operating point consistent with the target.
func TestAdaptiveConvergesFromBothEnds(t *testing.T) {
	for _, start := range []uint{0, counter.MaxDenomLog} {
		auto := counter.NewProbabilistic(9, start)
		a := NewAdaptive(auto, 10, 256)
		r := xrand.New(uint64(start) + 1)
		// Feed a stream whose high-class rate depends on the probability:
		// a simple synthetic plant where more saturation (lower denomLog)
		// means dirtier high class.
		for i := 0; i < 300_000; i++ {
			dirtiness := 0.002 + 0.004*float64(counter.MaxDenomLog-auto.DenomLog())
			a.Observe(High, r.WithProbability(dirtiness))
		}
		// Plant: denomLog d gives rate 2+4*(10-d) MKP; the target band
		// [6,10] MKP corresponds to d in {8,9} (6 MKP) or d=8 (10 MKP).
		if auto.DenomLog() < 7 {
			t.Errorf("start %d: controller settled at denomLog %d, expected the 8-9 region",
				start, auto.DenomLog())
		}
	}
}

// TestEstimatorLevelsConsistentWithCounts: a full run's level statistics
// derived via the estimator equal the classifier's own classification of
// the observations.
func TestEstimatorLevelsConsistentWithCounts(t *testing.T) {
	est := NewEstimator(tage.Small16K(), Options{Mode: ModeProbabilistic})
	r := xrand.New(77)
	for i := 0; i < 30000; i++ {
		pc := 0x400000 + uint64(r.Intn(256))*8
		_, class, level := est.Predict(pc)
		reClass := est.Classifier().Classify(est.Observation())
		if class != reClass {
			t.Fatalf("returned class %v != reclassified %v", class, reClass)
		}
		if level != class.Level() {
			t.Fatalf("level mismatch")
		}
		est.Update(pc, r.WithProbability(0.7))
	}
}
