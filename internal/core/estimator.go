package core

import (
	"fmt"

	"repro/internal/counter"
	"repro/internal/tage"
	"repro/internal/xrand"
)

// AutomatonMode selects the tagged-counter update automaton of the
// underlying predictor, which determines how much confidence the class
// observation carries (§5 vs §6).
type AutomatonMode uint8

const (
	// ModeStandard is the unmodified TAGE automaton (§5): seven observable
	// classes, but Stag is only average-confidence.
	ModeStandard AutomatonMode = iota
	// ModeProbabilistic installs the §6 automaton with a fixed saturation
	// probability (1/128 by default), making Stag high confidence.
	ModeProbabilistic
	// ModeAdaptive is ModeProbabilistic plus the run-time probability
	// controller of §6.2 holding the high-confidence misprediction rate
	// under a target.
	ModeAdaptive
)

// String names the mode.
//repro:deterministic
func (m AutomatonMode) String() string {
	switch m {
	case ModeStandard:
		return "standard"
	case ModeProbabilistic:
		return "probabilistic"
	case ModeAdaptive:
		return "adaptive"
	default:
		return "invalid-mode"
	}
}

// ParseMode resolves a mode name — the single definition of the
// name-to-mode table every CLI flag parser shares. "prob" and
// "modified" are accepted aliases for the §6 probabilistic automaton.
func ParseMode(name string) (AutomatonMode, error) {
	switch name {
	case "standard":
		return ModeStandard, nil
	case "probabilistic", "prob", "modified":
		return ModeProbabilistic, nil
	case "adaptive":
		return ModeAdaptive, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want standard, probabilistic or adaptive)", name)
	}
}

// Options configures an Estimator beyond its predictor configuration.
type Options struct {
	// Mode selects the automaton (default ModeStandard).
	Mode AutomatonMode
	// DenomLog is the log2 saturation-probability denominator for
	// ModeProbabilistic/ModeAdaptive (default counter.DefaultDenomLog = 7,
	// i.e. probability 1/128).
	DenomLog uint
	// BimWindow is the medium-conf-bim window (default DefaultBimWindow).
	// Negative disables the window (0 means default).
	BimWindow int
	// TargetMKP is the adaptive controller's target (default 10 MKP).
	TargetMKP float64
	// AdaptiveWindow is the controller's evaluation window (default 16 K
	// high-confidence predictions).
	AdaptiveWindow uint64
}

// Estimator bundles a TAGE predictor with the storage-free confidence
// classifier, and optionally the modified automaton and adaptive
// controller. It is the package's top-level convenience type; the pieces
// remain usable separately.
type Estimator struct {
	pred *tage.Predictor
	cls  *Classifier
	auto *counter.Probabilistic // nil in ModeStandard
	ctl  *Adaptive              // nil unless ModeAdaptive
	mode AutomatonMode //repro:derived fixed by opts at construction

	// cfg/opts are the construction inputs, kept so Reset can rebuild
	// the identical cold estimator.
	cfg  tage.Config //repro:derived construction input, immutable
	opts Options     //repro:derived construction input, immutable

	lastObs   tage.Observation //repro:derived per-prediction scratch; havePred is cleared on restore
	lastClass Class            //repro:derived per-prediction scratch; havePred is cleared on restore
	havePred  bool
}

// NewEstimator builds an estimator over a fresh predictor with the given
// configuration and options.
func NewEstimator(cfg tage.Config, opts Options) *Estimator {
	denomLog := opts.DenomLog
	if denomLog == 0 {
		denomLog = counter.DefaultDenomLog
	}
	var auto counter.Automaton = counter.Standard{}
	var prob *counter.Probabilistic
	if opts.Mode != ModeStandard {
		prob = counter.NewProbabilistic(xrand.Mix64(cfg.Seed^0xC0FF), denomLog)
		auto = prob
	}
	pred := tage.NewWithAutomaton(cfg, auto)

	window := opts.BimWindow
	switch {
	case window < 0:
		window = 0
	case window == 0:
		window = DefaultBimWindow
	}
	e := &Estimator{
		pred: pred,
		cls:  NewClassifierWindow(cfg, window),
		auto: prob,
		mode: opts.Mode,
		cfg:  cfg,
		opts: opts,
	}
	if opts.Mode == ModeAdaptive {
		e.ctl = NewAdaptive(prob, opts.TargetMKP, opts.AdaptiveWindow)
	}
	return e
}

// Predict returns the prediction for pc together with its confidence class
// and level. Each Predict must be followed by one Update for the same pc.
//repro:hotpath
func (e *Estimator) Predict(pc uint64) (pred bool, class Class, level Level) {
	e.lastObs = e.pred.Predict(pc)
	e.lastClass = e.cls.Classify(e.lastObs)
	e.havePred = true
	return e.lastObs.Pred, e.lastClass, e.lastClass.Level()
}

// Observation returns the raw component observation of the most recent
// Predict.
//repro:hotpath
func (e *Estimator) Observation() tage.Observation { return e.lastObs }

// Update resolves the most recent prediction, training the predictor,
// advancing the classifier window and feeding the adaptive controller.
//repro:hotpath
func (e *Estimator) Update(pc uint64, taken bool) {
	if !e.havePred || e.lastObs.PC != pc {
		panic(fmt.Sprintf("core: Update(%#x) without matching Predict", pc)) //repro:allow-alloc guard path: protocol violation aborts the run, allocation cost is irrelevant
	}
	e.havePred = false
	e.cls.Resolve(e.lastObs, taken)
	if e.ctl != nil {
		e.ctl.Observe(e.lastClass.Level(), e.lastObs.Pred != taken)
	}
	e.pred.Update(pc, taken)
}

// Reset restores the estimator to its initial cold state — predictor
// tables, classifier window, automaton randomness and adaptive
// controller all rebuilt exactly as a fresh NewEstimator with the same
// inputs. Together with Predict/Update/Label this makes *Estimator
// satisfy the backend-agnostic contract (predictor.Backend) directly,
// so the simulation drivers stay devirtualized on the TAGE hot path.
func (e *Estimator) Reset() { *e = *NewEstimator(e.cfg, e.opts) }

// Label returns the predictor configuration name — the value simulation
// results and serving metrics are keyed by for TAGE backends.
func (e *Estimator) Label() string { return e.cfg.Name }

// Predictor exposes the underlying TAGE predictor.
func (e *Estimator) Predictor() *tage.Predictor { return e.pred }

// Classifier exposes the class observer.
func (e *Estimator) Classifier() *Classifier { return e.cls }

// Mode returns the automaton mode.
func (e *Estimator) Mode() AutomatonMode { return e.mode }

// SaturationProbability returns the current saturation probability, or 1
// in ModeStandard (the standard automaton always saturates on a correct
// prediction from the nearly-saturated state).
func (e *Estimator) SaturationProbability() float64 {
	if e.auto == nil {
		return 1
	}
	return e.auto.Probability()
}

// Controller returns the adaptive controller, or nil outside ModeAdaptive.
func (e *Estimator) Controller() *Adaptive { return e.ctl }
