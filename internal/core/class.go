// Package core implements the paper's contribution: storage-free
// confidence estimation for the TAGE branch predictor (Seznec, HPCA 2011 /
// INRIA RR-7371).
//
// The estimator adds no storage to the predictor. It observes, for each
// prediction, which component provided it and the value of that component's
// prediction counter (tage.Observation), and classifies the prediction into
// seven classes with sharply different misprediction rates (§5):
//
//	bimodal provider:  low-conf-bim, medium-conf-bim, high-conf-bim
//	tagged provider:   Wtag, NWtag, NStag, Stag   (by |2·ctr+1|)
//
// The only state the classifier keeps is a single small counter tracking
// the distance from the last bimodal-provided misprediction (the
// medium-conf-bim window) — a few bits of bookkeeping, no tables.
//
// With the §6 modified counter automaton (counter.Probabilistic installed
// in the predictor), the seven classes aggregate into three confidence
// levels with the paper's headline behavior: high ≈ <1% misprediction,
// medium ≈ 8-12%, low ≈ >30%. The saturation probability can further be
// adapted at run time (Adaptive) to hold the high-confidence misprediction
// rate under a target while maximizing coverage (§6.2, Table 3).
package core

// Class is one of the paper's seven observable prediction classes.
type Class uint8

// The seven prediction classes of §5. Order groups the bimodal-provided
// classes first, then the tagged classes by increasing counter strength.
const (
	// LowConfBim: bimodal provider with a weak 2-bit counter. ~30%+
	// misprediction rate (§5.1.2).
	LowConfBim Class = iota
	// MediumConfBim: bimodal provider within the post-misprediction window
	// (default 8 BIM predictions). Warming/capacity bursts; ~6-15%.
	MediumConfBim
	// HighConfBim: every other bimodal-provided prediction; < 1%.
	HighConfBim
	// Wtag: tagged provider, |2·ctr+1| == 1. Typically > 30% mispredicted.
	Wtag
	// NWtag: tagged provider, |2·ctr+1| == 3. Near Wtag behavior.
	NWtag
	// NStag: tagged provider, nearly saturated counter. ~20%, dropping to
	// ~7% under the modified automaton (the medium class).
	NStag
	// Stag: tagged provider, saturated counter. Near the average rate with
	// the standard automaton; < 0.5% with the modified automaton.
	Stag
	// NumClasses is the number of prediction classes.
	NumClasses
)

var classNames = [NumClasses]string{
	"low-conf-bim",
	"medium-conf-bim",
	"high-conf-bim",
	"Wtag",
	"NWtag",
	"NStag",
	"Stag",
}

// String returns the paper's name for the class.
//repro:deterministic
func (c Class) String() string {
	if c >= NumClasses {
		return "invalid-class"
	}
	return classNames[c]
}

// Tagged reports whether the class is provided by a tagged component.
//repro:hotpath
func (c Class) Tagged() bool { return c >= Wtag }

// Level is one of the three aggregate confidence levels of §6.1.
type Level uint8

// The three confidence levels.
const (
	// Low confidence: misprediction rate higher than 30%.
	Low Level = iota
	// Medium confidence: misprediction rate in the 8-12% range.
	Medium
	// High confidence: misprediction rate lower than 1%.
	High
	// NumLevels is the number of confidence levels.
	NumLevels
)

var levelNames = [NumLevels]string{"low", "medium", "high"}

// String returns the level name.
//repro:deterministic
func (l Level) String() string {
	if l >= NumLevels {
		return "invalid-level"
	}
	return levelNames[l]
}

// Level maps the seven classes onto the three levels exactly as §6.1:
//
//	low    = low-conf-bim ∪ Wtag ∪ NWtag
//	medium = medium-conf-bim ∪ NStag
//	high   = high-conf-bim ∪ Stag
//
// The mapping is meaningful as a confidence estimate when the predictor
// runs the modified (probabilistic-saturation) automaton; with the standard
// automaton Stag retains a near-average misprediction rate (§5.3).
//repro:hotpath
//repro:deterministic
func (c Class) Level() Level {
	switch c {
	case LowConfBim, Wtag, NWtag:
		return Low
	case MediumConfBim, NStag:
		return Medium
	default:
		return High
	}
}

// Classes lists all seven classes in display order (bimodal classes by
// rising confidence, then tagged classes by rising counter strength).
//repro:deterministic
func Classes() []Class {
	return []Class{LowConfBim, MediumConfBim, HighConfBim, Wtag, NWtag, NStag, Stag}
}

// Levels lists the three levels in rising-confidence order.
//repro:deterministic
func Levels() []Level { return []Level{Low, Medium, High} }
