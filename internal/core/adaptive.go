package core

import "repro/internal/counter"

// Adaptive implements the run-time adaptation of the saturation
// probability (§6.2, Table 3): the probability varies between 1/1024 and 1
// by factors of 2; the controller monitors the misprediction rate of the
// high-confidence predictions over a window and maximizes high-confidence
// coverage subject to keeping that rate under a target (10 MKP in the
// paper).
//
// Control law per evaluation window of high-confidence predictions:
//
//   - measured rate above the target → halve the saturation probability
//     (saturated counters become rarer and purer);
//   - measured rate below the hysteresis fraction of the target → double
//     the probability (coverage grows at some purity cost);
//   - otherwise leave it unchanged.
//
// The paper does not specify the monitoring window; 16 K high-confidence
// predictions balances reaction time against estimation noise (at the
// 10 MKP target the window sees ~160 expected mispredictions).
type Adaptive struct {
	auto       *counter.Probabilistic
	targetMKP  float64
	window     uint64
	hysteresis float64

	hiPreds uint64
	hiMisps uint64

	adjustments uint64
}

// DefaultAdaptiveWindow is the evaluation window in high-confidence
// predictions.
const DefaultAdaptiveWindow = 16384

// DefaultTargetMKP is the paper's target: at most 10 mispredictions per
// kilo-prediction on the high-confidence class.
const DefaultTargetMKP = 10.0

// defaultHysteresis is the fraction of the target below which the
// controller doubles the probability to reclaim coverage.
const defaultHysteresis = 0.6

// NewAdaptive returns a controller driving auto. targetMKP and window of 0
// select the defaults.
func NewAdaptive(auto *counter.Probabilistic, targetMKP float64, window uint64) *Adaptive {
	if targetMKP <= 0 {
		targetMKP = DefaultTargetMKP
	}
	if window == 0 {
		window = DefaultAdaptiveWindow
	}
	return &Adaptive{
		auto:       auto,
		targetMKP:  targetMKP,
		window:     window,
		hysteresis: defaultHysteresis,
	}
}

// Observe feeds one resolved prediction to the controller.
//repro:hotpath
func (a *Adaptive) Observe(level Level, mispredicted bool) {
	if level != High {
		return
	}
	a.hiPreds++
	if mispredicted {
		a.hiMisps++
	}
	if a.hiPreds < a.window {
		return
	}
	rate := 1000 * float64(a.hiMisps) / float64(a.hiPreds)
	switch {
	case rate > a.targetMKP:
		// Too many high-confidence mispredictions: make saturation rarer.
		if a.auto.DenomLog() < counter.MaxDenomLog {
			a.auto.SetDenomLog(a.auto.DenomLog() + 1)
			a.adjustments++
		}
	case rate < a.targetMKP*a.hysteresis:
		// Comfortably clean: grow coverage.
		if a.auto.DenomLog() > 0 {
			a.auto.SetDenomLog(a.auto.DenomLog() - 1)
			a.adjustments++
		}
	}
	a.hiPreds, a.hiMisps = 0, 0
}

// Probability returns the current saturation probability.
func (a *Adaptive) Probability() float64 { return a.auto.Probability() }

// DenomLog returns the current log2 probability denominator.
func (a *Adaptive) DenomLog() uint { return a.auto.DenomLog() }

// Adjustments returns how many times the controller changed the
// probability (diagnostics).
func (a *Adaptive) Adjustments() uint64 { return a.adjustments }

// TargetMKP returns the configured target rate.
func (a *Adaptive) TargetMKP() float64 { return a.targetMKP }
