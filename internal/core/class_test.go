package core

import "testing"

func TestClassNames(t *testing.T) {
	want := map[Class]string{
		LowConfBim:    "low-conf-bim",
		MediumConfBim: "medium-conf-bim",
		HighConfBim:   "high-conf-bim",
		Wtag:          "Wtag",
		NWtag:         "NWtag",
		NStag:         "NStag",
		Stag:          "Stag",
	}
	for c, n := range want {
		if c.String() != n {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), n)
		}
	}
	if Class(99).String() != "invalid-class" {
		t.Error("out-of-range class should stringify as invalid")
	}
}

func TestLevelMappingMatchesPaper(t *testing.T) {
	// §6.1: low = {low-conf-bim, Wtag, NWtag}; medium = {medium-conf-bim,
	// NStag}; high = {high-conf-bim, Stag}.
	want := map[Class]Level{
		LowConfBim:    Low,
		Wtag:          Low,
		NWtag:         Low,
		MediumConfBim: Medium,
		NStag:         Medium,
		HighConfBim:   High,
		Stag:          High,
	}
	for c, l := range want {
		if c.Level() != l {
			t.Errorf("%v.Level() = %v, want %v", c, c.Level(), l)
		}
	}
}

func TestTaggedPredicate(t *testing.T) {
	for _, c := range []Class{Wtag, NWtag, NStag, Stag} {
		if !c.Tagged() {
			t.Errorf("%v should be tagged", c)
		}
	}
	for _, c := range []Class{LowConfBim, MediumConfBim, HighConfBim} {
		if c.Tagged() {
			t.Errorf("%v should not be tagged", c)
		}
	}
}

func TestEnumerationsComplete(t *testing.T) {
	if len(Classes()) != int(NumClasses) {
		t.Fatalf("Classes() has %d entries, want %d", len(Classes()), NumClasses)
	}
	seen := map[Class]bool{}
	for _, c := range Classes() {
		if seen[c] {
			t.Fatalf("duplicate class %v", c)
		}
		seen[c] = true
	}
	if len(Levels()) != int(NumLevels) {
		t.Fatalf("Levels() has %d entries, want %d", len(Levels()), NumLevels)
	}
}

func TestLevelNames(t *testing.T) {
	if Low.String() != "low" || Medium.String() != "medium" || High.String() != "high" {
		t.Fatal("level names wrong")
	}
	if Level(9).String() != "invalid-level" {
		t.Fatal("out-of-range level should stringify as invalid")
	}
}
