package core

import (
	"testing"

	"repro/internal/counter"
)

func TestAdaptiveLowersProbabilityWhenDirty(t *testing.T) {
	auto := counter.NewProbabilistic(1, 3) // 1/8
	a := NewAdaptive(auto, 10, 100)
	// 100 high-confidence predictions at 50 MKP (5 misses).
	for i := 0; i < 100; i++ {
		a.Observe(High, i < 5)
	}
	if auto.DenomLog() != 4 {
		t.Fatalf("denomLog = %d, want 4 (probability halved)", auto.DenomLog())
	}
	if a.Adjustments() != 1 {
		t.Fatalf("adjustments = %d", a.Adjustments())
	}
}

func TestAdaptiveRaisesProbabilityWhenClean(t *testing.T) {
	auto := counter.NewProbabilistic(1, 7) // 1/128
	a := NewAdaptive(auto, 10, 1000)
	// 1000 predictions, 1 miss = 1 MKP < 6 MKP hysteresis.
	for i := 0; i < 1000; i++ {
		a.Observe(High, i == 0)
	}
	if auto.DenomLog() != 6 {
		t.Fatalf("denomLog = %d, want 6 (probability doubled)", auto.DenomLog())
	}
}

func TestAdaptiveHoldsInBand(t *testing.T) {
	auto := counter.NewProbabilistic(1, 7)
	a := NewAdaptive(auto, 10, 1000)
	// 8 MKP: inside [6, 10] band -> no change.
	for i := 0; i < 1000; i++ {
		a.Observe(High, i < 8)
	}
	if auto.DenomLog() != 7 {
		t.Fatalf("denomLog = %d, want unchanged 7", auto.DenomLog())
	}
	if a.Adjustments() != 0 {
		t.Fatalf("adjustments = %d, want 0", a.Adjustments())
	}
}

func TestAdaptiveClampsAtBounds(t *testing.T) {
	auto := counter.NewProbabilistic(1, counter.MaxDenomLog)
	a := NewAdaptive(auto, 10, 100)
	for i := 0; i < 100; i++ {
		a.Observe(High, i < 50) // filthy
	}
	if auto.DenomLog() != counter.MaxDenomLog {
		t.Fatalf("denomLog = %d, want clamped at max", auto.DenomLog())
	}
	auto.SetDenomLog(0)
	b := NewAdaptive(auto, 10, 100)
	for i := 0; i < 100; i++ {
		b.Observe(High, false) // spotless
	}
	if auto.DenomLog() != 0 {
		t.Fatalf("denomLog = %d, want clamped at 0", auto.DenomLog())
	}
}

func TestAdaptiveIgnoresNonHigh(t *testing.T) {
	auto := counter.NewProbabilistic(1, 7)
	a := NewAdaptive(auto, 10, 10)
	for i := 0; i < 1000; i++ {
		a.Observe(Low, true)
		a.Observe(Medium, true)
	}
	if auto.DenomLog() != 7 || a.Adjustments() != 0 {
		t.Fatal("non-high observations must not drive the controller")
	}
}

func TestAdaptiveWindowResets(t *testing.T) {
	auto := counter.NewProbabilistic(1, 7)
	a := NewAdaptive(auto, 10, 100)
	// Two consecutive dirty windows -> two halvings.
	for i := 0; i < 200; i++ {
		a.Observe(High, i%10 == 0) // 100 MKP
	}
	if auto.DenomLog() != 9 {
		t.Fatalf("denomLog = %d, want 9 after two dirty windows", auto.DenomLog())
	}
}

func TestAdaptiveDefaults(t *testing.T) {
	auto := counter.NewProbabilistic(1, 7)
	a := NewAdaptive(auto, 0, 0)
	if a.TargetMKP() != DefaultTargetMKP {
		t.Fatalf("target = %v", a.TargetMKP())
	}
	if a.window != DefaultAdaptiveWindow {
		t.Fatalf("window = %d", a.window)
	}
	if a.Probability() != 1.0/128 {
		t.Fatalf("probability = %v", a.Probability())
	}
	if a.DenomLog() != 7 {
		t.Fatalf("DenomLog = %d", a.DenomLog())
	}
}
