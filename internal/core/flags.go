package core

import (
	"flag"
	"fmt"
	"strings"
)

// BackendFlags bundles the predictor-selection flags shared by every
// CLI (tagesim, confsim, tageserved, tageload): the legacy TAGE triple
// -config/-mode/-window plus -backend, which accepts any registered
// backend spec ("tage-64K?mode=adaptive", "gshare-64K", "perceptron",
// ...). It replaces the per-command copies of this parsing.
//
// Spec() resolves the flags into one backend spec string: -backend wins
// verbatim when set; otherwise a TAGE spec is synthesized from the
// legacy triple, so `-config 64K -mode adaptive` and
// `-backend tage-64K?mode=adaptive` select the identical predictor.
type BackendFlags struct {
	Config  *string
	Mode    *string
	Backend *string
	Window  *int
}

// AddBackendFlags registers the shared predictor-selection flags on fs
// with the command's default configuration and mode.
func AddBackendFlags(fs *flag.FlagSet, defConfig, defMode string) *BackendFlags {
	return &BackendFlags{
		Config: fs.String("config", defConfig,
			"TAGE predictor configuration: 16K, 64K or 256K (ignored when -backend is set)"),
		Mode: fs.String("mode", defMode,
			"TAGE automaton mode: standard, probabilistic or adaptive (ignored when -backend is set)"),
		Backend: fs.String("backend", "",
			"backend spec, e.g. tage-64K?mode=adaptive, gshare-64K, perceptron (overrides -config/-mode/-window)"),
		Window: fs.Int("window", 0,
			"TAGE medium-conf-bim window: 0 = default 8, -1 = disabled (ignored when -backend is set)"),
	}
}

// Explicit reports whether -backend was set.
func (f *BackendFlags) Explicit() bool { return *f.Backend != "" }

// Options parses the legacy -mode/-window pair into estimator Options
// (the path servers and legacy session opens still take).
func (f *BackendFlags) Options() (Options, error) {
	mode, err := ParseMode(*f.Mode)
	if err != nil {
		return Options{}, err
	}
	return Options{Mode: mode, BimWindow: *f.Window}, nil
}

// Spec resolves the flags into one backend spec string. With -backend
// set it is returned verbatim (the registry validates it); otherwise a
// canonical TAGE spec is synthesized from -config/-mode/-window.
func (f *BackendFlags) Spec() (string, error) {
	if *f.Backend != "" {
		return *f.Backend, nil
	}
	mode, err := ParseMode(*f.Mode)
	if err != nil {
		return "", err
	}
	var params []string
	if mode != ModeStandard {
		params = append(params, "mode="+mode.String())
	}
	if *f.Window != 0 {
		params = append(params, fmt.Sprintf("window=%d", *f.Window))
	}
	spec := "tage-" + *f.Config
	if len(params) > 0 {
		spec += "?" + strings.Join(params, "&")
	}
	return spec, nil
}
