// Snapshot codec for the full estimator: the TAGE predictor state, the
// classifier's medium-conf-bim window counter, and — when the mode
// installs them — the probabilistic automaton's denominator and RNG
// stream and the adaptive controller's window tallies. Which optional
// sections are present is determined by the construction options, which
// both sides share, so the encoding needs no presence flags.
package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/counter"
	"repro/internal/statecodec"
	"repro/internal/tage"
)

// AppendState appends the classifier's mutable state — the
// medium-conf-bim window countdown — to dst.
func (c *Classifier) AppendState(dst []byte) []byte {
	return binary.AppendUvarint(dst, uint64(c.remaining))
}

// RestoreState reads state written by AppendState into c, validating
// the countdown against the configured window length.
func (c *Classifier) RestoreState(r *statecodec.Reader) error {
	remaining := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if remaining > uint64(c.window) {
		return fmt.Errorf("%w: classifier window %d, max %d", statecodec.ErrCorrupt, remaining, c.window)
	}
	c.remaining = int(remaining)
	return nil
}

// Config returns the construction-time TAGE configuration (normalized by
// the predictor). Snapshot envelopes use it to record the spec a restore
// rebuilds the estimator from.
func (e *Estimator) Config() tage.Config { return e.pred.Config() }

// Options returns the construction-time options.
func (e *Estimator) Options() Options { return e.opts }

// AppendState appends the estimator's mutable state to dst.
func (e *Estimator) AppendState(dst []byte) []byte {
	dst = e.pred.AppendState(dst)
	dst = e.cls.AppendState(dst)
	if e.auto != nil {
		dst = binary.AppendUvarint(dst, uint64(e.auto.DenomLog()))
		dst = binary.LittleEndian.AppendUint64(dst, e.auto.Rand().State())
	}
	if e.ctl != nil {
		dst = binary.AppendUvarint(dst, e.ctl.hiPreds)
		dst = binary.AppendUvarint(dst, e.ctl.hiMisps)
		dst = binary.AppendUvarint(dst, e.ctl.adjustments)
	}
	return dst
}

// RestoreState reads state written by AppendState into e, which must
// have been built from the same configuration and options.
func (e *Estimator) RestoreState(r *statecodec.Reader) error {
	if err := e.pred.RestoreState(r); err != nil {
		return err
	}
	if err := e.cls.RestoreState(r); err != nil {
		return err
	}
	if e.auto != nil {
		denomLog := r.Uvarint()
		rngState := r.Uint64()
		if err := r.Err(); err != nil {
			return err
		}
		if denomLog > counter.MaxDenomLog {
			return fmt.Errorf("%w: denomLog %d out of range", statecodec.ErrCorrupt, denomLog)
		}
		e.auto.SetDenomLog(uint(denomLog))
		e.auto.Rand().SetState(rngState)
	}
	if e.ctl != nil {
		e.ctl.hiPreds = r.Uvarint()
		e.ctl.hiMisps = r.Uvarint()
		e.ctl.adjustments = r.Uvarint()
		if err := r.Err(); err != nil {
			return err
		}
	}
	e.havePred = false
	return nil
}
