package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/jrs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// BimWindowAblation sweeps the medium-conf-bim window length (the "up to 8
// branches" choice of §5.1.2), reporting how the bimodal classes split.
type BimWindowAblation struct {
	Rows []BimWindowRow
}

// BimWindowRow is one window length.
type BimWindowRow struct {
	Window        int
	MediumBim     LevelCell // medium-conf-bim class
	HighBimMPrate float64   // high-conf-bim purity
}

// RunBimWindowAblation runs the sweep on the 16 Kbit predictor over CBP-1
// with the modified automaton.
func (r *Runner) RunBimWindowAblation() (BimWindowAblation, error) {
	var out BimWindowAblation
	for _, win := range []int{-1, 4, 8, 16, 32} {
		opts := modifiedOpts()
		opts.BimWindow = win
		sr, err := r.Suite(tage.Small16K(), opts, "cbp1")
		if err != nil {
			return out, err
		}
		agg := sr.Aggregate
		shown := win
		if win < 0 {
			shown = 0
		}
		out.Rows = append(out.Rows, BimWindowRow{
			Window: shown,
			MediumBim: LevelCell{
				Pcov:   agg.Pcov(core.MediumConfBim),
				MPcov:  agg.MPcov(core.MediumConfBim),
				MPrate: agg.MPrate(core.MediumConfBim),
			},
			HighBimMPrate: agg.MPrate(core.HighConfBim),
		})
	}
	return out, nil
}

// Render writes the window ablation table.
func (a BimWindowAblation) Render(w io.Writer) {
	header := []string{"window", "medium-conf-bim Pcov", "MPcov", "MPrate", "high-conf-bim MPrate"}
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Window),
			fmt.Sprintf("%.3f", r.MediumBim.Pcov),
			fmt.Sprintf("%.3f", r.MediumBim.MPcov),
			fmt.Sprintf("%.1f", r.MediumBim.MPrate),
			fmt.Sprintf("%.1f", r.HighBimMPrate),
		})
	}
	textplot.Table(w, "Ablation: medium-conf-bim window length (16Kbits, CBP-1, modified automaton)", header, rows)
}

// UseAltAblation measures the accuracy contribution of USE_ALT_ON_NA
// (§3.1: the heuristic "(slightly) improves prediction accuracy").
type UseAltAblation struct {
	Rows []UseAltRow
}

// UseAltRow is one configuration.
type UseAltRow struct {
	Config      string
	WithMPKI    float64
	WithoutMPKI float64
	WtagWith    float64 // Wtag MPrate with the heuristic
	WtagWithout float64 // and without it
}

// RunUseAltAblation compares CBP-1 accuracy with and without the
// heuristic across the three sizes.
func (r *Runner) RunUseAltAblation() (UseAltAblation, error) {
	var out UseAltAblation
	for _, cfg := range tage.StandardConfigs() {
		with, err := r.Suite(cfg, standardOpts(), "cbp1")
		if err != nil {
			return out, err
		}
		cfgOff := cfg
		cfgOff.DisableUseAltOnNA = true
		without, err := r.Suite(cfgOff, standardOpts(), "cbp1")
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, UseAltRow{
			Config:      cfg.Name,
			WithMPKI:    with.Aggregate.MPKI(),
			WithoutMPKI: without.Aggregate.MPKI(),
			WtagWith:    with.Aggregate.MPrate(core.Wtag),
			WtagWithout: without.Aggregate.MPrate(core.Wtag),
		})
	}
	return out, nil
}

// Render writes the USE_ALT_ON_NA ablation table.
func (a UseAltAblation) Render(w io.Writer) {
	header := []string{"config", "misp/KI with", "misp/KI without", "Wtag MKP with", "Wtag MKP without"}
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Config,
			fmt.Sprintf("%.3f", r.WithMPKI),
			fmt.Sprintf("%.3f", r.WithoutMPKI),
			fmt.Sprintf("%.0f", r.WtagWith),
			fmt.Sprintf("%.0f", r.WtagWithout),
		})
	}
	textplot.Table(w, "Ablation: USE_ALT_ON_NA on/off (CBP-1, standard automaton)", header, rows)
}

// CtrWidthAblation reproduces the §6 remark on widening the prediction
// counter to 4 bits: it does not significantly clean the saturated class
// and slightly hurts overall accuracy, which is why the paper modifies the
// automaton instead.
type CtrWidthAblation struct {
	Rows []CtrWidthRow
}

// CtrWidthRow is one (config, counter width) pair.
type CtrWidthRow struct {
	Config     string
	CtrBits    uint
	MPKI       float64
	StagPcov   float64
	StagMPrate float64
}

// RunCtrWidthAblation compares 3-bit and 4-bit counters on the 16 and
// 64 Kbit predictors over CBP-1 (standard automaton, so the comparison
// isolates the widening itself).
func (r *Runner) RunCtrWidthAblation() (CtrWidthAblation, error) {
	var out CtrWidthAblation
	for _, base := range []tage.Config{tage.Small16K(), tage.Medium64K()} {
		for _, bits := range []uint{3, 4} {
			cfg := base
			cfg.CtrBits = bits
			sr, err := r.Suite(cfg, standardOpts(), "cbp1")
			if err != nil {
				return out, err
			}
			agg := sr.Aggregate
			out.Rows = append(out.Rows, CtrWidthRow{
				Config:     base.Name,
				CtrBits:    bits,
				MPKI:       agg.MPKI(),
				StagPcov:   agg.Pcov(core.Stag),
				StagMPrate: agg.MPrate(core.Stag),
			})
		}
	}
	return out, nil
}

// Render writes the counter-width ablation table.
func (a CtrWidthAblation) Render(w io.Writer) {
	header := []string{"config", "ctr bits", "misp/KI", "Stag Pcov", "Stag MPrate"}
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Config,
			fmt.Sprintf("%d", r.CtrBits),
			fmt.Sprintf("%.3f", r.MPKI),
			fmt.Sprintf("%.3f", r.StagPcov),
			fmt.Sprintf("%.1f", r.StagMPrate),
		})
	}
	textplot.Table(w, "Ablation: widening the prediction counter (§6 remark; CBP-1, standard automaton)", header, rows)
}

// tagePredictorAdapter exposes a raw TAGE predictor through the
// sim.Predictor interface so storage-based estimators can grade its
// predictions.
type tagePredictorAdapter struct {
	p *tage.Predictor
}

func (a tagePredictorAdapter) Predict(pc uint64) bool { return a.p.Predict(pc).Pred }

func (a tagePredictorAdapter) Update(pc uint64, taken bool) { a.p.Update(pc, taken) }

// EstimatorComparison pits the paper's storage-free estimator against the
// JRS storage-based baselines on the same 16 Kbit TAGE predictions,
// reporting Grunwald et al.'s binary metrics and the extra storage each
// estimator costs.
type EstimatorComparison struct {
	Rows []EstimatorRow
}

// EstimatorRow is one estimator.
type EstimatorRow struct {
	Name        string
	StorageBits int
	Confusion   metrics.Binary
}

// RunEstimatorComparison runs all estimators over CBP-1 on the 16 Kbit
// predictor with the modified automaton (storage-free) and the standard
// predictor for the JRS pairs (JRS does not need the automaton change).
func (r *Runner) RunEstimatorComparison() (EstimatorComparison, error) {
	var out EstimatorComparison
	traces, err := workload.Suite("cbp1")
	if err != nil {
		return out, err
	}

	// Per-trace runs fan out across the pool; confusions are merged in
	// trace order so the totals match the serial reference exactly.
	perTrace := make([]metrics.Binary, len(traces))
	if err := r.Pool.ForEach(len(traces), func(i int) error {
		est := core.NewEstimator(tage.Small16K(), modifiedOpts())
		res, err := sim.RunTAGEBinary(est, traces[i], r.Limit)
		if err != nil {
			return err
		}
		perTrace[i] = res.Confusion
		return nil
	}); err != nil {
		return out, err
	}
	var free metrics.Binary
	for _, c := range perTrace {
		free.Add(c)
	}
	out.Rows = append(out.Rows, EstimatorRow{Name: "storage-free (high level)", StorageBits: 0, Confusion: free})

	for _, enhanced := range []bool{false, true} {
		bits := jrs.NewDefault(10, 10).StorageBits() // 1K 4-bit counters = 4 Kbits extra
		if err := r.Pool.ForEach(len(traces), func(i int) error {
			p := tagePredictorAdapter{tage.New(tage.Small16K())}
			e := jrs.NewDefault(10, 10)
			if enhanced {
				e = e.Enhanced()
			}
			res, err := sim.RunBinary(p, e, traces[i], r.Limit)
			if err != nil {
				return err
			}
			perTrace[i] = res.Confusion
			return nil
		}); err != nil {
			return out, err
		}
		var conf metrics.Binary
		for _, c := range perTrace {
			conf.Add(c)
		}
		name := "JRS 4-bit"
		if enhanced {
			name = "JRS 4-bit enhanced"
		}
		out.Rows = append(out.Rows, EstimatorRow{Name: name, StorageBits: bits, Confusion: conf})
	}
	return out, nil
}

// Render writes the estimator comparison table.
func (c EstimatorComparison) Render(w io.Writer) {
	header := []string{"estimator", "extra storage", "SENS", "PVP", "SPEC", "PVN"}
	var rows [][]string
	for _, r := range c.Rows {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%d bits", r.StorageBits),
			fmt.Sprintf("%.3f", r.Confusion.Sens()),
			fmt.Sprintf("%.3f", r.Confusion.PVP()),
			fmt.Sprintf("%.3f", r.Confusion.Spec()),
			fmt.Sprintf("%.3f", r.Confusion.PVN()),
		})
	}
	textplot.Table(w, "Comparison: storage-free estimation vs JRS tables (16Kbits TAGE, CBP-1)", header, rows)
}
