package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/jrs"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BimWindowAblation sweeps the medium-conf-bim window length (the "up to 8
// branches" choice of §5.1.2), reporting how the bimodal classes split.
type BimWindowAblation struct {
	Rows []BimWindowRow
}

// BimWindowRow is one window length.
type BimWindowRow struct {
	Window        int
	MediumBim     LevelCell // medium-conf-bim class
	HighBimMPrate float64   // high-conf-bim purity
}

// RunBimWindowAblation runs the sweep on the 16 Kbit predictor over CBP-1
// with the modified automaton. Window arms fan out across the pool; rows
// merge in arm order.
func (r *Runner) RunBimWindowAblation() (BimWindowAblation, error) {
	windows := []int{-1, 4, 8, 16, 32}
	rows := make([]BimWindowRow, len(windows))
	err := r.Pool.ForEach(len(windows), func(i int) error {
		win := windows[i]
		opts := modifiedOpts()
		opts.BimWindow = win
		sr, err := r.Suite(tage.Small16K(), opts, "cbp1")
		if err != nil {
			return err
		}
		agg := sr.Aggregate
		shown := win
		if win < 0 {
			shown = 0
		}
		rows[i] = BimWindowRow{
			Window: shown,
			MediumBim: LevelCell{
				Pcov:   agg.Pcov(core.MediumConfBim),
				MPcov:  agg.MPcov(core.MediumConfBim),
				MPrate: agg.MPrate(core.MediumConfBim),
			},
			HighBimMPrate: agg.MPrate(core.HighConfBim),
		}
		return nil
	})
	if err != nil {
		return BimWindowAblation{}, err
	}
	return BimWindowAblation{Rows: rows}, nil
}

// Render writes the window ablation table.
//repro:deterministic
func (a BimWindowAblation) Render(w io.Writer) {
	header := []string{"window", "medium-conf-bim Pcov", "MPcov", "MPrate", "high-conf-bim MPrate"}
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Window),
			fmt.Sprintf("%.3f", r.MediumBim.Pcov),
			fmt.Sprintf("%.3f", r.MediumBim.MPcov),
			fmt.Sprintf("%.1f", r.MediumBim.MPrate),
			fmt.Sprintf("%.1f", r.HighBimMPrate),
		})
	}
	textplot.Table(w, "Ablation: medium-conf-bim window length (16Kbits, CBP-1, modified automaton)", header, rows)
}

// UseAltAblation measures the accuracy contribution of USE_ALT_ON_NA
// (§3.1: the heuristic "(slightly) improves prediction accuracy").
type UseAltAblation struct {
	Rows []UseAltRow
}

// UseAltRow is one configuration.
type UseAltRow struct {
	Config      string
	WithMPKI    float64
	WithoutMPKI float64
	WtagWith    float64 // Wtag MPrate with the heuristic
	WtagWithout float64 // and without it
}

// RunUseAltAblation compares CBP-1 accuracy with and without the
// heuristic across the three sizes. The flat (config × on/off) job list
// fans out across the pool; rows merge in config order.
func (r *Runner) RunUseAltAblation() (UseAltAblation, error) {
	cfgs := tage.StandardConfigs()
	aggs := make([]sim.Result, 2*len(cfgs)) // [2i] with, [2i+1] without
	err := r.Pool.ForEach(len(aggs), func(i int) error {
		cfg := cfgs[i/2]
		if i%2 == 1 {
			cfg.DisableUseAltOnNA = true
		}
		sr, err := r.Suite(cfg, standardOpts(), "cbp1")
		if err != nil {
			return err
		}
		aggs[i] = sr.Aggregate
		return nil
	})
	if err != nil {
		return UseAltAblation{}, err
	}
	var out UseAltAblation
	for i, cfg := range cfgs {
		with, without := aggs[2*i], aggs[2*i+1]
		out.Rows = append(out.Rows, UseAltRow{
			Config:      cfg.Name,
			WithMPKI:    with.MPKI(),
			WithoutMPKI: without.MPKI(),
			WtagWith:    with.MPrate(core.Wtag),
			WtagWithout: without.MPrate(core.Wtag),
		})
	}
	return out, nil
}

// Render writes the USE_ALT_ON_NA ablation table.
//repro:deterministic
func (a UseAltAblation) Render(w io.Writer) {
	header := []string{"config", "misp/KI with", "misp/KI without", "Wtag MKP with", "Wtag MKP without"}
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Config,
			fmt.Sprintf("%.3f", r.WithMPKI),
			fmt.Sprintf("%.3f", r.WithoutMPKI),
			fmt.Sprintf("%.0f", r.WtagWith),
			fmt.Sprintf("%.0f", r.WtagWithout),
		})
	}
	textplot.Table(w, "Ablation: USE_ALT_ON_NA on/off (CBP-1, standard automaton)", header, rows)
}

// CtrWidthAblation reproduces the §6 remark on widening the prediction
// counter to 4 bits: it does not significantly clean the saturated class
// and slightly hurts overall accuracy, which is why the paper modifies the
// automaton instead.
type CtrWidthAblation struct {
	Rows []CtrWidthRow
}

// CtrWidthRow is one (config, counter width) pair.
type CtrWidthRow struct {
	Config     string
	CtrBits    uint
	MPKI       float64
	StagPcov   float64
	StagMPrate float64
}

// RunCtrWidthAblation compares 3-bit and 4-bit counters on the 16 and
// 64 Kbit predictors over CBP-1 (standard automaton, so the comparison
// isolates the widening itself). The flat (config × width) grid fans out
// across the pool; rows merge in grid order.
func (r *Runner) RunCtrWidthAblation() (CtrWidthAblation, error) {
	bases := []tage.Config{tage.Small16K(), tage.Medium64K()}
	widths := []uint{3, 4}
	rows := make([]CtrWidthRow, len(bases)*len(widths))
	err := r.Pool.ForEach(len(rows), func(i int) error {
		base := bases[i/len(widths)]
		bits := widths[i%len(widths)]
		cfg := base
		cfg.CtrBits = bits
		sr, err := r.Suite(cfg, standardOpts(), "cbp1")
		if err != nil {
			return err
		}
		agg := sr.Aggregate
		rows[i] = CtrWidthRow{
			Config:     base.Name,
			CtrBits:    bits,
			MPKI:       agg.MPKI(),
			StagPcov:   agg.Pcov(core.Stag),
			StagMPrate: agg.MPrate(core.Stag),
		}
		return nil
	})
	if err != nil {
		return CtrWidthAblation{}, err
	}
	return CtrWidthAblation{Rows: rows}, nil
}

// Render writes the counter-width ablation table.
//repro:deterministic
func (a CtrWidthAblation) Render(w io.Writer) {
	header := []string{"config", "ctr bits", "misp/KI", "Stag Pcov", "Stag MPrate"}
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Config,
			fmt.Sprintf("%d", r.CtrBits),
			fmt.Sprintf("%.3f", r.MPKI),
			fmt.Sprintf("%.3f", r.StagPcov),
			fmt.Sprintf("%.1f", r.StagMPrate),
		})
	}
	textplot.Table(w, "Ablation: widening the prediction counter (§6 remark; CBP-1, standard automaton)", header, rows)
}

// tagePredictorAdapter exposes a raw TAGE predictor through the
// sim.Predictor interface so storage-based estimators can grade its
// predictions.
type tagePredictorAdapter struct {
	p *tage.Predictor
}

func (a tagePredictorAdapter) Predict(pc uint64) bool { return a.p.Predict(pc).Pred }

func (a tagePredictorAdapter) Update(pc uint64, taken bool) { a.p.Update(pc, taken) }

// EstimatorComparison pits the paper's storage-free estimator against the
// JRS storage-based baselines on the same 16 Kbit TAGE predictions,
// reporting Grunwald et al.'s binary metrics and the extra storage each
// estimator costs.
type EstimatorComparison struct {
	Rows []EstimatorRow
}

// EstimatorRow is one estimator.
type EstimatorRow struct {
	Name        string
	StorageBits int
	Confusion   metrics.Binary
}

// RunEstimatorComparison runs all estimators over CBP-1 on the 16 Kbit
// predictor with the modified automaton (storage-free) and the standard
// predictor for the JRS pairs (JRS does not need the automaton change).
// The full flat (estimator × trace) matrix fans out across the pool in
// one pass; confusions merge in estimator-major, trace-minor order so the
// totals match the serial reference exactly.
func (r *Runner) RunEstimatorComparison() (EstimatorComparison, error) {
	var out EstimatorComparison
	traces, err := workload.Suite("cbp1")
	if err != nil {
		return out, err
	}

	jrsBits := jrs.NewDefault(10, 10).StorageBits() // 1K 4-bit counters = 4 Kbits extra
	estimators := []struct {
		name string
		bits int
		run  func(tr trace.Trace) (metrics.Binary, error)
	}{
		{"storage-free (high level)", 0, func(tr trace.Trace) (metrics.Binary, error) {
			est := core.NewEstimator(tage.Small16K(), modifiedOpts())
			res, err := sim.RunTAGEBinary(est, tr, r.Limit)
			return res.Confusion, err
		}},
		{"JRS 4-bit", jrsBits, func(tr trace.Trace) (metrics.Binary, error) {
			p := tagePredictorAdapter{tage.New(tage.Small16K())}
			res, err := sim.RunBinary(p, jrs.NewDefault(10, 10), tr, r.Limit)
			return res.Confusion, err
		}},
		{"JRS 4-bit enhanced", jrsBits, func(tr trace.Trace) (metrics.Binary, error) {
			p := tagePredictorAdapter{tage.New(tage.Small16K())}
			res, err := sim.RunBinary(p, jrs.NewDefault(10, 10).Enhanced(), tr, r.Limit)
			return res.Confusion, err
		}},
	}

	cells := make([]metrics.Binary, len(estimators)*len(traces))
	if err := r.Pool.ForEach(len(cells), func(i int) error {
		conf, err := estimators[i/len(traces)].run(traces[i%len(traces)])
		if err != nil {
			return err
		}
		cells[i] = conf
		return nil
	}); err != nil {
		return out, err
	}
	for ei, e := range estimators {
		var conf metrics.Binary
		for ti := range traces {
			conf.Add(cells[ei*len(traces)+ti])
		}
		out.Rows = append(out.Rows, EstimatorRow{Name: e.name, StorageBits: e.bits, Confusion: conf})
	}
	return out, nil
}

// Render writes the estimator comparison table.
//repro:deterministic
func (c EstimatorComparison) Render(w io.Writer) {
	header := []string{"estimator", "extra storage", "SENS", "PVP", "SPEC", "PVN"}
	var rows [][]string
	for _, r := range c.Rows {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%d bits", r.StorageBits),
			fmt.Sprintf("%.3f", r.Confusion.Sens()),
			fmt.Sprintf("%.3f", r.Confusion.PVP()),
			fmt.Sprintf("%.3f", r.Confusion.Spec()),
			fmt.Sprintf("%.3f", r.Confusion.PVN()),
		})
	}
	textplot.Table(w, "Comparison: storage-free estimation vs JRS tables (16Kbits TAGE, CBP-1)", header, rows)
}
