package experiments

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/tage"
)

// TestRunnerKeyCoversAllResultAffectingFields is the regression test for
// the cache-collision bug: the old memoization key omitted
// Options.AdaptiveWindow entirely and truncated TargetMKP to one decimal,
// so option sets differing only in those fields silently shared one
// cached SuiteResult. Every pair below used to collide; each must now
// simulate independently (two cache misses, not one).
func TestRunnerKeyCoversAllResultAffectingFields(t *testing.T) {
	base := adaptiveOpts()
	cases := []struct {
		name string
		a, b core.Options
	}{
		{
			name: "AdaptiveWindow",
			a:    func() core.Options { o := base; o.AdaptiveWindow = 4096; return o }(),
			b:    func() core.Options { o := base; o.AdaptiveWindow = 16384; return o }(),
		},
		{
			name: "TargetMKP full precision",
			a:    func() core.Options { o := base; o.TargetMKP = 10.12; return o }(),
			b:    func() core.Options { o := base; o.TargetMKP = 10.14; return o }(),
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := NewWorkers(2000, 1)
			if _, err := r.Suite(tage.Small16K(), c.a, "cbp1"); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Suite(tage.Small16K(), c.b, "cbp1"); err != nil {
				t.Fatal(err)
			}
			if got := r.Simulations(); got != 2 {
				t.Fatalf("distinct option sets ran %d simulations, want 2 (cache collision)", got)
			}
			// And the genuinely identical request must still hit the cache.
			if _, err := r.Suite(tage.Small16K(), c.a, "cbp1"); err != nil {
				t.Fatal(err)
			}
			if got := r.Simulations(); got != 2 {
				t.Fatalf("repeat request re-simulated: %d simulations, want 2", got)
			}
		})
	}

	// Config-side coverage: ablations vary structural fields under (mostly)
	// unchanged names — every mutation below must occupy its own cache slot.
	r := NewWorkers(2000, 1)
	variants := []tage.Config{
		tage.Small16K(),
		func() tage.Config { c := tage.Small16K(); c.CtrBits = 4; return c }(),
		func() tage.Config { c := tage.Small16K(); c.DisableUseAltOnNA = true; return c }(),
		func() tage.Config { c := tage.Small16K(); c.UBits = 3; return c }(),
		func() tage.Config { c := tage.Small16K(); c.Seed = 0xDEAD; return c }(),
	}
	for _, cfg := range variants {
		if _, err := r.Suite(cfg, standardOpts(), "cbp1"); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Simulations(); got != uint64(len(variants)) {
		t.Fatalf("%d config variants ran %d simulations, want %d", len(variants), got, len(variants))
	}
}

// TestRunnerSingleflightSimulatesOnce drives many goroutines at one
// (config, options, suite) triple concurrently: exactly one simulation
// must execute, every caller must observe the identical result, and (with
// -race) the memo must be data-race free.
func TestRunnerSingleflightSimulatesOnce(t *testing.T) {
	r := NewWorkers(2000, 2)
	const callers = 8
	results := make([]float64, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			sr, err := r.Suite(tage.Small16K(), modifiedOpts(), "cbp1")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = sr.Aggregate.MPKI()
		}(i)
	}
	wg.Wait()
	if got := r.Simulations(); got != 1 {
		t.Fatalf("%d concurrent callers ran %d simulations, want exactly 1", callers, got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw MPKI %v, caller 0 saw %v", i, results[i], results[0])
		}
	}
}
