package experiments

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/tage"
)

// TestRunnerKeyCoversAllResultAffectingFields is the regression test for
// the cache-collision bug: the old memoization key omitted
// Options.AdaptiveWindow entirely and truncated TargetMKP to one decimal,
// so option sets differing only in those fields silently shared one
// cached SuiteResult. Every pair below used to collide; each must now
// simulate independently (two cache misses, not one).
func TestRunnerKeyCoversAllResultAffectingFields(t *testing.T) {
	base := adaptiveOpts()
	cases := []struct {
		name string
		a, b core.Options
	}{
		{
			name: "AdaptiveWindow",
			a:    func() core.Options { o := base; o.AdaptiveWindow = 4096; return o }(),
			b:    func() core.Options { o := base; o.AdaptiveWindow = 16384; return o }(),
		},
		{
			name: "TargetMKP full precision",
			a:    func() core.Options { o := base; o.TargetMKP = 10.12; return o }(),
			b:    func() core.Options { o := base; o.TargetMKP = 10.14; return o }(),
		},
	}
	// Simulations now counts trace-level misses: one cbp1 suite run is 20
	// distinct (config, options, trace) simulations.
	const suiteTraces = 20
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := NewWorkers(2000, 1)
			if _, err := r.Suite(tage.Small16K(), c.a, "cbp1"); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Suite(tage.Small16K(), c.b, "cbp1"); err != nil {
				t.Fatal(err)
			}
			if got := r.Simulations(); got != 2*suiteTraces {
				t.Fatalf("distinct option sets ran %d simulations, want %d (cache collision)", got, 2*suiteTraces)
			}
			// And the genuinely identical request must still hit the cache.
			if _, err := r.Suite(tage.Small16K(), c.a, "cbp1"); err != nil {
				t.Fatal(err)
			}
			if got := r.Simulations(); got != 2*suiteTraces {
				t.Fatalf("repeat request re-simulated: %d simulations, want %d", got, 2*suiteTraces)
			}
			if got := r.TraceHits(); got != suiteTraces {
				t.Fatalf("repeat request recorded %d trace hits, want %d", got, suiteTraces)
			}
		})
	}

	// Config-side coverage: ablations vary structural fields under (mostly)
	// unchanged names — every mutation below must occupy its own cache slot.
	r := NewWorkers(2000, 1)
	variants := []tage.Config{
		tage.Small16K(),
		func() tage.Config { c := tage.Small16K(); c.CtrBits = 4; return c }(),
		func() tage.Config { c := tage.Small16K(); c.DisableUseAltOnNA = true; return c }(),
		func() tage.Config { c := tage.Small16K(); c.UBits = 3; return c }(),
		func() tage.Config { c := tage.Small16K(); c.Seed = 0xDEAD; return c }(),
	}
	for _, cfg := range variants {
		if _, err := r.Suite(cfg, standardOpts(), "cbp1"); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := r.Simulations(), uint64(len(variants)*suiteTraces); got != want {
		t.Fatalf("%d config variants ran %d simulations, want %d", len(variants), got, want)
	}
}

// TestRunnerTraceGranularSharing pins the tentpole property of the
// per-trace memo: a Traces request overlapping an already simulated
// suite (or vice versa) is served entirely from cache, across different
// suite/subset shapes, with bit-identical results.
func TestRunnerTraceGranularSharing(t *testing.T) {
	r := NewWorkers(2000, 2)
	sub := []string{"164.gzip", "176.gcc", "181.mcf"}

	// Subset first: 3 simulations.
	first, err := r.Traces(tage.Medium64K(), standardOpts(), sub)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Simulations(); got != 3 {
		t.Fatalf("3-trace subset ran %d simulations, want 3", got)
	}

	// The full suite then only simulates the 17 traces not yet seen.
	sr, err := r.Suite(tage.Medium64K(), standardOpts(), "cbp2")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Simulations(); got != 20 {
		t.Fatalf("suite after subset ran %d total simulations, want 20", got)
	}
	if got := r.TraceHits(); got != 3 {
		t.Fatalf("suite after subset recorded %d trace hits, want 3", got)
	}

	// And the shared entries are the same results, bit for bit.
	byName := make(map[string]int)
	for i, res := range sr.PerTrace {
		byName[res.Trace] = i
	}
	for i, name := range sub {
		j, ok := byName[name]
		if !ok {
			t.Fatalf("suite result missing trace %s", name)
		}
		if first[i] != sr.PerTrace[j] {
			t.Fatalf("trace %s: subset and suite results differ", name)
		}
	}

	// A repeated subset request under the same key is all hits.
	if _, err := r.Traces(tage.Medium64K(), standardOpts(), sub); err != nil {
		t.Fatal(err)
	}
	if got := r.Simulations(); got != 20 {
		t.Fatalf("repeat subset re-simulated: %d simulations, want 20", got)
	}
	if got := r.TraceHits(); got != 6 {
		t.Fatalf("repeat subset recorded %d trace hits, want 6", got)
	}
}

// TestRunnerSingleflightSimulatesOnce drives many goroutines at one
// (config, options, suite) request concurrently: each of the suite's 20
// (config, options, trace) triples must simulate exactly once, every
// caller must observe the identical result, and (with -race) the memo
// must be data-race free.
func TestRunnerSingleflightSimulatesOnce(t *testing.T) {
	r := NewWorkers(2000, 2)
	const callers = 8
	results := make([]float64, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			sr, err := r.Suite(tage.Small16K(), modifiedOpts(), "cbp1")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = sr.Aggregate.MPKI()
		}(i)
	}
	wg.Wait()
	if got := r.Simulations(); got != 20 {
		t.Fatalf("%d concurrent callers ran %d trace simulations, want exactly 20 (one per suite trace)", callers, got)
	}
	if got := r.TraceHits(); got != uint64(callers-1)*20 {
		t.Fatalf("%d concurrent callers recorded %d trace hits, want %d", callers, got, (callers-1)*20)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw MPKI %v, caller 0 saw %v", i, results[i], results[0])
		}
	}
}
