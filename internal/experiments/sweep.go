package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/tage"
	"repro/internal/textplot"
)

// SweepRow is one operating point of the saturation-probability sweep
// (§6.2): the high-confidence class coverage/purity trade-off at a fixed
// saturation probability 2^-DenomLog on the 16 Kbit predictor, CBP-1.
type SweepRow struct {
	DenomLog    uint
	Probability float64
	High        LevelCell
	Medium      LevelCell
	Low         LevelCell
	MPKI        float64
}

// Sweep reproduces the §6.2 observations: lowering the probability shrinks
// and purifies the high-confidence class (the paper quotes 1/16 vs 1/128:
// high coverage 79% vs 69%, MPrate 10 vs 7 MKP, MPcov 22.3% vs 12.8%).
type Sweep struct {
	Rows []SweepRow
}

// SweepDenomLogs are the swept log2 probability denominators
// (probability 1 down to 1/1024).
var SweepDenomLogs = []uint{0, 2, 4, 6, 7, 9, 10}

// RunSweep runs the sweep on the 16 Kbit configuration over CBP-1. The
// operating points are independent arms, so they fan out across the pool
// (each arm's traces fan out in turn); rows land in sweep order, keeping
// the table bit-identical to a serial run.
func (r *Runner) RunSweep() (Sweep, error) {
	rows := make([]SweepRow, len(SweepDenomLogs))
	err := r.Pool.ForEach(len(SweepDenomLogs), func(i int) error {
		dl := SweepDenomLogs[i]
		opts := core.Options{Mode: core.ModeProbabilistic, DenomLog: dl}
		if dl == 0 {
			// Probability 1 is exactly the standard automaton (the
			// saturating transition always taken); core.Options uses
			// DenomLog 0 to mean "default", so express the point directly.
			opts = core.Options{Mode: core.ModeStandard}
		}
		sr, err := r.Suite(tage.Small16K(), opts, "cbp1")
		if err != nil {
			return err
		}
		agg := sr.Aggregate
		row := SweepRow{
			DenomLog:    dl,
			Probability: 1 / float64(uint64(1)<<dl),
			MPKI:        agg.MPKI(),
		}
		for _, l := range core.Levels() {
			lc := agg.Level(l)
			cell := LevelCell{
				Pcov:   metrics.Pcov(lc, agg.Total),
				MPcov:  metrics.MPcov(lc, agg.Total),
				MPrate: lc.MKP(),
			}
			switch l {
			case core.Low:
				row.Low = cell
			case core.Medium:
				row.Medium = cell
			default:
				row.High = cell
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return Sweep{}, err
	}
	return Sweep{Rows: rows}, nil
}

// Render writes the sweep as a table.
//repro:deterministic
func (s Sweep) Render(w io.Writer) {
	header := []string{"probability", "high Pcov", "high MPcov", "high MPrate", "medium Pcov", "medium MPrate", "low Pcov", "low MPrate", "misp/KI"}
	var rows [][]string
	for _, r := range s.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("1/%d", uint64(1)<<r.DenomLog),
			fmt.Sprintf("%.3f", r.High.Pcov),
			fmt.Sprintf("%.3f", r.High.MPcov),
			fmt.Sprintf("%.1f", r.High.MPrate),
			fmt.Sprintf("%.3f", r.Medium.Pcov),
			fmt.Sprintf("%.1f", r.Medium.MPrate),
			fmt.Sprintf("%.3f", r.Low.Pcov),
			fmt.Sprintf("%.1f", r.Low.MPrate),
			fmt.Sprintf("%.2f", r.MPKI),
		})
	}
	textplot.Table(w, "§6.2 sweep: saturation probability vs high-confidence coverage/purity (16Kbits, CBP-1)", header, rows)
}
