package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/textplot"
)

// classSegments lists the seven classes in the paper figures' legend order.
var classSegments = []core.Class{
	core.HighConfBim, core.LowConfBim, core.MediumConfBim,
	core.Stag, core.NStag, core.NWtag, core.Wtag,
}

//repro:deterministic
func classSegmentNames() []string {
	names := make([]string, len(classSegments))
	for i, c := range classSegments {
		names[i] = c.String()
	}
	return names
}

// DistPanel is one predictor-size panel of Figures 2, 3 and 5: the
// per-trace class distribution of predictions (left of the paper's
// figures) and of mispredictions as misp/KI (right).
type DistPanel struct {
	Config string
	Suite  string
	Traces []sim.Result
}

// DistributionFigure reproduces Figure 2 (CBP-1), Figure 3 (CBP-2) or
// Figure 5 (modified automaton panels).
type DistributionFigure struct {
	Title  string
	Panels []DistPanel
}

// RunFigure2 builds the CBP-1 distribution figure (standard automaton,
// three sizes).
func (r *Runner) RunFigure2() (DistributionFigure, error) {
	return r.distribution("Figure 2: class distributions, CBP-1 traces", standardOpts(),
		[]panelSpec{
			{tage.Small16K(), "cbp1"},
			{tage.Medium64K(), "cbp1"},
			{tage.Large256K(), "cbp1"},
		})
}

// RunFigure3 builds the CBP-2 distribution figure (standard automaton,
// three sizes).
func (r *Runner) RunFigure3() (DistributionFigure, error) {
	return r.distribution("Figure 3: class distributions, CBP-2 traces", standardOpts(),
		[]panelSpec{
			{tage.Small16K(), "cbp2"},
			{tage.Medium64K(), "cbp2"},
			{tage.Large256K(), "cbp2"},
		})
}

// RunFigure5 builds the modified-automaton distribution figure with the
// paper's three panels (16K CBP-1, 64K CBP-2, 256K CBP-1).
func (r *Runner) RunFigure5() (DistributionFigure, error) {
	return r.distribution("Figure 5: class distributions, modified 3-bit counter automaton", modifiedOpts(),
		[]panelSpec{
			{tage.Small16K(), "cbp1"},
			{tage.Medium64K(), "cbp2"},
			{tage.Large256K(), "cbp1"},
		})
}

type panelSpec struct {
	cfg   tage.Config
	suite string
}

// distribution computes one panel per spec; panels are independent arms,
// so they fan out across the pool and merge in spec order.
func (r *Runner) distribution(title string, opts core.Options, specs []panelSpec) (DistributionFigure, error) {
	panels := make([]DistPanel, len(specs))
	err := r.Pool.ForEach(len(specs), func(i int) error {
		s := specs[i]
		sr, err := r.Suite(s.cfg, opts, s.suite)
		if err != nil {
			return err
		}
		panels[i] = DistPanel{
			Config: s.cfg.Name,
			Suite:  s.suite,
			Traces: sr.PerTrace,
		}
		return nil
	})
	if err != nil {
		return DistributionFigure{Title: title}, err
	}
	return DistributionFigure{Title: title, Panels: panels}, nil
}

// Render draws each panel as a pair of stacked-bar charts mirroring the
// paper's left (prediction coverage) and right (misp/KI contribution)
// columns.
//repro:deterministic
func (f DistributionFigure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n\n", f.Title)
	segNames := classSegmentNames()
	for _, p := range f.Panels {
		var cov, mpki []textplot.StackRow
		for _, tr := range p.Traces {
			covParts := make([]float64, len(classSegments))
			mpkiParts := make([]float64, len(classSegments))
			for i, c := range classSegments {
				covParts[i] = tr.Pcov(c)
				mpkiParts[i] = tr.ClassMPKI(c)
			}
			cov = append(cov, textplot.StackRow{Label: tr.Trace, Parts: covParts})
			mpki = append(mpki, textplot.StackRow{Label: tr.Trace, Parts: mpkiParts})
		}
		textplot.StackedBars(w, fmt.Sprintf("%s predictor, %s: distribution of predictions", p.Config, p.Suite),
			segNames, cov, 60, true)
		fmt.Fprintln(w)
		textplot.StackedBars(w, fmt.Sprintf("%s predictor, %s: mispredictions (misp/KI)", p.Config, p.Suite),
			segNames, mpki, 60, false)
		fmt.Fprintln(w)
	}
}

// Figure4Traces are the CBP-2 traces shown in Figures 4 and 6.
var Figure4Traces = []string{
	"164.gzip", "175.vpr", "176.gcc", "181.mcf", "186.crafty", "197.parser",
}

// RatesFigure reproduces Figure 4 (standard automaton) or Figure 6
// (modified automaton): per-class misprediction rates in MKP on selected
// CBP-2 traces under the 64 Kbit predictor, plus the per-trace average.
type RatesFigure struct {
	Title    string
	Modified bool
	Traces   []sim.Result
}

// RunFigure4 computes the standard-automaton rates figure.
func (r *Runner) RunFigure4() (RatesFigure, error) {
	res, err := r.Traces(tage.Medium64K(), standardOpts(), Figure4Traces)
	if err != nil {
		return RatesFigure{}, err
	}
	return RatesFigure{
		Title:  "Figure 4: misprediction rates per prediction class (MKP), 64Kbits, CBP-2 traces",
		Traces: res,
	}, nil
}

// RunFigure6 computes the modified-automaton rates figure.
func (r *Runner) RunFigure6() (RatesFigure, error) {
	res, err := r.Traces(tage.Medium64K(), modifiedOpts(), Figure4Traces)
	if err != nil {
		return RatesFigure{}, err
	}
	return RatesFigure{
		Title:    "Figure 6: misprediction rates per prediction class (MKP), 64Kbits, modified automaton",
		Modified: true,
		Traces:   res,
	}, nil
}

// Render draws one group of class-rate bars per trace.
//repro:deterministic
func (f RatesFigure) Render(w io.Writer) {
	var groups []textplot.Group
	for _, tr := range f.Traces {
		g := textplot.Group{Label: tr.Trace}
		for _, c := range classSegments {
			g.Bars = append(g.Bars, textplot.Bar{Label: c.String(), Value: tr.MPrate(c)})
		}
		g.Bars = append(g.Bars, textplot.Bar{Label: "Average", Value: tr.Total.MKP()})
		groups = append(groups, g)
	}
	textplot.GroupedBars(w, f.Title, groups, 50)
}
