package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestLTAGEComparison(t *testing.T) {
	r := testRunner()
	c, err := r.RunLTAGE()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 4 {
		t.Fatalf("rows = %d", len(c.Rows))
	}
	for _, row := range c.Rows {
		// The loop predictor must never hurt meaningfully...
		if row.LtageMPKI > row.TageMPKI*1.03 {
			t.Errorf("%s %s: L-TAGE %.3f worse than TAGE %.3f",
				row.Config, row.Workload, row.LtageMPKI, row.TageMPKI)
		}
		if row.ExtraBits <= 0 || row.ExtraBits > 8192 {
			t.Errorf("extra bits %d implausible", row.ExtraBits)
		}
		// ...and must dominate on the long-loop microbenchmark, where the
		// trips exceed every TAGE history window.
		if row.Workload == "long-loops" {
			if row.LtageMPKI > row.TageMPKI*0.7 {
				t.Errorf("%s long-loops: L-TAGE %.3f should crush TAGE %.3f",
					row.Config, row.LtageMPKI, row.TageMPKI)
			}
			if row.LoopProvided < 0.3 {
				t.Errorf("%s long-loops: loop predictor provided only %.3f",
					row.Config, row.LoopProvided)
			}
		}
	}
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "L-TAGE") {
		t.Fatal("render incomplete")
	}
}

func TestInversionAnalysis(t *testing.T) {
	r := testRunner()
	inv, err := r.RunInversion()
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.Rows) != int(core.NumClasses) {
		t.Fatalf("rows = %d", len(inv.Rows))
	}
	for _, row := range inv.Rows {
		// The §2.1 finding: no class exceeds the 500 MKP break-even, so
		// inverting any whole class must increase mispredictions.
		if row.MPrate > 500 {
			t.Errorf("class %v exceeds 500 MKP (%.0f): unexpected for TAGE",
				row.Class, row.MPrate)
		}
		if row.DeltaMisses <= 0 {
			t.Errorf("inverting %v should hurt, delta %d", row.Class, row.DeltaMisses)
		}
		// Consistency: delta sign must match the 500 MKP rule.
		if (row.MPrate < 500) != (row.DeltaMisses > 0) {
			t.Errorf("class %v: delta inconsistent with rate %.0f", row.Class, row.MPrate)
		}
	}
	// The low-confidence bimodal class should be the closest call.
	var worst core.Class
	best := int64(1 << 62)
	for _, row := range inv.Rows {
		if row.DeltaMisses < best {
			best = row.DeltaMisses
			worst = row.Class
		}
	}
	if worst != core.LowConfBim && worst != core.Wtag {
		t.Errorf("nearest-to-break-even class = %v, expected a low-confidence class", worst)
	}
	var sb strings.Builder
	inv.Render(&sb)
	if !strings.Contains(sb.String(), "inverted") {
		t.Fatal("render incomplete")
	}
}
