package experiments

import (
	"bytes"
	"testing"
)

// TestEveryExperimentDeterministicUnderParallelism renders every
// registered experiment once through a serial runner and once through a
// multi-worker runner and requires byte-identical output: the parallel
// sharded engine must not change a single digit of any table or figure.
func TestEveryExperimentDeterministicUnderParallelism(t *testing.T) {
	const limit = 12000
	serial := NewWorkers(limit, 1)
	parallel := NewWorkers(limit, 4)
	for _, name := range Names() {
		if name == "all" {
			continue // covered by its parts; running it would only redo them
		}
		name := name
		t.Run(name, func(t *testing.T) {
			sr, err := serial.Run(name)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := parallel.Run(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(sr) != len(pr) {
				t.Fatalf("renderer counts differ: %d vs %d", len(sr), len(pr))
			}
			for i := range sr {
				var sb, pb bytes.Buffer
				sr[i].Render(&sb)
				pr[i].Render(&pb)
				if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
					t.Fatalf("experiment %s renders differently in parallel:\n--- serial ---\n%s\n--- parallel ---\n%s",
						name, sb.String(), pb.String())
				}
			}
		})
	}
}
