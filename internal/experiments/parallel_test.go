package experiments

import (
	"bytes"
	"testing"
)

// renderAll runs the composite "all" experiment on a fresh runner with
// the given worker count and returns the concatenated renders.
func renderAll(t *testing.T, limit uint64, workers int) (*Runner, []byte) {
	t.Helper()
	r := NewWorkers(limit, workers)
	out, err := r.Run("all")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, v := range out {
		v.Render(&buf)
		buf.WriteByte('\n')
	}
	return r, buf.Bytes()
}

// TestCompositeAllByteIdenticalAcrossWorkers runs the full `-experiment
// all` composite — the path where concurrent experiments hammer one
// shared Runner cache — serially and with 4 workers, and requires (a)
// byte-identical renders and (b) the same number of distinct per-trace
// simulations on both sides: the singleflight memo must collapse every
// shared (config, options, trace) triple to exactly one simulation even
// when the arms race for it. Run with -race to check the memo for data
// races.
func TestCompositeAllByteIdenticalAcrossWorkers(t *testing.T) {
	const limit = 4000
	serial, sb := renderAll(t, limit, 1)
	parallel, pb := renderAll(t, limit, 4)
	if !bytes.Equal(sb, pb) {
		t.Fatalf("composite all renders differently in parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", sb, pb)
	}
	if s, p := serial.Simulations(), parallel.Simulations(); s != p {
		t.Fatalf("serial ran %d trace simulations, parallel ran %d — concurrent arms duplicated or lost work", s, p)
	}
	if s, p := serial.TraceHits(), parallel.TraceHits(); s != p {
		t.Fatalf("serial recorded %d trace hits, parallel %d — concurrent arms duplicated or lost work", s, p)
	}
}

// TestCompositeAllTraceCacheSavings pins the exact simulation economy of
// `-experiment all` under the trace-granular memo. Before trace-granular
// sharing the composite executed 732 per-trace simulations: 36 distinct
// (config, options, suite) runs of 20 traces each, plus 12 Runner.Traces
// runs (figures 4 and 6) that bypassed the suite-level memo entirely.
// The per-trace memo serves every one of the 1032 per-trace requests
// from 720 distinct simulations — the figure 4/6 subsets are now cache
// hits against the table-1/table-2 suite runs — so a regression in
// either direction (a new collision or lost sharing) shows up as an
// exact-count mismatch here.
func TestCompositeAllTraceCacheSavings(t *testing.T) {
	const limit = 4000
	r, _ := renderAll(t, limit, 4)
	const (
		wantSims = 720 // 36 distinct (config, options) x 20-trace suites
		wantHits = 312 // incl. the 12 figure-4/6 runs previously re-simulated
	)
	if got := r.Simulations(); got != wantSims {
		t.Fatalf("composite all executed %d trace simulations, want exactly %d", got, wantSims)
	}
	if got := r.TraceHits(); got != wantHits {
		t.Fatalf("composite all recorded %d trace hits, want exactly %d", got, wantHits)
	}
}

// TestEveryExperimentDeterministicUnderParallelism renders every
// registered experiment once through a serial runner and once through a
// multi-worker runner and requires byte-identical output: the parallel
// sharded engine must not change a single digit of any table or figure.
func TestEveryExperimentDeterministicUnderParallelism(t *testing.T) {
	const limit = 12000
	serial := NewWorkers(limit, 1)
	parallel := NewWorkers(limit, 4)
	for _, name := range Names() {
		if name == "all" {
			continue // covered by its parts; running it would only redo them
		}
		name := name
		t.Run(name, func(t *testing.T) {
			sr, err := serial.Run(name)
			if err != nil {
				t.Fatal(err)
			}
			pr, err := parallel.Run(name)
			if err != nil {
				t.Fatal(err)
			}
			if len(sr) != len(pr) {
				t.Fatalf("renderer counts differ: %d vs %d", len(sr), len(pr))
			}
			for i := range sr {
				var sb, pb bytes.Buffer
				sr[i].Render(&sb)
				pr[i].Render(&pb)
				if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
					t.Fatalf("experiment %s renders differently in parallel:\n--- serial ---\n%s\n--- parallel ---\n%s",
						name, sb.String(), pb.String())
				}
			}
		})
	}
}
