package experiments

// character_test locks the per-trace flavor of the synthetic suites
// against regressions: the paper's qualitative remarks about individual
// traces must stay true when workload recipes are retuned.

import (
	"sort"
	"testing"

	"repro/internal/tage"
)

func cbp2Rates(t *testing.T) map[string]float64 {
	t.Helper()
	r := testRunner()
	sr, err := r.Suite(tage.Small16K(), standardOpts(), "cbp2")
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, res := range sr.PerTrace {
		rates[res.Trace] = res.Total.MKP()
	}
	return rates
}

// §6: "intrinsically unpredictable benchmark like twolf, gzip" — these
// must rank among the hardest CBP-2 traces.
func TestCharacterHardTraces(t *testing.T) {
	rates := cbp2Rates(t)
	type tr struct {
		name string
		mkp  float64
	}
	var all []tr
	for n, m := range rates {
		all = append(all, tr{n, m})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mkp > all[j].mkp })
	rank := map[string]int{}
	for i, x := range all {
		rank[x.name] = i
	}
	if rank["300.twolf"] > 4 {
		t.Errorf("twolf ranked %d hardest, want top-5 (rates %v)", rank["300.twolf"]+1, all[:6])
	}
	if rank["164.gzip"] > 6 {
		t.Errorf("gzip ranked %d hardest, want top-7", rank["164.gzip"]+1)
	}
}

// The predictable traces (eon, raytrace, mtrt, mpegaudio per the CBP-2
// folklore the recipes encode) must rank among the easiest.
func TestCharacterEasyTraces(t *testing.T) {
	rates := cbp2Rates(t)
	var sorted []float64
	for _, m := range rates {
		sorted = append(sorted, m)
	}
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	for _, n := range []string{"252.eon", "205.raytrace", "227.mtrt"} {
		if rates[n] > median {
			t.Errorf("%s at %.1f MKP should be below the suite median %.1f", n, rates[n], median)
		}
	}
}

// §4: "some benchmarks benefit a lot from the extra capacity of the large
// predictor" — the footprint-heavy traces must gain far more from 256 Kbit
// than the intrinsically unpredictable ones.
func TestCharacterCapacitySensitivity(t *testing.T) {
	r := testRunner()
	small, err := r.Suite(tage.Small16K(), standardOpts(), "cbp2")
	if err != nil {
		t.Fatal(err)
	}
	large, err := r.Suite(tage.Large256K(), standardOpts(), "cbp2")
	if err != nil {
		t.Fatal(err)
	}
	gain := func(name string) float64 {
		var s, l float64
		for _, res := range small.PerTrace {
			if res.Trace == name {
				s = res.Total.MKP()
			}
		}
		for _, res := range large.PerTrace {
			if res.Trace == name {
				l = res.Total.MKP()
			}
		}
		if s == 0 {
			t.Fatalf("trace %s missing", name)
		}
		return 1 - l/s
	}
	footprint := gain("176.gcc") // large static footprint
	noise := gain("300.twolf")   // intrinsically unpredictable
	if footprint < noise {
		t.Errorf("gcc capacity gain %.3f should exceed twolf %.3f", footprint, noise)
	}
	// Loose absolute floor: warmup at the test trace length mutes the
	// capacity effect (full-length gain is ~0.5, see EXPERIMENTS.md).
	if footprint < 0.08 {
		t.Errorf("gcc should gain substantially from 256Kbits, got %.3f", footprint)
	}
}

// The server family must show the paper's signature: high BIM coverage
// with a BIM misprediction rate comparable to the trace average on the
// small predictor (§5.1.1: "for some applications (e.g. the server
// traces) this misprediction rate is in the same range as the global
// misprediction rate").
func TestCharacterServerBimodalPressure(t *testing.T) {
	r := testRunner()
	sr, err := r.Suite(tage.Small16K(), standardOpts(), "cbp1")
	if err != nil {
		t.Fatal(err)
	}
	census, err := r.RunFamilyCensus()
	if err != nil {
		t.Fatal(err)
	}
	var serv, fp FamilyCensusRow
	for _, row := range census.Rows {
		switch row.Family {
		case "SERV":
			serv = row
		case "FP":
			fp = row
		}
	}
	if serv.BimPcov <= fp.BimPcov {
		t.Errorf("SERV BIM coverage %.3f should exceed FP %.3f", serv.BimPcov, fp.BimPcov)
	}
	if serv.MPKI <= fp.MPKI {
		t.Errorf("SERV misp/KI %.2f should exceed FP %.2f on 16Kbits", serv.MPKI, fp.MPKI)
	}
	_ = sr
}
