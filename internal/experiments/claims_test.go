package experiments

// claims_test verifies the paper's in-text quantitative claims (§3, §5,
// §6) against the reproduction — the statements that are not in any table
// or figure but define the system's expected behavior.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tage"
)

// §5.1: "In practice, on the TAGE predictor, when the provider component
// is the bimodal component, this means that there has not been recently
// any mispredicted branch using the same PC address and history" — the
// BIM class misprediction coverage is significantly lower than its
// prediction coverage (except servers on the small predictor).
func TestClaimBimClassCleanerThanAverage(t *testing.T) {
	r := testRunner()
	sr, err := r.Suite(tage.Medium64K(), standardOpts(), "cbp1")
	if err != nil {
		t.Fatal(err)
	}
	agg := sr.Aggregate
	bimPcov := agg.Pcov(core.LowConfBim) + agg.Pcov(core.MediumConfBim) + agg.Pcov(core.HighConfBim)
	bimMPcov := agg.MPcov(core.LowConfBim) + agg.MPcov(core.MediumConfBim) + agg.MPcov(core.HighConfBim)
	if bimMPcov >= bimPcov {
		t.Errorf("BIM class MPcov %.3f should be below its Pcov %.3f", bimMPcov, bimPcov)
	}
}

// §5.1.2: "in all cases where low-conf-bim constitutes a substantial
// amount of the overall predictions (more than 1%), its misprediction
// rate exceeds 250 MKP".
func TestClaimLowConfBimRate(t *testing.T) {
	r := testRunner()
	for _, suite := range []string{"cbp1", "cbp2"} {
		sr, err := r.Suite(tage.Small16K(), standardOpts(), suite)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range sr.PerTrace {
			if res.Pcov(core.LowConfBim) > 0.01 && res.MPrate(core.LowConfBim) < 250 {
				t.Errorf("%s: low-conf-bim Pcov %.3f but only %.0f MKP",
					res.Trace, res.Pcov(core.LowConfBim), res.MPrate(core.LowConfBim))
			}
		}
	}
}

// §5.1.1: on the large predictor the BIM class is clean for most traces
// (paper: 24 of 40 below 1 MKP). Our synthetic "strongly biased" branches
// carry 1.5-3% irreducible noise where real BIM-provided branches are
// near-deterministic, so the absolute <1 MKP claim does not transfer (see
// EXPERIMENTS.md); the scale-invariant form — the BIM class rate sits
// below the trace's overall rate for a clear majority of traces, and far
// below it for the regular (FP-style) traces — must hold.
func TestClaimLargePredictorBimClean(t *testing.T) {
	r := testRunner()
	cleaner, total := 0, 0
	veryClean := 0
	for _, suite := range []string{"cbp1", "cbp2"} {
		sr, err := r.Suite(tage.Large256K(), standardOpts(), suite)
		if err != nil {
			t.Fatal(err)
		}
		for _, res := range sr.PerTrace {
			total++
			var bim, bimMiss uint64
			for _, c := range []core.Class{core.LowConfBim, core.MediumConfBim, core.HighConfBim} {
				bim += res.Class[c].Preds
				bimMiss += res.Class[c].Misps
			}
			if bim == 0 {
				continue
			}
			rate := 1000 * float64(bimMiss) / float64(bim)
			if rate < res.Total.MKP() {
				cleaner++
			}
			if rate < res.Total.MKP()/2 {
				veryClean++
			}
		}
	}
	if cleaner*3 < total*2 {
		t.Errorf("BIM class cleaner than average on only %d of %d traces (256Kbits)", cleaner, total)
	}
	if veryClean < total/4 {
		t.Errorf("BIM class far below average on only %d of %d traces", veryClean, total)
	}
}

// §5.2: weak tagged counters occur only right after allocation or after
// providing a misprediction, so the Wtag class must be far above the
// average misprediction rate on every size.
func TestClaimWtagFarAboveAverage(t *testing.T) {
	r := testRunner()
	for _, cfg := range tage.StandardConfigs() {
		sr, err := r.Suite(cfg, standardOpts(), "cbp1")
		if err != nil {
			t.Fatal(err)
		}
		agg := sr.Aggregate
		if agg.MPrate(core.Wtag) < 3*agg.Total.MKP() {
			t.Errorf("%s: Wtag %.0f MKP not far above average %.0f",
				cfg.Name, agg.MPrate(core.Wtag), agg.Total.MKP())
		}
	}
}

// §6: "such a modification of the 3-bit counter automaton increases the
// misprediction rate but only very marginally".
func TestClaimAutomatonCostMarginal(t *testing.T) {
	r := testRunner()
	for _, suite := range []string{"cbp1", "cbp2"} {
		std, err := r.Suite(tage.Small16K(), standardOpts(), suite)
		if err != nil {
			t.Fatal(err)
		}
		mod, err := r.Suite(tage.Small16K(), modifiedOpts(), suite)
		if err != nil {
			t.Fatal(err)
		}
		cost := mod.Aggregate.MPKI() - std.Aggregate.MPKI()
		// Paper: < 0.02 misp/KI at 30M-instruction traces; allow more at
		// test lengths where warmup (when counters saturate slowly) weighs
		// proportionally more.
		if cost > 0.2 {
			t.Errorf("%s: automaton cost %.3f misp/KI too high", suite, cost)
		}
	}
}

// §6: with the modified automaton "when the provider component is a
// tagged component and the counter is saturated then the prediction can
// be considered as high confidence" — Stag must land in the single-digit
// MKP band on every size/suite aggregate.
func TestClaimModifiedStagHighConfidence(t *testing.T) {
	r := testRunner()
	for _, cfg := range tage.StandardConfigs() {
		for _, suite := range []string{"cbp1", "cbp2"} {
			sr, err := r.Suite(cfg, modifiedOpts(), suite)
			if err != nil {
				t.Fatal(err)
			}
			if got := sr.Aggregate.MPrate(core.Stag); got > 15 {
				t.Errorf("%s %s: modified Stag %.1f MKP, want single-digit band",
					cfg.Name, suite, got)
			}
		}
	}
}

// §6.1: "the medium confidence predictions and the low confidence
// predictions cover both approximately half of the mispredictions".
func TestClaimMediumAndLowSplitMispredictions(t *testing.T) {
	r := testRunner()
	tab, err := r.RunThreeClass(false)
	if err != nil {
		t.Fatal(err)
	}
	// Bands are generous: at the shortened test trace length, warmup
	// allocations inflate the low class on the large predictor (the
	// committed full-length run sits at 0.40-0.49 for both).
	for _, row := range tab.Rows {
		if row.Medium.MPcov < 0.25 || row.Medium.MPcov > 0.6 {
			t.Errorf("%s %s: medium MPcov %.3f outside the ~half band",
				row.Config, row.Suite, row.Medium.MPcov)
		}
		if row.Low.MPcov < 0.25 || row.Low.MPcov > 0.68 {
			t.Errorf("%s %s: low MPcov %.3f outside the ~half band",
				row.Config, row.Suite, row.Low.MPcov)
		}
	}
}

// §3.1/§5.2: the selective use of the alternate prediction improves the
// quality of the Wtag-class predictions "but only in a limited way" —
// Wtag stays low confidence even with USE_ALT_ON_NA active.
func TestClaimWtagStaysLowConfidenceWithUseAlt(t *testing.T) {
	r := testRunner()
	sr, err := r.Suite(tage.Small16K(), standardOpts(), "cbp1")
	if err != nil {
		t.Fatal(err)
	}
	if got := sr.Aggregate.MPrate(core.Wtag); got < 150 {
		t.Errorf("Wtag %.0f MKP with USE_ALT_ON_NA: should remain low confidence", got)
	}
}
