package experiments

import (
	"math"
	"strings"
	"testing"
)

// testLimit keeps the experiment tests fast while leaving enough branches
// for the class statistics to stabilize.
const testLimit = 60_000

// sharedRunner is reused across the package's tests so each
// (configuration, suite, options) simulation runs exactly once per `go
// test` invocation. Runs are deterministic, so sharing cannot couple test
// outcomes.
var sharedRunner = New(testLimit)

func testRunner() *Runner { return sharedRunner }

func TestTable1ShapeMatchesPaper(t *testing.T) {
	r := testRunner()
	tab, err := r.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Structural fields must match the paper exactly.
	wantTables := []int{4, 7, 8}
	wantBits := []int{16384, 65536, 262144}
	for i, row := range tab.Rows {
		if row.NumTables != wantTables[i] || row.TotalBits != wantBits[i] {
			t.Errorf("row %d structure: %+v", i, row)
		}
	}
	// Shape: misp/KI decreases with size on both suites, and the large
	// predictor's gain from 16K is substantial.
	for i := 1; i < 3; i++ {
		if tab.Rows[i].CBP1MPKI >= tab.Rows[i-1].CBP1MPKI {
			t.Errorf("CBP-1 misp/KI not decreasing: %+v", tab.Rows)
		}
		if tab.Rows[i].CBP2MPKI >= tab.Rows[i-1].CBP2MPKI*1.02 {
			t.Errorf("CBP-2 misp/KI should not grow with size: %+v", tab.Rows)
		}
	}
	// At the shortened test trace length warmup mispredictions compress the
	// size gap; the full-length gap (EXPERIMENTS.md) is much larger.
	if tab.Rows[2].CBP1MPKI > tab.Rows[0].CBP1MPKI*0.92 {
		t.Errorf("CBP-1 256K should clearly beat 16K: %+v", tab.Rows)
	}
	var sb strings.Builder
	tab.Render(&sb)
	if !strings.Contains(sb.String(), "Table 1") || !strings.Contains(sb.String(), "paper CBP-1") {
		t.Fatal("render incomplete")
	}
}

func TestFigure2Shape(t *testing.T) {
	r := testRunner()
	fig, err := r.RunFigure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Panels) != 3 {
		t.Fatalf("panels = %d", len(fig.Panels))
	}
	for _, p := range fig.Panels {
		if len(p.Traces) != 20 {
			t.Fatalf("panel %s has %d traces", p.Config, len(p.Traces))
		}
	}
	var sb strings.Builder
	fig.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Figure 2", "16Kbits", "256Kbits", "SERV-5", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure3UsesCBP2(t *testing.T) {
	r := testRunner()
	fig, err := r.RunFigure3()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fig.Render(&sb)
	if !strings.Contains(sb.String(), "300.twolf") {
		t.Fatal("figure 3 should render CBP-2 traces")
	}
}

func TestFigure4RatesOrdering(t *testing.T) {
	r := testRunner()
	fig, err := r.RunFigure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Traces) != len(Figure4Traces) {
		t.Fatalf("traces = %d", len(fig.Traces))
	}
	// On every shown trace, the weak tagged class must be far above the
	// average and the high-conf-bim class far below (the paper's central
	// observation).
	for _, tr := range fig.Traces {
		avg := tr.Total.MKP()
		if w := tr.MPrate(3); w < avg { // class Wtag has index 3
			t.Errorf("%s: Wtag %.0f MKP below average %.0f", tr.Trace, w, avg)
		}
	}
	var sb strings.Builder
	fig.Render(&sb)
	if !strings.Contains(sb.String(), "164.gzip") || !strings.Contains(sb.String(), "Average") {
		t.Fatal("render incomplete")
	}
}

func TestFigure5ModifiedAutomatonPanels(t *testing.T) {
	r := testRunner()
	fig, err := r.RunFigure5()
	if err != nil {
		t.Fatal(err)
	}
	// Paper panels: 16K CBP1, 64K CBP2, 256K CBP1.
	if fig.Panels[0].Config != "16Kbits" || fig.Panels[0].Suite != "cbp1" {
		t.Fatalf("panel 0 = %+v", fig.Panels[0])
	}
	if fig.Panels[1].Config != "64Kbits" || fig.Panels[1].Suite != "cbp2" {
		t.Fatalf("panel 1 = %+v", fig.Panels[1])
	}
	if fig.Panels[2].Config != "256Kbits" || fig.Panels[2].Suite != "cbp1" {
		t.Fatalf("panel 2 = %+v", fig.Panels[2])
	}
}

func TestFigure6StagClean(t *testing.T) {
	r := testRunner()
	fig, err := r.RunFigure6()
	if err != nil {
		t.Fatal(err)
	}
	// With the modified automaton, Stag (class 6) must be far cleaner than
	// NStag (class 5) on every shown trace.
	for _, tr := range fig.Traces {
		stag, nstag := tr.MPrate(6), tr.MPrate(5)
		if stag > nstag {
			t.Errorf("%s: Stag %.0f MKP should be below NStag %.0f", tr.Trace, stag, nstag)
		}
	}
}

func TestTable2ThreeClassProperties(t *testing.T) {
	r := testRunner()
	tab, err := r.RunThreeClass(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		// Coverage partitions.
		if s := row.High.Pcov + row.Medium.Pcov + row.Low.Pcov; math.Abs(s-1) > 1e-6 {
			t.Errorf("%s %s: Pcov sums to %v", row.Config, row.Suite, s)
		}
		// The paper's headline: rates separated by roughly an order of
		// magnitude between adjacent levels.
		if !(row.Low.MPrate > row.Medium.MPrate && row.Medium.MPrate > row.High.MPrate) {
			t.Errorf("%s %s: rates not ordered (%v / %v / %v)",
				row.Config, row.Suite, row.Low.MPrate, row.Medium.MPrate, row.High.MPrate)
		}
		if row.High.Pcov < 0.5 {
			t.Errorf("%s %s: high coverage %.3f too small", row.Config, row.Suite, row.High.Pcov)
		}
		if row.High.MPrate > 15 {
			t.Errorf("%s %s: high MPrate %.1f too dirty", row.Config, row.Suite, row.High.MPrate)
		}
		if row.Low.MPrate < 150 {
			t.Errorf("%s %s: low MPrate %.1f suspiciously clean", row.Config, row.Suite, row.Low.MPrate)
		}
	}
	var sb strings.Builder
	tab.Render(&sb)
	if !strings.Contains(sb.String(), "Table 2") {
		t.Fatal("render incomplete")
	}
}

func TestTable3AdaptiveHoldsTarget(t *testing.T) {
	r := testRunner()
	tab, err := r.RunThreeClass(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		// The controller's promise: high-confidence MPrate below ~the
		// 10 MKP target (allow slack for windowing noise at test sizes).
		if row.High.MPrate > 14 {
			t.Errorf("%s %s: adaptive high MPrate %.1f exceeds target region",
				row.Config, row.Suite, row.High.MPrate)
		}
	}
	var sb strings.Builder
	tab.Render(&sb)
	if !strings.Contains(sb.String(), "Table 3") {
		t.Fatal("render incomplete")
	}
}

func TestAdaptiveGrowsCoverageOverFixed(t *testing.T) {
	// Table 3 vs Table 2 in the paper: adaptation buys high-confidence
	// coverage. Compare aggregate high coverage.
	r := testRunner()
	fixed, err := r.RunThreeClass(false)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := r.RunThreeClass(true)
	if err != nil {
		t.Fatal(err)
	}
	var covF, covA float64
	for i := range fixed.Rows {
		covF += fixed.Rows[i].High.Pcov
		covA += adaptive.Rows[i].High.Pcov
	}
	if covA <= covF {
		t.Errorf("adaptive high coverage %.3f should exceed fixed %.3f", covA/6, covF/6)
	}
}

func TestSweepMonotonicity(t *testing.T) {
	r := testRunner()
	s, err := r.RunSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(SweepDenomLogs) {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// Lower probability (higher DenomLog) must shrink high coverage and
	// clean its rate — §6.2's trade-off (allow small non-monotonic noise).
	first, last := s.Rows[0], s.Rows[len(s.Rows)-1]
	if !(last.High.Pcov < first.High.Pcov) {
		t.Errorf("high coverage should shrink: %v -> %v", first.High.Pcov, last.High.Pcov)
	}
	if !(last.High.MPrate < first.High.MPrate) {
		t.Errorf("high MPrate should clean: %v -> %v", first.High.MPrate, last.High.MPrate)
	}
	// The accuracy cost of the automaton must stay small across the sweep
	// (§6: < 0.02 misp/KI in the paper; allow slack at test trace lengths).
	var minM, maxM = math.Inf(1), math.Inf(-1)
	for _, row := range s.Rows {
		minM = math.Min(minM, row.MPKI)
		maxM = math.Max(maxM, row.MPKI)
	}
	if maxM-minM > 0.25 {
		t.Errorf("sweep accuracy spread %.3f misp/KI too large", maxM-minM)
	}
	var sb strings.Builder
	s.Render(&sb)
	if !strings.Contains(sb.String(), "1/128") {
		t.Fatal("render incomplete")
	}
}

func TestBimWindowAblation(t *testing.T) {
	r := testRunner()
	a, err := r.RunBimWindowAblation()
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows[0].Window != 0 || a.Rows[0].MediumBim.Pcov != 0 {
		t.Errorf("window 0 should disable the class: %+v", a.Rows[0])
	}
	// Larger windows cover more predictions.
	for i := 2; i < len(a.Rows); i++ {
		if a.Rows[i].MediumBim.Pcov < a.Rows[i-1].MediumBim.Pcov {
			t.Errorf("medium-conf-bim coverage should grow with window: %+v", a.Rows)
		}
	}
	var sb strings.Builder
	a.Render(&sb)
	if !strings.Contains(sb.String(), "window") {
		t.Fatal("render incomplete")
	}
}

func TestUseAltAblation(t *testing.T) {
	r := testRunner()
	a, err := r.RunUseAltAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// The heuristic must not hurt accuracy meaningfully (paper: slight
	// improvement).
	for _, row := range a.Rows {
		if row.WithMPKI > row.WithoutMPKI*1.05 {
			t.Errorf("%s: USE_ALT_ON_NA hurts accuracy: %.3f vs %.3f",
				row.Config, row.WithMPKI, row.WithoutMPKI)
		}
	}
	var sb strings.Builder
	a.Render(&sb)
	if !strings.Contains(sb.String(), "USE_ALT_ON_NA") {
		t.Fatal("render incomplete")
	}
}

func TestCtrWidthAblation(t *testing.T) {
	r := testRunner()
	a, err := r.RunCtrWidthAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// §6 remark: 4-bit counters do not dramatically clean Stag.
	for i := 0; i < len(a.Rows); i += 2 {
		threeBit, fourBit := a.Rows[i], a.Rows[i+1]
		if fourBit.StagMPrate < threeBit.StagMPrate/3 {
			t.Errorf("%s: widening cleaned Stag too much (%.1f -> %.1f), unlike the paper's finding",
				threeBit.Config, threeBit.StagMPrate, fourBit.StagMPrate)
		}
	}
	var sb strings.Builder
	a.Render(&sb)
	if !strings.Contains(sb.String(), "ctr bits") {
		t.Fatal("render incomplete")
	}
}

func TestEstimatorComparison(t *testing.T) {
	r := testRunner()
	c, err := r.RunEstimatorComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 3 {
		t.Fatalf("rows = %d", len(c.Rows))
	}
	free := c.Rows[0]
	if free.StorageBits != 0 {
		t.Errorf("storage-free estimator reports %d bits", free.StorageBits)
	}
	if free.Confusion.PVP() < 0.97 {
		t.Errorf("storage-free PVP %.3f (paper: high class < 1%% misprediction)", free.Confusion.PVP())
	}
	for _, row := range c.Rows[1:] {
		if row.StorageBits == 0 {
			t.Errorf("%s should cost storage", row.Name)
		}
	}
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "JRS") {
		t.Fatal("render incomplete")
	}
}

func TestRegistryRunsAllNames(t *testing.T) {
	r := testRunner()
	for _, name := range Names() {
		if name == "all" {
			continue
		}
		out, err := r.Run(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) != 1 {
			t.Fatalf("%s returned %d renderers", name, len(out))
		}
		var sb strings.Builder
		out[0].Render(&sb)
		if sb.Len() == 0 {
			t.Fatalf("%s rendered nothing", name)
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := testRunner().Run("nope"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunnerCaches(t *testing.T) {
	r := testRunner()
	if _, err := r.RunTable1(); err != nil {
		t.Fatal(err)
	}
	n := len(r.cache)
	if n == 0 {
		t.Fatal("cache empty after Table 1")
	}
	// Figure 2 uses the same standard CBP-1 runs: only CBP-2 keys missing.
	if _, err := r.RunFigure2(); err != nil {
		t.Fatal(err)
	}
	if len(r.cache) != n {
		t.Fatalf("figure 2 should be fully cached after table 1: %d -> %d", n, len(r.cache))
	}
}
