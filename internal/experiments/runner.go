// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index):
//
//	Table 1   — the three predictor configurations and their misp/KI
//	Figure 2  — prediction/misprediction class distributions, CBP-1
//	Figure 3  — the same for CBP-2
//	Figure 4  — per-class misprediction rates, 7 CBP-2 traces, 64 Kbit
//	Figure 5  — distributions under the modified automaton
//	Figure 6  — per-class rates under the modified automaton
//	Table 2   — three-level coverage/rate summary, probability 1/128
//	Table 3   — the same with the adaptive probability controller
//	§6.2      — the saturation-probability sweep
//
// plus the ablation studies DESIGN.md calls out (USE_ALT_ON_NA, the
// medium-conf-bim window, counter width, storage-free vs JRS estimation).
//
// A Runner caches suite simulations so composite invocations (`-experiment
// all`, the benchmark harness) run each (configuration, suite, automaton)
// combination exactly once.
package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DefaultLimit is the per-trace record budget used when none is given.
// Experiments remain meaningful from ~100k records; the full SuiteLength
// (600k) is used for the committed EXPERIMENTS.md numbers.
const DefaultLimit = workload.SuiteLength

// Runner executes and caches suite simulations. Simulations fan out
// across Pool's workers; results (and therefore the memoized cache) are
// bit-identical to a serial run regardless of the worker count.
//
// A Runner is safe for concurrent use: the memo is a singleflight — when
// several experiment arms ask for the same (config, options, suite)
// triple concurrently, one of them simulates and the rest block on the
// result, so every distinct triple is simulated exactly once per Runner
// lifetime no matter how the arms are scheduled.
type Runner struct {
	// Limit is the per-trace record budget (0 = full trace).
	Limit uint64
	// Pool is the simulation worker pool (zero value = GOMAXPROCS
	// workers; Workers=1 forces the serial reference path).
	Pool sim.SuiteRunner

	mu    sync.Mutex
	cache map[string]*suiteEntry
	sims  atomic.Uint64 // distinct suite simulations actually executed
}

// suiteEntry is one memoized suite simulation; once gates the single
// execution, after which res/err are immutable.
type suiteEntry struct {
	once sync.Once
	res  sim.SuiteResult
	err  error
}

// New returns a Runner with the given per-trace record budget, running
// simulations across GOMAXPROCS workers.
func New(limit uint64) *Runner {
	return NewWorkers(limit, 0)
}

// NewWorkers returns a Runner with an explicit worker count (<= 0 =
// GOMAXPROCS, 1 = serial).
func NewWorkers(limit uint64, workers int) *Runner {
	return &Runner{
		Limit: limit,
		Pool:  sim.SuiteRunner{Workers: workers},
	}
}

// key covers every field of the configuration and options that can affect
// a simulation result. Formats must be lossless: TargetMKP uses %g (a
// truncating format once collapsed targets 10.12 and 10.14 into one cache
// slot) and the structural Config fields are all spelled out (ablations
// vary CtrBits and HistLengths under an unchanged Name).
func (r *Runner) key(cfg tage.Config, opts core.Options, suiteName string) string {
	return fmt.Sprintf("%s|bl%d|tl%d|tb%d|h%v|c%d|u%d|p%d|ur%d|s%#x|na%v|%s|m%d|dl%d|bw%d|tm%g|aw%d",
		cfg.Name, cfg.BimodalLog, cfg.TaggedLog, cfg.TagBits, cfg.HistLengths,
		cfg.CtrBits, cfg.UBits, cfg.PathBits, cfg.UResetPeriod, cfg.Seed,
		cfg.DisableUseAltOnNA,
		suiteName, opts.Mode, opts.DenomLog, opts.BimWindow,
		opts.TargetMKP, opts.AdaptiveWindow)
}

// Suite runs (or returns the cached) simulation of every trace in the
// named suite under the given configuration and estimator options.
// Concurrent callers sharing a key wait for one simulation.
func (r *Runner) Suite(cfg tage.Config, opts core.Options, suiteName string) (sim.SuiteResult, error) {
	k := r.key(cfg, opts, suiteName)
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[string]*suiteEntry)
	}
	e, ok := r.cache[k]
	if !ok {
		e = &suiteEntry{}
		r.cache[k] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		r.sims.Add(1)
		traces, err := workload.Suite(suiteName)
		if err != nil {
			e.err = err
			return
		}
		e.res, e.err = r.Pool.RunSuite(cfg, opts, traces, r.Limit)
	})
	return e.res, e.err
}

// Simulations returns the number of distinct suite simulations this
// Runner has executed (cache misses). Tests use it to prove that a shared
// (config, options, suite) triple simulates exactly once under concurrent
// experiment arms — and that distinct triples never collide.
func (r *Runner) Simulations() uint64 { return r.sims.Load() }

// Traces runs specific traces (used by the figure-4/6 experiments),
// fanning them out across the pool.
func (r *Runner) Traces(cfg tage.Config, opts core.Options, names []string) ([]sim.Result, error) {
	return r.Pool.RunTraces(cfg, opts, workload.ByName, names, r.Limit)
}

// standardOpts is the §5 estimator (unmodified automaton).
func standardOpts() core.Options {
	return core.Options{Mode: core.ModeStandard}
}

// modifiedOpts is the §6 estimator (probabilistic saturation, 1/128).
func modifiedOpts() core.Options {
	return core.Options{Mode: core.ModeProbabilistic}
}

// adaptiveOpts is the §6.2 adaptive estimator.
func adaptiveOpts() core.Options {
	return core.Options{Mode: core.ModeAdaptive}
}

// limitTrace applies the runner's budget to a raw trace (for experiments
// that run traces directly rather than through sim).
func (r *Runner) limitTrace(t trace.Trace) trace.Trace {
	return trace.Limit(t, r.Limit)
}
