// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index):
//
//	Table 1   — the three predictor configurations and their misp/KI
//	Figure 2  — prediction/misprediction class distributions, CBP-1
//	Figure 3  — the same for CBP-2
//	Figure 4  — per-class misprediction rates, 7 CBP-2 traces, 64 Kbit
//	Figure 5  — distributions under the modified automaton
//	Figure 6  — per-class rates under the modified automaton
//	Table 2   — three-level coverage/rate summary, probability 1/128
//	Table 3   — the same with the adaptive probability controller
//	§6.2      — the saturation-probability sweep
//
// plus the ablation studies DESIGN.md calls out (USE_ALT_ON_NA, the
// medium-conf-bim window, counter width, storage-free vs JRS estimation).
//
// A Runner caches suite simulations so composite invocations (`-experiment
// all`, the benchmark harness) run each (configuration, suite, automaton)
// combination exactly once.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DefaultLimit is the per-trace record budget used when none is given.
// Experiments remain meaningful from ~100k records; the full SuiteLength
// (600k) is used for the committed EXPERIMENTS.md numbers.
const DefaultLimit = workload.SuiteLength

// Runner executes and caches suite simulations. Simulations fan out
// across Pool's workers; results (and therefore the memoized cache) are
// bit-identical to a serial run regardless of the worker count.
type Runner struct {
	// Limit is the per-trace record budget (0 = full trace).
	Limit uint64
	// Pool is the simulation worker pool (zero value = GOMAXPROCS
	// workers; Workers=1 forces the serial reference path).
	Pool sim.SuiteRunner
	cache map[string]sim.SuiteResult
}

// New returns a Runner with the given per-trace record budget, running
// simulations across GOMAXPROCS workers.
func New(limit uint64) *Runner {
	return NewWorkers(limit, 0)
}

// NewWorkers returns a Runner with an explicit worker count (<= 0 =
// GOMAXPROCS, 1 = serial).
func NewWorkers(limit uint64, workers int) *Runner {
	return &Runner{
		Limit: limit,
		Pool:  sim.SuiteRunner{Workers: workers},
		cache: make(map[string]sim.SuiteResult),
	}
}

func (r *Runner) key(cfg tage.Config, opts core.Options, suiteName string) string {
	return fmt.Sprintf("%s|%s|%v|%d|%d|%.1f|%d|%v",
		cfg.Name, suiteName, opts.Mode, opts.DenomLog, opts.BimWindow,
		opts.TargetMKP, cfg.CtrBits, cfg.DisableUseAltOnNA)
}

// Suite runs (or returns the cached) simulation of every trace in the
// named suite under the given configuration and estimator options.
func (r *Runner) Suite(cfg tage.Config, opts core.Options, suiteName string) (sim.SuiteResult, error) {
	k := r.key(cfg, opts, suiteName)
	if res, ok := r.cache[k]; ok {
		return res, nil
	}
	traces, err := workload.Suite(suiteName)
	if err != nil {
		return sim.SuiteResult{}, err
	}
	res, err := r.Pool.RunSuite(cfg, opts, traces, r.Limit)
	if err != nil {
		return sim.SuiteResult{}, err
	}
	r.cache[k] = res
	return res, nil
}

// Traces runs specific traces (used by the figure-4/6 experiments),
// fanning them out across the pool.
func (r *Runner) Traces(cfg tage.Config, opts core.Options, names []string) ([]sim.Result, error) {
	return r.Pool.RunTraces(cfg, opts, workload.ByName, names, r.Limit)
}

// standardOpts is the §5 estimator (unmodified automaton).
func standardOpts() core.Options {
	return core.Options{Mode: core.ModeStandard}
}

// modifiedOpts is the §6 estimator (probabilistic saturation, 1/128).
func modifiedOpts() core.Options {
	return core.Options{Mode: core.ModeProbabilistic}
}

// adaptiveOpts is the §6.2 adaptive estimator.
func adaptiveOpts() core.Options {
	return core.Options{Mode: core.ModeAdaptive}
}

// limitTrace applies the runner's budget to a raw trace (for experiments
// that run traces directly rather than through sim).
func (r *Runner) limitTrace(t trace.Trace) trace.Trace {
	return trace.Limit(t, r.Limit)
}
