// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index):
//
//	Table 1   — the three predictor configurations and their misp/KI
//	Figure 2  — prediction/misprediction class distributions, CBP-1
//	Figure 3  — the same for CBP-2
//	Figure 4  — per-class misprediction rates, 7 CBP-2 traces, 64 Kbit
//	Figure 5  — distributions under the modified automaton
//	Figure 6  — per-class rates under the modified automaton
//	Table 2   — three-level coverage/rate summary, probability 1/128
//	Table 3   — the same with the adaptive probability controller
//	§6.2      — the saturation-probability sweep
//
// plus the ablation studies DESIGN.md calls out (USE_ALT_ON_NA, the
// medium-conf-bim window, counter width, storage-free vs JRS estimation).
//
// A Runner caches simulations at (configuration, options, trace)
// granularity, so composite invocations (`-experiment all`, the
// benchmark harness) run each shared trace simulation exactly once —
// including across suites and trace subsets that overlap.
package experiments

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DefaultLimit is the per-trace record budget used when none is given.
// Experiments remain meaningful from ~100k records; the full SuiteLength
// (600k) is used for the committed EXPERIMENTS.md numbers.
const DefaultLimit = workload.SuiteLength

// Runner executes and caches simulations at (config, options, trace)
// granularity. Simulations fan out across Pool's workers; results (and
// therefore the memoized cache) are bit-identical to a serial run
// regardless of the worker count.
//
// A Runner is safe for concurrent use: the memo is a per-trace
// singleflight — when several experiment arms ask for the same (config,
// options, trace) triple concurrently, one of them simulates and the
// rest block on the result, so every distinct triple is simulated
// exactly once per Runner lifetime no matter how the arms are scheduled.
// Because the unit of sharing is the trace rather than the whole suite,
// suites that overlap (a full-suite table row and a figure's trace
// subset, say) share the overlapping runs too: Suite and Traces assemble
// their results from the same per-trace entries.
type Runner struct {
	// Limit is the per-trace record budget (0 = full trace).
	Limit uint64
	// Pool is the simulation worker pool (zero value = GOMAXPROCS
	// workers; Workers=1 forces the serial reference path).
	Pool sim.SuiteRunner

	mu    sync.Mutex
	cache map[string]*traceEntry
	sims  atomic.Uint64 // distinct per-trace simulations actually executed
	hits  atomic.Uint64 // per-trace requests served from the memo
}

// traceEntry is one memoized (config, options, trace) simulation; once
// gates the single execution, after which res/err are immutable. done
// lets lookups distinguish a completed entry (a cache hit that need not
// be submitted to the pool) from one still in flight.
type traceEntry struct {
	once sync.Once
	done atomic.Bool
	res  sim.Result
	err  error
}

// New returns a Runner with the given per-trace record budget, running
// simulations across GOMAXPROCS workers.
func New(limit uint64) *Runner {
	return NewWorkers(limit, 0)
}

// NewWorkers returns a Runner with an explicit worker count (<= 0 =
// GOMAXPROCS, 1 = serial).
func NewWorkers(limit uint64, workers int) *Runner {
	return &Runner{
		Limit: limit,
		Pool:  sim.SuiteRunner{Workers: workers},
	}
}

// keyPrefix is the canonical backend spec for (cfg, opts) plus a
// separator; a trace's cache key is this prefix plus the trace name
// (appended once per trace, so a suite lookup formats the config exactly
// once). predictor.TAGESpec encodes every result-affecting Config and
// Options field losslessly and injectively — distinct pairs always
// produce distinct specs — so the key is collision-proof by
// construction, replacing the hand-maintained field list that once
// omitted AdaptiveWindow and truncated TargetMKP.
func (r *Runner) keyPrefix(cfg tage.Config, opts core.Options) string {
	return predictor.TAGESpec(cfg, opts).String() + "|"
}

// results returns the per-trace results for (cfg, opts) over traces, in
// trace order, simulating only the traces the memo has not seen. The
// cache misses are submitted to the pool as a sparse index set
// (sim.SuiteRunner.ForEachAt); completed entries are served without
// touching the pool at all. An entry another arm is concurrently
// simulating is joined via its sync.Once — the worker blocks until the
// owner finishes, exactly one execution ever happens, and both arms see
// the identical result.
func (r *Runner) results(cfg tage.Config, opts core.Options, traces []trace.Trace) ([]sim.Result, error) {
	entries := make([]*traceEntry, len(traces))
	miss := make([]int, 0, len(traces))
	prefix := r.keyPrefix(cfg, opts)
	r.mu.Lock()
	if r.cache == nil {
		r.cache = make(map[string]*traceEntry)
	}
	for i, tr := range traces {
		k := prefix + tr.Name()
		e, ok := r.cache[k]
		if !ok {
			e = &traceEntry{}
			r.cache[k] = e
		}
		entries[i] = e
		if e.done.Load() {
			r.hits.Add(1)
		} else {
			miss = append(miss, i)
		}
	}
	r.mu.Unlock()
	err := r.Pool.ForEachAt(miss, func(i int) error {
		e := entries[i]
		ran := false
		e.once.Do(func() {
			ran = true
			r.sims.Add(1)
			e.res, e.err = sim.RunConfig(cfg, opts, traces[i], r.Limit)
			e.done.Store(true)
		})
		if !ran {
			// The entry was simulated (or is being simulated) by a
			// concurrent arm; once.Do returning means it is complete.
			r.hits.Add(1)
		}
		return e.err
	})
	// Return the error a serial loop over the traces would hit first —
	// which may live in an entry that was already cached (and therefore
	// never submitted), so scan in trace order rather than trusting the
	// pool's lowest-miss-index error. After an early stop some entries
	// may still be mid-simulation in a concurrent arm, so e.err is only
	// read behind the done acquire (on the success path below every
	// entry is complete: hits were done at lookup, and misses completed
	// under our own once.Do).
	for _, e := range entries {
		if e.done.Load() && e.err != nil {
			return nil, e.err
		}
	}
	if err != nil {
		return nil, err
	}
	out := make([]sim.Result, len(entries))
	for i, e := range entries {
		out[i] = e.res
	}
	return out, nil
}

// Suite runs the named suite under the given configuration and estimator
// options, assembling the SuiteResult from individually memoized
// per-trace results (in deterministic trace order, so the assembly is
// bit-identical to a fresh whole-suite simulation). Only traces the memo
// has not seen are simulated.
func (r *Runner) Suite(cfg tage.Config, opts core.Options, suiteName string) (sim.SuiteResult, error) {
	traces, err := workload.Suite(suiteName)
	if err != nil {
		return sim.SuiteResult{}, err
	}
	per, err := r.results(cfg, opts, traces)
	if err != nil {
		return sim.SuiteResult{}, err
	}
	return sim.AssembleSuite(cfg.Name, opts.Mode, per), nil
}

// Simulations returns the number of distinct per-trace simulations this
// Runner has executed (trace-level cache misses). Tests use it to prove
// that a shared (config, options, trace) triple simulates exactly once
// under concurrent experiment arms — and that distinct triples never
// collide.
func (r *Runner) Simulations() uint64 { return r.sims.Load() }

// TraceHits returns the number of per-trace requests served from the
// memo without a simulation — the work trace-granular sharing saves
// across overlapping suites, repeated arms and composite invocations.
func (r *Runner) TraceHits() uint64 { return r.hits.Load() }

// Traces runs specific traces (used by the figure-4/6 experiments)
// through the same per-trace memo as Suite: a trace already simulated as
// part of a full-suite run under the same (config, options) is a cache
// hit here, and vice versa.
func (r *Runner) Traces(cfg tage.Config, opts core.Options, names []string) ([]sim.Result, error) {
	traces := make([]trace.Trace, len(names))
	for i, name := range names {
		tr, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		traces[i] = tr
	}
	return r.results(cfg, opts, traces)
}

// standardOpts is the §5 estimator (unmodified automaton).
func standardOpts() core.Options {
	return core.Options{Mode: core.ModeStandard}
}

// modifiedOpts is the §6 estimator (probabilistic saturation, 1/128).
func modifiedOpts() core.Options {
	return core.Options{Mode: core.ModeProbabilistic}
}

// adaptiveOpts is the §6.2 adaptive estimator.
func adaptiveOpts() core.Options {
	return core.Options{Mode: core.ModeAdaptive}
}

// limitTrace applies the runner's budget to a raw trace (for experiments
// that run traces directly rather than through sim).
func (r *Runner) limitTrace(t trace.Trace) trace.Trace {
	return trace.Limit(t, r.Limit)
}
