package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/tage"
	"repro/internal/textplot"
)

// Inversion analyzes Jacobsen et al.'s branch-inversion idea through the
// paper's classes (§2.1): inverting a prediction only pays if some
// identifiable class mispredicts more than 50% of the time (> 500 MKP).
// The experiment computes, per class, the accuracy delta inversion would
// yield — reproducing the implicit finding that even the paper's
// low-confidence classes sit near but below the 500 MKP break-even, so
// selective inversion (Manne et al.) needs finer targeting than whole
// classes.
type Inversion struct {
	Rows []InversionRow
}

// InversionRow is one class's inversion economics on the 16 Kbit
// predictor over CBP-1 (modified automaton).
type InversionRow struct {
	Class  core.Class
	MPrate float64
	// DeltaMisses is the change in total mispredictions if every
	// prediction of the class were inverted (negative = improvement).
	DeltaMisses int64
	// DeltaMPKI is the same as a misp/KI change.
	DeltaMPKI float64
}

// RunInversion computes the per-class inversion deltas from the cached
// suite run.
func (r *Runner) RunInversion() (Inversion, error) {
	var out Inversion
	sr, err := r.Suite(tage.Small16K(), modifiedOpts(), "cbp1")
	if err != nil {
		return out, err
	}
	agg := sr.Aggregate
	for _, c := range core.Classes() {
		cc := agg.Class[c]
		// Inverting flips correct predictions to misses and vice versa.
		delta := int64(cc.Preds-cc.Misps) - int64(cc.Misps)
		out.Rows = append(out.Rows, InversionRow{
			Class:       c,
			MPrate:      cc.MKP(),
			DeltaMisses: delta,
			DeltaMPKI:   1000 * float64(delta) / float64(agg.Instructions),
		})
	}
	return out, nil
}

// Render writes the analysis.
//repro:deterministic
func (i Inversion) Render(w io.Writer) {
	header := []string{"class", "MPrate (MKP)", "misses if inverted", "misp/KI delta"}
	var rows [][]string
	for _, r := range i.Rows {
		rows = append(rows, []string{
			r.Class.String(),
			fmt.Sprintf("%.0f", r.MPrate),
			fmt.Sprintf("%+d", r.DeltaMisses),
			fmt.Sprintf("%+.3f", r.DeltaMPKI),
		})
	}
	textplot.Table(w, "Analysis: would inverting any class help? (§2.1; 16Kbits, CBP-1; positive = worse)", header, rows)
}
