package experiments

import (
	"strings"
	"testing"
)

func TestSelfConfidenceReproducesRelatedWork(t *testing.T) {
	r := testRunner()
	s, err := r.RunSelfConfidence()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 4 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	byName := map[string]SelfConfidenceRow{}
	for _, row := range s.Rows {
		byName[row.Name] = row
		// All schemes must produce sane confusion tallies.
		if row.Confusion.Total() == 0 {
			t.Errorf("%s: empty confusion", row.Name)
		}
	}

	// §2.2's quoted O-GEHL characterization: PVN around one third (good),
	// SPEC around one half (limited). Loose bands: the claim is the shape.
	og := byName["O-GEHL |sum|>=theta"]
	if og.Confusion.PVN() < 0.15 || og.Confusion.PVN() > 0.55 {
		t.Errorf("O-GEHL PVN = %.3f, paper quotes ~1/3", og.Confusion.PVN())
	}
	if og.Confusion.Spec() < 0.30 || og.Confusion.Spec() > 0.70 {
		t.Errorf("O-GEHL SPEC = %.3f, paper quotes ~1/2", og.Confusion.Spec())
	}

	// The paper's estimator must dominate on SPEC (mispredictions pushed
	// out of the high class) at comparable or better PVP.
	tage := byName["TAGE storage-free (this paper)"]
	if tage.Confusion.Spec() <= og.Confusion.Spec() {
		t.Errorf("TAGE SPEC %.3f should beat O-GEHL %.3f",
			tage.Confusion.Spec(), og.Confusion.Spec())
	}
	if tage.Confusion.PVP() < og.Confusion.PVP() {
		t.Errorf("TAGE PVP %.3f should not trail O-GEHL %.3f",
			tage.Confusion.PVP(), og.Confusion.PVP())
	}

	// Accuracy ordering of the predictors themselves: O-GEHL (64 Kbit)
	// must beat the bimodal baseline decisively.
	bim := byName["bimodal saturation (Smith)"]
	if og.MPKI >= bim.MPKI {
		t.Errorf("O-GEHL %.2f misp/KI should beat bimodal %.2f", og.MPKI, bim.MPKI)
	}

	var sb strings.Builder
	s.Render(&sb)
	if !strings.Contains(sb.String(), "O-GEHL") || !strings.Contains(sb.String(), "PVN") {
		t.Fatal("render incomplete")
	}
}
