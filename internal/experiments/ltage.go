package experiments

import (
	"fmt"
	"io"

	"repro/internal/looppred"
	"repro/internal/metrics"
	"repro/internal/tage"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/workload"
)

// LTAGEComparison measures the loop-predictor extension (the L-TAGE
// combination that won CBP-2, which the paper cites as the state of the
// art): TAGE vs TAGE+loop-predictor accuracy, and the fraction of
// predictions the loop component provides.
type LTAGEComparison struct {
	Rows []LTAGERow
}

// LTAGERow is one (config, trace set) measurement.
type LTAGERow struct {
	Config       string
	Workload     string
	TageMPKI     float64
	LtageMPKI    float64
	LoopProvided float64 // fraction of predictions from the loop component
	ExtraBits    int
}

// RunLTAGE compares on CBP-1 and on a long-loop microbenchmark where the
// loop predictor shines (trips far beyond the TAGE history reach).
func (r *Runner) RunLTAGE() (LTAGEComparison, error) {
	var out LTAGEComparison
	loopCfg := looppred.DefaultConfig()

	longLoops := workload.NewBuilder("long-loops", 4242).
		SetLength(300_000).
		Block(10, 1, 1,
			workload.S(workload.Loop{Trip: 300}),
			workload.S(workload.Const{Taken: true}),
		).
		Block(10, 1, 1,
			workload.S(workload.Loop{Trip: 500}),
			workload.S(workload.Const{Taken: false}),
		).
		MustBuild()

	for _, cfg := range []tage.Config{tage.Small16K(), tage.Medium64K()} {
		// Suite comparison on CBP-1.
		suiteTraces, err := workload.Suite("cbp1")
		if err != nil {
			return out, err
		}
		row, err := r.compareLTAGE(cfg, loopCfg, "cbp1", suiteTraces)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, row)

		// Long-loop microbenchmark.
		row, err = r.compareLTAGE(cfg, loopCfg, "long-loops", []trace.Trace{longLoops})
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// ltageCell is the per-trace partial of one L-TAGE comparison.
type ltageCell struct {
	tageMiss, ltageMiss, instr, loopProvided, branches uint64
}

func (c *ltageCell) add(o ltageCell) {
	c.tageMiss += o.tageMiss
	c.ltageMiss += o.ltageMiss
	c.instr += o.instr
	c.loopProvided += o.loopProvided
	c.branches += o.branches
}

// compareLTAGE runs the side-by-side TAGE / L-TAGE simulation. Each trace
// is an independent job (both predictors are freshly built per trace), so
// the traces fan out across the pool; partials merge in trace order.
func (r *Runner) compareLTAGE(cfg tage.Config, loopCfg looppred.Config, label string, traces []trace.Trace) (LTAGERow, error) {
	row := LTAGERow{Config: cfg.Name, Workload: label}
	cells := make([]ltageCell, len(traces))
	err := r.Pool.ForEach(len(traces), func(i int) error {
		tg := tage.New(cfg)
		lt := looppred.NewLTAGE(cfg, loopCfg)
		reader := trace.Limit(traces[i], r.Limit).Open()
		var c ltageCell
		for {
			b, err := reader.Next()
			if err != nil {
				break
			}
			if tg.Predict(b.PC).Pred != b.Taken {
				c.tageMiss++
			}
			tg.Update(b.PC, b.Taken)
			if lt.Predict(b.PC) != b.Taken {
				c.ltageMiss++
			}
			if lt.UsedLoop() {
				c.loopProvided++
			}
			lt.Update(b.PC, b.Taken)
			c.instr += uint64(b.Instr)
			c.branches++
		}
		cells[i] = c
		return nil
	})
	if err != nil {
		return row, err
	}
	var total ltageCell
	for _, c := range cells {
		total.add(c)
	}
	row.TageMPKI = metrics.MPKI(total.tageMiss, total.instr)
	row.LtageMPKI = metrics.MPKI(total.ltageMiss, total.instr)
	if total.branches > 0 {
		row.LoopProvided = float64(total.loopProvided) / float64(total.branches)
	}
	row.ExtraBits = loopCfg.StorageBits() + 7
	return row, nil
}

// Render writes the comparison table.
//repro:deterministic
func (c LTAGEComparison) Render(w io.Writer) {
	header := []string{"config", "workload", "TAGE misp/KI", "L-TAGE misp/KI", "loop-provided", "extra bits"}
	var rows [][]string
	for _, r := range c.Rows {
		rows = append(rows, []string{
			r.Config, r.Workload,
			fmt.Sprintf("%.3f", r.TageMPKI),
			fmt.Sprintf("%.3f", r.LtageMPKI),
			fmt.Sprintf("%.3f", r.LoopProvided),
			fmt.Sprintf("%d", r.ExtraBits),
		})
	}
	textplot.Table(w, "Extension: L-TAGE loop predictor vs plain TAGE", header, rows)
}
