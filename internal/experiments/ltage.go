package experiments

import (
	"fmt"
	"io"

	"repro/internal/looppred"
	"repro/internal/metrics"
	"repro/internal/tage"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/workload"
)

// LTAGEComparison measures the loop-predictor extension (the L-TAGE
// combination that won CBP-2, which the paper cites as the state of the
// art): TAGE vs TAGE+loop-predictor accuracy, and the fraction of
// predictions the loop component provides.
type LTAGEComparison struct {
	Rows []LTAGERow
}

// LTAGERow is one (config, trace set) measurement.
type LTAGERow struct {
	Config       string
	Workload     string
	TageMPKI     float64
	LtageMPKI    float64
	LoopProvided float64 // fraction of predictions from the loop component
	ExtraBits    int
}

// RunLTAGE compares on CBP-1 and on a long-loop microbenchmark where the
// loop predictor shines (trips far beyond the TAGE history reach).
func (r *Runner) RunLTAGE() (LTAGEComparison, error) {
	var out LTAGEComparison
	loopCfg := looppred.DefaultConfig()

	longLoops := workload.NewBuilder("long-loops", 4242).
		SetLength(300_000).
		Block(10, 1, 1,
			workload.S(workload.Loop{Trip: 300}),
			workload.S(workload.Const{Taken: true}),
		).
		Block(10, 1, 1,
			workload.S(workload.Loop{Trip: 500}),
			workload.S(workload.Const{Taken: false}),
		).
		MustBuild()

	for _, cfg := range []tage.Config{tage.Small16K(), tage.Medium64K()} {
		// Suite comparison on CBP-1.
		suiteTraces, err := workload.Suite("cbp1")
		if err != nil {
			return out, err
		}
		row, err := r.compareLTAGE(cfg, loopCfg, "cbp1", suiteTraces)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, row)

		// Long-loop microbenchmark.
		row, err = r.compareLTAGE(cfg, loopCfg, "long-loops", []trace.Trace{longLoops})
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func (r *Runner) compareLTAGE(cfg tage.Config, loopCfg looppred.Config, label string, traces []trace.Trace) (LTAGERow, error) {
	row := LTAGERow{Config: cfg.Name, Workload: label}
	var tageMiss, ltageMiss, instr, loopProvided, branches uint64
	for _, tr := range traces {
		tg := tage.New(cfg)
		lt := looppred.NewLTAGE(cfg, loopCfg)
		reader := trace.Limit(tr, r.Limit).Open()
		for {
			b, err := reader.Next()
			if err != nil {
				break
			}
			if tg.Predict(b.PC).Pred != b.Taken {
				tageMiss++
			}
			tg.Update(b.PC, b.Taken)
			if lt.Predict(b.PC) != b.Taken {
				ltageMiss++
			}
			if lt.UsedLoop() {
				loopProvided++
			}
			lt.Update(b.PC, b.Taken)
			instr += uint64(b.Instr)
			branches++
		}
	}
	row.TageMPKI = metrics.MPKI(tageMiss, instr)
	row.LtageMPKI = metrics.MPKI(ltageMiss, instr)
	if branches > 0 {
		row.LoopProvided = float64(loopProvided) / float64(branches)
	}
	row.ExtraBits = loopCfg.StorageBits() + 7
	return row, nil
}

// Render writes the comparison table.
func (c LTAGEComparison) Render(w io.Writer) {
	header := []string{"config", "workload", "TAGE misp/KI", "L-TAGE misp/KI", "loop-provided", "extra bits"}
	var rows [][]string
	for _, r := range c.Rows {
		rows = append(rows, []string{
			r.Config, r.Workload,
			fmt.Sprintf("%.3f", r.TageMPKI),
			fmt.Sprintf("%.3f", r.LtageMPKI),
			fmt.Sprintf("%.3f", r.LoopProvided),
			fmt.Sprintf("%d", r.ExtraBits),
		})
	}
	textplot.Table(w, "Extension: L-TAGE loop predictor vs plain TAGE", header, rows)
}
