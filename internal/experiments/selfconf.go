package experiments

import (
	"fmt"
	"io"

	"repro/internal/bimodal"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/ogehl"
	"repro/internal/perceptron"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SelfConfidence reproduces the related-work characterization of §2.2:
// storage-free self-confidence across predictor families. The paper quotes
// the O-GEHL self-confidence as having "quite good PVN" (about one third
// of low-confidence predictions mispredict) "but only limited SPEC" (only
// about half of mispredictions are classified low confidence); Smith's
// saturated-counter confidence on the bimodal predictor is the original
// storage-free scheme; the perceptron's |sum| >= θ is Jiménez & Lin's.
// The TAGE storage-free estimator (high level vs rest) is this paper's.
type SelfConfidence struct {
	Rows []SelfConfidenceRow
}

// SelfConfidenceRow is one (predictor, self-confidence scheme) pair
// evaluated over CBP-1.
type SelfConfidenceRow struct {
	Name      string
	Storage   int // predictor storage in bits
	MPKI      float64
	Confusion metrics.Binary
}

// bimodalSelf adapts Smith's predictor to the binary driver: high
// confidence when the 2-bit counter is saturated.
type bimodalSelf struct{ p *bimodal.Predictor }

func (b bimodalSelf) Predict(pc uint64) bool       { return b.p.Predict(pc) }
func (b bimodalSelf) Update(pc uint64, taken bool) { b.p.Update(pc, taken) }
func (b bimodalSelf) HighConfidence(pc uint64, pred bool) bool {
	return !b.p.Weak(pc)
}

// ogehlSelf adapts O-GEHL with |sum| >= θ self-confidence.
type ogehlSelf struct{ p *ogehl.Predictor }

func (o ogehlSelf) Predict(pc uint64) bool           { return o.p.Predict(pc) }
func (o ogehlSelf) Update(pc uint64, taken bool)     { o.p.Update(pc, taken) }
func (o ogehlSelf) HighConfidence(uint64, bool) bool { return o.p.HighConfidence() }

// perceptronSelf adapts the perceptron with |sum| >= θ self-confidence.
type perceptronSelf struct{ p *perceptron.Predictor }

func (s perceptronSelf) Predict(pc uint64) bool           { return s.p.Predict(pc) }
func (s perceptronSelf) Update(pc uint64, taken bool)     { s.p.Update(pc, taken) }
func (s perceptronSelf) HighConfidence(uint64, bool) bool { return s.p.HighConfidence() }

// selfConfidencePredictor is a predictor with an intrinsic (storage-free)
// confidence estimate.
type selfConfidencePredictor interface {
	sim.Predictor
	HighConfidence(pc uint64, pred bool) bool
}

// RunSelfConfidence evaluates each scheme over CBP-1.
func (r *Runner) RunSelfConfidence() (SelfConfidence, error) {
	var out SelfConfidence
	traces, err := workload.Suite("cbp1")
	if err != nil {
		return out, err
	}

	schemes := []struct {
		name    string
		storage int
		build   func() selfConfidencePredictor
	}{
		{
			name:    "bimodal saturation (Smith)",
			storage: bimodal.New(13).StorageBits(),
			build: func() selfConfidencePredictor {
				return bimodalSelf{bimodal.New(13)}
			},
		},
		{
			name:    "perceptron |sum|>=theta",
			storage: perceptron.New(9, 24).StorageBits(),
			build: func() selfConfidencePredictor {
				return perceptronSelf{perceptron.New(9, 24)}
			},
		},
		{
			name:    "O-GEHL |sum|>=theta",
			storage: ogehl.DefaultConfig().StorageBits(),
			build: func() selfConfidencePredictor {
				return ogehlSelf{ogehl.New(ogehl.DefaultConfig())}
			},
		},
	}

	// Every (scheme, trace) run is independent, and so is each trace of
	// the paper's TAGE storage-free estimator in binary mode (64 Kbit, the
	// size class of the O-GEHL configuration above; its misp/KI column is
	// rendered as "-" because the binary driver tallies predictions, not
	// instructions). The whole flat matrix — schemes plus the TAGE tail
	// rows — fans out across the pool in one pass, then merges in
	// scheme-major, trace-minor order so the totals match the serial
	// reference exactly.
	type cell struct {
		conf         metrics.Binary
		misps, instr uint64
	}
	nt := len(traces)
	cells := make([]cell, (len(schemes)+1)*nt)
	if err := r.Pool.ForEach(len(cells), func(i int) error {
		tr := traces[i%nt]
		if si := i / nt; si < len(schemes) {
			p := schemes[si].build()
			c, m, in, err := runSelfConfidence(p, tr, r.Limit)
			if err != nil {
				return err
			}
			cells[i] = cell{conf: c, misps: m, instr: in}
			return nil
		}
		est := core.NewEstimator(tage.Medium64K(), modifiedOpts())
		res, err := sim.RunTAGEBinary(est, tr, r.Limit)
		if err != nil {
			return err
		}
		cells[i] = cell{conf: res.Confusion}
		return nil
	}); err != nil {
		return out, err
	}
	for si, s := range schemes {
		var conf metrics.Binary
		var misps, instr uint64
		for ti := 0; ti < nt; ti++ {
			c := cells[si*nt+ti]
			conf.Add(c.conf)
			misps += c.misps
			instr += c.instr
		}
		out.Rows = append(out.Rows, SelfConfidenceRow{
			Name:      s.name,
			Storage:   s.storage,
			MPKI:      metrics.MPKI(misps, instr),
			Confusion: conf,
		})
	}
	var conf metrics.Binary
	for ti := 0; ti < nt; ti++ {
		conf.Add(cells[len(schemes)*nt+ti].conf)
	}
	out.Rows = append(out.Rows, SelfConfidenceRow{
		Name:      "TAGE storage-free (this paper)",
		Storage:   tage.Medium64K().StorageBits(),
		Confusion: conf,
	})
	return out, nil
}

func runSelfConfidence(p selfConfidencePredictor, tr trace.Trace, limit uint64) (metrics.Binary, uint64, uint64, error) {
	var conf metrics.Binary
	var misps, instr uint64
	r := trace.Limit(tr, limit).Open()
	for {
		b, err := r.Next()
		if err != nil {
			return conf, misps, instr, nil
		}
		pred := p.Predict(b.PC)
		high := p.HighConfidence(b.PC, pred)
		miss := pred != b.Taken
		if miss {
			misps++
		}
		instr += uint64(b.Instr)
		conf.Record(high, miss)
		p.Update(b.PC, b.Taken)
	}
}

// Render writes the comparison table.
//repro:deterministic
func (s SelfConfidence) Render(w io.Writer) {
	header := []string{"scheme", "predictor bits", "misp/KI", "SENS", "PVP", "SPEC", "PVN"}
	var rows [][]string
	for _, r := range s.Rows {
		mpki := "-"
		if r.MPKI > 0 {
			mpki = fmt.Sprintf("%.2f", r.MPKI)
		}
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%d", r.Storage),
			mpki,
			fmt.Sprintf("%.3f", r.Confusion.Sens()),
			fmt.Sprintf("%.3f", r.Confusion.PVP()),
			fmt.Sprintf("%.3f", r.Confusion.Spec()),
			fmt.Sprintf("%.3f", r.Confusion.PVN()),
		})
	}
	textplot.Table(w, "Self-confidence schemes across predictor families (§2.2; CBP-1)", header, rows)
}
