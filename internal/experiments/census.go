package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/tage"
	"repro/internal/textplot"
)

// FamilyCensus summarizes the class behavior per CBP-1 workload family
// (FP / INT / MM / SERV) — a validation view of the synthetic suites: each
// family must stress the confidence classes the way its real counterpart
// does (§5's per-family remarks).
type FamilyCensus struct {
	Rows []FamilyCensusRow
}

// FamilyCensusRow aggregates one family on the 16 Kbit predictor
// (modified automaton).
type FamilyCensusRow struct {
	Family   string
	MPKI     float64
	BimPcov  float64 // all bimodal-provided classes
	HighPcov float64
	LowMKP   float64 // low level misprediction rate
}

// RunFamilyCensus aggregates the cached CBP-1 suite run by family prefix.
// The per-family reductions are independent arms over the shared suite
// result, so they fan out across the pool; rows merge in family order.
func (r *Runner) RunFamilyCensus() (FamilyCensus, error) {
	sr, err := r.Suite(tage.Small16K(), modifiedOpts(), "cbp1")
	if err != nil {
		return FamilyCensus{}, err
	}
	families := []string{"FP", "INT", "MM", "SERV"}
	rows := make([]FamilyCensusRow, len(families))
	err = r.Pool.ForEach(len(families), func(i int) error {
		fam := families[i]
		var agg struct {
			misps, instr, preds uint64
			bim, high           uint64
			lowPreds, lowMisps  uint64
		}
		for _, res := range sr.PerTrace {
			if !strings.HasPrefix(res.Trace, fam+"-") {
				continue
			}
			agg.misps += res.Total.Misps
			agg.instr += res.Instructions
			agg.preds += res.Total.Preds
			for _, c := range []core.Class{core.LowConfBim, core.MediumConfBim, core.HighConfBim} {
				agg.bim += res.Class[c].Preds
			}
			hi := res.Level(core.High)
			agg.high += hi.Preds
			lo := res.Level(core.Low)
			agg.lowPreds += lo.Preds
			agg.lowMisps += lo.Misps
		}
		if agg.preds == 0 {
			return fmt.Errorf("experiments: family %s matched no traces", fam)
		}
		row := FamilyCensusRow{
			Family:   fam,
			MPKI:     1000 * float64(agg.misps) / float64(agg.instr),
			BimPcov:  float64(agg.bim) / float64(agg.preds),
			HighPcov: float64(agg.high) / float64(agg.preds),
		}
		if agg.lowPreds > 0 {
			row.LowMKP = 1000 * float64(agg.lowMisps) / float64(agg.lowPreds)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return FamilyCensus{}, err
	}
	return FamilyCensus{Rows: rows}, nil
}

// Render writes the census.
//repro:deterministic
func (c FamilyCensus) Render(w io.Writer) {
	header := []string{"family", "misp/KI", "BIM Pcov", "high Pcov", "low MKP"}
	var rows [][]string
	for _, r := range c.Rows {
		rows = append(rows, []string{
			r.Family,
			fmt.Sprintf("%.2f", r.MPKI),
			fmt.Sprintf("%.3f", r.BimPcov),
			fmt.Sprintf("%.3f", r.HighPcov),
			fmt.Sprintf("%.0f", r.LowMKP),
		})
	}
	textplot.Table(w, "Workload-family census (16Kbits, CBP-1, modified automaton)", header, rows)
}
