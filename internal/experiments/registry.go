package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Renderer is a computed experiment that can print itself in the paper's
// layout.
type Renderer interface {
	Render(w io.Writer)
}

// Names lists the invocable experiment identifiers in presentation order.
//repro:deterministic
func Names() []string {
	return []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"table2", "table3", "sweep",
		"ablation-window", "ablation-usealt", "ablation-ctr", "estimators",
		"selfconf", "ltage", "inversion", "applications", "census",
		"all",
	}
}

// Run executes the named experiment (or all of them) and returns the
// renderers in presentation order.
func (r *Runner) Run(name string) ([]Renderer, error) {
	single := map[string]func() (Renderer, error){
		"table1": func() (Renderer, error) { v, err := r.RunTable1(); return v, err },
		"fig2":   func() (Renderer, error) { v, err := r.RunFigure2(); return v, err },
		"fig3":   func() (Renderer, error) { v, err := r.RunFigure3(); return v, err },
		"fig4":   func() (Renderer, error) { v, err := r.RunFigure4(); return v, err },
		"fig5":   func() (Renderer, error) { v, err := r.RunFigure5(); return v, err },
		"fig6":   func() (Renderer, error) { v, err := r.RunFigure6(); return v, err },
		"table2": func() (Renderer, error) { v, err := r.RunThreeClass(false); return v, err },
		"table3": func() (Renderer, error) { v, err := r.RunThreeClass(true); return v, err },
		"sweep":  func() (Renderer, error) { v, err := r.RunSweep(); return v, err },
		"ablation-window": func() (Renderer, error) {
			v, err := r.RunBimWindowAblation()
			return v, err
		},
		"ablation-usealt": func() (Renderer, error) {
			v, err := r.RunUseAltAblation()
			return v, err
		},
		"ablation-ctr": func() (Renderer, error) {
			v, err := r.RunCtrWidthAblation()
			return v, err
		},
		"estimators": func() (Renderer, error) {
			v, err := r.RunEstimatorComparison()
			return v, err
		},
		"selfconf": func() (Renderer, error) {
			v, err := r.RunSelfConfidence()
			return v, err
		},
		"ltage": func() (Renderer, error) {
			v, err := r.RunLTAGE()
			return v, err
		},
		"inversion": func() (Renderer, error) {
			v, err := r.RunInversion()
			return v, err
		},
		"applications": func() (Renderer, error) {
			v, err := r.RunApplications()
			return v, err
		},
		"census": func() (Renderer, error) {
			v, err := r.RunFamilyCensus()
			return v, err
		},
	}
	if name == "all" {
		// The experiments themselves are the outermost parallel axis: they
		// fan out across the pool (each one fanning its own arms and traces
		// out in turn), with renderers merged in presentation order. The
		// Runner's singleflight memo guarantees every (config, options,
		// suite) triple shared between concurrent experiments — table2 and
		// the sweep both want the modified 16K/CBP-1 run, say — is
		// simulated exactly once.
		var names []string
		for _, n := range Names() {
			if n != "all" {
				names = append(names, n)
			}
		}
		out := make([]Renderer, len(names))
		err := r.Pool.ForEach(len(names), func(i int) error {
			v, err := single[names[i]]()
			if err != nil {
				return fmt.Errorf("experiment %s: %w", names[i], err)
			}
			out[i] = v
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	f, ok := single[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, known)
	}
	v, err := f()
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", name, err)
	}
	return []Renderer{v}, nil
}
