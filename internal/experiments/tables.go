package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/tage"
	"repro/internal/textplot"
	"repro/internal/workload"
)

// Table1 reproduces the paper's Table 1: the three simulated
// configurations and their suite misp/KI under the standard automaton.
type Table1 struct {
	Rows []Table1Row
}

// Table1Row is one configuration column of the paper's table.
type Table1Row struct {
	Config    tage.Config
	CBP1MPKI  float64
	CBP2MPKI  float64
	TotalBits int
	NumTables int
	MinHist   int
	MaxHist   int
}

// PaperTable1 holds the paper's reported misp/KI for comparison
// (CBP-1, CBP-2 order).
var PaperTable1 = map[string][2]float64{
	"16Kbits":  {4.21, 4.61},
	"64Kbits":  {2.54, 3.87},
	"256Kbits": {2.18, 3.47},
}

// RunTable1 simulates both suites under the three standard configurations.
// The flat (config × suite) grid fans out across the pool; rows merge in
// config order.
func (r *Runner) RunTable1() (Table1, error) {
	cfgs := tage.StandardConfigs()
	suites := workload.SuiteNames()
	mpkis := make([]float64, len(cfgs)*len(suites))
	err := r.Pool.ForEach(len(mpkis), func(i int) error {
		sr, err := r.Suite(cfgs[i/len(suites)], standardOpts(), suites[i%len(suites)])
		if err != nil {
			return err
		}
		mpkis[i] = sr.Aggregate.MPKI()
		return nil
	})
	if err != nil {
		return Table1{}, err
	}
	var t Table1
	for ci, cfg := range cfgs {
		t.Rows = append(t.Rows, Table1Row{
			Config:    cfg,
			TotalBits: cfg.StorageBits(),
			NumTables: cfg.NumTables(),
			MinHist:   cfg.HistLengths[0],
			MaxHist:   cfg.HistLengths[len(cfg.HistLengths)-1],
			CBP1MPKI:  mpkis[ci*len(suites)],
			CBP2MPKI:  mpkis[ci*len(suites)+1],
		})
	}
	return t, nil
}

// Render writes the table in the paper's layout, with the paper's numbers
// alongside for comparison.
//repro:deterministic
func (t Table1) Render(w io.Writer) {
	header := []string{"", "Small", "Medium", "Large"}
	rows := [][]string{
		{"Storage budget"}, {"Number of tables"}, {"Min Hist length"},
		{"Max Hist Length"}, {"CBP-1 misp/KI"}, {"CBP-2 misp/KI"},
		{"paper CBP-1"}, {"paper CBP-2"},
	}
	for _, row := range t.Rows {
		paper := PaperTable1[row.Config.Name]
		rows[0] = append(rows[0], fmt.Sprintf("%dKbits", row.TotalBits/1024))
		rows[1] = append(rows[1], fmt.Sprintf("1 + %d", row.NumTables))
		rows[2] = append(rows[2], fmt.Sprintf("%d", row.MinHist))
		rows[3] = append(rows[3], fmt.Sprintf("%d", row.MaxHist))
		rows[4] = append(rows[4], fmt.Sprintf("%.2f", row.CBP1MPKI))
		rows[5] = append(rows[5], fmt.Sprintf("%.2f", row.CBP2MPKI))
		rows[6] = append(rows[6], fmt.Sprintf("%.2f", paper[0]))
		rows[7] = append(rows[7], fmt.Sprintf("%.2f", paper[1]))
	}
	textplot.Table(w, "Table 1: Simulated configurations", header, rows)
}

// LevelCell is one (Pcov, MPcov, MPrate) triple of Tables 2 and 3.
type LevelCell struct {
	Pcov   float64
	MPcov  float64
	MPrate float64
}

//repro:deterministic
func (c LevelCell) String() string {
	return fmt.Sprintf("%.3f-%.3f (%.0f)", c.Pcov, c.MPcov, c.MPrate)
}

// ThreeClassRow is one (size, suite) row of Tables 2/3.
type ThreeClassRow struct {
	Config string
	Suite  string
	High   LevelCell
	Medium LevelCell
	Low    LevelCell
	// FinalProbability is the saturation probability at the end of the
	// last trace (1/128 fixed for Table 2; adapted for Table 3).
	FinalProbability float64
}

// ThreeClassTable reproduces Table 2 (fixed 1/128 probability) or Table 3
// (adaptive probability), per the Adaptive flag.
type ThreeClassTable struct {
	Adaptive bool
	Rows     []ThreeClassRow
}

// PaperTable2 and PaperTable3 carry the paper's values
// {high, medium, low} × {Pcov, MPcov, MPrate} keyed by "size suite".
var PaperTable2 = map[string][3]LevelCell{
	"16Kbits cbp1":  {{0.690, 0.128, 7}, {0.254, 0.455, 72}, {0.056, 0.416, 306}},
	"16Kbits cbp2":  {{0.790, 0.078, 3}, {0.163, 0.478, 98}, {0.046, 0.443, 328}},
	"64Kbits cbp1":  {{0.781, 0.096, 3}, {0.180, 0.434, 59}, {0.038, 0.470, 304}},
	"64Kbits cbp2":  {{0.818, 0.056, 2}, {0.095, 0.466, 82}, {0.042, 0.478, 328}},
	"256Kbits cbp1": {{0.802, 0.060, 2}, {0.162, 0.442, 57}, {0.034, 0.498, 302}},
	"256Kbits cbp2": {{0.826, 0.040, 1}, {0.135, 0.469, 88}, {0.038, 0.491, 325}},
}

// PaperTable3 is the paper's Table 3 (adaptive probability, target
// < 10 MKP on the high-confidence class).
var PaperTable3 = map[string][3]LevelCell{
	"16Kbits cbp1":  {{0.758, 0.167, 8}, {0.187, 0.423, 92}, {0.053, 0.409, 311}},
	"16Kbits cbp2":  {{0.816, 0.112, 5}, {0.139, 0.452, 109}, {0.044, 0.436, 332}},
	"64Kbits cbp1":  {{0.855, 0.156, 5}, {0.109, 0.387, 88}, {0.036, 0.456, 309}},
	"64Kbits cbp2":  {{0.848, 0.100, 3}, {0.112, 0.432, 110}, {0.040, 0.468, 331}},
	"256Kbits cbp1": {{0.882, 0.140, 3}, {0.085, 0.381, 93}, {0.033, 0.479, 306}},
	"256Kbits cbp2": {{0.870, 0.105, 3}, {0.092, 0.419, 115}, {0.037, 0.476, 331}},
}

// RunThreeClass produces Table 2 (adaptive=false) or Table 3
// (adaptive=true). The flat (config × suite) grid fans out across the
// pool; rows merge in grid order.
func (r *Runner) RunThreeClass(adaptive bool) (ThreeClassTable, error) {
	opts := modifiedOpts()
	if adaptive {
		opts = adaptiveOpts()
	}
	cfgs := tage.StandardConfigs()
	suites := workload.SuiteNames()
	rows := make([]ThreeClassRow, len(cfgs)*len(suites))
	err := r.Pool.ForEach(len(rows), func(i int) error {
		cfg := cfgs[i/len(suites)]
		suite := suites[i%len(suites)]
		sr, err := r.Suite(cfg, opts, suite)
		if err != nil {
			return err
		}
		agg := sr.Aggregate
		row := ThreeClassRow{
			Config:           cfg.Name,
			Suite:            suite,
			FinalProbability: agg.FinalProbability,
		}
		for _, l := range core.Levels() {
			lc := agg.Level(l)
			cell := LevelCell{
				Pcov:   metrics.Pcov(lc, agg.Total),
				MPcov:  metrics.MPcov(lc, agg.Total),
				MPrate: lc.MKP(),
			}
			switch l {
			case core.Low:
				row.Low = cell
			case core.Medium:
				row.Medium = cell
			default:
				row.High = cell
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return ThreeClassTable{Adaptive: adaptive}, err
	}
	return ThreeClassTable{Adaptive: adaptive, Rows: rows}, nil
}

// Render writes the table in the paper's layout with the paper's values.
//repro:deterministic
func (t ThreeClassTable) Render(w io.Writer) {
	title := "Table 2: high/medium/low confidence coverage (Pcov-MPcov (MPrate MKP)), probability 1/128"
	paper := PaperTable2
	if t.Adaptive {
		title = "Table 3: high/medium/low confidence coverage, adaptive probability (target < 10 MKP)"
		paper = PaperTable3
	}
	header := []string{"config", "high conf", "medium conf", "low conf", "paper high", "paper medium", "paper low"}
	var rows [][]string
	for _, row := range t.Rows {
		key := row.Config + " " + row.Suite
		p := paper[key]
		label := fmt.Sprintf("%s %s", shortSize(row.Config), row.Suite)
		rows = append(rows, []string{
			label,
			row.High.String(), row.Medium.String(), row.Low.String(),
			p[0].String(), p[1].String(), p[2].String(),
		})
	}
	textplot.Table(w, title, header, rows)
}

//repro:deterministic
func shortSize(config string) string {
	switch config {
	case "16Kbits":
		return "16K"
	case "64Kbits":
		return "64K"
	case "256Kbits":
		return "256K"
	default:
		return config
	}
}
