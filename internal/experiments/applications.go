package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fetchgate"
	"repro/internal/multipath"
	"repro/internal/smtpolicy"
	"repro/internal/tage"
	"repro/internal/textplot"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Applications runs the three §2.1 confidence applications — pipeline
// gating/throttling (Manne et al.; Aragón et al.), SMT fetch policy (Luo
// et al.) and selective dual-path execution (Klauser et al.) — on
// representative traces, demonstrating the downstream value of the
// storage-free three-level estimator.
type Applications struct {
	Gating    []GatingRow
	SMT       []SMTRow
	Multipath []MultipathRow
}

// GatingRow is one (trace, policy) gating measurement.
type GatingRow struct {
	Trace     string
	Policy    string
	Reduction float64
	Slowdown  float64
}

// SMTRow is one SMT policy measurement on the co-run pair.
type SMTRow struct {
	Policy     string
	Throughput float64
	WrongPath  float64
}

// MultipathRow is one fork-policy measurement.
type MultipathRow struct {
	Policy       string
	IPC          float64
	Wasted       float64
	ForkAccuracy float64
}

// ApplicationTraces are the workloads the application models run on: a
// misprediction-bound trace, a server trace and a predictable one.
var ApplicationTraces = []string{"300.twolf", "SERV-2", "252.eon"}

// RunApplications executes all three application studies.
func (r *Runner) RunApplications() (Applications, error) {
	var out Applications
	opts := core.Options{Mode: core.ModeProbabilistic}
	cfg := tage.Small16K()

	// Pipeline gating and throttling: the flat (trace × policy) matrix
	// fans out across the pool; rows merge in trace-major, policy-minor
	// order, matching the serial reference.
	policies := []struct {
		name string
		cfg  fetchgate.Config
	}{
		{"balanced gate", fetchgate.DefaultConfig()},
		{"aggressive gate", fetchgate.AggressiveConfig()},
		{"throttle", func() fetchgate.Config {
			c := fetchgate.AggressiveConfig()
			c.ThrottleWidth = 1
			return c
		}()},
	}
	gatingTraces := make([]trace.Trace, len(ApplicationTraces))
	for i, name := range ApplicationTraces {
		tr, err := workload.ByName(name)
		if err != nil {
			return out, err
		}
		gatingTraces[i] = tr
	}
	gating := make([]GatingRow, len(gatingTraces)*len(policies))
	if err := r.Pool.ForEach(len(gating), func(i int) error {
		ti, pi := i/len(policies), i%len(policies)
		gated, base, err := fetchgate.Compare(cfg, opts, policies[pi].cfg, gatingTraces[ti], r.Limit)
		if err != nil {
			return err
		}
		s := fetchgate.Evaluate(gated, base)
		gating[i] = GatingRow{
			Trace:     ApplicationTraces[ti],
			Policy:    policies[pi].name,
			Reduction: s.WrongPathReduction,
			Slowdown:  s.Slowdown,
		}
		return nil
	}); err != nil {
		return out, err
	}
	out.Gating = gating

	// SMT fetch policies on a predictable/unpredictable thread pair; the
	// policy arms are independent co-run simulations.
	var pair []trace.Trace
	for _, n := range []string{"255.vortex", "300.twolf"} {
		tr, err := workload.ByName(n)
		if err != nil {
			return out, err
		}
		pair = append(pair, tr)
	}
	smtPolicies := []smtpolicy.Policy{smtpolicy.RoundRobin, smtpolicy.ICount, smtpolicy.ConfidenceThrottle}
	smt := make([]SMTRow, len(smtPolicies))
	if err := r.Pool.ForEach(len(smtPolicies), func(i int) error {
		sc := smtpolicy.DefaultConfig()
		sc.Policy = smtPolicies[i]
		st, err := smtpolicy.Run(cfg, opts, sc, pair, r.Limit)
		if err != nil {
			return err
		}
		smt[i] = SMTRow{
			Policy:     smtPolicies[i].String(),
			Throughput: st.Throughput(),
			WrongPath:  st.WrongPathFraction(),
		}
		return nil
	}); err != nil {
		return out, err
	}
	out.SMT = smt

	// Dual-path fork policies on the misprediction-bound trace.
	tw, err := workload.ByName("300.twolf")
	if err != nil {
		return out, err
	}
	all, err := multipath.Compare(cfg, opts, multipath.DefaultConfig(), tw, r.Limit)
	if err != nil {
		return out, err
	}
	for _, p := range []multipath.ForkPolicy{
		multipath.ForkNever, multipath.ForkLowConfidence,
		multipath.ForkLowOrMedium, multipath.ForkAlways,
	} {
		st := all[p]
		out.Multipath = append(out.Multipath, MultipathRow{
			Policy:       p.String(),
			IPC:          st.IPC(),
			Wasted:       st.WastedFraction(),
			ForkAccuracy: st.ForkAccuracy(),
		})
	}
	return out, nil
}

// Render writes the three application tables.
//repro:deterministic
func (a Applications) Render(w io.Writer) {
	var rows [][]string
	for _, r := range a.Gating {
		rows = append(rows, []string{
			r.Trace, r.Policy,
			fmt.Sprintf("%.1f%%", 100*r.Reduction),
			fmt.Sprintf("%.1f%%", 100*r.Slowdown),
		})
	}
	textplot.Table(w, "Application: pipeline gating / throttling (16Kbits TAGE)",
		[]string{"trace", "policy", "wrong-path reduction", "slowdown"}, rows)
	fmt.Fprintln(w)

	rows = nil
	for _, r := range a.SMT {
		rows = append(rows, []string{
			r.Policy,
			fmt.Sprintf("%.3f", r.Throughput),
			fmt.Sprintf("%.3f", r.WrongPath),
		})
	}
	textplot.Table(w, "Application: SMT fetch policy (vortex + twolf co-run)",
		[]string{"policy", "throughput (IPC)", "wrong-path fraction"}, rows)
	fmt.Fprintln(w)

	rows = nil
	for _, r := range a.Multipath {
		rows = append(rows, []string{
			r.Policy,
			fmt.Sprintf("%.2f", r.IPC),
			fmt.Sprintf("%.1f%%", 100*r.Wasted),
			fmt.Sprintf("%.0f%%", 100*r.ForkAccuracy),
		})
	}
	textplot.Table(w, "Application: selective dual-path execution (300.twolf)",
		[]string{"fork policy", "IPC", "wasted fetch", "fork accuracy"}, rows)
}
