// Package statecodec is the tiny shared vocabulary of the predictor
// state codecs: every predictor family serializes its mutable state with
// the TBT1 varint idiom (uvarint/svarint fields, little-endian fixed
// words, length-prefixed blobs) through an error-latching Reader, so the
// per-family codecs stay declarative and a truncated or oversized field
// surfaces as one error at the end instead of a panic in the middle.
//
// Appending uses encoding/binary's Append* helpers directly; this
// package only adds the decode side plus the one append helper the
// standard library lacks (length-prefixed byte blobs).
package statecodec

import (
	"encoding/binary"
	"fmt"
)

// MaxBlob bounds a length-prefixed byte blob (64 MiB): a corrupt or
// hostile length prefix must not make a decoder allocate unboundedly.
const MaxBlob = 1 << 26

// ErrCorrupt reports an undecodable state payload.
var ErrCorrupt = fmt.Errorf("statecodec: corrupt state")

// AppendBytes appends a uvarint length prefix followed by the bytes.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// Reader decodes a state payload field by field. The first decode error
// latches: every subsequent accessor returns zero values, and Err
// reports the failure — callers check once, after reading every field.
type Reader struct {
	src []byte
	err error
}

// NewReader returns a reader over src. The slice is consumed in place;
// Bytes/Blob return sub-slices of it.
func NewReader(src []byte) *Reader { return &Reader{src: src} }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, what)
	}
}

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unconsumed bytes.
func (r *Reader) Len() int { return len(r.src) }

// Finish errors unless every byte was consumed cleanly.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.src) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.src))
	}
	return nil
}

// Uvarint decodes one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.src)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.src = r.src[n:]
	return v
}

// Varint decodes one signed (zigzag) varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.src)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.src = r.src[n:]
	return v
}

// Byte decodes one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.src) < 1 {
		r.fail("truncated byte")
		return 0
	}
	b := r.src[0]
	r.src = r.src[1:]
	return b
}

// Uint32 decodes one little-endian 32-bit word.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.src) < 4 {
		r.fail("truncated uint32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.src)
	r.src = r.src[4:]
	return v
}

// Uint64 decodes one little-endian 64-bit word.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.src) < 8 {
		r.fail("truncated uint64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.src)
	r.src = r.src[8:]
	return v
}

// Bytes consumes exactly n raw bytes (a sub-slice of the source, valid
// while the source is).
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.src) {
		r.fail("truncated bytes")
		return nil
	}
	b := r.src[:n]
	r.src = r.src[n:]
	return b
}

// Blob consumes one length-prefixed byte blob (AppendBytes's encoding),
// rejecting length prefixes beyond MaxBlob or the remaining payload.
func (r *Reader) Blob() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > MaxBlob || n > uint64(len(r.src)) {
		r.fail("blob length out of range")
		return nil
	}
	return r.Bytes(int(n))
}
