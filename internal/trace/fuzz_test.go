package trace

import (
	"bytes"
	"testing"
)

// FuzzRead ensures the binary trace parser never panics and never accepts
// garbage silently: arbitrary input either parses into a well-formed Mem
// or returns an error.
func FuzzRead(f *testing.F) {
	// Seed with a valid file, a truncation, and junk.
	var buf bytes.Buffer
	if err := WriteMem(&buf, &Mem{TraceName: "seed", Records: sampleRecords(50, 1)}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("TBT1"))
	f.Add([]byte("garbage data, not a trace"))
	f.Add([]byte{})
	// Hostile headers: a count field promising ~2^32 records (and one just
	// past the hard limit) with no data behind it. The parser must fail on
	// the missing records without reserving count-sized memory up front.
	header := append(append([]byte{}, valid[:4]...), 0) // magic + empty name
	f.Add(append(append([]byte{}, header...), 0xFF, 0xFF, 0xFF, 0xFF, 0x0F))       // count = 2^32-1
	f.Add(append(append([]byte{}, header...), 0x81, 0x80, 0x80, 0x80, 0x10))       // count = 2^32+1
	f.Add(append(append([]byte{}, header...), 0x80, 0x80, 0x40, 0x00, 0x03, 0x00)) // count = 2^20, one record

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Successful parses must produce well-formed records.
		for _, r := range m.Records {
			if r.Instr == 0 {
				t.Fatal("parsed record with zero instruction count")
			}
		}
		// Round-trip property: re-serializing must succeed and re-parse to
		// the same records.
		var out bytes.Buffer
		if err := WriteMem(&out, m); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		m2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(m2.Records) != len(m.Records) || m2.TraceName != m.TraceName {
			t.Fatal("round trip changed the trace")
		}
		for i := range m.Records {
			if m.Records[i] != m2.Records[i] {
				t.Fatalf("round trip changed record %d", i)
			}
		}
	})
}
