package trace

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func sampleRecords(n int, seed uint64) []Branch {
	r := xrand.New(seed)
	out := make([]Branch, n)
	pc := uint64(0x400000)
	for i := range out {
		pc += uint64(r.Intn(64)) * 4
		if r.OneIn(8) {
			pc -= uint64(r.Intn(32)) * 4
		}
		out[i] = Branch{
			PC:    pc,
			Taken: r.Bool(),
			Instr: uint32(r.Intn(12)) + 1,
		}
	}
	return out
}

func TestMemTraceRoundTrip(t *testing.T) {
	recs := sampleRecords(100, 1)
	m := &Mem{TraceName: "sample", Records: recs}
	if m.Name() != "sample" {
		t.Fatalf("name = %q", m.Name())
	}
	got, err := Collect(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("collected %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestMemTraceReplayable(t *testing.T) {
	m := &Mem{TraceName: "x", Records: sampleRecords(50, 2)}
	a, _ := Collect(m)
	b, _ := Collect(m)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two passes differ at %d", i)
		}
	}
}

func TestReaderEOF(t *testing.T) {
	m := &Mem{TraceName: "e"}
	r := m.Open()
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty trace should EOF immediately, got %v", err)
	}
	// EOF must be sticky.
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("EOF should be sticky, got %v", err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleRecords(5000, 3)
	m := &Mem{TraceName: "roundtrip-трейс", Records: recs}
	var buf bytes.Buffer
	if err := WriteMem(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceName != m.TraceName {
		t.Fatalf("name %q != %q", got.TraceName, m.TraceName)
	}
	if len(got.Records) != len(recs) {
		t.Fatalf("count %d != %d", len(got.Records), len(recs))
	}
	for i := range recs {
		if got.Records[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got.Records[i], recs[i])
		}
	}
}

func TestBinaryRejectsZeroInstr(t *testing.T) {
	m := &Mem{TraceName: "bad", Records: []Branch{{PC: 4, Taken: true, Instr: 0}}}
	var buf bytes.Buffer
	if err := WriteMem(&buf, m); err == nil {
		t.Fatal("zero-instr record must be rejected")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOPE....")))
	if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	recs := sampleRecords(100, 4)
	var buf bytes.Buffer
	if err := WriteMem(&buf, &Mem{TraceName: "t", Records: recs}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 4, 5, 10, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestReadRejectsEmpty(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tbt")
	m := &Mem{TraceName: "file-trace", Records: sampleRecords(300, 5)}
	if err := WriteFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceName != "file-trace" || len(got.Records) != 300 {
		t.Fatalf("got %q/%d records", got.TraceName, len(got.Records))
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.tbt")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestMeasure(t *testing.T) {
	m := &Mem{TraceName: "m", Records: []Branch{
		{PC: 100, Taken: true, Instr: 5},
		{PC: 104, Taken: false, Instr: 3},
		{PC: 100, Taken: true, Instr: 2},
	}}
	s, err := Measure(m)
	if err != nil {
		t.Fatal(err)
	}
	if s.Branches != 3 || s.Taken != 2 || s.Instructions != 10 || s.UniquePCs != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinPC != 100 || s.MaxPC != 104 {
		t.Fatalf("pc range = [%d,%d]", s.MinPC, s.MaxPC)
	}
	if s.TakenRate() < 0.66 || s.TakenRate() > 0.67 {
		t.Fatalf("taken rate = %v", s.TakenRate())
	}
	if s.InstrPerBranch() != 10.0/3 {
		t.Fatalf("instr/branch = %v", s.InstrPerBranch())
	}
	if s.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestMeasureEmpty(t *testing.T) {
	s, err := Measure(&Mem{TraceName: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if s.TakenRate() != 0 || s.InstrPerBranch() != 0 {
		t.Fatalf("empty-trace rates should be 0: %+v", s)
	}
}

func TestLimit(t *testing.T) {
	m := &Mem{TraceName: "L", Records: sampleRecords(100, 6)}
	lt := Limit(m, 10)
	if lt.Name() != "L" {
		t.Fatalf("limited name = %q", lt.Name())
	}
	got, err := Collect(lt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("limited to %d records, want 10", len(got))
	}
	// Limit larger than trace yields the whole trace.
	got, _ = Collect(Limit(m, 1000))
	if len(got) != 100 {
		t.Fatalf("over-limit: got %d, want 100", len(got))
	}
	// Zero means unlimited and returns the original trace.
	if Limit(m, 0) != Trace(m) {
		t.Fatal("Limit(t, 0) should return t unchanged")
	}
}

func TestConcat(t *testing.T) {
	a := &Mem{TraceName: "a", Records: sampleRecords(5, 7)}
	b := &Mem{TraceName: "b", Records: sampleRecords(7, 8)}
	c := Concat("ab", a, b)
	if c.Name() != "ab" {
		t.Fatalf("concat name = %q", c.Name())
	}
	got, err := Collect(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("concat length = %d, want 12", len(got))
	}
	for i := 0; i < 5; i++ {
		if got[i] != a.Records[i] {
			t.Fatalf("prefix mismatch at %d", i)
		}
	}
	for i := 0; i < 7; i++ {
		if got[5+i] != b.Records[i] {
			t.Fatalf("suffix mismatch at %d", i)
		}
	}
}

func TestConcatEmptyParts(t *testing.T) {
	empty := &Mem{TraceName: "e"}
	b := &Mem{TraceName: "b", Records: sampleRecords(3, 9)}
	got, err := Collect(Concat("c", empty, b, empty))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d records, want 3", len(got))
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw % 500)
		recs := sampleRecords(n, seed)
		m := &Mem{TraceName: "q", Records: recs}
		var buf bytes.Buffer
		if err := WriteMem(&buf, m); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Records) != n {
			return false
		}
		for i := range recs {
			if got.Records[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDrainsReader(t *testing.T) {
	m := &Mem{TraceName: "drain", Records: sampleRecords(42, 10)}
	var buf bytes.Buffer
	n, err := Write(&buf, "drained", m.Open())
	if err != nil {
		t.Fatal(err)
	}
	if n != 42 {
		t.Fatalf("Write reported %d records, want 42", n)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceName != "drained" || len(got.Records) != 42 {
		t.Fatalf("got %q/%d", got.TraceName, len(got.Records))
	}
}

func BenchmarkBinaryWrite(b *testing.B) {
	m := &Mem{TraceName: "bench", Records: sampleRecords(10000, 11)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteMem(&buf, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	m := &Mem{TraceName: "bench", Records: sampleRecords(10000, 12)}
	var buf bytes.Buffer
	if err := WriteMem(&buf, m); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRecordCodecRoundTrip pins the exported per-record codec (the one
// definition shared by the file writer and the serve wire protocol):
// encode→decode is identity, consumed byte counts chain correctly, and
// the prevPC delta threading matches the file format.
func TestRecordCodecRoundTrip(t *testing.T) {
	records := sampleRecords(500, 77)
	var buf []byte
	prev := uint64(0)
	for _, r := range records {
		buf, prev = AppendRecord(buf, prev, r)
	}
	prev = 0
	for i, want := range records {
		got, n, newPrev, err := DecodeRecord(buf, prev)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		if newPrev != want.PC {
			t.Fatalf("record %d: prevPC %#x, want %#x", i, newPrev, want.PC)
		}
		buf, prev = buf[n:], newPrev
	}
	if len(buf) != 0 {
		t.Fatalf("%d bytes left over after decoding all records", len(buf))
	}
}

// TestDecodeRecordTruncated asserts every truncation of an encoded
// record errors with ErrBadFormat instead of panicking or decoding junk.
func TestDecodeRecordTruncated(t *testing.T) {
	enc, _ := AppendRecord(nil, 0, Branch{PC: 0x123456789, Taken: true, Instr: 300})
	for cut := 0; cut < len(enc); cut++ {
		if _, _, _, err := DecodeRecord(enc[:cut], 0); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation at %d: err = %v, want ErrBadFormat", cut, err)
		}
	}
	if got, n, _, err := DecodeRecord(enc, 0); err != nil || n != len(enc) ||
		got.PC != 0x123456789 || !got.Taken || got.Instr != 300 {
		t.Fatalf("full decode: %+v n=%d err=%v", got, n, err)
	}
}

// TestAppendRecordZeroInstr pins the codec's clamp: Instr 0 is not
// representable and encodes as 1 (the file writer rejects it earlier).
func TestAppendRecordZeroInstr(t *testing.T) {
	enc, _ := AppendRecord(nil, 0, Branch{PC: 4, Instr: 0})
	got, _, _, err := DecodeRecord(enc, 0)
	if err != nil || got.Instr != 1 {
		t.Fatalf("got %+v err=%v, want Instr 1", got, err)
	}
}
