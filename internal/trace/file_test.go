package trace

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeSample(t *testing.T, n int) (path string, recs []Branch) {
	t.Helper()
	recs = sampleRecords(n, 77)
	path = filepath.Join(t.TempDir(), "sample.tbt")
	if err := WriteFile(path, &Mem{TraceName: "streamed", Records: recs}); err != nil {
		t.Fatal(err)
	}
	return
}

func TestOpenFileStreamsIdenticalToReadFile(t *testing.T) {
	path, recs := writeSample(t, 4000)
	ft, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Name() != "streamed" {
		t.Fatalf("name = %q", ft.Name())
	}
	got, err := Collect(ft)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("streamed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestOpenFileReplayable(t *testing.T) {
	path, _ := writeSample(t, 500)
	ft, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := Collect(ft)
	b, _ := Collect(ft)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("passes differ at %d", i)
		}
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope.tbt")); err == nil {
		t.Fatal("missing file must fail eagerly")
	}
}

func TestOpenFileBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.tbt")
	if err := os.WriteFile(path, []byte("JUNKDATA"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("want ErrBadFormat, got %v", err)
	}
}

func TestOpenFileTruncatedBody(t *testing.T) {
	path, _ := writeSample(t, 300)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.tbt")
	if err := os.WriteFile(cut, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	ft, err := OpenFile(cut) // header intact: open succeeds
	if err != nil {
		t.Fatal(err)
	}
	r := ft.Open()
	var lastErr error
	for {
		_, err := r.Next()
		if err != nil {
			lastErr = err
			break
		}
	}
	if !errors.Is(lastErr, ErrBadFormat) {
		t.Fatalf("truncation should surface as ErrBadFormat, got %v", lastErr)
	}
}

func TestOpenFileEOFSticky(t *testing.T) {
	path, _ := writeSample(t, 5)
	ft, _ := OpenFile(path)
	r := ft.Open()
	for i := 0; i < 5; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Next(); !errors.Is(err, io.EOF) {
			t.Fatalf("want sticky EOF, got %v", err)
		}
	}
}

func TestOpenFileWorksWithLimit(t *testing.T) {
	path, _ := writeSample(t, 100)
	ft, _ := OpenFile(path)
	got, err := Collect(Limit(ft, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("limited stream = %d records", len(got))
	}
}

func TestOpenFileErrorSticky(t *testing.T) {
	// After a decode error closes the reader, further Next calls must
	// repeat the error — not panic on the released chunk buffer.
	path, _ := writeSample(t, 300)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.tbt")
	if err := os.WriteFile(cut, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	ft, err := OpenFile(cut)
	if err != nil {
		t.Fatal(err)
	}
	r := ft.Open()
	var lastErr error
	for {
		if _, lastErr = r.Next(); lastErr != nil {
			break
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Next(); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("retry %d: want sticky ErrBadFormat, got %v", i, err)
		}
	}
}

func TestLimitReleasesTruncatedFileReader(t *testing.T) {
	// Draining a limited file trace must release the inner reader's file
	// descriptor and pooled buffer even though the file was not read to
	// its natural EOF.
	path, _ := writeSample(t, 100)
	ft, _ := OpenFile(path)
	lt := Limit(ft, 10)
	r := lt.Open()
	lr, ok := r.(*limitReader)
	if !ok {
		t.Fatalf("limited reader has type %T", r)
	}
	fr, ok := lr.inner.(*fileReader)
	if !ok {
		t.Fatalf("inner reader has type %T", lr.inner)
	}
	for {
		if _, err := r.Next(); err != nil {
			break
		}
	}
	if !fr.closed {
		t.Fatal("inner fileReader still open after limited drain")
	}
	if fr.bufp != nil {
		t.Fatal("pooled buffer not returned after limited drain")
	}
	// The wrapper must drop its reference after the one release: a
	// released reader may be recycled into another Open of the same trace,
	// and a retained pointer would let a stale wrapper corrupt it.
	if lr.inner != nil {
		t.Fatalf("limitReader retained inner reader %T after release", lr.inner)
	}
}
