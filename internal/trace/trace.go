// Package trace defines the branch-trace model used by every simulator in
// this repository: a stream of conditional-branch records, each carrying the
// branch address, its outcome, and the number of dynamic instructions the
// record accounts for (the branch plus the non-branch instructions preceding
// it), so that misprediction rates can be reported per kilo-instruction
// (misp/KI) exactly as the paper does.
//
// The paper evaluates on the CBP-1 and CBP-2 championship trace sets, which
// are not redistributable; internal/workload provides deterministic
// synthetic Trace implementations standing in for them (see DESIGN.md §2).
// This package additionally provides a compact binary on-disk format so
// generated traces can be exported, inspected and re-read.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Branch is one dynamic conditional branch.
type Branch struct {
	// PC is the address of the branch instruction.
	PC uint64
	// Taken is the resolved direction.
	Taken bool
	// Instr is the number of dynamic instructions this record accounts for:
	// the branch itself plus the non-branch instructions executed since the
	// previous record. It is at least 1.
	Instr uint32
}

// Reader yields the records of one pass over a trace. Next returns io.EOF
// after the last record.
//
// A Reader holding releasable resources (an open file, pooled decode or
// generator state) may additionally implement Close(); Limit probes for
// it so truncated passes release those resources immediately instead of
// holding them until their natural EOF. A Reader must not be used again
// after Close or after it has returned io.EOF — its state may be
// recycled into the next Open of the same trace.
type Reader interface {
	Next() (Branch, error)
}

// Trace is a named, replayable branch trace: Open returns a fresh Reader
// positioned at the first record. Implementations must be deterministic —
// every Open yields the identical stream.
type Trace interface {
	Name() string
	Open() Reader
}

// Mem is an in-memory trace.
type Mem struct {
	TraceName string
	Records   []Branch
}

// Name implements Trace.
func (m *Mem) Name() string { return m.TraceName }

// Open implements Trace.
func (m *Mem) Open() Reader { return &memReader{records: m.Records} }

type memReader struct {
	records []Branch
	pos     int
}

func (r *memReader) Next() (Branch, error) {
	if r.pos >= len(r.records) {
		return Branch{}, io.EOF
	}
	b := r.records[r.pos]
	r.pos++
	return b, nil
}

// Collect reads an entire trace into memory. It is intended for tests and
// tools; simulation drivers should stream.
func Collect(t Trace) ([]Branch, error) {
	r := t.Open()
	var out []Branch
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
}

// Stats summarizes a branch stream.
type Stats struct {
	Branches     uint64
	Taken        uint64
	Instructions uint64
	UniquePCs    int
	MinPC, MaxPC uint64
}

// TakenRate returns the fraction of taken branches.
func (s Stats) TakenRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Taken) / float64(s.Branches)
}

// InstrPerBranch returns the mean dynamic instructions per branch record.
func (s Stats) InstrPerBranch() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Branches)
}

func (s Stats) String() string {
	return fmt.Sprintf("branches=%d taken=%.1f%% instr=%d (%.2f/branch) staticPCs=%d",
		s.Branches, 100*s.TakenRate(), s.Instructions, s.InstrPerBranch(), s.UniquePCs)
}

// Measure computes Stats for a trace in one streaming pass.
func Measure(t Trace) (Stats, error) {
	r := t.Open()
	var s Stats
	pcs := make(map[uint64]struct{})
	first := true
	for {
		b, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Stats{}, err
		}
		s.Branches++
		s.Instructions += uint64(b.Instr)
		if b.Taken {
			s.Taken++
		}
		pcs[b.PC] = struct{}{}
		if first || b.PC < s.MinPC {
			s.MinPC = b.PC
		}
		if first || b.PC > s.MaxPC {
			s.MaxPC = b.PC
		}
		first = false
	}
	s.UniquePCs = len(pcs)
	return s, nil
}

// Binary trace format ("TBT1"):
//
//	magic   [4]byte  "TBT1"
//	name    uvarint length + bytes
//	count   uvarint  number of records
//	records: per record
//	    pcDelta  svarint (signed delta from previous PC; first is from 0)
//	    packed   uvarint ((Instr-1) << 1 | taken)
//
// PC deltas compress well because synthetic programs revisit a small static
// footprint; Instr is almost always < 64 so packed fits in one byte.

var magic = [4]byte{'T', 'B', 'T', '1'}

// ErrBadFormat reports a malformed or truncated trace file.
var ErrBadFormat = errors.New("trace: bad file format")

// AppendRecord appends one branch record to dst in the TBT1 per-record
// encoding (pcDelta svarint relative to prevPC, then (Instr-1)<<1|taken
// uvarint) and returns the extended buffer plus the new previous PC. It
// is the single definition of the record codec, shared by the file
// writer and the serve wire protocol. Records with Instr == 0 are not
// representable; AppendRecord encodes them as Instr == 1.
//repro:hotpath
func AppendRecord(dst []byte, prevPC uint64, b Branch) ([]byte, uint64) {
	dst = binary.AppendVarint(dst, int64(b.PC)-int64(prevPC))
	instr := b.Instr
	if instr == 0 {
		instr = 1
	}
	packed := uint64(instr-1) << 1
	if b.Taken {
		packed |= 1
	}
	return binary.AppendUvarint(dst, packed), b.PC
}

// DecodeRecord decodes one branch record from src (the inverse of
// AppendRecord), returning the record, the number of bytes consumed and
// the new previous PC. A truncated or malformed record yields an
// ErrBadFormat-wrapped error and consumes nothing.
//repro:hotpath
func DecodeRecord(src []byte, prevPC uint64) (Branch, int, uint64, error) {
	delta, n := binary.Varint(src)
	if n <= 0 {
		return Branch{}, 0, prevPC, fmt.Errorf("%w: pc: truncated varint", ErrBadFormat) //repro:allow-alloc cold path: malformed record aborts the decode, allocation is fine
	}
	packed, n2 := binary.Uvarint(src[n:])
	if n2 <= 0 {
		return Branch{}, 0, prevPC, fmt.Errorf("%w: packed: truncated varint", ErrBadFormat) //repro:allow-alloc cold path: malformed record aborts the decode, allocation is fine
	}
	pc := uint64(int64(prevPC) + delta)
	b := Branch{PC: pc, Taken: packed&1 == 1, Instr: uint32(packed>>1) + 1}
	return b, n + n2, pc, nil
}

// Write serializes a record stream to w. The record count must be known up
// front, so Write drains the given Reader fully.
func Write(w io.Writer, name string, r Reader) (n uint64, err error) {
	var records []Branch
	for {
		b, e := r.Next()
		if errors.Is(e, io.EOF) {
			break
		}
		if e != nil {
			return 0, e
		}
		records = append(records, b)
	}
	return uint64(len(records)), writeRecords(w, name, records)
}

// WriteMem serializes an in-memory trace to w.
func WriteMem(w io.Writer, m *Mem) error {
	return writeRecords(w, m.TraceName, m.Records)
}

func writeRecords(w io.Writer, name string, records []Branch) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(len(name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	if err := put(uint64(len(records))); err != nil {
		return err
	}
	prevPC := uint64(0)
	var rec [2 * binary.MaxVarintLen64]byte
	for _, r := range records {
		if r.Instr == 0 {
			return fmt.Errorf("trace: record with zero instruction count at pc %#x", r.PC)
		}
		var enc []byte
		enc, prevPC = AppendRecord(rec[:0], prevPC, r)
		if _, err := bw.Write(enc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a serialized trace fully into memory.
func Read(r io.Reader) (*Mem, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m[:])
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: name length: %v", ErrBadFormat, err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: unreasonable name length %d", ErrBadFormat, nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrBadFormat, err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadFormat, err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: unreasonable record count %d", ErrBadFormat, count)
	}
	// The count field is attacker-controlled until the records back it up:
	// cap the up-front reservation so a hostile header cannot demand gigabytes
	// before a single record parses. Larger traces grow via append, which
	// only commits memory the stream has actually delivered.
	reserve := min(count, 1<<20)
	out := &Mem{TraceName: string(nameBuf), Records: make([]Branch, 0, reserve)}
	prevPC := uint64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d pc: %v", ErrBadFormat, i, err)
		}
		pc := uint64(int64(prevPC) + delta)
		prevPC = pc
		packed, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d packed: %v", ErrBadFormat, i, err)
		}
		out.Records = append(out.Records, Branch{
			PC:    pc,
			Taken: packed&1 == 1,
			Instr: uint32(packed>>1) + 1,
		})
	}
	return out, nil
}

// WriteFile serializes a trace to the named file.
func WriteFile(path string, t Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := Write(f, t.Name(), t.Open()); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile loads a trace file written by WriteFile.
func ReadFile(path string) (*Mem, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// OpenFile returns a Trace backed by a file without loading it into
// memory: each Open re-reads the file, decoding records on demand. The
// header is validated eagerly so a malformed file fails at OpenFile time.
func OpenFile(path string) (Trace, error) {
	ft := &fileTrace{path: path}
	r, err := ft.open()
	if err != nil {
		return nil, err
	}
	ft.name = r.name
	return ft, nil
}

type fileTrace struct {
	path string
	name string
}

func (t *fileTrace) Name() string { return t.name }

// Open implements Trace. Errors opening the file surface through the
// first Next call.
func (t *fileTrace) Open() Reader {
	r, err := t.open()
	if err != nil {
		return errReader{err}
	}
	return r
}

// fileBufSize is the chunk size of the streaming file decoder. 64 KiB
// amortizes syscalls well while staying cache-resident.
const fileBufSize = 64 * 1024

// fileBufPool recycles decode chunks across Opens, so repeated passes over
// file traces (suite re-runs, parallel workers) allocate no new buffers in
// steady state.
var fileBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, fileBufSize)
		return &b
	},
}

func (t *fileTrace) open() (*fileReader, error) {
	f, err := os.Open(t.path)
	if err != nil {
		return nil, err
	}
	bp := fileBufPool.Get().(*[]byte)
	r := &fileReader{f: f, bufp: bp, buf: *bp}
	fail := func(err error) (*fileReader, error) {
		r.close()
		return nil, err
	}
	var m [4]byte
	if err := r.readFull(m[:]); err != nil {
		return fail(fmt.Errorf("%w: %v", ErrBadFormat, err))
	}
	if m != magic {
		return fail(fmt.Errorf("%w: bad magic %q", ErrBadFormat, m[:]))
	}
	nameLen, err := r.uvarint()
	if err != nil || nameLen > 1<<16 {
		return fail(fmt.Errorf("%w: name length", ErrBadFormat))
	}
	nameBuf := make([]byte, nameLen)
	if err := r.readFull(nameBuf); err != nil {
		return fail(fmt.Errorf("%w: name: %v", ErrBadFormat, err))
	}
	count, err := r.uvarint()
	if err != nil {
		return fail(fmt.Errorf("%w: count: %v", ErrBadFormat, err))
	}
	r.name = string(nameBuf)
	r.left = count
	return r, nil
}

type errReader struct{ err error }

func (e errReader) Next() (Branch, error) { return Branch{}, e.err }

// fileReader streams records out of a trace file through a reusable chunk
// buffer, decoding varints directly from the chunk (no per-byte interface
// calls, no per-record allocations).
type fileReader struct {
	f      *os.File
	name   string
	left   uint64
	prevPC uint64

	buf      []byte
	bufp     *[]byte // pooled backing array, returned on close
	pos, end int
	eof      bool
	closed   bool
	err      error // sticky result returned by every Next after close
}

// refill slides the unread tail to the front of the chunk and fills the
// rest from the file.
func (r *fileReader) refill() error {
	if r.pos > 0 {
		copy(r.buf, r.buf[r.pos:r.end])
		r.end -= r.pos
		r.pos = 0
	}
	for r.end < len(r.buf) && !r.eof {
		n, err := r.f.Read(r.buf[r.end:])
		r.end += n
		if err == io.EOF || (err == nil && n == 0) {
			r.eof = true
			break
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// readFull copies len(p) bytes out of the stream (header fields only).
func (r *fileReader) readFull(p []byte) error {
	for len(p) > 0 {
		if r.pos == r.end {
			if r.eof {
				return io.ErrUnexpectedEOF
			}
			if err := r.refill(); err != nil {
				return err
			}
			continue
		}
		n := copy(p, r.buf[r.pos:r.end])
		r.pos += n
		p = p[n:]
	}
	return nil
}

// uvarint decodes one unsigned varint from the chunk, refilling if the
// remaining window could truncate it.
func (r *fileReader) uvarint() (uint64, error) {
	if r.end-r.pos < binary.MaxVarintLen64 && !r.eof {
		if err := r.refill(); err != nil {
			return 0, err
		}
	}
	v, n := binary.Uvarint(r.buf[r.pos:r.end])
	if n <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	r.pos += n
	return v, nil
}

// Next implements Reader, decoding one record; the underlying file closes
// automatically at EOF or on the first decode error, and every later Next
// repeats that final result.
func (r *fileReader) Next() (Branch, error) {
	if r.closed {
		return Branch{}, r.err
	}
	if r.left == 0 {
		r.fail(io.EOF)
		return Branch{}, io.EOF
	}
	// One refill check covers both varints of the record.
	if r.end-r.pos < 2*binary.MaxVarintLen64 && !r.eof {
		if err := r.refill(); err != nil {
			return Branch{}, r.fail(fmt.Errorf("%w: read: %v", ErrBadFormat, err))
		}
	}
	b, n, pc, err := DecodeRecord(r.buf[r.pos:r.end], r.prevPC)
	if err != nil {
		return Branch{}, r.fail(err)
	}
	r.pos += n
	r.prevPC = pc
	r.left--
	return b, nil
}

// fail closes the reader with a sticky result and returns it.
func (r *fileReader) fail(err error) error {
	if !r.closed {
		r.closed = true
		r.err = err
		r.pos, r.end = 0, 0
		r.f.Close()
		if r.bufp != nil {
			fileBufPool.Put(r.bufp)
			r.buf, r.bufp = nil, nil
		}
	}
	return r.err
}

// close releases the reader early (limit truncation); later Nexts see EOF.
func (r *fileReader) close() { r.fail(io.EOF) }

// Close implements the exported release hook Limit probes for. (The
// unexported close above remains for package-internal error paths; an
// unexported method could never satisfy a cross-package interface probe.)
func (r *fileReader) Close() { r.close() }

// Limit wraps a trace, truncating every pass after max records. A max of 0
// means no limit. It is how experiment harnesses run shortened simulations.
func Limit(t Trace, max uint64) Trace {
	if max == 0 {
		return t
	}
	return &limited{inner: t, max: max}
}

type limited struct {
	inner Trace
	max   uint64
}

func (l *limited) Name() string { return l.inner.Name() }

func (l *limited) Open() Reader { return &limitReader{inner: l.inner.Open(), left: l.max} }

type limitReader struct {
	inner Reader
	left  uint64
	err   error // sticky result repeated once the inner reader is released
}

// Close releases the wrapped reader early (abandoned passes — e.g. a
// serving client whose session died mid-replay). Safe after EOF or a
// prior Close: the wrapper has already dropped its inner reference by
// then, so a recycled reader can never be touched.
func (r *limitReader) Close() {
	if r.inner == nil {
		return
	}
	if c, ok := r.inner.(interface{ Close() }); ok {
		c.Close()
	}
	r.inner, r.err = nil, io.EOF
}

func (r *limitReader) Next() (Branch, error) {
	if r.inner == nil {
		return Branch{}, r.err
	}
	if r.left == 0 {
		// Release resources held by truncated inner readers (file
		// descriptor, pooled decode buffer, recycled generator state) that
		// would otherwise only be freed when drained to their natural EOF.
		if c, ok := r.inner.(interface{ Close() }); ok {
			c.Close()
		}
		r.inner, r.err = nil, io.EOF
		return Branch{}, io.EOF
	}
	b, err := r.inner.Next()
	if err != nil {
		// The inner reader finished on its own (natural EOF or a sticky
		// decode error) and may already have recycled itself into another
		// Open of the same trace; drop the reference on this path too so
		// the wrapper can never touch a reader live in another pass.
		r.inner, r.err = nil, err
		return b, err
	}
	r.left--
	return b, nil
}

// Concat returns a trace that replays the given traces back to back under
// one name. It is used to build multi-phase workloads in tests.
func Concat(name string, traces ...Trace) Trace {
	return &concat{name: name, traces: traces}
}

type concat struct {
	name   string
	traces []Trace
}

func (c *concat) Name() string { return c.name }

func (c *concat) Open() Reader {
	return &concatReader{traces: c.traces}
}

type concatReader struct {
	traces []Trace
	idx    int
	cur    Reader
}

func (r *concatReader) Next() (Branch, error) {
	for {
		if r.cur == nil {
			if r.idx >= len(r.traces) {
				return Branch{}, io.EOF
			}
			r.cur = r.traces[r.idx].Open()
			r.idx++
		}
		b, err := r.cur.Next()
		if errors.Is(err, io.EOF) {
			r.cur = nil
			continue
		}
		return b, err
	}
}
