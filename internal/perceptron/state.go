// Snapshot codec for the perceptron predictor: the weight table plus
// the ±1 global-history shift register. History values are packed one
// bit per entry; the initial 0 state and +1 are both encoded as 1,
// which is behaviorally exact because every consumer tests `>= 0`.
// lastSum is per-prediction scratch, dead at snapshot cut points.
package perceptron

import (
	"encoding/binary"
	"fmt"

	"repro/internal/statecodec"
)

// AppendState appends the weight table and history to dst.
func (p *Predictor) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.weights)))
	dst = binary.AppendUvarint(dst, uint64(p.histLen))
	for _, row := range p.weights {
		for _, w := range row {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(w))
		}
	}
	packed := make([]byte, (p.histLen+7)/8)
	for i, h := range p.ghist {
		if h >= 0 {
			packed[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return append(dst, packed...)
}

// RestoreState reads state written by AppendState into p, validating
// the recorded geometry against p's configuration.
func (p *Predictor) RestoreState(r *statecodec.Reader) error {
	n := r.Uvarint()
	hl := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(p.weights)) || hl != uint64(p.histLen) {
		return fmt.Errorf("%w: perceptron geometry %dx%d, want %dx%d",
			statecodec.ErrCorrupt, n, hl, len(p.weights), p.histLen)
	}
	raw := r.Bytes(len(p.weights) * (p.histLen + 1) * 2)
	packed := r.Bytes((p.histLen + 7) / 8)
	if err := r.Err(); err != nil {
		return err
	}
	off := 0
	for _, row := range p.weights {
		for i := range row {
			row[i] = int16(binary.LittleEndian.Uint16(raw[off:]))
			off += 2
		}
	}
	for i := range p.ghist {
		if packed[i/8]>>(uint(i)%8)&1 != 0 {
			p.ghist[i] = 1
		} else {
			p.ghist[i] = -1
		}
	}
	return nil
}
