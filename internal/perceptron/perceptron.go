// Package perceptron implements the global-history perceptron branch
// predictor (Jiménez & Lin, HPCA 2001) together with its storage-free
// self-confidence estimate: the magnitude of the perceptron output sum
// relative to the training threshold θ grades how confident the prediction
// is (Jiménez & Lin TR 02-14; Akkary et al., HPCA 2004).
//
// The paper's related-work section cites this self-confidence scheme as the
// neural-predictor analogue of what it builds for TAGE; this package lets
// the benchmark harness compare the two directly.
package perceptron

import (
	"fmt"
)

// Predictor is a PC-indexed table of perceptrons over the global branch
// history.
type Predictor struct {
	weights [][]int16 // [entry][histLen+1], index 0 is the bias weight
	mask    uint64 //repro:derived from logSize at construction
	histLen int
	theta   int32 //repro:derived fixed by histLen (θ = ⌊1.93·h + 14⌋)
	ghist   []int8 // +1 taken, -1 not-taken; ghist[0] = most recent
	lastSum int32 //repro:derived per-prediction scratch
}

// New returns a perceptron predictor with 2^logSize perceptrons over
// histLen history bits. The training threshold uses the authors' rule
// θ = ⌊1.93·h + 14⌋.
func New(logSize uint, histLen int) *Predictor {
	if logSize == 0 || logSize > 24 {
		panic(fmt.Sprintf("perceptron: unreasonable logSize %d", logSize))
	}
	if histLen < 1 || histLen > 1024 {
		panic(fmt.Sprintf("perceptron: unreasonable history length %d", histLen))
	}
	n := 1 << logSize
	w := make([][]int16, n)
	for i := range w {
		w[i] = make([]int16, histLen+1)
	}
	return &Predictor{
		weights: w,
		mask:    uint64(n - 1),
		histLen: histLen,
		theta:   int32(1.93*float64(histLen) + 14),
		ghist:   make([]int8, histLen),
	}
}

//repro:hotpath
func (p *Predictor) index(pc uint64) uint64 { return (pc >> 2) & p.mask }

// sum computes the perceptron output for pc under the current history.
//repro:hotpath
func (p *Predictor) sum(pc uint64) int32 {
	w := p.weights[p.index(pc)]
	s := int32(w[0])
	for i := 0; i < p.histLen; i++ {
		if p.ghist[i] >= 0 {
			s += int32(w[i+1])
		} else {
			s -= int32(w[i+1])
		}
	}
	return s
}

// Predict returns the predicted direction for pc and records the output sum
// for the subsequent Update/Confidence calls.
//repro:hotpath
func (p *Predictor) Predict(pc uint64) bool {
	p.lastSum = p.sum(pc)
	return p.lastSum >= 0
}

// LastSum returns the output sum computed by the most recent Predict.
//repro:hotpath
func (p *Predictor) LastSum() int32 { return p.lastSum }

// Theta returns the training threshold θ.
func (p *Predictor) Theta() int32 { return p.theta }

// HighConfidence reports the self-confidence estimate for the most recent
// prediction: |sum| at or above the training threshold. About one third of
// low-confidence predictions are mispredicted on the O-GEHL-style
// predictors evaluated in the literature.
//repro:hotpath
func (p *Predictor) HighConfidence() bool {
	s := p.lastSum
	if s < 0 {
		s = -s
	}
	return s >= p.theta
}

const weightMax = 127
const weightMin = -128

// Update trains the perceptron (on misprediction or weak sum) and shifts
// the outcome into the history. Must be called after Predict for the same
// branch.
//repro:hotpath
func (p *Predictor) Update(pc uint64, taken bool) {
	predTaken := p.lastSum >= 0
	mag := p.lastSum
	if mag < 0 {
		mag = -mag
	}
	if predTaken != taken || mag <= p.theta {
		w := p.weights[p.index(pc)]
		t := int16(-1)
		if taken {
			t = 1
		}
		w[0] = clampWeight(w[0] + t)
		for i := 0; i < p.histLen; i++ {
			x := int16(-1)
			if p.ghist[i] >= 0 {
				x = 1
			}
			// Increment when outcome agrees with history bit, else decrement.
			w[i+1] = clampWeight(w[i+1] + t*x)
		}
	}
	// Shift history.
	copy(p.ghist[1:], p.ghist)
	if taken {
		p.ghist[0] = 1
	} else {
		p.ghist[0] = -1
	}
}

//repro:hotpath
func clampWeight(v int16) int16 {
	if v > weightMax {
		return weightMax
	}
	if v < weightMin {
		return weightMin
	}
	return v
}

// StorageBits returns the weight-table storage in bits (8 bits per weight).
func (p *Predictor) StorageBits() int {
	return len(p.weights) * (p.histLen + 1) * 8
}
