package perceptron

import (
	"testing"

	"repro/internal/workload"
)

func runTrace(p *Predictor, prog *workload.Program, skip int) (miss, total int) {
	r := prog.Open()
	n := 0
	for {
		br, err := r.Next()
		if err != nil {
			break
		}
		pred := p.Predict(br.PC)
		if n >= skip && pred != br.Taken {
			miss++
		}
		p.Update(br.PC, br.Taken)
		n++
	}
	return miss, n - skip
}

func TestLearnsLinearlySeparablePattern(t *testing.T) {
	// Outcome = previous outcome (lag-1 correlation) is linearly separable:
	// a perceptron must learn it near-perfectly.
	prog := workload.NewBuilder("corr", 3).SetLength(20000).
		Block(1, 1, 1,
			workload.S(workload.Biased{P: 0.5}),
			workload.S(workload.Correlated{Lags: []int{1}}),
		).
		MustBuild()
	p := New(10, 16)
	miss, total := runTrace(p, prog, 2000)
	rate := float64(miss) / float64(total)
	// Half the branches are pure noise (~50% miss), the correlated half
	// should be ~0: overall well under 35%.
	if rate > 0.35 {
		t.Fatalf("miss rate %.3f, want < 0.35", rate)
	}
}

func TestLearnsBias(t *testing.T) {
	prog := workload.NewBuilder("bias", 4).SetLength(10000).
		Block(1, 1, 1, workload.S(workload.Biased{P: 0.95})).
		MustBuild()
	p := New(8, 12)
	miss, total := runTrace(p, prog, 500)
	rate := float64(miss) / float64(total)
	if rate > 0.09 {
		t.Fatalf("miss rate %.3f on 0.95-biased branch", rate)
	}
}

func TestThetaRule(t *testing.T) {
	p := New(8, 32)
	h := 32.0
	want := int32(1.93*h + 14)
	if p.Theta() != want {
		t.Fatalf("theta = %d, want %d", p.Theta(), want)
	}
}

func TestConfidenceTracksSumMagnitude(t *testing.T) {
	p := New(8, 8)
	pc := uint64(0x400100)
	// Cold predictor: sum 0, low confidence.
	p.Predict(pc)
	if p.HighConfidence() {
		t.Fatal("cold prediction must be low confidence")
	}
	// Train hard on always-taken; sum must exceed theta eventually.
	for i := 0; i < 500; i++ {
		p.Predict(pc)
		p.Update(pc, true)
	}
	p.Predict(pc)
	if !p.HighConfidence() {
		t.Fatalf("sum %d after heavy training, theta %d: want high confidence",
			p.LastSum(), p.Theta())
	}
}

func TestSelfConfidenceSeparatesMispredictions(t *testing.T) {
	// On a mixed workload, the misprediction rate of low-confidence
	// predictions must exceed that of high-confidence ones (the property
	// the related work relies on).
	prog := workload.NewBuilder("mix", 5).SetLength(60000).
		Block(3, 1, 2,
			workload.S(workload.Biased{P: 0.55}),
			workload.S(workload.Const{Taken: true}),
		).
		Block(3, 2, 5,
			workload.S(workload.Pattern{Bits: []bool{true, false, true, true}}),
			workload.S(workload.Biased{P: 0.9}),
		).
		MustBuild()
	p := New(10, 16)
	r := prog.Open()
	var hiMiss, hiTot, loMiss, loTot int
	n := 0
	for {
		br, err := r.Next()
		if err != nil {
			break
		}
		pred := p.Predict(br.PC)
		if n > 5000 {
			if p.HighConfidence() {
				hiTot++
				if pred != br.Taken {
					hiMiss++
				}
			} else {
				loTot++
				if pred != br.Taken {
					loMiss++
				}
			}
		}
		p.Update(br.PC, br.Taken)
		n++
	}
	if hiTot == 0 || loTot == 0 {
		t.Fatalf("degenerate confidence split: hi=%d lo=%d", hiTot, loTot)
	}
	hiRate := float64(hiMiss) / float64(hiTot)
	loRate := float64(loMiss) / float64(loTot)
	if loRate <= hiRate {
		t.Fatalf("low-confidence rate %.3f should exceed high-confidence rate %.3f", loRate, hiRate)
	}
}

func TestWeightsClamped(t *testing.T) {
	p := New(4, 4)
	pc := uint64(0x100)
	for i := 0; i < 1000; i++ {
		p.Predict(pc)
		p.Update(pc, true)
	}
	for _, w := range p.weights[p.index(pc)] {
		if w > weightMax || w < weightMin {
			t.Fatalf("weight %d escaped clamp", w)
		}
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	cases := []struct {
		logSize uint
		histLen int
	}{{0, 8}, {25, 8}, {8, 0}, {8, 2000}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", c.logSize, c.histLen)
				}
			}()
			New(c.logSize, c.histLen)
		}()
	}
}

func TestStorageBits(t *testing.T) {
	p := New(6, 15)
	want := 64 * 16 * 8
	if p.StorageBits() != want {
		t.Fatalf("storage = %d, want %d", p.StorageBits(), want)
	}
}

func BenchmarkPredictUpdate(b *testing.B) {
	p := New(10, 32)
	for i := 0; i < b.N; i++ {
		pc := uint64(i*13) & 0xFFFF
		_ = p.Predict(pc)
		p.Update(pc, i&3 != 0)
	}
}
