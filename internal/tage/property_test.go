package tage

import (
	"testing"
	"testing/quick"

	"repro/internal/counter"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// checkStateInvariants verifies every architectural-state bound the
// hardware would enforce by construction.
func checkStateInvariants(t *testing.T, p *Predictor) {
	t.Helper()
	cfg := p.Config()
	ctrMin, ctrMax := counter.SignedMin(cfg.CtrBits), counter.SignedMax(cfg.CtrBits)
	uMax := uint8(1<<cfg.UBits) - 1
	tagMax := uint16(1<<cfg.TagBits) - 1
	for j, e := range p.entries {
		ti := j >> p.taggedLog
		if ctr := entryCtr(e); ctr < ctrMin || ctr > ctrMax {
			t.Fatalf("table %d: ctr %d out of [%d,%d]", ti, ctr, ctrMin, ctrMax)
		}
		if u := entryU(e); u > uMax {
			t.Fatalf("table %d: u %d out of range", ti, u)
		}
		if tag := entryTag(e); tag > tagMax {
			t.Fatalf("table %d: tag %#x exceeds %d bits", ti, tag, cfg.TagBits)
		}
	}
	if v := p.UseAltOnNA(); v < -8 || v > 7 {
		t.Fatalf("USE_ALT_ON_NA %d out of 4-bit range", v)
	}
}

func TestQuickStateInvariantsUnderRandomStreams(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%4000) + 500
		p := New(Small16K())
		r := xrand.New(seed)
		pcs := make([]uint64, 16)
		for i := range pcs {
			pcs[i] = 0x400000 + uint64(r.Intn(1<<14))*4
		}
		for i := 0; i < n; i++ {
			pc := pcs[r.Intn(len(pcs))]
			p.Predict(pc)
			p.Update(pc, r.Bool())
		}
		cfg := p.Config()
		ctrMin, ctrMax := counter.SignedMin(cfg.CtrBits), counter.SignedMax(cfg.CtrBits)
		for _, e := range p.entries {
			if ctr := entryCtr(e); ctr < ctrMin || ctr > ctrMax || entryU(e) > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestStateInvariantsAfterSuiteTrace(t *testing.T) {
	for _, cfg := range StandardConfigs() {
		p := New(cfg)
		tr, _ := workload.ByName("213.javac")
		runOn(p, tr, 60000)
		checkStateInvariants(t, p)
	}
}

func TestStateInvariantsWithProbabilisticAutomaton(t *testing.T) {
	cfg := Medium64K()
	p := NewWithAutomaton(cfg, counter.NewProbabilistic(7, counter.DefaultDenomLog))
	tr, _ := workload.ByName("175.vpr")
	runOn(p, tr, 60000)
	checkStateInvariants(t, p)
}

func TestIndicesAndTagsWithinRange(t *testing.T) {
	p := New(Large256K())
	r := xrand.New(5)
	// Push random history and verify index/tag ranges at every step.
	for i := 0; i < 3000; i++ {
		pc := uint64(r.Uint32()) &^ 3
		for bank := 1; bank <= p.numTables; bank++ {
			idx := p.tableIndex(pc, bank)
			if idx >= uint32(1)<<p.cfg.TaggedLog {
				t.Fatalf("index %d out of range for bank %d", idx, bank)
			}
			tag := p.tableTag(pc, bank)
			if tag >= 1<<p.cfg.TagBits {
				t.Fatalf("tag %#x out of range", tag)
			}
		}
		p.Predict(pc)
		p.Update(pc, r.Bool())
	}
}

func TestUsedAltImpliesAltPrediction(t *testing.T) {
	p := New(Small16K())
	tr, _ := workload.ByName("INT-4")
	r := trace.Limit(tr, 80000).Open()
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		obs := p.Predict(b.PC)
		if obs.UsedAlt && obs.Pred != obs.AltPred {
			t.Fatal("UsedAlt implies the final prediction equals altpred")
		}
		p.Update(b.PC, b.Taken)
	}
}

func TestDifferentSeedsDifferentAllocation(t *testing.T) {
	// The allocation tie-break is randomized; different predictor seeds
	// must be able to produce different misprediction counts on a stream
	// with allocation pressure (sanity check that the seed is wired in).
	cfgA := Small16K()
	cfgB := Small16K()
	cfgB.Seed = cfgA.Seed + 1
	tr, _ := workload.ByName("SERV-3")
	a := New(cfgA)
	b := New(cfgB)
	ma, _, _ := runOn(a, tr, 50000)
	mb, _, _ := runOn(b, tr, 50000)
	if ma == mb {
		t.Log("identical misprediction counts across seeds (possible but unusual)")
	}
	// Accuracy must be in the same band regardless of seed.
	diff := float64(ma) - float64(mb)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05*float64(ma) {
		t.Fatalf("seed changed accuracy too much: %d vs %d", ma, mb)
	}
}

func TestPredictIsReadOnly(t *testing.T) {
	// Predicting the same branch repeatedly without updates must not
	// change the prediction (no speculative state updates in this
	// trace-driven model).
	p := New(Small16K())
	tr, _ := workload.ByName("FP-3")
	r := trace.Limit(tr, 2000).Open()
	for {
		b, err := r.Next()
		if err != nil {
			break
		}
		first := p.Predict(b.PC)
		for i := 0; i < 3; i++ {
			again := p.Predict(b.PC)
			if again != first {
				t.Fatal("repeated Predict changed the observation")
			}
		}
		p.Update(b.PC, b.Taken)
	}
}

func TestColdPredictorObservation(t *testing.T) {
	p := New(Small16K())
	obs := p.Predict(0x400504)
	if obs.Tagged() {
		t.Fatal("cold predictor with non-zero tag must miss the tagged tables")
	}
	if obs.Pred != false {
		t.Fatal("cold bimodal predicts not-taken")
	}
	if obs.BimCtr != counter.BimodalWeakNotTaken {
		t.Fatalf("cold bimodal counter = %d", obs.BimCtr)
	}
	p.Update(0x400504, true)
}

func TestStatsSnapshot(t *testing.T) {
	p := New(Small16K())
	// Cold predictor: nothing live, useful or saturated.
	for _, s := range p.Stats() {
		if s.LiveEntries != 0 || s.UsefulEntries != 0 || s.SaturatedEntries != 0 {
			t.Fatalf("cold stats not empty: %+v", s)
		}
	}
	tr, _ := workload.ByName("INT-2")
	runOn(p, tr, 60000)
	stats := p.Stats()
	if len(stats) != p.Config().NumTables() {
		t.Fatalf("stats for %d tables, want %d", len(stats), p.Config().NumTables())
	}
	totalLive, totalSat := 0, 0
	for i, s := range stats {
		if s.HistLen != p.Config().HistLengths[i] {
			t.Fatalf("table %d HistLen %d, want %d", i, s.HistLen, p.Config().HistLengths[i])
		}
		if s.LiveEntries > p.TaggedEntries() || s.SaturatedEntries > s.LiveEntries {
			t.Fatalf("inconsistent stats: %+v", s)
		}
		totalLive += s.LiveEntries
		totalSat += s.SaturatedEntries
	}
	if totalLive == 0 {
		t.Fatal("no live entries after a 60k-branch run")
	}
	if totalSat == 0 {
		t.Fatal("no saturated entries after a 60k-branch run (standard automaton)")
	}
}

func TestHistoryLengthsAffectBehavior(t *testing.T) {
	// A predictor with max history 80 cannot learn a trip-200 loop, while
	// the 300-history configuration can: the capacity/history mechanics
	// the configurations are built around.
	prog := workload.NewBuilder("t200", 77).SetLength(120000).
		Block(1, 1, 1, workload.S(workload.Loop{Trip: 200})).
		MustBuild()
	small := New(Small16K())
	missS, n, _ := runOn(small, prog, 0)
	large := New(Large256K())
	missL, _, _ := runOn(large, prog, 0)
	rateS := float64(missS) / float64(n)
	rateL := float64(missL) / float64(n)
	if rateL > rateS/3 {
		t.Fatalf("300-bit history should crush trip-200 (%f vs %f)", rateL, rateS)
	}
}
