package tage

// Packed one-word tagged-table entry layout. Each entry folds the three
// per-entry fields — partial tag, signed prediction counter, useful
// counter — into a single uint32, the way hardware TAGE implementations
// lay one entry out as one SRAM word:
//
//	bits  0..15  tag  (Config.TagBits <= 16, stored right-aligned)
//	bits 16..21  ctr  (two's complement; Config.CtrBits <= 6)
//	bits 22..25  u    (Config.UBits <= 4)
//	bits 26..31  unused
//
// The field widths are the maxima Config.Validate admits, so every legal
// configuration fits without per-config shift tables. A tagged-table
// probe therefore costs one 32-bit load where the previous
// structure-of-arrays layout (separate ctr/tag/u slices) cost three
// loads from three cache lines.
const (
	entryTagBits = 16
	entryCtrBits = 6
	entryUBits   = 4

	entryCtrShift = entryTagBits
	entryUShift   = entryTagBits + entryCtrBits

	entryCtrMask uint32 = (1<<entryCtrBits - 1) << entryCtrShift
	entryUMask   uint32 = (1<<entryUBits - 1) << entryUShift
)

// packEntry assembles an entry word. ctr is masked to its two's
// complement field; tag and u are assumed in range (tag is computed
// under tagMask, u under the UBits saturation bound).
//repro:hotpath
func packEntry(tag uint16, ctr int8, u uint8) uint32 {
	return uint32(tag) |
		uint32(ctr)&(1<<entryCtrBits-1)<<entryCtrShift |
		uint32(u)<<entryUShift
}

// entryTag extracts the stored partial tag.
//repro:hotpath
func entryTag(e uint32) uint16 { return uint16(e) }

// entryCtr extracts the prediction counter, sign-extending the 6-bit
// field to int8.
//repro:hotpath
func entryCtr(e uint32) int8 {
	return int8(uint8(e>>entryCtrShift)<<(8-entryCtrBits)) >> (8 - entryCtrBits)
}

// entryU extracts the useful counter.
//repro:hotpath
func entryU(e uint32) uint8 { return uint8(e>>entryUShift) & (1<<entryUBits - 1) }

// entrySetCtr returns e with the prediction counter replaced.
//repro:hotpath
func entrySetCtr(e uint32, ctr int8) uint32 {
	return e&^entryCtrMask | uint32(ctr)&(1<<entryCtrBits-1)<<entryCtrShift
}

// entrySetU returns e with the useful counter replaced.
//repro:hotpath
func entrySetU(e uint32, u uint8) uint32 {
	return e&^entryUMask | uint32(u)<<entryUShift
}

// entryAgeU returns e with the useful counter aged one bit right — the
// periodic graceful-reset transform. Shifting the whole u field right
// inside the word and re-masking drops the bit that crosses into the ctr
// field, which is exactly u >>= 1.
//repro:hotpath
func entryAgeU(e uint32) uint32 {
	return e&^entryUMask | (e&entryUMask)>>1&entryUMask
}
