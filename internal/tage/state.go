// Snapshot codec for the TAGE predictor. Because the whole predictor
// lives in one packed arena (bimodal words + one-word tagged entries),
// the bulk of the state is a single length-prefixed word copy; the rest
// is the folded-history registers, the global/path history, the
// USE_ALT_ON_NA counter, the aging tick and the allocation RNG stream.
// Per-prediction scratch (lastObs, pos, tagc, ...) is dead between a
// resolved Update and the next Predict — the only points snapshots are
// taken at — so it is not serialized; RestoreState clears it.
package tage

import (
	"encoding/binary"
	"fmt"

	"repro/internal/statecodec"
)

// AppendState appends the predictor's mutable state to dst.
func (p *Predictor) AppendState(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(p.arena)))
	for _, w := range p.arena {
		dst = binary.LittleEndian.AppendUint32(dst, w)
	}
	// Three folded registers per table, written as one flat count so the
	// byte stream is unchanged from when folds was a flat slice.
	dst = binary.AppendUvarint(dst, uint64(3*len(p.folds)))
	for i := range p.folds {
		f := &p.folds[i]
		dst = binary.AppendUvarint(dst, uint64(f.idx.Value()))
		dst = binary.AppendUvarint(dst, uint64(f.tag.Value()))
		dst = binary.AppendUvarint(dst, uint64(f.tag2.Value()))
	}
	dst = p.ghist.AppendState(dst)
	dst = binary.AppendUvarint(dst, uint64(p.phist.Value()))
	dst = binary.AppendVarint(dst, int64(p.useAltOnNA))
	dst = binary.AppendUvarint(dst, p.tick)
	dst = binary.LittleEndian.AppendUint64(dst, p.rng.State())
	return dst
}

// RestoreState reads state written by AppendState into p, which must
// have been built from the same configuration (the recorded arena and
// fold lengths are validated against p's allocated structures). Restore
// is bit-identical: the restored predictor continues exactly like the
// snapshotted one.
func (p *Predictor) RestoreState(r *statecodec.Reader) error {
	words := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if words != uint64(len(p.arena)) {
		return fmt.Errorf("%w: tage arena %d words, want %d", statecodec.ErrCorrupt, words, len(p.arena))
	}
	for i := range p.arena {
		p.arena[i] = r.Uint32()
	}
	nf := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if nf != uint64(3*len(p.folds)) {
		return fmt.Errorf("%w: tage folds %d, want %d", statecodec.ErrCorrupt, nf, 3*len(p.folds))
	}
	for i := range p.folds {
		f := &p.folds[i]
		f.idx.SetValue(uint32(r.Uvarint()))
		f.tag.SetValue(uint32(r.Uvarint()))
		f.tag2.SetValue(uint32(r.Uvarint()))
	}
	if err := p.ghist.RestoreState(r); err != nil {
		return err
	}
	p.phist.SetValue(uint32(r.Uvarint()))
	ualt := r.Varint()
	p.tick = r.Uvarint()
	rngState := r.Uint64()
	if err := r.Err(); err != nil {
		return err
	}
	if ualt < -8 || ualt > 7 {
		return fmt.Errorf("%w: tage useAltOnNA %d out of range", statecodec.ErrCorrupt, ualt)
	}
	p.useAltOnNA = int8(ualt)
	p.rng.SetState(rngState)
	p.havePred = false
	return nil
}
